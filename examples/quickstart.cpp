// Quickstart: horizontally fuse three small classifiers that differ only in
// hyper-parameters, train them simultaneously with one fused model + one
// fused optimizer, and verify the result equals three independent runs.
//
//   build/examples/quickstart
#include <cstdio>

#include "data/datasets.h"
#include "hfta/fused_norm.h"
#include "hfta/fused_optim.h"
#include "hfta/fusion.h"
#include "hfta/loss_scaling.h"
#include "hfta/train.h"
#include "nn/layers.h"
#include "nn/norm.h"
#include "nn/optim.h"
#include "tensor/ops.h"

using namespace hfta;

namespace {

// A 2-layer MLP classifier: Linear -> ReLU -> Linear.
struct Mlp : nn::Module {
  Mlp(int64_t in, int64_t hidden, int64_t classes, Rng& rng) {
    fc1 = register_module("fc1",
                          std::make_shared<nn::Linear>(in, hidden, true, rng));
    fc2 = register_module(
        "fc2", std::make_shared<nn::Linear>(hidden, classes, true, rng));
  }
  ag::Variable forward(const ag::Variable& x) override {
    return fc2->forward(ag::relu(fc1->forward(x)));
  }
  std::shared_ptr<nn::Linear> fc1, fc2;
};

// The fused array of B such MLPs: same two lines, fused classes.
struct FusedMlp : fused::FusedModule {
  FusedMlp(int64_t B, int64_t in, int64_t hidden, int64_t classes, Rng& rng)
      : fused::FusedModule(B) {
    fc1 = register_module(
        "fc1", std::make_shared<fused::FusedLinear>(B, in, hidden, true, rng));
    fc2 = register_module(
        "fc2",
        std::make_shared<fused::FusedLinear>(B, hidden, classes, true, rng));
  }
  ag::Variable forward(const ag::Variable& x) override {
    return fc2->forward(ag::relu(fc1->forward(x)));  // x: [B, N, in]
  }
  std::shared_ptr<fused::FusedLinear> fc1, fc2;
};

}  // namespace

int main() {
  const int64_t B = 3;        // three hyper-parameter trials, one GPU. . . er, CPU
  const int64_t in = 16, hidden = 32, classes = 4, batch = 32;
  Rng rng(1);

  // Three models with their own weights + their own learning rates.
  FusedMlp fused_model(B, in, hidden, classes, rng);
  std::vector<std::shared_ptr<Mlp>> serial_models;
  const fused::HyperVec lrs = {1e-3, 3e-3, 1e-2};
  for (int64_t b = 0; b < B; ++b) {
    serial_models.push_back(std::make_shared<Mlp>(in, hidden, classes, rng));
    fused_model.fc1->load_model(b, *serial_models.back()->fc1);
    fused_model.fc2->load_model(b, *serial_models.back()->fc2);
  }
  fused::FusedAdam fused_opt(fused::collect_fused_parameters(fused_model, B),
                             B, {.lr = lrs});
  std::vector<std::unique_ptr<nn::Adam>> serial_opts;
  for (int64_t b = 0; b < B; ++b)
    serial_opts.push_back(std::make_unique<nn::Adam>(
        serial_models[static_cast<size_t>(b)]->parameters(),
        nn::Adam::Options{.lr = lrs[static_cast<size_t>(b)]}));

  // Synthetic classification data.
  data::ImageDataset ds(batch, 4, 1, classes, 9);  // 4x4 gray "images"
  std::vector<int64_t> idx(batch);
  for (int64_t i = 0; i < batch; ++i) idx[static_cast<size_t>(i)] = i;
  auto [x4, y] = ds.batch(idx);
  Tensor x = x4.reshape({batch, in});
  Tensor fused_labels({B, batch});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t n = 0; n < batch; ++n) fused_labels.at({b, n}) = y.at({n});

  std::printf("training %ld fused models (lrs: %.0e %.0e %.0e)\n\n", B,
              lrs[0], lrs[1], lrs[2]);
  // One TrainLoop drives the fused iteration through the canonical
  // zero_grad -> forward/loss -> backward -> step sequence; the three
  // serial twins it replaces run inside the scoring hook on a SECOND
  // TrainStep, so loop.step()'s stats keep describing the fused step (the
  // zero-alloc line below) rather than the last serial twin.
  Tensor logits_value;  // value only: the tape is released per step
  TrainStep serial_step;  // drives the serial twins inside the hook
  serial_step.enable_capture();  // twins replay tape-free too
  TrainLoop::Options lopts;
  // The batch is fixed, so the step is captured once and replayed
  // thereafter: no autograd nodes, no closures, no topo sort per step.
  // (logits_value shares the captured graph's pinned storage, so the
  // per-model loss printout stays live through replays.)
  lopts.capture = true;
  lopts.on_step = [&](int64_t step, const ag::Variable&) {
    // --- the three serial steps the fused one replaces ---
    for (int64_t b = 0; b < B; ++b) {
      const size_t ub = static_cast<size_t>(b);
      serial_step.run(*serial_opts[ub], [&] {
        return ag::cross_entropy(serial_models[ub]->forward(ag::Variable(x)),
                                 y, ag::Reduction::kMean);
      });
    }
    if (step % 10 == 0) {
      auto per = fused::per_model_cross_entropy(logits_value, fused_labels);
      std::printf("step %2ld   fused per-model losses: %.4f %.4f %.4f\n",
                  step, per[0], per[1], per[2]);
    }
  };
  TrainLoop loop(lopts);
  loop.run(40, fused_opt, [&](int64_t) {
    ag::Variable logits = fused_model.forward(
        ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
    logits_value = logits.value();
    return fused::fused_cross_entropy(logits, fused_labels,
                                      ag::Reduction::kMean);
  });
  std::printf("\nsteady-state heap allocations per fused step: %llu "
              "(storage pool recycles everything once warm)\n",
              static_cast<unsigned long long>(
                  loop.step().stats().last_heap_allocs));
  std::printf("steps replayed tape-free: %lld of 40 (autograd node "
              "constructions in the last step: %llu)\n",
              static_cast<long long>(loop.step().stats().replays),
              static_cast<unsigned long long>(
                  loop.step().stats().last_node_constructions));

  // Equivalence: fused weights == serial weights, model by model.
  float max_diff = 0;
  for (int64_t b = 0; b < B; ++b) {
    nn::Linear probe1(in, hidden, true, rng), probe2(hidden, classes, true, rng);
    fused_model.fc1->store_model(b, probe1);
    fused_model.fc2->store_model(b, probe2);
    max_diff = std::max(
        max_diff,
        ops::max_abs_diff(probe1.weight.value(),
                          serial_models[static_cast<size_t>(b)]
                              ->fc1->weight.value()));
    max_diff = std::max(
        max_diff,
        ops::max_abs_diff(probe2.weight.value(),
                          serial_models[static_cast<size_t>(b)]
                              ->fc2->weight.value()));
  }
  std::printf("\nafter 40 steps, max |fused - serial| weight difference: "
              "%.2e\n",
              max_diff);
  std::printf("=> HFTA training is mathematically equivalent to the three "
              "serial runs.\n");

  // --- Act II: the same exercise under AMP (bf16 autocast + dynamic loss
  // scaling). Three runs from one fresh init: the AMP fused array, its
  // three AMP serial twins, and an fp32 fused reference. The fused-vs-
  // serial audit must STAY 0.00e+00 under AMP (both sides quantize at the
  // same op inputs); the AMP-vs-fp32 gap is real quantization error and is
  // printed, not hidden.
  std::printf("\n--- mixed precision (bf16 autocast + dynamic loss "
              "scaling) ---\n");
  Rng rng2(11);
  FusedMlp amp_fused(B, in, hidden, classes, rng2);
  FusedMlp ref_fused(B, in, hidden, classes, rng2);
  std::vector<std::shared_ptr<Mlp>> amp_serial;
  for (int64_t b = 0; b < B; ++b) {
    amp_serial.push_back(std::make_shared<Mlp>(in, hidden, classes, rng2));
    amp_fused.fc1->load_model(b, *amp_serial.back()->fc1);
    amp_fused.fc2->load_model(b, *amp_serial.back()->fc2);
    ref_fused.fc1->load_model(b, *amp_serial.back()->fc1);
    ref_fused.fc2->load_model(b, *amp_serial.back()->fc2);
  }
  fused::FusedAdam amp_opt(fused::collect_fused_parameters(amp_fused, B), B,
                           {.lr = lrs});
  fused::FusedAdam ref_opt(fused::collect_fused_parameters(ref_fused, B), B,
                           {.lr = lrs});
  std::vector<std::unique_ptr<nn::Adam>> amp_serial_opts;
  for (int64_t b = 0; b < B; ++b)
    amp_serial_opts.push_back(std::make_unique<nn::Adam>(
        amp_serial[static_cast<size_t>(b)]->parameters(),
        nn::Adam::Options{.lr = lrs[static_cast<size_t>(b)]}));

  TrainStep amp_step, amp_serial_step, ref_step;
  amp_step.enable_capture();
  amp_serial_step.enable_capture();
  ref_step.enable_capture();
  amp_step.enable_amp();         // bf16, scale 2^16
  amp_serial_step.enable_amp();  // the twins run the same policy
  auto fused_loss = [&](fused::FusedModule& m) {
    ag::Variable logits = m.forward(
        ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
    return fused::fused_cross_entropy(logits, fused_labels,
                                      ag::Reduction::kMean);
  };
  for (int64_t step = 0; step < 40; ++step) {
    amp_step.run(amp_opt, [&] { return fused_loss(amp_fused); });
    ref_step.run(ref_opt, [&] { return fused_loss(ref_fused); });
    for (int64_t b = 0; b < B; ++b) {
      const size_t ub = static_cast<size_t>(b);
      amp_serial_step.run(*amp_serial_opts[ub], [&] {
        return ag::cross_entropy(amp_serial[ub]->forward(ag::Variable(x)), y,
                                 ag::Reduction::kMean);
      });
    }
  }
  float amp_diff = 0, amp_gap = 0;
  for (int64_t b = 0; b < B; ++b) {
    nn::Linear probe1(in, hidden, true, rng), probe2(hidden, classes, true,
                                                     rng);
    nn::Linear ref1(in, hidden, true, rng), ref2(hidden, classes, true, rng);
    amp_fused.fc1->store_model(b, probe1);
    amp_fused.fc2->store_model(b, probe2);
    ref_fused.fc1->store_model(b, ref1);
    ref_fused.fc2->store_model(b, ref2);
    const auto& sm = amp_serial[static_cast<size_t>(b)];
    amp_diff = std::max(amp_diff, ops::max_abs_diff(probe1.weight.value(),
                                                    sm->fc1->weight.value()));
    amp_diff = std::max(amp_diff, ops::max_abs_diff(probe2.weight.value(),
                                                    sm->fc2->weight.value()));
    amp_gap = std::max(amp_gap, ops::max_abs_diff(probe1.weight.value(),
                                                  ref1.weight.value()));
    amp_gap = std::max(amp_gap, ops::max_abs_diff(probe2.weight.value(),
                                                  ref2.weight.value()));
  }
  std::printf("amp max |fused - serial| weight difference: %.2e\n", amp_diff);
  std::printf("amp vs fp32 weight gap: %.2e (bf16 quantization error — "
              "measured, not hidden)\n",
              amp_gap);
  std::printf("amp loss scale: %.0f (overflow skips: %lld, heap allocations "
              "in the last amp step: %llu)\n",
              amp_step.scaler().scale(),
              static_cast<long long>(amp_step.scaler().overflow_skips()),
              static_cast<unsigned long long>(
                  amp_step.stats().last_heap_allocs));
  std::printf("=> AMP keeps fused == serial bit-for-bit; precision loss "
              "comes from the dtype, not the fusion.\n");
  return (max_diff < 1e-3f && amp_diff == 0.0f) ? 0 : 1;
}
