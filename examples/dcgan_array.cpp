// GAN training array: trains B = 3 DCGANs (different Adam beta1 values —
// a classic GAN-stability knob) as one fused generator + one fused
// discriminator on a synthetic LSUN-like image set. Demonstrates the
// paper's point that GANs, which cannot simply raise their batch size
// (training instability), still benefit from HFTA.
//
//   build/examples/dcgan_array
#include <cmath>
#include <cstdio>

#include "data/datasets.h"
#include "hfta/fused_optim.h"
#include "hfta/loss_scaling.h"
#include "hfta/train.h"
#include "models/dcgan.h"
#include "tensor/ops.h"

using namespace hfta;

int main() {
  const int64_t B = 3, N = 8;
  Rng rng(5);
  models::DCGANConfig cfg = models::DCGANConfig::tiny();
  data::ImageDataset ds(32, cfg.image_size, cfg.nc, 2, 13);

  models::FusedDCGANGenerator gen(B, cfg, rng);
  models::FusedDCGANDiscriminator disc(B, cfg, rng);
  const fused::HyperVec beta1 = {0.3, 0.5, 0.7};
  fused::FusedAdam g_opt(fused::collect_fused_parameters(gen, B), B,
                         {.lr = {2e-3}, .beta1 = beta1});
  fused::FusedAdam d_opt(fused::collect_fused_parameters(disc, B), B,
                         {.lr = {2e-3}, .beta1 = beta1});

  const Tensor real_label = Tensor::ones({B, N});
  const Tensor fake_label = Tensor::zeros({B, N});

  // Both GAN phases (and both optimizers) share one iteration engine; the
  // discriminator's real+fake terms ride the multi-loss TrainStep overload
  // (each loss runs backward before the single optimizer step).
  TrainStep train;

  std::printf("fused DCGAN array: B=%ld GANs, beta1 = {0.3, 0.5, 0.7}\n\n",
              B);
  std::printf("%-5s %28s %28s\n", "step", "D loss (per model)",
              "G loss (per model)");
  for (int step = 0; step < 12; ++step) {
    std::vector<int64_t> idx;
    for (int64_t i = 0; i < N; ++i)
      idx.push_back((step * N + i) % ds.size());
    auto [real, labels_unused] = ds.batch(idx);
    Tensor z = Tensor::randn({N, B * cfg.nz, 1, 1}, rng);

    // --- discriminator step: real up, fake down -------------------------
    ag::Variable d_real, d_on_fake;
    train.run(d_opt, [&]() -> std::vector<ag::Variable> {
      d_real = disc.forward(ag::Variable(
          fused::pack_channel_fused(std::vector<Tensor>(B, real))));
      ag::Variable loss_real = fused::fused_bce_with_logits(
          d_real, real_label, ag::Reduction::kMean, B);
      Tensor fake = gen.forward(ag::Variable(z)).value();  // detached
      ag::Variable d_fake = disc.forward(ag::Variable(fake));
      ag::Variable loss_fake = fused::fused_bce_with_logits(
          d_fake, fake_label, ag::Reduction::kMean, B);
      return {loss_real, loss_fake};
    });

    // --- generator step: make D call fakes real -------------------------
    train.run(g_opt, [&] {
      ag::Variable fake_v = gen.forward(ag::Variable(z));
      d_on_fake = disc.forward(fake_v);
      return fused::fused_bce_with_logits(d_on_fake, real_label,
                                          ag::Reduction::kMean, B);
    });

    if (step % 3 == 0) {
      // Per-model BCE values for logging (mean over the model's batch).
      auto per_model = [&](const Tensor& logits, float target) {
        std::vector<double> out;
        for (int64_t b = 0; b < B; ++b) {
          double acc = 0;
          for (int64_t n = 0; n < N; ++n) {
            const float v = logits.at({b, n});
            acc += std::max(v, 0.f) - v * target +
                   std::log1p(std::exp(-std::fabs(v)));
          }
          out.push_back(acc / N);
        }
        return out;
      };
      auto dl = per_model(d_real.value(), 1.f);
      auto gl = per_model(d_on_fake.value(), 1.f);
      std::printf("%-5d    %8.4f %8.4f %8.4f    %8.4f %8.4f %8.4f\n", step,
                  dl[0], dl[1], dl[2], gl[0], gl[1], gl[2]);
    }
  }
  std::printf("\nEach column is an independent GAN with its own beta1 — one "
              "fused job\nreplaces three processes without touching any "
              "model's training dynamics.\n");
  return 0;
}
