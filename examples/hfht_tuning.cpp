// HFHT end-to-end, in two acts.
//
// Act 1 (paper Fig. 8 shape): tune PointNet's 8 hyper-parameters (Table 12)
// with random search and Hyperband under the four job schedulers, reporting
// total GPU-hours from the synthetic cost model and the best configuration
// found — Algorithm 1 with the SyntheticExecutor.
//
// Act 2 (this repo's closing of the loop): the same Algorithm-1 control
// flow driving REAL fused training — for BOTH paper tasks. Every Hyperband
// round compiles its trial partition into a planner-built FusedArray,
// per-trial lr/betas/decay ride in the FusedAdam hyper-vectors, scores come
// from per-model cross-entropy on held-out data, and rung survivors are
// gathered — across every chunked array they trained in — into a smaller
// live array (FusionPlan::repack_multi + multi-source optimizer-state
// gather) that continues training bit-exactly. The executor also trains
// every model serially and prints the max per-model loss deviation:
// 0.00e+00, including across halving/repack and chunk-merge boundaries.
//
//   build/examples/hfht_tuning
//   build/examples/hfht_tuning --task mobilenet
//   build/examples/hfht_tuning --max-array-size 2 --json stats.json
#include <cstdio>
#include <cstring>
#include <string>

#include "hfht/executor.h"

using namespace hfta::hfht;

namespace {

void print_best(const SearchSpace& space, const ParamSet& best, Task task) {
  if (task == Task::kPointNet) {
    std::printf("  best config: lr=%.2e beta1=%.2f wd=%.3f batch=%g "
                "feature_transform=%g\n",
                space.get(best, "lr"), space.get(best, "adam_beta1"),
                space.get(best, "weight_decay"),
                space.get(best, "batch_size"),
                space.get(best, "feature_transform"));
  } else {
    std::printf("  best config: lr=%.2e beta1=%.2f wd=%.3f batch=%g "
                "version=V%g\n",
                space.get(best, "lr"), space.get(best, "adam_beta1"),
                space.get(best, "weight_decay"),
                space.get(best, "batch_size"), space.get(best, "version"));
  }
}

void synthetic_act(const hfta::sim::DeviceSpec& dev) {
  std::printf("HFHT: tuning PointNet classification (8 hyper-parameters, "
              "synthetic cost model)\n\n");
  const SearchSpace space = SearchSpace::pointnet();
  for (AlgorithmKind algo :
       {AlgorithmKind::kRandomSearch, AlgorithmKind::kHyperband}) {
    std::printf("%s:\n", algorithm_name(algo));
    double serial_hours = 0;
    for (SchedulerKind sched :
         {SchedulerKind::kSerial, SchedulerKind::kConcurrent,
          SchedulerKind::kMps, SchedulerKind::kHfta}) {
      const TuneResult r = run_tuning(Task::kPointNet, algo, sched, dev, 99);
      if (sched == SchedulerKind::kSerial) serial_hours = r.total_gpu_hours;
      std::printf("  %-11s %7.1f GPU-hours (%.2fx cheaper), best accuracy "
                  "%.3f over %ld trials\n",
                  scheduler_name(sched), r.total_gpu_hours,
                  serial_hours / r.total_gpu_hours, r.best_accuracy,
                  r.total_trials);
    }
    // The winning configuration (identical across schedulers by design).
    auto tuning = make_algorithm(algo, Task::kPointNet, 99);
    SyntheticExecutor exec(Task::kPointNet, SchedulerKind::kHfta, dev);
    run_tuning(*tuning, exec);
    print_best(space, tuning->best_params(), Task::kPointNet);
    std::printf("\n");
  }
}

struct RealActResult {
  TuneResult tune;
  int64_t compiled = 0, repacked = 0, merged_repacks = 0, merged_arrays = 0;
  int64_t post_repack = 0, post_merge = 0;
  double max_diff = 0;
};

RealActResult real_act(const hfta::sim::DeviceSpec& dev, Task task,
                       int64_t max_array_size) {
  std::printf("HFHT on real fused arrays: Hyperband (R=4, eta=2) over "
              "%s-tiny, max_array_size=%ld\n",
              task == Task::kPointNet ? "PointNet" : "MobileNet",
              max_array_size);
  std::printf("(trials train for real; rung survivors are repacked — "
              "merging across chunked\n arrays when a rung exceeded the "
              "array cap — into smaller live arrays)\n\n");
  // Pin the infusible choices so every round fuses into one partition —
  // the halving boundaries then exercise repack (and, with a small array
  // cap, the cross-chunk merge) rather than fresh compiles.
  SearchSpace space =
      task == Task::kPointNet ? SearchSpace::pointnet()
                              : SearchSpace::mobilenet();
  space.params[space.index_of("batch_size")].choices = {8};
  if (task == Task::kPointNet) {
    space.params[space.index_of("feature_transform")].choices = {0};
  } else {
    space.params[space.index_of("version")].choices = {3};
    space.params[space.index_of("width_mult")].choices = {0.25};
  }

  Hyperband hb(space, /*max_epochs_r=*/4, /*eta=*/2, /*skip_last=*/0,
               /*seed=*/17);
  FusedTrainingExecutor::Options opts;
  opts.dataset_size = 32;
  opts.eval_size = 8;
  opts.max_array_size = max_array_size;
  opts.seed = 17;
  opts.verify_against_serial = true;
  FusedTrainingExecutor exec(task, dev, opts);
  RealActResult out;
  out.tune = run_tuning(hb, exec);

  std::printf("  %ld trials over %ld rounds: %.2f simulated GPU-seconds "
              "(priced from the\n  actual tiny-%s traces, not the canned "
              "paper-scale ones)\n",
              out.tune.total_trials, out.tune.iterations,
              out.tune.total_gpu_hours * 3600.0,
              task == Task::kPointNet ? "PointNet" : "MobileNet");
  std::printf("  arrays compiled: %ld, halving repacks: %ld\n",
              exec.arrays_compiled(), exec.arrays_repacked());
  std::printf("  cross-chunk continuations: %ld multi-source repacks "
              "merging %ld arrays,\n  %ld per-model iterations verified "
              "after a merge\n",
              exec.multi_source_repacks(), exec.arrays_merged(),
              exec.iterations_verified_after_merge());
  std::printf("  best held-out score 1/(1+loss) = %.3f\n",
              out.tune.best_accuracy);
  print_best(space, hb.best_params(), task);
  std::printf("\n  max fused-vs-serial per-model loss diff: %.2e\n",
              exec.max_fused_vs_serial_diff());
  std::printf("  (%ld per-model iterations verified on repacked arrays — "
              "the fused run IS the\n  serial runs, across halving and "
              "chunk-merge boundaries included)\n",
              exec.iterations_verified_after_repack());

  out.compiled = exec.arrays_compiled();
  out.repacked = exec.arrays_repacked();
  out.merged_repacks = exec.multi_source_repacks();
  out.merged_arrays = exec.arrays_merged();
  out.post_repack = exec.iterations_verified_after_repack();
  out.post_merge = exec.iterations_verified_after_merge();
  out.max_diff = exec.max_fused_vs_serial_diff();
  return out;
}

void write_json(const char* path, Task task, int64_t max_array_size,
                const RealActResult& r) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path);
    return;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"figure\": \"hfht_real_training\",\n"
      "  \"task\": \"%s\",\n"
      "  \"max_array_size\": %ld,\n"
      "  \"trials\": %ld,\n"
      "  \"rounds\": %ld,\n"
      "  \"gpu_hours\": %.6e,\n"
      "  \"best_score\": %.6f,\n"
      "  \"arrays_compiled\": %ld,\n"
      "  \"halving_repacks\": %ld,\n"
      "  \"multi_source_repacks\": %ld,\n"
      "  \"arrays_merged\": %ld,\n"
      "  \"iterations_verified_after_repack\": %ld,\n"
      "  \"iterations_verified_after_merge\": %ld,\n"
      "  \"max_fused_vs_serial_diff\": %.3e\n"
      "}\n",
      task == Task::kPointNet ? "pointnet" : "mobilenet", max_array_size,
      r.tune.total_trials, r.tune.iterations, r.tune.total_gpu_hours,
      r.tune.best_accuracy, r.compiled, r.repacked, r.merged_repacks,
      r.merged_arrays, r.post_repack, r.post_merge, r.max_diff);
  std::fclose(f);
  std::printf("\n  stats written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  Task task = Task::kPointNet;
  int64_t max_array_size = 8;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--task") == 0 && i + 1 < argc) {
      task = std::strcmp(argv[++i], "mobilenet") == 0 ? Task::kMobileNet
                                                      : Task::kPointNet;
    } else if (std::strcmp(argv[i], "--max-array-size") == 0 && i + 1 < argc) {
      max_array_size = std::atol(argv[++i]);
      if (max_array_size < 1) {
        std::printf("--max-array-size must be a positive integer\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--task pointnet|mobilenet] "
                  "[--max-array-size N] [--json PATH]\n",
                  argv[0]);
      return 1;
    }
  }
  const auto dev = hfta::sim::v100();
  if (task == Task::kPointNet) synthetic_act(dev);
  const RealActResult r = real_act(dev, task, max_array_size);
  if (json_path != nullptr) write_json(json_path, task, max_array_size, r);
  return 0;
}
