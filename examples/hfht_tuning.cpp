// HFHT end-to-end: tune PointNet's 8 hyper-parameters (Table 12) with
// random search and Hyperband under the four job schedulers, reporting
// total GPU-hours (simulated V100 cost model) and the best configuration
// found. This is the Algorithm-1 loop of Appendix E.
//
//   build/examples/hfht_tuning
#include <cstdio>

#include "hfht/tuner.h"

using namespace hfta::hfht;

int main() {
  const auto dev = hfta::sim::v100();
  std::printf("HFHT: tuning PointNet classification (8 hyper-parameters)\n\n");
  for (AlgorithmKind algo :
       {AlgorithmKind::kRandomSearch, AlgorithmKind::kHyperband}) {
    std::printf("%s:\n", algorithm_name(algo));
    double serial_hours = 0;
    for (SchedulerKind sched :
         {SchedulerKind::kSerial, SchedulerKind::kConcurrent,
          SchedulerKind::kMps, SchedulerKind::kHfta}) {
      const TuneResult r = run_tuning(Task::kPointNet, algo, sched, dev, 99);
      if (sched == SchedulerKind::kSerial) serial_hours = r.total_gpu_hours;
      std::printf("  %-11s %7.1f GPU-hours (%.2fx cheaper), best accuracy "
                  "%.3f over %ld trials\n",
                  scheduler_name(sched), r.total_gpu_hours,
                  serial_hours / r.total_gpu_hours, r.best_accuracy,
                  r.total_trials);
    }
    // The winning configuration (identical across schedulers by design).
    auto tuning = make_algorithm(algo, Task::kPointNet, 99);
    const SearchSpace space = SearchSpace::pointnet();
    while (true) {
      auto batch = tuning->propose();
      if (batch.empty()) break;
      std::vector<double> acc;
      for (const Trial& t : batch)
        acc.push_back(
            synthetic_accuracy(space, t.params, t.epochs, Task::kPointNet));
      tuning->update(batch, acc);
    }
    const ParamSet& best = tuning->best_params();
    std::printf("  best config: lr=%.2e beta1=%.2f wd=%.3f batch=%g "
                "feature_transform=%g\n\n",
                best[0], best[1], best[3], best[6], best[7]);
  }
  return 0;
}
