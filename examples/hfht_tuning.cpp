// HFHT end-to-end, in two acts.
//
// Act 1 (paper Fig. 8 shape): tune PointNet's 8 hyper-parameters (Table 12)
// with random search and Hyperband under the four job schedulers, reporting
// total GPU-hours from the synthetic cost model and the best configuration
// found — Algorithm 1 with the SyntheticExecutor.
//
// Act 2 (this repo's closing of the loop): the same Algorithm-1 control
// flow driving REAL fused training. Every Hyperband round compiles its
// trial partition into a planner-built FusedArray, per-trial lr/betas/decay
// ride in the FusedAdam hyper-vectors, scores come from per-model
// cross-entropy on held-out data, and rung survivors are repacked into a
// smaller live array (FusionPlan::repack + optimizer-state slicing) that
// continues training bit-exactly. The executor also trains every model
// serially and prints the max per-model loss deviation: 0.00e+00, including
// across the halving/repack boundaries.
//
//   build/examples/hfht_tuning
#include <cstdio>

#include "hfht/executor.h"

using namespace hfta::hfht;

namespace {

void print_best(const SearchSpace& space, const ParamSet& best) {
  std::printf("  best config: lr=%.2e beta1=%.2f wd=%.3f batch=%g "
              "feature_transform=%g\n",
              space.get(best, "lr"), space.get(best, "adam_beta1"),
              space.get(best, "weight_decay"), space.get(best, "batch_size"),
              space.get(best, "feature_transform"));
}

void synthetic_act(const hfta::sim::DeviceSpec& dev) {
  std::printf("HFHT: tuning PointNet classification (8 hyper-parameters, "
              "synthetic cost model)\n\n");
  const SearchSpace space = SearchSpace::pointnet();
  for (AlgorithmKind algo :
       {AlgorithmKind::kRandomSearch, AlgorithmKind::kHyperband}) {
    std::printf("%s:\n", algorithm_name(algo));
    double serial_hours = 0;
    for (SchedulerKind sched :
         {SchedulerKind::kSerial, SchedulerKind::kConcurrent,
          SchedulerKind::kMps, SchedulerKind::kHfta}) {
      const TuneResult r = run_tuning(Task::kPointNet, algo, sched, dev, 99);
      if (sched == SchedulerKind::kSerial) serial_hours = r.total_gpu_hours;
      std::printf("  %-11s %7.1f GPU-hours (%.2fx cheaper), best accuracy "
                  "%.3f over %ld trials\n",
                  scheduler_name(sched), r.total_gpu_hours,
                  serial_hours / r.total_gpu_hours, r.best_accuracy,
                  r.total_trials);
    }
    // The winning configuration (identical across schedulers by design).
    auto tuning = make_algorithm(algo, Task::kPointNet, 99);
    SyntheticExecutor exec(Task::kPointNet, SchedulerKind::kHfta, dev);
    run_tuning(*tuning, exec);
    print_best(space, tuning->best_params());
    std::printf("\n");
  }
}

void real_act(const hfta::sim::DeviceSpec& dev) {
  std::printf("HFHT on real fused arrays: Hyperband (R=4, eta=2) over "
              "PointNet-tiny\n");
  std::printf("(trials train for real; rung survivors are repacked into "
              "smaller live arrays)\n\n");
  // Pin the infusible choices so every round fuses into one array — the
  // halving boundaries then exercise repack rather than fresh compiles.
  SearchSpace space = SearchSpace::pointnet();
  space.params[space.index_of("batch_size")].choices = {8};
  space.params[space.index_of("feature_transform")].choices = {0};

  Hyperband hb(space, /*max_epochs_r=*/4, /*eta=*/2, /*skip_last=*/0,
               /*seed=*/17);
  FusedTrainingExecutor::Options opts;
  opts.dataset_size = 32;
  opts.eval_size = 8;
  opts.seed = 17;
  opts.verify_against_serial = true;
  FusedTrainingExecutor exec(Task::kPointNet, dev, opts);
  const TuneResult r = run_tuning(hb, exec);

  std::printf("  %ld trials over %ld rounds: %.2f simulated GPU-seconds "
              "(priced from the\n  actual tiny-PointNet traces, not the "
              "canned paper-scale one)\n",
              r.total_trials, r.iterations, r.total_gpu_hours * 3600.0);
  std::printf("  arrays compiled: %ld, halving repacks: %ld\n",
              exec.arrays_compiled(), exec.arrays_repacked());
  std::printf("  best held-out score 1/(1+loss) = %.3f\n", r.best_accuracy);
  print_best(space, hb.best_params());
  std::printf("\n  max fused-vs-serial per-model loss diff: %.2e\n",
              exec.max_fused_vs_serial_diff());
  std::printf("  (%ld per-model iterations verified on repacked arrays — "
              "the fused run IS the\n  serial runs, across halving "
              "boundaries included)\n",
              exec.iterations_verified_after_repack());
}

}  // namespace

int main() {
  const auto dev = hfta::sim::v100();
  synthetic_act(dev);
  real_act(dev);
  return 0;
}
