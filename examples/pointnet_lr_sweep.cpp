// Learning-rate sweep on PointNet classification — the paper's motivating
// workload. Trains B = 4 PointNet models with different Adam learning
// rates over a synthetic ShapeNet-like dataset, (a) serially and (b) as
// one HFTA-fused array, and reports real wall-clock time for both. Even on
// CPU, fusion amortizes per-op overheads and improves cache behavior.
//
// The fused array is compiled straight from the serial models' per-model
// graphs by the fusion planner — the array starts from the serial models'
// exact weights with no load_model step and no hand-written fused model.
//
//   build/examples/pointnet_lr_sweep
#include <chrono>
#include <cstdio>

#include "data/datasets.h"
#include "data/loader.h"
#include "hfta/fused_optim.h"
#include "hfta/loss_scaling.h"
#include "hfta/fusion.h"
#include "hfta/train.h"
#include "models/pointnet.h"
#include "nn/optim.h"
#include "tensor/ops.h"

using namespace hfta;
using Clock = std::chrono::steady_clock;

static double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int main() {
  const int64_t B = 4;
  Rng rng(7);
  models::PointNetConfig cfg = models::PointNetConfig::tiny();
  data::PointCloudDataset ds(64, cfg.num_points, cfg.num_classes,
                             cfg.num_parts, 3);
  data::BatchSampler sampler(ds.size(), 16, true, 11);
  const fused::HyperVec lrs = {5e-4, 1e-3, 2e-3, 4e-3};

  // Build B serial models; the planner compiles the fused array straight
  // from their graphs (taking their weights with it).
  std::vector<std::shared_ptr<models::PointNetCls>> serial;
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < B; ++b) {
    serial.push_back(std::make_shared<models::PointNetCls>(cfg, rng));
    nets.push_back(serial.back()->net);
  }
  fused::FusionOptions opts;
  opts.output_layout = fused::Layout::kModelMajor;
  std::shared_ptr<fused::FusedArray> fused_model_ptr =
      fused::FusionPlan(B, opts).compile(nets, rng);
  fused::FusedArray& fused_model = *fused_model_ptr;

  const int kEpochs = 2;

  // --- serial: one job per learning rate, back to back -------------------
  std::vector<std::unique_ptr<nn::Adam>> serial_opts;
  for (int64_t b = 0; b < B; ++b)
    serial_opts.push_back(std::make_unique<nn::Adam>(
        serial[static_cast<size_t>(b)]->parameters(),
        nn::Adam::Options{.lr = lrs[static_cast<size_t>(b)]}));
  // Both phases drive the shared iteration engine: one TrainStep whose
  // backward scratch and pooled storage stay warm across every iteration
  // (and across the serial/fused boundary).
  TrainStep step;
  const auto t_serial = Clock::now();
  double serial_losses[4] = {0, 0, 0, 0};
  for (int64_t b = 0; b < B; ++b) {
    data::BatchSampler s2(ds.size(), 16, true, 11);
    for (int e = 0; e < kEpochs; ++e) {
      for (const auto& bidx : s2.epoch()) {
        auto [x, y] = ds.batch_cls(bidx);
        ag::Variable loss =
            step.run(*serial_opts[static_cast<size_t>(b)], [&, &x = x, &y = y] {
              return ag::cross_entropy(
                  serial[static_cast<size_t>(b)]->forward(ag::Variable(x)), y,
                  ag::Reduction::kMean);
            });
        serial_losses[b] = loss.value().item();
      }
    }
  }
  const double serial_s = seconds_since(t_serial);

  // --- HFTA: all four learning rates in one fused job --------------------
  fused::FusedAdam fused_opt(fused::collect_fused_parameters(fused_model, B),
                             B, {.lr = lrs});
  const auto t_fused = Clock::now();
  std::vector<double> fused_losses(static_cast<size_t>(B), 0);
  for (int e = 0; e < kEpochs; ++e) {
    for (const auto& bidx : sampler.epoch()) {
      auto [x, y] = ds.batch_cls(bidx);
      std::vector<Tensor> xs(B, x);
      Tensor labels({B, x.size(0)});
      for (int64_t b = 0; b < B; ++b)
        for (int64_t n = 0; n < x.size(0); ++n) labels.at({b, n}) = y.at({n});
      step.run(fused_opt, [&] {
        ag::Variable logits =
            fused_model.forward(ag::Variable(fused::pack_channel_fused(xs)));
        fused_losses = fused::per_model_cross_entropy(logits.value(), labels);
        return fused::fused_cross_entropy(logits, labels,
                                          ag::Reduction::kMean);
      });
    }
  }
  const double fused_s = seconds_since(t_fused);

  std::printf("PointNet classification lr sweep, %ld models x %d epochs\n\n",
              B, kEpochs);
  std::printf("%-10s %-12s %-12s\n", "lr", "serial loss", "fused loss");
  for (int64_t b = 0; b < B; ++b)
    std::printf("%-10g %-12.4f %-12.4f\n", lrs[static_cast<size_t>(b)],
                serial_losses[b], fused_losses[static_cast<size_t>(b)]);
  std::printf("\nwall-clock: serial %.2fs, HFTA-fused %.2fs  =>  %.2fx "
              "speedup on CPU\n",
              serial_s, fused_s, serial_s / fused_s);
  std::printf("(both runs draw the same shuffled batches, so per-model "
              "losses coincide —\n the fused run IS the serial runs, "
              "computed together)\n");
  return 0;
}
