// Partial fusion (Appendix H.4) on the fusion-planner API: when some blocks
// cannot be fused (e.g. model-architecture search where blocks differ across
// trials), HFTA still fuses the rest. This example compiles the SAME three
// per-model ResNet-18 graphs under three different plan fuse_masks (fully
// fused, head + last two blocks unfused, fully unfused), verifies the math
// is unchanged, and times fully-fused vs partially-fused vs fully-unfused
// forward+backward on CPU.
//
//   build/examples/partial_fusion
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "hfta/train.h"
#include "models/resnet.h"
#include "tensor/ops.h"

using namespace hfta;
using Clock = std::chrono::steady_clock;

static double time_steps(fused::FusedArray& model, const Tensor& x,
                         int steps) {
  // Optimizer-free TrainLoop: zero_grad -> forward -> loss -> backward per
  // iteration, with the engine scratch and pooled storage reused across
  // all of them.
  TrainLoop loop;
  const auto t0 = Clock::now();
  loop.run(steps, model, [&](int64_t) {
    return ag::sum_all(model.forward(ag::Variable(x)));
  });
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int main() {
  const int64_t B = 3;
  Rng rng(3);
  models::ResNetConfig cfg = models::ResNetConfig::tiny();
  cfg.image_size = 8;

  // ONE per-model definition; the planner does the rest. The three
  // configurations differ only in the plan's fuse_mask. Unfused units own
  // Module::clone() replicas of the donors, so the three arrays are fully
  // independent of the donors (and of each other) even under training.
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < B; ++b)
    nets.push_back(models::ResNet18(cfg, rng).net);

  auto compile_with = [&](const models::ResNetFusionMask& mask) {
    fused::FusionOptions opts;
    opts.fuse_mask = mask.to_fuse_mask();
    opts.output_layout = fused::Layout::kModelMajor;
    return fused::FusionPlan(B, opts).compile(nets, rng);
  };
  auto full = compile_with(models::ResNetFusionMask::all_fused());
  auto partial = compile_with(models::ResNetFusionMask::partially_unfused(3));
  auto none = compile_with(models::ResNetFusionMask::partially_unfused(10));

  std::printf("plan for the partially fused configuration:\n%s\n",
              partial->describe().c_str());

  Rng data_rng(4);
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b)
    xs.push_back(Tensor::randn({4, 3, cfg.image_size, cfg.image_size},
                               data_rng));
  Tensor x = fused::pack_channel_fused(xs);

  // Correctness: all three plans compute the same function (the planner
  // loaded the same per-model weights into each).
  Tensor y_full = full->forward(ag::Variable(x)).value();
  Tensor y_partial = partial->forward(ag::Variable(x)).value();
  Tensor y_none = none->forward(ag::Variable(x)).value();
  std::printf("max |full - partial| = %.2e, |full - unfused| = %.2e\n",
              ops::max_abs_diff(y_full, y_partial),
              ops::max_abs_diff(y_full, y_none));

  // Performance: more fusion -> faster, even on CPU (fewer dispatches,
  // bigger kernels) — the Fig. 17 trend on real hardware we do have.
  const int kSteps = 5;
  const double t_full = time_steps(*full, x, kSteps);
  const double t_partial = time_steps(*partial, x, kSteps);
  const double t_none = time_steps(*none, x, kSteps);
  std::printf("\n%d fwd+bwd steps of a %ld-model array:\n", kSteps, B);
  std::printf("  fully fused (10/10 units):     %.3fs\n", t_full);
  std::printf("  partially fused (7/10 units):  %.3fs\n", t_partial);
  std::printf("  fully unfused (0/10 units):    %.3fs\n", t_none);
  std::printf("\n=> every fused block helps; partial fusion is still worth "
              "it (paper Fig. 17).\n");

  // Donor isolation: training the partially fused array must leave the
  // donor nets untouched (unfused units own cloned replicas).
  std::vector<Tensor> donor_before;
  for (const auto& p : nets[0]->parameters())
    donor_before.push_back(p.value().clone());
  time_steps(*partial, x, 1);  // one fwd+bwd with gradients
  for (auto& p : partial->parameters()) {
    Tensor v = p.mutable_value();
    v.add_(Tensor::ones(v.shape()), 1e-3f);  // crude "optimizer step"
  }
  float donor_drift = 0.f;
  const auto donor_after = nets[0]->parameters();
  for (size_t i = 0; i < donor_before.size(); ++i)
    donor_drift = std::max(donor_drift,
                           ops::max_abs_diff(donor_before[i],
                                             donor_after[i].value()));
  std::printf("donor drift after training the partial array: %.2e\n",
              donor_drift);

  // Construction cost: a structure-only compile skips both the B donor
  // constructions and the donor-to-array weight copy (the wrappers'
  // constructors use this path; callers load_model real weights anyway).
  const int64_t Bc = 8;
  const auto t0 = Clock::now();
  {
    Rng crng(5);
    std::vector<std::shared_ptr<nn::Module>> donors;
    for (int64_t b = 0; b < Bc; ++b)
      donors.push_back(models::ResNet18(cfg, crng).net);
    fused::FusionPlan(Bc).compile(donors, crng);
  }
  const double t_full_compile =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const auto t1 = Clock::now();
  {
    Rng crng(5);
    models::ResNet18 template_model(cfg, crng);
    fused::FusionPlan(Bc).compile_structure_only(template_model.net, crng);
  }
  const double t_structure_only =
      std::chrono::duration<double>(Clock::now() - t1).count();
  std::printf("\nconstructing a B=%ld array: %d-donor compile %.3fs, "
              "structure-only %.3fs (%.1fx cheaper)\n",
              Bc, static_cast<int>(Bc), t_full_compile, t_structure_only,
              t_full_compile / t_structure_only);
  return 0;
}
