// Partial fusion (Appendix H.4): when some blocks cannot be fused (e.g.
// model-architecture search where blocks differ across trials), HFTA still
// fuses the rest. This example builds a 3-model ResNet-18 array with the
// head + last two blocks UNFUSED (per-model replicas behind an adapter),
// verifies the math is unchanged, and times fully-fused vs partially-fused
// vs fully-unfused forward+backward on CPU.
//
//   build/examples/partial_fusion
#include <chrono>
#include <cstdio>

#include "models/resnet.h"
#include "tensor/ops.h"

using namespace hfta;
using Clock = std::chrono::steady_clock;

static double time_steps(models::FusedResNet18& model, const Tensor& x,
                         int steps) {
  const auto t0 = Clock::now();
  for (int i = 0; i < steps; ++i) {
    model.zero_grad();
    ag::Variable out = model.forward(ag::Variable(x));
    ag::sum_all(out).backward();
  }
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int main() {
  const int64_t B = 3;
  Rng rng(3);
  models::ResNetConfig cfg = models::ResNetConfig::tiny();
  cfg.image_size = 8;

  // Three fusion configurations of the same 10 fusion units.
  models::FusedResNet18 full(B, cfg, rng,
                             models::ResNetFusionMask::all_fused());
  models::FusedResNet18 partial(B, cfg, rng,
                                models::ResNetFusionMask::partially_unfused(3));
  models::FusedResNet18 none(B, cfg, rng,
                             models::ResNetFusionMask::partially_unfused(10));

  // All three carry the same per-model weights.
  std::vector<std::shared_ptr<models::ResNet18>> sources;
  for (int64_t b = 0; b < B; ++b) {
    sources.push_back(std::make_shared<models::ResNet18>(cfg, rng));
    full.load_model(b, *sources.back());
    partial.load_model(b, *sources.back());
    none.load_model(b, *sources.back());
  }

  Rng data_rng(4);
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b)
    xs.push_back(Tensor::randn({4, 3, cfg.image_size, cfg.image_size},
                               data_rng));
  Tensor x = fused::pack_channel_fused(xs);

  // Correctness: all three configurations compute the same function.
  Tensor y_full = full.forward(ag::Variable(x)).value();
  Tensor y_partial = partial.forward(ag::Variable(x)).value();
  Tensor y_none = none.forward(ag::Variable(x)).value();
  std::printf("max |full - partial| = %.2e, |full - unfused| = %.2e\n",
              ops::max_abs_diff(y_full, y_partial),
              ops::max_abs_diff(y_full, y_none));

  // Performance: more fusion -> faster, even on CPU (fewer dispatches,
  // bigger kernels) — the Fig. 17 trend on real hardware we do have.
  const int kSteps = 5;
  const double t_full = time_steps(full, x, kSteps);
  const double t_partial = time_steps(partial, x, kSteps);
  const double t_none = time_steps(none, x, kSteps);
  std::printf("\n%d fwd+bwd steps of a %ld-model array:\n", kSteps, B);
  std::printf("  fully fused (10/10 units):     %.3fs\n", t_full);
  std::printf("  partially fused (7/10 units):  %.3fs\n", t_partial);
  std::printf("  fully unfused (0/10 units):    %.3fs\n", t_none);
  std::printf("\n=> every fused block helps; partial fusion is still worth "
              "it (paper Fig. 17).\n");
  return 0;
}
