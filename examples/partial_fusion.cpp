// Partial fusion (Appendix H.4) on the fusion-planner API: when some blocks
// cannot be fused (e.g. model-architecture search where blocks differ across
// trials), HFTA still fuses the rest. This example compiles the SAME three
// per-model ResNet-18 graphs under three different plan fuse_masks (fully
// fused, head + last two blocks unfused, fully unfused), verifies the math
// is unchanged, and times fully-fused vs partially-fused vs fully-unfused
// forward+backward on CPU.
//
//   build/examples/partial_fusion
#include <chrono>
#include <cstdio>

#include "models/resnet.h"
#include "tensor/ops.h"

using namespace hfta;
using Clock = std::chrono::steady_clock;

static double time_steps(fused::FusedArray& model, const Tensor& x,
                         int steps) {
  const auto t0 = Clock::now();
  for (int i = 0; i < steps; ++i) {
    model.zero_grad();
    ag::Variable out = model.forward(ag::Variable(x));
    ag::sum_all(out).backward();
  }
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int main() {
  const int64_t B = 3;
  Rng rng(3);
  models::ResNetConfig cfg = models::ResNetConfig::tiny();
  cfg.image_size = 8;

  // ONE per-model definition; the planner does the rest. The three
  // configurations differ only in the plan's fuse_mask. (Their unfused
  // units alias these donor nets' own modules — fine here, where we only
  // run forward/backward; training them would need per-plan donors.)
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < B; ++b)
    nets.push_back(models::ResNet18(cfg, rng).net);

  auto compile_with = [&](const models::ResNetFusionMask& mask) {
    fused::FusionOptions opts;
    opts.fuse_mask = mask.to_fuse_mask();
    opts.output_layout = fused::Layout::kModelMajor;
    return fused::FusionPlan(B, opts).compile(nets, rng);
  };
  auto full = compile_with(models::ResNetFusionMask::all_fused());
  auto partial = compile_with(models::ResNetFusionMask::partially_unfused(3));
  auto none = compile_with(models::ResNetFusionMask::partially_unfused(10));

  std::printf("plan for the partially fused configuration:\n%s\n",
              partial->describe().c_str());

  Rng data_rng(4);
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b)
    xs.push_back(Tensor::randn({4, 3, cfg.image_size, cfg.image_size},
                               data_rng));
  Tensor x = fused::pack_channel_fused(xs);

  // Correctness: all three plans compute the same function (the planner
  // loaded the same per-model weights into each).
  Tensor y_full = full->forward(ag::Variable(x)).value();
  Tensor y_partial = partial->forward(ag::Variable(x)).value();
  Tensor y_none = none->forward(ag::Variable(x)).value();
  std::printf("max |full - partial| = %.2e, |full - unfused| = %.2e\n",
              ops::max_abs_diff(y_full, y_partial),
              ops::max_abs_diff(y_full, y_none));

  // Performance: more fusion -> faster, even on CPU (fewer dispatches,
  // bigger kernels) — the Fig. 17 trend on real hardware we do have.
  const int kSteps = 5;
  const double t_full = time_steps(*full, x, kSteps);
  const double t_partial = time_steps(*partial, x, kSteps);
  const double t_none = time_steps(*none, x, kSteps);
  std::printf("\n%d fwd+bwd steps of a %ld-model array:\n", kSteps, B);
  std::printf("  fully fused (10/10 units):     %.3fs\n", t_full);
  std::printf("  partially fused (7/10 units):  %.3fs\n", t_partial);
  std::printf("  fully unfused (0/10 units):    %.3fs\n", t_none);
  std::printf("\n=> every fused block helps; partial fusion is still worth "
              "it (paper Fig. 17).\n");
  return 0;
}
