// Reproduces Figure 17: 30 ResNet-18 models share one V100 (AMP); the
// horizontal fusion of each of the 10 fusion units (stem conv block, 8
// basic blocks, final linear) is turned off one by one. Paper findings:
// (1) more fusion -> more throughput, every bit helps; (2) different blocks
// contribute differently.
#include <cstdio>

#include "sim/execution.h"

using namespace hfta::sim;

int main() {
  const DeviceSpec dev = v100();
  const int64_t B = 30;
  const IterationTrace single = build_trace(Workload::kResNet18, 1);
  std::printf("Figure 17: 30 ResNet-18 models on V100 (AMP), partial "
              "fusion\n");
  std::printf("%-14s %16s %12s\n", "fused units", "round (ms)", "normalized");
  double full = 0;
  for (int64_t fused_units = 10; fused_units >= 0; --fused_units) {
    const IterationTrace t = build_resnet_partial_trace(B, fused_units);
    const RunResult r =
        simulate_traces(dev, single, t, Mode::kHfta, B, Precision::kAMP);
    if (fused_units == 10) full = r.round_us;
    std::printf("%-14ld %15.1f %11.2f\n", fused_units, r.round_us / 1e3,
                full / r.round_us);
  }
  std::printf("\n(normalized to the fully fused configuration; paper shows "
              "monotonic decay)\n");
  return 0;
}
