// Reproduces Figure 17: 30 ResNet-18 models share one V100 (AMP); the
// horizontal fusion of each of the 10 fusion units (stem conv block, 8
// basic blocks, final linear) is turned off one by one. Paper findings:
// (1) more fusion -> more throughput, every bit helps; (2) different blocks
// contribute differently.
//
// Each configuration is a fusion-planner compile of the same per-model
// ResNet-18 graphs under a different fuse_mask — the plan validates the
// configuration (and reports its fused/unfused split) before the analytic
// V100 model prices it.
#include <cstdio>

#include "models/resnet.h"
#include "sim/execution.h"

using namespace hfta::sim;
namespace models = hfta::models;
namespace fused = hfta::fused;

int main() {
  const DeviceSpec dev = v100();
  const int64_t B = 30;
  const IterationTrace single = build_trace(Workload::kResNet18, 1);

  // A small planner array (B=3 keeps compile cheap) per configuration:
  // validates that every mask is compilable and yields the unit split the
  // simulated sweep assumes.
  hfta::Rng rng(17);
  models::ResNetConfig cfg = models::ResNetConfig::tiny();
  std::vector<std::shared_ptr<hfta::nn::Module>> nets;
  for (int64_t b = 0; b < 3; ++b)
    nets.push_back(models::ResNet18(cfg, rng).net);

  std::printf("Figure 17: 30 ResNet-18 models on V100 (AMP), partial "
              "fusion\n");
  std::printf("%-14s %14s %16s %12s\n", "fused units", "plan units",
              "round (ms)", "normalized");
  double full = 0;
  for (int64_t fused_units = 10; fused_units >= 0; --fused_units) {
    const auto mask =
        models::ResNetFusionMask::partially_unfused(10 - fused_units);
    fused::FusionOptions opts;
    opts.fuse_mask = mask.to_fuse_mask();
    opts.output_layout = fused::Layout::kModelMajor;
    auto plan = fused::FusionPlan(3, opts).compile(nets, rng);
    int64_t fused_steps = 0, unfused_steps = 0;
    for (const auto& s : plan->steps()) (s.fused ? fused_steps
                                                 : unfused_steps)++;

    const IterationTrace t = build_resnet_partial_trace(B, fused_units);
    const RunResult r =
        simulate_traces(dev, single, t, Mode::kHfta, B, Precision::kAMP);
    if (fused_units == 10) full = r.round_us;
    char split[32];
    std::snprintf(split, sizeof(split), "%ld+%ld", fused_steps,
                  unfused_steps);
    std::printf("%-14ld %14s %15.1f %11.2f\n", fused_units, split,
                r.round_us / 1e3, full / r.round_us);
  }
  std::printf("\n(plan units = fused+unfused planner steps; normalized to "
              "the fully fused\nconfiguration; paper shows monotonic "
              "decay)\n");
  return 0;
}
