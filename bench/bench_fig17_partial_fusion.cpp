// Reproduces Figure 17: 30 ResNet-18 models share one V100 (AMP); the
// horizontal fusion of each of the 10 fusion units (stem conv block, 8
// basic blocks, final linear) is turned off one by one. Paper findings:
// (1) more fusion -> more throughput, every bit helps; (2) different blocks
// contribute differently.
//
// Each configuration is a fusion-planner compile of the same per-model
// ResNet-18 graphs under a different fuse_mask — the plan validates the
// configuration (and reports its fused/unfused split) before the analytic
// V100 model prices it.
//
// Flags (all optional; defaults reproduce the paper figure):
//   --array-size N   planner-validation array size (default 3)
//   --models N       simulated array size B (default 30, the paper's)
//   --json PATH      additionally write the table as a JSON array (CI smoke)
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "models/resnet.h"
#include "sim/execution.h"

using namespace hfta::sim;
namespace models = hfta::models;
namespace fused = hfta::fused;

namespace {

struct Row {
  int64_t fused_units;
  int64_t plan_fused_steps;
  int64_t plan_unfused_steps;
  double round_ms;
  double normalized;
};

void write_json(const char* path, int64_t B, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"figure\": \"fig17_partial_fusion\",\n"
               "  \"models\": %ld,\n  \"rows\": [\n", B);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"fused_units\": %ld, \"plan_fused_steps\": %ld, "
                 "\"plan_unfused_steps\": %ld, \"round_ms\": %.3f, "
                 "\"normalized\": %.4f}%s\n",
                 r.fused_units, r.plan_fused_steps, r.plan_unfused_steps,
                 r.round_ms, r.normalized, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  int64_t plan_B = 3;
  int64_t B = 30;
  const char* json_path = nullptr;
  auto usage = [&]() {
    std::fprintf(stderr,
                 "usage: %s [--array-size N] [--models N] [--json PATH]\n",
                 argv[0]);
    return 1;
  };
  // strtol instead of std::stol: malformed values print usage, not abort.
  auto parse_count = [&](const char* s, int64_t* out) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(s, &end, 10);
    if (errno != 0 || end == s || *end != '\0' || v < 1) return false;
    *out = v;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--array-size") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], &plan_B)) return usage();
    } else if (std::strcmp(argv[i], "--models") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], &B)) return usage();
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return usage();
    }
  }

  const DeviceSpec dev = v100();
  const IterationTrace single = build_trace(Workload::kResNet18, 1);

  // A small planner array (plan_B keeps compile cheap) per configuration:
  // validates that every mask is compilable and yields the unit split the
  // simulated sweep assumes.
  hfta::Rng rng(17);
  models::ResNetConfig cfg = models::ResNetConfig::tiny();
  std::vector<std::shared_ptr<hfta::nn::Module>> nets;
  for (int64_t b = 0; b < plan_B; ++b)
    nets.push_back(models::ResNet18(cfg, rng).net);

  std::printf("Figure 17: %ld ResNet-18 models on V100 (AMP), partial "
              "fusion\n", B);
  std::printf("%-14s %14s %16s %12s\n", "fused units", "plan units",
              "round (ms)", "normalized");
  std::vector<Row> rows;
  double full = 0;
  for (int64_t fused_units = 10; fused_units >= 0; --fused_units) {
    const auto mask =
        models::ResNetFusionMask::partially_unfused(10 - fused_units);
    fused::FusionOptions opts;
    opts.fuse_mask = mask.to_fuse_mask();
    opts.output_layout = fused::Layout::kModelMajor;
    auto plan = fused::FusionPlan(plan_B, opts).compile(nets, rng);
    int64_t fused_steps = 0, unfused_steps = 0;
    for (const auto& s : plan->steps()) (s.fused ? fused_steps
                                                 : unfused_steps)++;

    const IterationTrace t = build_resnet_partial_trace(B, fused_units);
    const RunResult r =
        simulate_traces(dev, single, t, Mode::kHfta, B, Precision::kAMP);
    if (fused_units == 10) full = r.round_us;
    char split[48];
    std::snprintf(split, sizeof(split), "%ld+%ld", fused_steps,
                  unfused_steps);
    std::printf("%-14ld %14s %15.1f %11.2f\n", fused_units, split,
                r.round_us / 1e3, full / r.round_us);
    rows.push_back({fused_units, fused_steps, unfused_steps, r.round_us / 1e3,
                    full / r.round_us});
  }
  std::printf("\n(plan units = fused+unfused planner steps; normalized to "
              "the fully fused\nconfiguration; paper shows monotonic "
              "decay)\n");
  if (json_path != nullptr) {
    write_json(json_path, B, rows);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
