// Ablation of the simulator's modeled mechanisms (DESIGN.md §4): how much
// of HFTA's headline V100 PointNet-cls speedup comes from each of the three
// effects the paper identifies —
//   (1) amortizing per-op stream gaps / launch overheads,
//   (2) filling the device with B x parallel work (SM utilization),
//   (3) avoiding per-process framework memory (more models fit).
// Each row disables one mechanism and re-measures the peak speedup.
#include <cstdio>

#include "sim/counters.h"

using namespace hfta::sim;

namespace {

double peak_with(DeviceSpec dev) {
  return peak_speedup_vs(dev, Workload::kPointNetCls, Mode::kSerial);
}

}  // namespace

int main() {
  std::printf("Ablation: HFTA peak speedup over serial, V100 PointNet-cls\n");
  const double full = peak_with(v100());
  std::printf("%-44s %6.2fx\n", "full model", full);

  {
    DeviceSpec d = v100();
    d.stream_gap_us = 0;  // no eager-framework gaps to amortize
    std::printf("%-44s %6.2fx\n", "- without stream gaps (mechanism 1)",
                peak_with(d));
  }
  {
    DeviceSpec d = v100();
    // device so small that serial kernels already fill it: no fill headroom
    d.sms = 8;
    std::printf("%-44s %6.2fx\n", "- tiny device, no underfill (mechanism 2)",
                peak_with(d));
  }
  {
    DeviceSpec d = v100();
    d.framework_gb_fp32 = 0;  // per-process reservation free: MPS-like memory
    d.framework_gb_amp = 0;
    std::printf("%-44s %6.2fx\n",
                "- zero framework memory overhead (mechanism 3)",
                peak_with(d));
  }
  {
    DeviceSpec d = v100();
    d.kernel_launch_us = 0;
    d.gemm_setup_us = 0;
    std::printf("%-44s %6.2fx\n", "- free kernel launches / GEMM setups",
                peak_with(d));
  }
  {
    DeviceSpec d = v100();
    d.hbm_gb = 1000;  // memory never binds: every mode fits arbitrarily many
    std::printf("%-44s %6.2fx\n", "- unlimited HBM (capacity never binds)",
                peak_with(d));
  }
  std::printf(
      "\nReading: each mechanism contributes to the headline number; gaps +\n"
      "underfill drive per-model time, the memory model sets where curves "
      "stop.\n");
  return 0;
}
