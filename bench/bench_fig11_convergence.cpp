// Reproduces Figure 11 (and Appendix D): REAL training — not simulated —
// of ResNet-18 on a synthetic CIFAR-10 stand-in with three learning rates
// (paper: 0.0005 / 0.001 / 0.002, Adadelta). The three models train (a)
// independently ("Serial") and (b) as one HFTA-fused array; the per-model
// training-loss curves must overlap. We print both curves per step and the
// maximum divergence.
#include <cstdio>
#include <memory>

#include "data/datasets.h"
#include "data/loader.h"
#include "hfta/fused_optim.h"
#include "hfta/loss_scaling.h"
#include "hfta/train.h"
#include "models/resnet.h"
#include "nn/optim.h"

using namespace hfta;

int main() {
  Rng rng(2021);
  models::ResNetConfig cfg = models::ResNetConfig::tiny();
  cfg.image_size = 8;
  cfg.base_width = 4;
  const int64_t kB = 3;
  const fused::HyperVec lrs = {0.0005 * 1000, 0.001 * 1000, 0.002 * 1000};
  // (Adadelta lr in the paper's range rescaled for the tiny model so the
  //  curves visibly move in a few steps.)

  data::ImageDataset ds(64, cfg.image_size, 3, cfg.num_classes, 77);
  data::BatchSampler sampler(ds.size(), 16, true, 5);

  models::FusedResNet18 fused_model(kB, cfg, rng);
  std::vector<std::shared_ptr<models::ResNet18>> plain;
  std::vector<std::unique_ptr<nn::Adadelta>> plain_opts;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<models::ResNet18>(cfg, rng));
    fused_model.load_model(b, *plain.back());
    plain_opts.push_back(std::make_unique<nn::Adadelta>(
        plain.back()->parameters(),
        nn::Adadelta::Options{.lr = lrs[static_cast<size_t>(b)]}));
  }
  fused::FusedAdadelta fused_opt(
      fused::collect_fused_parameters(fused_model, kB), kB, {.lr = lrs});

  std::printf("Figure 11: training loss per iteration, serial (solid) vs "
              "HFTA (dotted)\n");
  std::printf("%-5s", "step");
  for (int64_t b = 0; b < kB; ++b)
    std::printf("   LR%-7g serial   hfta", lrs[static_cast<size_t>(b)]);
  std::printf("\n");

  double max_div = 0;
  int step = 0;
  TrainStep train;  // one iteration engine for the fused and serial steps
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (const auto& batch_idx : sampler.epoch()) {
      auto [x, y] = ds.batch(batch_idx);
      std::vector<Tensor> xs(kB, x);
      Tensor labels({kB, x.size(0)});
      for (int64_t b = 0; b < kB; ++b)
        for (int64_t n = 0; n < x.size(0); ++n) labels.at({b, n}) = y.at({n});

      std::vector<double> fused_losses;
      train.run(fused_opt, [&] {
        ag::Variable logits =
            fused_model.forward(ag::Variable(fused::pack_channel_fused(xs)));
        fused_losses = fused::per_model_cross_entropy(logits.value(), labels);
        return fused::fused_cross_entropy(logits, labels,
                                          ag::Reduction::kMean);
      });

      std::printf("%-5d", step);
      for (int64_t b = 0; b < kB; ++b) {
        const size_t ub = static_cast<size_t>(b);
        const ag::Variable loss =
            train.run(*plain_opts[ub], [&, &x = x, &y = y] {
              return ag::cross_entropy(plain[ub]->forward(ag::Variable(x)), y,
                                       ag::Reduction::kMean);
            });
        const double serial_loss = loss.value().item();
        std::printf("   %15.4f %7.4f", serial_loss, fused_losses[ub]);
        max_div = std::max(max_div,
                           std::abs(serial_loss - fused_losses[ub]));
      }
      std::printf("\n");
      ++step;
    }
  }
  std::printf("\nmax |serial - HFTA| loss divergence over %d steps: %.5f\n",
              step, max_div);
  std::printf("(paper: dotted curves overlap the solid ones entirely — "
              "HFTA does not affect convergence)\n");
  return 0;
}
