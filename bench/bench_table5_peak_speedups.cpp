// Reproduces Table 5: peak training-throughput speedups of HFTA over each
// baseline (serial / concurrent / MPS / MIG) for the three major benchmarks
// on V100, RTX6000 and A100. For each experiment the higher of FP32/AMP
// throughput is used on both sides, exactly as the paper aggregates.
//
// Paper reference values are printed alongside for shape comparison.
#include <cstdio>

#include "sim/counters.h"

using namespace hfta::sim;

int main() {
  const DeviceSpec devices[] = {v100(), rtx6000(), a100()};
  const Workload workloads[] = {Workload::kPointNetCls, Workload::kPointNetSeg,
                                Workload::kDCGAN};
  // Paper Table 5 values [device][baseline][workload].
  const double paper[3][4][3] = {
      // V100:        cls    seg    dcgan
      {{5.02, 4.29, 4.59},    // serial
       {4.87, 4.24, 2.01},    // concurrent
       {4.50, 3.03, 2.03},    // MPS
       {0, 0, 0}},            // MIG (n/a)
      // RTX6000
      {{4.36, 3.63, 6.29},
       {4.26, 3.54, 1.72},
       {3.79, 2.54, 1.82},
       {0, 0, 0}},
      // A100
      {{11.50, 9.48, 4.41},
       {12.98, 10.26, 1.29},
       {4.72, 2.93, 1.33},
       {4.88, 3.02, 1.33}},
  };
  const Mode baselines[] = {Mode::kSerial, Mode::kConcurrent, Mode::kMps,
                            Mode::kMig};

  std::printf("Table 5: peak HFTA speedup over baselines "
              "(measured | paper)\n");
  std::printf("%-9s %-11s %18s %18s %18s\n", "GPU", "baseline",
              "PointNet-Cls", "PointNet-Seg", "DCGAN");
  for (int d = 0; d < 3; ++d) {
    for (int m = 0; m < 4; ++m) {
      if (baselines[m] == Mode::kMig && devices[d].max_mig_instances == 0)
        continue;
      std::printf("%-9s %-11s", devices[d].name.c_str(),
                  mode_name(baselines[m]));
      for (int w = 0; w < 3; ++w) {
        const double measured =
            peak_speedup_vs(devices[d], workloads[w], baselines[m]);
        std::printf("   %6.2fx | %5.2fx", measured, paper[d][m][w]);
      }
      std::printf("\n");
    }
  }
  return 0;
}
