// Reproduces Table 1 / Figure 9: the GPU-hour breakdown of a two-month
// cluster trace, classified with the paper's Appendix-A methodology
// (single-GPU + batched submission within 60 s + normalized Levenshtein
// name similarity >= 0.9). Paper: repetitive single-GPU 46.2%, isolated
// 3.5%, distributed 24.0%, other 26.3% of 471,768 GPU-hours (51,338 jobs).
#include <cstdio>

#include "cluster/report.h"

using namespace hfta::cluster;

int main() {
  const TraceConfig cfg;  // paper-scale defaults
  const auto jobs = generate_trace(cfg, /*seed=*/2021);
  const auto predicted = classify(jobs);
  const auto b = breakdown(jobs, predicted);
  const auto q = evaluate(jobs, predicted);

  std::printf("Table 1: GPU-hour usage breakdown (classified trace)\n");
  std::printf("%-28s %12s %8s %10s\n", "category", "GPU-hours", "share",
              "paper");
  std::printf("%-28s %11.0fK %7.1f%% %9s\n", "repetitive single-GPU",
              b.repetitive_h / 1e3, 100 * b.repetitive_h / b.total_h(),
              "46.2%");
  std::printf("%-28s %11.0fK %7.1f%% %9s\n", "isolated single-GPU",
              b.isolated_h / 1e3, 100 * b.isolated_h / b.total_h(), "3.5%");
  std::printf("%-28s %11.0fK %7.1f%% %9s\n", "distributed",
              b.distributed_h / 1e3, 100 * b.distributed_h / b.total_h(),
              "24.0%");
  std::printf("%-28s %11.0fK %7.1f%% %9s\n", "other", b.other_h / 1e3,
              100 * b.other_h / b.total_h(), "26.3%");
  std::printf("total: %ld jobs, %.0fK GPU-hours (paper: 51,338 jobs / 472K "
              "GPU-hours)\n",
              b.total_jobs, b.total_h() / 1e3);
  std::printf("\nclassifier vs generator ground truth: precision %.3f, "
              "recall %.3f\n",
              q.precision, q.recall);
  return 0;
}
