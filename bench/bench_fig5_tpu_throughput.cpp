// Reproduces Figure 5: per-core training throughput on TPU v3 for serial
// vs HFTA on the PointNet classification task (paper: 4.93x peak) and
// DCGAN (paper: 15.13x, super-linear due to XLA padding in the serial
// baseline), plus the PointNet-seg footnote result (paper: 1.20x).
#include <cstdio>

#include "sim/counters.h"

using namespace hfta::sim;

int main() {
  const DeviceSpec dev = tpu_v3();
  struct Row {
    Workload w;
    double paper_peak;
  };
  const Row rows[] = {{Workload::kPointNetCls, 4.93},
                      {Workload::kDCGAN, 15.13},
                      {Workload::kPointNetSeg, 1.20}};
  std::printf("Figure 5: TPU v3 normalized throughput (HFTA vs serial)\n");
  for (const Row& row : rows) {
    auto curve = sweep(dev, row.w, Mode::kHfta, Precision::kFP32);
    std::printf("\n%s (paper peak %.2fx):\n  HFTA ", workload_name(row.w),
                row.paper_peak);
    for (const auto& p : curve) std::printf(" %ld:%.2f", p.models, p.normalized);
    std::printf("\n  => measured peak %.2fx | paper %.2fx\n", peak(curve),
                row.paper_peak);
    // Super-linearity check: normalized-per-model > 1 would be super-linear.
    if (!curve.empty()) {
      const auto& last = curve.back();
      std::printf("  per-model efficiency at B=%ld: %.2f (1.0 = linear)\n",
                  last.models,
                  last.normalized / static_cast<double>(last.models) *
                      static_cast<double>(last.models) / last.normalized);
    }
  }
  std::printf("\nNote: the paper attributes DCGAN's super-linear factor to\n"
              "XLA padding waste in the serial baseline; our model captures\n"
              "the padding + per-step overhead mechanisms but lands below\n"
              "the paper's 15.13x (see EXPERIMENTS.md).\n");
  return 0;
}
