// Reproduces Figure 13: the nvidia-smi-defined "GPU utilization" for the
// PointNet classification task on A100. The paper's point: this counter is
// noisy and does NOT track real utilization — it reports near-plateau
// values regardless of mode, unlike the DCGM counters of Fig. 7.
#include <cmath>
#include <cstdio>

#include "sim/counters.h"

using namespace hfta::sim;

int main() {
  const DeviceSpec dev = a100();
  std::printf("Figure 13: nvidia-smi \"GPU utilization\" on A100, PointNet "
              "classification\n");
  double spread_nvsmi = 0, spread_smactive = 0;
  for (Mode mode : {Mode::kSerial, Mode::kConcurrent, Mode::kMps, Mode::kMig,
                    Mode::kHfta}) {
    auto curve = sweep(dev, Workload::kPointNetCls, mode, Precision::kAMP, 25);
    if (curve.empty()) continue;
    std::printf("  %-11s", mode_name(mode));
    double lo = 1, hi = 0;
    for (const auto& p : curve) {
      std::printf(" %ld:%.2f", p.models, p.result.counters.nvsmi_util);
      lo = std::min(lo, p.result.counters.nvsmi_util);
      hi = std::max(hi, p.result.counters.nvsmi_util);
      spread_smactive =
          std::max(spread_smactive, p.result.counters.sm_active);
    }
    spread_nvsmi = std::max(spread_nvsmi, hi - lo);
    std::printf("\n");
  }
  std::printf("\n=> \"GPU utilization\" is a weak indicator: it sits high and "
              "noisy for every mode\n   while sm_active (Fig. 7) spans up to "
              "%.2f across modes.\n",
              spread_smactive);
  return 0;
}
