// Reproduces Table 9 (Appendix G): maximum HFTA speedup over each baseline
// GIVEN THE SAME NUMBER of models sharing the GPU — isolating the compute-
// utilization benefit from the memory-capacity benefit.
#include <cstdio>

#include "sim/counters.h"

using namespace hfta::sim;

int main() {
  const DeviceSpec devices[] = {v100(), rtx6000(), a100()};
  const Workload workloads[] = {Workload::kPointNetCls, Workload::kPointNetSeg,
                                Workload::kDCGAN};
  std::printf("Table 9: max HFTA speedup at equal model counts\n");
  std::printf("%-9s %-5s %-11s %14s %14s %10s\n", "GPU", "prec", "baseline",
              "PointNet-Cls", "PointNet-Seg", "DCGAN");
  for (const DeviceSpec& dev : devices) {
    for (Precision prec : {Precision::kFP32, Precision::kAMP}) {
      for (Mode mode : {Mode::kConcurrent, Mode::kMps, Mode::kMig}) {
        if (mode == Mode::kMig && dev.max_mig_instances == 0) continue;
        std::printf("%-9s %-5s %-11s", dev.name.c_str(),
                    precision_name(prec), mode_name(mode));
        for (Workload w : workloads)
          std::printf(" %13.2fx", equal_models_speedup(dev, w, mode, prec));
        std::printf("\n");
      }
    }
  }
  return 0;
}
