// Micro-benchmarks of the REAL fused CPU kernels (google-benchmark):
// B separate ops vs their horizontally fused counterpart. Even on CPU the
// fused form wins by amortizing per-op dispatch and exposing more parallel
// work per kernel — the same mechanisms the paper exploits on GPUs/TPUs.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/vec.h"
#include "hfta/fused_optim.h"
#include "hfta/fused_ops.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "tensor/conv.h"
#include "tensor/matmul.h"

using namespace hfta;

namespace {

constexpr int64_t kN = 8, kC = 16, kHW = 16, kK = 3;

void BM_ConvSeparate(benchmark::State& state) {
  const int64_t B = state.range(0);
  Rng rng(1);
  std::vector<Tensor> xs, ws;
  for (int64_t b = 0; b < B; ++b) {
    xs.push_back(Tensor::randn({kN, kC, kHW, kHW}, rng));
    ws.push_back(Tensor::randn({kC, kC, kK, kK}, rng));
  }
  const auto args = ops::ConvArgs::make(1, 1);
  for (auto _ : state) {
    for (int64_t b = 0; b < B; ++b) {
      benchmark::DoNotOptimize(
          ops::conv2d(xs[static_cast<size_t>(b)], ws[static_cast<size_t>(b)],
                      Tensor(), args));
    }
  }
}
BENCHMARK(BM_ConvSeparate)->Arg(2)->Arg(4)->Arg(8);

void BM_ConvFusedGrouped(benchmark::State& state) {
  const int64_t B = state.range(0);
  Rng rng(1);
  Tensor x = Tensor::randn({kN, B * kC, kHW, kHW}, rng);
  Tensor w = Tensor::randn({B * kC, kC, kK, kK}, rng);
  const auto args = ops::ConvArgs::make(1, 1, B);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::conv2d(x, w, Tensor(), args));
  }
}
BENCHMARK(BM_ConvFusedGrouped)->Arg(2)->Arg(4)->Arg(8);

void BM_LinearSeparate(benchmark::State& state) {
  const int64_t B = state.range(0);
  Rng rng(2);
  const int64_t M = 64, in = 128, out = 128;
  std::vector<Tensor> xs, ws, bs;
  for (int64_t b = 0; b < B; ++b) {
    xs.push_back(Tensor::randn({M, in}, rng));
    ws.push_back(Tensor::randn({out, in}, rng));
    bs.push_back(Tensor::randn({out}, rng));
  }
  for (auto _ : state) {
    for (int64_t b = 0; b < B; ++b) {
      benchmark::DoNotOptimize(ops::linear_forward(
          xs[static_cast<size_t>(b)], ws[static_cast<size_t>(b)],
          bs[static_cast<size_t>(b)]));
    }
  }
}
BENCHMARK(BM_LinearSeparate)->Arg(2)->Arg(4)->Arg(8);

void BM_LinearFusedBaddbmm(benchmark::State& state) {
  const int64_t B = state.range(0);
  Rng rng(2);
  const int64_t M = 64, in = 128, out = 128;
  Tensor x = Tensor::randn({B, M, in}, rng);
  Tensor w = Tensor::randn({B, in, out}, rng);
  Tensor bias = Tensor::randn({B, 1, out}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::baddbmm(bias, x, w));
  }
}
BENCHMARK(BM_LinearFusedBaddbmm)->Arg(2)->Arg(4)->Arg(8);

// matmul_nt (x @ w^T, the linear_forward kernel): the dot-product NT
// microkernel vs the old transpose-then-NN-GEMM route it replaced.
void BM_MatmulNTDirect(benchmark::State& state) {
  const int64_t M = state.range(0), K = state.range(0), N = state.range(0);
  Rng rng(4);
  Tensor a = Tensor::randn({M, K}, rng);
  Tensor b = Tensor::randn({N, K}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul_nt(a, b));
  }
}
BENCHMARK(BM_MatmulNTDirect)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulNTViaTranspose(benchmark::State& state) {
  const int64_t M = state.range(0), K = state.range(0), N = state.range(0);
  Rng rng(4);
  Tensor a = Tensor::randn({M, K}, rng);
  Tensor b = Tensor::randn({N, K}, rng);
  for (auto _ : state) {
    // The pre-microkernel implementation: materialize b^T, then NN GEMM.
    Tensor bt = b.transpose(0, 1);
    benchmark::DoNotOptimize(ops::matmul(a, bt));
  }
}
BENCHMARK(BM_MatmulNTViaTranspose)->Arg(64)->Arg(128)->Arg(256);

void BM_AdamSeparate(benchmark::State& state) {
  const int64_t B = state.range(0);
  Rng rng(3);
  const int64_t P = 1 << 16;
  std::vector<std::unique_ptr<nn::Adam>> opts;
  std::vector<ag::Variable> params;
  for (int64_t b = 0; b < B; ++b) {
    ag::Variable p(Tensor::randn({P}, rng), true);
    p.grad().copy_(Tensor::randn({P}, rng));
    params.push_back(p);
    opts.push_back(std::make_unique<nn::Adam>(
        std::vector<ag::Variable>{p}, nn::Adam::Options{.lr = 1e-3 * (b + 1)}));
  }
  for (auto _ : state) {
    for (auto& o : opts) o->step();
  }
}
BENCHMARK(BM_AdamSeparate)->Arg(4)->Arg(16);

void BM_AdamFused(benchmark::State& state) {
  const int64_t B = state.range(0);
  Rng rng(3);
  const int64_t P = 1 << 16;
  ag::Variable p(Tensor::randn({B * P}, rng), true);
  p.grad().copy_(Tensor::randn({B * P}, rng));
  fused::HyperVec lrs;
  for (int64_t b = 0; b < B; ++b) lrs.push_back(1e-3 * (b + 1));
  fused::FusedAdam opt({{p, B}}, B, {.lr = lrs});
  for (auto _ : state) {
    opt.step();
  }
}
BENCHMARK(BM_AdamFused)->Arg(4)->Arg(16);

// ---- packed SIMD GEMM vs forced-scalar baseline -----------------------------
// Same kernel, both backends: the scalar leg runs the 8-wide virtual-lane
// emulation (the bit-exactness reference), so the ratio isolates what the
// AVX2 microkernel itself buys at each square size.

void BM_GemmPackedSimd(benchmark::State& state) {
  const int64_t M = state.range(0), K = state.range(0), N = state.range(0);
  Rng rng(5);
  Tensor a = Tensor::randn({M, K}, rng);
  Tensor b = Tensor::randn({K, N}, rng);
  vec::set_simd_enabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetLabel(vec::simd_name());
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(2 * M * N * K) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_GemmPackedSimd)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmForcedScalar(benchmark::State& state) {
  const int64_t M = state.range(0), K = state.range(0), N = state.range(0);
  Rng rng(5);
  Tensor a = Tensor::randn({M, K}, rng);
  Tensor b = Tensor::randn({K, N}, rng);
  vec::set_simd_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  vec::set_simd_enabled(true);
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(2 * M * N * K) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_GemmForcedScalar)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// ---- dtype cast throughput --------------------------------------------------
// The AMP hot loop: f32 -> half at GEMM entry, half -> f32 at packing.

void BM_CastF32ToF16(benchmark::State& state) {
  const int64_t n = 1 << 20;
  Rng rng(6);
  Tensor src = Tensor::randn({n}, rng);
  std::vector<uint16_t> dst(static_cast<size_t>(n));
  for (auto _ : state) {
    vec::cast_f32_to_f16(src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetLabel(vec::simd_name());
  state.SetBytesProcessed(state.iterations() * n * 6);  // 4 in + 2 out
}
BENCHMARK(BM_CastF32ToF16);

void BM_CastF16ToF32(benchmark::State& state) {
  const int64_t n = 1 << 20;
  Rng rng(6);
  Tensor srcf = Tensor::randn({n}, rng);
  std::vector<uint16_t> src(static_cast<size_t>(n));
  vec::cast_f32_to_f16(srcf.data(), src.data(), n);
  std::vector<float> dst(static_cast<size_t>(n));
  for (auto _ : state) {
    vec::cast_f16_to_f32(src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 6);
}
BENCHMARK(BM_CastF16ToF32);

}  // namespace

BENCHMARK_MAIN();
