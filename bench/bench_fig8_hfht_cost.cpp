// Reproduces Figure 8: total GPU-hours of four end-to-end hyper-parameter
// tuning workloads on V100 — {PointNet, MobileNet} x {random search,
// Hyperband} — under the serial / concurrent / MPS / HFTA job schedulers.
// Paper headline: HFTA cuts total cost by up to 5.10x, and random search
// benefits more than Hyperband (Appendix E's fusion-opportunity argument).
//
// Flags (all optional; defaults reproduce the paper figure):
//   --trials N     shrink the tuning budgets (random-search set count and
//                  Hyperband's R) for CI smoke runs
//   --seed N       tuning seed (default 2021)
//   --json PATH    additionally write the table as JSON (CI artifact)
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "hfht/tuner.h"

using namespace hfta::hfht;

namespace {

struct Row {
  Task task;
  AlgorithmKind algo;
  double hours[4];
  int64_t trials;
};

void write_json(const char* path, uint64_t seed, int64_t trials_override,
                const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"figure\": \"fig8_hfht_cost\",\n  \"seed\": %llu,\n"
               "  \"trials_override\": %ld,\n  \"rows\": [\n",
               static_cast<unsigned long long>(seed), trials_override);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"task\": \"%s\", \"algorithm\": \"%s\", "
                 "\"total_trials\": %ld, \"serial_h\": %.3f, "
                 "\"concurrent_h\": %.3f, \"mps_h\": %.3f, \"hfta_h\": %.3f, "
                 "\"saving\": %.4f}%s\n",
                 task_name(r.task), algorithm_name(r.algo), r.trials,
                 r.hours[0], r.hours[1], r.hours[2], r.hours[3],
                 r.hours[0] / r.hours[3], i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  int64_t trials_override = 0;
  int64_t seed = 2021;
  const char* json_path = nullptr;
  auto usage = [&]() {
    std::fprintf(stderr, "usage: %s [--trials N] [--seed N] [--json PATH]\n",
                 argv[0]);
    return 1;
  };
  // strtol instead of std::stol: malformed values print usage, not abort.
  auto parse_count = [&](const char* s, int64_t* out, int64_t lo) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(s, &end, 10);
    if (errno != 0 || end == s || *end != '\0' || v < lo) return false;
    *out = v;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], &trials_override, 1)) return usage();
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], &seed, 0)) return usage();
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return usage();
    }
  }

  const auto dev = hfta::sim::v100();
  std::printf("Figure 8: total GPU-hours for tuning 8 hyper-parameters "
              "(V100)\n");
  std::printf("%-10s %-14s %12s %12s %12s %12s %9s\n", "task", "algorithm",
              "serial", "concurrent", "MPS", "HFTA", "saving");
  std::vector<Row> rows;
  for (Task task : {Task::kPointNet, Task::kMobileNet}) {
    for (AlgorithmKind algo :
         {AlgorithmKind::kRandomSearch, AlgorithmKind::kHyperband}) {
      Row row{task, algo, {0, 0, 0, 0}, 0};
      const SchedulerKind kinds[4] = {SchedulerKind::kSerial,
                                      SchedulerKind::kConcurrent,
                                      SchedulerKind::kMps,
                                      SchedulerKind::kHfta};
      for (int k = 0; k < 4; ++k) {
        const TuneResult r =
            run_tuning(task, algo, kinds[k], dev,
                       static_cast<uint64_t>(seed), trials_override);
        row.hours[k] = r.total_gpu_hours;
        row.trials = r.total_trials;
      }
      std::printf("%-10s %-14s %11.1fh %11.1fh %11.1fh %11.1fh %8.2fx\n",
                  task_name(task), algorithm_name(algo), row.hours[0],
                  row.hours[1], row.hours[2], row.hours[3],
                  row.hours[0] / row.hours[3]);
      rows.push_back(row);
    }
  }
  std::printf("\npaper: HFTA saves up to 5.10x total GPU-hours; random search "
              "benefits more\nthan Hyperband (whose few-jobs/many-epochs "
              "rounds leave little to fuse).\n");
  if (json_path != nullptr) {
    write_json(json_path, static_cast<uint64_t>(seed), trials_override, rows);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
