// Reproduces Figure 8: total GPU-hours of four end-to-end hyper-parameter
// tuning workloads on V100 — {PointNet, MobileNet} x {random search,
// Hyperband} — under the serial / concurrent / MPS / HFTA job schedulers.
// Paper headline: HFTA cuts total cost by up to 5.10x, and random search
// benefits more than Hyperband (Appendix E's fusion-opportunity argument).
#include <cstdio>

#include "hfht/tuner.h"

using namespace hfta::hfht;

int main() {
  const auto dev = hfta::sim::v100();
  std::printf("Figure 8: total GPU-hours for tuning 8 hyper-parameters "
              "(V100)\n");
  std::printf("%-10s %-14s %12s %12s %12s %12s %9s\n", "task", "algorithm",
              "serial", "concurrent", "MPS", "HFTA", "saving");
  for (Task task : {Task::kPointNet, Task::kMobileNet}) {
    for (AlgorithmKind algo :
         {AlgorithmKind::kRandomSearch, AlgorithmKind::kHyperband}) {
      double hours[4] = {0, 0, 0, 0};
      const SchedulerKind kinds[4] = {SchedulerKind::kSerial,
                                      SchedulerKind::kConcurrent,
                                      SchedulerKind::kMps,
                                      SchedulerKind::kHfta};
      TuneResult last;
      for (int k = 0; k < 4; ++k) {
        last = run_tuning(task, algo, kinds[k], dev, /*seed=*/2021);
        hours[k] = last.total_gpu_hours;
      }
      std::printf("%-10s %-14s %11.1fh %11.1fh %11.1fh %11.1fh %8.2fx\n",
                  task_name(task), algorithm_name(algo), hours[0], hours[1],
                  hours[2], hours[3], hours[0] / hours[3]);
    }
  }
  std::printf("\npaper: HFTA saves up to 5.10x total GPU-hours; random search "
              "benefits more\nthan Hyperband (whose few-jobs/many-epochs "
              "rounds leave little to fuse).\n");
  return 0;
}
