// Reproduces Figure 7: DCGM counters (sm_active, sm_occupancy,
// tensor_active) on A100 for the PointNet classification task as the
// number of models sharing the GPU grows, per mode. Expected shapes:
// HFTA's counters keep climbing with B; MPS/MIG plateau earlier and lower;
// concurrent stays at the serial level.
#include <cstdio>

#include "sim/counters.h"

using namespace hfta::sim;

static void subplot(const DeviceSpec& dev, const char* title,
                    double Counters::*field) {
  std::printf("\nFig 7 subplot: %s on %s\n", title, dev.name.c_str());
  for (Mode mode : {Mode::kSerial, Mode::kConcurrent, Mode::kMps, Mode::kMig,
                    Mode::kHfta}) {
    if (mode == Mode::kMig && dev.max_mig_instances == 0) continue;
    auto curve = sweep(dev, Workload::kPointNetCls, mode, Precision::kAMP, 25);
    if (curve.empty()) continue;
    std::printf("  %-11s", mode_name(mode));
    for (const auto& p : curve)
      std::printf(" %ld:%.2f", p.models, p.result.counters.*field);
    std::printf("\n");
  }
}

int main() {
  const DeviceSpec dev = a100();
  subplot(dev, "sm_active", &Counters::sm_active);
  subplot(dev, "sm_occupancy", &Counters::sm_occupancy);
  subplot(dev, "tensor_active", &Counters::tensor_active);
  return 0;
}
