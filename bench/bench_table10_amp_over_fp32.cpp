// Reproduces Table 10 (Appendix G): maximum AMP-over-FP32 throughput ratio
// per mode. Paper's shape: baselines sit near 1.0x (small kernels cannot
// amortize tensor-core format conversions) while HFTA reaches 1.9-2.65x;
// on A100, HFTA's DCGAN ratio drops BELOW 1.0 (cuDNN backward regression).
#include <cstdio>

#include "sim/counters.h"

using namespace hfta::sim;

int main() {
  const DeviceSpec devices[] = {v100(), rtx6000(), a100()};
  const Workload workloads[] = {Workload::kPointNetCls, Workload::kPointNetSeg,
                                Workload::kDCGAN};
  std::printf("Table 10: max AMP-over-FP32 throughput ratios\n");
  std::printf("%-9s %-11s %14s %14s %10s\n", "GPU", "mode", "PointNet-Cls",
              "PointNet-Seg", "DCGAN");
  for (const DeviceSpec& dev : devices) {
    for (Mode mode : {Mode::kSerial, Mode::kConcurrent, Mode::kMps, Mode::kMig,
                      Mode::kHfta}) {
      if (mode == Mode::kMig && dev.max_mig_instances == 0) continue;
      std::printf("%-9s %-11s", dev.name.c_str(), mode_name(mode));
      for (Workload w : workloads)
        std::printf(" %13.2fx", amp_over_fp32(dev, w, mode));
      std::printf("\n");
    }
  }
  std::printf("\npaper anchors (V100 HFTA): 1.92 / 2.65 / 1.10; A100 HFTA "
              "DCGAN: 0.82\n");
  return 0;
}
