// Reproduces Table 10 (Appendix G): maximum AMP-over-FP32 throughput ratio
// per mode. Paper's shape: baselines sit near 1.0x (small kernels cannot
// amortize tensor-core format conversions) while HFTA reaches 1.9-2.65x;
// on A100, HFTA's DCGAN ratio drops BELOW 1.0 (cuDNN backward regression).
// The sim rows are predictions; the measured section runs the real fused
// path on this CPU in fp32 and bf16 AMP, where the same ratio reports the
// software-cast cost instead of the tensor-core win — the honest measured
// counterpart next to the predicted column.
//
//   --json PATH   write the sim table and the measured section as JSON
#include <cstdio>
#include <cstring>

#include "measured_amp.h"
#include "sim/counters.h"

using namespace hfta::sim;

namespace {

struct SimRow {
  const char* gpu;
  const char* mode;
  double vals[3];
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 1;
    }
  }
  const DeviceSpec devices[] = {v100(), rtx6000(), a100()};
  const Workload workloads[] = {Workload::kPointNetCls, Workload::kPointNetSeg,
                                Workload::kDCGAN};
  std::vector<SimRow> rows;
  std::printf("Table 10: max AMP-over-FP32 throughput ratios (sim)\n");
  std::printf("%-9s %-11s %14s %14s %10s\n", "GPU", "mode", "PointNet-Cls",
              "PointNet-Seg", "DCGAN");
  for (const DeviceSpec& dev : devices) {
    for (Mode mode : {Mode::kSerial, Mode::kConcurrent, Mode::kMps, Mode::kMig,
                      Mode::kHfta}) {
      if (mode == Mode::kMig && dev.max_mig_instances == 0) continue;
      SimRow r{dev.name.c_str(), mode_name(mode), {}};
      std::printf("%-9s %-11s", r.gpu, r.mode);
      for (size_t wi = 0; wi < 3; ++wi) {
        r.vals[wi] = amp_over_fp32(dev, workloads[wi], mode);
        std::printf(" %13.2fx", r.vals[wi]);
      }
      std::printf("\n");
      rows.push_back(r);
    }
  }
  std::printf("\npaper anchors (V100 HFTA): 1.92 / 2.65 / 1.10; A100 HFTA "
              "DCGAN: 0.82\n");

  const hfta::benchamp::MeasuredAmp m =
      hfta::benchamp::measure_fused_amp(/*B=*/4, /*steps=*/100, /*warmup=*/5);
  std::printf("\nmeasured AMP-over-FP32 on this CPU (B=%ld fused array, "
              "software half — cast cost, no tensor cores): %.2fx\n"
              "  fp32 replay: %.1f it/s   bf16 AMP replay: %.1f it/s   "
              "|final loss gap|: %.2e\n",
              m.models, m.amp_over_fp32, m.fp32_iters_per_sec,
              m.amp_iters_per_sec, m.loss_gap);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"table\": \"table10_amp_over_fp32\",\n"
                 "  \"sim_rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const SimRow& r = rows[i];
      std::fprintf(f,
                   "    {\"gpu\": \"%s\", \"mode\": \"%s\", "
                   "\"pointnet_cls\": %.4f, \"pointnet_seg\": %.4f, "
                   "\"dcgan\": %.4f}%s\n",
                   r.gpu, r.mode, r.vals[0], r.vals[1], r.vals[2],
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"measured_cpu\": {\n"
                 "    \"models\": %ld,\n"
                 "    \"fp32_iters_per_sec\": %.2f,\n"
                 "    \"amp_iters_per_sec\": %.2f,\n"
                 "    \"amp_over_fp32\": %.4f,\n"
                 "    \"amp_vs_fp32_loss_gap\": %.2e,\n"
                 "    \"overflow_skips\": %ld\n  }\n}\n",
                 m.models, m.fp32_iters_per_sec, m.amp_iters_per_sec,
                 m.amp_over_fp32, m.loss_gap, m.overflow_skips);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
