// Reproduces Table 8 (Appendix G): peak HFTA speedups over the baselines
// split by precision (FP32 vs AMP) — unlike Table 5, which takes the
// better of the two. The sim rows are tensor-core *predictions*; next to
// them the bench trains a real fused array on this CPU in fp32 and bf16
// AMP and reports the *measured* throughput by precision (software-half
// cast cost) plus the measured AMP-vs-fp32 loss gap.
//
//   --json PATH   write the sim table and the measured section as JSON
#include <cstdio>
#include <cstring>

#include "measured_amp.h"
#include "sim/counters.h"

using namespace hfta::sim;

namespace {

double peak_vs(const DeviceSpec& dev, Workload w, Mode mode, Precision prec) {
  const double denom = peak(sweep(dev, w, mode, prec));
  if (denom == 0) return 0;
  return peak(sweep(dev, w, Mode::kHfta, prec)) / denom;
}

struct SimRow {
  const char* gpu;
  const char* prec;
  const char* baseline;
  double vals[3];
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 1;
    }
  }
  const DeviceSpec devices[] = {v100(), rtx6000(), a100()};
  const Workload workloads[] = {Workload::kPointNetCls, Workload::kPointNetSeg,
                                Workload::kDCGAN};
  std::vector<SimRow> rows;
  std::printf("Table 8: peak HFTA speedups split by precision (sim)\n");
  std::printf("%-9s %-5s %-11s %14s %14s %10s\n", "GPU", "prec", "baseline",
              "PointNet-Cls", "PointNet-Seg", "DCGAN");
  for (const DeviceSpec& dev : devices) {
    for (Precision prec : {Precision::kFP32, Precision::kAMP}) {
      for (Mode mode :
           {Mode::kSerial, Mode::kConcurrent, Mode::kMps, Mode::kMig}) {
        if (mode == Mode::kMig && dev.max_mig_instances == 0) continue;
        SimRow r{dev.name.c_str(), precision_name(prec), mode_name(mode), {}};
        std::printf("%-9s %-5s %-11s", r.gpu, r.prec, r.baseline);
        for (size_t wi = 0; wi < 3; ++wi) {
          r.vals[wi] = peak_vs(dev, workloads[wi], mode, prec);
          std::printf(" %13.2fx", r.vals[wi]);
        }
        std::printf("\n");
        rows.push_back(r);
      }
    }
  }

  // Measured on this host: same fused array, fp32 vs bf16 AMP, for real.
  const hfta::benchamp::MeasuredAmp m =
      hfta::benchamp::measure_fused_amp(/*B=*/4, /*steps=*/100, /*warmup=*/5);
  std::printf("\nmeasured on this CPU (B=%ld fused array, software half — "
              "cast cost, no tensor cores):\n", m.models);
  std::printf("  fp32 replay: %.1f it/s   bf16 AMP replay: %.1f it/s   "
              "AMP/fp32: %.2fx\n",
              m.fp32_iters_per_sec, m.amp_iters_per_sec, m.amp_over_fp32);
  std::printf("  amp vs fp32 |final loss gap|: %.2e (quantization error — "
              "measured, not hidden; overflow skips: %ld)\n",
              m.loss_gap, m.overflow_skips);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"table\": \"table8_peak_by_precision\",\n"
                 "  \"sim_rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const SimRow& r = rows[i];
      std::fprintf(f,
                   "    {\"gpu\": \"%s\", \"precision\": \"%s\", "
                   "\"baseline\": \"%s\", \"pointnet_cls\": %.4f, "
                   "\"pointnet_seg\": %.4f, \"dcgan\": %.4f}%s\n",
                   r.gpu, r.prec, r.baseline, r.vals[0], r.vals[1], r.vals[2],
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"measured_cpu\": {\n"
                 "    \"models\": %ld,\n"
                 "    \"fp32_iters_per_sec\": %.2f,\n"
                 "    \"amp_iters_per_sec\": %.2f,\n"
                 "    \"amp_over_fp32\": %.4f,\n"
                 "    \"amp_vs_fp32_loss_gap\": %.2e,\n"
                 "    \"overflow_skips\": %ld\n  }\n}\n",
                 m.models, m.fp32_iters_per_sec, m.amp_iters_per_sec,
                 m.amp_over_fp32, m.loss_gap, m.overflow_skips);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
