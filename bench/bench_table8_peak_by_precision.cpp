// Reproduces Table 8 (Appendix G): peak HFTA speedups over the baselines
// split by precision (FP32 vs AMP) — unlike Table 5, which takes the
// better of the two.
#include <cstdio>

#include "sim/counters.h"

using namespace hfta::sim;

static double peak_vs(const DeviceSpec& dev, Workload w, Mode mode,
                      Precision prec) {
  const double denom = peak(sweep(dev, w, mode, prec));
  if (denom == 0) return 0;
  return peak(sweep(dev, w, Mode::kHfta, prec)) / denom;
}

int main() {
  const DeviceSpec devices[] = {v100(), rtx6000(), a100()};
  const Workload workloads[] = {Workload::kPointNetCls, Workload::kPointNetSeg,
                                Workload::kDCGAN};
  std::printf("Table 8: peak HFTA speedups split by precision\n");
  std::printf("%-9s %-5s %-11s %14s %14s %10s\n", "GPU", "prec", "baseline",
              "PointNet-Cls", "PointNet-Seg", "DCGAN");
  for (const DeviceSpec& dev : devices) {
    for (Precision prec : {Precision::kFP32, Precision::kAMP}) {
      for (Mode mode :
           {Mode::kSerial, Mode::kConcurrent, Mode::kMps, Mode::kMig}) {
        if (mode == Mode::kMig && dev.max_mig_instances == 0) continue;
        std::printf("%-9s %-5s %-11s", dev.name.c_str(),
                    precision_name(prec), mode_name(mode));
        for (Workload w : workloads)
          std::printf(" %13.2fx", peak_vs(dev, w, mode, prec));
        std::printf("\n");
      }
    }
  }
  return 0;
}
