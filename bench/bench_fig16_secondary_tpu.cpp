// Reproduces Figure 16: the secondary benchmarks on TPU v3 (serial vs
// HFTA). Paper peaks: 2.98x-6.43x over serial. The paper also notes the
// ResNet-18 curve is cut where throughput starts to DEGRADE (TPU memory
// system effects past per-core capacity) rather than at OOM.
#include <cstdio>

#include "sim/counters.h"

using namespace hfta::sim;

int main() {
  const DeviceSpec dev = tpu_v3();
  const Workload workloads[] = {Workload::kResNet18, Workload::kMobileNetV3,
                                Workload::kTransformer,
                                Workload::kBertMedium};
  std::printf("Figure 16: secondary benchmarks on TPU v3 (B:normalized)\n");
  for (Workload w : workloads) {
    auto curve = sweep(dev, w, Mode::kHfta, Precision::kFP32);
    std::printf("\n%-18s HFTA", workload_name(w));
    for (const auto& p : curve) std::printf(" %ld:%.2f", p.models, p.normalized);
    std::printf("\n  => peak %.2fx over serial (paper band: 2.98-6.43x)\n",
                peak(curve));
  }
  return 0;
}
