// Shared helper for the precision tables: next to the sim's predicted
// tensor-core ratios, measure fp32-vs-AMP fused training FOR REAL on this
// CPU. The half formats are software-converted here, so the measured ratio
// reports the cost of the casts (typically < 1.0x) where the sim prices the
// tensor-core win (> 1.0x) — printing both keeps the tables honest about
// which number is a prediction and which is a measurement. The measured
// run also reports the AMP-vs-fp32 final-loss gap: real quantization error,
// reported rather than hidden.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/storage_pool.h"
#include "hfta/fused_optim.h"
#include "hfta/fused_ops.h"
#include "hfta/loss_scaling.h"
#include "hfta/train.h"
#include "tensor/ops.h"

namespace hfta::benchamp {

struct MeasuredAmp {
  int64_t models = 0;
  double fp32_iters_per_sec = 0;
  double amp_iters_per_sec = 0;
  double amp_over_fp32 = 0;  // measured ratio (cast cost, not tensor cores)
  double loss_gap = 0;       // |amp final loss - fp32 final loss|
  int64_t overflow_skips = 0;  // must be 0 for this well-scaled workload
};

namespace detail {

struct BenchMlp : fused::FusedModule {
  BenchMlp(int64_t B, Rng& rng) : fused::FusedModule(B) {
    fc1 = register_module(
        "fc1", std::make_shared<fused::FusedLinear>(B, 16, 32, true, rng));
    fc2 = register_module(
        "fc2", std::make_shared<fused::FusedLinear>(B, 32, 4, true, rng));
  }
  ag::Variable forward(const ag::Variable& x) override {
    return fc2->forward(ag::relu(fc1->forward(x)));
  }
  std::shared_ptr<fused::FusedLinear> fc1, fc2;
};

// One timed replay-mode training run; returns {iters/sec, final loss}.
inline std::pair<double, double> timed_run(int64_t B, bool amp, int steps,
                                           int warmup, int64_t* skips) {
  StoragePool::instance().trim();
  Rng rng(1);
  BenchMlp model(B, rng);
  fused::FusedAdam opt(fused::collect_fused_parameters(model, B), B,
                       {.lr = {1e-3}});
  Rng data_rng(2);
  Tensor x = Tensor::randn({8, 16}, data_rng);
  Tensor labels({B, 8});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t n = 0; n < 8; ++n)
      labels.at({b, n}) = static_cast<float>(n % 4);
  TrainStep step;
  step.enable_capture();
  if (amp) step.enable_amp();
  double last = 0.0;
  auto one = [&] {
    ag::Variable loss = step.run(opt, [&] {
      ag::Variable logits = model.forward(
          ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
      return fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean);
    });
    last = loss.value().item();
  };
  for (int s = 0; s < warmup; ++s) one();
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < steps; ++s) one();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (skips != nullptr) *skips = amp ? step.scaler().overflow_skips() : 0;
  return {static_cast<double>(steps) / secs, last};
}

}  // namespace detail

// Trains the same B-model fused array twice — fp32 and bf16 AMP — in
// replay mode and reports throughput, the measured AMP/fp32 ratio, and the
// final-loss gap. Deterministic apart from the timings.
inline MeasuredAmp measure_fused_amp(int64_t B, int steps, int warmup) {
  MeasuredAmp m;
  m.models = B;
  auto [fp32_ips, fp32_loss] =
      detail::timed_run(B, /*amp=*/false, steps, warmup, nullptr);
  auto [amp_ips, amp_loss] =
      detail::timed_run(B, /*amp=*/true, steps, warmup, &m.overflow_skips);
  m.fp32_iters_per_sec = fp32_ips;
  m.amp_iters_per_sec = amp_ips;
  m.amp_over_fp32 = fp32_ips > 0 ? amp_ips / fp32_ips : 0;
  m.loss_gap = std::fabs(amp_loss - fp32_loss);
  return m;
}

}  // namespace hfta::benchamp
