// Reproduces Figure 6: GPU memory footprint of MPS vs HFTA on V100 for the
// PointNet classification task as the number of models grows, with fitted
// regression lines. The paper's observations: MPS lines pass through the
// origin (per-process duplication); HFTA's intercepts equal the framework
// reservation (1.52 GB FP32 / 2.12 GB AMP).
#include <cstdio>

#include "sim/execution.h"

using namespace hfta::sim;

namespace {

// Least-squares fit y = a*x + b.
void fit(const std::vector<double>& xs, const std::vector<double>& ys,
         double* a, double* b) {
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  *a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  *b = (sy - *a * sx) / n;
}

}  // namespace

int main() {
  const DeviceSpec dev = v100();
  const IterationTrace single = build_trace(Workload::kPointNetCls, 1);
  std::printf("Figure 6: V100 memory footprint, PointNet classification\n");
  for (Precision prec : {Precision::kFP32, Precision::kAMP}) {
    for (Mode mode : {Mode::kMps, Mode::kHfta}) {
      const int64_t cap = max_models(dev, Workload::kPointNetCls, mode, prec);
      std::vector<double> xs, ys;
      std::printf("%-5s %-4s:", mode_name(mode), precision_name(prec));
      for (int64_t b = 1; b <= cap; ++b) {
        const double gb = memory_gb(dev, single, mode, b, prec);
        xs.push_back(static_cast<double>(b));
        ys.push_back(gb);
        std::printf(" %ld:%.2fGB", b, gb);
      }
      double slope = 0, intercept = 0;
      fit(xs, ys, &slope, &intercept);
      std::printf("\n      fit: %.2f GB/model + %.2f GB intercept\n", slope,
                  intercept);
    }
  }
  std::printf(
      "\npaper: HFTA intercepts = framework overhead (1.52 GB FP32, 2.12 GB "
      "AMP);\nMPS lines pass through (0,0) with steeper slopes.\n");
  return 0;
}
