// Reproduces Figure 4 (a-i): normalized per-GPU training throughput as the
// number of models sharing the GPU grows, for {V100, RTX6000, A100} x
// {PointNet-cls, PointNet-seg, DCGAN} x {FP32, AMP} under serial /
// concurrent / MPS / MIG(A100) / HFTA. Each curve stops at its memory
// capacity, exactly as the paper's curves do.
#include <cstdio>

#include "sim/counters.h"

using namespace hfta::sim;

namespace {

void print_curve(const char* label, const std::vector<SweepPoint>& curve) {
  if (curve.empty()) return;
  std::printf("  %-18s", label);
  for (const auto& p : curve) {
    std::printf(" %ld:%.2f", p.models, p.normalized);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const DeviceSpec devices[] = {v100(), rtx6000(), a100()};
  const Workload workloads[] = {Workload::kPointNetCls, Workload::kPointNetSeg,
                                Workload::kDCGAN};
  const char* subfig[3][3] = {{"4a", "4b", "4c"},
                              {"4d", "4e", "4f"},
                              {"4g", "4h", "4i"}};

  std::printf("Figure 4: normalized throughput vs #models per GPU\n");
  std::printf("(format B:normalized, relative to the FP32 serial baseline)\n");
  for (int d = 0; d < 3; ++d) {
    for (int w = 0; w < 3; ++w) {
      std::printf("\nFig %s: %s on %s\n", subfig[d][w],
                  workload_name(workloads[w]), devices[d].name.c_str());
      for (Precision prec : {Precision::kFP32, Precision::kAMP}) {
        char label[64];
        for (Mode mode : {Mode::kSerial, Mode::kConcurrent, Mode::kMps,
                          Mode::kMig, Mode::kHfta}) {
          if (mode == Mode::kMig && devices[d].max_mig_instances == 0)
            continue;
          auto curve = sweep(devices[d], workloads[w], mode, prec, 40);
          std::snprintf(label, sizeof(label), "%s-%s", mode_name(mode),
                        precision_name(prec));
          print_curve(label, curve);
        }
      }
      // headline: peak HFTA speedup over serial on this subplot
      std::printf("  => peak HFTA speedup over serial: %.2fx\n",
                  peak_speedup_vs(devices[d], workloads[w], Mode::kSerial));
    }
  }
  return 0;
}
