// Reproduces Figure 14 (Appendix G): the V100 analog of Figure 7's counter
// plots. The paper's extra observation: the serial baseline's utilization
// is HIGHER on V100 than on A100 — newer, bigger GPUs suffer more from
// repetitive single-job under-utilization.
#include <cstdio>

#include "sim/counters.h"

using namespace hfta::sim;

static void subplot(const DeviceSpec& dev, const char* title,
                    double Counters::*field) {
  std::printf("\nFig 14 subplot: %s on %s\n", title, dev.name.c_str());
  for (Mode mode :
       {Mode::kSerial, Mode::kConcurrent, Mode::kMps, Mode::kHfta}) {
    auto curve = sweep(dev, Workload::kPointNetCls, mode, Precision::kAMP, 25);
    if (curve.empty()) continue;
    std::printf("  %-11s", mode_name(mode));
    for (const auto& p : curve)
      std::printf(" %ld:%.2f", p.models, p.result.counters.*field);
    std::printf("\n");
  }
}

int main() {
  const DeviceSpec dev = v100();
  subplot(dev, "sm_active", &Counters::sm_active);
  subplot(dev, "sm_occupancy", &Counters::sm_occupancy);
  subplot(dev, "tensor_active", &Counters::tensor_active);

  // Cross-device observation supporting §2.1.
  const auto v = simulate(v100(), Workload::kPointNetCls, Mode::kSerial, 1,
                          Precision::kFP32);
  const auto a = simulate(a100(), Workload::kPointNetCls, Mode::kSerial, 1,
                          Precision::kFP32);
  std::printf("\nserial sm_active: V100 %.3f vs A100 %.3f (paper: lower on "
              "A100)\n",
              v.counters.sm_active, a.counters.sm_active);
  return 0;
}
