// Iteration-engine benchmark: what do pooled tensor storage, the reusable
// backward engine, and step-program replay buy on the real fused training
// hot loop?
//
// Trains a fused MLP array at several array sizes B in three modes:
//   baseline  the faithful pre-engine hot loop: pool disabled, every
//             allocation heap-backed AND zero-filled like the old
//             std::vector storage, fresh backward() scratch per step
//   engine    TrainStep: pooled storage, uninitialized full-overwrite
//             allocs, reused ag::Engine — still re-records the tape
//   replay    TrainStep with step-program capture: the step is captured
//             once and replayed tape-free — no ag::Node constructions, no
//             backward closures, no topo sort, zero heap allocations
// and reports iterations/sec, tensor-storage heap allocations per
// iteration, and autograd Node constructions per iteration. The training
// math is bit-identical in all modes (train_test asserts pooled == heap,
// step_program_test and the audit below assert replay == eager to the
// bit); only the iteration overhead differs.
//
// Flags (defaults keep CI smoke fast):
//   --steps N        timed iterations per measurement (default 200)
//   --warmup N       untimed warm-up iterations (default 10; replay mode
//                    captures during warm-up)
//   --repeats N      measurements per configuration; iterations/sec is the
//                    best of N (minimum-time estimator — on a shared/1-core
//                    host a single run is hostage to scheduler noise)
//   --json PATH      additionally write the table as JSON (CI artifact /
//                    BENCH_iteration_engine.json trajectory point)
//   --threads LIST   comma-separated worker counts for the scaling sweep
//                    (default "1,2,4,8"); each count re-runs the replay
//                    configuration at the largest B and the sweep also
//                    cross-checks that the final training loss is
//                    bit-identical at every thread count
//   --amp            additionally measure the replay configuration under
//                    f16 autocast + dynamic loss scaling (the paper's AMP
//                    recipe; F16C gives hardware conversion): AMP replay
//                    throughput per B (software-converted half on CPU —
//                    the measured cost of the casts, not the tensor-core
//                    win the sim prices), warm-step allocation counts
//                    (must stay 0), the measured AMP-vs-fp32 final-loss
//                    gap, and an exercised overflow-skip/backoff cycle
//                    (init scale 2^130 overflows float, so the first
//                    steps MUST skip and back off before training resumes)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/op_counters.h"
#include "core/vec.h"
#include "core/parallel.h"
#include "core/storage_pool.h"
#include "hfta/fused_optim.h"
#include "hfta/fused_ops.h"
#include "hfta/loss_scaling.h"
#include "hfta/train.h"
#include "nn/layers.h"
#include "tensor/ops.h"

using namespace hfta;
using Clock = std::chrono::steady_clock;

namespace {

// Deep-narrow MLP array: many small fused ops per iteration, the regime
// where per-iteration overhead (allocation, zero-fill, traversal scratch,
// tape re-recording) is a real fraction of the step — exactly what HFTA's
// small-model arrays look like.
struct FusedMlp : fused::FusedModule {
  FusedMlp(int64_t B, int64_t in, int64_t hidden, int64_t classes,
           int64_t depth, Rng& rng)
      : fused::FusedModule(B) {
    int64_t prev = in;
    for (int64_t d = 0; d < depth; ++d) {
      layers.push_back(register_module(
          "fc" + std::to_string(d),
          std::make_shared<fused::FusedLinear>(B, prev, hidden, true, rng)));
      prev = hidden;
    }
    head = register_module(
        "head",
        std::make_shared<fused::FusedLinear>(B, prev, classes, true, rng));
  }
  ag::Variable forward(const ag::Variable& x) override {
    ag::Variable h = x;
    for (auto& l : layers) h = ag::relu(l->forward(h));
    return head->forward(h);
  }
  std::vector<std::shared_ptr<fused::FusedLinear>> layers;
  std::shared_ptr<fused::FusedLinear> head;
};

enum class Mode { kBaseline, kEngine, kReplay };

struct Row {
  int64_t models;
  double baseline_iters_per_sec;
  double engine_iters_per_sec;
  double replay_iters_per_sec;
  double allocs_per_iter_baseline;  // heap allocs, pool off
  double allocs_per_iter_engine;    // steady-state heap allocs, pool on
  double allocs_per_iter_replay;    // must be 0: replay allocates nothing
  double nodes_per_iter_engine;     // ag::Node builds, eager tape
  double nodes_per_iter_replay;     // must be 0: replay is tape-free
  double speedup_engine;            // engine / baseline
  double speedup_replay;            // replay / baseline
};

struct Measurement {
  double iters_per_sec;
  double allocs_per_iter;
  double nodes_per_iter;
};

constexpr int64_t kIn = 16, kHidden = 16, kClasses = 4, kN = 8, kDepth = 8;

// One configuration: B fused models, `steps` timed iterations. With
// amp=true the TrainStep runs f16 autocast + loss scaling (engine/replay
// modes only — the pre-engine baseline has no TrainStep to scale).
Measurement run_config(int64_t B, Mode mode, int steps, int warmup,
                       bool amp = false) {
  // Baseline = the pre-iteration-engine hot loop, faithfully: no recycling
  // and every allocation zero-filled (old std::vector-backed storage).
  const bool engine_on = mode != Mode::kBaseline;
  StoragePool::Config cfg;
  cfg.enabled = engine_on;
  cfg.zero_fill_all = !engine_on;
  StoragePool::instance().set_config(cfg);
  StoragePool::instance().trim();
  Rng rng(1);
  FusedMlp model(B, kIn, kHidden, kClasses, kDepth, rng);
  fused::FusedAdam opt(fused::collect_fused_parameters(model, B), B,
                       {.lr = {1e-3}});
  Rng data_rng(2);
  Tensor x = Tensor::randn({kN, kIn}, data_rng);
  Tensor labels({B, kN});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t n = 0; n < kN; ++n)
      labels.at({b, n}) = static_cast<float>(n % kClasses);

  TrainStep step;
  if (mode == Mode::kReplay) step.enable_capture();
  if (amp) {
    TrainStep::AmpOptions ao;
    ao.dtype = DType::kF16;
    step.enable_amp(ao);
  }
  auto loss_fn = [&] {
    ag::Variable logits = model.forward(
        ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
    return fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean);
  };
  auto one_iter = [&] {
    if (engine_on) {
      step.run(opt, loss_fn);
    } else {
      // The pre-engine hot loop: same five lines, fresh traversal scratch
      // per backward, every tensor allocation on the heap.
      IterationScope scope;
      opt.zero_grad();
      ag::Variable loss = loss_fn();
      loss.backward();
      opt.step();
    }
  };
  // Replay mode captures during warm-up (warmup eager step + capture step),
  // so every timed iteration is a pure replay.
  for (int s = 0; s < warmup; ++s) one_iter();

  const uint64_t allocs0 = StoragePool::instance().stats().heap_allocs;
  const uint64_t nodes0 = counters::node_constructions();
  const auto t0 = Clock::now();
  for (int s = 0; s < steps; ++s) one_iter();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  const uint64_t allocs = StoragePool::instance().stats().heap_allocs - allocs0;
  const uint64_t nodes = counters::node_constructions() - nodes0;

  StoragePool::instance().set_config(StoragePool::Config{});
  StoragePool::instance().trim();
  return {static_cast<double>(steps) / secs,
          static_cast<double>(allocs) / static_cast<double>(steps),
          static_cast<double>(nodes) / static_cast<double>(steps)};
}

// Replay-vs-eager bit-exactness audit: two identical configurations (same
// init and data seeds), one trained eagerly, one through captured replay,
// compared on every step's loss value. Any drift — a stale pinned buffer,
// a reordered accumulation — shows up as a nonzero max diff.
double replay_vs_eager_audit(int64_t B, int audit_steps) {
  struct Twin {
    std::unique_ptr<FusedMlp> model;
    std::unique_ptr<fused::FusedAdam> opt;
    Tensor x, labels;
    TrainStep step;
  };
  auto make = [&](Twin& t) {
    Rng rng(1);
    t.model = std::make_unique<FusedMlp>(B, kIn, kHidden, kClasses, kDepth, rng);
    t.opt = std::make_unique<fused::FusedAdam>(
        fused::collect_fused_parameters(*t.model, B), B,
        fused::FusedAdam::Options{.lr = {1e-3}});
    Rng data_rng(2);
    t.x = Tensor::randn({kN, kIn}, data_rng);
    t.labels = Tensor({B, kN});
    for (int64_t b = 0; b < B; ++b)
      for (int64_t n = 0; n < kN; ++n)
        t.labels.at({b, n}) = static_cast<float>(n % kClasses);
  };
  Twin eager, replay;
  make(eager);
  make(replay);
  replay.step.enable_capture();
  double max_diff = 0.0;
  for (int s = 0; s < audit_steps; ++s) {
    auto loss_of = [](Twin& t) {
      return t.step.run(*t.opt, [&] {
        ag::Variable logits = t.model->forward(ag::Variable(
            fused::pack_model_major(std::vector<Tensor>(t.opt->array_size(),
                                                        t.x))));
        return fused::fused_cross_entropy(logits, t.labels,
                                          ag::Reduction::kMean);
      });
    };
    const double le = loss_of(eager).value().item();
    const double lr = loss_of(replay).value().item();
    max_diff = std::max(max_diff, std::fabs(le - lr));
  }
  return max_diff;
}

// One scaling-sweep measurement: replay mode at a fixed worker count.
struct ThreadRow {
  int threads;
  double replay_iters_per_sec;
  double allocs_per_iter;   // must stay 0: warm replay allocates nothing
  double final_loss;        // bit-compared across thread counts
};

// Trains a fresh captured/replayed configuration to completion at the
// current worker count and returns the final loss. Partition boundaries are
// a pure function of problem size, so this must be bit-identical for every
// thread count — the sweep asserts it.
double final_loss_at_current_threads(int64_t B, int train_steps) {
  StoragePool::instance().set_config(StoragePool::Config{});
  StoragePool::instance().trim();
  Rng rng(1);
  FusedMlp model(B, kIn, kHidden, kClasses, kDepth, rng);
  fused::FusedAdam opt(fused::collect_fused_parameters(model, B), B,
                       {.lr = {1e-3}});
  Rng data_rng(2);
  Tensor x = Tensor::randn({kN, kIn}, data_rng);
  Tensor labels({B, kN});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t n = 0; n < kN; ++n)
      labels.at({b, n}) = static_cast<float>(n % kClasses);
  TrainStep step;
  step.enable_capture();
  double last = 0.0;
  for (int s = 0; s < train_steps; ++s) {
    ag::Variable loss = step.run(opt, [&] {
      ag::Variable logits = model.forward(
          ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
      return fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean);
    });
    last = loss.value().item();
  }
  return last;
}

// ---- mixed precision (--amp) ----------------------------------------------

struct AmpRow {
  int64_t models;
  double amp_replay_iters_per_sec;
  double allocs_per_iter;  // must stay 0: casts replay as thunks, the seed
                           // and unscale are in-place
  double nodes_per_iter;   // must stay 0: AMP replay is tape-free too
  double vs_fp32_replay;   // amp / fp32 replay throughput
};

struct AmpSummary {
  double final_loss_fp32 = 0;
  double final_loss_amp = 0;
  double loss_gap = 0;          // |amp - fp32|: real quantization error
  int64_t overflow_skips = 0;   // from the 2^130 exercise; must be >= 1
  double recovered_scale = 0;   // scale after the backoff cycle
  int64_t clean_skips = 0;      // skips in the normal run; should be 0
};

// Paired fp32-vs-AMP replay measurement: two identical configurations (one
// fp32, one AMP) run ALTERNATING kBlock-step slices over the same wall-clock
// window, and each side reports its median slice time. A hot loop's turbo
// clock decays over a multi-second bench run, so two sequentially-measured
// modes see different frequencies and their ratio measures the drift, not
// the work; fine-grained alternation hands both modes the same frequency
// profile, and medians shrug off scheduler spikes. AMP-side pool/node
// counters accumulate across the AMP slices only (must both stay 0).
struct AmpPairMeasurement {
  double fp32_iters_per_sec;
  double amp_iters_per_sec;
  double amp_allocs_per_iter;
  double amp_nodes_per_iter;
};

AmpPairMeasurement run_amp_pair(int64_t B, int total_steps, int warmup) {
  StoragePool::Config cfg;
  cfg.enabled = true;
  StoragePool::instance().set_config(cfg);
  StoragePool::instance().trim();
  struct Side {
    std::unique_ptr<FusedMlp> model;
    std::unique_ptr<fused::FusedAdam> opt;
    Tensor x, labels;
    TrainStep step;
    std::function<ag::Variable()> loss_fn;
  };
  Side sides[2];
  for (int i = 0; i < 2; ++i) {
    Side& s = sides[i];
    Rng rng(1);
    s.model =
        std::make_unique<FusedMlp>(B, kIn, kHidden, kClasses, kDepth, rng);
    s.opt = std::make_unique<fused::FusedAdam>(
        fused::collect_fused_parameters(*s.model, B), B,
        fused::FusedAdam::Options{.lr = {1e-3}});
    Rng data_rng(2);
    s.x = Tensor::randn({kN, kIn}, data_rng);
    s.labels = Tensor({B, kN});
    for (int64_t b = 0; b < B; ++b)
      for (int64_t n = 0; n < kN; ++n)
        s.labels.at({b, n}) = static_cast<float>(n % kClasses);
    s.step.enable_capture();
    if (i == 1) {
      TrainStep::AmpOptions ao;
      ao.dtype = DType::kF16;
      s.step.enable_amp(ao);
    }
    Side* sp = &s;
    s.loss_fn = [sp, B] {
      ag::Variable logits = sp->model->forward(ag::Variable(
          fused::pack_model_major(std::vector<Tensor>(B, sp->x))));
      return fused::fused_cross_entropy(logits, sp->labels,
                                        ag::Reduction::kMean);
    };
  }
  auto iters = [&](int side, int n) {
    for (int i = 0; i < n; ++i)
      sides[side].step.run(*sides[side].opt, sides[side].loss_fn);
  };
  iters(0, warmup + 1);
  iters(1, warmup + 1);

  const int kBlock = 50;
  const int rounds = std::max(1, total_steps / kBlock);
  std::vector<double> t_fp32, t_amp;
  uint64_t amp_allocs = 0, amp_nodes = 0;
  // Alternating the slice order as well as the slices removes any
  // within-round position bias (e.g. a turbo budget that decays over the
  // round would otherwise always penalize whichever side runs second).
  for (int r = 0; r < rounds; ++r) {
    const int first = r % 2;
    for (int s = 0; s < 2; ++s) {
      const int side = s == 0 ? first : 1 - first;
      const uint64_t a0 = StoragePool::instance().stats().heap_allocs;
      const uint64_t n0 = counters::node_constructions();
      const auto t0 = Clock::now();
      iters(side, kBlock);
      const auto t1 = Clock::now();
      if (side == 1) {
        amp_allocs += StoragePool::instance().stats().heap_allocs - a0;
        amp_nodes += counters::node_constructions() - n0;
        t_amp.push_back(std::chrono::duration<double>(t1 - t0).count());
      } else {
        t_fp32.push_back(std::chrono::duration<double>(t1 - t0).count());
      }
    }
  }
  std::sort(t_fp32.begin(), t_fp32.end());
  std::sort(t_amp.begin(), t_amp.end());
  const double med_fp32 = t_fp32[t_fp32.size() / 2];
  const double med_amp = t_amp[t_amp.size() / 2];
  StoragePool::instance().set_config(StoragePool::Config{});
  StoragePool::instance().trim();
  const double total_amp_steps = static_cast<double>(rounds) * kBlock;
  return {static_cast<double>(kBlock) / med_fp32,
          static_cast<double>(kBlock) / med_amp,
          static_cast<double>(amp_allocs) / total_amp_steps,
          static_cast<double>(amp_nodes) / total_amp_steps};
}

// Same configuration as final_loss_at_current_threads but trained under
// AMP; also reports the scaler's skip counter.
double amp_final_loss(int64_t B, int train_steps, double init_scale,
                      int64_t* skips_out, double* scale_out) {
  StoragePool::instance().set_config(StoragePool::Config{});
  StoragePool::instance().trim();
  Rng rng(1);
  FusedMlp model(B, kIn, kHidden, kClasses, kDepth, rng);
  fused::FusedAdam opt(fused::collect_fused_parameters(model, B), B,
                       {.lr = {1e-3}});
  Rng data_rng(2);
  Tensor x = Tensor::randn({kN, kIn}, data_rng);
  Tensor labels({B, kN});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t n = 0; n < kN; ++n)
      labels.at({b, n}) = static_cast<float>(n % kClasses);
  TrainStep step;
  step.enable_capture();
  TrainStep::AmpOptions ao;
  ao.dtype = DType::kF16;
  ao.scaler.init_scale = init_scale;
  step.enable_amp(ao);
  double last = 0.0;
  for (int s = 0; s < train_steps; ++s) {
    ag::Variable loss = step.run(opt, [&] {
      ag::Variable logits = model.forward(
          ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
      return fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean);
    });
    last = loss.value().item();
  }
  if (skips_out != nullptr) *skips_out = step.scaler().overflow_skips();
  if (scale_out != nullptr) *scale_out = step.scaler().scale();
  return last;
}

void write_json(const char* path, int steps, const std::vector<Row>& rows,
                double audit_max_diff,
                const std::vector<ThreadRow>& sweep,
                double sweep_max_loss_diff,
                const std::vector<AmpRow>& amp_rows,
                const AmpSummary* amp) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"figure\": \"iteration_engine\",\n"
               "  \"steps\": %d,\n  \"simd\": \"%s\",\n"
               "  \"replay_vs_eager_max_diff\": %.2e,\n"
               "  \"rows\": [\n", steps, vec::simd_name(), audit_max_diff);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"models\": %ld, \"engine_iters_per_sec\": %.2f, "
                 "\"baseline_iters_per_sec\": %.2f, "
                 "\"replay_iters_per_sec\": %.2f, "
                 "\"allocs_per_iter_engine\": %.2f, "
                 "\"allocs_per_iter_baseline\": %.2f, "
                 "\"allocs_per_iter_replay\": %.2f, "
                 "\"nodes_per_iter_engine\": %.2f, "
                 "\"nodes_per_iter_replay\": %.2f, "
                 "\"speedup\": %.4f, "
                 "\"speedup_replay\": %.4f}%s\n",
                 r.models, r.engine_iters_per_sec, r.baseline_iters_per_sec,
                 r.replay_iters_per_sec, r.allocs_per_iter_engine,
                 r.allocs_per_iter_baseline, r.allocs_per_iter_replay,
                 r.nodes_per_iter_engine, r.nodes_per_iter_replay,
                 r.speedup_engine, r.speedup_replay,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"threads_sweep_max_loss_diff\": %.2e,\n",
               sweep_max_loss_diff);
  std::fprintf(f, "  \"threads_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const ThreadRow& t = sweep[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"replay_iters_per_sec\": %.2f, "
                 "\"allocs_per_iter\": %.2f, \"final_loss\": %.9e}%s\n",
                 t.threads, t.replay_iters_per_sec, t.allocs_per_iter,
                 t.final_loss, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  if (amp != nullptr) {
    std::fprintf(f, ",\n  \"amp\": {\n    \"dtype\": \"f16\",\n"
                 "    \"rows\": [\n");
    for (size_t i = 0; i < amp_rows.size(); ++i) {
      const AmpRow& r = amp_rows[i];
      std::fprintf(f,
                   "      {\"models\": %ld, \"amp_replay_iters_per_sec\": "
                   "%.2f, \"allocs_per_iter\": %.2f, \"nodes_per_iter\": "
                   "%.2f, \"vs_fp32_replay\": %.4f}%s\n",
                   r.models, r.amp_replay_iters_per_sec, r.allocs_per_iter,
                   r.nodes_per_iter, r.vs_fp32_replay,
                   i + 1 < amp_rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "    ],\n"
                 "    \"final_loss_fp32\": %.9e,\n"
                 "    \"final_loss_amp\": %.9e,\n"
                 "    \"amp_vs_fp32_loss_gap\": %.2e,\n"
                 "    \"clean_run_overflow_skips\": %ld,\n"
                 "    \"overflow_exercise_skips\": %ld,\n"
                 "    \"overflow_exercise_recovered_scale\": %.6e\n  }",
                 amp->final_loss_fp32, amp->final_loss_amp, amp->loss_gap,
                 amp->clean_skips, amp->overflow_skips, amp->recovered_scale);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  int steps = 200;
  int warmup = 10;
  int repeats = 3;
  bool amp = false;
  const char* json_path = nullptr;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  auto usage = [&]() {
    std::fprintf(stderr,
                 "usage: %s [--steps N] [--warmup N] [--repeats N] "
                 "[--json PATH] [--threads N,N,...] [--amp]\n",
                 argv[0]);
    return 1;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoi(argv[++i]);
      if (steps < 1) return usage();
    } else if (std::strcmp(argv[i], "--warmup") == 0 && i + 1 < argc) {
      warmup = std::atoi(argv[++i]);
      if (warmup < 1) return usage();
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
      if (repeats < 1) return usage();
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--amp") == 0) {
      amp = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v < 1) return usage();
        thread_counts.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
      }
      if (thread_counts.empty()) return usage();
    } else {
      return usage();
    }
  }

  std::printf("iteration engine: pooled storage + reused backward engine + "
              "step-program replay vs the plain hot loop\n");
  std::printf("(fused MLP array, %d timed fwd+bwd+step iterations per "
              "configuration)\n\n", steps);
  std::printf("%-8s %14s %14s %14s %11s %10s %9s %9s\n", "models",
              "baseline it/s", "engine it/s", "replay it/s", "allocs/it",
              "nodes/it", "engine", "replay");
  std::vector<Row> rows;
  for (int64_t B : {1, 2, 4, 8}) {
    // Alternate modes within each repeat so slow drift hits all equally.
    Measurement base{0, 0, 0}, eng{0, 0, 0}, rep{0, 0, 0};
    for (int r = 0; r < repeats; ++r) {
      const Measurement b_i = run_config(B, Mode::kBaseline, steps, warmup);
      const Measurement e_i = run_config(B, Mode::kEngine, steps, warmup);
      const Measurement r_i = run_config(B, Mode::kReplay, steps, warmup);
      if (b_i.iters_per_sec > base.iters_per_sec) base = b_i;
      if (e_i.iters_per_sec > eng.iters_per_sec) eng = e_i;
      if (r_i.iters_per_sec > rep.iters_per_sec) rep = r_i;
    }
    const Row r{B,
                base.iters_per_sec,
                eng.iters_per_sec,
                rep.iters_per_sec,
                base.allocs_per_iter,
                eng.allocs_per_iter,
                rep.allocs_per_iter,
                eng.nodes_per_iter,
                rep.nodes_per_iter,
                eng.iters_per_sec / base.iters_per_sec,
                rep.iters_per_sec / base.iters_per_sec};
    rows.push_back(r);
    std::printf("%-8ld %14.1f %14.1f %14.1f %11.2f %10.2f %8.2fx %8.2fx\n",
                r.models, r.baseline_iters_per_sec, r.engine_iters_per_sec,
                r.replay_iters_per_sec, r.allocs_per_iter_replay,
                r.nodes_per_iter_replay, r.speedup_engine, r.speedup_replay);
  }
  std::printf("\n(allocs/it, nodes/it = replay mode's per-iteration heap "
              "allocations and autograd Node\nconstructions; both must be "
              "0.00 — a replayed step allocates and records nothing)\n");
  const double audit = replay_vs_eager_audit(/*B=*/4, /*audit_steps=*/20);
  std::printf("replay-vs-eager max |loss diff| over 20 steps at B=4: %.2e\n",
              audit);

  // Scaling sweep: replay mode at the largest B across worker counts.
  // Fixed partition boundaries mean the math cannot change with the worker
  // count — the final-loss column must agree to the bit on every row.
  const int default_threads = num_threads();
  std::printf("\nthread scaling, replay mode at B=8 (host has %u hardware "
              "threads)\n", std::thread::hardware_concurrency());
  std::printf("%-8s %14s %11s %16s\n", "threads", "replay it/s", "allocs/it",
              "final loss");
  std::vector<ThreadRow> sweep;
  double sweep_max_loss_diff = 0.0;
  for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
    set_num_threads(thread_counts[ti]);
    Measurement best{0, 0, 0};
    for (int r = 0; r < repeats; ++r) {
      const Measurement m = run_config(8, Mode::kReplay, steps, warmup);
      if (m.iters_per_sec > best.iters_per_sec) best = m;
    }
    const double loss = final_loss_at_current_threads(/*B=*/8,
                                                      /*train_steps=*/20);
    sweep.push_back(ThreadRow{thread_counts[ti], best.iters_per_sec,
                              best.allocs_per_iter, loss});
    sweep_max_loss_diff =
        std::max(sweep_max_loss_diff, std::fabs(loss - sweep[0].final_loss));
    std::printf("%-8d %14.1f %11.2f %16.9e\n", thread_counts[ti],
                best.iters_per_sec, best.allocs_per_iter, loss);
  }
  set_num_threads(default_threads);
  std::printf("max |final loss diff| across thread counts: %.2e "
              "(must be 0.00e+00)\n", sweep_max_loss_diff);

  // Mixed precision: measured AMP replay next to the fp32 replay column.
  // f16 is the paper's AMP format and the one this host converts in
  // hardware (F16C); even so, CPU AMP does strictly more work than fp32
  // (quantize-on-pack + overflow scan with no half-precision FMA to pay
  // for it), so the honest ceiling is parity — the sim's tables 8/10
  // price the tensor-core win. What must hold regardless of speed: zero
  // allocations and zero node constructions per warm AMP step, and a
  // real (reported) loss gap.
  std::vector<AmpRow> amp_rows;
  AmpSummary amp_summary;
  if (amp) {
    std::printf("\nmixed precision: f16 autocast + dynamic loss scaling, "
                "replay mode\n");
    std::printf("%-8s %16s %16s %9s %11s %10s\n", "models", "fp32 replay it/s",
                "amp replay it/s", "vs fp32", "allocs/it", "nodes/it");
    for (size_t bi = 0; bi < rows.size(); ++bi) {
      const int64_t B = rows[bi].models;
      // Alternating-slice pairing (see run_amp_pair): the section-1 fp32
      // numbers were taken minutes earlier at a different turbo/thermal
      // state, and a ratio across that gap measures the host's frequency
      // decay, not the cost of mixed precision.
      const AmpPairMeasurement m = run_amp_pair(B, steps * repeats, warmup);
      const AmpRow ar{B, m.amp_iters_per_sec, m.amp_allocs_per_iter,
                      m.amp_nodes_per_iter,
                      m.amp_iters_per_sec / m.fp32_iters_per_sec};
      amp_rows.push_back(ar);
      std::printf("%-8ld %16.1f %16.1f %8.2fx %11.2f %10.2f\n", ar.models,
                  m.fp32_iters_per_sec, ar.amp_replay_iters_per_sec,
                  ar.vs_fp32_replay, ar.allocs_per_iter, ar.nodes_per_iter);
    }
    amp_summary.final_loss_fp32 =
        final_loss_at_current_threads(/*B=*/8, /*train_steps=*/20);
    amp_summary.final_loss_amp =
        amp_final_loss(/*B=*/8, /*train_steps=*/20, /*init_scale=*/65536.0,
                       &amp_summary.clean_skips, nullptr);
    amp_summary.loss_gap =
        std::fabs(amp_summary.final_loss_amp - amp_summary.final_loss_fp32);
    std::printf("amp vs fp32 |final loss gap| at B=8 over 20 steps: %.2e "
                "(f16 quantization error — measured, not hidden; clean-run "
                "overflow skips: %ld)\n",
                amp_summary.loss_gap, amp_summary.clean_skips);
    // Overflow exercise: 2^130 overflows float, so the first steps MUST
    // skip + back off before training resumes at a finite scale.
    amp_final_loss(/*B=*/8, /*train_steps=*/20,
                   /*init_scale=*/std::ldexp(1.0, 130),
                   &amp_summary.overflow_skips, &amp_summary.recovered_scale);
    std::printf("overflow exercise (init scale 2^130): skips: %ld, "
                "recovered scale: %.3e, training resumed\n",
                amp_summary.overflow_skips, amp_summary.recovered_scale);
  }

  if (json_path != nullptr) {
    write_json(json_path, steps, rows, audit, sweep, sweep_max_loss_diff,
               amp_rows, amp ? &amp_summary : nullptr);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
