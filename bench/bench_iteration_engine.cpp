// Iteration-engine benchmark: what do pooled tensor storage + the reusable
// backward engine buy on the real fused training hot loop?
//
// Trains a fused MLP array at several array sizes B, with the iteration
// engine ON (TrainStep: pooled storage, uninitialized full-overwrite
// allocs, reused ag::Engine) and OFF (the faithful pre-engine hot loop:
// pool disabled, every allocation heap-backed AND zero-filled like the old
// std::vector storage, fresh backward() scratch per step), and reports
// iterations/sec plus tensor-storage heap allocations per iteration for
// both. The training math is bit-identical in both modes (train_test
// asserts pooled == heap to the bit); only the iteration overhead differs.
//
// Flags (defaults keep CI smoke fast):
//   --steps N        timed iterations per measurement (default 200)
//   --warmup N       untimed warm-up iterations (default 10)
//   --repeats N      measurements per configuration; iterations/sec is the
//                    best of N (minimum-time estimator — on a shared/1-core
//                    host a single run is hostage to scheduler noise)
//   --json PATH      additionally write the table as JSON (CI artifact /
//                    BENCH_iteration_engine.json trajectory point)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/storage_pool.h"
#include "hfta/fused_optim.h"
#include "hfta/fused_ops.h"
#include "hfta/loss_scaling.h"
#include "hfta/train.h"
#include "nn/layers.h"
#include "tensor/ops.h"

using namespace hfta;
using Clock = std::chrono::steady_clock;

namespace {

// Deep-narrow MLP array: many small fused ops per iteration, the regime
// where per-iteration overhead (allocation, zero-fill, traversal scratch)
// is a real fraction of the step — exactly what HFTA's small-model arrays
// look like.
struct FusedMlp : fused::FusedModule {
  FusedMlp(int64_t B, int64_t in, int64_t hidden, int64_t classes,
           int64_t depth, Rng& rng)
      : fused::FusedModule(B) {
    int64_t prev = in;
    for (int64_t d = 0; d < depth; ++d) {
      layers.push_back(register_module(
          "fc" + std::to_string(d),
          std::make_shared<fused::FusedLinear>(B, prev, hidden, true, rng)));
      prev = hidden;
    }
    head = register_module(
        "head",
        std::make_shared<fused::FusedLinear>(B, prev, classes, true, rng));
  }
  ag::Variable forward(const ag::Variable& x) override {
    ag::Variable h = x;
    for (auto& l : layers) h = ag::relu(l->forward(h));
    return head->forward(h);
  }
  std::vector<std::shared_ptr<fused::FusedLinear>> layers;
  std::shared_ptr<fused::FusedLinear> head;
};

struct Row {
  int64_t models;
  double engine_iters_per_sec;
  double baseline_iters_per_sec;
  double allocs_per_iter_engine;    // steady-state heap allocs, pool on
  double allocs_per_iter_baseline;  // heap allocs, pool off
  double speedup;
};

struct Measurement {
  double iters_per_sec;
  double allocs_per_iter;
};

// One configuration: B fused models, `steps` timed iterations.
Measurement run_config(int64_t B, bool engine_on, int steps, int warmup) {
  // OFF = the pre-iteration-engine hot loop, faithfully: no recycling and
  // every allocation zero-filled (old std::vector-backed storage).
  StoragePool::instance().set_enabled(engine_on);
  StoragePool::instance().set_zero_fill_all(!engine_on);
  StoragePool::instance().trim();
  const int64_t in = 16, hidden = 16, classes = 4, N = 8, depth = 8;
  Rng rng(1);
  FusedMlp model(B, in, hidden, classes, depth, rng);
  fused::FusedAdam opt(fused::collect_fused_parameters(model, B), B,
                       {.lr = {1e-3}});
  Rng data_rng(2);
  Tensor x = Tensor::randn({N, in}, data_rng);
  Tensor labels({B, N});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t n = 0; n < N; ++n)
      labels.at({b, n}) = static_cast<float>(n % classes);

  TrainStep step;
  auto loss_fn = [&] {
    ag::Variable logits = model.forward(
        ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
    return fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean);
  };
  auto one_iter = [&] {
    if (engine_on) {
      step.run(opt, loss_fn);
    } else {
      // The pre-engine hot loop: same five lines, fresh traversal scratch
      // per backward, every tensor allocation on the heap.
      IterationScope scope;
      opt.zero_grad();
      ag::Variable loss = loss_fn();
      loss.backward();
      opt.step();
    }
  };
  for (int s = 0; s < warmup; ++s) one_iter();

  const uint64_t allocs0 = Tensor::alloc_count();
  const auto t0 = Clock::now();
  for (int s = 0; s < steps; ++s) one_iter();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  const uint64_t allocs = Tensor::alloc_count() - allocs0;

  StoragePool::instance().set_enabled(true);
  StoragePool::instance().set_zero_fill_all(false);
  StoragePool::instance().trim();
  return {static_cast<double>(steps) / secs,
          static_cast<double>(allocs) / static_cast<double>(steps)};
}

void write_json(const char* path, int steps, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"figure\": \"iteration_engine\",\n"
               "  \"steps\": %d,\n  \"rows\": [\n", steps);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"models\": %ld, \"engine_iters_per_sec\": %.2f, "
                 "\"baseline_iters_per_sec\": %.2f, "
                 "\"allocs_per_iter_engine\": %.2f, "
                 "\"allocs_per_iter_baseline\": %.2f, "
                 "\"speedup\": %.4f}%s\n",
                 r.models, r.engine_iters_per_sec, r.baseline_iters_per_sec,
                 r.allocs_per_iter_engine, r.allocs_per_iter_baseline,
                 r.speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  int steps = 200;
  int warmup = 10;
  int repeats = 3;
  const char* json_path = nullptr;
  auto usage = [&]() {
    std::fprintf(stderr,
                 "usage: %s [--steps N] [--warmup N] [--repeats N] "
                 "[--json PATH]\n",
                 argv[0]);
    return 1;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoi(argv[++i]);
      if (steps < 1) return usage();
    } else if (std::strcmp(argv[i], "--warmup") == 0 && i + 1 < argc) {
      warmup = std::atoi(argv[++i]);
      if (warmup < 0) return usage();
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
      if (repeats < 1) return usage();
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return usage();
    }
  }

  std::printf("iteration engine: pooled storage + reused backward engine vs "
              "the plain hot loop\n");
  std::printf("(fused MLP array, %d timed fwd+bwd+step iterations per "
              "configuration)\n\n", steps);
  std::printf("%-8s %16s %16s %14s %14s %9s\n", "models", "engine it/s",
              "baseline it/s", "allocs/it on", "allocs/it off", "speedup");
  std::vector<Row> rows;
  for (int64_t B : {1, 2, 4, 8}) {
    // Alternate modes within each repeat so slow drift hits both equally.
    Measurement on{0, 0}, off{0, 0};
    for (int rep = 0; rep < repeats; ++rep) {
      const Measurement on_i = run_config(B, /*engine_on=*/true, steps, warmup);
      const Measurement off_i =
          run_config(B, /*engine_on=*/false, steps, warmup);
      if (on_i.iters_per_sec > on.iters_per_sec)
        on = on_i;
      if (off_i.iters_per_sec > off.iters_per_sec)
        off = off_i;
    }
    const Row r{B, on.iters_per_sec, off.iters_per_sec, on.allocs_per_iter,
                off.allocs_per_iter, on.iters_per_sec / off.iters_per_sec};
    rows.push_back(r);
    std::printf("%-8ld %16.1f %16.1f %14.2f %14.2f %8.2fx\n", r.models,
                r.engine_iters_per_sec, r.baseline_iters_per_sec,
                r.allocs_per_iter_engine, r.allocs_per_iter_baseline,
                r.speedup);
  }
  std::printf("\n(allocs/it = tensor-storage heap allocations per iteration; "
              "0.00 with the pool on\n means every steady-state allocation "
              "was recycled)\n");
  if (json_path != nullptr) {
    write_json(json_path, steps, rows);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
