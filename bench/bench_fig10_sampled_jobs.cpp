// Reproduces Figure 10: DCGM counters manually sampled from jobs inside
// the repetitive single-GPU clump. The paper's finding: maximum sm_active
// among the samples is 24%, maximum sm_occupancy 14% — severe temporal AND
// spatial under-utilization. We sample 13 serial jobs across the workload
// mix (as the paper sampled 13 jobs) on the cluster's GPU classes.
#include <cstdio>

#include "core/rng.h"
#include "sim/execution.h"

using namespace hfta::sim;

int main() {
  // The clump of repetitive jobs the paper sampled skews toward small,
  // novel, single-GPU models — represented here by the workloads whose
  // serial traces are overhead/underfill-bound.
  const Workload mix[] = {Workload::kPointNetCls, Workload::kDCGAN,
                          Workload::kMobileNetV3, Workload::kTransformer};
  hfta::Rng rng(13);
  std::printf("Figure 10: counters of 13 sampled repetitive single-GPU jobs\n");
  std::printf("%-4s %-20s %10s %13s\n", "job", "workload", "sm_active",
              "sm_occupancy");
  double max_active = 0, max_occ = 0;
  for (int i = 0; i < 13; ++i) {
    const Workload w = mix[rng.uniform_int(4)];
    const RunResult r = simulate(v100(), w, Mode::kSerial, 1,
                                 rng.bernoulli(0.3) ? Precision::kAMP
                                                    : Precision::kFP32);
    // per-job jitter: the sampled jobs run smaller configs/datasets than
    // our canonical paper-scale traces
    const double jitter = 0.45 + 0.45 * rng.uniform();
    const double active = std::min(1.0, r.counters.sm_active * jitter);
    const double occ = std::min(1.0, r.counters.sm_occupancy * jitter);
    max_active = std::max(max_active, active);
    max_occ = std::max(max_occ, occ);
    std::printf("%-4d %-20s %9.1f%% %12.1f%%\n", i + 1, workload_name(w),
                100 * active, 100 * occ);
  }
  std::printf("\nmax sm_active %.1f%% (paper: 24%%), max sm_occupancy %.1f%% "
              "(paper: 14%%)\n",
              100 * max_active, 100 * max_occ);
  return 0;
}
