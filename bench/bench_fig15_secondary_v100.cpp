// Reproduces Figure 15: normalized training throughput of the secondary
// benchmarks (ResNet-18, MobileNetV3-Large, Transformer, BERT-Medium) on
// V100 as the number of models sharing the GPU grows. Paper peaks vs
// serial: 2.42x-3.94x; vs concurrent 1.67x-3.02x; vs MPS 1.25x-2.24x.
#include <cstdio>

#include "sim/counters.h"

using namespace hfta::sim;

int main() {
  const DeviceSpec dev = v100();
  const Workload workloads[] = {Workload::kResNet18, Workload::kMobileNetV3,
                                Workload::kTransformer,
                                Workload::kBertMedium};
  std::printf("Figure 15: secondary benchmarks on V100 (B:normalized)\n");
  for (Workload w : workloads) {
    std::printf("\n%s\n", workload_name(w));
    for (Precision prec : {Precision::kFP32, Precision::kAMP}) {
      for (Mode mode :
           {Mode::kSerial, Mode::kConcurrent, Mode::kMps, Mode::kHfta}) {
        auto curve = sweep(dev, w, mode, prec, 32);
        if (curve.empty()) continue;
        std::printf("  %-11s-%-4s", mode_name(mode), precision_name(prec));
        for (const auto& p : curve)
          std::printf(" %ld:%.2f", p.models, p.normalized);
        std::printf("\n");
      }
    }
    std::printf("  => peak HFTA speedups: %.2fx vs serial, %.2fx vs "
                "concurrent, %.2fx vs MPS\n",
                peak_speedup_vs(dev, w, Mode::kSerial),
                peak_speedup_vs(dev, w, Mode::kConcurrent),
                peak_speedup_vs(dev, w, Mode::kMps));
  }
  std::printf("\npaper bands: serial 2.42-3.94x, concurrent 1.67-3.02x, MPS "
              "1.25-2.24x\n");
  return 0;
}
