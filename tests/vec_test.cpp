// SIMD-vs-forced-scalar equality for the vec kernel layer (DESIGN §11).
//
// Every kernel in src/core/vec.h promises *bit-identical* output between the
// AVX2 backend and the scalar virtual-lane emulation. These tests force each
// backend in turn via vec::set_simd_enabled and memcmp the raw bytes — no
// tolerances anywhere. When the host (or build) lacks AVX2+FMA+F16C the
// SIMD-vs-scalar comparisons are vacuous and GTEST_SKIP.
//
// The cast tests additionally pin both backends to the RNE reference
// converters in core/half.h: all 65536 f16 patterns exhaustively, plus
// property-tested rounding of hand-built halfway cases.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "core/half.h"
#include "core/vec.h"

namespace hfta {
namespace {

// Restores SIMD dispatch no matter how a test exits.
struct SimdGuard {
  ~SimdGuard() { vec::set_simd_enabled(true); }
};

// Deterministic value stream (self-contained; not hfta::Rng so the test's
// inputs can never drift with library changes). Mixes magnitudes and signs.
struct Lcg {
  uint64_t s = 0x243F6A8885A308D3ull;
  uint32_t next_u32() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(s >> 32);
  }
  float next() {
    // [-4, 4) with an occasional exact zero / negative zero.
    const uint32_t u = next_u32();
    if ((u & 0xff) == 0) return 0.f;
    if ((u & 0xff) == 1) return -0.f;
    return (static_cast<float>(u) / 4294967296.0f - 0.5f) * 8.f;
  }
  std::vector<float> vec(int64_t n) {
    std::vector<float> v(static_cast<size_t>(n));
    for (auto& x : v) x = next();
    return v;
  }
};

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

#define REQUIRE_SIMD()                                             \
  if (!vec::simd_available())                                      \
  GTEST_SKIP() << "no AVX2/FMA/F16C backend in this build/host"

// Runs `fn` once per backend and returns the two outputs for comparison.
template <typename Fn>
std::pair<std::vector<float>, std::vector<float>> both_backends(
    int64_t out_n, Fn&& fn) {
  SimdGuard guard;
  std::vector<float> simd(static_cast<size_t>(out_n));
  std::vector<float> scalar(static_cast<size_t>(out_n));
  vec::set_simd_enabled(true);
  fn(simd.data());
  vec::set_simd_enabled(false);
  fn(scalar.data());
  return {std::move(simd), std::move(scalar)};
}

// ---- GEMM -------------------------------------------------------------------

void check_gemm(int64_t m, int64_t n, int64_t k, bool ta, bool tb, float alpha,
                float beta) {
  Lcg rng;
  const auto a = rng.vec(m * k);
  const auto b = rng.vec(k * n);
  const auto c0 = rng.vec(m * n);  // pre-existing C for beta != 0
  auto [simd, scalar] = both_backends(m * n, [&](float* c) {
    std::memcpy(c, c0.data(), c0.size() * sizeof(float));
    vec::GemmArgs g;
    g.a = a.data();
    g.trans_a = ta;
    g.b = b.data();
    g.trans_b = tb;
    g.c = c;
    g.m = m;
    g.n = n;
    g.k = k;
    g.alpha = alpha;
    g.beta = beta;
    vec::gemm(g);
  });
  EXPECT_TRUE(bits_equal(simd, scalar))
      << "gemm m=" << m << " n=" << n << " k=" << k << " ta=" << ta
      << " tb=" << tb << " alpha=" << alpha << " beta=" << beta;
}

TEST(VecGemm, SimdMatchesScalarBitwiseAcrossOddShapes) {
  REQUIRE_SIMD();
  // Deliberately awkward sizes: non-multiples of the 8-lane width and of the
  // 6x16 microkernel, K=1, N narrower than one lane, M smaller than kMR,
  // and one shape crossing the kKC=256 k-blocking boundary.
  const int64_t shapes[][3] = {
      {1, 1, 1},  {1, 3, 1},   {5, 7, 3},   {6, 16, 8},  {7, 17, 9},
      {13, 5, 1}, {3, 31, 33}, {23, 19, 17}, {40, 48, 300},
  };
  for (const auto& s : shapes)
    for (bool ta : {false, true})
      for (bool tb : {false, true})
        check_gemm(s[0], s[1], s[2], ta, tb, 1.f, 0.f);
}

TEST(VecGemm, AlphaBetaVariantsMatchBitwise) {
  REQUIRE_SIMD();
  for (float alpha : {1.f, 0.5f, -1.25f})
    for (float beta : {0.f, 1.f, 0.75f}) {
      check_gemm(7, 17, 9, false, false, alpha, beta);
      check_gemm(13, 11, 5, true, true, alpha, beta);
    }
}

TEST(VecGemm, HalfPrecisionOperandsMatchBitwise) {
  REQUIRE_SIMD();
  const int64_t m = 9, n = 13, k = 7;
  Lcg rng;
  const auto af = rng.vec(m * k);
  const auto bf = rng.vec(k * n);
  for (vec::PackType pt : {vec::PackType::kF16, vec::PackType::kBF16}) {
    std::vector<uint16_t> ah(af.size()), bh(bf.size());
    for (size_t i = 0; i < af.size(); ++i) {
      ah[i] = pt == vec::PackType::kF16 ? f32_to_f16_bits(af[i])
                                        : f32_to_bf16_bits(af[i]);
      bh[i] = pt == vec::PackType::kF16 ? f32_to_f16_bits(bf[i])
                                        : f32_to_bf16_bits(bf[i]);
    }
    for (bool ta : {false, true}) {
      auto [simd, scalar] = both_backends(m * n, [&](float* c) {
        vec::GemmArgs g;
        g.a = ah.data();
        g.a_type = pt;
        g.trans_a = ta;
        g.b = bh.data();
        g.b_type = pt;
        g.c = c;
        g.m = m;
        g.n = n;
        g.k = k;
        vec::gemm(g);
      });
      EXPECT_TRUE(bits_equal(simd, scalar))
          << "half gemm pack=" << static_cast<int>(pt) << " ta=" << ta;
    }
  }
}

TEST(VecGemm, QuantizeOnPackEqualsCastThenPackBitwise) {
  REQUIRE_SIMD();
  // kF32QF16/kF32QBF16 promise: rounding f32 operands inside the pack loop
  // is bit-identical to casting them to 16-bit storage first and packing
  // that (the autocast GEMM path relies on this; DESIGN S11/S12). Includes
  // inf/NaN inputs to pin the canonical-NaN blend against the scalar cast.
  const int64_t m = 11, n = 19, k = 23;
  Lcg rng;
  auto af = rng.vec(m * k);
  auto bf = rng.vec(k * n);
  af[0] = std::numeric_limits<float>::infinity();
  af[5] = -std::numeric_limits<float>::quiet_NaN();
  bf[3] = std::numeric_limits<float>::quiet_NaN();
  bf[7] = -std::numeric_limits<float>::infinity();
  const std::pair<vec::PackType, vec::PackType> kinds[] = {
      {vec::PackType::kF32QF16, vec::PackType::kF16},
      {vec::PackType::kF32QBF16, vec::PackType::kBF16},
  };
  for (const auto& [qt, ht] : kinds) {
    std::vector<uint16_t> ah(af.size()), bh(bf.size());
    for (size_t i = 0; i < af.size(); ++i)
      ah[i] = ht == vec::PackType::kF16 ? f32_to_f16_bits(af[i])
                                        : f32_to_bf16_bits(af[i]);
    for (size_t i = 0; i < bf.size(); ++i)
      bh[i] = ht == vec::PackType::kF16 ? f32_to_f16_bits(bf[i])
                                        : f32_to_bf16_bits(bf[i]);
    for (bool ta : {false, true})
      for (bool tb : {false, true}) {
        auto run = [&](const void* a, vec::PackType at, const void* b,
                       vec::PackType bt, float* c) {
          vec::GemmArgs g;
          g.a = a;
          g.a_type = at;
          g.trans_a = ta;
          g.b = b;
          g.b_type = bt;
          g.trans_b = tb;
          g.c = c;
          g.m = m;
          g.n = n;
          g.k = k;
          vec::gemm(g);
        };
        // Quantize-on-pack == cast-then-pack, per backend; and the
        // quantized path itself is SIMD-vs-scalar bit-identical.
        auto [q_simd, q_scalar] = both_backends(m * n, [&](float* c) {
          run(af.data(), qt, bf.data(), qt, c);
        });
        auto [h_simd, h_scalar] = both_backends(m * n, [&](float* c) {
          run(ah.data(), ht, bh.data(), ht, c);
        });
        EXPECT_TRUE(bits_equal(q_simd, h_simd))
            << "simd q-pack vs cast pack=" << static_cast<int>(qt)
            << " ta=" << ta << " tb=" << tb;
        EXPECT_TRUE(bits_equal(q_scalar, h_scalar))
            << "scalar q-pack vs cast pack=" << static_cast<int>(qt)
            << " ta=" << ta << " tb=" << tb;
        EXPECT_TRUE(bits_equal(q_simd, q_scalar))
            << "q-pack simd vs scalar pack=" << static_cast<int>(qt)
            << " ta=" << ta << " tb=" << tb;
        // Mixed policy: quantize one operand only.
        auto [x_simd, x_scalar] = both_backends(m * n, [&](float* c) {
          run(af.data(), vec::PackType::kF32, bf.data(), qt, c);
        });
        auto [y_simd, y_scalar] = both_backends(m * n, [&](float* c) {
          run(af.data(), vec::PackType::kF32, bh.data(), ht, c);
        });
        EXPECT_TRUE(bits_equal(x_simd, y_simd) &&
                    bits_equal(x_scalar, y_scalar) &&
                    bits_equal(x_simd, x_scalar))
            << "mixed-policy pack=" << static_cast<int>(qt) << " ta=" << ta
            << " tb=" << tb;
      }
  }
}

// ---- elementwise ------------------------------------------------------------

TEST(VecElementwise, BinaryOpsMatchBitwise) {
  REQUIRE_SIMD();
  using vec::BinOp;
  for (int64_t n : {1, 7, 8, 9, 63, 64, 65, 1000}) {
    Lcg rng;
    auto a = rng.vec(n);
    auto b = rng.vec(n);
    if (n >= 8) {
      a[2] = std::nanf("");  // NaN propagation must agree lane-for-lane
      b[5] = std::nanf("");
    }
    for (BinOp op : {BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kDiv,
                     BinOp::kMax, BinOp::kReluBwd}) {
      auto [simd, scalar] = both_backends(n, [&](float* o) {
        vec::binary(op, a.data(), b.data(), o, n);
      });
      EXPECT_TRUE(bits_equal(simd, scalar))
          << "binary op=" << static_cast<int>(op) << " n=" << n;
    }
  }
}

TEST(VecElementwise, UnaryOpsAxpyFillMatchBitwise) {
  REQUIRE_SIMD();
  using vec::UnOp;
  for (int64_t n : {1, 5, 8, 17, 257}) {
    Lcg rng;
    const auto a = rng.vec(n);
    struct Case {
      UnOp op;
      float p0, p1;
    } cases[] = {
        {UnOp::kRelu, 0.f, 0.f},       {UnOp::kLeakyRelu, 0.01f, 0.f},
        {UnOp::kNeg, 0.f, 0.f},        {UnOp::kAbs, 0.f, 0.f},
        {UnOp::kAddScalar, 1.5f, 0.f}, {UnOp::kMulScalar, -0.75f, 0.f},
        {UnOp::kClamp, -1.f, 2.f},
    };
    for (const auto& c : cases) {
      auto [simd, scalar] = both_backends(n, [&](float* o) {
        vec::unary(c.op, c.p0, c.p1, a.data(), o, n);
      });
      EXPECT_TRUE(bits_equal(simd, scalar))
          << "unary op=" << static_cast<int>(c.op) << " n=" << n;
    }
    const auto x = rng.vec(n);
    auto [s1, s2] = both_backends(n, [&](float* o) {
      std::memcpy(o, a.data(), a.size() * sizeof(float));
      vec::axpy(0.3f, x.data(), o, n);
    });
    EXPECT_TRUE(bits_equal(s1, s2)) << "axpy n=" << n;
    auto [f1, f2] =
        both_backends(n, [&](float* o) { vec::fill(3.25f, o, n); });
    EXPECT_TRUE(bits_equal(f1, f2)) << "fill n=" << n;
  }
}

// ---- optimizers -------------------------------------------------------------

TEST(VecOptim, AdamAndSgdMatchBitwise) {
  REQUIRE_SIMD();
  for (int64_t n : {1, 6, 8, 19, 130}) {
    Lcg rng;
    const auto p0 = rng.vec(n);
    const auto g = rng.vec(n);
    const auto m0 = rng.vec(n);
    const auto v0 = [&] {  // v must be non-negative (it is a running E[g^2])
      auto v = rng.vec(n);
      for (auto& x : v) x = std::fabs(x);
      return v;
    }();
    vec::AdamArgs aa;
    aa.weight_decay = 0.01f;
    aa.beta1 = 0.9f;
    aa.one_minus_beta1 = 1.f - 0.9f;
    aa.beta2 = 0.999f;
    aa.one_minus_beta2 = 1.f - 0.999f;
    aa.step_size = 1e-3f / 0.19f;
    aa.inv_bc2 = 1.f / 0.361f;
    aa.eps = 1e-8f;
    auto [a1, a2] = both_backends(3 * n, [&](float* out) {
      std::vector<float> p = p0, m = m0, v = v0;
      vec::adam(aa, p.data(), g.data(), m.data(), v.data(), n);
      std::memcpy(out, p.data(), p.size() * sizeof(float));
      std::memcpy(out + n, m.data(), m.size() * sizeof(float));
      std::memcpy(out + 2 * n, v.data(), v.size() * sizeof(float));
    });
    EXPECT_TRUE(bits_equal(a1, a2)) << "adam n=" << n;

    vec::SgdArgs sa;
    sa.lr = 0.1f;
    sa.weight_decay = 0.001f;
    sa.momentum = 0.9f;
    auto [s1, s2] = both_backends(2 * n, [&](float* out) {
      std::vector<float> p = p0, buf = m0;
      vec::sgd(sa, p.data(), g.data(), buf.data(), n);
      std::memcpy(out, p.data(), p.size() * sizeof(float));
      std::memcpy(out + n, buf.data(), buf.size() * sizeof(float));
    });
    EXPECT_TRUE(bits_equal(s1, s2)) << "sgd+momentum n=" << n;
    sa.momentum = 0.f;
    auto [t1, t2] = both_backends(n, [&](float* out) {
      std::vector<float> p = p0;
      vec::sgd(sa, p.data(), g.data(), nullptr, n);
      std::memcpy(out, p.data(), p.size() * sizeof(float));
    });
    EXPECT_TRUE(bits_equal(t1, t2)) << "plain sgd n=" << n;
  }
}

TEST(VecOptim, GradScaleFoldingEqualsPreUnscaledGradsBitwise) {
  REQUIRE_SIMD();
  // The AMP contract: stepping on grads scaled by S with grad_scale = 1/S
  // must be bit-identical to stepping on pre-unscaled grads with
  // grad_scale = 1 (S a power of two, so the unscale multiply is an exact
  // exponent shift). Checked per backend, and SIMD-vs-scalar.
  const float S = 4096.f;
  for (int64_t n : {1, 8, 19, 130}) {
    Lcg rng;
    const auto p0 = rng.vec(n);
    const auto g = rng.vec(n);  // the "true" (unscaled) gradient
    const auto m0 = rng.vec(n);
    const auto v0 = [&] {
      auto v = rng.vec(n);
      for (auto& x : v) x = std::fabs(x);
      return v;
    }();
    std::vector<float> gs = g;  // the scaled gradient, as backward leaves it
    for (auto& x : gs) x *= S;

    vec::AdamArgs aa;
    aa.weight_decay = 0.01f;
    aa.beta1 = 0.9f;
    aa.one_minus_beta1 = 1.f - 0.9f;
    aa.beta2 = 0.999f;
    aa.one_minus_beta2 = 1.f - 0.999f;
    aa.step_size = 1e-3f / 0.19f;
    aa.inv_bc2 = 1.f / 0.361f;
    aa.eps = 1e-8f;
    auto adam_run = [&](const float* grad, float scale, float* out) {
      std::vector<float> p = p0, m = m0, v = v0;
      vec::AdamArgs a = aa;
      a.grad_scale = scale;
      vec::adam(a, p.data(), grad, m.data(), v.data(), n);
      std::memcpy(out, p.data(), p.size() * sizeof(float));
      std::memcpy(out + n, m.data(), m.size() * sizeof(float));
      std::memcpy(out + 2 * n, v.data(), v.size() * sizeof(float));
    };
    auto [af1, af2] = both_backends(
        3 * n, [&](float* out) { adam_run(gs.data(), 1.f / S, out); });
    auto [au1, au2] =
        both_backends(3 * n, [&](float* out) { adam_run(g.data(), 1.f, out); });
    EXPECT_TRUE(bits_equal(af1, au1) && bits_equal(af2, au2) &&
                bits_equal(af1, af2))
        << "adam grad_scale n=" << n;

    vec::SgdArgs sa;
    sa.lr = 0.1f;
    sa.weight_decay = 0.001f;
    for (float mom : {0.9f, 0.f}) {
      sa.momentum = mom;
      auto sgd_run = [&](const float* grad, float scale, float* out) {
        std::vector<float> p = p0, buf = m0;
        vec::SgdArgs s = sa;
        s.grad_scale = scale;
        vec::sgd(s, p.data(), grad, mom != 0.f ? buf.data() : nullptr, n);
        std::memcpy(out, p.data(), p.size() * sizeof(float));
        std::memcpy(out + n, buf.data(), buf.size() * sizeof(float));
      };
      auto [sf1, sf2] = both_backends(
          2 * n, [&](float* out) { sgd_run(gs.data(), 1.f / S, out); });
      auto [su1, su2] = both_backends(
          2 * n, [&](float* out) { sgd_run(g.data(), 1.f, out); });
      EXPECT_TRUE(bits_equal(sf1, su1) && bits_equal(sf2, su2) &&
                  bits_equal(sf1, sf2))
          << "sgd grad_scale momentum=" << mom << " n=" << n;
    }
  }
}

TEST(VecFinite, FiniteScaledVerdictMatchesScalarAndReference) {
  REQUIRE_SIMD();
  SimdGuard guard;
  const auto verdict = [](const std::vector<float>& g, float inv) {
    vec::set_simd_enabled(true);
    const bool simd = vec::finite_scaled(g.data(), inv, g.size());
    vec::set_simd_enabled(false);
    const bool scalar = vec::finite_scaled(g.data(), inv, g.size());
    EXPECT_EQ(simd, scalar) << "backend disagreement n=" << g.size();
    return simd;
  };
  for (int64_t n : {1, 7, 8, 9, 64, 130}) {
    Lcg rng;
    auto g = rng.vec(n);
    EXPECT_TRUE(verdict(g, 1.f / 65536.f)) << "clean n=" << n;
    // Inject a non-finite at every position class: head, interior, and the
    // masked tail — the dead tail lanes must never flip a verdict, and a
    // live tail lane must.
    for (int64_t at : {int64_t{0}, n / 2, n - 1}) {
      auto bad = g;
      bad[static_cast<size_t>(at)] = std::numeric_limits<float>::infinity();
      EXPECT_FALSE(verdict(bad, 1.f / 65536.f)) << "inf at " << at;
      bad[static_cast<size_t>(at)] = std::numeric_limits<float>::quiet_NaN();
      EXPECT_FALSE(verdict(bad, 1.f / 65536.f)) << "nan at " << at;
    }
    // A finite-but-huge grad whose *scaled* value overflows must trip the
    // verdict too (1/S can be > 1 after backoff grows back past 1).
    auto huge = g;
    huge[0] = 3e38f;
    EXPECT_TRUE(verdict(huge, 1.f));
    EXPECT_FALSE(verdict(huge, 16.f)) << "scaled overflow missed";
  }
}

// ---- reductions -------------------------------------------------------------

TEST(VecReduce, RowMaxRowSumexpColSumMatchBitwise) {
  REQUIRE_SIMD();
  for (int64_t n : {1, 3, 7, 8, 9, 33, 100}) {
    Lcg rng;
    const auto x = rng.vec(n * 4);
    for (int64_t st : {int64_t{1}, int64_t{4}}) {
      auto [m1, m2] = both_backends(2, [&](float* out) {
        out[0] = vec::row_max(x.data(), st, n);
        std::vector<float> e(static_cast<size_t>((n - 1) * st + 1));
        out[1] = vec::row_sumexp(x.data(), st, n, out[0], e.data());
      });
      EXPECT_TRUE(bits_equal(m1, m2)) << "row max/sumexp n=" << n
                                      << " st=" << st;
      // exp lanes themselves must also agree bitwise (st==1 path).
      if (st == 1) {
        auto [e1, e2] = both_backends(n, [&](float* out) {
          const float mx = vec::row_max(x.data(), 1, n);
          vec::row_sumexp(x.data(), 1, n, mx, out);
        });
        EXPECT_TRUE(bits_equal(e1, e2)) << "sumexp lanes n=" << n;
      }
    }
  }
  for (int64_t rows : {1, 5, 32})
    for (int64_t cols : {1, 7, 8, 9, 40}) {
      Lcg rng;
      const auto src = rng.vec(rows * cols);
      const auto init = rng.vec(cols);
      for (bool acc : {false, true}) {
        auto [c1, c2] = both_backends(cols, [&](float* out) {
          std::memcpy(out, init.data(), init.size() * sizeof(float));
          vec::col_sum(src.data(), out, rows, cols, acc);
        });
        EXPECT_TRUE(bits_equal(c1, c2))
            << "col_sum rows=" << rows << " cols=" << cols << " acc=" << acc;
      }
    }
}

// ---- casts ------------------------------------------------------------------

TEST(VecCast, F16ToF32ExhaustiveAllPatterns) {
  // Every one of the 65536 f16 bit patterns, widened by each backend, must
  // match the scalar reference in core/half.h bit-for-bit (incl. NaNs, infs,
  // denormals). Runs even without AVX2 — then it pins the scalar backend.
  SimdGuard guard;
  std::vector<uint16_t> src(65536);
  for (uint32_t i = 0; i < 65536; ++i) src[i] = static_cast<uint16_t>(i);
  std::vector<float> ref(65536);
  for (uint32_t i = 0; i < 65536; ++i) ref[i] = f16_bits_to_f32(src[i]);
  for (bool simd : {true, false}) {
    if (simd && !vec::simd_available()) continue;
    vec::set_simd_enabled(simd);
    std::vector<float> out(65536);
    vec::cast_f16_to_f32(src.data(), out.data(), 65536);
    EXPECT_EQ(std::memcmp(out.data(), ref.data(), 65536 * sizeof(float)), 0)
        << "backend=" << (simd ? "simd" : "scalar");
  }
}

TEST(VecCast, Bf16ToF32ExhaustiveAllPatterns) {
  SimdGuard guard;
  std::vector<uint16_t> src(65536);
  for (uint32_t i = 0; i < 65536; ++i) src[i] = static_cast<uint16_t>(i);
  std::vector<float> ref(65536);
  for (uint32_t i = 0; i < 65536; ++i) ref[i] = bf16_bits_to_f32(src[i]);
  for (bool simd : {true, false}) {
    if (simd && !vec::simd_available()) continue;
    vec::set_simd_enabled(simd);
    std::vector<float> out(65536);
    vec::cast_bf16_to_f32(src.data(), out.data(), 65536);
    EXPECT_EQ(std::memcmp(out.data(), ref.data(), 65536 * sizeof(float)), 0)
        << "backend=" << (simd ? "simd" : "scalar");
  }
}

// Narrowing inputs that exercise every rounding regime: round-trips of all
// 65536 half patterns (must narrow back exactly), ties hand-built to land
// halfway between representable halves, overflow/underflow, NaN payloads.
std::vector<float> narrowing_inputs(bool f16) {
  std::vector<float> in;
  in.reserve(70000);
  for (uint32_t i = 0; i < 65536; ++i) {
    const uint16_t h = static_cast<uint16_t>(i);
    in.push_back(f16 ? f16_bits_to_f32(h) : bf16_bits_to_f32(h));
  }
  Lcg rng;
  for (int i = 0; i < 2000; ++i) {
    // Raw random f32 bit patterns: denormals, huge values, NaN payloads.
    in.push_back(bits_f32(rng.next_u32()));
    in.push_back(rng.next() * 70000.f);  // overflow territory for f16
  }
  // Exact ties: midpoint between consecutive representable values must
  // round to even in both the vector and scalar converters.
  for (float base : {1.f, 3.f, 100.f, 0.0001f, -7.f}) {
    const uint16_t h = f16 ? f32_to_f16_bits(base) : f32_to_bf16_bits(base);
    const float lo = f16 ? f16_bits_to_f32(h) : bf16_bits_to_f32(h);
    const float hi = f16 ? f16_bits_to_f32(static_cast<uint16_t>(h + 1))
                         : bf16_bits_to_f32(static_cast<uint16_t>(h + 1));
    in.push_back(lo + (hi - lo) * 0.5f);
  }
  in.push_back(0.f);
  in.push_back(-0.f);
  in.push_back(std::numeric_limits<float>::infinity());
  in.push_back(-std::numeric_limits<float>::infinity());
  in.push_back(std::nanf(""));
  return in;
}

TEST(VecCast, F32ToF16MatchesScalarReferenceRne) {
  SimdGuard guard;
  const auto in = narrowing_inputs(/*f16=*/true);
  const int64_t n = static_cast<int64_t>(in.size());
  std::vector<uint16_t> ref(in.size());
  for (size_t i = 0; i < in.size(); ++i) ref[i] = f32_to_f16_bits(in[i]);
  for (bool simd : {true, false}) {
    if (simd && !vec::simd_available()) continue;
    vec::set_simd_enabled(simd);
    std::vector<uint16_t> out(in.size());
    vec::cast_f32_to_f16(in.data(), out.data(), n);
    EXPECT_EQ(std::memcmp(out.data(), ref.data(), in.size() * 2), 0)
        << "backend=" << (simd ? "simd" : "scalar");
  }
}

TEST(VecCast, F32ToBf16MatchesScalarReferenceRne) {
  SimdGuard guard;
  const auto in = narrowing_inputs(/*f16=*/false);
  const int64_t n = static_cast<int64_t>(in.size());
  std::vector<uint16_t> ref(in.size());
  for (size_t i = 0; i < in.size(); ++i) ref[i] = f32_to_bf16_bits(in[i]);
  for (bool simd : {true, false}) {
    if (simd && !vec::simd_available()) continue;
    vec::set_simd_enabled(simd);
    std::vector<uint16_t> out(in.size());
    vec::cast_f32_to_bf16(in.data(), out.data(), n);
    EXPECT_EQ(std::memcmp(out.data(), ref.data(), in.size() * 2), 0)
        << "backend=" << (simd ? "simd" : "scalar");
  }
}

TEST(VecCast, ScalarConverterRneProperties) {
  // Property checks on the half.h reference itself (both vec backends are
  // pinned to it above, so these properties transfer to the kernels).
  // 1) Round-trip: every finite f16 narrows back to its own bits.
  for (uint32_t i = 0; i < 65536; ++i) {
    const uint16_t h = static_cast<uint16_t>(i);
    const float f = f16_bits_to_f32(h);
    if (std::isnan(f)) continue;  // NaNs canonicalize; bits need not survive
    EXPECT_EQ(f32_to_f16_bits(f), h) << "f16 pattern " << i;
  }
  for (uint32_t i = 0; i < 65536; ++i) {
    const uint16_t h = static_cast<uint16_t>(i);
    const float f = bf16_bits_to_f32(h);
    if (std::isnan(f)) continue;
    EXPECT_EQ(f32_to_bf16_bits(f), h) << "bf16 pattern " << i;
  }
  // 2) Ties round to even mantissa.
  for (float base : {1.f, 2.f, 5.f, 1024.f}) {
    const uint16_t h = f32_to_f16_bits(base);
    const float lo = f16_bits_to_f32(h);
    const float hi = f16_bits_to_f32(static_cast<uint16_t>(h + 1));
    const uint16_t tie = f32_to_f16_bits(lo + (hi - lo) * 0.5f);
    EXPECT_EQ(tie & 1u, 0u) << "f16 tie near " << base << " not even";
  }
  // 3) Overflow saturates to infinity; NaN stays NaN.
  EXPECT_EQ(f32_to_f16_bits(1e6f), 0x7c00);
  EXPECT_EQ(f32_to_f16_bits(-1e6f), 0xfc00);
  EXPECT_TRUE(std::isnan(f16_bits_to_f32(f32_to_f16_bits(std::nanf("")))));
  EXPECT_TRUE(std::isnan(bf16_bits_to_f32(f32_to_bf16_bits(std::nanf("")))));
}

// ---- exp --------------------------------------------------------------------

TEST(VecExp, ExpApproxMatchesVectorizedExpBitwise) {
  REQUIRE_SIMD();
  // row_sumexp writes exp(x - mx) through the backend's vexp; with mx = 0 the
  // lanes are exactly vexp(x). The scalar backend runs vec::exp_approx's op
  // sequence per lane — outputs must agree bitwise across the full clamp
  // range and beyond it.
  std::vector<float> x;
  for (float v = -100.f; v <= 100.f; v += 0.0625f) x.push_back(v);
  x.push_back(0.f);
  x.push_back(-0.f);
  const int64_t n = static_cast<int64_t>(x.size());
  auto [e1, e2] = both_backends(n, [&](float* out) {
    vec::row_sumexp(x.data(), 1, n, 0.f, out);
  });
  EXPECT_TRUE(bits_equal(e1, e2));
  // And the free function agrees with the scalar backend's lanes.
  vec::set_simd_enabled(false);
  std::vector<float> lanes(static_cast<size_t>(n));
  vec::row_sumexp(x.data(), 1, n, 0.f, lanes.data());
  vec::set_simd_enabled(true);
  for (int64_t i = 0; i < n; ++i)
    EXPECT_EQ(f32_bits(lanes[static_cast<size_t>(i)]),
              f32_bits(vec::exp_approx(x[static_cast<size_t>(i)])))
        << "x=" << x[static_cast<size_t>(i)];
}

}  // namespace
}  // namespace hfta
