// Extended coverage: checkpoint save/load round trips, ConvTranspose1d
// fusion (the paper's §3 deconvolution example), FusedCosineAnnealingLR,
// the MIG scheduler in HFHT, and failure-injection on API validation paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "hfta/fused_optim.h"
#include "hfta/fused_sched.h"
#include "hfta/fusion.h"
#include "hfta/loss_scaling.h"
#include "tensor/matmul.h"
#include "hfht/schedulers.h"
#include "models/resnet.h"
#include "nn/sched.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace hfta {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(Checkpoint, TensorCodecRoundTrip) {
  Rng rng(1);
  Tensor t = Tensor::randn({3, 4, 5}, rng);
  std::stringstream ss;
  nn::write_tensor(ss, "blob", t);
  auto [name, back] = nn::read_tensor(ss);
  EXPECT_EQ(name, "blob");
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(ops::max_abs_diff(back, t), 0.f);
}

TEST(Checkpoint, ModuleRoundTrip) {
  Rng rng(2);
  models::ResNetConfig cfg = models::ResNetConfig::tiny();
  cfg.base_width = 4;
  models::ResNet18 a(cfg, rng), b(cfg, rng);
  const std::string path = temp_path("resnet.ckpt");
  nn::save_parameters(a, path);
  nn::load_parameters(b, path);
  auto pa = a.named_parameters();
  auto pb = b.named_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(ops::max_abs_diff(pa[i].second.value(), pb[i].second.value()),
              0.f)
        << pa[i].first;
  std::remove(path.c_str());
}

TEST(Checkpoint, FusedArrayRoundTripPreservesAllModels) {
  // A whole B-model sweep checkpoints as one file.
  Rng rng(3);
  const int64_t B = 3;
  fused::FusedLinear a(B, 6, 4, true, rng), b(B, 6, 4, true, rng);
  const std::string path = temp_path("fused.ckpt");
  nn::save_parameters(a, path);
  nn::load_parameters(b, path);
  EXPECT_EQ(ops::max_abs_diff(a.weight.value(), b.weight.value()), 0.f);
  EXPECT_EQ(ops::max_abs_diff(a.bias.value(), b.bias.value()), 0.f);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsWrongArchitectureAndGarbage) {
  Rng rng(4);
  nn::Linear small(3, 2, true, rng);
  nn::Linear big(5, 2, true, rng);
  const std::string path = temp_path("lin.ckpt");
  nn::save_parameters(small, path);
  EXPECT_THROW(nn::load_parameters(big, path), Error);
  // Garbage file: wrong magic.
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a checkpoint at all";
  }
  EXPECT_THROW(nn::load_parameters(small, path), Error);
  EXPECT_THROW(nn::load_parameters(small, temp_path("missing.ckpt")), Error);
  std::remove(path.c_str());
}

class ConvT1dFusionB : public ::testing::TestWithParam<int64_t> {};

TEST_P(ConvT1dFusionB, FusedMatchesSerialForwardAndBackward) {
  const int64_t B = GetParam();
  Rng rng(10 + B);
  const int64_t Cin = 4, Cout = 3, L = 9;
  fused::FusedConvTranspose1d fused_layer(B, Cin, Cout, 4, 2, 1, 0, 1, true,
                                          rng);
  std::vector<std::shared_ptr<nn::ConvTranspose1d>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b) {
    plain.push_back(std::make_shared<nn::ConvTranspose1d>(Cin, Cout, 4, 2, 1,
                                                          0, 1, true, rng));
    fused_layer.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({2, Cin, L}, rng));
  }
  ag::Variable yf =
      fused_layer.forward(ag::Variable(fused::pack_channel_fused(xs)));
  Tensor probe = Tensor::randn(yf.shape(), rng);
  ag::sum_all(ag::mul(yf, ag::constant(probe))).backward();
  auto per = fused::unpack_channel_fused(yf.value(), B);
  auto probes = fused::unpack_channel_fused(probe, B);
  for (int64_t b = 0; b < B; ++b) {
    const size_t ub = static_cast<size_t>(b);
    ag::Variable yb = plain[ub]->forward(ag::Variable(xs[ub]));
    EXPECT_LT(ops::max_abs_diff(per[ub], yb.value()), 1e-3f) << "model " << b;
    ag::sum_all(ag::mul(yb, ag::constant(probes[ub]))).backward();
    Tensor gw = fused::unfuse_blocks(fused_layer.weight.grad(), B,
                                     plain[ub]->weight.shape())[ub];
    EXPECT_LT(ops::max_abs_diff(gw, plain[ub]->weight.grad()), 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(ArraySizes, ConvT1dFusionB,
                         ::testing::Values(1, 2, 5));

TEST(FusedSched, CosineAnnealingMatchesPerModelSchedules) {
  const int64_t B = 3;
  Rng rng(20);
  ag::Variable p(Tensor::randn({B * 4}, rng), true);
  fused::HyperVec base = {0.1, 0.2, 0.3};
  std::vector<int64_t> t_max = {10, 20, 40};
  fused::FusedSGD fused_opt({{p, B}}, B, {.lr = base});
  fused::FusedCosineAnnealingLR sched(fused_opt, t_max, {0.0});
  // plain reference
  std::vector<ag::Variable> pp;
  std::vector<std::unique_ptr<nn::SGD>> opts;
  std::vector<std::unique_ptr<nn::CosineAnnealingLR>> plain;
  for (int64_t b = 0; b < B; ++b) {
    pp.emplace_back(Tensor::zeros({4}), true);
    opts.push_back(std::make_unique<nn::SGD>(
        std::vector<ag::Variable>{pp.back()},
        nn::SGD::Options{base[static_cast<size_t>(b)]}));
    plain.push_back(std::make_unique<nn::CosineAnnealingLR>(
        *opts.back(), t_max[static_cast<size_t>(b)], 0.0));
  }
  for (int e = 0; e < 15; ++e) {
    sched.step();
    for (int64_t b = 0; b < B; ++b) {
      plain[static_cast<size_t>(b)]->step();
      EXPECT_NEAR(fused_opt.lr()[static_cast<size_t>(b)],
                  opts[static_cast<size_t>(b)]->lr(), 1e-12)
          << "epoch " << e << " model " << b;
    }
  }
}

TEST(HfhtMig, MigSchedulerCostsBetweenSerialAndHfta) {
  hfht::SearchSpace space = hfht::SearchSpace::pointnet();
  Rng rng(30);
  std::vector<hfht::Trial> trials;
  for (int i = 0; i < 21; ++i) trials.push_back({space.sample(rng), 10});
  const auto a100 = sim::a100();
  const auto serial = hfht::schedule_cost(trials, space,
                                          sim::Workload::kPointNetCls, a100,
                                          hfht::SchedulerKind::kSerial);
  const auto mig = hfht::schedule_cost(trials, space,
                                       sim::Workload::kPointNetCls, a100,
                                       hfht::SchedulerKind::kMig);
  const auto hfta_cost = hfht::schedule_cost(trials, space,
                                             sim::Workload::kPointNetCls,
                                             a100, hfht::SchedulerKind::kHfta);
  EXPECT_LT(mig.gpu_hours, serial.gpu_hours);
  EXPECT_LT(hfta_cost.gpu_hours, serial.gpu_hours);
  // With 21 random sets over 6 infusible combos, HFTA's partitions are
  // small (~3-4 models), so MIG's 7-at-a-time process sharing can compete —
  // the same fusion-opportunity effect the paper notes for Hyperband.
}

TEST(HfhtMig, FallsBackToSerialWithoutMigSupport) {
  hfht::SearchSpace space = hfht::SearchSpace::pointnet();
  Rng rng(31);
  std::vector<hfht::Trial> trials = {{space.sample(rng), 5},
                                     {space.sample(rng), 5}};
  const auto v100 = sim::v100();  // no MIG
  const auto mig = hfht::schedule_cost(trials, space,
                                       sim::Workload::kPointNetCls, v100,
                                       hfht::SchedulerKind::kMig);
  const auto serial = hfht::schedule_cost(trials, space,
                                          sim::Workload::kPointNetCls, v100,
                                          hfht::SchedulerKind::kSerial);
  EXPECT_NEAR(mig.gpu_hours, serial.gpu_hours, 1e-9);
}

// ---- failure injection: the library must reject malformed use, loudly -----

TEST(Validation, TensorShapeErrors) {
  Rng rng(40);
  Tensor a = Tensor::randn({2, 3}, rng);
  Tensor b = Tensor::randn({4, 2}, rng);
  EXPECT_THROW(ops::matmul(a, b), Error);             // inner dim mismatch
  EXPECT_THROW(ops::concat({a, b}, 0), Error);        // off-dim mismatch
  EXPECT_THROW(a.reshape({7}), Error);                // numel mismatch
  EXPECT_THROW(a.slice(0, 1, 5), Error);              // out of range
  EXPECT_THROW(ops::chunk(a, 4, 1), Error);           // 3 % 4 != 0
  EXPECT_THROW(Tensor::from_data({2, 2}, {1.f}), Error);
}

TEST(Validation, ConvArgumentErrors) {
  Rng rng(41);
  Tensor x = Tensor::randn({1, 4, 5, 5}, rng);
  Tensor w = Tensor::randn({6, 2, 3, 3}, rng);
  // groups must divide channels
  EXPECT_THROW(ops::conv2d(x, w, Tensor(), ops::ConvArgs::make(1, 1, 3)),
               Error);
  // wrong per-group input channels
  EXPECT_THROW(ops::conv2d(x, w, Tensor(), ops::ConvArgs::make(1, 1, 1)),
               Error);
  // bias size mismatch
  Tensor w_ok = Tensor::randn({6, 4, 3, 3}, rng);
  EXPECT_THROW(ops::conv2d(x, w_ok, Tensor::ones({5}),
                           ops::ConvArgs::make(1, 1, 1)),
               Error);
  // out_pad >= stride is invalid for transposed conv
  Tensor wt = Tensor::randn({4, 2, 3, 3}, rng);
  EXPECT_THROW(ops::conv_transpose2d(x, wt, Tensor(),
                                     ops::ConvTransposeArgs{1, 0, 1, 1}),
               Error);
}

TEST(Validation, AutogradErrors) {
  Rng rng(42);
  ag::Variable v(Tensor::randn({3}, rng), true);
  EXPECT_THROW(v.backward(), Error);  // non-scalar without seed
  ag::Variable undefined;
  EXPECT_THROW(undefined.value(), Error);
  EXPECT_THROW(undefined.backward(), Error);
}

TEST(Validation, FusedApiErrors) {
  Rng rng(43);
  EXPECT_THROW(fused::FusedLinear(0, 3, 2, true, rng), Error);  // B < 1
  fused::FusedLinear lin(2, 3, 2, true, rng);
  // model-major input with wrong leading B
  EXPECT_THROW(lin.forward(ag::Variable(Tensor::randn({3, 4, 3}, rng))),
               Error);
  // optimizer array-size mismatch
  auto params = fused::collect_fused_parameters(lin, 2);
  EXPECT_THROW(fused::FusedAdam(params, 3, {}), Error);
  // hyper-parameter vector of the wrong arity
  EXPECT_THROW(fused::FusedAdam(params, 2, {.lr = {1e-3, 2e-3, 3e-3}}),
               Error);
  // loss labels / logits arity
  EXPECT_THROW(fused::fused_cross_entropy(
                   ag::Variable(Tensor::randn({4, 3}, rng)),
                   Tensor::zeros({4}), ag::Reduction::kMean),
               Error);
}

TEST(Validation, UnfusedBlockAdapterRequiresBReplicas) {
  Rng rng(44);
  std::vector<std::shared_ptr<nn::Module>> two = {
      std::make_shared<nn::ReLU>(), std::make_shared<nn::ReLU>()};
  EXPECT_THROW(fused::UnfusedBlockAdapter(3, two), Error);
}

TEST(Validation, DropoutProbabilityRange) {
  EXPECT_THROW(nn::Dropout(1.0f), Error);
  EXPECT_THROW(nn::Dropout(-0.1f), Error);
  EXPECT_NO_THROW(nn::Dropout(0.0f));
}

}  // namespace
}  // namespace hfta
