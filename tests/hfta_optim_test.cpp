// Fused optimizer / scheduler / loss-scaling equivalence tests.
//
// The fused optimizers take per-model hyper-parameter VECTORS (the paper's
// "scalar-vector ops become broadcasted vector-vector ops"); stepping a
// fused parameter must be bit-for-bit-ish identical to stepping B unfused
// optimizers with the corresponding scalar hyper-parameters.
#include <gtest/gtest.h>

#include <cmath>

#include "hfta/fused_optim.h"
#include "hfta/fused_sched.h"
#include "hfta/fusion.h"
#include "hfta/loss_scaling.h"
#include "nn/optim.h"
#include "nn/sched.h"
#include "tensor/ops.h"

namespace hfta::fused {
namespace {

constexpr float kTol = 1e-5f;

struct OptimRig {
  int64_t B;
  int64_t block = 6;  // per-model numel
  ag::Variable fused_param;
  std::vector<ag::Variable> plain_params;

  explicit OptimRig(int64_t B, uint64_t seed) : B(B) {
    Rng rng(seed);
    Tensor init = Tensor::randn({B * block}, rng);
    fused_param = ag::Variable(init.clone(), true);
    for (int64_t b = 0; b < B; ++b) {
      Tensor t({block});
      std::copy(init.data() + b * block, init.data() + (b + 1) * block,
                t.data());
      plain_params.emplace_back(t, true);
    }
  }

  // Loads the same random gradient into the fused param and its unfused
  // counterparts.
  void set_grads(Rng& rng) {
    Tensor g = Tensor::randn({B * block}, rng);
    fused_param.grad().copy_(g);
    for (int64_t b = 0; b < B; ++b) {
      Tensor gb({block});
      std::copy(g.data() + b * block, g.data() + (b + 1) * block, gb.data());
      plain_params[static_cast<size_t>(b)].grad().copy_(gb);
    }
  }

  float max_diff() const {
    float m = 0.f;
    for (int64_t b = 0; b < B; ++b) {
      Tensor fb({block});
      std::copy(fused_param.value().data() + b * block,
                fused_param.value().data() + (b + 1) * block, fb.data());
      m = std::max(m, ops::max_abs_diff(
                           fb, plain_params[static_cast<size_t>(b)].value()));
    }
    return m;
  }
};

class FusedOptimB : public ::testing::TestWithParam<int64_t> {};

TEST_P(FusedOptimB, SGDHeterogeneousHyperparams) {
  const int64_t B = GetParam();
  OptimRig s(B, 1);
  HyperVec lr(B), mom(B), wd(B);
  std::vector<std::unique_ptr<nn::SGD>> plain;
  for (int64_t b = 0; b < B; ++b) {
    lr[b] = 0.01 * (b + 1);
    mom[b] = b % 2 ? 0.9 : 0.0;
    wd[b] = 0.001 * b;
    plain.push_back(std::make_unique<nn::SGD>(
        std::vector<ag::Variable>{s.plain_params[static_cast<size_t>(b)]},
        nn::SGD::Options{lr[b], mom[b], wd[b]}));
  }
  FusedSGD fused({{s.fused_param, B}}, B, {lr, mom, wd});
  Rng rng(2);
  for (int step = 0; step < 5; ++step) {
    s.set_grads(rng);
    fused.step();
    for (auto& p : plain) p->step();
    EXPECT_LT(s.max_diff(), kTol) << "step " << step;
  }
}

TEST_P(FusedOptimB, AdamHeterogeneousHyperparams) {
  const int64_t B = GetParam();
  OptimRig s(B, 3);
  HyperVec lr(B), b1(B), b2(B), eps(B), wd(B);
  std::vector<std::unique_ptr<nn::Adam>> plain;
  for (int64_t b = 0; b < B; ++b) {
    lr[b] = 0.001 * (b + 1);
    b1[b] = 0.8 + 0.02 * b;
    b2[b] = 0.99 + 0.001 * b;
    eps[b] = 1e-8;
    wd[b] = b % 3 == 0 ? 0.01 : 0.0;
    plain.push_back(std::make_unique<nn::Adam>(
        std::vector<ag::Variable>{s.plain_params[static_cast<size_t>(b)]},
        nn::Adam::Options{lr[b], b1[b], b2[b], eps[b], wd[b]}));
  }
  FusedAdam fused({{s.fused_param, B}}, B, {lr, b1, b2, eps, wd});
  Rng rng(4);
  for (int step = 0; step < 8; ++step) {
    s.set_grads(rng);
    fused.step();
    for (auto& p : plain) p->step();
    EXPECT_LT(s.max_diff(), kTol) << "step " << step;
  }
}

TEST_P(FusedOptimB, AdadeltaHeterogeneousHyperparams) {
  const int64_t B = GetParam();
  OptimRig s(B, 5);
  HyperVec lr(B), rho(B), eps(B), wd(B);
  std::vector<std::unique_ptr<nn::Adadelta>> plain;
  for (int64_t b = 0; b < B; ++b) {
    lr[b] = 0.5 + 0.2 * b;
    rho[b] = 0.85 + 0.01 * b;
    eps[b] = 1e-6;
    wd[b] = 0.0;
    plain.push_back(std::make_unique<nn::Adadelta>(
        std::vector<ag::Variable>{s.plain_params[static_cast<size_t>(b)]},
        nn::Adadelta::Options{lr[b], rho[b], eps[b], wd[b]}));
  }
  FusedAdadelta fused({{s.fused_param, B}}, B, {lr, rho, eps, wd});
  Rng rng(6);
  for (int step = 0; step < 8; ++step) {
    s.set_grads(rng);
    fused.step();
    for (auto& p : plain) p->step();
    EXPECT_LT(s.max_diff(), kTol) << "step " << step;
  }
}

TEST_P(FusedOptimB, SharedScalarHyperparamBroadcasts) {
  const int64_t B = GetParam();
  OptimRig s(B, 7);
  FusedSGD fused({{s.fused_param, B}}, B, {.lr = {0.05}});
  EXPECT_EQ(fused.lr().size(), static_cast<size_t>(B));
  for (double v : fused.lr()) EXPECT_DOUBLE_EQ(v, 0.05);
}

TEST_P(FusedOptimB, StepLRPerModelSchedules) {
  const int64_t B = GetParam();
  OptimRig s(B, 8);
  HyperVec base(B);
  std::vector<int64_t> step_size(B);
  HyperVec gamma(B);
  for (int64_t b = 0; b < B; ++b) {
    base[b] = 0.1 * (b + 1);
    step_size[b] = b + 1;
    gamma[b] = 0.5;
  }
  FusedSGD fused({{s.fused_param, B}}, B, {.lr = base});
  FusedStepLR sched(fused, step_size, gamma);
  // Reference: B independent StepLR instances.
  std::vector<std::unique_ptr<nn::SGD>> plain;
  std::vector<std::unique_ptr<nn::StepLR>> plain_sched;
  for (int64_t b = 0; b < B; ++b) {
    plain.push_back(std::make_unique<nn::SGD>(
        std::vector<ag::Variable>{s.plain_params[static_cast<size_t>(b)]},
        nn::SGD::Options{base[b]}));
    plain_sched.push_back(
        std::make_unique<nn::StepLR>(*plain.back(), step_size[b], gamma[b]));
  }
  for (int e = 0; e < 10; ++e) {
    sched.step();
    for (int64_t b = 0; b < B; ++b) {
      plain_sched[static_cast<size_t>(b)]->step();
      EXPECT_NEAR(fused.lr()[static_cast<size_t>(b)],
                  plain[static_cast<size_t>(b)]->lr(), 1e-12)
          << "epoch " << e << " model " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ArraySizes, FusedOptimB,
                         ::testing::Values(1, 2, 3, 5, 8));

// ---- loss scaling (Appendix C) ------------------------------------------------

TEST(LossScaling, MeanReductionNeedsBTimesScale) {
  // Two "models", each a 1-param linear y = w*x; loss = mean over batch.
  // Fused loss = mean over both models' samples; Appendix C says scaling by
  // B reconstructs each model's own gradient exactly.
  const int64_t B = 2, N = 4;
  Rng rng(9);
  Tensor x = Tensor::randn({B, N, 1}, rng);
  Tensor t = Tensor::randn({B, N, 1}, rng);

  // Serial gradients.
  std::vector<float> serial_grads;
  for (int64_t b = 0; b < B; ++b) {
    ag::Variable w(Tensor::full({1, 1, 1}, 0.7f), true);
    ag::Variable xb = ag::constant(x.slice(0, b, b + 1));
    ag::Variable y = ag::mul(xb, w);
    ag::Variable loss =
        ag::mse_loss(y, t.slice(0, b, b + 1), ag::Reduction::kMean);
    loss.backward();
    serial_grads.push_back(w.grad().item());
  }

  // Fused gradient with the scaling rule.
  ag::Variable wf(Tensor::full({B, 1, 1}, 0.7f), true);
  ag::Variable y = ag::mul(ag::constant(x), wf);
  ag::Variable fused_loss = ag::mse_loss(y, t, ag::Reduction::kMean);
  scale_fused_loss(fused_loss, B, ag::Reduction::kMean).backward();
  for (int64_t b = 0; b < B; ++b)
    EXPECT_NEAR(wf.grad().data()[b], serial_grads[static_cast<size_t>(b)],
                1e-5f);

  // Without scaling the gradients are 1/B of the serial ones (Eq. 2).
  ag::Variable wf2(Tensor::full({B, 1, 1}, 0.7f), true);
  ag::Variable y2 = ag::mul(ag::constant(x), wf2);
  ag::mse_loss(y2, t, ag::Reduction::kMean).backward();
  for (int64_t b = 0; b < B; ++b)
    EXPECT_NEAR(wf2.grad().data()[b],
                serial_grads[static_cast<size_t>(b)] / B, 1e-5f);
}

TEST(LossScaling, SumReductionNeedsNoScale) {
  const int64_t B = 3, N = 4;
  Rng rng(10);
  Tensor x = Tensor::randn({B, N, 1}, rng);
  Tensor t = Tensor::randn({B, N, 1}, rng);
  std::vector<float> serial_grads;
  for (int64_t b = 0; b < B; ++b) {
    ag::Variable w(Tensor::full({1, 1, 1}, -0.3f), true);
    ag::Variable y = ag::mul(ag::constant(x.slice(0, b, b + 1)), w);
    ag::mse_loss(y, t.slice(0, b, b + 1), ag::Reduction::kSum).backward();
    serial_grads.push_back(w.grad().item());
  }
  ag::Variable wf(Tensor::full({B, 1, 1}, -0.3f), true);
  ag::Variable y = ag::mul(ag::constant(x), wf);
  ag::Variable fused_loss = ag::mse_loss(y, t, ag::Reduction::kSum);
  scale_fused_loss(fused_loss, B, ag::Reduction::kSum).backward();
  for (int64_t b = 0; b < B; ++b)
    EXPECT_NEAR(wf.grad().data()[b], serial_grads[static_cast<size_t>(b)],
                1e-4f);
}

TEST(LossScaling, FusedCrossEntropyMatchesPerModel) {
  const int64_t B = 3, N = 5, C = 4;
  Rng rng(11);
  Tensor logits = Tensor::randn({B, N, C}, rng);
  Tensor labels({B, N});
  for (int64_t i = 0; i < labels.numel(); ++i)
    labels.data()[i] = static_cast<float>(rng.uniform_int(C));
  // Gradient through fused CE == per-model CE gradients.
  ag::Variable lf(logits.clone(), true);
  fused_cross_entropy(lf, labels, ag::Reduction::kMean).backward();
  for (int64_t b = 0; b < B; ++b) {
    ag::Variable lb(logits.slice(0, b, b + 1).reshape({N, C}), true);
    ag::cross_entropy(lb, labels.slice(0, b, b + 1).reshape({N}),
                      ag::Reduction::kMean)
        .backward();
    Tensor gf = lf.grad().slice(0, b, b + 1).reshape({N, C});
    EXPECT_LT(ops::max_abs_diff(gf, lb.grad()), 1e-5f);
  }
  // Per-model loss reporting matches direct computation.
  auto per = per_model_cross_entropy(logits, labels);
  for (int64_t b = 0; b < B; ++b) {
    ag::Variable lb(logits.slice(0, b, b + 1).reshape({N, C}));
    // build loss manually
    Tensor lp = ops::log_softmax(lb.value(), 1);
    double acc = 0;
    for (int64_t n = 0; n < N; ++n)
      acc -= lp.at({n, static_cast<int64_t>(labels.at({b, n}))});
    EXPECT_NEAR(per[static_cast<size_t>(b)], acc / N, 1e-5);
  }
}

}  // namespace
}  // namespace hfta::fused
