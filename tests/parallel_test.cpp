// The redesigned parallel runtime: Partition boundaries as a pure function
// of problem size, exact-once coverage under dynamic chunk claiming, inline
// nesting, the runtime thread-count override, and bit-identical kernel
// results at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "core/parallel.h"
#include "core/rng.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace hfta {
namespace {

// Every test restores the configured lane count on exit so suites can run
// in any order.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = num_threads(); }
  void TearDown() override { set_num_threads(saved_threads_); }
  int saved_threads_ = 1;
};

TEST_F(ParallelTest, PartitionBoundariesIgnoreThreadCount) {
  // The decomposition is a pure function of the problem size: changing the
  // worker count must not move a single chunk boundary.
  set_num_threads(1);
  const Partition r1 = Partition::rows(1000);
  const Partition e1 = Partition::elems(1 << 20);
  const Partition g1 = Partition::range(5, 4321, 10);
  set_num_threads(8);
  const Partition r8 = Partition::rows(1000);
  const Partition e8 = Partition::elems(1 << 20);
  const Partition g8 = Partition::range(5, 4321, 10);
  EXPECT_EQ(r1.chunk, r8.chunk);
  EXPECT_EQ(e1.chunk, e8.chunk);
  EXPECT_EQ(g1.chunk, g8.chunk);
  EXPECT_EQ(g1.begin, g8.begin);
  EXPECT_EQ(g1.end, g8.end);
  EXPECT_EQ(g1.num_chunks(), g8.num_chunks());
}

TEST_F(ParallelTest, PartitionRespectsMinPerChunkAndTargetCap) {
  // Small ranges: at most one chunk per min_per_chunk worth of work.
  const Partition small = Partition::range(0, 100, 64);
  EXPECT_EQ(small.num_chunks(), 1);  // 100/64 -> 1 chunk
  // Large ranges: never more than kTargetChunks chunks.
  const Partition large = Partition::rows(1 << 20);
  EXPECT_LE(large.num_chunks(), Partition::kTargetChunks);
  EXPECT_GE(large.num_chunks(), Partition::kTargetChunks - 1);
  // Empty range: zero chunks, and parallel_for must be a no-op.
  const Partition empty = Partition::rows(0);
  EXPECT_EQ(empty.num_chunks(), 0);
  bool called = false;
  parallel_for(empty, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_F(ParallelTest, EveryIndexCoveredExactlyOnce) {
  const int64_t n = 100000;
  std::unique_ptr<std::atomic<int>[]> hits(new std::atomic<int>[n]);
  for (int64_t i = 0; i < n; ++i) hits[i].store(0, std::memory_order_relaxed);
  set_num_threads(8);
  parallel_for(Partition::range(0, n, 1), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "index " << i;
}

TEST_F(ParallelTest, NonZeroBeginIsHonored) {
  std::atomic<int64_t> count{0};
  std::atomic<int64_t> min_seen{1 << 30};
  set_num_threads(4);
  parallel_for(Partition::range(37, 9000, 1), [&](int64_t lo, int64_t hi) {
    count.fetch_add(hi - lo, std::memory_order_relaxed);
    int64_t cur = min_seen.load(std::memory_order_relaxed);
    while (lo < cur &&
           !min_seen.compare_exchange_weak(cur, lo, std::memory_order_relaxed))
      ;
  });
  EXPECT_EQ(count.load(), 9000 - 37);
  EXPECT_EQ(min_seen.load(), 37);
}

TEST_F(ParallelTest, NestedParallelForRunsInlineWithoutDeadlock) {
  set_num_threads(8);
  const int64_t outer_n = 64, inner_n = 256;
  std::unique_ptr<std::atomic<int>[]> hits(
      new std::atomic<int>[outer_n * inner_n]);
  for (int64_t i = 0; i < outer_n * inner_n; ++i)
    hits[i].store(0, std::memory_order_relaxed);
  parallel_for(Partition::rows(outer_n), [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      // Inner launch from inside the pool: must run inline (whole range in
      // one call), not re-enter the pool.
      parallel_for(Partition::rows(inner_n), [&](int64_t ilo, int64_t ihi) {
        EXPECT_EQ(ilo, 0);
        EXPECT_EQ(ihi, inner_n);
        for (int64_t i = ilo; i < ihi; ++i)
          hits[o * inner_n + i].fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  for (int64_t i = 0; i < outer_n * inner_n; ++i)
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1);
}

TEST_F(ParallelTest, SetNumThreadsRoundTripsAndClamps) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(0);   // clamped up
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(1 << 20);  // clamped down to the pool maximum
  EXPECT_EQ(num_threads(), 64);
  // Lowering after raising parks workers; launches must still cover fully.
  set_num_threads(2);
  std::atomic<int64_t> total{0};
  parallel_for(Partition::rows(5000), [&](int64_t lo, int64_t hi) {
    total.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 5000);
}

// Bitwise comparison helper: float vectors produced by the same math at
// different thread counts must match to the last bit.
void expect_bits_equal(const std::vector<float>& a,
                       const std::vector<float>& b, const char* tag) {
  ASSERT_EQ(a.size(), b.size()) << tag;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << tag;
  }
}

TEST_F(ParallelTest, KernelsBitIdenticalAcrossThreadCounts) {
  // Reducing kernels (gemm, sum over dims, embedding scatter, softmax) at
  // 1/2/4/8 lanes: fixed partitions + unsplit accumulation chains mean the
  // result cannot depend on the worker count.
  Rng rng(3);
  const Tensor a = Tensor::randn({37, 65}, rng);
  const Tensor b = Tensor::randn({65, 41}, rng);
  const Tensor t3 = Tensor::randn({7, 33, 5}, rng);
  Tensor grad = Tensor::randn({50, 6}, rng);
  Tensor idx({50});
  for (int64_t i = 0; i < 50; ++i)
    idx.data()[i] = static_cast<float>((i * 7) % 20);  // repeated rows

  std::vector<float> mm_ref, sum_ref, emb_ref, sm_ref, bcast_ref;
  for (int nt : {1, 2, 4, 8}) {
    set_num_threads(nt);
    const auto mm = ops::matmul(a, b).to_vector();
    const auto sums = ops::sum(t3, {1}, /*keepdim=*/false).to_vector();
    const auto emb = ops::embedding_backward(grad, idx, 20).to_vector();
    const auto sm = ops::softmax(a, -1).to_vector();
    const auto bc = ops::add(t3, Tensor::ones({5})).to_vector();
    if (nt == 1) {
      mm_ref = mm;
      sum_ref = sums;
      emb_ref = emb;
      sm_ref = sm;
      bcast_ref = bc;
    } else {
      expect_bits_equal(mm_ref, mm, "matmul");
      expect_bits_equal(sum_ref, sums, "sum");
      expect_bits_equal(emb_ref, emb, "embedding_backward");
      expect_bits_equal(sm_ref, sm, "softmax");
      expect_bits_equal(bcast_ref, bc, "broadcast add");
    }
  }
}

}  // namespace
}  // namespace hfta
