// StoragePool behavior: bucket reuse, oversize fallback, iteration-scope
// accounting, the Config toggle, per-thread free lists (reuse, cross-thread
// steal), and the intrusive refcount that keeps shared storage alive.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "core/storage_pool.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace hfta {
namespace {

// The pool is process-global; isolate each test's accounting.
class StoragePoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StoragePool::instance().set_config(StoragePool::Config{});
    StoragePool::instance().trim();
    StoragePool::instance().reset_stats();
  }
  void TearDown() override {
    StoragePool::instance().set_config(StoragePool::Config{});
    StoragePool::instance().trim();
  }
};

TEST_F(StoragePoolTest, PayloadsAre64ByteAligned) {
  // SIMD kernels rely on pooled payloads being cache-line aligned: bucket
  // allocations, oversize heap fallbacks, and half-dtype views alike.
  auto aligned64 = [](const void* p) {
    return reinterpret_cast<uintptr_t>(p) % 64 == 0;
  };
  EXPECT_GE(alignof(StorageBlock), 64u);
  Tensor bucket({4, 8});
  EXPECT_TRUE(aligned64(bucket.data()));
  Tensor odd({7});  // sub-bucket request still lands on an aligned block
  EXPECT_TRUE(aligned64(odd.data()));
  Tensor oversize({1 << 20});
  EXPECT_TRUE(aligned64(oversize.data()));
  Tensor half = Tensor::empty({5, 3}, DType::kF16);
  EXPECT_TRUE(aligned64(half.data_u16()));
  // Recycled buffers keep the alignment.
  float* raw = nullptr;
  {
    Tensor t({64});
    raw = t.data();
  }
  Tensor u({64});
  EXPECT_EQ(u.data(), raw);
  EXPECT_TRUE(aligned64(u.data()));
}

TEST_F(StoragePoolTest, BucketReuseRecyclesSameSize) {
  auto& pool = StoragePool::instance();
  float* raw = nullptr;
  {
    Tensor t({4, 8});  // 32 floats -> 64-float bucket
    raw = t.data();
  }
  EXPECT_EQ(pool.stats().cached_buffers, 1u);
  Tensor u({4, 8});
  EXPECT_EQ(u.data(), raw);  // same buffer handed back
  EXPECT_EQ(pool.stats().pool_hits, 1u);
  EXPECT_EQ(pool.stats().heap_allocs, 1u);  // only the first allocation
}

TEST_F(StoragePoolTest, NearSizesShareAPowerOfTwoBucket) {
  auto& pool = StoragePool::instance();
  float* raw = nullptr;
  {
    Tensor t({100});  // -> 128-float bucket
    raw = t.data();
  }
  Tensor u({128});  // same bucket, different requested size
  EXPECT_EQ(u.data(), raw);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
}

TEST_F(StoragePoolTest, RecycledZeroedAllocationIsZeroFilled) {
  {
    Tensor t({64});
    t.fill_(7.f);
  }
  Tensor z({64});  // recycled buffer, but zeros() semantics must hold
  for (int64_t i = 0; i < z.numel(); ++i) EXPECT_EQ(z.data()[i], 0.f);
}

TEST_F(StoragePoolTest, OversizeRequestFallsBackToHeapThenRecycles) {
  auto& pool = StoragePool::instance();
  {
    Tensor big({1 << 20});  // nothing cached at this size yet
  }
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
  {
    Tensor big2({1 << 20});  // recycled
  }
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
}

TEST_F(StoragePoolTest, TrimDropsCachedBuffersOnly) {
  auto& pool = StoragePool::instance();
  Tensor live({32});
  live.fill_(3.f);
  { Tensor dead({32, 32}); }
  EXPECT_GT(pool.stats().cached_buffers, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().cached_buffers, 0u);
  EXPECT_EQ(live.data()[0], 3.f);  // live tensors untouched
}

TEST_F(StoragePoolTest, DisabledPoolAllocatesAndFreesOnHeap) {
  auto& pool = StoragePool::instance();
  StoragePool::Config off;
  off.enabled = false;
  pool.set_config(off);
  { Tensor t({64}); }
  EXPECT_EQ(pool.stats().cached_buffers, 0u);  // nothing parked
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
  { Tensor t({64}); }
  EXPECT_EQ(pool.stats().heap_allocs, 2u);  // no recycling while off
}

TEST_F(StoragePoolTest, ConfigRoundTrips) {
  auto& pool = StoragePool::instance();
  StoragePool::Config c;
  c.enabled = false;
  c.zero_fill_all = true;
  pool.set_config(c);
  EXPECT_FALSE(pool.config().enabled);
  EXPECT_TRUE(pool.config().zero_fill_all);
  pool.set_config(StoragePool::Config{});
  EXPECT_TRUE(pool.config().enabled);
  EXPECT_FALSE(pool.config().zero_fill_all);
}

TEST_F(StoragePoolTest, IterationScopeReportsPerIterationDeltas) {
  { Tensor warm({16, 16}); }  // park one buffer
  IterationScope scope;
  { Tensor hit({16, 16}); }   // recycled: no heap alloc inside the scope
  EXPECT_EQ(scope.stats().heap_allocs, 0u);
  EXPECT_EQ(scope.stats().pool_hits, 1u);
  { Tensor miss({1 << 18}); }  // nothing cached at this size: heap alloc
  EXPECT_EQ(scope.stats().heap_allocs, 1u);
}

TEST_F(StoragePoolTest, IterationScopePublishesLastScopeOnDestruction) {
  { Tensor warm({16, 16}); }
  {
    IterationScope scope;
    { Tensor hit({16, 16}); }
  }
  EXPECT_EQ(IterationScope::last().heap_allocs, 0u);
  EXPECT_EQ(IterationScope::last().pool_hits, 1u);
}

TEST_F(StoragePoolTest, PoolStatsTrackHeapAllocsOnly) {
  auto& pool = StoragePool::instance();
  { Tensor t({32}); }
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
  EXPECT_GT(pool.stats().heap_bytes, 0u);
  { Tensor t({32}); }  // pool hit: counter must NOT move
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
}

TEST_F(StoragePoolTest, PerThreadFreeListReusesOnOwningThread) {
  // A buffer freed on a worker thread is handed straight back to that
  // thread's next same-bucket request, with no heap traffic.
  auto& pool = StoragePool::instance();
  std::thread worker([&] {
    float* raw = nullptr;
    {
      Tensor t({256});
      raw = t.data();
    }
    const uint64_t allocs = pool.stats().heap_allocs;
    Tensor u({256});
    EXPECT_EQ(u.data(), raw);
    EXPECT_EQ(pool.stats().heap_allocs, allocs);
  });
  worker.join();
}

TEST_F(StoragePoolTest, CrossThreadFreeIsStolenNotReallocated) {
  // Free on thread B, re-acquire on the main thread while B is still alive:
  // the buffer sits in B's cache, so the allocator must steal it rather
  // than touch the heap (the zero-warm-step-alloc invariant must not depend
  // on which lane freed a buffer).
  auto& pool = StoragePool::instance();
  Tensor t({512});
  float* raw = t.data();
  std::mutex mu;
  std::condition_variable cv;
  bool freed = false;
  bool reacquired = false;
  std::thread worker([&] {
    { Tensor dropped = std::move(t); }  // parks in the worker's cache
    {
      std::lock_guard<std::mutex> lk(mu);
      freed = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return reacquired; });
  });
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return freed; });
  }
  const uint64_t allocs = pool.stats().heap_allocs;
  Tensor u({512});
  EXPECT_EQ(u.data(), raw);
  EXPECT_EQ(pool.stats().heap_allocs, allocs);
  {
    std::lock_guard<std::mutex> lk(mu);
    reacquired = true;
  }
  cv.notify_all();
  worker.join();
}

TEST_F(StoragePoolTest, IntrusiveRefcountParksOnlyAfterLastRef) {
  auto& pool = StoragePool::instance();
  Tensor a({64});
  float* raw = a.data();
  Tensor view = a.reshape({8, 8});  // shares storage
  EXPECT_TRUE(a.shares_storage_with(view));
  a = Tensor();  // drop one ref; `view` keeps the block alive
  EXPECT_EQ(pool.stats().cached_buffers, 0u);
  view.data()[0] = 5.f;
  view = Tensor();  // last ref: block parks in the free list
  EXPECT_EQ(pool.stats().cached_buffers, 1u);
  Tensor b({64});
  EXPECT_EQ(b.data(), raw);
}

TEST_F(StoragePoolTest, StorageRefCountsAndReleases) {
  auto& pool = StoragePool::instance();
  StorageRef r = pool.acquire(10, /*zeroed=*/false);
  EXPECT_EQ(r.use_count(), 1u);
  StorageRef r2 = r;
  EXPECT_EQ(r.use_count(), 2u);
  EXPECT_TRUE(r == r2);
  r2 = StorageRef();
  EXPECT_EQ(r.use_count(), 1u);
  StorageRef r3 = std::move(r);
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r3.use_count(), 1u);
}

TEST_F(StoragePoolTest, PooledAndHeapTensorsComputeIdentically) {
  // Same arithmetic with pooling on and off: recycling buffers must never
  // change a value (Tensor::empty users overwrite fully; zeros re-zero).
  auto compute = [] {
    Rng rng(11);
    Tensor a = Tensor::randn({8, 8}, rng);
    Tensor b = Tensor::randn({8, 8}, rng);
    Tensor c = ops::add(ops::matmul(a, b), a);
    return c.to_vector();
  };
  StoragePool::instance().set_config(StoragePool::Config{});
  const auto warm = compute();   // populate free lists
  const auto pooled = compute(); // recycled buffers
  StoragePool::Config off;
  off.enabled = false;
  StoragePool::instance().set_config(off);
  const auto heap = compute();
  ASSERT_EQ(pooled.size(), heap.size());
  for (size_t i = 0; i < pooled.size(); ++i) {
    EXPECT_EQ(pooled[i], heap[i]) << "at " << i;
    EXPECT_EQ(warm[i], heap[i]) << "at " << i;
  }
}

}  // namespace
}  // namespace hfta
