// StoragePool behavior: bucket reuse, oversize fallback, iteration-scope
// accounting, enable/disable, and the Tensor-level instrumentation the
// steady-state zero-alloc assertions build on.
#include <gtest/gtest.h>

#include "core/storage_pool.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace hfta {
namespace {

// The pool is process-global; isolate each test's accounting.
class StoragePoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StoragePool::instance().set_enabled(true);
    StoragePool::instance().trim();
    StoragePool::instance().reset_stats();
  }
  void TearDown() override {
    StoragePool::instance().set_enabled(true);
    StoragePool::instance().trim();
  }
};

TEST_F(StoragePoolTest, BucketReuseRecyclesSameSize) {
  auto& pool = StoragePool::instance();
  float* raw = nullptr;
  {
    Tensor t({4, 8});  // 32 floats -> 64-float bucket
    raw = t.data();
  }
  EXPECT_EQ(pool.stats().cached_buffers, 1u);
  Tensor u({4, 8});
  EXPECT_EQ(u.data(), raw);  // same buffer handed back
  EXPECT_EQ(pool.stats().pool_hits, 1u);
  EXPECT_EQ(pool.stats().heap_allocs, 1u);  // only the first allocation
}

TEST_F(StoragePoolTest, NearSizesShareAPowerOfTwoBucket) {
  auto& pool = StoragePool::instance();
  float* raw = nullptr;
  {
    Tensor t({100});  // -> 128-float bucket
    raw = t.data();
  }
  Tensor u({128});  // same bucket, different requested size
  EXPECT_EQ(u.data(), raw);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
}

TEST_F(StoragePoolTest, RecycledZeroedAllocationIsZeroFilled) {
  {
    Tensor t({64});
    t.fill_(7.f);
  }
  Tensor z({64});  // recycled buffer, but zeros() semantics must hold
  for (int64_t i = 0; i < z.numel(); ++i) EXPECT_EQ(z.data()[i], 0.f);
}

TEST_F(StoragePoolTest, OversizeRequestFallsBackToHeapThenRecycles) {
  auto& pool = StoragePool::instance();
  {
    Tensor big({1 << 20});  // nothing cached at this size yet
  }
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
  {
    Tensor big2({1 << 20});  // recycled
  }
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
}

TEST_F(StoragePoolTest, TrimDropsCachedBuffersOnly) {
  auto& pool = StoragePool::instance();
  Tensor live({32});
  live.fill_(3.f);
  { Tensor dead({32, 32}); }
  EXPECT_GT(pool.stats().cached_buffers, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().cached_buffers, 0u);
  EXPECT_EQ(live.data()[0], 3.f);  // live tensors untouched
}

TEST_F(StoragePoolTest, DisabledPoolAllocatesAndFreesOnHeap) {
  auto& pool = StoragePool::instance();
  pool.set_enabled(false);
  { Tensor t({64}); }
  EXPECT_EQ(pool.stats().cached_buffers, 0u);  // nothing parked
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
  { Tensor t({64}); }
  EXPECT_EQ(pool.stats().heap_allocs, 2u);  // no recycling while off
}

TEST_F(StoragePoolTest, IterationScopeReportsPerIterationDeltas) {
  { Tensor warm({16, 16}); }  // park one buffer
  IterationScope scope;
  { Tensor hit({16, 16}); }   // recycled: no heap alloc inside the scope
  EXPECT_EQ(scope.heap_allocs(), 0u);
  EXPECT_EQ(scope.pool_hits(), 1u);
  { Tensor miss({1 << 18}); }  // nothing cached at this size: heap alloc
  EXPECT_EQ(scope.heap_allocs(), 1u);
}

TEST_F(StoragePoolTest, IterationScopePublishesLastScopeOnDestruction) {
  { Tensor warm({16, 16}); }
  {
    IterationScope scope;
    { Tensor hit({16, 16}); }
  }
  EXPECT_EQ(IterationScope::last_heap_allocs(), 0u);
  EXPECT_EQ(IterationScope::last_pool_hits(), 1u);
}

TEST_F(StoragePoolTest, TensorAllocCountersTrackHeapAllocsOnly) {
  Tensor::reset_alloc_stats();
  { Tensor t({32}); }
  const uint64_t after_first = Tensor::alloc_count();
  EXPECT_EQ(after_first, 1u);
  EXPECT_GT(Tensor::alloc_bytes(), 0u);
  { Tensor t({32}); }  // pool hit: counter must NOT move
  EXPECT_EQ(Tensor::alloc_count(), after_first);
}

TEST_F(StoragePoolTest, PooledAndHeapTensorsComputeIdentically) {
  // Same arithmetic with pooling on and off: recycling buffers must never
  // change a value (Tensor::empty users overwrite fully; zeros re-zero).
  auto compute = [] {
    Rng rng(11);
    Tensor a = Tensor::randn({8, 8}, rng);
    Tensor b = Tensor::randn({8, 8}, rng);
    Tensor c = ops::add(ops::matmul(a, b), a);
    return c.to_vector();
  };
  StoragePool::instance().set_enabled(true);
  const auto warm = compute();   // populate free lists
  const auto pooled = compute(); // recycled buffers
  StoragePool::instance().set_enabled(false);
  const auto heap = compute();
  ASSERT_EQ(pooled.size(), heap.size());
  for (size_t i = 0; i < pooled.size(); ++i) {
    EXPECT_EQ(pooled[i], heap[i]) << "at " << i;
    EXPECT_EQ(warm[i], heap[i]) << "at " << i;
  }
}

}  // namespace
}  // namespace hfta
