// Training-step equivalence for the attention-based models (Transformer-LM
// and BERT) — the fused encoder stack must track serial training through
// softmax/LayerNorm/embedding gradients, not just match on the forward
// pass. Also covers activation functions on fused layouts.
#include <gtest/gtest.h>

#include "data/datasets.h"
#include "hfta/fused_optim.h"
#include "hfta/loss_scaling.h"
#include "models/bert.h"
#include "models/transformer.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace hfta {
namespace {

constexpr int64_t kB = 2;

template <typename FusedModel, typename PlainModel>
float divergence(FusedModel& fused_model,
                 std::vector<std::shared_ptr<PlainModel>>& plain) {
  float worst = 0.f;
  auto fp = fused_model.named_parameters();
  for (int64_t b = 0; b < kB; ++b) {
    auto pp = plain[static_cast<size_t>(b)]->named_parameters();
    for (size_t i = 0; i < fp.size(); ++i) {
      const Tensor& fv = fp[i].second.value();
      const Tensor& pv = pp[i].second.value();
      const int64_t block = fv.numel() / kB;
      Tensor fb({block});
      std::copy(fv.data() + b * block, fv.data() + (b + 1) * block,
                fb.data());
      Tensor ref = pv;
      if (fv.dim() == 3 && pv.dim() == 2 && fv.size(1) == pv.size(1) &&
          fv.size(2) == pv.size(0)) {
        ref = pv.transpose(0, 1);  // FusedLinear layout
      }
      worst = std::max(worst, ops::max_abs_diff(fb, ref.reshape({block})));
    }
  }
  return worst;
}

TEST(AttentionTraining, TransformerLMStepsTrackSerial) {
  Rng rng(1);
  models::TransformerConfig cfg = models::TransformerConfig::tiny();
  data::TextDataset ds(2000, cfg.vocab, 3);

  models::FusedTransformerLM fused_model(kB, cfg, rng);
  std::vector<std::shared_ptr<models::TransformerLM>> plain;
  std::vector<std::unique_ptr<nn::Adam>> opts;
  fused::HyperVec lrs = {1e-3, 3e-3};
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<models::TransformerLM>(cfg, rng));
    fused_model.load_model(b, *plain.back());
    opts.push_back(std::make_unique<nn::Adam>(
        plain.back()->parameters(),
        nn::Adam::Options{.lr = lrs[static_cast<size_t>(b)]}));
  }
  fused::FusedAdam fused_opt(
      fused::collect_fused_parameters(fused_model, kB), kB, {.lr = lrs});

  for (int step = 0; step < 3; ++step) {
    auto [x, y] = ds.batch_lm(4, cfg.seq_len, step * 64);
    // fused step over [B, N, S]
    Tensor toks = fused::pack_model_major(std::vector<Tensor>(kB, x));
    Tensor labels = fused::pack_model_major(std::vector<Tensor>(kB, y));
    fused_opt.zero_grad();
    ag::Variable logits = fused_model.forward_tokens(toks);
    // next-token CE over all positions: reshape [B, N*S, V]
    ag::Variable flat = ag::reshape(
        logits, {kB, 4 * cfg.seq_len, cfg.vocab});
    fused::fused_cross_entropy(flat, labels.reshape({kB, 4 * cfg.seq_len}),
                               ag::Reduction::kMean)
        .backward();
    fused_opt.step();
    // serial steps
    for (int64_t b = 0; b < kB; ++b) {
      const size_t ub = static_cast<size_t>(b);
      opts[ub]->zero_grad();
      ag::Variable lb = plain[ub]->forward_tokens(x);
      ag::cross_entropy(
          ag::reshape(lb, {4 * cfg.seq_len, cfg.vocab}),
          y.reshape({4 * cfg.seq_len}), ag::Reduction::kMean)
          .backward();
      opts[ub]->step();
    }
  }
  EXPECT_LT(divergence(fused_model, plain), 5e-3f);
}

TEST(AttentionTraining, BertMlmStepTracksSerial) {
  Rng rng(2);
  models::BertConfig cfg = models::BertConfig::tiny();
  data::TextDataset ds(2000, cfg.vocab, 5);
  Rng mask_rng(7);

  models::FusedBertModel fused_model(kB, cfg, rng);
  std::vector<std::shared_ptr<models::BertModel>> plain;
  std::vector<std::unique_ptr<nn::Adadelta>> opts;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<models::BertModel>(cfg, rng));
    fused_model.load_model(b, *plain.back());
    opts.push_back(std::make_unique<nn::Adadelta>(
        plain.back()->parameters(), nn::Adadelta::Options{.lr = 0.5}));
  }
  fused::FusedAdadelta fused_opt(
      fused::collect_fused_parameters(fused_model, kB), kB, {.lr = {0.5}});

  auto [x, y] = ds.batch_mlm(4, cfg.seq_len, 0, cfg.vocab - 1, mask_rng);
  Tensor toks = fused::pack_model_major(std::vector<Tensor>(kB, x));
  Tensor labels = fused::pack_model_major(std::vector<Tensor>(kB, y));
  fused_opt.zero_grad();
  ag::Variable logits = fused_model.forward_tokens(toks);
  fused::fused_cross_entropy(
      ag::reshape(logits, {kB, 4 * cfg.seq_len, cfg.vocab}),
      labels.reshape({kB, 4 * cfg.seq_len}), ag::Reduction::kMean)
      .backward();
  fused_opt.step();
  for (int64_t b = 0; b < kB; ++b) {
    const size_t ub = static_cast<size_t>(b);
    opts[ub]->zero_grad();
    ag::Variable lb = plain[ub]->forward_tokens(x);
    ag::cross_entropy(ag::reshape(lb, {4 * cfg.seq_len, cfg.vocab}),
                      y.reshape({4 * cfg.seq_len}), ag::Reduction::kMean)
        .backward();
    opts[ub]->step();
  }
  EXPECT_LT(divergence(fused_model, plain), 5e-3f);
}

// Activations are shape-agnostic and identical in fused form (Appendix B's
// last rows) — check them explicitly on the channel-fused layout anyway.
TEST(FusedActivations, ElementwiseOpsCommuteWithPacking) {
  Rng rng(3);
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < 3; ++b) xs.push_back(Tensor::randn({2, 4, 5}, rng));
  Tensor packed = fused::pack_channel_fused(xs);
  struct Case {
    const char* name;
    ag::Variable (*fn)(const ag::Variable&);
  };
  const Case cases[] = {
      {"relu", [](const ag::Variable& v) { return ag::relu(v); }},
      {"relu6", [](const ag::Variable& v) { return ag::relu6(v); }},
      {"tanh", [](const ag::Variable& v) { return ag::tanh(v); }},
      {"hardswish", [](const ag::Variable& v) { return ag::hardswish(v); }},
      {"sigmoid", [](const ag::Variable& v) { return ag::sigmoid(v); }},
  };
  for (const Case& c : cases) {
    Tensor fused_out = c.fn(ag::Variable(packed)).value();
    auto per = fused::unpack_channel_fused(fused_out, 3);
    for (int64_t b = 0; b < 3; ++b) {
      Tensor ref = c.fn(ag::Variable(xs[static_cast<size_t>(b)])).value();
      EXPECT_EQ(ops::max_abs_diff(per[static_cast<size_t>(b)], ref), 0.f)
          << c.name;
    }
  }
  // LeakyReLU takes a slope parameter; checked separately.
  Tensor lf = ag::leaky_relu(ag::Variable(packed), 0.2f).value();
  auto per = fused::unpack_channel_fused(lf, 3);
  for (int64_t b = 0; b < 3; ++b) {
    Tensor ref =
        ag::leaky_relu(ag::Variable(xs[static_cast<size_t>(b)]), 0.2f).value();
    EXPECT_EQ(ops::max_abs_diff(per[static_cast<size_t>(b)], ref), 0.f);
  }
}

TEST(FusedActivations, FusedDropoutPreservesExpectationPerModel) {
  Rng rng(4);
  const int64_t B = 4, n = 4000;
  fused::FusedDropout drop(B, 0.3f, 123);
  Tensor x = Tensor::ones({B, n});
  Tensor y = drop.forward(ag::Variable(x)).value();
  for (int64_t b = 0; b < B; ++b) {
    double mean = 0;
    for (int64_t i = 0; i < n; ++i) mean += y.at({b, i});
    mean /= n;
    EXPECT_NEAR(mean, 1.0, 0.08) << "model " << b;  // inverted scaling
  }
}

}  // namespace
}  // namespace hfta
