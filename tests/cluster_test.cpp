// Cluster-study tests: Levenshtein properties, classifier precision/recall
// on labeled synthetic traces, and the Table 1 GPU-hour breakdown.
#include <gtest/gtest.h>

#include "cluster/report.h"

namespace hfta::cluster {
namespace {

TEST(Levenshtein, KnownValues) {
  EXPECT_EQ(levenshtein("kitten", "sitting"), 3);
  EXPECT_EQ(levenshtein("", "abc"), 3);
  EXPECT_EQ(levenshtein("abc", "abc"), 0);
  EXPECT_EQ(levenshtein("abc", ""), 3);
}

TEST(Levenshtein, MetricProperties) {
  Rng rng(1);
  auto random_name = [&rng]() {
    std::string s;
    for (int64_t i = 0, n = 3 + rng.uniform_int(10); i < n; ++i)
      s.push_back(static_cast<char>('a' + rng.uniform_int(6)));
    return s;
  };
  for (int it = 0; it < 50; ++it) {
    const std::string a = random_name(), b = random_name(), c = random_name();
    EXPECT_EQ(levenshtein(a, b), levenshtein(b, a));          // symmetry
    EXPECT_LE(levenshtein(a, c),
              levenshtein(a, b) + levenshtein(b, c));          // triangle
    EXPECT_EQ(levenshtein(a, a), 0);                           // identity
  }
}

TEST(Similarity, SweepNamesAreSimilarRandomNamesAreNot) {
  EXPECT_GT(name_similarity("train_lr0.00100_s17", "train_lr0.00072_s83"),
            0.7);
  EXPECT_LT(name_similarity("job_8344812", "ddp_99"), 0.5);
  EXPECT_DOUBLE_EQ(name_similarity("same", "same"), 1.0);
}

TEST(Trace, MatchesConfiguredMixture) {
  TraceConfig cfg;
  cfg.target_jobs = 8000;
  cfg.target_gpu_hours = 60000;
  auto jobs = generate_trace(cfg, 42);
  EXPECT_GT(jobs.size(), 1000u);
  std::vector<JobKind> truth;
  truth.reserve(jobs.size());
  for (const auto& j : jobs) truth.push_back(j.truth);
  auto b = breakdown(jobs, truth);
  EXPECT_NEAR(b.repetitive_frac(), cfg.repetitive_frac, 0.05);
  EXPECT_NEAR(b.distributed_h / b.total_h(), cfg.distributed_frac, 0.05);
}

TEST(Trace, DeterministicGivenSeed) {
  TraceConfig cfg;
  cfg.target_jobs = 500;
  cfg.target_gpu_hours = 4000;
  auto a = generate_trace(cfg, 7);
  auto b = generate_trace(cfg, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].truth, b[i].truth);
  }
}

TEST(Classifier, HighPrecisionAndRecallOnSyntheticTruth) {
  TraceConfig cfg;
  cfg.target_jobs = 6000;
  cfg.target_gpu_hours = 50000;
  auto jobs = generate_trace(cfg, 3);
  auto pred = classify(jobs);
  auto q = evaluate(jobs, pred);
  EXPECT_GT(q.precision, 0.9);
  EXPECT_GT(q.recall, 0.8);
}

TEST(Classifier, ReproducesTable1Breakdown) {
  // The headline claim: repetitive single-GPU jobs dominate (46.2% of
  // GPU-hours in Table 1).
  auto jobs = generate_trace(TraceConfig{}, 2021);
  auto pred = classify(jobs);
  auto b = breakdown(jobs, pred);
  EXPECT_NEAR(b.repetitive_frac(), 0.462, 0.06);
  EXPECT_GT(b.repetitive_h, b.distributed_h);  // outweighs distributed
}

TEST(Classifier, MultiGpuJobsNeverRepetitive) {
  auto jobs = generate_trace(TraceConfig{.target_jobs = 2000,
                                         .target_gpu_hours = 20000},
                             5);
  auto pred = classify(jobs);
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].gpus > 1) {
      EXPECT_NE(pred[i], JobKind::kRepetitiveSingleGpu);
    }
  }
}

TEST(Classifier, WindowBoundaryRespected) {
  // Two similar jobs 2 hours apart must NOT form a repetitive batch.
  std::vector<Job> jobs(3);
  for (int i = 0; i < 3; ++i) {
    jobs[i].job_id = i;
    jobs[i].user = "u";
    jobs[i].name = "train_lr0.00" + std::to_string(i);
    jobs[i].gpus = 1;
    jobs[i].duration_h = 1;
  }
  jobs[0].submit_time_s = 0;
  jobs[1].submit_time_s = 7200;
  jobs[2].submit_time_s = 14400;
  auto pred = classify(jobs);
  for (auto k : pred) EXPECT_NE(k, JobKind::kRepetitiveSingleGpu);
  // Same three inside one minute => repetitive.
  jobs[1].submit_time_s = 10;
  jobs[2].submit_time_s = 20;
  pred = classify(jobs);
  for (auto k : pred) EXPECT_EQ(k, JobKind::kRepetitiveSingleGpu);
}

}  // namespace
}  // namespace hfta::cluster
