// TrialExecutor seam tests: the synthetic executor reproduces the legacy
// accuracy/cost path exactly, and the real fused-training executor (a) runs
// each trial group as one planner-compiled array whose per-model loss
// trajectories equal B independent serial trainings to the last bit, and
// (b) repacks Hyperband rung survivors into a smaller array that continues
// training bit-exactly across the halving boundary.
#include <gtest/gtest.h>

#include "hfht/executor.h"

namespace hfta::hfht {
namespace {

// The PointNet space with its infusible choices pinned, so every proposed
// trial lands in ONE fused partition (and feature_transform=0 keeps the STN
// out of the bit-exactness audit).
SearchSpace single_partition_space() {
  SearchSpace s = SearchSpace::pointnet();
  s.params[s.index_of("batch_size")].choices = {8};
  s.params[s.index_of("feature_transform")].choices = {0};
  return s;
}

FusedTrainingExecutor::Options tiny_options(bool verify) {
  FusedTrainingExecutor::Options o;
  o.dataset_size = 16;
  o.eval_size = 8;
  o.max_array_size = 8;
  o.seed = 1234;
  o.verify_against_serial = verify;
  return o;
}

TEST(SpaceLookup, NamedIndexAndValueAccess) {
  const SearchSpace space = SearchSpace::pointnet();
  EXPECT_EQ(space.index_of("lr"), 0u);
  EXPECT_EQ(space.index_of("batch_size"), 6u);
  ParamSet p = {1e-3, 0.9, 0.99, 0.05, 0.5, 10, 16, 1};
  EXPECT_DOUBLE_EQ(space.get(p, "lr"), 1e-3);
  EXPECT_DOUBLE_EQ(space.get(p, "batch_size"), 16);
  EXPECT_DOUBLE_EQ(space.get(p, "feature_transform"), 1);
  EXPECT_THROW(space.index_of("nope"), Error);
}

TEST(SyntheticExecutorSeam, MatchesAccuracySurfaceAndCostModel) {
  const SearchSpace space = SearchSpace::pointnet();
  Rng rng(5);
  std::vector<Trial> batch;
  for (int i = 0; i < 6; ++i) batch.push_back({space.sample(rng), 10});
  const auto dev = sim::v100();
  SyntheticExecutor exec(Task::kPointNet, SchedulerKind::kHfta, dev);
  const ExecutionReport rep = exec.run(batch);
  ASSERT_EQ(rep.scores.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i)
    EXPECT_DOUBLE_EQ(rep.scores[i],
                     synthetic_accuracy(space, batch[i].params, 10,
                                        Task::kPointNet));
  const CostReport want = schedule_cost(batch, space,
                                        sim::Workload::kPointNetCls, dev,
                                        SchedulerKind::kHfta);
  EXPECT_DOUBLE_EQ(rep.cost.gpu_hours, want.gpu_hours);
  EXPECT_EQ(rep.cost.jobs_launched, want.jobs_launched);
}

TEST(SyntheticExecutorSeam, RunTuningWrapperIsUnchanged) {
  const auto dev = sim::v100();
  const TuneResult via_wrapper =
      run_tuning(Task::kPointNet, AlgorithmKind::kRandomSearch,
                 SchedulerKind::kHfta, dev, 42);
  auto algo = make_algorithm(AlgorithmKind::kRandomSearch, Task::kPointNet, 42);
  SyntheticExecutor exec(Task::kPointNet, SchedulerKind::kHfta, dev);
  const TuneResult via_seam = run_tuning(*algo, exec);
  EXPECT_DOUBLE_EQ(via_seam.total_gpu_hours, via_wrapper.total_gpu_hours);
  EXPECT_DOUBLE_EQ(via_seam.best_accuracy, via_wrapper.best_accuracy);
  EXPECT_EQ(via_seam.total_trials, via_wrapper.total_trials);
}

TEST(FusedExecutor, OneFusedGroupEqualsSerialTrainingsBitExactly) {
  RandomSearch rs(single_partition_space(), /*total_sets=*/4,
                  /*epochs_per_set=*/2, /*seed=*/7);
  FusedTrainingExecutor exec(Task::kPointNet, sim::v100(),
                             tiny_options(/*verify=*/true));
  const TuneResult r = run_tuning(rs, exec);
  EXPECT_EQ(r.total_trials, 4);
  EXPECT_EQ(exec.arrays_compiled(), 1);       // one partition, one array
  EXPECT_EQ(exec.arrays_repacked(), 0);
  EXPECT_GT(r.best_accuracy, 0.0);            // real losses, real scores
  EXPECT_LE(r.best_accuracy, 1.0);
  EXPECT_GT(r.total_gpu_hours, 0.0);          // priced from the real trace
  // The fused run IS the serial runs: not one float bit of loss drift.
  EXPECT_EQ(exec.max_fused_vs_serial_diff(), 0.0);
}

TEST(FusedExecutor, HyperbandSurvivorsRepackAndContinueBitExactly) {
  // R=4, eta=2, skip_last=0: bracket 2 runs 4 -> 2 -> 1 configs, so the
  // executor must repack the live array at every halving boundary.
  Hyperband hb(single_partition_space(), /*max_epochs_r=*/4, /*eta=*/2,
               /*skip_last=*/0, /*seed=*/9);
  FusedTrainingExecutor exec(Task::kPointNet, sim::v100(),
                             tiny_options(/*verify=*/true));
  const TuneResult r = run_tuning(hb, exec);
  EXPECT_GT(r.total_trials, 4);
  EXPECT_GE(exec.arrays_repacked(), 2);
  EXPECT_GT(exec.iterations_verified_after_repack(), 0);
  // Survivors continue as if the killed trials never shared the array.
  EXPECT_EQ(exec.max_fused_vs_serial_diff(), 0.0);
}

TEST(FusedExecutor, ReplayContinuesAcrossHyperbandRepack) {
  // The executor's TrainStep captures each group's step program; a halving
  // repack builds a new array + optimizer (new fingerprint), so training
  // must recapture and keep replaying — with the serial audit still at
  // zero drift on the post-repack iterations.
  Hyperband hb(single_partition_space(), /*max_epochs_r=*/4, /*eta=*/2,
               /*skip_last=*/0, /*seed=*/9);
  FusedTrainingExecutor exec(Task::kPointNet, sim::v100(),
                             tiny_options(/*verify=*/true));
  run_tuning(hb, exec);
  const TrainStep::Stats& st = exec.train_step().stats();
  EXPECT_GT(st.replays, 0);   // steady-state steps were served tape-free
  EXPECT_GE(st.captures, 2);  // at least one pre- and one post-repack program
  EXPECT_GE(exec.arrays_repacked(), 2);
  EXPECT_GT(exec.iterations_verified_after_repack(), 0);
  EXPECT_EQ(exec.max_fused_vs_serial_diff(), 0.0);
}

TEST(FusedExecutor, AmpKeepsFusedVsSerialBitExactAcrossRepack) {
  // Mixed precision must not cost the executor its core invariant: with
  // amp=true the fused array AND each serial verification twin train under
  // the same autocast dtype and the same shared loss scale, so the per-model
  // trajectories still match bit for bit — including across Hyperband
  // halving repacks (the scaler lives on the executor's TrainStep, which
  // outlives every repack).
  Hyperband hb(single_partition_space(), /*max_epochs_r=*/4, /*eta=*/2,
               /*skip_last=*/0, /*seed=*/9);
  FusedTrainingExecutor::Options o = tiny_options(/*verify=*/true);
  o.amp = true;
  o.amp_dtype = DType::kBF16;
  FusedTrainingExecutor exec(Task::kPointNet, sim::v100(), o);
  run_tuning(hb, exec);
  EXPECT_TRUE(exec.train_step().amp_enabled());
  EXPECT_GE(exec.arrays_repacked(), 2);
  EXPECT_GT(exec.iterations_verified_after_repack(), 0);
  // bf16's f32-sized exponent cannot overflow this workload: every step
  // must have been taken (no silent skips hiding in the audit).
  EXPECT_EQ(exec.train_step().stats().amp_overflow_skips, 0);
  EXPECT_EQ(exec.max_fused_vs_serial_diff(), 0.0);
}

TEST(FusedExecutor, DuplicateSurvivorsRepackIntoDistinctSlots) {
  // Discrete choice lists make identical ParamSets possible; two surviving
  // copies of the same set must map to two distinct slots of the old array
  // (a non-injective match would move the same serial twin twice).
  const ParamSet p = {1e-3, 0.9, 0.99, 0.05, 0.5, 10, 8, 0};
  const ParamSet q = {2e-3, 0.8, 0.99, 0.10, 0.5, 10, 8, 0};
  FusedTrainingExecutor exec(Task::kPointNet, sim::v100(),
                             tiny_options(/*verify=*/true));
  exec.run({{p, 1}, {p, 1}, {q, 1}});
  const ExecutionReport rep = exec.run({{p, 2}, {p, 2}});  // both survive
  EXPECT_EQ(exec.arrays_repacked(), 1);
  EXPECT_EQ(exec.max_fused_vs_serial_diff(), 0.0);
  ASSERT_EQ(rep.scores.size(), 2u);
  EXPECT_DOUBLE_EQ(rep.scores[0], rep.scores[1]);  // identical trials
}

TEST(FusedExecutor, FeatureTransformGroupRepacksBitExactly) {
  // feature_transform=1 routes through the STN: exercises FusedSTN's and
  // the trunk's STN store_model branch across a halving repack.
  const ParamSet p = {1e-3, 0.90, 0.99, 0.05, 0.5, 10, 8, 1};
  const ParamSet q = {3e-3, 0.85, 0.99, 0.10, 0.5, 10, 8, 1};
  FusedTrainingExecutor exec(Task::kPointNet, sim::v100(),
                             tiny_options(/*verify=*/true));
  exec.run({{p, 1}, {q, 1}});
  exec.run({{q, 2}});  // q survives the rung
  EXPECT_EQ(exec.arrays_repacked(), 1);
  EXPECT_GT(exec.iterations_verified_after_repack(), 0);
  EXPECT_EQ(exec.max_fused_vs_serial_diff(), 0.0);
}

TEST(FusedExecutor, OversizedPartitionIsChunked) {
  FusedTrainingExecutor::Options o = tiny_options(/*verify=*/false);
  o.max_array_size = 2;
  RandomSearch rs(single_partition_space(), 5, 1, 11);
  FusedTrainingExecutor exec(Task::kPointNet, sim::v100(), o);
  const TuneResult r = run_tuning(rs, exec);
  EXPECT_EQ(r.total_trials, 5);
  EXPECT_EQ(exec.arrays_compiled(), 3);  // 2 + 2 + 1
}

TEST(FusedExecutor, SurvivorsSpanningChunksMergeAndContinueBitExactly) {
  // Four trials with max_array_size=2 land in two chunked arrays (the
  // paper-scale bracket case: rung > device cap); the surviving pair draws
  // one member from EACH chunk, so continuing them requires the
  // multi-source gather — the single-source repack used to retrain these
  // from scratch.
  const ParamSet p1 = {1e-3, 0.90, 0.99, 0.05, 0.5, 10, 8, 0};
  const ParamSet p2 = {2e-3, 0.85, 0.99, 0.10, 0.5, 10, 8, 0};
  const ParamSet p3 = {3e-3, 0.80, 0.99, 0.15, 0.5, 10, 8, 0};
  const ParamSet p4 = {4e-3, 0.75, 0.99, 0.20, 0.5, 10, 8, 0};
  FusedTrainingExecutor::Options o = tiny_options(/*verify=*/true);
  o.max_array_size = 2;
  FusedTrainingExecutor exec(Task::kPointNet, sim::v100(), o);
  exec.run({{p1, 1}, {p2, 1}, {p3, 1}, {p4, 1}});
  EXPECT_EQ(exec.arrays_compiled(), 2);
  const ExecutionReport rep = exec.run({{p2, 3}, {p3, 3}});
  EXPECT_EQ(exec.arrays_compiled(), 2);  // no fresh retrain
  EXPECT_EQ(exec.multi_source_repacks(), 1);
  EXPECT_EQ(exec.arrays_merged(), 2);
  EXPECT_GT(exec.iterations_verified_after_merge(), 0);
  // The merged array's training equals the two serial runs to the last
  // bit, exactly as if p2 and p3 had always shared one array.
  EXPECT_EQ(exec.max_fused_vs_serial_diff(), 0.0);
  ASSERT_EQ(rep.scores.size(), 2u);
  for (double s : rep.scores) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(FusedExecutor, LeftoverSlotOfADrainedGroupStillContinuesBitExactly) {
  // A repack moves the source group's sampler (and the picked serial
  // twins) but leaves non-surviving slots behind. If a later proposal
  // legitimately matches such a leftover slot — possible with duplicate
  // parameter sets from the discrete choice lists — the executor must
  // reconstruct the shuffle stream deterministically and continue
  // bit-exactly rather than dereference the moved-from sampler.
  const ParamSet p = {1e-3, 0.90, 0.99, 0.05, 0.5, 10, 8, 0};
  const ParamSet q = {2e-3, 0.85, 0.99, 0.10, 0.5, 10, 8, 0};
  FusedTrainingExecutor exec(Task::kPointNet, sim::v100(),
                             tiny_options(/*verify=*/true));
  exec.run({{p, 1}, {q, 1}});  // one group {p, q}
  exec.run({{q, 2}});          // q survives: sampler moves, p's slot stays
  EXPECT_EQ(exec.arrays_repacked(), 1);
  // p resurfaces: its slot is un-retired, but the group's sampler is gone.
  const ExecutionReport rep = exec.run({{p, 2}});
  EXPECT_EQ(exec.arrays_repacked(), 2);
  EXPECT_EQ(exec.arrays_compiled(), 1);  // continued, not retrained
  EXPECT_EQ(exec.max_fused_vs_serial_diff(), 0.0);
  ASSERT_EQ(rep.scores.size(), 1u);
  EXPECT_GT(rep.scores[0], 0.0);
}

// The MobileNet space with its infusible choices pinned to one partition
// at real-executor scale (tiny widths, batch 4).
SearchSpace mobilenet_single_partition_space() {
  SearchSpace s = SearchSpace::mobilenet();
  s.params[s.index_of("batch_size")].choices = {4};
  s.params[s.index_of("version")].choices = {3};
  s.params[s.index_of("width_mult")].choices = {0.25};
  return s;
}

TEST(FusedExecutor, MobileNetTrialsTrainForRealBitExactly) {
  // The second paper workload scores from REAL fused training now, not the
  // synthetic accuracy surface: one planner-compiled FusedMobileNetV3
  // array whose per-model loss trajectories equal the serial runs exactly.
  RandomSearch rs(mobilenet_single_partition_space(), /*total_sets=*/3,
                  /*epochs_per_set=*/1, /*seed=*/21);
  FusedTrainingExecutor exec(Task::kMobileNet, sim::v100(),
                             tiny_options(/*verify=*/true));
  const TuneResult r = run_tuning(rs, exec);
  EXPECT_EQ(r.total_trials, 3);
  EXPECT_EQ(exec.arrays_compiled(), 1);
  EXPECT_GT(r.best_accuracy, 0.0);
  EXPECT_LE(r.best_accuracy, 1.0);
  EXPECT_GT(r.total_gpu_hours, 0.0);  // priced from the real MobileNet trace
  EXPECT_EQ(exec.max_fused_vs_serial_diff(), 0.0);
}

TEST(FusedExecutor, MobileNetSurvivorRepacksBitExactly) {
  // Halving on a live MobileNet array: the survivor's weights, BN running
  // stats, and Adam state carry over through the schema-derived store.
  const ParamSet p = {1e-3, 0.90, 0.99, 0.05, 0.5, 10, 4, 3, 0.25};
  const ParamSet q = {2e-3, 0.85, 0.99, 0.10, 0.5, 10, 4, 3, 0.25};
  FusedTrainingExecutor exec(Task::kMobileNet, sim::v100(),
                             tiny_options(/*verify=*/true));
  exec.run({{p, 1}, {q, 1}});
  exec.run({{q, 2}});  // q survives the rung
  EXPECT_EQ(exec.arrays_repacked(), 1);
  EXPECT_GT(exec.iterations_verified_after_repack(), 0);
  EXPECT_EQ(exec.max_fused_vs_serial_diff(), 0.0);
}

TEST(FusedExecutor, MobileNetVersionIsInfusible) {
  // V2 vs V3-Large differ structurally (paper Table 12's "version"), so
  // mixed proposals split into two fused partitions, each training for
  // real.
  const ParamSet v3 = {1e-3, 0.90, 0.99, 0.05, 0.5, 10, 4, 3, 0.25};
  const ParamSet v2 = {1e-3, 0.90, 0.99, 0.05, 0.5, 10, 4, 2, 0.25};
  FusedTrainingExecutor exec(Task::kMobileNet, sim::v100(),
                             tiny_options(/*verify=*/true));
  const ExecutionReport rep = exec.run({{v3, 1}, {v2, 1}});
  EXPECT_EQ(exec.arrays_compiled(), 2);
  EXPECT_EQ(exec.max_fused_vs_serial_diff(), 0.0);
  ASSERT_EQ(rep.scores.size(), 2u);
}

TEST(FusedExecutor, MobileNetWidthMultIsInfusible) {
  // Trials that differ only in width_mult have different channel counts
  // everywhere, so the congruence check must split them into separate
  // fused partitions — each still training for real, bit-exactly.
  const ParamSet narrow = {1e-3, 0.90, 0.99, 0.05, 0.5, 10, 4, 3, 0.25};
  const ParamSet wide = {1e-3, 0.90, 0.99, 0.05, 0.5, 10, 4, 3, 0.5};
  FusedTrainingExecutor exec(Task::kMobileNet, sim::v100(),
                             tiny_options(/*verify=*/true));
  const ExecutionReport rep = exec.run({{narrow, 1}, {wide, 1}});
  EXPECT_EQ(exec.arrays_compiled(), 2);
  EXPECT_EQ(exec.max_fused_vs_serial_diff(), 0.0);
  ASSERT_EQ(rep.scores.size(), 2u);
  EXPECT_GT(rep.scores[0], 0.0);
  EXPECT_GT(rep.scores[1], 0.0);
}

}  // namespace
}  // namespace hfta::hfht
