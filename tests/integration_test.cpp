// End-to-end training equivalence (the paper's convergence claim, Appendix
// C/D): training B models fused via HFTA — fused forward, scaled fused
// loss, fused optimizer with per-model hyper-parameters — must track B
// independent serial training runs step for step, on real synthetic data.
#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/loader.h"

#include <cmath>

#include "nn/optim.h"
#include "nn/sched.h"
#include "hfta/fused_optim.h"
#include "hfta/fused_sched.h"
#include "hfta/loss_scaling.h"
#include "models/dcgan.h"
#include "models/pointnet.h"
#include "models/resnet.h"
#include "tensor/ops.h"

namespace hfta {
namespace {

using fused::FusedParam;

constexpr int64_t kB = 3;

// Max |fused param block b - plain param| across all parameters.
template <typename FusedModel, typename PlainModel>
float param_divergence(FusedModel& fused_model,
                       std::vector<std::shared_ptr<PlainModel>>& plain,
                       int64_t B) {
  float worst = 0.f;
  auto fused_params = fused_model.named_parameters();
  for (int64_t b = 0; b < B; ++b) {
    auto plain_params = plain[static_cast<size_t>(b)]->named_parameters();
    // Parameter order matches because the module trees are parallel.
    HFTA_CHECK(fused_params.size() == plain_params.size(),
               "parameter structure mismatch");
    for (size_t i = 0; i < fused_params.size(); ++i) {
      const Tensor& fv = fused_params[i].second.value();
      const Tensor& pv = plain_params[i].second.value();
      const int64_t block = fv.numel() / B;
      HFTA_CHECK(block == pv.numel(), "block size mismatch at ",
                 fused_params[i].first);
      Tensor fb({block});
      std::copy(fv.data() + b * block, fv.data() + (b + 1) * block, fb.data());
      // FusedLinear stores [B, in, out]; the plain layer stores [out, in].
      Tensor ref = pv;
      if (fv.dim() == 3 && pv.dim() == 2 && fv.size(1) == pv.size(1) &&
          fv.size(2) == pv.size(0)) {
        ref = pv.transpose(0, 1);
      }
      worst = std::max(worst, ops::max_abs_diff(fb, ref));
    }
  }
  return worst;
}

TEST(TrainingEquivalence, PointNetClsAdamWithHeterogeneousLRs) {
  Rng rng(1);
  models::PointNetConfig cfg = models::PointNetConfig::tiny();
  data::PointCloudDataset ds(32, cfg.num_points, cfg.num_classes,
                             cfg.num_parts, /*seed=*/7);

  // B plain models + their Adam optimizers (distinct lrs).
  models::FusedPointNetCls fused_model(kB, cfg, rng);
  std::vector<std::shared_ptr<models::PointNetCls>> plain;
  std::vector<std::unique_ptr<nn::Adam>> plain_opts;
  fused::HyperVec lrs;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<models::PointNetCls>(cfg, rng));
    fused_model.load_model(b, *plain.back());
    const double lr = 1e-3 * (b + 1);
    lrs.push_back(lr);
    plain_opts.push_back(std::make_unique<nn::Adam>(
        plain.back()->parameters(), nn::Adam::Options{.lr = lr}));
  }
  fused::FusedAdam fused_opt(
      fused::collect_fused_parameters(fused_model, kB), kB, {.lr = lrs});

  data::BatchSampler sampler(ds.size(), 8, /*shuffle=*/true, 3);
  int steps = 0;
  for (const auto& batch_idx : sampler.epoch()) {
    auto [x, y] = ds.batch_cls(batch_idx);
    // All B jobs see the same data (hyper-parameter tuning semantics).
    std::vector<Tensor> xs(kB, x);
    Tensor labels({kB, x.size(0)});
    for (int64_t b = 0; b < kB; ++b)
      for (int64_t n = 0; n < x.size(0); ++n)
        labels.at({b, n}) = y.at({n});

    // fused step
    fused_opt.zero_grad();
    ag::Variable logits =
        fused_model.forward(ag::Variable(fused::pack_channel_fused(xs)));
    fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean)
        .backward();
    fused_opt.step();

    // serial steps
    for (int64_t b = 0; b < kB; ++b) {
      const size_t ub = static_cast<size_t>(b);
      plain_opts[ub]->zero_grad();
      ag::Variable lb = plain[ub]->forward(ag::Variable(x));
      ag::cross_entropy(lb, y, ag::Reduction::kMean).backward();
      plain_opts[ub]->step();
    }
    if (++steps >= 3) break;
  }
  EXPECT_LT(param_divergence(fused_model, plain, kB), 5e-3f);
}

TEST(TrainingEquivalence, ResNetSGDMomentumAndStepLR) {
  Rng rng(2);
  models::ResNetConfig cfg = models::ResNetConfig::tiny();
  cfg.image_size = 8;
  data::ImageDataset ds(16, cfg.image_size, 3, cfg.num_classes, 11);

  models::FusedResNet18 fused_model(kB, cfg, rng);
  std::vector<std::shared_ptr<models::ResNet18>> plain;
  std::vector<std::unique_ptr<nn::SGD>> plain_opts;
  std::vector<std::unique_ptr<nn::StepLR>> plain_scheds;
  fused::HyperVec lrs;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<models::ResNet18>(cfg, rng));
    fused_model.load_model(b, *plain.back());
    const double lr = 0.01 * (b + 1);
    lrs.push_back(lr);
    plain_opts.push_back(std::make_unique<nn::SGD>(
        plain.back()->parameters(),
        nn::SGD::Options{.lr = lr, .momentum = 0.9}));
    plain_scheds.push_back(
        std::make_unique<nn::StepLR>(*plain_opts.back(), 1, 0.5));
  }
  fused::FusedSGD fused_opt(fused::collect_fused_parameters(fused_model, kB),
                            kB, {.lr = lrs, .momentum = {0.9}});
  fused::FusedStepLR fused_sched(fused_opt, {1}, {0.5});

  data::BatchSampler sampler(ds.size(), 8, true, 5);
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (const auto& batch_idx : sampler.epoch()) {
      auto [x, y] = ds.batch(batch_idx);
      std::vector<Tensor> xs(kB, x);
      Tensor labels({kB, x.size(0)});
      for (int64_t b = 0; b < kB; ++b)
        for (int64_t n = 0; n < x.size(0); ++n) labels.at({b, n}) = y.at({n});

      fused_opt.zero_grad();
      ag::Variable logits =
          fused_model.forward(ag::Variable(fused::pack_channel_fused(xs)));
      fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean)
          .backward();
      fused_opt.step();

      for (int64_t b = 0; b < kB; ++b) {
        const size_t ub = static_cast<size_t>(b);
        plain_opts[ub]->zero_grad();
        ag::cross_entropy(plain[ub]->forward(ag::Variable(x)), y,
                          ag::Reduction::kMean)
            .backward();
        plain_opts[ub]->step();
      }
    }
    fused_sched.step();
    for (auto& s : plain_scheds) s->step();
  }
  EXPECT_LT(param_divergence(fused_model, plain, kB), 5e-3f);
}

TEST(TrainingEquivalence, DCGANAdversarialStep) {
  // One GAN iteration (D step on real+fake, G step) fused vs serial.
  Rng rng(3);
  models::DCGANConfig cfg = models::DCGANConfig::tiny();
  const int64_t N = 4;

  models::FusedDCGANGenerator fgen(kB, cfg, rng);
  models::FusedDCGANDiscriminator fdisc(kB, cfg, rng);
  std::vector<std::shared_ptr<models::DCGANGenerator>> gens;
  std::vector<std::shared_ptr<models::DCGANDiscriminator>> discs;
  std::vector<std::unique_ptr<nn::Adam>> g_opts, d_opts;
  for (int64_t b = 0; b < kB; ++b) {
    gens.push_back(std::make_shared<models::DCGANGenerator>(cfg, rng));
    discs.push_back(std::make_shared<models::DCGANDiscriminator>(cfg, rng));
    fgen.load_model(b, *gens.back());
    fdisc.load_model(b, *discs.back());
    g_opts.push_back(std::make_unique<nn::Adam>(
        gens.back()->parameters(), nn::Adam::Options{.lr = 2e-4, .beta1 = 0.5}));
    d_opts.push_back(std::make_unique<nn::Adam>(
        discs.back()->parameters(),
        nn::Adam::Options{.lr = 2e-4, .beta1 = 0.5}));
  }
  fused::FusedAdam fg_opt(fused::collect_fused_parameters(fgen, kB), kB,
                          {.lr = {2e-4}, .beta1 = {0.5}});
  fused::FusedAdam fd_opt(fused::collect_fused_parameters(fdisc, kB), kB,
                          {.lr = {2e-4}, .beta1 = {0.5}});

  data::ImageDataset ds(N, cfg.image_size, cfg.nc, 2, 21);
  std::vector<int64_t> idx = {0, 1, 2, 3};
  auto [real, ignored_labels] = ds.batch(idx);
  Tensor z = Tensor::randn({N, cfg.nz, 1, 1}, rng);
  std::vector<Tensor> reals(kB, real), zs(kB, z);
  Tensor ones_t = Tensor::ones({kB, N});
  Tensor zeros_t = Tensor::zeros({kB, N});
  Tensor ones_1 = Tensor::ones({N});
  Tensor zeros_1 = Tensor::zeros({N});

  // ---- fused D step: real + fake(detached) ----
  fd_opt.zero_grad();
  ag::Variable d_real = fdisc.forward(ag::Variable(fused::pack_channel_fused(reals)));
  fused::fused_bce_with_logits(d_real, ones_t, ag::Reduction::kMean, kB)
      .backward();
  Tensor fake_f =
      fgen.forward(ag::Variable(fused::pack_channel_fused(zs))).value();
  ag::Variable d_fake = fdisc.forward(ag::Variable(fake_f));
  fused::fused_bce_with_logits(d_fake, zeros_t, ag::Reduction::kMean, kB)
      .backward();
  fd_opt.step();
  // ---- fused G step ----
  fg_opt.zero_grad();
  ag::Variable fake_v = fgen.forward(ag::Variable(fused::pack_channel_fused(zs)));
  ag::Variable d_on_fake = fdisc.forward(fake_v);
  fused::fused_bce_with_logits(d_on_fake, ones_t, ag::Reduction::kMean, kB)
      .backward();
  fg_opt.step();

  // ---- serial counterparts ----
  for (int64_t b = 0; b < kB; ++b) {
    const size_t ub = static_cast<size_t>(b);
    d_opts[ub]->zero_grad();
    ag::Variable dr = discs[ub]->forward(ag::Variable(real));
    ag::bce_with_logits(dr, ones_1, ag::Reduction::kMean).backward();
    Tensor fake_b = gens[ub]->forward(ag::Variable(z)).value();
    ag::Variable df = discs[ub]->forward(ag::Variable(fake_b));
    ag::bce_with_logits(df, zeros_1, ag::Reduction::kMean).backward();
    d_opts[ub]->step();
    g_opts[ub]->zero_grad();
    ag::Variable fv = gens[ub]->forward(ag::Variable(z));
    ag::Variable dof = discs[ub]->forward(fv);
    ag::bce_with_logits(dof, ones_1, ag::Reduction::kMean).backward();
    g_opts[ub]->step();
  }

  EXPECT_LT(param_divergence(fgen, gens, kB), 5e-3f);
  EXPECT_LT(param_divergence(fdisc, discs, kB), 5e-3f);
}

TEST(TrainingEquivalence, LossCurvesIdenticalAcrossManySteps) {
  // The Figure-11 claim in miniature: per-model fused losses overlap the
  // serial losses at every step.
  Rng rng(4);
  models::ResNetConfig cfg = models::ResNetConfig::tiny();
  cfg.image_size = 8;
  cfg.base_width = 4;
  data::ImageDataset ds(16, cfg.image_size, 3, cfg.num_classes, 31);

  models::FusedResNet18 fused_model(kB, cfg, rng);
  std::vector<std::shared_ptr<models::ResNet18>> plain;
  std::vector<std::unique_ptr<nn::Adadelta>> plain_opts;
  fused::HyperVec lrs = {0.5, 1.0, 2.0};
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<models::ResNet18>(cfg, rng));
    fused_model.load_model(b, *plain.back());
    plain_opts.push_back(std::make_unique<nn::Adadelta>(
        plain.back()->parameters(),
        nn::Adadelta::Options{.lr = lrs[static_cast<size_t>(b)]}));
  }
  fused::FusedAdadelta fused_opt(
      fused::collect_fused_parameters(fused_model, kB), kB, {.lr = lrs});

  data::BatchSampler sampler(ds.size(), 8, true, 9);
  for (int step = 0; step < 6; ++step) {
    auto batches = sampler.epoch();
    auto [x, y] = ds.batch(batches[static_cast<size_t>(step) % batches.size()]);
    std::vector<Tensor> xs(kB, x);
    Tensor labels({kB, x.size(0)});
    for (int64_t b = 0; b < kB; ++b)
      for (int64_t n = 0; n < x.size(0); ++n) labels.at({b, n}) = y.at({n});

    fused_opt.zero_grad();
    ag::Variable logits =
        fused_model.forward(ag::Variable(fused::pack_channel_fused(xs)));
    auto fused_losses =
        fused::per_model_cross_entropy(logits.value(), labels);
    fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean)
        .backward();
    fused_opt.step();

    for (int64_t b = 0; b < kB; ++b) {
      const size_t ub = static_cast<size_t>(b);
      plain_opts[ub]->zero_grad();
      ag::Variable lb = plain[ub]->forward(ag::Variable(x));
      ag::Variable loss = ag::cross_entropy(lb, y, ag::Reduction::kMean);
      loss.backward();
      plain_opts[ub]->step();
      EXPECT_NEAR(fused_losses[ub], loss.value().item(), 2e-3)
          << "step " << step << " model " << b;
    }
  }
}

}  // namespace
}  // namespace hfta
