// Thread-count invariance: training is bit-identical at 1/2/4/8 worker
// threads. Partition boundaries depend only on problem size and no
// floating-point accumulation chain is ever split across chunks, so a full
// capture+replay training run — per-step losses, final parameters, final
// buffers — must agree to the last bit whatever HFTA_NUM_THREADS says.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "hfta/train.h"
#include "nn/optim.h"
#include "tensor/ops.h"

#include "kind_factories.h"

namespace hfta {
namespace {

constexpr int kSteps = 10;
constexpr int64_t kN = 2;  // per-model batch

// Everything a training run produced, flattened for bitwise comparison.
struct RunOut {
  std::vector<float> losses;
  std::vector<std::vector<float>> params;
  std::vector<std::vector<float>> buffers;
};

// Ten capture+replay training steps of one registered kind at `nt` worker
// threads (fresh staged data each step, square loss, SGD+momentum).
RunOut run_kind(const std::string& kind, const tests::KindFactory& make,
                int nt) {
  set_num_threads(nt);
  Rng rng(42);
  std::shared_ptr<nn::Module> module = make(rng);
  nn::SGD opt(module->parameters(),
              nn::SGD::Options{.lr = 0.05, .momentum = 0.9});
  TrainStep step;
  step.enable_capture();  // covers capture AND replay at this thread count
  Tensor staged;
  Rng data(7);
  RunOut out;
  for (int s = 0; s < kSteps; ++s) {
    step.stage(&staged, tests::kind_input(kind, kN, data));
    ag::Variable loss = step.run(opt, [&] {
      ag::Variable y = tests::kind_forward(*module, kind, staged);
      return ag::mean_all(ag::mul(y, y));
    });
    out.losses.push_back(loss.value().item());
  }
  EXPECT_TRUE(step.stats().last_was_replay) << kind << " nt=" << nt;
  for (const auto& [name, p] : module->named_parameters())
    out.params.push_back(p.value().to_vector());
  for (const auto& [name, b] : nn::named_buffers_recursive(*module))
    out.buffers.push_back(b.to_vector());
  return out;
}

void expect_bits_equal(const std::vector<float>& a,
                       const std::vector<float>& b, const std::string& tag) {
  ASSERT_EQ(a.size(), b.size()) << tag;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << tag;
  }
}

void expect_run_equal(const RunOut& a, const RunOut& b,
                      const std::string& tag) {
  expect_bits_equal(a.losses, b.losses, tag + " losses");
  ASSERT_EQ(a.params.size(), b.params.size()) << tag;
  for (size_t i = 0; i < a.params.size(); ++i)
    expect_bits_equal(a.params[i], b.params[i],
                      tag + " param " + std::to_string(i));
  ASSERT_EQ(a.buffers.size(), b.buffers.size()) << tag;
  for (size_t i = 0; i < a.buffers.size(); ++i)
    expect_bits_equal(a.buffers[i], b.buffers[i],
                      tag + " buffer " + std::to_string(i));
}

class ThreadInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = num_threads(); }
  void TearDown() override { set_num_threads(saved_threads_); }
  int saved_threads_ = 1;
};

TEST_F(ThreadInvarianceTest, RepresentativeKindsBitIdenticalAt1248Threads) {
  // Full 1/2/4/8 sweep on kinds that exercise the heavy parallel kernels:
  // conv (im2col gemm + channel-reduced grad_bias), attention (bmm,
  // softmax, layernorm), and pooling.
  const auto factories = tests::kind_factories();
  for (const std::string kind :
       {"Conv2d", "models::TransformerEncoderLayer", "MaxPool2d"}) {
    const RunOut ref = run_kind(kind, factories.at(kind), 1);
    for (int nt : {2, 4, 8}) {
      const RunOut got = run_kind(kind, factories.at(kind), nt);
      expect_run_equal(ref, got, kind + " nt=" + std::to_string(nt));
    }
  }
}

TEST_F(ThreadInvarianceTest, EveryRegisteredKindBitIdenticalAt1Vs8Threads) {
  // The whole LoweringRegistry at the endpoints: a new lowering whose
  // kernel splits an accumulation chain fails here until fixed.
  for (const auto& [kind, make] : tests::kind_factories()) {
    const RunOut one = run_kind(kind, make, 1);
    const RunOut eight = run_kind(kind, make, 8);
    expect_run_equal(one, eight, kind);
  }
}

}  // namespace
}  // namespace hfta
