// Fusion-rule equivalence property tests (paper Appendix B, Table 6).
//
// For every fused operator, sweeping the array size B: the fused op applied
// to the packed inputs of B models with distinct weights must equal the B
// unfused ops applied per model — forward AND backward (parameter
// gradients) — to float tolerance. This is the mathematical-equivalence
// guarantee HFTA's convergence claim rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "hfta/fused_attention.h"
#include "hfta/fused_norm.h"
#include "hfta/fused_ops.h"
#include "hfta/fusion.h"
#include "tensor/ops.h"

namespace hfta::fused {
namespace {

constexpr float kTol = 1e-3f;

class FusionB : public ::testing::TestWithParam<int64_t> {};

// Sums y*probe for a deterministic scalar to backprop (probe fixed).
ag::Variable probe_loss(const ag::Variable& y, const Tensor& probe) {
  return ag::sum_all(ag::mul(y, ag::constant(probe)));
}

TEST_P(FusionB, LayoutRoundTrip) {
  const int64_t B = GetParam();
  Rng rng(100 + B);
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b) xs.push_back(Tensor::randn({2, 3, 4}, rng));
  Tensor packed = pack_channel_fused(xs);  // [2, B*3, 4]
  EXPECT_EQ(packed.shape(), (Shape{2, B * 3, 4}));
  auto back = unpack_channel_fused(packed, B);
  for (int64_t b = 0; b < B; ++b)
    EXPECT_EQ(ops::max_abs_diff(back[static_cast<size_t>(b)],
                                xs[static_cast<size_t>(b)]),
              0.f);
  // channel-fused -> model-major -> channel-fused round trip.
  ag::Variable mm = to_model_major(ag::constant(packed), B);
  EXPECT_EQ(mm.shape(), (Shape{B, 2, 3, 4}));
  for (int64_t b = 0; b < B; ++b) {
    Tensor per = mm.value().slice(0, b, b + 1).reshape({2, 3, 4});
    EXPECT_EQ(ops::max_abs_diff(per, xs[static_cast<size_t>(b)]), 0.f);
  }
  ag::Variable cf = to_channel_fused(mm);
  EXPECT_EQ(ops::max_abs_diff(cf.value(), packed), 0.f);
}

TEST_P(FusionB, Conv2dForwardAndBackward) {
  const int64_t B = GetParam();
  Rng rng(200 + B);
  const int64_t N = 2, Cin = 3, Cout = 5, H = 7, W = 7, k = 3;
  std::vector<std::shared_ptr<nn::Conv2d>> plain;
  std::vector<Tensor> xs, probes;
  FusedConv2d fused(B, Cin, Cout, k, /*stride=*/2, /*pad=*/1, /*groups=*/1,
                    /*bias=*/true, rng);
  for (int64_t b = 0; b < B; ++b) {
    plain.push_back(std::make_shared<nn::Conv2d>(Cin, Cout, k, 2, 1, 1, true,
                                                 rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({N, Cin, H, W}, rng));
  }
  Tensor xf = pack_channel_fused(xs);
  ag::Variable yf = fused.forward(ag::Variable(xf));
  Tensor probe_f = Tensor::randn(yf.shape(), rng);
  probe_loss(yf, probe_f).backward();
  auto probes_per = unpack_channel_fused(probe_f, B);

  for (int64_t b = 0; b < B; ++b) {
    const size_t ub = static_cast<size_t>(b);
    ag::Variable yb = plain[ub]->forward(ag::Variable(xs[ub]));
    // forward equivalence
    Tensor yf_b = unpack_channel_fused(yf.value(), B)[ub];
    EXPECT_LT(ops::max_abs_diff(yf_b, yb.value()), kTol) << "model " << b;
    // backward equivalence (weight + bias grads)
    probe_loss(yb, probes_per[ub]).backward();
    Tensor gw_f = unfuse_blocks(fused.weight.grad(), B,
                                plain[ub]->weight.shape())[ub];
    EXPECT_LT(ops::max_abs_diff(gw_f, plain[ub]->weight.grad()), kTol);
    Tensor gb_f =
        unfuse_blocks(fused.bias.grad(), B, plain[ub]->bias.shape())[ub];
    EXPECT_LT(ops::max_abs_diff(gb_f, plain[ub]->bias.grad()), kTol);
  }
}

TEST_P(FusionB, Conv2dGroupedBecomesBTimesGroups) {
  // Per-model grouped conv (g=2) fuses into B*2 groups.
  const int64_t B = GetParam();
  Rng rng(300 + B);
  const int64_t Cin = 4, Cout = 6, g = 2;
  FusedConv2d fused(B, Cin, Cout, 3, 1, 1, g, true, rng);
  EXPECT_EQ(fused.fused_args.groups, B * g);
  std::vector<std::shared_ptr<nn::Conv2d>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b) {
    plain.push_back(
        std::make_shared<nn::Conv2d>(Cin, Cout, 3, 1, 1, g, true, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({2, Cin, 5, 5}, rng));
  }
  Tensor yf = fused.forward(ag::Variable(pack_channel_fused(xs))).value();
  auto yf_per = unpack_channel_fused(yf, B);
  for (int64_t b = 0; b < B; ++b) {
    const size_t ub = static_cast<size_t>(b);
    Tensor yb = plain[ub]->forward(ag::Variable(xs[ub])).value();
    EXPECT_LT(ops::max_abs_diff(yf_per[ub], yb), kTol);
  }
}

TEST_P(FusionB, Conv1dEquivalence) {
  const int64_t B = GetParam();
  Rng rng(400 + B);
  const int64_t Cin = 3, Cout = 4, L = 12;
  FusedConv1d fused(B, Cin, Cout, 3, 1, 1, 1, true, rng);
  std::vector<std::shared_ptr<nn::Conv1d>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b) {
    plain.push_back(
        std::make_shared<nn::Conv1d>(Cin, Cout, 3, 1, 1, 1, true, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({2, Cin, L}, rng));
  }
  Tensor yf = fused.forward(ag::Variable(pack_channel_fused(xs))).value();
  auto yf_per = unpack_channel_fused(yf, B);
  for (int64_t b = 0; b < B; ++b) {
    const size_t ub = static_cast<size_t>(b);
    Tensor yb = plain[ub]->forward(ag::Variable(xs[ub])).value();
    EXPECT_LT(ops::max_abs_diff(yf_per[ub], yb), kTol);
  }
}

TEST_P(FusionB, ConvTranspose2dEquivalence) {
  const int64_t B = GetParam();
  Rng rng(500 + B);
  const int64_t Cin = 6, Cout = 4;
  FusedConvTranspose2d fused(B, Cin, Cout, 4, 2, 1, 0, 1, true, rng);
  std::vector<std::shared_ptr<nn::ConvTranspose2d>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b) {
    plain.push_back(std::make_shared<nn::ConvTranspose2d>(Cin, Cout, 4, 2, 1,
                                                          0, 1, true, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({2, Cin, 5, 5}, rng));
  }
  ag::Variable yf_v = fused.forward(ag::Variable(pack_channel_fused(xs)));
  Tensor probe = Tensor::randn(yf_v.shape(), rng);
  probe_loss(yf_v, probe).backward();
  auto yf_per = unpack_channel_fused(yf_v.value(), B);
  auto probes = unpack_channel_fused(probe, B);
  for (int64_t b = 0; b < B; ++b) {
    const size_t ub = static_cast<size_t>(b);
    ag::Variable yb = plain[ub]->forward(ag::Variable(xs[ub]));
    EXPECT_LT(ops::max_abs_diff(yf_per[ub], yb.value()), kTol);
    probe_loss(yb, probes[ub]).backward();
    Tensor gw_f = unfuse_blocks(fused.weight.grad(), B,
                                plain[ub]->weight.shape())[ub];
    EXPECT_LT(ops::max_abs_diff(gw_f, plain[ub]->weight.grad()), kTol);
  }
}

TEST_P(FusionB, LinearEquivalenceViaBaddbmm) {
  const int64_t B = GetParam();
  Rng rng(600 + B);
  const int64_t N = 4, in = 5, out = 3;
  FusedLinear fused(B, in, out, true, rng);
  std::vector<std::shared_ptr<nn::Linear>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b) {
    plain.push_back(std::make_shared<nn::Linear>(in, out, true, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({N, in}, rng));
  }
  ag::Variable yf = fused.forward(ag::Variable(pack_model_major(xs)));
  Tensor probe = Tensor::randn(yf.shape(), rng);
  probe_loss(yf, probe).backward();
  for (int64_t b = 0; b < B; ++b) {
    const size_t ub = static_cast<size_t>(b);
    ag::Variable yb = plain[ub]->forward(ag::Variable(xs[ub]));
    Tensor yf_b = yf.value().slice(0, b, b + 1).reshape({N, out});
    EXPECT_LT(ops::max_abs_diff(yf_b, yb.value()), kTol);
    probe_loss(yb, probe.slice(0, b, b + 1).reshape({N, out})).backward();
    // fused weight block is [in, out] = plain [out, in] transposed
    Tensor gw_f = unfuse_blocks(fused.weight.grad(), B, {in, out})[ub];
    EXPECT_LT(ops::max_abs_diff(gw_f.transpose(0, 1),
                                plain[ub]->weight.grad()),
              kTol);
    Tensor gb_f = unfuse_blocks(fused.bias.grad(), B, {out})[ub];
    EXPECT_LT(ops::max_abs_diff(gb_f, plain[ub]->bias.grad()), kTol);
  }
}

TEST_P(FusionB, LinearWeightRoundTrip) {
  const int64_t B = GetParam();
  Rng rng(650 + B);
  FusedLinear fused(B, 4, 3, true, rng);
  nn::Linear src(4, 3, true, rng), dst(4, 3, true, rng);
  fused.load_model(B - 1, src);
  fused.store_model(B - 1, dst);
  EXPECT_EQ(ops::max_abs_diff(src.weight.value(), dst.weight.value()), 0.f);
  EXPECT_EQ(ops::max_abs_diff(src.bias.value(), dst.bias.value()), 0.f);
}

TEST_P(FusionB, BatchNorm2dTrainingAndEval) {
  const int64_t B = GetParam();
  Rng rng(700 + B);
  const int64_t C = 3;
  FusedBatchNorm2d fused(B, C);
  std::vector<std::shared_ptr<nn::BatchNorm2d>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b) {
    plain.push_back(std::make_shared<nn::BatchNorm2d>(C));
    // randomize affine so models differ
    plain.back()->weight.mutable_value().copy_(Tensor::randn({C}, rng));
    plain.back()->bias.mutable_value().copy_(Tensor::randn({C}, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({4, C, 5, 5}, rng));
  }
  // training mode: batch statistics per (model, channel)
  Tensor yf = fused.forward(ag::Variable(pack_channel_fused(xs))).value();
  auto yf_per = unpack_channel_fused(yf, B);
  for (int64_t b = 0; b < B; ++b) {
    const size_t ub = static_cast<size_t>(b);
    Tensor yb = plain[ub]->forward(ag::Variable(xs[ub])).value();
    EXPECT_LT(ops::max_abs_diff(yf_per[ub], yb), kTol);
  }
  // running stats updated identically -> eval mode also matches
  fused.eval();
  Tensor yf_eval = fused.forward(ag::Variable(pack_channel_fused(xs))).value();
  auto yf_eval_per = unpack_channel_fused(yf_eval, B);
  for (int64_t b = 0; b < B; ++b) {
    const size_t ub = static_cast<size_t>(b);
    plain[ub]->eval();
    Tensor yb = plain[ub]->forward(ag::Variable(xs[ub])).value();
    EXPECT_LT(ops::max_abs_diff(yf_eval_per[ub], yb), kTol);
  }
}

TEST_P(FusionB, BatchNorm1dOn2dAnd3dInputs) {
  const int64_t B = GetParam();
  Rng rng(800 + B);
  const int64_t C = 4;
  {
    FusedBatchNorm1d fused(B, C);
    std::vector<std::shared_ptr<nn::BatchNorm1d>> plain;
    std::vector<Tensor> xs;
    for (int64_t b = 0; b < B; ++b) {
      plain.push_back(std::make_shared<nn::BatchNorm1d>(C));
      plain.back()->weight.mutable_value().copy_(Tensor::randn({C}, rng));
      fused.load_model(b, *plain.back());
      xs.push_back(Tensor::randn({6, C}, rng));
    }
    Tensor yf = fused.forward(ag::Variable(pack_channel_fused(xs))).value();
    auto per = unpack_channel_fused(yf, B);
    for (int64_t b = 0; b < B; ++b) {
      const size_t ub = static_cast<size_t>(b);
      Tensor yb = plain[ub]->forward(ag::Variable(xs[ub])).value();
      EXPECT_LT(ops::max_abs_diff(per[ub], yb), kTol);
    }
  }
  {
    FusedBatchNorm1d fused(B, C);
    std::vector<std::shared_ptr<nn::BatchNorm1d>> plain;
    std::vector<Tensor> xs;
    for (int64_t b = 0; b < B; ++b) {
      plain.push_back(std::make_shared<nn::BatchNorm1d>(C));
      plain.back()->bias.mutable_value().copy_(Tensor::randn({C}, rng));
      fused.load_model(b, *plain.back());
      xs.push_back(Tensor::randn({3, C, 7}, rng));
    }
    Tensor yf = fused.forward(ag::Variable(pack_channel_fused(xs))).value();
    auto per = unpack_channel_fused(yf, B);
    for (int64_t b = 0; b < B; ++b) {
      const size_t ub = static_cast<size_t>(b);
      Tensor yb = plain[ub]->forward(ag::Variable(xs[ub])).value();
      EXPECT_LT(ops::max_abs_diff(per[ub], yb), kTol);
    }
  }
}

TEST_P(FusionB, LayerNormPerModelAffine) {
  const int64_t B = GetParam();
  Rng rng(900 + B);
  const int64_t N = 3, E = 5;
  FusedLayerNorm fused(B, {E}, 1e-5f, rng);
  std::vector<std::shared_ptr<nn::LayerNorm>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b) {
    plain.push_back(std::make_shared<nn::LayerNorm>(Shape{E}, 1e-5f, rng));
    plain.back()->weight.mutable_value().copy_(Tensor::randn({E}, rng));
    plain.back()->bias.mutable_value().copy_(Tensor::randn({E}, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({N, E}, rng));
  }
  ag::Variable yf = fused.forward(ag::Variable(pack_model_major(xs)));
  Tensor probe = Tensor::randn(yf.shape(), rng);
  probe_loss(yf, probe).backward();
  for (int64_t b = 0; b < B; ++b) {
    const size_t ub = static_cast<size_t>(b);
    ag::Variable yb = plain[ub]->forward(ag::Variable(xs[ub]));
    Tensor yf_b = yf.value().slice(0, b, b + 1).reshape({N, E});
    EXPECT_LT(ops::max_abs_diff(yf_b, yb.value()), kTol);
    probe_loss(yb, probe.slice(0, b, b + 1).reshape({N, E})).backward();
    Tensor gw_f = unfuse_blocks(fused.weight.grad(), B, {E})[ub];
    EXPECT_LT(ops::max_abs_diff(gw_f, plain[ub]->weight.grad()), kTol);
  }
}

TEST_P(FusionB, EmbeddingWithIndexOffsets) {
  const int64_t B = GetParam();
  Rng rng(1000 + B);
  const int64_t V = 7, E = 4, L = 5;
  FusedEmbedding fused(B, V, E, rng);
  std::vector<std::shared_ptr<nn::Embedding>> plain;
  std::vector<Tensor> idxs;
  for (int64_t b = 0; b < B; ++b) {
    plain.push_back(std::make_shared<nn::Embedding>(V, E, rng));
    fused.load_model(b, *plain.back());
    Tensor idx({L});
    for (int64_t i = 0; i < L; ++i)
      idx.data()[i] = static_cast<float>(rng.uniform_int(V));
    idxs.push_back(idx);
  }
  Tensor fused_idx = pack_model_major(idxs);  // [B, L]
  ag::Variable yf = fused.lookup(fused_idx);  // [B, L, E]
  Tensor probe = Tensor::randn(yf.shape(), rng);
  probe_loss(yf, probe).backward();
  for (int64_t b = 0; b < B; ++b) {
    const size_t ub = static_cast<size_t>(b);
    ag::Variable yb = plain[ub]->lookup(idxs[ub]);
    Tensor yf_b = yf.value().slice(0, b, b + 1).reshape({L, E});
    EXPECT_LT(ops::max_abs_diff(yf_b, yb.value()), kTol);
    probe_loss(yb, probe.slice(0, b, b + 1).reshape({L, E})).backward();
    Tensor gw_f = unfuse_blocks(fused.weight.grad(), B, {V, E})[ub];
    EXPECT_LT(ops::max_abs_diff(gw_f, plain[ub]->weight.grad()), kTol);
  }
}

TEST_P(FusionB, PoolingOnFusedLayout) {
  const int64_t B = GetParam();
  Rng rng(1100 + B);
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b)
    xs.push_back(Tensor::randn({2, 3, 8, 8}, rng));
  Tensor xf = pack_channel_fused(xs);
  {
    FusedMaxPool2d fused(B, 2, 2);
    nn::MaxPool2d plain(2, 2);
    Tensor yf = fused.forward(ag::Variable(xf)).value();
    auto per = unpack_channel_fused(yf, B);
    for (int64_t b = 0; b < B; ++b) {
      const size_t ub = static_cast<size_t>(b);
      EXPECT_LT(ops::max_abs_diff(
                    per[ub], plain.forward(ag::Variable(xs[ub])).value()),
                kTol);
    }
  }
  {
    FusedAdaptiveAvgPool2d fused(B, 2, 2);
    nn::AdaptiveAvgPool2d plain(2, 2);
    Tensor yf = fused.forward(ag::Variable(xf)).value();
    auto per = unpack_channel_fused(yf, B);
    for (int64_t b = 0; b < B; ++b) {
      const size_t ub = static_cast<size_t>(b);
      EXPECT_LT(ops::max_abs_diff(
                    per[ub], plain.forward(ag::Variable(xs[ub])).value()),
                kTol);
    }
  }
}

TEST_P(FusionB, DropoutEvalIdentityOnFusedLayout) {
  const int64_t B = GetParam();
  Rng rng(1200 + B);
  Tensor x = Tensor::randn({2, B * 3, 4, 4}, rng);
  FusedDropout2d drop(B, 0.5f);
  drop.eval();
  EXPECT_EQ(ops::max_abs_diff(drop.forward(ag::Variable(x)).value(), x), 0.f);
  drop.train();
  Tensor y = drop.forward(ag::Variable(x)).value();
  // channel-granular: each (n, fused channel) plane all-zero or x*2
  for (int64_t n = 0; n < 2; ++n)
    for (int64_t c = 0; c < B * 3; ++c) {
      const bool dropped = y.at({n, c, 0, 0}) == 0.f && x.at({n, c, 0, 0}) != 0.f;
      for (int64_t h = 0; h < 4; ++h)
        for (int64_t w = 0; w < 4; ++w) {
          if (dropped) {
            EXPECT_EQ(y.at({n, c, h, w}), 0.f);
          } else {
            EXPECT_NEAR(y.at({n, c, h, w}), 2.f * x.at({n, c, h, w}), 1e-5f);
          }
        }
    }
}

TEST_P(FusionB, UnfusedBlockAdapterMatchesFusion) {
  // Partial-fusion adapter: per-model replicas on the fused layout produce
  // the same values as the fused op (the math is fusion-invariant).
  const int64_t B = GetParam();
  Rng rng(1300 + B);
  const int64_t Cin = 3, Cout = 4;
  FusedConv2d fused(B, Cin, Cout, 3, 1, 1, 1, true, rng);
  std::vector<std::shared_ptr<nn::Module>> reps;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b) {
    auto conv = std::make_shared<nn::Conv2d>(Cin, Cout, 3, 1, 1, 1, true, rng);
    fused.load_model(b, *conv);
    reps.push_back(conv);
    xs.push_back(Tensor::randn({2, Cin, 6, 6}, rng));
  }
  UnfusedBlockAdapter adapter(B, reps);
  Tensor xf = pack_channel_fused(xs);
  Tensor y_fused = fused.forward(ag::Variable(xf)).value();
  Tensor y_adapter = adapter.forward(ag::Variable(xf)).value();
  EXPECT_LT(ops::max_abs_diff(y_fused, y_adapter), kTol);
}

TEST_P(FusionB, CollectFusedParametersValidates) {
  const int64_t B = GetParam();
  Rng rng(1400 + B);
  FusedConv2d fused(B, 3, 4, 3, 1, 1, 1, true, rng);
  auto fps = collect_fused_parameters(fused, B);
  EXPECT_EQ(fps.size(), 2u);
  for (const auto& fp : fps) EXPECT_EQ(fp.array_size, B);
}

INSTANTIATE_TEST_SUITE_P(ArraySizes, FusionB, ::testing::Values(1, 2, 3, 5, 8));

// ---- attention / transformer fusion (compared against an inline plain
// reference built from the same autograd primitives) --------------------------

ag::Variable plain_mha(const ag::Variable& x, const ag::Variable& wi,
                       const ag::Variable& bi, const ag::Variable& wo,
                       const ag::Variable& bo, int64_t H) {
  // x: [N, S, E]; wi: [E, 3E] (fused-layout block), bi: [3E].
  const int64_t N = x.size(0), S = x.size(1), E = x.size(2);
  const int64_t Dh = E / H;
  ag::Variable flat = ag::reshape(x, {N * S, E});
  ag::Variable qkv =
      ag::add(ag::matmul(flat, wi), bi);  // [N*S, 3E]
  auto parts = ag::chunk(qkv, 3, 1);
  auto heads = [&](const ag::Variable& t) {
    ag::Variable r = ag::reshape(t, {N, S, H, Dh});
    r = ag::permute(r, {0, 2, 1, 3});
    return ag::reshape(r, {N * H, S, Dh});
  };
  ag::Variable q = heads(parts[0]), k = heads(parts[1]), v = heads(parts[2]);
  ag::Variable scores = ag::mul_scalar(
      ag::bmm_nt(q, k), 1.f / std::sqrt(static_cast<float>(Dh)));
  ag::Variable ctx = ag::bmm(ag::softmax(scores, -1), v);
  ctx = ag::reshape(ctx, {N, H, S, Dh});
  ctx = ag::permute(ctx, {0, 2, 1, 3});
  ctx = ag::reshape(ctx, {N * S, E});
  ag::Variable out = ag::add(ag::matmul(ctx, wo), bo);
  return ag::reshape(out, {N, S, E});
}

TEST_P(FusionB, MultiheadAttentionEquivalence) {
  const int64_t B = GetParam();
  Rng rng(1500 + B);
  const int64_t N = 2, S = 4, E = 8, H = 2;
  FusedMultiheadAttention fused(B, E, H, rng);
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b) xs.push_back(Tensor::randn({N, S, E}, rng));
  ag::Variable yf = fused.forward(ag::Variable(pack_model_major(xs)));
  for (int64_t b = 0; b < B; ++b) {
    const size_t ub = static_cast<size_t>(b);
    // Extract model b's projection weights from the fused modules.
    Tensor wi = fused.in_proj->weight.value().slice(0, b, b + 1)
                    .reshape({E, 3 * E});
    Tensor bi = fused.in_proj->bias.value().slice(0, b, b + 1)
                    .reshape({3 * E});
    Tensor wo = fused.out_proj->weight.value().slice(0, b, b + 1)
                    .reshape({E, E});
    Tensor bo = fused.out_proj->bias.value().slice(0, b, b + 1).reshape({E});
    ag::Variable yb =
        plain_mha(ag::Variable(xs[ub]), ag::Variable(wi), ag::Variable(bi),
                  ag::Variable(wo), ag::Variable(bo), H);
    Tensor yf_b = yf.value().slice(0, b, b + 1).reshape({N, S, E});
    EXPECT_LT(ops::max_abs_diff(yf_b, yb.value()), kTol) << "model " << b;
  }
}

TEST_P(FusionB, TransformerEncoderLayerRunsAndIsModelSeparable) {
  // Cross-model independence: perturbing model 0's input must not change
  // any other model's output (the fused encoder has no cross-model paths).
  const int64_t B = GetParam();
  if (B < 2) GTEST_SKIP() << "needs at least two models";
  Rng rng(1600 + B);
  const int64_t N = 2, S = 3, E = 8;
  FusedTransformerEncoderLayer layer(B, E, 2, 16, /*dropout=*/0.f, "relu", rng);
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < B; ++b) xs.push_back(Tensor::randn({N, S, E}, rng));
  Tensor y1 = layer.forward(ag::Variable(pack_model_major(xs))).value();
  xs[0].add_(Tensor::full(xs[0].shape(), 0.5f));
  Tensor y2 = layer.forward(ag::Variable(pack_model_major(xs))).value();
  // model 0 changed
  EXPECT_GT(ops::max_abs_diff(y1.slice(0, 0, 1), y2.slice(0, 0, 1)), 1e-4f);
  // all other models unchanged
  for (int64_t b = 1; b < B; ++b)
    EXPECT_LT(ops::max_abs_diff(y1.slice(0, b, b + 1), y2.slice(0, b, b + 1)),
              1e-6f);
}

}  // namespace
}  // namespace hfta::fused
