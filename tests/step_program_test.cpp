// Step-program capture/replay: a capture-enabled TrainStep must train
// bit-identically to an eager one — for EVERY kind in the LoweringRegistry
// (fresh data staged each step, parameters/buffers compared to the last
// bit), across recaptures forced by shape, array-size, and fuse-mask
// changes, and with learning-rate schedules flowing through replay without
// recapture. Replay itself must be silent: zero tensor-storage heap
// allocations and zero autograd Node constructions per replayed step.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "hfta/fused_optim.h"
#include "hfta/fusion.h"
#include "hfta/train.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "tensor/ops.h"

#include "kind_factories.h"

namespace hfta {
namespace {

constexpr int64_t kN = 2;  // per-model batch

// One half of a lockstep pair: a module, its SGD, its own TrainStep, and a
// staging buffer the (possibly captured) loss graph reads its data from.
struct Twin {
  std::shared_ptr<nn::Module> module;
  std::unique_ptr<nn::SGD> opt;
  TrainStep step;
  Tensor staged;
};

void init_twin(Twin& t, const tests::KindFactory& make, uint64_t seed) {
  Rng rng(seed);
  t.module = make(rng);
  t.opt = std::make_unique<nn::SGD>(
      t.module->parameters(), nn::SGD::Options{.lr = 0.05, .momentum = 0.9});
}

// One training step on fresh data: stage, forward, square-loss, SGD.
float step_once(Twin& t, const std::string& kind, const Tensor& x) {
  t.step.stage(&t.staged, x);
  ag::Variable loss = t.step.run(*t.opt, [&] {
    ag::Variable y = tests::kind_forward(*t.module, kind, t.staged);
    return ag::mean_all(ag::mul(y, y));
  });
  return loss.value().item();
}

void expect_state_equal(const nn::Module& a, const nn::Module& b,
                        const std::string& tag) {
  const auto pa = a.named_parameters();
  const auto pb = b.named_parameters();
  ASSERT_EQ(pa.size(), pb.size()) << tag;
  for (size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(ops::max_abs_diff(pa[i].second.value(), pb[i].second.value()),
              0.f)
        << tag << " param " << pa[i].first;
  const auto ba = nn::named_buffers_recursive(const_cast<nn::Module&>(a));
  const auto bb = nn::named_buffers_recursive(const_cast<nn::Module&>(b));
  ASSERT_EQ(ba.size(), bb.size()) << tag;
  for (size_t i = 0; i < ba.size(); ++i)
    EXPECT_EQ(ops::max_abs_diff(ba[i].second, bb[i].second), 0.f)
        << tag << " buffer " << ba[i].first;
}

TEST(StepProgram, ReplayMatchesEagerBitExactlyForEveryRegisteredKind) {
  // Every kind with a round-trip factory: 12 steps of fresh staged data,
  // one twin eager, one capturing after the default 1-step warmup (so 10
  // of the 12 steps replay). Per-step losses and final parameters/buffers
  // must agree to the last bit — replay IS the eager step.
  const int kSteps = 12;
  for (const auto& [kind, make] : tests::kind_factories()) {
    Twin eager, replay;
    init_twin(eager, make, 42);
    init_twin(replay, make, 42);
    replay.step.enable_capture();
    Rng data_e(7), data_r(7);
    for (int s = 0; s < kSteps; ++s) {
      const float le = step_once(eager, kind, tests::kind_input(kind, kN, data_e));
      const float lr = step_once(replay, kind, tests::kind_input(kind, kN, data_r));
      EXPECT_EQ(le, lr) << kind << " step " << s;
    }
    const TrainStep::Stats& st = replay.step.stats();
    EXPECT_EQ(st.captures, 1) << kind;
    EXPECT_EQ(st.replays, kSteps - 2) << kind;  // 1 warmup + 1 capture step
    EXPECT_TRUE(st.last_was_replay) << kind;
    // A replayed step allocates and records nothing: warm pool serves every
    // tensor, and no ag::Node (or backward closure) is ever constructed.
    EXPECT_EQ(st.last_heap_allocs, 0u) << kind;
    EXPECT_EQ(st.last_node_constructions, 0u) << kind;
    expect_state_equal(*eager.module, *replay.module, kind);
  }
}

TEST(StepProgram, BatchShapeChangeInvalidatesAndRecaptures) {
  // Staging a differently-shaped batch reassigns the pinned input buffer,
  // so the program must be recaptured over the new graph — and the twin
  // pair must stay bit-exact straight through the boundary.
  const auto factories = tests::kind_factories();
  const tests::KindFactory& make = factories.at("Linear");
  Twin eager, replay;
  init_twin(eager, make, 3);
  init_twin(replay, make, 3);
  replay.step.enable_capture();
  Rng data_e(11), data_r(11);
  for (int s = 0; s < 4; ++s) {
    const float le = step_once(eager, "Linear", tests::kind_input("Linear", 2, data_e));
    const float lr = step_once(replay, "Linear", tests::kind_input("Linear", 2, data_r));
    EXPECT_EQ(le, lr) << "pre-change step " << s;
  }
  EXPECT_EQ(replay.step.stats().captures, 1);
  for (int s = 0; s < 4; ++s) {  // batch 2 -> 5: a reshaped loss graph
    const float le = step_once(eager, "Linear", tests::kind_input("Linear", 5, data_e));
    const float lr = step_once(replay, "Linear", tests::kind_input("Linear", 5, data_r));
    EXPECT_EQ(le, lr) << "post-change step " << s;
  }
  EXPECT_EQ(replay.step.stats().captures, 2);
  EXPECT_TRUE(replay.step.stats().last_was_replay);
  expect_state_equal(*eager.module, *replay.module, "shape change");
}

TEST(StepProgram, LrScheduleFlowsThroughReplayWithoutRecapture) {
  // Scalar hypers are replay-time inputs: the real optimizer step runs
  // around every replay, so a decaying lr needs no recapture — one capture
  // total, and still not a bit of drift against the eager twin.
  const auto factories = tests::kind_factories();
  const tests::KindFactory& make = factories.at("Linear");
  Twin eager, replay;
  init_twin(eager, make, 5);
  init_twin(replay, make, 5);
  replay.step.enable_capture();
  Rng data_e(13), data_r(13);
  for (int s = 0; s < 10; ++s) {
    const double lr_s = 0.05 * std::pow(0.9, s);
    eager.opt->set_lr(lr_s);
    replay.opt->set_lr(lr_s);
    const float le = step_once(eager, "Linear", tests::kind_input("Linear", kN, data_e));
    const float lr = step_once(replay, "Linear", tests::kind_input("Linear", kN, data_r));
    EXPECT_EQ(le, lr) << "step " << s;
  }
  EXPECT_EQ(replay.step.stats().captures, 1);
  EXPECT_EQ(replay.step.stats().replays, 8);
  expect_state_equal(*eager.module, *replay.module, "lr schedule");
}

// ---- fused arrays: B and fuse-mask changes -----------------------------

std::shared_ptr<nn::Sequential> mlp(Rng& rng) {
  auto net = std::make_shared<nn::Sequential>();
  net->push_back("fc1", std::make_shared<nn::Linear>(4, 6, true, rng));
  net->push_back("relu", std::make_shared<nn::ReLU>());
  net->push_back("fc2", std::make_shared<nn::Linear>(6, 3, true, rng));
  return net;
}

// One fused config: two same-weight arrays (capture twin, eager twin) and
// their optimizers. Kept alive across configs so program slots keyed by
// optimizer address cannot collide through stack reuse.
struct FusedCfg {
  std::shared_ptr<fused::FusedArray> array_c, array_e;
  std::unique_ptr<fused::FusedSGD> opt_c, opt_e;
  Tensor x;
};

FusedCfg make_cfg(int64_t B, fused::FusionOptions fopts) {
  FusedCfg c;
  Rng rng(21);
  std::vector<std::shared_ptr<nn::Module>> donors;
  for (int64_t b = 0; b < B; ++b) donors.push_back(mlp(rng));
  Rng crng(1), erng(1);
  c.array_c = fused::FusionPlan(B, fopts).compile(donors, crng);
  c.array_e = fused::FusionPlan(B, fopts).compile(donors, erng);
  const fused::FusedSGD::Options sopts{
      .lr = fused::HyperVec(static_cast<size_t>(B), 0.05)};
  c.opt_c = std::make_unique<fused::FusedSGD>(
      fused::collect_fused_parameters(*c.array_c, B), B, sopts);
  c.opt_e = std::make_unique<fused::FusedSGD>(
      fused::collect_fused_parameters(*c.array_e, B), B, sopts);
  Rng drng(31);
  c.x = fused::pack_channel_fused(
      std::vector<Tensor>(static_cast<size_t>(B), Tensor::randn({kN, 4}, drng)));
  return c;
}

// Drives the config's twins in lockstep (fixed data, so no staging
// needed): losses must be bit-equal every step and the capturing step must
// end up replaying.
void run_fused_pair(TrainStep& cap, TrainStep& eag, FusedCfg& c,
                    const std::string& tag) {
  auto loss_on = [&c](fused::FusedArray& a) {
    return [&a, &c] {
      ag::Variable y = a.forward(ag::Variable(c.x));
      return ag::mean_all(ag::mul(y, y));
    };
  };
  for (int s = 0; s < 6; ++s) {
    const float lc = cap.run(*c.opt_c, loss_on(*c.array_c)).value().item();
    const float le = eag.run(*c.opt_e, loss_on(*c.array_e)).value().item();
    EXPECT_EQ(lc, le) << tag << " step " << s;
  }
  EXPECT_TRUE(cap.stats().last_was_replay) << tag;
}

TEST(StepProgram, ArraySizeAndFuseMaskChangesGetFreshPrograms) {
  // Three configs through ONE capture-enabled TrainStep: B=2 fully fused,
  // B=3 (array-size change), and B=2 with the middle unit masked off
  // (fuse-mask change). Each new array/optimizer pair fingerprints
  // differently, so each gets its own program — three captures, three live
  // programs, no cross-talk, and bit-exactness against eager throughout.
  TrainStep cap;
  cap.enable_capture();
  TrainStep eag;
  FusedCfg b2 = make_cfg(2, {});
  run_fused_pair(cap, eag, b2, "B=2 fused");
  EXPECT_EQ(cap.stats().captures, 1);
  EXPECT_EQ(cap.program_count(), 1);
  FusedCfg b3 = make_cfg(3, {});
  run_fused_pair(cap, eag, b3, "B=3 fused");
  EXPECT_EQ(cap.stats().captures, 2);
  EXPECT_EQ(cap.program_count(), 2);
  fused::FusionOptions masked;
  masked.fuse_mask = {true, false, true};
  FusedCfg b2m = make_cfg(2, masked);
  run_fused_pair(cap, eag, b2m, "B=2 masked");
  EXPECT_EQ(cap.stats().captures, 3);
  EXPECT_EQ(cap.program_count(), 3);
  // A retired optimizer's program is dropped individually; the rest stay.
  cap.drop_program(b3.opt_c.get());
  EXPECT_EQ(cap.program_count(), 2);
  cap.invalidate_programs();
  EXPECT_EQ(cap.program_count(), 0);
}

}  // namespace
}  // namespace hfta
