// The iteration engine end to end: Engine reuse vs fresh backward() calls,
// TrainStep/TrainLoop driving real fused training, pooled-vs-heap
// bit-exactness at quickstart scale, and the steady-state zero-alloc
// property the storage pool exists for.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "autograd/functions.h"
#include "core/storage_pool.h"
#include "hfta/fused_optim.h"
#include "hfta/fused_ops.h"
#include "hfta/loss_scaling.h"
#include "hfta/train.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace hfta {
namespace {

// A quickstart-scale fused MLP array: B models of Linear-ReLU-Linear.
struct FusedMlp : fused::FusedModule {
  FusedMlp(int64_t B, int64_t in, int64_t hidden, int64_t classes, Rng& rng)
      : fused::FusedModule(B) {
    fc1 = register_module(
        "fc1", std::make_shared<fused::FusedLinear>(B, in, hidden, true, rng));
    fc2 = register_module(
        "fc2",
        std::make_shared<fused::FusedLinear>(B, hidden, classes, true, rng));
  }
  ag::Variable forward(const ag::Variable& x) override {
    return fc2->forward(ag::relu(fc1->forward(x)));
  }
  std::shared_ptr<fused::FusedLinear> fc1, fc2;
};

// Trains a B=3 fused MLP for `steps` and returns every per-step loss vector
// plus the final fc1 weights, using either one reused TrainStep or plain
// per-step backward() calls, with pooling on or off.
struct RunResult {
  std::vector<std::vector<double>> losses;
  std::vector<float> weights;
};

RunResult train_fused_mlp(bool use_train_step, bool pool_on, int steps) {
  StoragePool::Config cfg;
  cfg.enabled = pool_on;
  StoragePool::instance().set_config(cfg);
  StoragePool::instance().trim();
  const int64_t B = 3, in = 8, hidden = 16, classes = 4, N = 8;
  Rng rng(42);
  FusedMlp model(B, in, hidden, classes, rng);
  fused::FusedAdam opt(fused::collect_fused_parameters(model, B), B,
                       {.lr = {1e-3, 3e-3, 1e-2}});
  Rng data_rng(7);
  Tensor x = Tensor::randn({N, in}, data_rng);
  Tensor labels({B, N});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t n = 0; n < N; ++n)
      labels.at({b, n}) = static_cast<float>((n + b) % classes);

  RunResult out;
  TrainStep step;
  for (int s = 0; s < steps; ++s) {
    ag::Variable logits;
    auto loss_fn = [&] {
      logits = model.forward(
          ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
      return fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean);
    };
    if (use_train_step) {
      step.run(opt, loss_fn);
    } else {
      opt.zero_grad();
      ag::Variable loss = loss_fn();
      loss.backward();  // fresh engine each call
      opt.step();
    }
    out.losses.push_back(
        fused::per_model_cross_entropy(logits.value(), labels));
  }
  out.weights = model.fc1->weight.value().to_vector();
  StoragePool::instance().set_config(StoragePool::Config{});
  StoragePool::instance().trim();
  return out;
}

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (size_t s = 0; s < a.losses.size(); ++s) {
    ASSERT_EQ(a.losses[s].size(), b.losses[s].size());
    for (size_t i = 0; i < a.losses[s].size(); ++i)
      EXPECT_EQ(a.losses[s][i], b.losses[s][i]) << "step " << s;
  }
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i)
    EXPECT_EQ(a.weights[i], b.weights[i]) << "weight " << i;
}

TEST(Engine, ReuseMatchesFreshBackwardBitExactly) {
  // One Engine across N iterations == N fresh backward() calls, to the bit.
  const RunResult reused = train_fused_mlp(/*use_train_step=*/true,
                                           /*pool_on=*/true, 10);
  const RunResult fresh = train_fused_mlp(/*use_train_step=*/false,
                                          /*pool_on=*/true, 10);
  expect_bit_identical(reused, fresh);
}

TEST(Engine, GradientsMatchVariableBackward) {
  // Same graph, gradient-by-gradient: engine.run == Variable::backward.
  Rng rng(3);
  ag::Variable w1(Tensor::randn({4, 4}, rng), true);
  ag::Variable w2(Tensor::randn({4, 4}, rng), true);
  auto loss_of = [&] {
    ag::Variable x(Tensor::randn({2, 4}, rng));
    return ag::sum_all(ag::matmul(ag::relu(ag::matmul(x, w1)), w2));
  };
  // Two identical graphs (same rng stream rebuilt): one through the
  // engine, one through backward().
  ag::Engine engine;
  Rng save = rng;
  ag::Variable l1 = loss_of();
  engine.run(l1);
  EXPECT_EQ(engine.runs(), 1);
  EXPECT_GT(engine.last_tape_size(), 0);
  Tensor g_engine_w1 = w1.grad().clone();
  Tensor g_engine_w2 = w2.grad().clone();

  rng = save;
  w1.zero_grad();
  w2.zero_grad();
  ag::Variable l2 = loss_of();
  l2.backward();
  EXPECT_EQ(ops::max_abs_diff(g_engine_w1, w1.grad()), 0.f);
  EXPECT_EQ(ops::max_abs_diff(g_engine_w2, w2.grad()), 0.f);
}

TEST(TrainEngine, PooledAndHeapTrainingAreBitIdentical) {
  // A fused quickstart-scale run with pooling on equals the same run with
  // pooling off: losses and weights, every step, to the bit.
  const RunResult pooled = train_fused_mlp(/*use_train_step=*/true,
                                           /*pool_on=*/true, 12);
  const RunResult heap = train_fused_mlp(/*use_train_step=*/true,
                                         /*pool_on=*/false, 12);
  expect_bit_identical(pooled, heap);
}

TEST(TrainEngine, SteadyStateStepsMakeZeroHeapAllocations) {
  StoragePool::instance().set_config(StoragePool::Config{});
  StoragePool::instance().trim();
  const int64_t B = 3, in = 8, hidden = 16, classes = 4, N = 8;
  Rng rng(42);
  FusedMlp model(B, in, hidden, classes, rng);
  fused::FusedAdam opt(fused::collect_fused_parameters(model, B), B,
                       {.lr = {1e-3}});
  Rng data_rng(7);
  Tensor x = Tensor::randn({N, in}, data_rng);
  Tensor labels = Tensor::zeros({B, N});

  TrainStep step;
  auto loss_fn = [&] {
    ag::Variable logits = model.forward(
        ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
    return fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean);
  };
  // Warm-up: populates the pool (and Adam's lazily allocated moments).
  for (int s = 0; s < 3; ++s) step.run(opt, loss_fn);
  // Steady state: every tensor allocation must be a pool hit.
  for (int s = 0; s < 5; ++s) {
    step.run(opt, loss_fn);
    EXPECT_EQ(step.stats().last_heap_allocs, 0u) << "step " << s;
    EXPECT_GT(step.stats().last_pool_hits, 0u);
  }
  EXPECT_EQ(step.stats().steps, 8);
}

TEST(TrainEngine, TrainLoopRunsSchedulerAndHooksAtEpochBoundaries) {
  const int64_t B = 2, in = 4, classes = 3, N = 4;
  Rng rng(5);
  FusedMlp model(B, in, 8, classes, rng);
  fused::FusedAdam opt(fused::collect_fused_parameters(model, B), B,
                       {.lr = {1e-3, 2e-3}});
  fused::FusedExponentialLR sched(opt, {0.5});
  Rng data_rng(9);
  Tensor x = Tensor::randn({N, in}, data_rng);
  Tensor labels = Tensor::zeros({B, N});

  std::vector<int64_t> epochs_seen;
  int64_t steps_seen = 0;
  TrainLoop::Options lopts;
  lopts.steps_per_epoch = 3;
  lopts.fused_scheduler = &sched;
  lopts.on_epoch_end = [&](int64_t e) { epochs_seen.push_back(e); };
  lopts.on_step = [&](int64_t, const ag::Variable& loss) {
    EXPECT_TRUE(loss.defined());
    ++steps_seen;
  };
  TrainLoop loop(lopts);
  loop.run(6, opt, [&](int64_t) {
    return fused::fused_cross_entropy(
        model.forward(ag::Variable(
            fused::pack_model_major(std::vector<Tensor>(B, x)))),
        labels, ag::Reduction::kMean);
  });
  EXPECT_EQ(steps_seen, 6);
  ASSERT_EQ(epochs_seen.size(), 2u);
  EXPECT_EQ(epochs_seen[0], 0);
  EXPECT_EQ(epochs_seen[1], 1);
  EXPECT_EQ(sched.epoch(), 2);
  // Two scheduler steps of gamma=0.5: lr vector decayed to a quarter.
  EXPECT_DOUBLE_EQ(opt.lr()[0], 1e-3 * 0.25);
  EXPECT_DOUBLE_EQ(opt.lr()[1], 2e-3 * 0.25);
}

TEST(TrainEngine, MultiLossRunsEveryBackwardBeforeTheStep) {
  // Two losses against one optimizer step must equal one summed loss.
  const int64_t N = 6;
  auto build = [&](bool multi) {
    Rng rng(13);
    nn::Linear lin(4, 2, true, rng);
    nn::SGD opt(lin.parameters(), {.lr = 0.1});
    Rng data_rng(17);
    Tensor x = Tensor::randn({N, 4}, data_rng);
    TrainStep step;
    // Two independent forward graphs (the GAN pattern: real and fake
    // passes share parameters, not activations).
    if (multi) {
      step.run(opt, [&]() -> std::vector<ag::Variable> {
        return {ag::sum_all(lin.forward(ag::Variable(x))),
                ag::sum_all(lin.forward(ag::Variable(x)))};
      });
    } else {
      step.run(opt, [&] {
        return ag::add(ag::sum_all(lin.forward(ag::Variable(x))),
                       ag::sum_all(lin.forward(ag::Variable(x))));
      });
    }
    return lin.weight.value().to_vector();
  };
  const auto two_losses = build(true);
  const auto summed = build(false);
  ASSERT_EQ(two_losses.size(), summed.size());
  for (size_t i = 0; i < two_losses.size(); ++i)
    EXPECT_NEAR(two_losses[i], summed[i], 1e-6f);
}

}  // namespace
}  // namespace hfta
