// Autograd engine tests: tape mechanics (accumulation, diamond graphs,
// detach, constant folding) and numerical gradient checks for every
// differentiable op.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/functions.h"
#include "autograd/gradcheck.h"
#include "tensor/ops.h"

namespace hfta::ag {
namespace {

Variable leaf(Shape shape, Rng& rng) {
  return Variable(Tensor::randn(std::move(shape), rng), /*requires_grad=*/true);
}

TEST(Autograd, ScalarChainRule) {
  // y = (2x)^2 -> dy/dx = 8x.
  Variable x(Tensor::full({1}, 3.f), true);
  Variable y = pow_scalar(mul_scalar(x, 2.f), 2.f);
  y.backward();
  EXPECT_NEAR(x.grad().item(), 8.f * 3.f, 1e-4f);
}

TEST(Autograd, DiamondGraphAccumulates) {
  // z = x*x + x*x: grad must flow through both branches -> dz/dx = 4x.
  Variable x(Tensor::full({1}, 5.f), true);
  Variable a = mul(x, x);
  Variable z = add(a, a);
  z.backward();
  EXPECT_NEAR(x.grad().item(), 4.f * 5.f, 1e-4f);
}

TEST(Autograd, BackwardTwiceAccumulatesIntoLeaves) {
  Variable x(Tensor::full({1}, 2.f), true);
  Variable y1 = mul_scalar(x, 3.f);
  y1.backward();
  Variable y2 = mul_scalar(x, 4.f);
  y2.backward();
  EXPECT_NEAR(x.grad().item(), 7.f, 1e-5f);
}

TEST(Autograd, DetachCutsTape) {
  Variable x(Tensor::full({1}, 2.f), true);
  Variable y = mul_scalar(x, 3.f);
  Variable z = mul_scalar(y.detach(), 10.f);
  z.backward();
  EXPECT_FALSE(x.has_grad());
}

TEST(Autograd, ConstantsAreNotTaped) {
  Variable c = constant(Tensor::full({2}, 1.f));
  Variable d = constant(Tensor::full({2}, 2.f));
  Variable y = add(c, d);
  EXPECT_EQ(y.node(), nullptr);  // folded: no inputs require grad
}

TEST(Autograd, BroadcastAddReducesGrad) {
  Rng rng(1);
  Variable x = leaf({3, 4}, rng);
  Variable b = leaf({4}, rng);
  Variable y = sum_all(add(x, b));
  y.backward();
  EXPECT_EQ(b.grad().shape(), (Shape{4}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(b.grad().at({i}), 3.f, 1e-5f);
}

// ---- parameterized gradcheck over unary ops --------------------------------

struct UnaryCase {
  const char* name;
  Variable (*fn)(const Variable&);
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, MatchesNumerical) {
  Rng rng(42);
  // Inputs away from kinks (|x| in [0.2, 1.5]) so central differences are
  // valid for relu/relu6/hard* too.
  Tensor t = Tensor::randn({3, 4}, rng);
  for (int64_t i = 0; i < t.numel(); ++i) {
    float v = t.data()[i];
    v = (v < 0 ? -1.f : 1.f) * (0.3f + std::min(std::fabs(v), 1.2f));
    t.data()[i] = v;
  }
  std::vector<Variable> inputs = {Variable(t, true)};
  auto fn = GetParam().fn;
  auto res = gradcheck(
      [fn](std::vector<Variable>& in) { return sum_all(fn(in[0])); }, inputs,
      1e-3f, 1e-2f);
  EXPECT_TRUE(res.ok) << GetParam().name << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, UnaryGradTest,
    ::testing::Values(
        UnaryCase{"neg", [](const Variable& v) { return neg(v); }},
        UnaryCase{"exp", [](const Variable& v) { return exp(v); }},
        UnaryCase{"sqrt",
                  [](const Variable& v) {
                    return sqrt(add_scalar(mul(v, v), 1.f));
                  }},
        UnaryCase{"tanh", [](const Variable& v) { return tanh(v); }},
        UnaryCase{"sigmoid", [](const Variable& v) { return sigmoid(v); }},
        UnaryCase{"relu", [](const Variable& v) { return relu(v); }},
        UnaryCase{"relu6", [](const Variable& v) { return relu6(v); }},
        UnaryCase{"leaky_relu",
                  [](const Variable& v) { return leaky_relu(v, 0.2f); }},
        UnaryCase{"hardswish", [](const Variable& v) { return hardswish(v); }},
        UnaryCase{"hardsigmoid",
                  [](const Variable& v) { return hardsigmoid(v); }},
        UnaryCase{"gelu", [](const Variable& v) { return gelu(v); }}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

TEST(AutogradGrad, BinaryOps) {
  Rng rng(7);
  for (auto fn : {add, sub, mul, div}) {
    std::vector<Variable> inputs = {leaf({2, 3}, rng), leaf({2, 3}, rng)};
    // keep divisor away from 0
    for (int64_t i = 0; i < 6; ++i) {
      float& v = inputs[1].mutable_value().data()[i];
      v = (v < 0 ? -1.f : 1.f) * (0.5f + std::fabs(v));
    }
    auto res = gradcheck(
        [fn](std::vector<Variable>& in) { return sum_all(fn(in[0], in[1])); },
        inputs, 1e-3f, 1e-2f);
    EXPECT_TRUE(res.ok) << res.detail;
  }
}

TEST(AutogradGrad, BroadcastMulGrad) {
  Rng rng(8);
  std::vector<Variable> inputs = {leaf({2, 3, 4}, rng), leaf({2, 1, 4}, rng)};
  auto res = gradcheck(
      [](std::vector<Variable>& in) { return sum_all(mul(in[0], in[1])); },
      inputs, 1e-3f, 1e-2f);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AutogradGrad, Matmul) {
  Rng rng(9);
  std::vector<Variable> inputs = {leaf({3, 4}, rng), leaf({4, 2}, rng)};
  auto res = gradcheck(
      [](std::vector<Variable>& in) { return sum_all(matmul(in[0], in[1])); },
      inputs, 1e-2f, 2e-2f);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AutogradGrad, BmmAndBmmNt) {
  Rng rng(10);
  {
    std::vector<Variable> inputs = {leaf({2, 3, 4}, rng), leaf({2, 4, 2}, rng)};
    auto res = gradcheck(
        [](std::vector<Variable>& in) { return sum_all(bmm(in[0], in[1])); },
        inputs, 1e-2f, 2e-2f);
    EXPECT_TRUE(res.ok) << res.detail;
  }
  {
    std::vector<Variable> inputs = {leaf({2, 3, 4}, rng), leaf({2, 5, 4}, rng)};
    auto res = gradcheck(
        [](std::vector<Variable>& in) {
          return sum_all(bmm_nt(in[0], in[1]));
        },
        inputs, 1e-2f, 2e-2f);
    EXPECT_TRUE(res.ok) << res.detail;
  }
}

TEST(AutogradGrad, Baddbmm) {
  Rng rng(11);
  std::vector<Variable> inputs = {leaf({2, 1, 3}, rng), leaf({2, 4, 5}, rng),
                                  leaf({2, 5, 3}, rng)};
  auto res = gradcheck(
      [](std::vector<Variable>& in) {
        return sum_all(baddbmm(in[0], in[1], in[2]));
      },
      inputs, 1e-2f, 2e-2f);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AutogradGrad, Linear) {
  Rng rng(12);
  std::vector<Variable> inputs = {leaf({4, 3}, rng), leaf({2, 3}, rng),
                                  leaf({2}, rng)};
  auto res = gradcheck(
      [](std::vector<Variable>& in) {
        return sum_all(linear(in[0], in[1], in[2]));
      },
      inputs, 1e-2f, 2e-2f);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AutogradGrad, Conv2dGrouped) {
  Rng rng(13);
  std::vector<Variable> inputs = {leaf({2, 4, 5, 5}, rng),
                                  leaf({6, 2, 3, 3}, rng), leaf({6}, rng)};
  auto res = gradcheck(
      [](std::vector<Variable>& in) {
        return sum_all(
            conv2d(in[0], in[1], in[2], ops::ConvArgs::make(1, 1, 2)));
      },
      inputs, 1e-2f, 3e-2f);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AutogradGrad, Conv1d) {
  Rng rng(14);
  std::vector<Variable> inputs = {leaf({2, 3, 8}, rng), leaf({4, 3, 3}, rng),
                                  leaf({4}, rng)};
  auto res = gradcheck(
      [](std::vector<Variable>& in) {
        return sum_all(conv1d(in[0], in[1], in[2], 1, 1, 1));
      },
      inputs, 1e-2f, 3e-2f);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AutogradGrad, ConvTranspose2d) {
  Rng rng(15);
  std::vector<Variable> inputs = {leaf({1, 4, 4, 4}, rng),
                                  leaf({4, 3, 4, 4}, rng), leaf({3}, rng)};
  auto res = gradcheck(
      [](std::vector<Variable>& in) {
        return sum_all(conv_transpose2d(in[0], in[1], in[2],
                                        ops::ConvTransposeArgs{2, 1, 0, 1}));
      },
      inputs, 1e-2f, 3e-2f);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AutogradGrad, Pooling) {
  Rng rng(16);
  {
    std::vector<Variable> inputs = {leaf({1, 2, 6, 6}, rng)};
    auto res = gradcheck(
        [](std::vector<Variable>& in) {
          return sum_all(max_pool2d(in[0], ops::PoolArgs{2, 2, 0}));
        },
        inputs, 1e-3f, 1e-2f);
    EXPECT_TRUE(res.ok) << res.detail;
  }
  {
    std::vector<Variable> inputs = {leaf({1, 2, 5, 5}, rng)};
    auto res = gradcheck(
        [](std::vector<Variable>& in) {
          return sum_all(adaptive_avg_pool2d(in[0], 2, 2));
        },
        inputs, 1e-3f, 1e-2f);
    EXPECT_TRUE(res.ok) << res.detail;
  }
  {
    std::vector<Variable> inputs = {leaf({2, 3, 7}, rng)};
    auto res = gradcheck(
        [](std::vector<Variable>& in) {
          return sum_all(global_max_pool1d(in[0]));
        },
        inputs, 1e-3f, 1e-2f);
    EXPECT_TRUE(res.ok) << res.detail;
  }
}

TEST(AutogradGrad, ShapeOps) {
  Rng rng(17);
  std::vector<Variable> inputs = {leaf({2, 3, 4}, rng), leaf({2, 5, 4}, rng)};
  auto res = gradcheck(
      [](std::vector<Variable>& in) {
        Variable c = concat({in[0], in[1]}, 1);      // [2, 8, 4]
        Variable p = permute(c, {1, 0, 2});          // [8, 2, 4]
        Variable s = slice(p, 0, 2, 6);              // [4, 2, 4]
        Variable r = reshape(s, {4, 8});
        return sum_all(mul(r, r));
      },
      inputs, 1e-3f, 1e-2f);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AutogradGrad, Reductions) {
  Rng rng(18);
  std::vector<Variable> inputs = {leaf({2, 3, 4}, rng)};
  auto res = gradcheck(
      [](std::vector<Variable>& in) {
        Variable m = mean(in[0], {0, 2}, true);  // [1, 3, 1]
        Variable d = sub(in[0], m);
        return mean_all(mul(d, d));  // variance-like composite (BN core)
      },
      inputs, 1e-3f, 1e-2f);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AutogradGrad, SoftmaxFamily) {
  Rng rng(19);
  {
    std::vector<Variable> inputs = {leaf({3, 5}, rng)};
    Tensor weights = Tensor::randn({3, 5}, rng);
    auto res = gradcheck(
        [&](std::vector<Variable>& in) {
          return sum_all(mul(softmax(in[0], 1), constant(weights)));
        },
        inputs, 1e-3f, 1e-2f);
    EXPECT_TRUE(res.ok) << res.detail;
  }
  {
    std::vector<Variable> inputs = {leaf({3, 5}, rng)};
    Tensor weights = Tensor::randn({3, 5}, rng);
    auto res = gradcheck(
        [&](std::vector<Variable>& in) {
          return sum_all(mul(log_softmax(in[0], 1), constant(weights)));
        },
        inputs, 1e-3f, 1e-2f);
    EXPECT_TRUE(res.ok) << res.detail;
  }
}

TEST(AutogradGrad, Losses) {
  Rng rng(20);
  Tensor labels = Tensor::from_data({4}, {0.f, 2.f, 1.f, 2.f});
  for (auto reduction : {Reduction::kMean, Reduction::kSum}) {
    std::vector<Variable> inputs = {leaf({4, 3}, rng)};
    auto res = gradcheck(
        [&](std::vector<Variable>& in) {
          return cross_entropy(in[0], labels, reduction);
        },
        inputs, 1e-3f, 1e-2f);
    EXPECT_TRUE(res.ok) << res.detail;
  }
  {
    Tensor targets = Tensor::rand({4, 1}, rng);
    std::vector<Variable> inputs = {leaf({4, 1}, rng)};
    auto res = gradcheck(
        [&](std::vector<Variable>& in) {
          return bce_with_logits(in[0], targets, Reduction::kMean);
        },
        inputs, 1e-3f, 1e-2f);
    EXPECT_TRUE(res.ok) << res.detail;
  }
  {
    Tensor target = Tensor::randn({4, 3}, rng);
    std::vector<Variable> inputs = {leaf({4, 3}, rng)};
    auto res = gradcheck(
        [&](std::vector<Variable>& in) {
          return mse_loss(in[0], target, Reduction::kMean);
        },
        inputs, 1e-3f, 1e-2f);
    EXPECT_TRUE(res.ok) << res.detail;
  }
}

TEST(AutogradGrad, SpatialNLLForSegmentation) {
  // [N, C, L] log-probs with [N, L] labels (PointNet segmentation layout).
  Rng rng(21);
  Tensor labels = Tensor::from_data({2, 3}, {0.f, 1.f, 2.f, 2.f, 0.f, 1.f});
  std::vector<Variable> inputs = {leaf({2, 4, 3}, rng)};
  auto res = gradcheck(
      [&](std::vector<Variable>& in) {
        return nll_loss(log_softmax(in[0], 1), labels, Reduction::kMean);
      },
      inputs, 1e-3f, 1e-2f);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AutogradGrad, Embedding) {
  Rng rng(22);
  Tensor idx = Tensor::from_data({2, 3}, {0.f, 2.f, 1.f, 2.f, 2.f, 0.f});
  std::vector<Variable> inputs = {leaf({4, 3}, rng)};
  auto res = gradcheck(
      [&](std::vector<Variable>& in) {
        return sum_all(mul(embedding(idx, in[0]), embedding(idx, in[0])));
      },
      inputs, 1e-3f, 1e-2f);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AutogradGrad, MulMaskDropoutBuildingBlock) {
  Rng rng(23);
  Tensor mask = Tensor::from_data({2, 2}, {0.f, 2.f, 2.f, 0.f});
  std::vector<Variable> inputs = {leaf({2, 2}, rng)};
  auto res = gradcheck(
      [&](std::vector<Variable>& in) {
        return sum_all(mul_mask(in[0], mask));
      },
      inputs, 1e-3f, 1e-2f);
  EXPECT_TRUE(res.ok) << res.detail;
}

}  // namespace
}  // namespace hfta::ag
