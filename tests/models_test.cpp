// Model-level fusion equivalence: for every one of the paper's six model
// families, the fused array of B models with distinct weights must produce
// per-model outputs identical (to float tolerance) to the B plain models.
#include <gtest/gtest.h>

#include "hfta/fused_ops.h"
#include "models/bert.h"
#include "models/dcgan.h"
#include "models/mobilenetv3.h"
#include "models/pointnet.h"
#include "models/resnet.h"
#include "models/transformer.h"
#include "tensor/ops.h"

namespace hfta::models {
namespace {

constexpr float kTol = 2e-3f;
constexpr int64_t kB = 3;

TEST(PointNetModel, ClsForwardShapes) {
  Rng rng(1);
  PointNetConfig cfg = PointNetConfig::tiny();
  PointNetCls model(cfg, rng);
  ag::Variable x(Tensor::randn({2, 3, cfg.num_points}, rng));
  EXPECT_EQ(model.forward(x).shape(), (Shape{2, cfg.num_classes}));
}

TEST(PointNetModel, FusedClsMatchesSerial) {
  Rng rng(2);
  PointNetConfig cfg = PointNetConfig::tiny();
  FusedPointNetCls fused(kB, cfg, rng);
  std::vector<std::shared_ptr<PointNetCls>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<PointNetCls>(cfg, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({4, 3, cfg.num_points}, rng));
  }
  Tensor yf =
      fused.forward(ag::Variable(fused::pack_channel_fused(xs))).value();
  for (int64_t b = 0; b < kB; ++b) {
    Tensor yb = plain[static_cast<size_t>(b)]
                    ->forward(ag::Variable(xs[static_cast<size_t>(b)]))
                    .value();
    Tensor yf_b = yf.slice(0, b, b + 1).reshape(yb.shape());
    EXPECT_LT(ops::max_abs_diff(yf_b, yb), kTol) << "model " << b;
  }
}

TEST(PointNetModel, FusedClsWithInputTransformMatchesSerial) {
  Rng rng(3);
  PointNetConfig cfg = PointNetConfig::tiny();
  cfg.input_transform = true;
  FusedPointNetCls fused(kB, cfg, rng);
  std::vector<std::shared_ptr<PointNetCls>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<PointNetCls>(cfg, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({2, 3, cfg.num_points}, rng));
  }
  Tensor yf =
      fused.forward(ag::Variable(fused::pack_channel_fused(xs))).value();
  for (int64_t b = 0; b < kB; ++b) {
    Tensor yb = plain[static_cast<size_t>(b)]
                    ->forward(ag::Variable(xs[static_cast<size_t>(b)]))
                    .value();
    EXPECT_LT(ops::max_abs_diff(yf.slice(0, b, b + 1).reshape(yb.shape()), yb),
              kTol);
  }
}

TEST(PointNetModel, FusedSegMatchesSerial) {
  Rng rng(4);
  PointNetConfig cfg = PointNetConfig::tiny();
  FusedPointNetSeg fused(kB, cfg, rng);
  std::vector<std::shared_ptr<PointNetSeg>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<PointNetSeg>(cfg, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({2, 3, cfg.num_points}, rng));
  }
  Tensor yf =
      fused.forward(ag::Variable(fused::pack_channel_fused(xs))).value();
  auto per = fused::unpack_channel_fused(yf, kB);
  for (int64_t b = 0; b < kB; ++b) {
    Tensor yb = plain[static_cast<size_t>(b)]
                    ->forward(ag::Variable(xs[static_cast<size_t>(b)]))
                    .value();
    EXPECT_LT(ops::max_abs_diff(per[static_cast<size_t>(b)], yb), kTol);
  }
}

TEST(DCGANModel, GeneratorShapesAndRange) {
  Rng rng(5);
  DCGANConfig cfg = DCGANConfig::tiny();
  DCGANGenerator gen(cfg, rng);
  ag::Variable z(Tensor::randn({2, cfg.nz, 1, 1}, rng));
  Tensor img = gen.forward(z).value();
  EXPECT_EQ(img.shape(), (Shape{2, cfg.nc, cfg.image_size, cfg.image_size}));
  for (int64_t i = 0; i < img.numel(); ++i) {
    EXPECT_GE(img.data()[i], -1.f);
    EXPECT_LE(img.data()[i], 1.f);
  }
  DCGANDiscriminator disc(cfg, rng);
  EXPECT_EQ(disc.forward(ag::Variable(img)).shape(), (Shape{2}));
}

TEST(DCGANModel, FusedGeneratorAndDiscriminatorMatchSerial) {
  Rng rng(6);
  DCGANConfig cfg = DCGANConfig::tiny();
  FusedDCGANGenerator fgen(kB, cfg, rng);
  FusedDCGANDiscriminator fdisc(kB, cfg, rng);
  std::vector<std::shared_ptr<DCGANGenerator>> gens;
  std::vector<std::shared_ptr<DCGANDiscriminator>> discs;
  std::vector<Tensor> zs;
  for (int64_t b = 0; b < kB; ++b) {
    gens.push_back(std::make_shared<DCGANGenerator>(cfg, rng));
    discs.push_back(std::make_shared<DCGANDiscriminator>(cfg, rng));
    fgen.load_model(b, *gens.back());
    fdisc.load_model(b, *discs.back());
    zs.push_back(Tensor::randn({2, cfg.nz, 1, 1}, rng));
  }
  Tensor imgs =
      fgen.forward(ag::Variable(fused::pack_channel_fused(zs))).value();
  Tensor logits = fdisc.forward(ag::Variable(imgs)).value();  // [B, N]
  auto img_per = fused::unpack_channel_fused(imgs, kB);
  for (int64_t b = 0; b < kB; ++b) {
    const size_t ub = static_cast<size_t>(b);
    Tensor img_b = gens[ub]->forward(ag::Variable(zs[ub])).value();
    EXPECT_LT(ops::max_abs_diff(img_per[ub], img_b), kTol);
    Tensor logit_b = discs[ub]->forward(ag::Variable(img_b)).value();
    EXPECT_LT(ops::max_abs_diff(logits.slice(0, b, b + 1).reshape({2}),
                                logit_b),
              kTol);
  }
}

TEST(ResNetModel, ForwardShapes) {
  Rng rng(7);
  ResNetConfig cfg = ResNetConfig::tiny();
  ResNet18 model(cfg, rng);
  EXPECT_EQ(model.blocks.size(), 8u);
  ag::Variable x(Tensor::randn({2, 3, cfg.image_size, cfg.image_size}, rng));
  EXPECT_EQ(model.forward(x).shape(), (Shape{2, cfg.num_classes}));
}

TEST(ResNetModel, FusedMatchesSerial) {
  Rng rng(8);
  ResNetConfig cfg = ResNetConfig::tiny();
  FusedResNet18 fused(kB, cfg, rng);
  std::vector<std::shared_ptr<ResNet18>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<ResNet18>(cfg, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({2, 3, cfg.image_size, cfg.image_size}, rng));
  }
  Tensor yf =
      fused.forward(ag::Variable(fused::pack_channel_fused(xs))).value();
  for (int64_t b = 0; b < kB; ++b) {
    const size_t ub = static_cast<size_t>(b);
    Tensor yb = plain[ub]->forward(ag::Variable(xs[ub])).value();
    EXPECT_LT(ops::max_abs_diff(yf.slice(0, b, b + 1).reshape(yb.shape()), yb),
              kTol);
  }
}

class PartialFusionTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(PartialFusionTest, PartiallyUnfusedResNetMatchesSerial) {
  // The partial-fusion study's correctness precondition (Appendix H.4):
  // whatever subset of blocks is fused, the math is unchanged.
  const int64_t unfused_units = GetParam();
  Rng rng(9);
  ResNetConfig cfg = ResNetConfig::tiny();
  auto mask = ResNetFusionMask::partially_unfused(unfused_units);
  FusedResNet18 fused(kB, cfg, rng, mask);
  EXPECT_EQ(mask.fused_units(), 10 - unfused_units);
  std::vector<std::shared_ptr<ResNet18>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<ResNet18>(cfg, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({2, 3, cfg.image_size, cfg.image_size}, rng));
  }
  Tensor yf =
      fused.forward(ag::Variable(fused::pack_channel_fused(xs))).value();
  for (int64_t b = 0; b < kB; ++b) {
    const size_t ub = static_cast<size_t>(b);
    Tensor yb = plain[ub]->forward(ag::Variable(xs[ub])).value();
    EXPECT_LT(ops::max_abs_diff(yf.slice(0, b, b + 1).reshape(yb.shape()), yb),
              kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(UnfusedUnits, PartialFusionTest,
                         ::testing::Values(0, 1, 5, 10));

TEST(MobileNetModel, ForwardShapesAndBlockCount) {
  Rng rng(10);
  MobileNetV3Config cfg = MobileNetV3Config::tiny();
  MobileNetV3 model(cfg, rng);
  EXPECT_EQ(model.bnecks.size(), static_cast<size_t>(cfg.num_blocks));
  ag::Variable x(Tensor::randn({2, 3, cfg.image_size, cfg.image_size}, rng));
  EXPECT_EQ(model.forward(x).shape(), (Shape{2, cfg.num_classes}));
}

TEST(MobileNetModel, FusedMatchesSerial) {
  Rng rng(11);
  MobileNetV3Config cfg = MobileNetV3Config::tiny();
  FusedMobileNetV3 fused(kB, cfg, rng);
  std::vector<std::shared_ptr<MobileNetV3>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<MobileNetV3>(cfg, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({2, 3, cfg.image_size, cfg.image_size}, rng));
  }
  Tensor yf =
      fused.forward(ag::Variable(fused::pack_channel_fused(xs))).value();
  for (int64_t b = 0; b < kB; ++b) {
    const size_t ub = static_cast<size_t>(b);
    Tensor yb = plain[ub]->forward(ag::Variable(xs[ub])).value();
    EXPECT_LT(ops::max_abs_diff(yf.slice(0, b, b + 1).reshape(yb.shape()), yb),
              kTol);
  }
}

TEST(MobileNetModel, V2FusedMatchesSerial) {
  // The infusible "version" hyper-parameter (Table 12): MobileNetV2's
  // inverted residuals (ReLU6, no SE) fuse just like V3's bnecks.
  Rng rng(30);
  MobileNetV3Config cfg = MobileNetV3Config::tiny_v2();
  EXPECT_EQ(cfg.version, 2);
  FusedMobileNetV3 fused(kB, cfg, rng);
  std::vector<std::shared_ptr<MobileNetV3>> plain;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<MobileNetV3>(cfg, rng));
    fused.load_model(b, *plain.back());
    xs.push_back(Tensor::randn({2, 3, cfg.image_size, cfg.image_size}, rng));
  }
  Tensor yf =
      fused.forward(ag::Variable(fused::pack_channel_fused(xs))).value();
  for (int64_t b = 0; b < kB; ++b) {
    const size_t ub = static_cast<size_t>(b);
    Tensor yb = plain[ub]->forward(ag::Variable(xs[ub])).value();
    EXPECT_LT(ops::max_abs_diff(yf.slice(0, b, b + 1).reshape(yb.shape()), yb),
              kTol);
  }
}

TEST(MobileNetModel, V2AndV3AreDifferentArchitectures) {
  // V2 and V3 sets of operator shapes differ -> the hyper-parameter is
  // genuinely infusible (different parameter structure).
  Rng rng(31);
  MobileNetV3 v3(MobileNetV3Config::tiny(), rng);
  MobileNetV3 v2(MobileNetV3Config::tiny_v2(), rng);
  EXPECT_NE(v3.num_parameters(), v2.num_parameters());
  EXPECT_EQ(mobilenetv2_table().size(), 17u);
  for (const auto& row : mobilenetv2_table()) {
    EXPECT_FALSE(row.se);      // V2 has no squeeze-excite
    EXPECT_FALSE(row.hswish);  // ...and no hard-swish
    EXPECT_TRUE(row.relu6);
  }
}

TEST(TransformerModel, LMForwardShapes) {
  Rng rng(12);
  TransformerConfig cfg = TransformerConfig::tiny();
  TransformerLM model(cfg, rng);
  Tensor tokens({2, cfg.seq_len});
  for (int64_t i = 0; i < tokens.numel(); ++i)
    tokens.data()[i] = static_cast<float>(rng.uniform_int(cfg.vocab));
  EXPECT_EQ(model.forward_tokens(tokens).shape(),
            (Shape{2, cfg.seq_len, cfg.vocab}));
}

TEST(TransformerModel, CausalMaskBlocksFuture) {
  // Changing a future token must not change earlier positions' logits.
  Rng rng(13);
  TransformerConfig cfg = TransformerConfig::tiny();
  TransformerLM model(cfg, rng);
  model.eval();
  Tensor tokens({1, cfg.seq_len});
  for (int64_t i = 0; i < tokens.numel(); ++i)
    tokens.data()[i] = static_cast<float>(rng.uniform_int(cfg.vocab));
  Tensor y1 = model.forward_tokens(tokens).value();
  tokens.at({0, cfg.seq_len - 1}) =
      static_cast<float>((static_cast<int64_t>(tokens.at({0, cfg.seq_len - 1})) + 1) %
                         cfg.vocab);
  Tensor y2 = model.forward_tokens(tokens).value();
  // positions 0..S-2 unchanged
  Tensor y1_head = y1.slice(1, 0, cfg.seq_len - 1);
  Tensor y2_head = y2.slice(1, 0, cfg.seq_len - 1);
  EXPECT_LT(ops::max_abs_diff(y1_head, y2_head), 1e-5f);
  // last position changed
  EXPECT_GT(ops::max_abs_diff(y1.slice(1, cfg.seq_len - 1, cfg.seq_len),
                              y2.slice(1, cfg.seq_len - 1, cfg.seq_len)),
            1e-4f);
}

TEST(TransformerModel, FusedMatchesSerial) {
  Rng rng(14);
  TransformerConfig cfg = TransformerConfig::tiny();
  FusedTransformerLM fused(kB, cfg, rng);
  std::vector<std::shared_ptr<TransformerLM>> plain;
  std::vector<Tensor> toks;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<TransformerLM>(cfg, rng));
    fused.load_model(b, *plain.back());
    Tensor t({2, cfg.seq_len});
    for (int64_t i = 0; i < t.numel(); ++i)
      t.data()[i] = static_cast<float>(rng.uniform_int(cfg.vocab));
    toks.push_back(t);
  }
  Tensor yf = fused.forward_tokens(fused::pack_model_major(toks)).value();
  for (int64_t b = 0; b < kB; ++b) {
    const size_t ub = static_cast<size_t>(b);
    Tensor yb = plain[ub]->forward_tokens(toks[ub]).value();
    EXPECT_LT(ops::max_abs_diff(yf.slice(0, b, b + 1).reshape(yb.shape()), yb),
              kTol);
  }
}

TEST(BertModel, FusedMatchesSerial) {
  Rng rng(15);
  BertConfig cfg = BertConfig::tiny();
  FusedBertModel fused(kB, cfg, rng);
  std::vector<std::shared_ptr<BertModel>> plain;
  std::vector<Tensor> toks;
  for (int64_t b = 0; b < kB; ++b) {
    plain.push_back(std::make_shared<BertModel>(cfg, rng));
    fused.load_model(b, *plain.back());
    Tensor t({2, cfg.seq_len});
    for (int64_t i = 0; i < t.numel(); ++i)
      t.data()[i] = static_cast<float>(rng.uniform_int(cfg.vocab));
    toks.push_back(t);
  }
  Tensor yf = fused.forward_tokens(fused::pack_model_major(toks)).value();
  for (int64_t b = 0; b < kB; ++b) {
    const size_t ub = static_cast<size_t>(b);
    Tensor yb = plain[ub]->forward_tokens(toks[ub]).value();
    EXPECT_LT(ops::max_abs_diff(yf.slice(0, b, b + 1).reshape(yb.shape()), yb),
              kTol);
  }
}

TEST(BertModel, MlmHeadSharesEncoderShapes) {
  Rng rng(16);
  BertConfig cfg = BertConfig::tiny();
  BertModel model(cfg, rng);
  Tensor tokens({2, cfg.seq_len});
  EXPECT_EQ(model.forward_tokens(tokens).shape(),
            (Shape{2, cfg.seq_len, cfg.vocab}));
}

}  // namespace
}  // namespace hfta::models
