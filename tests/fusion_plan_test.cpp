// FusionPlan coverage: fuse -> forward equivalence against B independently
// run models for Linear/Conv/BN/LayerNorm stacks, congruence-rejection
// diagnostics (which layer, which model, why), fuse_mask partial-fusion
// round-trips, the unfused fallback, and planner-driven weight (re)loading.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>

#include "hfta/fused_optim.h"
#include "hfta/fusion.h"
#include "hfta/loss_scaling.h"
#include "models/bert.h"
#include "models/mobilenetv3.h"
#include "models/pointnet.h"
#include "models/resnet.h"
#include "models/transformer.h"
#include "nn/layers.h"
#include "nn/norm.h"
#include "nn/optim.h"
#include "tensor/ops.h"

#include "kind_factories.h"

namespace hfta::fused {
namespace {

constexpr int64_t kB = 3;

double rel_err(const Tensor& got, const Tensor& want) {
  double scale = 1e-12;
  for (int64_t i = 0; i < want.numel(); ++i)
    scale = std::max(scale, static_cast<double>(std::fabs(want.data()[i])));
  return ops::max_abs_diff(got, want) / scale;
}

// Forwards the fused array and every per-model net, then checks per-model
// slices agree. Input xs[b]: one per-model batch; fused input is
// channel-fused packing. Expects model-major output.
void expect_equivalent(FusedArray& array,
                       const std::vector<std::shared_ptr<nn::Module>>& nets,
                       const std::vector<Tensor>& xs, double tol = 1e-4) {
  Tensor yf = array.forward(ag::Variable(pack_channel_fused(xs))).value();
  for (int64_t b = 0; b < kB; ++b) {
    const size_t ub = static_cast<size_t>(b);
    Tensor yb = nets[ub]->forward(ag::Variable(xs[ub])).value();
    Tensor yf_b = yf.slice(0, b, b + 1).reshape(yb.shape());
    EXPECT_LT(rel_err(yf_b, yb), tol) << "model " << b;
  }
}

std::shared_ptr<nn::Sequential> mlp(int64_t in, int64_t hidden, int64_t out,
                                    Rng& rng) {
  auto net = std::make_shared<nn::Sequential>();
  net->push_back("fc1", std::make_shared<nn::Linear>(in, hidden, true, rng));
  net->push_back("relu", std::make_shared<nn::ReLU>());
  net->push_back("fc2", std::make_shared<nn::Linear>(hidden, out, true, rng));
  return net;
}

TEST(FusionPlan, LinearStackMatchesIndependentModels) {
  Rng rng(1);
  std::vector<std::shared_ptr<nn::Module>> nets;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    nets.push_back(mlp(6, 10, 4, rng));
    xs.push_back(Tensor::randn({5, 6}, rng));
  }
  auto array = FusionPlan(kB).compile(nets, rng);
  EXPECT_EQ(array->num_units(), 3);
  EXPECT_EQ(array->output_layout(), Layout::kModelMajor);
  expect_equivalent(*array, nets, xs);
}

TEST(FusionPlan, ConvBatchNormStackMatchesIndependentModels) {
  Rng rng(2);
  std::vector<std::shared_ptr<nn::Module>> nets;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    auto net = std::make_shared<nn::Sequential>();
    net->push_back("conv1",
                   std::make_shared<nn::Conv2d>(3, 8, 3, 1, 1, 1, true, rng));
    net->push_back("bn1", std::make_shared<nn::BatchNorm2d>(8));
    net->push_back("relu", std::make_shared<nn::ReLU>());
    net->push_back("pool", std::make_shared<nn::MaxPool2d>(2, 2));
    net->push_back("conv2",
                   std::make_shared<nn::Conv2d>(8, 4, 3, 2, 1, 1, true, rng));
    net->push_back("flatten", std::make_shared<nn::Flatten>());
    net->push_back("fc", std::make_shared<nn::Linear>(4 * 2 * 2, 5, true,
                                                      rng));
    nets.push_back(net);
    xs.push_back(Tensor::randn({4, 3, 8, 8}, rng));
  }
  auto array = FusionPlan(kB).compile(nets, rng);
  expect_equivalent(*array, nets, xs);
}

TEST(FusionPlan, LayerNormStackMatchesIndependentModels) {
  Rng rng(3);
  std::vector<std::shared_ptr<nn::Module>> nets;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    auto net = std::make_shared<nn::Sequential>();
    net->push_back("fc1", std::make_shared<nn::Linear>(6, 12, true, rng));
    net->push_back("ln", std::make_shared<nn::LayerNorm>(Shape{12}, 1e-5f,
                                                         rng));
    net->push_back("gelu", std::make_shared<nn::GELU>());
    net->push_back("fc2", std::make_shared<nn::Linear>(12, 3, true, rng));
    nets.push_back(net);
    xs.push_back(Tensor::randn({7, 6}, rng));
  }
  auto array = FusionPlan(kB).compile(nets, rng);
  expect_equivalent(*array, nets, xs);
}

TEST(FusionPlan, Conv1dBatchNorm1dStackMatchesIndependentModels) {
  Rng rng(4);
  std::vector<std::shared_ptr<nn::Module>> nets;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    auto net = std::make_shared<nn::Sequential>();
    net->push_back("conv",
                   std::make_shared<nn::Conv1d>(3, 6, 1, 1, 0, 1, true, rng));
    net->push_back("bn", std::make_shared<nn::BatchNorm1d>(6));
    net->push_back("relu", std::make_shared<nn::ReLU>());
    net->push_back("gpool", std::make_shared<nn::GlobalMaxPool1d>());
    net->push_back("fc", std::make_shared<nn::Linear>(6, 2, true, rng));
    nets.push_back(net);
    xs.push_back(Tensor::randn({4, 3, 10}, rng));
  }
  auto array = FusionPlan(kB).compile(nets, rng);
  expect_equivalent(*array, nets, xs);
}

TEST(FusionPlan, RejectsStructuralHyperParameterMismatch) {
  Rng rng(5);
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < kB; ++b)
    nets.push_back(mlp(6, b == 1 ? 9 : 10, 4, rng));  // model 1 differs

  std::vector<const nn::Module*> raw;
  for (const auto& n : nets) raw.push_back(n.get());
  std::vector<FusionDiagnostic> diags = FusionPlan(kB).analyze(raw);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].path, "fc1");
  EXPECT_EQ(diags[0].model_index, 1);
  EXPECT_NE(diags[0].reason.find("out"), std::string::npos);

  try {
    FusionPlan(kB).compile(nets, rng);
    FAIL() << "compile must throw on incongruent models";
  } catch (const FusionError& e) {
    EXPECT_EQ(e.diagnostic.path, "fc1");
    EXPECT_EQ(e.diagnostic.model_index, 1);
    EXPECT_NE(std::string(e.what()).find("fc1"), std::string::npos);
  }
}

TEST(FusionPlan, RejectsLayerKindMismatch) {
  Rng rng(6);
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < kB; ++b) {
    auto net = std::make_shared<nn::Sequential>();
    net->push_back("fc", std::make_shared<nn::Linear>(4, 4, true, rng));
    if (b == 2) {
      net->push_back("act", std::make_shared<nn::Tanh>());
    } else {
      net->push_back("act", std::make_shared<nn::ReLU>());
    }
    nets.push_back(net);
  }
  std::vector<const nn::Module*> raw;
  for (const auto& n : nets) raw.push_back(n.get());
  std::vector<FusionDiagnostic> diags = FusionPlan(kB).analyze(raw);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].path, "act");
  EXPECT_EQ(diags[0].model_index, 2);
  EXPECT_NE(diags[0].reason.find("kind mismatch"), std::string::npos);
}

TEST(FusionPlan, RejectsTopologyMismatch) {
  Rng rng(7);
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < kB; ++b) {
    auto net = std::make_shared<nn::Sequential>();
    net->push_back("fc", std::make_shared<nn::Linear>(4, 4, true, rng));
    if (b == 0) net->push_back("extra", std::make_shared<nn::ReLU>());
    nets.push_back(net);
  }
  std::vector<const nn::Module*> raw;
  for (const auto& n : nets) raw.push_back(n.get());
  std::vector<FusionDiagnostic> diags = FusionPlan(kB).analyze(raw);
  ASSERT_FALSE(diags.empty());
  EXPECT_NE(diags[0].reason.find("submodule count"), std::string::npos);
}

// A composite custom module without a registered lowering.
class Doubler : public nn::Module {
 public:
  ag::Variable forward(const ag::Variable& x) override {
    return ag::mul_scalar(x, 2.f);
  }
  std::string kind_name() const override { return "test::Doubler"; }
};

TEST(FusionPlan, UnsupportedKindYieldsStructuredDiagnostic) {
  Rng rng(8);
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < kB; ++b) {
    auto net = std::make_shared<nn::Sequential>();
    net->push_back("fc", std::make_shared<nn::Linear>(4, 4, true, rng));
    net->push_back("dbl", std::make_shared<Doubler>());
    nets.push_back(net);
  }
  try {
    FusionPlan(kB).compile(nets, rng);
    FAIL() << "compile must throw on an unregistered kind";
  } catch (const FusionError& e) {
    EXPECT_EQ(e.diagnostic.path, "dbl");
    EXPECT_NE(e.diagnostic.reason.find("no fusion rule"), std::string::npos);
    EXPECT_NE(e.diagnostic.reason.find("test::Doubler"), std::string::npos);
  }
}

TEST(FusionPlan, UnfusedFallbackRunsUnsupportedKind) {
  Rng rng(9);
  std::vector<std::shared_ptr<nn::Module>> nets;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    auto net = std::make_shared<nn::Sequential>();
    net->push_back("fc1", std::make_shared<nn::Linear>(6, 8, true, rng));
    net->push_back("dbl", std::make_shared<Doubler>());
    net->push_back("fc2", std::make_shared<nn::Linear>(8, 3, true, rng));
    nets.push_back(net);
    xs.push_back(Tensor::randn({4, 6}, rng));
  }
  FusionOptions opts;
  opts.allow_unfused_fallback = true;
  opts.output_layout = Layout::kModelMajor;
  auto array = FusionPlan(kB, opts).compile(nets, rng);
  EXPECT_FALSE(array->unit_fused(1));
  expect_equivalent(*array, nets, xs);
}

TEST(FusionPlan, FuseMaskPartialFusionRoundTrips) {
  Rng rng(10);
  std::vector<std::shared_ptr<nn::Module>> nets;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    nets.push_back(mlp(6, 10, 4, rng));
    xs.push_back(Tensor::randn({5, 6}, rng));
  }
  Tensor x = pack_channel_fused(xs);

  FusionOptions full_opts;
  full_opts.output_layout = Layout::kModelMajor;
  auto full = FusionPlan(kB, full_opts).compile(nets, rng);

  // Every 3-unit mask: the math must be identical regardless of which units
  // run fused and which run as B per-model replicas (Appendix H.4).
  for (int m = 0; m < 8; ++m) {
    FusionOptions opts;
    opts.output_layout = Layout::kModelMajor;
    opts.fuse_mask = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    auto partial = FusionPlan(kB, opts).compile(nets, rng);
    for (int64_t u = 0; u < 3; ++u)
      EXPECT_EQ(partial->unit_fused(u), opts.fuse_mask[static_cast<size_t>(u)]);
    Tensor y_full = full->forward(ag::Variable(x)).value();
    Tensor y_part = partial->forward(ag::Variable(x)).value();
    EXPECT_LT(rel_err(y_part, y_full), 1e-4) << "mask " << m;
  }
}

TEST(FusionPlan, FuseMaskSizeMismatchIsDiagnosed) {
  Rng rng(11);
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < kB; ++b) nets.push_back(mlp(4, 6, 2, rng));
  FusionOptions opts;
  opts.fuse_mask = {true, false};  // model has 3 units
  try {
    FusionPlan(kB, opts).compile(nets, rng);
    FAIL() << "compile must reject a wrong-sized fuse_mask";
  } catch (const FusionError& e) {
    EXPECT_NE(e.diagnostic.reason.find("fuse_mask"), std::string::npos);
  }
}

TEST(FusionPlan, LoadModelReloadsFromNewDonors) {
  Rng rng(12);
  std::vector<std::shared_ptr<nn::Module>> nets, fresh;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    nets.push_back(mlp(6, 10, 4, rng));
    fresh.push_back(mlp(6, 10, 4, rng));  // different weights
    xs.push_back(Tensor::randn({5, 6}, rng));
  }
  FusionOptions opts;
  opts.output_layout = Layout::kModelMajor;
  opts.fuse_mask = {true, true, false};  // exercise the adapter loader too
  auto array = FusionPlan(kB, opts).compile(nets, rng);
  for (int64_t b = 0; b < kB; ++b)
    array->load_model(b, *fresh[static_cast<size_t>(b)]);
  expect_equivalent(*array, fresh, xs);
}

TEST(FusionPlan, UnfusedUnitsOwnClonedReplicas) {
  // Regression for the donor write-through footgun: unfused units used to
  // alias the donor models' own submodules, so load_model (and training)
  // silently mutated the donors. They now own Module::clone() replicas.
  Rng rng(20);
  std::vector<std::shared_ptr<nn::Module>> nets, fresh;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    nets.push_back(mlp(6, 10, 4, rng));
    fresh.push_back(mlp(6, 10, 4, rng));
    xs.push_back(Tensor::randn({5, 6}, rng));
  }
  FusionOptions opts;
  opts.output_layout = Layout::kModelMajor;
  opts.fuse_mask = {true, true, false};  // fc2 runs as B unfused replicas
  auto array = FusionPlan(kB, opts).compile(nets, rng);

  // The adapter's replicas are distinct objects, not the donors.
  auto adapter = std::dynamic_pointer_cast<UnfusedBlockAdapter>(
      array->steps().back().module);
  ASSERT_NE(adapter, nullptr);
  for (int64_t b = 0; b < kB; ++b) {
    const auto& donor_fc2 =
        static_cast<const nn::Sequential&>(*nets[static_cast<size_t>(b)])
            .at(2);
    EXPECT_NE(adapter->replicas()[static_cast<size_t>(b)].get(),
              donor_fc2.get())
        << "replica " << b << " aliases its donor";
  }

  // (1) load_model with new weights must not touch the donors.
  std::vector<Tensor> donor_before;
  for (const auto& n : nets)
    for (const auto& p : n->parameters())
      donor_before.push_back(p.value().clone());
  for (int64_t b = 0; b < kB; ++b)
    array->load_model(b, *fresh[static_cast<size_t>(b)]);
  size_t i = 0;
  for (const auto& n : nets)
    for (const auto& p : n->parameters())
      EXPECT_EQ(ops::max_abs_diff(donor_before[i++], p.value()), 0.f)
          << "load_model mutated a donor";

  // (2) mutating the array (an "optimizer step") must not touch the donors
  // either, and vice versa: donor edits must not change the array's output.
  Tensor x = pack_channel_fused(xs);
  for (auto& p : array->parameters()) {
    Tensor v = p.mutable_value();
    v.add_(Tensor::ones(v.shape()), 1e-2f);
  }
  i = 0;
  for (const auto& n : nets)
    for (const auto& p : n->parameters())
      EXPECT_EQ(ops::max_abs_diff(donor_before[i++], p.value()), 0.f)
          << "array mutation wrote through to a donor";
  Tensor y_before = array->forward(ag::Variable(x)).value();
  for (const auto& n : nets)
    for (auto& p : n->parameters()) {
      Tensor v = p.mutable_value();
      v.add_(Tensor::ones(v.shape()), 1.f);
    }
  Tensor y_after = array->forward(ag::Variable(x)).value();
  EXPECT_EQ(ops::max_abs_diff(y_before, y_after), 0.f)
      << "donor mutation changed the array";

  // (3) after reloading, the array still computes the fresh models exactly.
  for (int64_t b = 0; b < kB; ++b)
    array->load_model(b, *fresh[static_cast<size_t>(b)]);
  expect_equivalent(*array, fresh, xs);
}

TEST(FusionPlan, StructureOnlyCompileMatchesAfterLoad) {
  // compile_structure_only lowers ONE template graph and skips weight
  // loading; after load_model the array must be exactly equivalent to the
  // per-model nets — including across masked-off (cloned-replica) units.
  Rng rng(21);
  auto tmpl = mlp(6, 10, 4, rng);
  std::vector<std::shared_ptr<nn::Module>> nets;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    nets.push_back(mlp(6, 10, 4, rng));
    xs.push_back(Tensor::randn({5, 6}, rng));
  }
  for (int m = 0; m < 8; ++m) {
    FusionOptions opts;
    opts.output_layout = Layout::kModelMajor;
    opts.fuse_mask = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    auto array = FusionPlan(kB, opts).compile_structure_only(tmpl, rng);
    for (int64_t b = 0; b < kB; ++b)
      array->load_model(b, *nets[static_cast<size_t>(b)]);
    expect_equivalent(*array, nets, xs);
  }
}

TEST(FusionPlan, StructureOnlyCompileLeavesTemplateUntouched) {
  Rng rng(22);
  auto tmpl = mlp(6, 10, 4, rng);
  std::vector<Tensor> before;
  for (const auto& p : tmpl->parameters()) before.push_back(p.value().clone());

  FusionOptions opts;
  opts.output_layout = Layout::kModelMajor;
  opts.fuse_mask = {true, false, false};
  auto array = FusionPlan(kB, opts).compile_structure_only(tmpl, rng);
  std::vector<std::shared_ptr<nn::Module>> fresh;
  for (int64_t b = 0; b < kB; ++b) {
    fresh.push_back(mlp(6, 10, 4, rng));
    array->load_model(b, *fresh.back());
  }
  for (auto& p : array->parameters()) {
    Tensor v = p.mutable_value();
    v.add_(Tensor::ones(v.shape()), 1.f);
  }
  const auto after = tmpl->parameters();
  for (size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(ops::max_abs_diff(before[i], after[i].value()), 0.f)
        << "structure-only compile mutated the template";
}

// A stateful composite without lowering OR clone support.
class StatefulOpaque : public nn::Module {
 public:
  explicit StatefulOpaque(Rng& rng) {
    w = register_parameter("w", Tensor::randn({2}, rng));
  }
  ag::Variable forward(const ag::Variable& x) override { return x; }
  std::string kind_name() const override { return "test::StatefulOpaque"; }
  ag::Variable w;
};

TEST(FusionPlan, StatefulUncloneableUnfusedUnitIsDiagnosed) {
  // An unfused unit must own its replicas; a stateful kind that cannot be
  // cloned is a structured FusionError (which layer, why), not a crash.
  Rng rng(24);
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < kB; ++b) {
    auto net = std::make_shared<nn::Sequential>();
    net->push_back("fc", std::make_shared<nn::Linear>(4, 4, true, rng));
    net->push_back("op", std::make_shared<StatefulOpaque>(rng));
    nets.push_back(net);
  }
  FusionOptions opts;
  opts.allow_unfused_fallback = true;
  try {
    FusionPlan(kB, opts).compile(nets, rng);
    FAIL() << "compile must reject a stateful, clone-less unfused unit";
  } catch (const FusionError& e) {
    EXPECT_EQ(e.diagnostic.path, "op");
    EXPECT_NE(e.diagnostic.reason.find("clone"), std::string::npos);
    EXPECT_NE(e.diagnostic.reason.find("test::StatefulOpaque"),
              std::string::npos);
  }
}

TEST(FusionPlan, StructureOnlyFallbackSharesStatelessKinds) {
  // An unregistered stateless kind behind allow_unfused_fallback may be
  // shared rather than cloned — nothing to write through — and the compile
  // still round-trips.
  Rng rng(23);
  auto tmpl = std::make_shared<nn::Sequential>();
  tmpl->push_back("fc1", std::make_shared<nn::Linear>(6, 8, true, rng));
  tmpl->push_back("dbl", std::make_shared<Doubler>());
  tmpl->push_back("fc2", std::make_shared<nn::Linear>(8, 3, true, rng));
  FusionOptions opts;
  opts.allow_unfused_fallback = true;
  opts.output_layout = Layout::kModelMajor;
  auto array = FusionPlan(kB, opts).compile_structure_only(tmpl, rng);
  EXPECT_FALSE(array->unit_fused(1));

  std::vector<std::shared_ptr<nn::Module>> nets;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    auto net = std::make_shared<nn::Sequential>();
    net->push_back("fc1", std::make_shared<nn::Linear>(6, 8, true, rng));
    net->push_back("dbl", std::make_shared<Doubler>());
    net->push_back("fc2", std::make_shared<nn::Linear>(8, 3, true, rng));
    nets.push_back(net);
    xs.push_back(Tensor::randn({4, 6}, rng));
    array->load_model(b, *net);
  }
  expect_equivalent(*array, nets, xs);
}

TEST(FusionPlan, TransformerLMLowersThroughRegistry) {
  Rng rng(13);
  models::TransformerConfig cfg = models::TransformerConfig::tiny();
  std::vector<std::shared_ptr<nn::Module>> lms;
  for (int64_t b = 0; b < kB; ++b)
    lms.push_back(std::make_shared<models::TransformerLM>(cfg, rng));
  auto array = FusionPlan(kB).compile(lms, rng);
  ASSERT_EQ(array->steps().size(), 1u);
  auto fused_lm = std::dynamic_pointer_cast<models::FusedTransformerLM>(
      array->steps()[0].module);
  ASSERT_NE(fused_lm, nullptr);

  std::vector<Tensor> toks;
  for (int64_t b = 0; b < kB; ++b) {
    Tensor t({2, cfg.seq_len});
    for (int64_t i = 0; i < t.numel(); ++i)
      t.data()[i] = static_cast<float>(rng.uniform_int(cfg.vocab));
    toks.push_back(t);
  }
  Tensor yf = fused_lm->forward_tokens(pack_model_major(toks)).value();
  for (int64_t b = 0; b < kB; ++b) {
    const size_t ub = static_cast<size_t>(b);
    Tensor yb = static_cast<models::TransformerLM&>(*lms[ub])
                    .forward_tokens(toks[ub])
                    .value();
    EXPECT_LT(rel_err(yf.slice(0, b, b + 1).reshape(yb.shape()), yb), 1e-3)
        << "model " << b;
  }
}

TEST(FusionPlan, EncoderLayerStackLowersThroughRegistry) {
  Rng rng(14);
  const int64_t E = 8, H = 2, FF = 16;
  std::vector<std::shared_ptr<nn::Module>> nets;
  std::vector<Tensor> xs;
  for (int64_t b = 0; b < kB; ++b) {
    auto net = std::make_shared<nn::Sequential>();
    net->push_back("enc0", std::make_shared<models::TransformerEncoderLayer>(
                               E, H, FF, 0.f, "relu", rng));
    net->push_back("enc1", std::make_shared<models::TransformerEncoderLayer>(
                               E, H, FF, 0.f, "gelu", rng));
    nets.push_back(net);
    xs.push_back(Tensor::randn({2, 5, E}, rng));  // [N, S, E]
  }
  auto array = FusionPlan(kB).compile(nets, rng);
  expect_equivalent(*array, nets, xs, 1e-3);
}

// ---- save_model / repack ---------------------------------------------------

// conv/BN/linear stack with one masked-off (unfused-adapter) unit: exercises
// fused block storers, the adapter's copy_state storer, and BN buffers.
std::shared_ptr<nn::Sequential> conv_bn_mlp(Rng& rng) {
  auto net = std::make_shared<nn::Sequential>();
  net->push_back("conv1",
                 std::make_shared<nn::Conv2d>(3, 8, 3, 1, 1, 1, true, rng));
  net->push_back("bn1", std::make_shared<nn::BatchNorm2d>(8));
  net->push_back("relu", std::make_shared<nn::ReLU>());
  net->push_back("pool", std::make_shared<nn::MaxPool2d>(2, 2));
  net->push_back("conv2",
                 std::make_shared<nn::Conv2d>(8, 4, 3, 2, 1, 1, true, rng));
  net->push_back("flatten", std::make_shared<nn::Flatten>());
  net->push_back("fc", std::make_shared<nn::Linear>(4 * 2 * 2, 5, true, rng));
  return net;
}

TEST(SaveModel, TrainSaveReloadRoundTripIsBitExact) {
  Rng rng(21);
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < kB; ++b) nets.push_back(conv_bn_mlp(rng));
  FusionOptions opts;
  opts.fuse_mask = {true, false, true, true, true, true, true};  // bn1 unfused
  opts.output_layout = Layout::kModelMajor;
  auto array = FusionPlan(kB, opts).compile(nets, rng);

  // Train a few steps so parameters AND BN running stats drift from init.
  // nn::SGD updates every parameter elementwise, which covers the unfused
  // adapter unit's owned replicas too (they are not FusedParams).
  nn::SGD opt(array->parameters(), {.lr = 0.05});
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  std::vector<Tensor> xs(static_cast<size_t>(kB), x);
  Tensor labels({kB, 2});
  for (int step = 0; step < 3; ++step) {
    opt.zero_grad();
    ag::Variable logits = array->forward(ag::Variable(pack_channel_fused(xs)));
    fused_cross_entropy(logits, labels, ag::Reduction::kMean).backward();
    opt.step();
  }

  // save -> reload into a second array; eval-mode forward (which consumes
  // the BN running stats) must agree to the last bit.
  std::vector<std::shared_ptr<nn::Module>> saved;
  for (int64_t b = 0; b < kB; ++b) {
    saved.push_back(nets[static_cast<size_t>(b)]->clone());
    array->save_model(b, *saved.back());
  }
  auto reloaded = FusionPlan(kB, opts).compile(saved, rng);
  array->eval();
  reloaded->eval();
  Tensor y1 = array->forward(ag::Variable(pack_channel_fused(xs))).value();
  Tensor y2 = reloaded->forward(ag::Variable(pack_channel_fused(xs))).value();
  EXPECT_DOUBLE_EQ(ops::max_abs_diff(y1, y2), 0.0);
}

TEST(SaveModel, CompositeEncoderLayerStoreIsDerivedFromStateMap) {
  // Store support used to be a per-kind hand-written lambda, and the
  // encoder layer shipped without one ("no store support"). Under the
  // schema-derived transfer it works like every other kind: save_model
  // round-trips every parameter bit-exactly.
  Rng rng(22);
  const int64_t E = 8, H = 2, FF = 16;
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < kB; ++b) {
    auto net = std::make_shared<nn::Sequential>();
    net->push_back("enc", std::make_shared<models::TransformerEncoderLayer>(
                              E, H, FF, 0.f, "relu", rng));
    nets.push_back(net);
  }
  auto array = FusionPlan(kB).compile(nets, rng);
  for (int64_t b = 0; b < kB; ++b) {
    const std::shared_ptr<nn::Module> out = nets[b]->clone();
    // Scramble the clone so the comparison can only pass if save_model
    // actually wrote every tensor.
    for (auto& [name, p] : out->named_parameters())
      p.mutable_value().fill_(-7.5f);
    array->save_model(b, *out);
    const auto want = nets[b]->named_parameters();
    const auto got = out->named_parameters();
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(ops::max_abs_diff(want[i].second.value(),
                                  got[i].second.value()),
                0.f)
          << want[i].first;
  }
}

TEST(Repack, SurvivorsContinueBitExactlyAfterHalving) {
  Rng rng(31);
  // Serial reference: three independent trainings with per-model lrs.
  std::vector<std::shared_ptr<nn::Module>> nets;
  std::vector<std::shared_ptr<nn::Module>> serial;
  std::vector<std::unique_ptr<nn::Adam>> serial_opts;
  const HyperVec lrs = {1e-2, 2e-2, 3e-2};
  for (int64_t b = 0; b < kB; ++b) {
    nets.push_back(mlp(6, 10, 4, rng));
    serial.push_back(nets.back()->clone());
    serial_opts.push_back(std::make_unique<nn::Adam>(
        serial.back()->parameters(),
        nn::Adam::Options{.lr = lrs[static_cast<size_t>(b)]}));
  }
  FusionOptions opts;
  opts.output_layout = Layout::kModelMajor;
  auto array = FusionPlan(kB, opts).compile(nets, rng);
  auto opt = std::make_unique<FusedAdam>(collect_fused_parameters(*array, kB),
                                         kB, FusedAdam::Options{.lr = lrs});

  Tensor x = Tensor::randn({5, 6}, rng);
  Tensor y({5});  // class-0 labels
  auto train_fused = [&](FusedArray& a, FusedOptimizer& o, int64_t B,
                         int steps) {
    std::vector<Tensor> xb(static_cast<size_t>(B), x);
    Tensor lb({B, 5});
    for (int s = 0; s < steps; ++s) {
      o.zero_grad();
      ag::Variable logits = a.forward(ag::Variable(pack_channel_fused(xb)));
      // (1/N) * sum-CE: backward scales rows by the exact float(1/N) the
      // serial kMean loss uses — bit-exact for any B (see executor.cpp).
      ag::mul_scalar(fused_cross_entropy(logits, lb, ag::Reduction::kSum),
                     1.f / 5.f)
          .backward();
      o.step();
    }
  };
  auto train_serial = [&](size_t b, int steps) {
    for (int s = 0; s < steps; ++s) {
      serial_opts[b]->zero_grad();
      ag::cross_entropy(serial[b]->forward(ag::Variable(x)), y,
                        ag::Reduction::kMean)
          .backward();
      serial_opts[b]->step();
    }
  };

  train_fused(*array, *opt, kB, 4);
  for (size_t b = 0; b < static_cast<size_t>(kB); ++b) train_serial(b, 4);

  // Halve: keep models 2 and 0 (order scrambled on purpose); model 1 dies.
  const std::vector<int64_t> keep = {2, 0};
  const FusionPlan plan2(2, opts);
  auto array2 = plan2.repack(*array, keep, *nets[0], rng);
  auto opt2 = std::make_unique<FusedAdam>(
      collect_fused_parameters(*array2, 2), 2,
      FusedAdam::Options{.lr = select_hyper(lrs, keep)});
  opt2->repack_state_from(*opt, keep);

  train_fused(*array2, *opt2, 2, 3);
  train_serial(2, 3);
  train_serial(0, 3);

  // The repacked array's models must equal the surviving serial runs to the
  // last bit — parameters and forward outputs alike.
  Tensor yf = array2->forward(ag::Variable(pack_channel_fused(
                                  std::vector<Tensor>(2, x))))
                  .value();
  for (size_t j = 0; j < keep.size(); ++j) {
    const size_t b = static_cast<size_t>(keep[j]);
    Tensor yb = serial[b]->forward(ag::Variable(x)).value();
    EXPECT_DOUBLE_EQ(
        ops::max_abs_diff(
            yf.slice(0, static_cast<int64_t>(j), static_cast<int64_t>(j) + 1)
                .reshape(yb.shape()),
            yb),
        0.0)
        << "survivor " << j;
    auto tree = nets[0]->clone();
    array2->save_model(static_cast<int64_t>(j), *tree);
    const auto got = tree->named_parameters();
    const auto want = serial[b]->named_parameters();
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
      EXPECT_DOUBLE_EQ(
          ops::max_abs_diff(got[i].second.value(), want[i].second.value()),
          0.0)
          << got[i].first;
  }
}

// ---- registry-parameterized state round-trip --------------------------------

// The per-kind factories live in kind_factories.h, shared with
// step_program_test so every registered lowering is covered by BOTH the
// state round-trip here and the capture/replay bit-exactness suite.
using tests::KindFactory;
using tests::kind_factories;

TEST(StateSchema, EveryRegisteredKindRoundTripsSaveLoadBitExactly) {
  // Parameterized over the ENTIRE LoweringRegistry: compile B congruent
  // replicas of each kind, then save every model back out into a scrambled
  // clone and demand bit equality for all parameters and buffers. The
  // companion guarantee is at compile time — a lowering whose StateMap
  // misses any per-model tensor throws a structured FusionError — so a
  // future registration cannot silently ship without (complete) state
  // transfer. The factory-coverage check below makes the same registration
  // fail THIS test until it is added here.
  const std::map<std::string, KindFactory> factories = kind_factories();
  for (const std::string& kind :
       LoweringRegistry::instance().supported_kinds()) {
    // "test::" kinds are deliberately-broken fixtures other tests register
    // into the process-wide registry (IncompleteStateMapFailsTheCompile);
    // order-independence demands they be excluded, not covered.
    if (kind.rfind("test::", 0) == 0) continue;
    ASSERT_TRUE(factories.count(kind))
        << "kind '" << kind
        << "' is registered but has no round-trip factory — add one to "
           "kind_factories()";
  }
  Rng rng(77);
  for (const auto& [kind, make] : factories) {
    ASSERT_NE(LoweringRegistry::instance().find(kind), nullptr)
        << "factory for '" << kind << "' has no registered lowering";
    std::vector<std::shared_ptr<nn::Module>> donors;
    for (int64_t b = 0; b < kB; ++b) donors.push_back(make(rng));
    std::shared_ptr<FusedArray> array;
    ASSERT_NO_THROW(array = FusionPlan(kB).compile(donors, rng))
        << "kind " << kind;
    for (int64_t b = 0; b < kB; ++b) {
      const size_t ub = static_cast<size_t>(b);
      std::shared_ptr<nn::Module> out = donors[ub]->clone();
      ASSERT_NE(out, nullptr) << "kind " << kind << " has no clone support";
      for (auto& [name, p] : out->named_parameters())
        p.mutable_value().fill_(-7.5f);
      for (auto& [name, t] : nn::named_buffers_recursive(*out)) {
        Tensor handle = t;
        handle.fill_(-7.5f);
      }
      array->save_model(b, *out);
      const auto wp = donors[ub]->named_parameters();
      const auto gp = out->named_parameters();
      ASSERT_EQ(wp.size(), gp.size()) << kind;
      for (size_t i = 0; i < wp.size(); ++i)
        EXPECT_EQ(ops::max_abs_diff(wp[i].second.value(),
                                    gp[i].second.value()),
                  0.f)
            << kind << " param " << wp[i].first << " model " << b;
      const auto wb = nn::named_buffers_recursive(*donors[ub]);
      const auto gb = nn::named_buffers_recursive(*out);
      ASSERT_EQ(wb.size(), gb.size()) << kind;
      for (size_t i = 0; i < wb.size(); ++i)
        EXPECT_EQ(ops::max_abs_diff(wb[i].second, gb[i].second), 0.f)
            << kind << " buffer " << wb[i].first << " model " << b;
    }
  }
}

TEST(StateSchema, IncompleteStateMapFailsTheCompile) {
  // A kind whose fused module forgets part of its state in state_map()
  // must be rejected at lowering time with a structured diagnostic — this
  // is the auto-fail that replaced the trailing-nullptr store footgun.
  struct HalfMapped : FusedModule {
    ag::Variable w;
    explicit HalfMapped(int64_t B) : FusedModule(B) {
      w = register_parameter("w", Tensor::zeros({B * 2}));
    }
    ag::Variable forward(const ag::Variable& x) override { return x; }
    StateMap state_map() const override { return {}; }  // forgets "w"
  };
  struct PlainPair : nn::Module {
    PlainPair() { register_parameter("w", Tensor::zeros({2})); }
    ag::Variable forward(const ag::Variable& x) override { return x; }
    std::string kind_name() const override { return "test::PlainPair"; }
  };
  // Register exactly once: the registry is a process-wide singleton, so
  // re-registering under --gtest_repeat would be harmless but sloppy.
  static const bool registered = [] {
    LoweringRegistry::instance().add(
        "test::PlainPair", [](const LoweringContext& ctx) {
          return Lowered{std::make_shared<HalfMapped>(ctx.array_size),
                         Layout::kAny, Layout::kAny};
        });
    return true;
  }();
  (void)registered;
  Rng rng(5);
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < kB; ++b) nets.push_back(std::make_shared<PlainPair>());
  try {
    FusionPlan(kB).compile(nets, rng);
    FAIL() << "expected FusionError";
  } catch (const FusionError& e) {
    EXPECT_NE(e.diagnostic.reason.find("state"), std::string::npos);
    EXPECT_NE(e.diagnostic.reason.find("'w'"), std::string::npos);
  }
}

TEST(RepackMulti, SurvivorsFromTwoArraysMergeAndContinueBitExactly) {
  Rng rng(41);
  // Six independent serial trainings; the fused side trains them as TWO
  // B=3 arrays (the chunked-rung case), then merges one survivor of each
  // into a single B=2 array that must continue bit-exactly.
  std::vector<std::shared_ptr<nn::Module>> nets;
  std::vector<std::shared_ptr<nn::Module>> serial;
  std::vector<std::unique_ptr<nn::Adam>> serial_opts;
  const HyperVec lrs = {1e-2, 2e-2, 3e-2, 4e-3, 5e-3, 6e-3};
  for (size_t b = 0; b < 6; ++b) {
    nets.push_back(mlp(6, 10, 4, rng));
    serial.push_back(nets.back()->clone());
    serial_opts.push_back(std::make_unique<nn::Adam>(
        serial.back()->parameters(), nn::Adam::Options{.lr = lrs[b]}));
  }
  FusionOptions opts;
  opts.output_layout = Layout::kModelMajor;
  auto arrayA = FusionPlan(kB, opts).compile(
      {nets[0], nets[1], nets[2]}, rng);
  auto arrayB = FusionPlan(kB, opts).compile(
      {nets[3], nets[4], nets[5]}, rng);
  auto optA = std::make_unique<FusedAdam>(
      collect_fused_parameters(*arrayA, kB), kB,
      FusedAdam::Options{.lr = {lrs[0], lrs[1], lrs[2]}});
  auto optB = std::make_unique<FusedAdam>(
      collect_fused_parameters(*arrayB, kB), kB,
      FusedAdam::Options{.lr = {lrs[3], lrs[4], lrs[5]}});

  Tensor x = Tensor::randn({5, 6}, rng);
  Tensor y({5});  // class-0 labels
  auto train_fused = [&](FusedArray& a, FusedOptimizer& o, int64_t B,
                         int steps) {
    std::vector<Tensor> xb(static_cast<size_t>(B), x);
    Tensor lb({B, 5});
    for (int s = 0; s < steps; ++s) {
      o.zero_grad();
      ag::Variable logits = a.forward(ag::Variable(pack_channel_fused(xb)));
      ag::mul_scalar(fused_cross_entropy(logits, lb, ag::Reduction::kSum),
                     1.f / 5.f)
          .backward();
      o.step();
    }
  };
  auto train_serial = [&](size_t b, int steps) {
    for (int s = 0; s < steps; ++s) {
      serial_opts[b]->zero_grad();
      ag::cross_entropy(serial[b]->forward(ag::Variable(x)), y,
                        ag::Reduction::kMean)
          .backward();
      serial_opts[b]->step();
    }
  };

  train_fused(*arrayA, *optA, kB, 4);
  train_fused(*arrayB, *optB, kB, 4);
  for (size_t b = 0; b < 6; ++b) train_serial(b, 4);

  // Survivors: model 1 of array A and model 2 of array B.
  const std::vector<RepackPick> picks = {{0, 1}, {1, 2}};
  const FusionPlan plan2(2, opts);
  auto merged = plan2.repack_multi({arrayA.get(), arrayB.get()}, picks,
                                   *nets[0], rng);
  auto opt2 = std::make_unique<FusedAdam>(
      collect_fused_parameters(*merged, 2), 2,
      FusedAdam::Options{.lr = {lrs[1], lrs[5]}});
  opt2->repack_state_from({optA.get(), optB.get()}, picks);

  train_fused(*merged, *opt2, 2, 3);
  train_serial(1, 3);
  train_serial(5, 3);

  const size_t survivors[2] = {1, 5};
  Tensor yf = merged
                  ->forward(ag::Variable(
                      pack_channel_fused(std::vector<Tensor>(2, x))))
                  .value();
  for (size_t j = 0; j < 2; ++j) {
    const size_t b = survivors[j];
    Tensor yb = serial[b]->forward(ag::Variable(x)).value();
    EXPECT_DOUBLE_EQ(
        ops::max_abs_diff(
            yf.slice(0, static_cast<int64_t>(j), static_cast<int64_t>(j) + 1)
                .reshape(yb.shape()),
            yb),
        0.0)
        << "survivor " << j;
    auto tree = nets[0]->clone();
    merged->save_model(static_cast<int64_t>(j), *tree);
    const auto got = tree->named_parameters();
    const auto want = serial[b]->named_parameters();
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
      EXPECT_DOUBLE_EQ(
          ops::max_abs_diff(got[i].second.value(), want[i].second.value()),
          0.0)
          << got[i].first;
  }
}

TEST(RepackMulti, AdamRejectsSourcesWithMismatchedStepCounts) {
  Rng rng(43);
  std::vector<std::shared_ptr<nn::Module>> netsA, netsB;
  for (int64_t b = 0; b < 2; ++b) {
    netsA.push_back(mlp(4, 6, 2, rng));
    netsB.push_back(mlp(4, 6, 2, rng));
  }
  FusionOptions opts;
  opts.output_layout = Layout::kModelMajor;
  auto arrayA = FusionPlan(2, opts).compile(netsA, rng);
  auto arrayB = FusionPlan(2, opts).compile(netsB, rng);
  auto optA = std::make_unique<FusedAdam>(
      collect_fused_parameters(*arrayA, 2), 2, FusedAdam::Options{});
  auto optB = std::make_unique<FusedAdam>(
      collect_fused_parameters(*arrayB, 2), 2, FusedAdam::Options{});
  Tensor x = Tensor::randn({3, 4}, rng);
  Tensor lb({2, 3});
  auto step = [&](FusedArray& a, FusedAdam& o) {
    o.zero_grad();
    ag::Variable logits =
        a.forward(ag::Variable(pack_channel_fused({x, x})));
    ag::mul_scalar(fused_cross_entropy(logits, lb, ag::Reduction::kSum),
                   1.f / 3.f)
        .backward();
    o.step();
  };
  step(*arrayA, *optA);
  step(*arrayB, *optB);
  step(*arrayB, *optB);  // B is one step ahead of A

  auto merged = FusionPlan(2, opts).repack_multi(
      {arrayA.get(), arrayB.get()}, {{0, 0}, {1, 1}}, *netsA[0], rng);
  auto opt2 = std::make_unique<FusedAdam>(
      collect_fused_parameters(*merged, 2), 2, FusedAdam::Options{});
  EXPECT_THROW(
      opt2->repack_state_from({optA.get(), optB.get()},
                              std::vector<RepackPick>{{0, 0}, {1, 1}}),
      Error);
}

TEST(FusionPlan, DescribeListsUnitsAndLayouts) {
  Rng rng(15);
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (int64_t b = 0; b < kB; ++b) nets.push_back(mlp(4, 6, 2, rng));
  FusionOptions opts;
  opts.fuse_mask = {true, true, false};
  auto array = FusionPlan(kB, opts).compile(nets, rng);
  const std::string d = array->describe();
  EXPECT_NE(d.find("unit 0"), std::string::npos);
  EXPECT_NE(d.find("Linear"), std::string::npos);
  EXPECT_NE(d.find("unfused"), std::string::npos);
  EXPECT_NE(d.find("model-major"), std::string::npos);
}

}  // namespace
}  // namespace hfta::fused
