// nn module library tests: layers, normalization, dropout, optimizers,
// schedulers, and a small end-to-end training sanity check.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/norm.h"
#include "nn/optim.h"
#include "nn/sched.h"
#include "tensor/ops.h"

namespace hfta::nn {
namespace {

TEST(Module, ParameterRegistrationAndNames) {
  Rng rng(1);
  Sequential seq;
  seq.push_back(std::make_shared<Linear>(4, 8, true, rng));
  seq.push_back(std::make_shared<ReLU>());
  seq.push_back(std::make_shared<Linear>(8, 2, true, rng));
  auto named = seq.named_parameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "0.weight");
  EXPECT_EQ(named[1].first, "0.bias");
  EXPECT_EQ(named[2].first, "2.weight");
  EXPECT_EQ(seq.num_parameters(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(Module, ZeroGradClearsGrads) {
  Rng rng(2);
  Linear lin(3, 2, true, rng);
  ag::Variable x(Tensor::randn({4, 3}, rng));
  ag::sum_all(lin.forward(x)).backward();
  EXPECT_GT(ops::max_abs_diff(lin.weight.grad(),
                              Tensor::zeros(lin.weight.shape())),
            0.f);
  lin.zero_grad();
  EXPECT_EQ(ops::max_abs_diff(lin.weight.grad(),
                              Tensor::zeros(lin.weight.shape())),
            0.f);
}

TEST(Module, TrainEvalPropagates) {
  Rng rng(3);
  auto drop = std::make_shared<Dropout>(0.5f);
  Sequential seq;
  seq.push_back(drop);
  seq.eval();
  EXPECT_FALSE(drop->is_training());
  seq.train();
  EXPECT_TRUE(drop->is_training());
}

TEST(Layers, LinearShapes) {
  Rng rng(4);
  Linear lin(6, 3, true, rng);
  ag::Variable x(Tensor::randn({5, 6}, rng));
  EXPECT_EQ(lin.forward(x).shape(), (Shape{5, 3}));
}

TEST(Layers, Conv2dOutputShape) {
  Rng rng(5);
  Conv2d conv(3, 8, 3, 2, 1, 1, true, rng);
  ag::Variable x(Tensor::randn({2, 3, 16, 16}, rng));
  EXPECT_EQ(conv.forward(x).shape(), (Shape{2, 8, 8, 8}));
}

TEST(Layers, ConvTranspose2dUpsamples) {
  Rng rng(6);
  ConvTranspose2d conv(8, 4, 4, 2, 1, 0, 1, false, rng);
  ag::Variable x(Tensor::randn({2, 8, 5, 5}, rng));
  EXPECT_EQ(conv.forward(x).shape(), (Shape{2, 4, 10, 10}));
}

TEST(Layers, DropoutEvalIsIdentityAndTrainScales) {
  Rng rng(7);
  Dropout drop(0.5f, 99);
  ag::Variable x(Tensor::ones({1000}));
  drop.eval();
  EXPECT_EQ(ops::max_abs_diff(drop.forward(x).value(), x.value()), 0.f);
  drop.train();
  Tensor y = drop.forward(x).value();
  // Entries are 0 or 2; mean stays ~1.
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(y.data()[i] == 0.f || y.data()[i] == 2.f);
    zeros += y.data()[i] == 0.f;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.5, 0.08);
}

TEST(Layers, Dropout2dDropsWholeChannels) {
  Rng rng(8);
  Dropout2d drop(0.5f, 123);
  ag::Variable x(Tensor::ones({2, 16, 3, 3}));
  Tensor y = drop.forward(x).value();
  for (int64_t n = 0; n < 2; ++n)
    for (int64_t c = 0; c < 16; ++c) {
      const float first = y.at({n, c, 0, 0});
      for (int64_t h = 0; h < 3; ++h)
        for (int64_t w = 0; w < 3; ++w)
          EXPECT_EQ(y.at({n, c, h, w}), first);
    }
}

TEST(Norm, BatchNorm2dNormalizesBatch) {
  Rng rng(9);
  BatchNorm2d bn(4);
  ag::Variable x(Tensor::randn({8, 4, 5, 5}, rng));
  Tensor y = bn.forward(x).value();
  // Per-channel mean ~0, var ~1.
  Tensor m = ops::mean(y, {0, 2, 3}, false);
  for (int64_t c = 0; c < 4; ++c) EXPECT_NEAR(m.at({c}), 0.f, 1e-4f);
  Tensor v = ops::mean(ops::mul(y, y), {0, 2, 3}, false);
  for (int64_t c = 0; c < 4; ++c) EXPECT_NEAR(v.at({c}), 1.f, 1e-2f);
}

TEST(Norm, BatchNormRunningStatsConvergeAndEvalUsesThem) {
  Rng rng(10);
  BatchNorm1d bn(3);
  // Feed batches with mean 2, std 1 -> running_mean -> 2.
  for (int i = 0; i < 200; ++i) {
    Tensor x = Tensor::randn({64, 3}, rng);
    x.add_(Tensor::full({64, 3}, 2.f));
    bn.forward(ag::Variable(x));
  }
  EXPECT_NEAR(bn.running_mean.at({0}), 2.f, 0.15f);
  EXPECT_NEAR(bn.running_var.at({0}), 1.f, 0.25f);
  bn.eval();
  Tensor x = Tensor::full({4, 3}, 2.f);
  Tensor y = bn.forward(ag::Variable(x)).value();
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y.data()[i], 0.f, 0.3f);
}

TEST(Norm, LayerNormPerRow) {
  Rng rng(11);
  LayerNorm ln({6}, 1e-5f, rng);
  ag::Variable x(Tensor::randn({4, 6}, rng));
  Tensor y = ln.forward(x).value();
  for (int64_t n = 0; n < 4; ++n) {
    float mean = 0.f, var = 0.f;
    for (int64_t e = 0; e < 6; ++e) mean += y.at({n, e});
    mean /= 6.f;
    for (int64_t e = 0; e < 6; ++e) {
      const float d = y.at({n, e}) - mean;
      var += d * d;
    }
    EXPECT_NEAR(mean, 0.f, 1e-4f);
    EXPECT_NEAR(var / 6.f, 1.f, 1e-2f);
  }
}

// ---- optimizers: closed-form single-step checks -----------------------------

TEST(Optim, SGDSingleStep) {
  ag::Variable p(Tensor::full({1}, 1.f), true);
  p.grad().fill_(0.5f);
  SGD opt({p}, {.lr = 0.1});
  opt.step();
  EXPECT_NEAR(p.value().item(), 1.f - 0.1f * 0.5f, 1e-6f);
}

TEST(Optim, SGDMomentumAccumulates) {
  ag::Variable p(Tensor::full({1}, 0.f), true);
  SGD opt({p}, {.lr = 1.0, .momentum = 0.9});
  p.grad().fill_(1.f);
  opt.step();  // buf = 1, p = -1
  EXPECT_NEAR(p.value().item(), -1.f, 1e-6f);
  opt.step();  // buf = 1.9, p = -2.9
  EXPECT_NEAR(p.value().item(), -2.9f, 1e-5f);
}

TEST(Optim, AdamFirstStepIsLrSized) {
  // With bias correction, |first step| == lr for any nonzero gradient.
  ag::Variable p(Tensor::full({1}, 0.f), true);
  Adam opt({p}, {.lr = 0.01});
  p.grad().fill_(123.f);
  opt.step();
  EXPECT_NEAR(p.value().item(), -0.01f, 1e-5f);
}

TEST(Optim, WeightDecayPullsTowardZero) {
  ag::Variable p(Tensor::full({1}, 10.f), true);
  SGD opt({p}, {.lr = 0.1, .weight_decay = 0.5});
  p.grad().fill_(0.f);
  opt.step();
  EXPECT_NEAR(p.value().item(), 10.f - 0.1f * 0.5f * 10.f, 1e-5f);
}

TEST(Optim, QuadraticBowlConvergence) {
  // min (p - 3)^2 with each optimizer.
  for (int which = 0; which < 3; ++which) {
    ag::Variable p(Tensor::zeros({1}), true);
    std::unique_ptr<Optimizer> opt;
    if (which == 0) opt = std::make_unique<SGD>(std::vector<ag::Variable>{p},
                                                SGD::Options{.lr = 0.1});
    if (which == 1) opt = std::make_unique<Adam>(std::vector<ag::Variable>{p},
                                                 Adam::Options{.lr = 0.3});
    if (which == 2)
      opt = std::make_unique<Adadelta>(std::vector<ag::Variable>{p},
                                       Adadelta::Options{.lr = 8.0});
    for (int i = 0; i < 300; ++i) {
      opt->zero_grad();
      ag::Variable loss =
          ag::pow_scalar(ag::add_scalar(p, -3.f), 2.f);
      loss.backward();
      opt->step();
    }
    EXPECT_NEAR(p.value().item(), 3.f, 0.2f) << "optimizer " << which;
  }
}

TEST(Sched, StepLRDecaysInStages) {
  ag::Variable p(Tensor::zeros({1}), true);
  SGD opt({p}, {.lr = 1.0});
  StepLR sched(opt, /*step_size=*/3, /*gamma=*/0.1);
  std::vector<double> lrs;
  for (int e = 0; e < 7; ++e) {
    lrs.push_back(opt.lr());
    sched.step();
  }
  EXPECT_DOUBLE_EQ(lrs[0], 1.0);
  EXPECT_DOUBLE_EQ(lrs[2], 1.0);
  EXPECT_NEAR(lrs[3], 0.1, 1e-12);
  EXPECT_NEAR(lrs[6], 0.01, 1e-12);
}

TEST(Sched, ExponentialAndCosine) {
  ag::Variable p(Tensor::zeros({1}), true);
  SGD opt({p}, {.lr = 1.0});
  ExponentialLR exp_sched(opt, 0.5);
  EXPECT_NEAR(exp_sched.lr_at(3), 0.125, 1e-12);
  CosineAnnealingLR cos_sched(opt, 10, 0.0);
  EXPECT_NEAR(cos_sched.lr_at(0), 1.0, 1e-12);
  EXPECT_NEAR(cos_sched.lr_at(10), 0.0, 1e-12);
  EXPECT_NEAR(cos_sched.lr_at(5), 0.5, 1e-12);
}

TEST(EndToEnd, TinyMLPLearnsXor) {
  Rng rng(12);
  Sequential net;
  net.push_back(std::make_shared<Linear>(2, 16, true, rng));
  net.push_back(std::make_shared<Tanh>());
  net.push_back(std::make_shared<Linear>(16, 2, true, rng));
  Tensor x = Tensor::from_data({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor labels = Tensor::from_data({4}, {0, 1, 1, 0});
  Adam opt(net.parameters(), {.lr = 0.05});
  float last_loss = 1e9f;
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    ag::Variable loss = ag::cross_entropy(net.forward(ag::Variable(x)), labels,
                                          ag::Reduction::kMean);
    loss.backward();
    opt.step();
    last_loss = loss.value().item();
  }
  EXPECT_LT(last_loss, 0.05f);
  EXPECT_EQ(ops::accuracy(net.forward(ag::Variable(x)).value(), labels), 1.0);
}

}  // namespace
}  // namespace hfta::nn
