// HFHT tests: search-space partitioning (Appendix E / Fig. 12), Hyperband
// bracket arithmetic, scheduler cost ordering, and the end-to-end Fig. 8
// claims (HFTA cheapest; random search benefits more than Hyperband).
#include <gtest/gtest.h>

#include "hfht/tuner.h"

namespace hfta::hfht {
namespace {

TEST(Space, SamplesRespectRangesAndChoices) {
  SearchSpace space = SearchSpace::pointnet();
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    ParamSet p = space.sample(rng);
    ASSERT_EQ(p.size(), 8u);
    EXPECT_GE(p[0], 1e-4);  // lr range
    EXPECT_LE(p[0], 1e-2);
    EXPECT_TRUE(p[6] == 8 || p[6] == 16 || p[6] == 32);  // batch size
    EXPECT_TRUE(p[7] == 0 || p[7] == 1);                 // feature transform
  }
}

TEST(Space, InfusibleIndices) {
  SearchSpace space = SearchSpace::pointnet();
  auto inf = space.infusible_indices();
  ASSERT_EQ(inf.size(), 2u);  // batch size + feature transform
  EXPECT_EQ(inf[0], 6u);
  EXPECT_EQ(inf[1], 7u);
}

TEST(Space, PartitionGroupsByInfusibleValues) {
  // Fig. 12's example: sets sharing infusible values fuse together.
  SearchSpace space = SearchSpace::pointnet();
  std::vector<ParamSet> sets = {
      {1e-3, 0.9, 0.99, 0.0, 0.5, 10, 8, 0},
      {2e-3, 0.8, 0.99, 0.1, 0.5, 10, 8, 0},   // same partition as #0
      {1e-3, 0.9, 0.99, 0.0, 0.5, 10, 16, 0},  // batch differs
      {5e-4, 0.7, 0.99, 0.0, 0.5, 10, 8, 1},   // transform differs
      {9e-4, 0.6, 0.99, 0.2, 0.5, 20, 8, 0},   // same as #0
  };
  auto partitions = partition_by_infusible(space, sets);
  ASSERT_EQ(partitions.size(), 3u);
  size_t largest = 0;
  for (const auto& p : partitions) largest = std::max(largest, p.size());
  EXPECT_EQ(largest, 3u);  // {0, 1, 4}
}

TEST(Space, UnfuseAndReorderRestoresOrder) {
  SearchSpace space = SearchSpace::pointnet();
  std::vector<ParamSet> sets;
  Rng rng(2);
  for (int i = 0; i < 12; ++i) sets.push_back(space.sample(rng));
  auto partitions = partition_by_infusible(space, sets);
  // results = original index (as a value) scattered through partitions
  std::vector<std::vector<double>> partition_results;
  for (const auto& p : partitions) {
    std::vector<double> r;
    for (size_t idx : p) r.push_back(static_cast<double>(idx));
    partition_results.push_back(r);
  }
  auto restored = unfuse_and_reorder(partitions, partition_results, 12);
  for (size_t i = 0; i < 12; ++i)
    EXPECT_DOUBLE_EQ(restored[i], static_cast<double>(i));
}

TEST(RandomSearchAlgo, ProposesConfiguredBudgetOnce) {
  RandomSearch rs(SearchSpace::pointnet(), 60, 25, 3);
  auto batch = rs.propose();
  ASSERT_EQ(batch.size(), 60u);
  for (const Trial& t : batch) EXPECT_EQ(t.epochs, 25);
  std::vector<double> acc(batch.size(), 0.5);
  acc[17] = 0.9;
  rs.update(batch, acc);
  EXPECT_DOUBLE_EQ(rs.best_accuracy(), 0.9);
  EXPECT_TRUE(rs.propose().empty());
}

TEST(HyperbandAlgo, BracketScheduleArithmetic) {
  // PointNet config: R=250, eta=5 -> s_max = 3.
  Hyperband hb(SearchSpace::pointnet(), 250, 5, /*skip_last=*/1, 4);
  EXPECT_EQ(hb.s_max(), 3);
  auto rounds = hb.bracket_schedule(3);
  // skip_last=1: bracket 3 has s+1-1 = 3 rounds; first: n = ceil(4/4*125)
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_EQ(rounds[0].configs, 125);
  EXPECT_EQ(rounds[0].epochs, 2);  // R * eta^-3 = 250/125 = 2
  EXPECT_EQ(rounds[1].configs, 25);
  EXPECT_EQ(rounds[1].epochs, 10);
  EXPECT_EQ(rounds[2].configs, 5);
  EXPECT_EQ(rounds[2].epochs, 50);
}

TEST(HyperbandAlgo, KeepsTopConfigsBetweenRounds) {
  Hyperband hb(SearchSpace::pointnet(), 25, 5, 0, 5);  // s_max = 2
  auto r0 = hb.propose();
  ASSERT_GT(r0.size(), 1u);
  // Give the first trial the best accuracy; it must survive.
  std::vector<double> acc(r0.size(), 0.1);
  acc[0] = 0.99;
  hb.update(r0, acc);
  auto r1 = hb.propose();
  ASSERT_FALSE(r1.empty());
  EXPECT_LT(r1.size(), r0.size());
  EXPECT_EQ(r1[0].params, r0[0].params);
  EXPECT_GT(r1[0].epochs, r0[0].epochs);
}

TEST(HyperbandAlgo, TerminatesAfterAllBrackets) {
  Hyperband hb(SearchSpace::pointnet(), 25, 5, 0, 6);
  int iterations = 0;
  while (true) {
    auto batch = hb.propose();
    if (batch.empty()) break;
    std::vector<double> acc(batch.size(), 0.5);
    hb.update(batch, acc);
    ASSERT_LT(++iterations, 100) << "Hyperband failed to terminate";
  }
  EXPECT_GT(iterations, 2);
}

TEST(Accuracy, SurfaceIsDeterministicAndEpochMonotone) {
  SearchSpace space = SearchSpace::pointnet();
  ParamSet p = {1e-3, 0.9, 0.99, 0.05, 0.5, 10, 8, 1};
  const double a1 = synthetic_accuracy(space, p, 10, Task::kPointNet);
  const double a2 = synthetic_accuracy(space, p, 10, Task::kPointNet);
  EXPECT_DOUBLE_EQ(a1, a2);
  const double a_more = synthetic_accuracy(space, p, 100, Task::kPointNet);
  EXPECT_GT(a_more, a1);
  // a good lr beats a terrible one
  ParamSet bad = p;
  bad[0] = 1e-2;
  bad[3] = 0.5;
  EXPECT_GT(synthetic_accuracy(space, p, 50, Task::kPointNet),
            synthetic_accuracy(space, bad, 50, Task::kPointNet));
}

TEST(Scheduler, HftaCheaperThanSerialOnABatch) {
  SearchSpace space = SearchSpace::pointnet();
  Rng rng(7);
  std::vector<Trial> trials;
  for (int i = 0; i < 24; ++i) trials.push_back({space.sample(rng), 10});
  const auto dev = sim::v100();
  const auto serial = schedule_cost(trials, space, sim::Workload::kPointNetCls,
                                    dev, SchedulerKind::kSerial);
  const auto hfta = schedule_cost(trials, space, sim::Workload::kPointNetCls,
                                  dev, SchedulerKind::kHfta);
  EXPECT_GT(serial.gpu_hours, hfta.gpu_hours * 1.5);
  EXPECT_LT(hfta.jobs_launched, serial.jobs_launched);
}

TEST(Scheduler, SingleTrialCostsTheSameEverywhere) {
  SearchSpace space = SearchSpace::pointnet();
  Rng rng(8);
  std::vector<Trial> one = {{space.sample(rng), 5}};
  const auto dev = sim::v100();
  const auto a = schedule_cost(one, space, sim::Workload::kPointNetCls, dev,
                               SchedulerKind::kSerial);
  const auto b = schedule_cost(one, space, sim::Workload::kPointNetCls, dev,
                               SchedulerKind::kHfta);
  EXPECT_NEAR(a.gpu_hours, b.gpu_hours, 1e-9);
}

TEST(EndToEnd, Fig8CostOrderingAndSavings) {
  const auto dev = sim::v100();
  for (Task task : {Task::kPointNet, Task::kMobileNet}) {
    for (AlgorithmKind algo :
         {AlgorithmKind::kRandomSearch, AlgorithmKind::kHyperband}) {
      const auto serial =
          run_tuning(task, algo, SchedulerKind::kSerial, dev, 42);
      const auto hfta = run_tuning(task, algo, SchedulerKind::kHfta, dev, 42);
      // HFTA always cheapest (Fig. 8); savings can reach ~5x.
      EXPECT_LT(hfta.total_gpu_hours, serial.total_gpu_hours)
          << task_name(task) << "/" << algorithm_name(algo);
      // identical tuning decisions (same seed, same algorithm)
      EXPECT_DOUBLE_EQ(hfta.best_accuracy, serial.best_accuracy);
      EXPECT_EQ(hfta.total_trials, serial.total_trials);
    }
  }
}

TEST(EndToEnd, RandomSearchBenefitsMoreThanHyperband) {
  // §5.4 second observation: Hyperband's few-jobs-many-epochs iterations
  // leave less fusion opportunity.
  const auto dev = sim::v100();
  const auto rs_serial = run_tuning(Task::kPointNet,
                                    AlgorithmKind::kRandomSearch,
                                    SchedulerKind::kSerial, dev, 11);
  const auto rs_hfta = run_tuning(Task::kPointNet,
                                  AlgorithmKind::kRandomSearch,
                                  SchedulerKind::kHfta, dev, 11);
  const auto hb_serial = run_tuning(Task::kPointNet,
                                    AlgorithmKind::kHyperband,
                                    SchedulerKind::kSerial, dev, 11);
  const auto hb_hfta = run_tuning(Task::kPointNet, AlgorithmKind::kHyperband,
                                  SchedulerKind::kHfta, dev, 11);
  const double rs_saving = rs_serial.total_gpu_hours / rs_hfta.total_gpu_hours;
  const double hb_saving = hb_serial.total_gpu_hours / hb_hfta.total_gpu_hours;
  EXPECT_GT(rs_saving, hb_saving);
  EXPECT_GT(rs_saving, 2.0);  // paper: up to 5.10x
}

}  // namespace
}  // namespace hfta::hfht
