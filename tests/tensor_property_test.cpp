// Property-based tests on the tensor substrate: algebraic identities that
// must hold for arbitrary shapes and seeds (parameterized sweeps).
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/conv.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"

namespace hfta {
namespace {

struct Seeded {
  uint64_t seed;
};

class TensorProps : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng{GetParam()};

  Shape random_shape(int64_t max_rank = 4, int64_t max_dim = 5) {
    const int64_t rank = 1 + rng.uniform_int(max_rank);
    Shape s;
    for (int64_t i = 0; i < rank; ++i) s.push_back(1 + rng.uniform_int(max_dim));
    return s;
  }
};

TEST_P(TensorProps, AddIsCommutativeAndAssociative) {
  Shape s = random_shape();
  Tensor a = Tensor::randn(s, rng), b = Tensor::randn(s, rng),
         c = Tensor::randn(s, rng);
  EXPECT_LT(ops::max_abs_diff(ops::add(a, b), ops::add(b, a)), 1e-6f);
  EXPECT_LT(ops::max_abs_diff(ops::add(ops::add(a, b), c),
                              ops::add(a, ops::add(b, c))),
            1e-5f);
}

TEST_P(TensorProps, MulDistributesOverAdd) {
  Shape s = random_shape();
  Tensor a = Tensor::randn(s, rng), b = Tensor::randn(s, rng),
         c = Tensor::randn(s, rng);
  Tensor lhs = ops::mul(a, ops::add(b, c));
  Tensor rhs = ops::add(ops::mul(a, b), ops::mul(a, c));
  EXPECT_LT(ops::max_abs_diff(lhs, rhs), 1e-4f);
}

TEST_P(TensorProps, TransposeIsInvolution) {
  Tensor a = Tensor::randn({2 + rng.uniform_int(4), 2 + rng.uniform_int(4)},
                           rng);
  EXPECT_EQ(ops::max_abs_diff(a.transpose(0, 1).transpose(0, 1), a), 0.f);
}

TEST_P(TensorProps, PermuteInverseRestores) {
  Tensor a = Tensor::randn({2, 3, 4}, rng);
  std::vector<int64_t> perm = {2, 0, 1};
  std::vector<int64_t> inv(3);
  for (size_t i = 0; i < 3; ++i) inv[static_cast<size_t>(perm[i])] = static_cast<int64_t>(i);
  EXPECT_EQ(ops::max_abs_diff(a.permute(perm).permute(inv), a), 0.f);
}

TEST_P(TensorProps, SumOverAllDimsEqualsSumAll) {
  Shape s = random_shape(3);
  Tensor a = Tensor::randn(s, rng);
  std::vector<int64_t> dims;
  for (int64_t i = 0; i < a.dim(); ++i) dims.push_back(i);
  Tensor reduced = ops::sum(a, dims, false);
  EXPECT_NEAR(reduced.item(), ops::sum_all(a).item(),
              1e-4f * static_cast<float>(a.numel()));
}

TEST_P(TensorProps, MatmulAgreesWithTransposedForm) {
  const int64_t m = 1 + rng.uniform_int(6), k = 1 + rng.uniform_int(6),
                n = 1 + rng.uniform_int(6);
  Tensor a = Tensor::randn({m, k}, rng), b = Tensor::randn({k, n}, rng);
  // (A B)^T == B^T A^T
  Tensor lhs = ops::matmul(a, b).transpose(0, 1);
  Tensor rhs = ops::matmul(b.transpose(0, 1), a.transpose(0, 1));
  EXPECT_LT(ops::max_abs_diff(lhs, rhs), 1e-4f);
}

TEST_P(TensorProps, SoftmaxInvariantToShift) {
  Tensor a = Tensor::randn({3, 6}, rng);
  Tensor shifted = ops::add_scalar(a, 5.f);
  EXPECT_LT(ops::max_abs_diff(ops::softmax(a, 1), ops::softmax(shifted, 1)),
            1e-5f);
}

TEST_P(TensorProps, ConvLinearity) {
  // conv(x1 + x2, w) == conv(x1, w) + conv(x2, w)
  const int64_t C = 1 + rng.uniform_int(3);
  Tensor x1 = Tensor::randn({2, C, 6, 6}, rng);
  Tensor x2 = Tensor::randn({2, C, 6, 6}, rng);
  Tensor w = Tensor::randn({2, C, 3, 3}, rng);
  const auto args = ops::ConvArgs::make(1, 1);
  Tensor lhs = ops::conv2d(ops::add(x1, x2), w, Tensor(), args);
  Tensor rhs = ops::add(ops::conv2d(x1, w, Tensor(), args),
                        ops::conv2d(x2, w, Tensor(), args));
  EXPECT_LT(ops::max_abs_diff(lhs, rhs), 1e-3f);
}

TEST_P(TensorProps, ConvAdjointIdentity) {
  // <conv(x, w), y> == <x, conv_grad_input(y, w)> for random shapes.
  const int64_t C = 1 + rng.uniform_int(3);
  const int64_t F = 1 + rng.uniform_int(3);
  Tensor x = Tensor::randn({1, C, 7, 7}, rng);
  Tensor w = Tensor::randn({F, C, 3, 3}, rng);
  const auto args = ops::ConvArgs::make(2, 1);
  Tensor y = ops::conv2d(x, w, Tensor(), args);
  Tensor probe = Tensor::randn(y.shape(), rng);
  const float lhs = ops::sum_all(ops::mul(y, probe)).item();
  Tensor gx = ops::conv2d_grad_input(probe, w, x.shape(), args);
  const float rhs = ops::sum_all(ops::mul(x, gx)).item();
  EXPECT_NEAR(lhs, rhs, std::fabs(lhs) * 1e-3f + 1e-2f);
}

TEST_P(TensorProps, ReduceToShapeIsAdjointOfBroadcast) {
  // <broadcast(b), g> == <b, reduce_to_shape(g)>
  Tensor b = Tensor::randn({1 + rng.uniform_int(4)}, rng);
  Shape big = {2 + rng.uniform_int(3), b.size(0)};
  Tensor g = Tensor::randn(big, rng);
  Tensor broadcast = ops::add(Tensor::zeros(big), b);
  const float lhs = ops::sum_all(ops::mul(broadcast, g)).item();
  Tensor reduced = ops::reduce_to_shape(g, b.shape());
  const float rhs = ops::sum_all(ops::mul(b, reduced)).item();
  EXPECT_NEAR(lhs, rhs, std::fabs(lhs) * 1e-4f + 1e-3f);
}

TEST_P(TensorProps, GroupedConvEqualsBlockDiagonal) {
  // The fusion identity for random group counts: grouped conv == per-group
  // convs on channel slices.
  const int64_t g = 1 + rng.uniform_int(3);
  const int64_t cin_g = 1 + rng.uniform_int(2);
  const int64_t cout_g = 1 + rng.uniform_int(2);
  Tensor x = Tensor::randn({2, g * cin_g, 5, 5}, rng);
  Tensor w = Tensor::randn({g * cout_g, cin_g, 3, 3}, rng);
  Tensor grouped =
      ops::conv2d(x, w, Tensor(), ops::ConvArgs::make(1, 1, g));
  for (int64_t gi = 0; gi < g; ++gi) {
    Tensor xg = x.slice(1, gi * cin_g, (gi + 1) * cin_g);
    Tensor wg = w.slice(0, gi * cout_g, (gi + 1) * cout_g);
    Tensor yg = ops::conv2d(xg, wg, Tensor(), ops::ConvArgs::make(1, 1, 1));
    Tensor expected = grouped.slice(1, gi * cout_g, (gi + 1) * cout_g);
    EXPECT_LT(ops::max_abs_diff(yg, expected), 1e-4f) << "group " << gi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TensorProps,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace hfta
