// Conversion-kernel property tests: fp32 <-> fp16/bf16 round-trips for
// exactly-representable values, round-to-nearest-even ties, inf/nan
// propagation, subnormal handling, and the Tensor-level dtype axis
// (to(), clone/copy_/reshape, byte-sized pooled storage).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/rng.h"
#include "tensor/dtype.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace hfta {
namespace {

float rt_f16(float f) { return f16_bits_to_f32(f32_to_f16_bits(f)); }
float rt_bf16(float f) { return bf16_bits_to_f32(f32_to_bf16_bits(f)); }

uint32_t bits_of(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  return x;
}

TEST(DTypeTest, MetaHelpers) {
  EXPECT_STREQ(dtype_name(DType::kF32), "f32");
  EXPECT_STREQ(dtype_name(DType::kF16), "f16");
  EXPECT_STREQ(dtype_name(DType::kBF16), "bf16");
  EXPECT_EQ(dtype_size(DType::kF32), 4);
  EXPECT_EQ(dtype_size(DType::kF16), 2);
  EXPECT_EQ(dtype_size(DType::kBF16), 2);
}

TEST(DTypeTest, F16ExactValuesRoundTrip) {
  // Every value representable in binary16 must survive unchanged.
  const float exact[] = {0.0f,     -0.0f,   1.0f,      -1.0f,   0.5f,
                         2.75f,    -1024.f, 65504.f,   -65504.f,
                         0.0625f,  1.5f,    0.0009765625f /* 2^-10 */,
                         6.103515625e-05f /* 2^-14, smallest normal */};
  for (float f : exact) {
    EXPECT_EQ(bits_of(rt_f16(f)), bits_of(f)) << "value " << f;
  }
  // Sign of zero survives.
  EXPECT_EQ(bits_of(rt_f16(-0.0f)), 0x80000000u);
}

TEST(DTypeTest, BF16ExactValuesRoundTrip) {
  // bfloat16 = truncated f32: any f32 with 7 or fewer mantissa bits (and
  // any exponent) is exact.
  const float exact[] = {0.0f, -0.0f, 1.0f, -2.0f, 1.0078125f /* 1+2^-7 */,
                         std::ldexp(1.875f, 127),  // 3.19e38, near bf16 max
                         1.1754944e-38f /* smallest f32 normal */,
                         9.4039548e-38f /* 2^-123 */};
  for (float f : exact) {
    EXPECT_EQ(bits_of(rt_bf16(f)), bits_of(f)) << "value " << f;
  }
}

TEST(DTypeTest, F16RoundToNearestEvenTies) {
  // At 1.0 the f16 mantissa step is 2^-10; 1 + 2^-11 is an exact halfway
  // case and must round DOWN to the even mantissa (1.0).
  EXPECT_EQ(rt_f16(1.0f + std::ldexp(1.0f, -11)), 1.0f);
  // 1 + 3*2^-11 is halfway between 1+2^-10 (odd mantissa) and 1+2^-9
  // (even): ties-to-even rounds UP.
  EXPECT_EQ(rt_f16(1.0f + 3 * std::ldexp(1.0f, -11)),
            1.0f + std::ldexp(1.0f, -9));
  // Just above/below the tie rounds to nearest, not to even.
  EXPECT_EQ(rt_f16(std::nextafterf(1.0f + std::ldexp(1.0f, -11), 2.0f)),
            1.0f + std::ldexp(1.0f, -10));
  EXPECT_EQ(rt_f16(std::nextafterf(1.0f + std::ldexp(1.0f, -11), 0.0f)), 1.0f);
}

TEST(DTypeTest, BF16RoundToNearestEvenTies) {
  // bf16 mantissa step at 1.0 is 2^-7; 1 + 2^-8 ties down to 1.0, and
  // 1 + 3*2^-8 ties up to 1 + 2^-6.
  EXPECT_EQ(rt_bf16(1.0f + std::ldexp(1.0f, -8)), 1.0f);
  EXPECT_EQ(rt_bf16(1.0f + 3 * std::ldexp(1.0f, -8)),
            1.0f + std::ldexp(1.0f, -6));
}

TEST(DTypeTest, F16OverflowAndInfinity) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(rt_f16(inf), inf);
  EXPECT_EQ(rt_f16(-inf), -inf);
  // Beyond the halfway point to 2^16, finite values overflow to inf.
  EXPECT_EQ(rt_f16(65520.0f), inf);  // tie between 65504 and 65536 -> even
  EXPECT_EQ(rt_f16(70000.0f), inf);
  EXPECT_EQ(rt_f16(-70000.0f), -inf);
  // Just below the tie stays at the max finite value.
  EXPECT_EQ(rt_f16(65519.996f), 65504.0f);
}

TEST(DTypeTest, BF16OverflowAndInfinity) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(rt_bf16(inf), inf);
  EXPECT_EQ(rt_bf16(-inf), -inf);
  // f32 max (0x7f7fffff) is past the bf16 tie point: rounds to inf.
  EXPECT_EQ(rt_bf16(std::numeric_limits<float>::max()), inf);
}

TEST(DTypeTest, NaNPropagates) {
  EXPECT_TRUE(std::isnan(rt_f16(std::nanf(""))));
  EXPECT_TRUE(std::isnan(rt_bf16(std::nanf(""))));
  // A NaN whose payload lives entirely in the dropped bits must stay NaN.
  float sneaky;
  uint32_t sneaky_bits = 0x7f800001u;  // signalling-ish, payload in low bits
  std::memcpy(&sneaky, &sneaky_bits, sizeof(sneaky));
  EXPECT_TRUE(std::isnan(rt_f16(sneaky)));
  EXPECT_TRUE(std::isnan(rt_bf16(sneaky)));
}

TEST(DTypeTest, F16Subnormals) {
  const float min_sub = std::ldexp(1.0f, -24);   // smallest f16 subnormal
  const float min_norm = std::ldexp(1.0f, -14);  // smallest f16 normal
  EXPECT_EQ(rt_f16(min_sub), min_sub);
  EXPECT_EQ(rt_f16(5 * min_sub), 5 * min_sub);
  EXPECT_EQ(rt_f16(1023 * min_sub), 1023 * min_sub);  // largest subnormal
  EXPECT_EQ(rt_f16(-min_sub), -min_sub);
  // Halfway below the smallest subnormal ties to zero (even).
  EXPECT_EQ(rt_f16(std::ldexp(1.0f, -25)), 0.0f);
  // 1.5 * 2^-25 is past halfway: rounds up to the smallest subnormal.
  EXPECT_EQ(rt_f16(1.5f * std::ldexp(1.0f, -25)), min_sub);
  EXPECT_EQ(rt_f16(std::ldexp(1.0f, -26)), 0.0f);
  // A subnormal halfway case inside the subnormal range: 2.5 * 2^-24 ties
  // between 2*2^-24 (even) and 3*2^-24 (odd) -> 2*2^-24.
  EXPECT_EQ(rt_f16(2.5f * min_sub), 2 * min_sub);
  // The carry from rounding the largest pre-normal value lands exactly on
  // the smallest normal.
  EXPECT_EQ(rt_f16(std::nextafterf(min_norm, 0.0f)), min_norm);
}

TEST(DTypeTest, BF16Subnormals) {
  // bf16 subnormals are f32 subnormals with a 7-bit mantissa; the smallest
  // is 2^-133.
  const float min_sub = std::ldexp(1.0f, -133);
  EXPECT_EQ(rt_bf16(min_sub), min_sub);
  EXPECT_EQ(rt_bf16(3 * min_sub), 3 * min_sub);
  // The smallest f32 subnormal (2^-149) is far below 2^-134: flushes to 0.
  EXPECT_EQ(rt_bf16(std::numeric_limits<float>::denorm_min()), 0.0f);
}

TEST(DTypeTest, ExhaustiveF16BitPatternsRoundTripThroughF32) {
  // Widening is exact, so every one of the 65536 f16 patterns must survive
  // f16 -> f32 -> f16 bit-for-bit (NaNs keep their quiet bit set by the
  // narrowing converter, so compare through the widened value).
  for (uint32_t h = 0; h < 0x10000u; ++h) {
    const uint16_t hb = static_cast<uint16_t>(h);
    const float f = f16_bits_to_f32(hb);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(f16_bits_to_f32(f32_to_f16_bits(f))));
      continue;
    }
    EXPECT_EQ(f32_to_f16_bits(f), hb) << "pattern " << h;
  }
}

TEST(DTypeTest, QuantizeToMatchesScalarConverters) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const float f = static_cast<float>(rng.normal()) * 100.f;
    EXPECT_EQ(bits_of(quantize_to(f, DType::kF32)), bits_of(f));
    EXPECT_EQ(bits_of(quantize_to(f, DType::kF16)), bits_of(rt_f16(f)));
    EXPECT_EQ(bits_of(quantize_to(f, DType::kBF16)), bits_of(rt_bf16(f)));
  }
}

TEST(DTypeTest, TensorToRoundTripMatchesScalarQuantization) {
  Rng rng(7);
  Tensor x = Tensor::randn({3, 17}, rng);
  for (DType dt : {DType::kF16, DType::kBF16}) {
    Tensor half = x.to(dt);
    EXPECT_EQ(half.dtype(), dt);
    EXPECT_EQ(half.byte_size(), x.numel() * 2);
    Tensor back = half.to(DType::kF32);
    EXPECT_EQ(back.dtype(), DType::kF32);
    const std::vector<float> xs = x.to_vector();
    const std::vector<float> bs = back.to_vector();
    for (size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(bits_of(bs[i]), bits_of(quantize_to(xs[i], dt))) << i;
    }
  }
  // to() at the same dtype is the identity (shared storage, no copy).
  EXPECT_TRUE(x.to(DType::kF32).shares_storage_with(x));
}

TEST(DTypeTest, HalfTensorMetadataAndViews) {
  Rng rng(11);
  Tensor x = Tensor::randn({4, 6}, rng);
  Tensor h = x.to(DType::kF16);
  // reshape shares storage and keeps the dtype.
  Tensor r = h.reshape({6, 4});
  EXPECT_EQ(r.dtype(), DType::kF16);
  EXPECT_TRUE(r.shares_storage_with(h));
  // clone deep-copies the 16-bit payload.
  Tensor c = h.clone();
  EXPECT_EQ(c.dtype(), DType::kF16);
  EXPECT_FALSE(c.shares_storage_with(h));
  for (int64_t i = 0; i < h.numel(); ++i)
    EXPECT_EQ(c.data_u16()[i], h.data_u16()[i]);
  // copy_ moves bits between same-dtype tensors...
  Tensor d = Tensor::empty({4, 6}, DType::kF16);
  d.copy_(h);
  for (int64_t i = 0; i < h.numel(); ++i)
    EXPECT_EQ(d.data_u16()[i], h.data_u16()[i]);
  // ...and rejects a dtype mismatch, as does the f32 accessor on a half
  // tensor and the u16 accessor on an f32 tensor.
  EXPECT_THROW(d.copy_(x), Error);
  EXPECT_THROW(h.data(), Error);
  EXPECT_THROW(x.data_u16(), Error);
}

TEST(DTypeTest, OpsCastAndAsF32) {
  Rng rng(13);
  Tensor x = Tensor::randn({5, 5}, rng);
  Tensor h = ops::cast(x, DType::kBF16);
  EXPECT_EQ(h.dtype(), DType::kBF16);
  Tensor w = ops::as_f32(h);
  EXPECT_EQ(w.dtype(), DType::kF32);
  const std::vector<float> xs = x.to_vector();
  const std::vector<float> ws = w.to_vector();
  for (size_t i = 0; i < xs.size(); ++i)
    EXPECT_EQ(bits_of(ws[i]), bits_of(quantize_to(xs[i], DType::kBF16)));
  // as_f32 on an f32 tensor is the identity.
  EXPECT_TRUE(ops::as_f32(x).shares_storage_with(x));
}

TEST(DTypeTest, MatmulWidensHalfInputs) {
  // A GEMM over half inputs must equal the f32 GEMM over the quantized
  // values — fp32 accumulation from low-precision inputs, bit for bit.
  Rng rng(17);
  Tensor a = Tensor::randn({3, 4}, rng);
  Tensor b = Tensor::randn({4, 5}, rng);
  for (DType dt : {DType::kF16, DType::kBF16}) {
    Tensor ref = ops::matmul(ops::as_f32(a.to(dt)), ops::as_f32(b.to(dt)));
    Tensor out = ops::matmul(a.to(dt), b.to(dt));
    EXPECT_EQ(out.dtype(), DType::kF32);
    const std::vector<float> rs = ref.to_vector();
    const std::vector<float> os = out.to_vector();
    for (size_t i = 0; i < rs.size(); ++i) EXPECT_EQ(bits_of(os[i]), bits_of(rs[i]));
  }
}

}  // namespace
}  // namespace hfta
