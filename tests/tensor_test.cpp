// Unit tests for the tensor substrate: Tensor mechanics, broadcasting
// elementwise ops, reductions, GEMM family, grouped conv (the kernel the
// paper's fusion rules lower to), pooling, softmax, embedding.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/conv.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace hfta {
namespace {

TEST(Tensor, ConstructionAndMetadata) {
  Tensor t({2, 3, 4});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 4);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 0.f);
}

TEST(Tensor, UndefinedTensor) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(Tensor, AtAccessorRowMajor) {
  Tensor t = Tensor::arange(6).reshape({2, 3});
  EXPECT_EQ(t.at({0, 0}), 0.f);
  EXPECT_EQ(t.at({0, 2}), 2.f);
  EXPECT_EQ(t.at({1, 0}), 3.f);
  EXPECT_EQ(t.at({1, 2}), 5.f);
  EXPECT_THROW(t.at({2, 0}), Error);
}

TEST(Tensor, ShallowCopySharesStorage) {
  Tensor a = Tensor::ones({4});
  Tensor b = a;
  b.data()[0] = 7.f;
  EXPECT_EQ(a.data()[0], 7.f);
  EXPECT_TRUE(a.shares_storage_with(b));
  Tensor c = a.clone();
  c.data()[1] = 9.f;
  EXPECT_EQ(a.data()[1], 1.f);
  EXPECT_FALSE(a.shares_storage_with(c));
}

TEST(Tensor, ReshapeInfersDim) {
  Tensor t = Tensor::arange(12);
  Tensor r = t.reshape({3, -1});
  EXPECT_EQ(r.size(1), 4);
  EXPECT_TRUE(t.shares_storage_with(r));
  EXPECT_THROW(t.reshape({5, -1}), Error);
}

TEST(Tensor, TransposeMaterializes) {
  Tensor t = Tensor::arange(6).reshape({2, 3});
  Tensor tt = t.transpose(0, 1);
  EXPECT_EQ(tt.size(0), 3);
  EXPECT_EQ(tt.size(1), 2);
  EXPECT_EQ(tt.at({0, 1}), 3.f);
  EXPECT_EQ(tt.at({2, 0}), 2.f);
}

TEST(Tensor, PermuteMatchesManual) {
  Tensor t = Tensor::arange(24).reshape({2, 3, 4});
  Tensor p = t.permute({2, 0, 1});  // [4, 2, 3]
  for (int64_t i = 0; i < 2; ++i)
    for (int64_t j = 0; j < 3; ++j)
      for (int64_t k = 0; k < 4; ++k)
        EXPECT_EQ(p.at({k, i, j}), t.at({i, j, k}));
}

TEST(Tensor, SliceCopiesRange) {
  Tensor t = Tensor::arange(24).reshape({2, 3, 4});
  Tensor s = t.slice(1, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2, 4}));
  EXPECT_EQ(s.at({0, 0, 0}), t.at({0, 1, 0}));
  EXPECT_EQ(s.at({1, 1, 3}), t.at({1, 2, 3}));
}

TEST(Ops, BroadcastShapes) {
  EXPECT_EQ(ops::broadcast_shapes({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(ops::broadcast_shapes({4, 1, 3}, {2, 1}), (Shape{4, 2, 3}));
  EXPECT_THROW(ops::broadcast_shapes({2, 3}, {4}), Error);
}

TEST(Ops, AddBroadcastBias) {
  Tensor x = Tensor::arange(6).reshape({2, 3});
  Tensor b = Tensor::from_data({3}, {10.f, 20.f, 30.f});
  Tensor y = ops::add(x, b);
  EXPECT_EQ(y.at({0, 0}), 10.f);
  EXPECT_EQ(y.at({1, 2}), 35.f);
}

TEST(Ops, MulBroadcastLeading) {
  // [B,1,F] * [B,N,F] — the fused-scheduler / fused-LayerNorm pattern.
  Tensor a = Tensor::from_data({2, 1, 2}, {1.f, 2.f, 3.f, 4.f});
  Tensor x = Tensor::ones({2, 3, 2});
  Tensor y = ops::mul(x, a);
  EXPECT_EQ(y.at({0, 2, 0}), 1.f);
  EXPECT_EQ(y.at({0, 2, 1}), 2.f);
  EXPECT_EQ(y.at({1, 0, 0}), 3.f);
  EXPECT_EQ(y.at({1, 2, 1}), 4.f);
}

TEST(Ops, ReduceToShapeInvertsBroadcast) {
  Tensor g = Tensor::ones({4, 2, 3});
  Tensor r = ops::reduce_to_shape(g, {2, 1});
  EXPECT_EQ(r.shape(), (Shape{2, 1}));
  EXPECT_EQ(r.at({0, 0}), 12.f);
}

TEST(Ops, SumOverDims) {
  Tensor t = Tensor::arange(24).reshape({2, 3, 4});
  Tensor s = ops::sum(t, {0, 2}, false);
  EXPECT_EQ(s.shape(), (Shape{3}));
  // sum over n,k of t[n,j,k]: j=0 -> (0+1+2+3)+(12+13+14+15) = 60
  EXPECT_EQ(s.at({0}), 60.f);
  Tensor sk = ops::sum(t, {0, 2}, true);
  EXPECT_EQ(sk.shape(), (Shape{1, 3, 1}));
}

TEST(Ops, MeanAll) {
  Tensor t = Tensor::arange(5);
  EXPECT_FLOAT_EQ(ops::mean_all(t).item(), 2.f);
}

TEST(Ops, MaxDimValuesAndIndices) {
  Tensor t = Tensor::from_data({2, 3}, {1.f, 5.f, 3.f, 9.f, 2.f, 4.f});
  auto [v, i] = ops::max_dim(t, 1, false);
  EXPECT_EQ(v.at({0}), 5.f);
  EXPECT_EQ(i.at({0}), 1.f);
  EXPECT_EQ(v.at({1}), 9.f);
  EXPECT_EQ(i.at({1}), 0.f);
}

TEST(Ops, ConcatSplitRoundTrip) {
  Rng rng(1);
  Tensor a = Tensor::randn({2, 3, 4}, rng);
  Tensor b = Tensor::randn({2, 5, 4}, rng);
  Tensor c = ops::concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 8, 4}));
  auto parts = ops::split(c, {3, 5}, 1);
  EXPECT_EQ(ops::max_abs_diff(parts[0], a), 0.f);
  EXPECT_EQ(ops::max_abs_diff(parts[1], b), 0.f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(2);
  Tensor x = Tensor::randn({4, 7}, rng);
  Tensor y = ops::softmax(x, 1);
  Tensor s = ops::sum(y, {1}, false);
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(s.at({i}), 1.f, 1e-5f);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(3);
  Tensor x = Tensor::randn({3, 5}, rng);
  Tensor a = ops::log_softmax(x, 1);
  Tensor b = ops::log(ops::softmax(x, 1));
  EXPECT_LT(ops::max_abs_diff(a, b), 1e-5f);
}

TEST(Ops, EmbeddingLookupAndBackward) {
  Tensor w = Tensor::arange(8).reshape({4, 2});  // V=4, E=2
  Tensor idx = Tensor::from_data({3}, {2.f, 0.f, 2.f});
  Tensor out = ops::embedding(idx, w);
  EXPECT_EQ(out.shape(), (Shape{3, 2}));
  EXPECT_EQ(out.at({0, 0}), 4.f);
  EXPECT_EQ(out.at({1, 1}), 1.f);
  Tensor gy = Tensor::ones({3, 2});
  Tensor gw = ops::embedding_backward(gy, idx, 4);
  EXPECT_EQ(gw.at({2, 0}), 2.f);  // index 2 hit twice
  EXPECT_EQ(gw.at({0, 0}), 1.f);
  EXPECT_EQ(gw.at({1, 0}), 0.f);
}

// ---- GEMM family -------------------------------------------------------------

TEST(Matmul, SmallKnownValues) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_data({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.at({0, 0}), 58.f);
  EXPECT_EQ(c.at({0, 1}), 64.f);
  EXPECT_EQ(c.at({1, 0}), 139.f);
  EXPECT_EQ(c.at({1, 1}), 154.f);
}

TEST(Matmul, TransposedVariantsAgree) {
  Rng rng(4);
  Tensor a = Tensor::randn({5, 3}, rng);
  Tensor b = Tensor::randn({3, 4}, rng);
  Tensor ref = ops::matmul(a, b);
  Tensor tn = ops::matmul_tn(a.transpose(0, 1), b);
  Tensor nt = ops::matmul_nt(a, b.transpose(0, 1));
  EXPECT_LT(ops::max_abs_diff(ref, tn), 1e-5f);
  EXPECT_LT(ops::max_abs_diff(ref, nt), 1e-5f);
}

TEST(Matmul, BmmMatchesPerBatchMatmul) {
  Rng rng(5);
  Tensor a = Tensor::randn({3, 4, 5}, rng);
  Tensor b = Tensor::randn({3, 5, 2}, rng);
  Tensor c = ops::bmm(a, b);
  for (int64_t i = 0; i < 3; ++i) {
    Tensor ci = ops::matmul(a.slice(0, i, i + 1).reshape({4, 5}),
                            b.slice(0, i, i + 1).reshape({5, 2}));
    EXPECT_LT(ops::max_abs_diff(c.slice(0, i, i + 1).reshape({4, 2}), ci),
              1e-5f);
  }
}

TEST(Matmul, BaddbmmIsFusedLinear) {
  // The paper's Linear fusion: baddbmm(b [B,1,Fy], x [B,N,Fx], w [B,Fx,Fy]).
  Rng rng(6);
  const int64_t B = 3, N = 4, Fx = 5, Fy = 2;
  Tensor bias = Tensor::randn({B, 1, Fy}, rng);
  Tensor x = Tensor::randn({B, N, Fx}, rng);
  Tensor w = Tensor::randn({B, Fx, Fy}, rng);
  Tensor y = ops::baddbmm(bias, x, w);
  EXPECT_EQ(y.shape(), (Shape{B, N, Fy}));
  for (int64_t bi = 0; bi < B; ++bi) {
    Tensor yb = ops::matmul(x.slice(0, bi, bi + 1).reshape({N, Fx}),
                            w.slice(0, bi, bi + 1).reshape({Fx, Fy}));
    for (int64_t n = 0; n < N; ++n)
      for (int64_t f = 0; f < Fy; ++f)
        EXPECT_NEAR(y.at({bi, n, f}), yb.at({n, f}) + bias.at({bi, 0, f}),
                    1e-4f);
  }
}

TEST(Matmul, LinearForwardMatchesManual) {
  Rng rng(7);
  Tensor x = Tensor::randn({4, 3}, rng);
  Tensor w = Tensor::randn({2, 3}, rng);  // [out, in]
  Tensor b = Tensor::randn({2}, rng);
  Tensor y = ops::linear_forward(x, w, b);
  for (int64_t n = 0; n < 4; ++n)
    for (int64_t o = 0; o < 2; ++o) {
      float acc = b.at({o});
      for (int64_t i = 0; i < 3; ++i) acc += x.at({n, i}) * w.at({o, i});
      EXPECT_NEAR(y.at({n, o}), acc, 1e-5f);
    }
}

// ---- convolution ---------------------------------------------------------------

// Naive direct conv2d for cross-checking the im2col implementation.
Tensor conv2d_naive(const Tensor& x, const Tensor& w, const Tensor& b,
                    const ops::ConvArgs& a) {
  const int64_t N = x.size(0), Cin = x.size(1), H = x.size(2), W = x.size(3);
  const int64_t Cout = w.size(0), kh = w.size(2), kw = w.size(3);
  const int64_t Cing = Cin / a.groups, Coutg = Cout / a.groups;
  const int64_t Ho = ops::conv_out_size(H, kh, a.stride_h, a.pad_h);
  const int64_t Wo = ops::conv_out_size(W, kw, a.stride_w, a.pad_w);
  Tensor y({N, Cout, Ho, Wo});
  for (int64_t n = 0; n < N; ++n)
    for (int64_t co = 0; co < Cout; ++co) {
      const int64_t g = co / Coutg;
      for (int64_t oh = 0; oh < Ho; ++oh)
        for (int64_t ow = 0; ow < Wo; ++ow) {
          float acc = b.defined() ? b.at({co}) : 0.f;
          for (int64_t ci = 0; ci < Cing; ++ci)
            for (int64_t i = 0; i < kh; ++i)
              for (int64_t j = 0; j < kw; ++j) {
                const int64_t ih = oh * a.stride_h - a.pad_h + i;
                const int64_t iw = ow * a.stride_w - a.pad_w + j;
                if (ih < 0 || ih >= H || iw < 0 || iw >= W) continue;
                acc += x.at({n, g * Cing + ci, ih, iw}) * w.at({co, ci, i, j});
              }
          y.at({n, co, oh, ow}) = acc;
        }
    }
  return y;
}

struct ConvCase {
  int64_t N, Cin, H, W, Cout, k, stride, pad, groups;
};

class ConvParamTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvParamTest, ForwardMatchesNaive) {
  const ConvCase c = GetParam();
  Rng rng(11);
  Tensor x = Tensor::randn({c.N, c.Cin, c.H, c.W}, rng);
  Tensor w = Tensor::randn({c.Cout, c.Cin / c.groups, c.k, c.k}, rng);
  Tensor b = Tensor::randn({c.Cout}, rng);
  const auto args = ops::ConvArgs::make(c.stride, c.pad, c.groups);
  Tensor y = ops::conv2d(x, w, b, args);
  Tensor ref = conv2d_naive(x, w, b, args);
  EXPECT_LT(ops::max_abs_diff(y, ref), 1e-4f);
}

TEST_P(ConvParamTest, GradInputMatchesNumerical) {
  const ConvCase c = GetParam();
  Rng rng(12);
  Tensor x = Tensor::randn({c.N, c.Cin, c.H, c.W}, rng);
  Tensor w = Tensor::randn({c.Cout, c.Cin / c.groups, c.k, c.k}, rng);
  const auto args = ops::ConvArgs::make(c.stride, c.pad, c.groups);
  Tensor y = ops::conv2d(x, w, Tensor(), args);
  Tensor gy = Tensor::randn(y.shape(), rng);
  Tensor gx = ops::conv2d_grad_input(gy, w, x.shape(), args);
  // Check a handful of coordinates by central differences on sum(y * gy).
  const float eps = 1e-2f;
  for (int64_t probe = 0; probe < 5; ++probe) {
    const int64_t i = rng.uniform_int(x.numel());
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const float up =
        ops::sum_all(ops::mul(ops::conv2d(x, w, Tensor(), args), gy)).item();
    x.data()[i] = orig - eps;
    const float dn =
        ops::sum_all(ops::mul(ops::conv2d(x, w, Tensor(), args), gy)).item();
    x.data()[i] = orig;
    EXPECT_NEAR(gx.data()[i], (up - dn) / (2 * eps), 2e-2f);
  }
}

TEST_P(ConvParamTest, GradWeightMatchesNumerical) {
  const ConvCase c = GetParam();
  Rng rng(13);
  Tensor x = Tensor::randn({c.N, c.Cin, c.H, c.W}, rng);
  Tensor w = Tensor::randn({c.Cout, c.Cin / c.groups, c.k, c.k}, rng);
  const auto args = ops::ConvArgs::make(c.stride, c.pad, c.groups);
  Tensor y = ops::conv2d(x, w, Tensor(), args);
  Tensor gy = Tensor::randn(y.shape(), rng);
  Tensor gw = ops::conv2d_grad_weight(gy, x, w.shape(), args);
  const float eps = 1e-2f;
  for (int64_t probe = 0; probe < 5; ++probe) {
    const int64_t i = rng.uniform_int(w.numel());
    const float orig = w.data()[i];
    w.data()[i] = orig + eps;
    const float up =
        ops::sum_all(ops::mul(ops::conv2d(x, w, Tensor(), args), gy)).item();
    w.data()[i] = orig - eps;
    const float dn =
        ops::sum_all(ops::mul(ops::conv2d(x, w, Tensor(), args), gy)).item();
    w.data()[i] = orig;
    EXPECT_NEAR(gw.data()[i], (up - dn) / (2 * eps), 2e-2f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvParamTest,
    ::testing::Values(ConvCase{2, 3, 8, 8, 4, 3, 1, 1, 1},
                      ConvCase{1, 4, 7, 7, 6, 3, 2, 1, 2},
                      ConvCase{2, 6, 5, 5, 6, 1, 1, 0, 3},
                      ConvCase{1, 8, 6, 6, 8, 3, 1, 0, 8},   // depthwise
                      ConvCase{2, 6, 9, 9, 9, 5, 2, 2, 3}));

TEST(Conv, GroupedConvEqualsPerGroupConvs) {
  // The fusion identity itself at the kernel level: one grouped conv over
  // concatenated channels == independent convs per group.
  Rng rng(14);
  const int64_t B = 3, N = 2, C = 4, Cout = 5, H = 6, W = 6, k = 3;
  std::vector<Tensor> xs, ws, bs, ys;
  for (int64_t i = 0; i < B; ++i) {
    xs.push_back(Tensor::randn({N, C, H, W}, rng));
    ws.push_back(Tensor::randn({Cout, C, k, k}, rng));
    bs.push_back(Tensor::randn({Cout}, rng));
    ys.push_back(ops::conv2d(xs[i], ws[i], bs[i], ops::ConvArgs::make(1, 1)));
  }
  Tensor xf = ops::concat(xs, 1);                     // [N, B*C, H, W]
  Tensor wf = ops::concat(ws, 0);                     // [B*Cout, C, k, k]
  Tensor bf = ops::concat(bs, 0);                     // [B*Cout]
  Tensor yf = ops::conv2d(xf, wf, bf, ops::ConvArgs::make(1, 1, B));
  Tensor yref = ops::concat(ys, 1);
  EXPECT_LT(ops::max_abs_diff(yf, yref), 1e-4f);
}

TEST(Conv, Conv1dMatchesManual) {
  Rng rng(15);
  Tensor x = Tensor::randn({2, 3, 10}, rng);
  Tensor w = Tensor::randn({4, 3, 3}, rng);
  Tensor b = Tensor::randn({4}, rng);
  Tensor y = ops::conv1d(x, w, b, 1, 1, 1);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 10}));
  // Spot check one output.
  float acc = b.at({1});
  for (int64_t c = 0; c < 3; ++c)
    for (int64_t j = 0; j < 3; ++j) {
      const int64_t l = 4 - 1 + j;
      acc += x.at({0, c, l}) * w.at({1, c, j});
    }
  EXPECT_NEAR(y.at({0, 1, 4}), acc, 1e-4f);
}

TEST(Conv, ConvTransposeShapeAndAdjoint) {
  // DCGAN generator shape: stride-2 upsampling.
  Rng rng(16);
  const int64_t N = 2, Cin = 6, Cout = 4, H = 5, k = 4;
  Tensor x = Tensor::randn({N, Cin, H, H}, rng);
  Tensor w = Tensor::randn({Cin, Cout, k, k}, rng);
  Tensor b = Tensor::randn({Cout}, rng);
  ops::ConvTransposeArgs t{2, 1, 0, 1};
  Tensor y = ops::conv_transpose2d(x, w, b, t);
  EXPECT_EQ(y.size(2), ops::conv_transpose_out_size(H, k, 2, 1, 0));
  // Adjoint identity: <convT(x), gy> == <x, conv(gy)> (bias excluded).
  Tensor y_nob = ops::conv_transpose2d(x, w, Tensor(), t);
  Tensor gy = Tensor::randn(y.shape(), rng);
  const float lhs = ops::sum_all(ops::mul(y_nob, gy)).item();
  Tensor gx = ops::conv_transpose2d_grad_input(gy, w, t);
  const float rhs = ops::sum_all(ops::mul(x, gx)).item();
  EXPECT_NEAR(lhs, rhs, std::fabs(lhs) * 1e-3f + 1e-2f);
}

TEST(Conv, ConvTransposeGradWeightNumerical) {
  Rng rng(17);
  const int64_t N = 1, Cin = 4, Cout = 2, H = 4, k = 3;
  Tensor x = Tensor::randn({N, Cin, H, H}, rng);
  Tensor w = Tensor::randn({Cin, Cout / 1, k, k}, rng);
  ops::ConvTransposeArgs t{2, 1, 1, 1};
  Tensor y = ops::conv_transpose2d(x, w, Tensor(), t);
  Tensor gy = Tensor::randn(y.shape(), rng);
  Tensor gw = ops::conv_transpose2d_grad_weight(gy, x, w.shape(), t);
  const float eps = 1e-2f;
  for (int64_t probe = 0; probe < 5; ++probe) {
    const int64_t i = rng.uniform_int(w.numel());
    const float orig = w.data()[i];
    w.data()[i] = orig + eps;
    const float up =
        ops::sum_all(ops::mul(ops::conv_transpose2d(x, w, Tensor(), t), gy))
            .item();
    w.data()[i] = orig - eps;
    const float dn =
        ops::sum_all(ops::mul(ops::conv_transpose2d(x, w, Tensor(), t), gy))
            .item();
    w.data()[i] = orig;
    EXPECT_NEAR(gw.data()[i], (up - dn) / (2 * eps), 2e-2f);
  }
}

// ---- pooling --------------------------------------------------------------------

TEST(Pool, MaxPoolKnownValues) {
  Tensor x = Tensor::arange(16).reshape({1, 1, 4, 4});
  auto [y, idx] = ops::max_pool2d(x, ops::PoolArgs{2, 2, 0});
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(y.at({0, 0, 0, 0}), 5.f);
  EXPECT_EQ(y.at({0, 0, 1, 1}), 15.f);
  Tensor gy = Tensor::ones(y.shape());
  Tensor gx = ops::max_pool2d_backward(gy, idx, x.shape());
  EXPECT_EQ(gx.at({0, 0, 1, 1}), 1.f);
  EXPECT_EQ(gx.at({0, 0, 0, 0}), 0.f);
}

TEST(Pool, AdaptiveAvgPoolToOne) {
  Tensor x = Tensor::arange(8).reshape({1, 2, 2, 2});
  Tensor y = ops::adaptive_avg_pool2d(x, 1, 1);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 1.5f);
  EXPECT_FLOAT_EQ(y.at({0, 1, 0, 0}), 5.5f);
  Tensor gy = Tensor::ones(y.shape());
  Tensor gx = ops::adaptive_avg_pool2d_backward(gy, x.shape());
  EXPECT_FLOAT_EQ(gx.at({0, 0, 0, 0}), 0.25f);
}

TEST(Pool, GlobalMax1d) {
  Tensor x = Tensor::from_data({1, 2, 3}, {1, 9, 2, 8, 3, 4});
  auto [y, idx] = ops::max_pool1d_global(x);
  EXPECT_EQ(y.at({0, 0}), 9.f);
  EXPECT_EQ(idx.at({0, 0}), 1.f);
  EXPECT_EQ(y.at({0, 1}), 8.f);
  Tensor gy = Tensor::ones({1, 2});
  Tensor gx = ops::max_pool1d_global_backward(gy, idx, x.shape());
  EXPECT_EQ(gx.at({0, 0, 1}), 1.f);
  EXPECT_EQ(gx.at({0, 1, 0}), 1.f);
  EXPECT_EQ(gx.at({0, 0, 0}), 0.f);
}

TEST(Ops, AccuracyMetric) {
  Tensor logits =
      Tensor::from_data({2, 3}, {0.1f, 0.9f, 0.f, 0.8f, 0.1f, 0.1f});
  Tensor labels = Tensor::from_data({2}, {1.f, 2.f});
  EXPECT_DOUBLE_EQ(ops::accuracy(logits, labels), 0.5);
}

}  // namespace
}  // namespace hfta
