// Module::clone() coverage: structural congruence of the clone, weight and
// buffer equality without shared storage, train/eval mode carry-over, deep
// nesting (Sequential stacks, ResNet BasicBlock, full models), and the
// LoweringRegistry clone-factory fallback for registered composite kinds.
#include <gtest/gtest.h>

#include "hfta/fusion.h"
#include "models/bert.h"
#include "models/mobilenetv3.h"
#include "models/pointnet.h"
#include "models/resnet.h"
#include "models/transformer.h"
#include "nn/layers.h"
#include "nn/norm.h"
#include "tensor/ops.h"

namespace hfta::nn {
namespace {

// Structural congruence via the planner's own congruence checker: a clone
// and its source must be fusible as a 2-model array.
void expect_congruent(const Module& a, const Module& b) {
  auto diags = fused::FusionPlan(2).analyze({&a, &b});
  for (const auto& d : diags) ADD_FAILURE() << d.str();
}

void expect_equal_state(const Module& a, const Module& b) {
  auto pa = a.named_parameters();
  auto pb = b.named_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].first, pb[i].first);
    EXPECT_EQ(ops::max_abs_diff(pa[i].second.value(), pb[i].second.value()),
              0.f)
        << pa[i].first;
  }
  auto ba = named_buffers_recursive(a);
  auto bb = named_buffers_recursive(b);
  ASSERT_EQ(ba.size(), bb.size());
  for (size_t i = 0; i < ba.size(); ++i)
    EXPECT_EQ(ops::max_abs_diff(ba[i].second, bb[i].second), 0.f)
        << ba[i].first;
}

// Mutating every parameter/buffer of `m` must leave `other` untouched.
void expect_independent(Module& m, const Module& other) {
  std::vector<Tensor> before;
  for (const auto& p : other.parameters()) before.push_back(p.value().clone());
  for (auto& p : m.parameters()) {
    Tensor v = p.mutable_value();
    v.add_(Tensor::ones(v.shape()), 1.f);
  }
  for (auto& [name, buf] : named_buffers_recursive(m))
    buf.add_(Tensor::ones(buf.shape()), 1.f);
  const auto after = other.parameters();
  for (size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(ops::max_abs_diff(before[i], after[i].value()), 0.f)
        << "parameter " << i << " of the original changed";
}

TEST(ModuleClone, LinearCongruentEqualAndIndependent) {
  Rng rng(1);
  Linear src(6, 4, true, rng);
  std::shared_ptr<Module> c = src.clone();
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind(), LayerKind::kLinear);
  expect_congruent(src, *c);
  expect_equal_state(src, *c);
  expect_independent(*c, src);

  Tensor x = Tensor::randn({3, 6}, rng);
  Linear src2(6, 4, true, rng);
  auto c2 = src2.clone();
  EXPECT_EQ(ops::max_abs_diff(src2.forward(ag::Variable(x)).value(),
                              c2->forward(ag::Variable(x)).value()),
            0.f);
}

TEST(ModuleClone, SequentialConvBatchNormDeepClone) {
  Rng rng(2);
  auto net = std::make_shared<Sequential>();
  net->push_back("conv", std::make_shared<Conv2d>(3, 8, 3, 1, 1, 1, true,
                                                  rng));
  net->push_back("bn", std::make_shared<BatchNorm2d>(8));
  net->push_back("relu", std::make_shared<ReLU>());
  net->push_back("flatten", std::make_shared<Flatten>());
  net->push_back("fc", std::make_shared<Linear>(8 * 6 * 6, 5, true, rng));

  // Advance BN running stats so buffers are non-trivial.
  net->forward(ag::Variable(Tensor::randn({2, 3, 6, 6}, rng)));

  std::shared_ptr<Module> c = net->clone();
  ASSERT_NE(c, nullptr);
  expect_congruent(*net, *c);
  expect_equal_state(*net, *c);

  Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  net->eval();
  c->eval();
  EXPECT_EQ(ops::max_abs_diff(net->forward(ag::Variable(x)).value(),
                              c->forward(ag::Variable(x)).value()),
            0.f);
  expect_independent(*c, *net);
}

TEST(ModuleClone, EvalModeCarriesOver) {
  Rng rng(3);
  auto net = std::make_shared<Sequential>();
  net->push_back("fc", std::make_shared<Linear>(4, 4, true, rng));
  net->push_back("drop", std::make_shared<Dropout>(0.5f));
  net->eval();
  std::shared_ptr<Module> c = net->clone();
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->is_training());
  Tensor x = Tensor::randn({2, 4}, rng);
  EXPECT_EQ(ops::max_abs_diff(net->forward(ag::Variable(x)).value(),
                              c->forward(ag::Variable(x)).value()),
            0.f);
}

TEST(ModuleClone, DropoutCloneReplaysTheSameMaskStream) {
  // Dropout's clone copies the mask rng's CURRENT state, so clone and
  // source draw identical masks from the clone point on.
  Dropout src(0.5f);
  src.forward(ag::Variable(Tensor::ones({4, 4})));  // advance the stream
  auto c = src.clone();
  ASSERT_NE(c, nullptr);
  Tensor x = Tensor::ones({8, 8});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ops::max_abs_diff(src.forward(ag::Variable(x)).value(),
                                c->forward(ag::Variable(x)).value()),
              0.f)
        << "draw " << i;
  }
}

TEST(ModuleClone, ReconstructedCompositeCarriesDropoutStream) {
  // Composite clones rebuild via their constructor (fresh Dropout at stream
  // position 0), so copy_state must re-sync the mask rng streams — clone
  // and source have to replay identical masks even mid-stream.
  Rng rng(40);
  models::PointNetConfig cfg = models::PointNetConfig::tiny();
  cfg.dropout_p = 0.5f;
  models::PointNetCls src(cfg, rng);
  Tensor warm = Tensor::randn({2, 3, cfg.num_points}, rng);
  src.forward(ag::Variable(warm));  // advance the dropout stream
  auto c = src.clone();
  ASSERT_NE(c, nullptr);
  Tensor x = Tensor::randn({2, 3, cfg.num_points}, rng);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(ops::max_abs_diff(src.forward(ag::Variable(x)).value(),
                                c->forward(ag::Variable(x)).value()),
              0.f)
        << "draw " << i;
  }
}

TEST(ModuleClone, BasicBlockClonesThroughTheRegistry) {
  // BasicBlock has no clone() override: Module::clone() must route through
  // the clone factory its LoweringRegistrar registered.
  Rng rng(5);
  models::BasicBlock src(4, 8, 2, rng);  // strided: includes the down path
  src.forward(ag::Variable(Tensor::randn({2, 4, 8, 8}, rng)));  // BN stats
  const Module& as_base = src;
  std::shared_ptr<Module> c = as_base.clone();
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind_name(), "models::BasicBlock");
  expect_congruent(src, *c);
  expect_equal_state(src, *c);

  src.eval();
  c->eval();
  Tensor x = Tensor::randn({2, 4, 8, 8}, rng);
  EXPECT_EQ(ops::max_abs_diff(src.forward(ag::Variable(x)).value(),
                              c->forward(ag::Variable(x)).value()),
            0.f);
  expect_independent(*c, src);
}

TEST(ModuleClone, RegisteredEncoderLayerClonesThroughTheRegistry) {
  Rng rng(6);
  models::TransformerEncoderLayer src(8, 2, 16, 0.f, "gelu", rng);
  const Module& as_base = src;
  std::shared_ptr<Module> c = as_base.clone();
  ASSERT_NE(c, nullptr);
  expect_congruent(src, *c);
  expect_equal_state(src, *c);
  Tensor x = Tensor::randn({2, 5, 8}, rng);
  EXPECT_EQ(ops::max_abs_diff(src.forward(ag::Variable(x)).value(),
                              c->forward(ag::Variable(x)).value()),
            0.f);
}

TEST(ModuleClone, DeepNestedModelsClone) {
  Rng rng(7);
  // ResNet-18: Sequential of composite blocks of conv/bn leaves.
  models::ResNetConfig rcfg = models::ResNetConfig::tiny();
  rcfg.image_size = 8;
  models::ResNet18 resnet(rcfg, rng);
  auto rc = resnet.clone();
  ASSERT_NE(rc, nullptr);
  expect_equal_state(resnet, *rc);
  resnet.eval();
  rc->eval();
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(ops::max_abs_diff(resnet.forward(ag::Variable(x)).value(),
                              rc->forward(ag::Variable(x)).value()),
            0.f);
  expect_independent(*rc, resnet);

  // MobileNetV3: bnecks with depthwise convs and squeeze-excite.
  models::MobileNetV3 mobile(models::MobileNetV3Config::tiny(), rng);
  auto mc = mobile.clone();
  ASSERT_NE(mc, nullptr);
  expect_equal_state(mobile, *mc);

  // BERT: embeddings + encoder stack, driven through forward_tokens.
  models::BertModel bert(models::BertConfig::tiny(), rng);
  auto bc = bert.clone();
  ASSERT_NE(bc, nullptr);
  expect_equal_state(bert, *bc);
  Tensor toks({2, bert.cfg.seq_len});
  for (int64_t i = 0; i < toks.numel(); ++i)
    toks.data()[i] = static_cast<float>(rng.uniform_int(bert.cfg.vocab));
  EXPECT_EQ(ops::max_abs_diff(
                bert.forward_tokens(toks).value(),
                static_cast<models::BertModel&>(*bc).forward_tokens(toks)
                    .value()),
            0.f);
}

class Opaque : public Module {
 public:
  Opaque(Rng& rng) {
    w = register_parameter("w", Tensor::randn({2, 2}, rng));
  }
  ag::Variable forward(const ag::Variable& x) override { return x; }
  std::string kind_name() const override { return "test::Opaque"; }
  ag::Variable w;
};

TEST(ModuleClone, UnsupportedStatefulKindReturnsNull) {
  Rng rng(8);
  Opaque m(rng);
  EXPECT_EQ(m.clone(), nullptr);
  EXPECT_TRUE(has_state(m));
}

}  // namespace
}  // namespace hfta::nn
