// Mixed precision end to end: the autocast policy on the GEMM/conv op
// class, the dynamic LossScaler (overflow skip, backoff, growth interval,
// state surviving a repack-style optimizer swap), power-of-two scale
// exactness, AMP fused-vs-serial bit-exactness, and zero-alloc tape-free
// replay of AMP step programs with precision changes forcing recapture.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "autograd/autocast.h"
#include "autograd/functions.h"
#include "core/storage_pool.h"
#include "hfta/fused_optim.h"
#include "hfta/fused_ops.h"
#include "hfta/loss_scaling.h"
#include "hfta/train.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"

namespace hfta {
namespace {

// The quickstart-scale fused MLP array: B models of Linear-ReLU-Linear.
struct FusedMlp : fused::FusedModule {
  FusedMlp(int64_t B, int64_t in, int64_t hidden, int64_t classes, Rng& rng)
      : fused::FusedModule(B) {
    fc1 = register_module(
        "fc1", std::make_shared<fused::FusedLinear>(B, in, hidden, true, rng));
    fc2 = register_module(
        "fc2",
        std::make_shared<fused::FusedLinear>(B, hidden, classes, true, rng));
  }
  ag::Variable forward(const ag::Variable& x) override {
    return fc2->forward(ag::relu(fc1->forward(x)));
  }
  std::shared_ptr<fused::FusedLinear> fc1, fc2;
};

struct Mlp : nn::Module {
  Mlp(int64_t in, int64_t hidden, int64_t classes, Rng& rng) {
    fc1 = register_module("fc1",
                          std::make_shared<nn::Linear>(in, hidden, true, rng));
    fc2 = register_module(
        "fc2", std::make_shared<nn::Linear>(hidden, classes, true, rng));
  }
  ag::Variable forward(const ag::Variable& x) override {
    return fc2->forward(ag::relu(fc1->forward(x)));
  }
  std::shared_ptr<nn::Linear> fc1, fc2;
};

void expect_bits_equal(const std::vector<float>& a,
                       const std::vector<float>& b, const char* tag) {
  ASSERT_EQ(a.size(), b.size()) << tag;
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << tag << " " << i;
}

struct AmpRun {
  std::vector<float> losses;
  std::vector<float> weights;
  TrainStep::Stats stats;
  double final_scale = 0;
  int64_t overflow_skips = 0;
};

// Trains the B=3 fused MLP on a fixed batch and reports per-step losses,
// final fc1 weights, and the TrainStep/scaler state.
AmpRun run_amp_mlp(bool capture, bool amp, DType dt, double init_scale,
                   int steps, int64_t growth_interval = 2000) {
  const int64_t B = 3, in = 8, hidden = 16, classes = 4, N = 8;
  Rng rng(42);
  FusedMlp model(B, in, hidden, classes, rng);
  fused::FusedAdam opt(fused::collect_fused_parameters(model, B), B,
                       {.lr = {1e-3, 3e-3, 1e-2}});
  Rng data_rng(7);
  Tensor x = Tensor::randn({N, in}, data_rng);
  Tensor labels({B, N});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t n = 0; n < N; ++n)
      labels.at({b, n}) = static_cast<float>((n + b) % classes);

  TrainStep step;
  if (capture) step.enable_capture();
  if (amp) {
    TrainStep::AmpOptions ao;
    ao.dtype = dt;
    ao.scaler.init_scale = init_scale;
    ao.scaler.growth_interval = growth_interval;
    step.enable_amp(ao);
  }
  AmpRun out;
  for (int s = 0; s < steps; ++s) {
    ag::Variable loss = step.run(opt, [&] {
      ag::Variable logits = model.forward(
          ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
      return fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean);
    });
    out.losses.push_back(loss.value().item());
  }
  out.weights = model.fc1->weight.value().to_vector();
  out.stats = step.stats();
  out.final_scale = step.scaler().scale();
  out.overflow_skips = step.scaler().overflow_skips();
  return out;
}

// ---- LossScaler bookkeeping -------------------------------------------------

TEST(LossScaler, GrowthBackoffAndInterval) {
  fused::LossScaler::Options o;
  o.init_scale = 16.0;
  o.growth_interval = 3;
  fused::LossScaler s(o);
  EXPECT_EQ(s.scale(), 16.0);
  s.update(false);
  s.update(false);
  EXPECT_EQ(s.scale(), 16.0);  // streak of 2 < interval
  EXPECT_EQ(s.growth_streak(), 2);
  s.update(false);
  EXPECT_EQ(s.scale(), 32.0);  // full streak grows and resets
  EXPECT_EQ(s.growth_streak(), 0);
  s.update(true);
  EXPECT_EQ(s.scale(), 16.0);  // overflow halves
  EXPECT_EQ(s.growth_streak(), 0);
  EXPECT_EQ(s.overflow_skips(), 1);
  s.update(false);
  s.update(false);
  s.update(true);  // overflow mid-streak resets it
  EXPECT_EQ(s.scale(), 8.0);
  EXPECT_EQ(s.overflow_skips(), 2);
  EXPECT_EQ(s.growth_streak(), 0);
}

TEST(LossScaler, UnscaleFiniteScalesInPlaceAndDetectsInfNan) {
  Tensor g = Tensor::from_data({4}, {2.0f, -8.0f, 0.5f, 0.0f});
  EXPECT_TRUE(fused::LossScaler::unscale_finite(g, 0.25));
  const std::vector<float> v = g.to_vector();
  EXPECT_EQ(v[0], 0.5f);
  EXPECT_EQ(v[1], -2.0f);
  EXPECT_EQ(v[2], 0.125f);
  EXPECT_EQ(v[3], 0.0f);

  Tensor bad = Tensor::from_data(
      {3}, {1.0f, std::numeric_limits<float>::infinity(), 2.0f});
  EXPECT_FALSE(fused::LossScaler::unscale_finite(bad, 0.5));
  Tensor nan_grad = Tensor::from_data({2}, {std::nanf(""), 1.0f});
  EXPECT_FALSE(fused::LossScaler::unscale_finite(nan_grad, 1.0));
}

// ---- autocast policy --------------------------------------------------------

TEST(Autocast, GemmClassQuantizesInputsButNotBias) {
  Rng rng(5);
  Tensor xt = Tensor::randn({4, 8}, rng);
  Tensor wt = Tensor::randn({6, 8}, rng);
  Tensor bt = Tensor::randn({6}, rng);
  ag::Variable x(xt), w(wt, true), b(bt, true);

  EXPECT_FALSE(ag::autocast_enabled());
  ag::Variable y;
  {
    ag::AutocastGuard guard(DType::kF16);
    EXPECT_TRUE(ag::autocast_enabled());
    EXPECT_EQ(ag::autocast_dtype(), DType::kF16);
    y = ag::linear(x, w, b);
  }
  EXPECT_FALSE(ag::autocast_enabled());

  // Equal to the hand-built policy: quantize x and w to f16, widen, run the
  // f32 kernel, add the UN-quantized bias.
  Tensor ref = ops::linear_forward(ops::as_f32(xt.to(DType::kF16)),
                                   ops::as_f32(wt.to(DType::kF16)), bt);
  expect_bits_equal(y.value().to_vector(), ref.to_vector(), "autocast linear");

  // Gradients flow through the cast back to the ORIGINAL f32 leaves.
  ag::sum_all(y).backward();
  EXPECT_EQ(w.grad().dtype(), DType::kF32);
  EXPECT_EQ(b.grad().dtype(), DType::kF32);
  EXPECT_EQ(w.grad().shape(), wt.shape());
}

TEST(Autocast, NestedF32GuardDisables) {
  Rng rng(6);
  Tensor xt = Tensor::randn({3, 5}, rng);
  Tensor wt = Tensor::randn({2, 5}, rng);
  ag::Variable x(xt), w(wt, true);
  ag::Variable amp_y, pinned_y;
  {
    ag::AutocastGuard outer(DType::kBF16);
    amp_y = ag::linear(x, w, ag::Variable());
    {
      ag::AutocastGuard inner(DType::kF32);  // pins autocast OFF
      EXPECT_FALSE(ag::autocast_enabled());
      pinned_y = ag::linear(x, w, ag::Variable());
    }
    EXPECT_TRUE(ag::autocast_enabled());
  }
  Tensor plain = ops::linear_forward(xt, wt, Tensor());
  expect_bits_equal(pinned_y.value().to_vector(), plain.to_vector(),
                    "pinned-f32 linear");
  // And the bf16 result really is the quantized one (differs from plain
  // unless the data happened to be exactly representable — with random
  // normals it will not be, so just check it matches the policy).
  Tensor ref = ops::linear_forward(ops::as_f32(xt.to(DType::kBF16)),
                                   ops::as_f32(wt.to(DType::kBF16)), Tensor());
  expect_bits_equal(amp_y.value().to_vector(), ref.to_vector(),
                    "bf16 linear");
}

// ---- scale exactness + fused-vs-serial under AMP ---------------------------

TEST(Amp, PowerOfTwoScaleIsExact) {
  // d(S*L)/dw with S = 2^16, then x1/S, must be bit-identical to S = 1:
  // power-of-two scaling only shifts exponents.
  const AmpRun s1 = run_amp_mlp(false, true, DType::kBF16, 1.0, 10);
  const AmpRun s65536 = run_amp_mlp(false, true, DType::kBF16, 65536.0, 10);
  expect_bits_equal(s1.losses, s65536.losses, "losses");
  expect_bits_equal(s1.weights, s65536.weights, "weights");
  EXPECT_EQ(s1.overflow_skips, 0);
  EXPECT_EQ(s65536.overflow_skips, 0);
}

TEST(Amp, FusedVsSerialBitExact) {
  // The repo's core invariant must survive AMP: B fused models under
  // autocast + loss scaling == B serial models under the same policy,
  // bit for bit. Quantization is elementwise and the fused kernels align
  // accumulation order with the serial ones, so casting both sides
  // identically preserves exactness.
  for (DType dt : {DType::kBF16, DType::kF16}) {
    const int64_t B = 3, in = 8, hidden = 16, classes = 4, N = 8;
    Rng rng(42);
    FusedMlp fused_model(B, in, hidden, classes, rng);
    std::vector<std::shared_ptr<Mlp>> serial_models;
    const fused::HyperVec lrs = {1e-3, 3e-3, 1e-2};
    for (int64_t b = 0; b < B; ++b) {
      serial_models.push_back(
          std::make_shared<Mlp>(in, hidden, classes, rng));
      fused_model.fc1->load_model(b, *serial_models.back()->fc1);
      fused_model.fc2->load_model(b, *serial_models.back()->fc2);
    }
    fused::FusedAdam fused_opt(
        fused::collect_fused_parameters(fused_model, B), B, {.lr = lrs});
    std::vector<std::unique_ptr<nn::Adam>> serial_opts;
    for (int64_t b = 0; b < B; ++b)
      serial_opts.push_back(std::make_unique<nn::Adam>(
          serial_models[static_cast<size_t>(b)]->parameters(),
          nn::Adam::Options{.lr = lrs[static_cast<size_t>(b)]}));

    Rng data_rng(7);
    Tensor x = Tensor::randn({N, in}, data_rng);
    Tensor labels({B, N});
    Tensor y({N});
    for (int64_t n = 0; n < N; ++n) y.at({n}) = static_cast<float>(n % classes);
    for (int64_t b = 0; b < B; ++b)
      for (int64_t n = 0; n < N; ++n) labels.at({b, n}) = y.at({n});

    TrainStep::AmpOptions ao;
    ao.dtype = dt;
    TrainStep fused_step, serial_step;
    fused_step.enable_amp(ao);
    serial_step.enable_amp(ao);
    for (int s = 0; s < 10; ++s) {
      fused_step.run(fused_opt, [&] {
        ag::Variable logits = fused_model.forward(
            ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
        return fused::fused_cross_entropy(logits, labels,
                                          ag::Reduction::kMean);
      });
      for (int64_t b = 0; b < B; ++b) {
        const size_t ub = static_cast<size_t>(b);
        serial_step.run(*serial_opts[ub], [&] {
          return ag::cross_entropy(
              serial_models[ub]->forward(ag::Variable(x)), y,
              ag::Reduction::kMean);
        });
      }
    }
    for (int64_t b = 0; b < B; ++b) {
      Rng probe_rng(1);
      nn::Linear p1(in, hidden, true, probe_rng);
      nn::Linear p2(hidden, classes, true, probe_rng);
      fused_model.fc1->store_model(b, p1);
      fused_model.fc2->store_model(b, p2);
      const auto& sm = serial_models[static_cast<size_t>(b)];
      expect_bits_equal(p1.weight.value().to_vector(),
                        sm->fc1->weight.value().to_vector(), "fc1.w");
      expect_bits_equal(p2.weight.value().to_vector(),
                        sm->fc2->weight.value().to_vector(), "fc2.w");
      expect_bits_equal(p1.bias.value().to_vector(),
                        sm->fc1->bias.value().to_vector(), "fc1.b");
    }
  }
}

// ---- capture / replay under AMP --------------------------------------------

TEST(Amp, ReplayMatchesEagerAndIsZeroAllocTapeFree) {
  const int steps = 12;
  const AmpRun eager = run_amp_mlp(false, true, DType::kBF16, 65536.0, steps);
  const AmpRun replay = run_amp_mlp(true, true, DType::kBF16, 65536.0, steps);
  expect_bits_equal(eager.losses, replay.losses, "losses");
  expect_bits_equal(eager.weights, replay.weights, "weights");
  // 1 warmup + 1 capture, the rest replayed tape-free with zero heap
  // allocations once warm — including the cast thunks and the seed-scaled
  // backward.
  EXPECT_EQ(replay.stats.captures, 1);
  EXPECT_EQ(replay.stats.replays, steps - 2);
  EXPECT_TRUE(replay.stats.last_was_replay);
  EXPECT_EQ(replay.stats.last_heap_allocs, 0u);
  EXPECT_EQ(replay.stats.last_node_constructions, 0u);
}

TEST(Amp, ScaleGrowthReachesReplayedProgramsWithoutRecapture) {
  // growth_interval=2 doubles the scale every other step; the captured
  // tape's seed shares the TrainStep's scale tensor, so replays see each
  // new scale without recapturing — and stay bit-identical to eager.
  const int steps = 10;
  const AmpRun eager =
      run_amp_mlp(false, true, DType::kBF16, 16.0, steps, /*growth=*/2);
  const AmpRun replay =
      run_amp_mlp(true, true, DType::kBF16, 16.0, steps, /*growth=*/2);
  EXPECT_GT(eager.final_scale, 16.0);
  EXPECT_EQ(eager.final_scale, replay.final_scale);
  EXPECT_EQ(replay.stats.captures, 1);  // scale changes did NOT recapture
  expect_bits_equal(eager.losses, replay.losses, "losses");
  expect_bits_equal(eager.weights, replay.weights, "weights");
}

TEST(Amp, OverflowSkipsStepBacksOffAndRecovers) {
  // 2^130 overflows float: the seed is inf, every grad is non-finite, and
  // the step must be SKIPPED (weights untouched) while the scale halves.
  // At least three backoffs (2^130, 2^129, 2^128 all overflow as floats;
  // a large scaled intermediate can force one more) and then training
  // proceeds — all scales powers of two, so the run matches the scale-1
  // run bit for bit once it recovers.
  const int steps = 10;
  const AmpRun huge =
      run_amp_mlp(false, true, DType::kBF16, std::ldexp(1.0, 130), steps);
  EXPECT_GE(huge.overflow_skips, 3);
  EXPECT_LT(huge.overflow_skips, steps);
  EXPECT_EQ(huge.stats.amp_overflow_skips, huge.overflow_skips);
  EXPECT_LE(huge.final_scale, std::ldexp(1.0, 127));
  // The skipped steps left the weights at init; the remaining steps
  // trained — so this run equals a scale-1 run of (steps - skips).
  const AmpRun clean = run_amp_mlp(
      false, true, DType::kBF16, 1.0,
      steps - static_cast<int>(huge.overflow_skips));
  expect_bits_equal(huge.weights, clean.weights, "post-recovery weights");
}

TEST(Amp, PrecisionChangeForcesRecapture) {
  const int64_t B = 2, in = 4, hidden = 8, classes = 2, N = 4;
  Rng rng(9);
  FusedMlp model(B, in, hidden, classes, rng);
  fused::FusedAdam opt(fused::collect_fused_parameters(model, B), B,
                       {.lr = {1e-3, 1e-3}});
  Rng data_rng(3);
  Tensor x = Tensor::randn({N, in}, data_rng);
  Tensor labels({B, N});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t n = 0; n < N; ++n)
      labels.at({b, n}) = static_cast<float>(n % classes);
  TrainStep step;
  step.enable_capture();
  auto loss_fn = [&] {
    ag::Variable logits = model.forward(
        ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
    return fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean);
  };
  for (int s = 0; s < 3; ++s) step.run(opt, loss_fn);  // fp32 program
  EXPECT_EQ(step.stats().captures, 1);
  EXPECT_TRUE(step.stats().last_was_replay);

  step.enable_amp(TrainStep::AmpOptions{});  // precision change
  step.run(opt, loss_fn);
  EXPECT_FALSE(step.stats().last_was_replay);  // stale program not replayed
  for (int s = 0; s < 2; ++s) step.run(opt, loss_fn);
  EXPECT_EQ(step.stats().captures, 2);  // recaptured under AMP
  EXPECT_TRUE(step.stats().last_was_replay);

  step.disable_amp();  // back to fp32: recapture again
  step.run(opt, loss_fn);
  EXPECT_FALSE(step.stats().last_was_replay);
}

TEST(Amp, ScalerStateSurvivesRepackStyleOptimizerSwap) {
  // Hyperband repacks build a new array + optimizer; the scaler lives on
  // the TrainStep, which persists — backoff history must carry over.
  const int64_t B = 2, in = 4, hidden = 8, classes = 2, N = 4;
  Rng rng(9);
  FusedMlp model(B, in, hidden, classes, rng);
  Rng data_rng(3);
  Tensor x = Tensor::randn({N, in}, data_rng);
  Tensor labels({B, N});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t n = 0; n < N; ++n)
      labels.at({b, n}) = static_cast<float>(n % classes);
  TrainStep step;
  TrainStep::AmpOptions ao;
  ao.scaler.init_scale = std::ldexp(1.0, 130);  // forces overflow skips
  step.enable_amp(ao);
  auto loss_fn = [&] {
    ag::Variable logits = model.forward(
        ag::Variable(fused::pack_model_major(std::vector<Tensor>(B, x))));
    return fused::fused_cross_entropy(logits, labels, ag::Reduction::kMean);
  };
  {
    fused::FusedAdam opt(fused::collect_fused_parameters(model, B), B,
                         {.lr = {1e-3, 1e-3}});
    for (int s = 0; s < 5; ++s) step.run(opt, loss_fn);
  }
  const int64_t skips = step.scaler().overflow_skips();
  const double scale = step.scaler().scale();
  EXPECT_GE(skips, 3);
  // "Repack": a brand-new optimizer over the same TrainStep.
  fused::FusedAdam opt2(fused::collect_fused_parameters(model, B), B,
                        {.lr = {1e-3, 1e-3}});
  for (int s = 0; s < 3; ++s) step.run(opt2, loss_fn);
  EXPECT_EQ(step.scaler().overflow_skips(), skips);  // history intact
  EXPECT_LE(step.scaler().scale(), scale);           // continued, not reset
  EXPECT_EQ(step.stats().amp_overflow_skips, skips);
}

TEST(Amp, MultiLossRunRejectsAmp) {
  TrainStep step;
  step.enable_amp();
  Rng rng(2);
  Mlp model(4, 8, 2, rng);
  nn::Adam opt(model.parameters(), nn::Adam::Options{});
  EXPECT_THROW(step.run(opt,
                        [&]() -> std::vector<ag::Variable> { return {}; }),
               Error);
}

}  // namespace
}  // namespace hfta
