// Shared per-kind test fixtures: one congruent per-model module factory for
// every kind in the LoweringRegistry, plus a matching training input. Used
// by fusion_plan_test (state round-trips over the whole registry) and
// step_program_test (capture/replay bit-exactness over the whole registry),
// so a new lowering registration fails BOTH suites until covered here once.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/rng.h"
#include "models/bert.h"
#include "models/mobilenetv3.h"
#include "models/pointnet.h"
#include "models/resnet.h"
#include "models/transformer.h"
#include "nn/layers.h"
#include "nn/norm.h"
#include "tensor/tensor.h"

namespace hfta::tests {

// One congruent per-model module per registered kind (fresh weights per
// call, so B calls give B distinct-but-congruent replicas).
using KindFactory = std::function<std::shared_ptr<nn::Module>(Rng&)>;

inline std::map<std::string, KindFactory> kind_factories() {
  using std::make_shared;
  std::map<std::string, KindFactory> f;
  f["Linear"] = [](Rng& r) { return make_shared<nn::Linear>(4, 3, true, r); };
  f["LayerNorm"] = [](Rng& r) {
    return make_shared<nn::LayerNorm>(Shape{5}, 1e-5f, r);
  };
  f["Flatten"] = [](Rng&) { return make_shared<nn::Flatten>(); };
  f["Conv2d"] = [](Rng& r) {
    return make_shared<nn::Conv2d>(3, 4, 3, 1, 1, 1, true, r);
  };
  f["Conv1d"] = [](Rng& r) {
    return make_shared<nn::Conv1d>(3, 4, 1, 1, 0, 1, true, r);
  };
  f["ConvTranspose2d"] = [](Rng& r) {
    return make_shared<nn::ConvTranspose2d>(4, 3, 4, 2, 1, 0, 1, true, r);
  };
  f["ConvTranspose1d"] = [](Rng& r) {
    return make_shared<nn::ConvTranspose1d>(4, 3, 4, 2, 1, 0, 1, true, r);
  };
  f["BatchNorm2d"] = [](Rng&) { return make_shared<nn::BatchNorm2d>(4); };
  f["BatchNorm1d"] = [](Rng&) { return make_shared<nn::BatchNorm1d>(4); };
  f["MaxPool2d"] = [](Rng&) { return make_shared<nn::MaxPool2d>(2, 2); };
  f["AdaptiveAvgPool2d"] = [](Rng&) {
    return make_shared<nn::AdaptiveAvgPool2d>(1, 1);
  };
  f["Dropout"] = [](Rng&) { return make_shared<nn::Dropout>(0.5f); };
  f["Dropout2d"] = [](Rng&) { return make_shared<nn::Dropout2d>(0.5f); };
  f["GlobalMaxPool1d"] = [](Rng&) {
    return make_shared<nn::GlobalMaxPool1d>();
  };
  f["ReLU"] = [](Rng&) { return make_shared<nn::ReLU>(); };
  f["ReLU6"] = [](Rng&) { return make_shared<nn::ReLU6>(); };
  f["LeakyReLU"] = [](Rng&) { return make_shared<nn::LeakyReLU>(0.2f); };
  f["Tanh"] = [](Rng&) { return make_shared<nn::Tanh>(); };
  f["Sigmoid"] = [](Rng&) { return make_shared<nn::Sigmoid>(); };
  f["Hardswish"] = [](Rng&) { return make_shared<nn::Hardswish>(); };
  f["GELU"] = [](Rng&) { return make_shared<nn::GELU>(); };
  f["models::PointNetTrunk"] = [](Rng& r) {
    models::PointNetConfig cfg = models::PointNetConfig::tiny();
    cfg.input_transform = true;  // cover the STN subtree
    return make_shared<models::PointNetTrunk>(cfg, r);
  };
  f["models::BasicBlock"] = [](Rng& r) {
    // in != out: covers the downsample branch
    return make_shared<models::BasicBlock>(4, 8, 2, r);
  };
  f["models::TransformerEncoderLayer"] = [](Rng& r) {
    return make_shared<models::TransformerEncoderLayer>(8, 2, 16, 0.f,
                                                        "gelu", r);
  };
  f["models::TransformerLM"] = [](Rng& r) {
    return make_shared<models::TransformerLM>(models::TransformerConfig::tiny(),
                                              r);
  };
  f["models::SqueezeExcite"] = [](Rng& r) {
    return make_shared<models::SqueezeExcite>(8, r);
  };
  f["models::Bneck"] = [](Rng& r) {
    // A row with expansion AND squeeze-excite, so every branch has state.
    return make_shared<models::Bneck>(8, models::mobilenetv3_large_table()[3],
                                      models::MobileNetV3Config::tiny(), r);
  };
  f["models::MobileNetV3"] = [](Rng& r) {
    return make_shared<models::MobileNetV3>(models::MobileNetV3Config::tiny(),
                                            r);
  };
  f["models::BertModel"] = [](Rng& r) {
    return make_shared<models::BertModel>(models::BertConfig::tiny(), r);
  };
  return f;
}

// A per-model training batch of `n` samples whose trailing dims match the
// factory's module configuration above. Token models (TransformerLM, Bert)
// get integer ids in [0, vocab); everything else gets gaussian features.
inline Tensor kind_input(const std::string& kind, int64_t n, Rng& rng) {
  auto ids = [&](int64_t seq, int64_t vocab) {
    Tensor t({n, seq});
    for (int64_t i = 0; i < t.numel(); ++i)
      t.data()[i] = static_cast<float>(rng.uniform_int(vocab));
    return t;
  };
  if (kind == "models::TransformerLM") {
    const models::TransformerConfig cfg = models::TransformerConfig::tiny();
    return ids(cfg.seq_len, cfg.vocab);
  }
  if (kind == "models::BertModel") {
    const models::BertConfig cfg = models::BertConfig::tiny();
    return ids(cfg.seq_len, cfg.vocab);
  }
  static const std::map<std::string, Shape> kTrailing = {
      {"Linear", {4}},
      {"LayerNorm", {5}},
      {"Flatten", {3, 2}},
      {"Conv2d", {3, 6, 6}},
      {"Conv1d", {3, 5}},
      {"ConvTranspose2d", {4, 5, 5}},
      {"ConvTranspose1d", {4, 5}},
      {"BatchNorm2d", {4, 3, 3}},
      {"BatchNorm1d", {4}},
      {"MaxPool2d", {3, 4, 4}},
      {"AdaptiveAvgPool2d", {3, 5, 5}},
      {"Dropout", {6}},
      {"Dropout2d", {3, 4, 4}},
      {"GlobalMaxPool1d", {3, 7}},
      {"ReLU", {5}},
      {"ReLU6", {5}},
      {"LeakyReLU", {5}},
      {"Tanh", {5}},
      {"Sigmoid", {5}},
      {"Hardswish", {5}},
      {"GELU", {5}},
      {"models::PointNetTrunk", {3, 64}},
      {"models::BasicBlock", {4, 6, 6}},
      {"models::TransformerEncoderLayer", {4, 8}},
      {"models::SqueezeExcite", {8, 4, 4}},
      {"models::Bneck", {8, 6, 6}},
      {"models::MobileNetV3", {3, 16, 16}},
  };
  Shape shape = {n};
  const Shape& trailing = kTrailing.at(kind);
  shape.insert(shape.end(), trailing.begin(), trailing.end());
  return Tensor::randn(shape, rng);
}

// forward() for ordinary modules; the token models route through
// forward_tokens (their Variable overload deliberately throws).
inline ag::Variable kind_forward(nn::Module& m, const std::string& kind,
                                 const Tensor& x) {
  if (kind == "models::TransformerLM")
    return static_cast<models::TransformerLM&>(m).forward_tokens(x);
  if (kind == "models::BertModel")
    return static_cast<models::BertModel&>(m).forward_tokens(x);
  return m.forward(ag::Variable(x));
}

}  // namespace hfta::tests
