// Synthetic dataset substrate tests: determinism, shapes, label ranges,
// learnable structure, batching.
#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/loader.h"
#include "tensor/ops.h"

namespace hfta::data {
namespace {

TEST(PointClouds, ShapesAndLabelRanges) {
  PointCloudDataset ds(10, 32, 4, 6, 1);
  EXPECT_EQ(ds.size(), 10);
  EXPECT_EQ(ds.points(0).shape(), (Shape{3, 32}));
  for (int64_t i = 0; i < ds.size(); ++i) {
    EXPECT_GE(ds.label(i), 0);
    EXPECT_LT(ds.label(i), 4);
    for (int64_t p = 0; p < 32; ++p) {
      EXPECT_GE(ds.parts(i).data()[p], 0.f);
      EXPECT_LT(ds.parts(i).data()[p], 6.f);
    }
  }
}

TEST(PointClouds, DeterministicGivenSeed) {
  PointCloudDataset a(5, 16, 3, 4, 42), b(5, 16, 3, 4, 42);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ops::max_abs_diff(a.points(i), b.points(i)), 0.f);
    EXPECT_EQ(a.label(i), b.label(i));
  }
  PointCloudDataset c(5, 16, 3, 4, 43);
  float diff = 0.f;
  for (int64_t i = 0; i < 5; ++i)
    diff = std::max(diff, ops::max_abs_diff(a.points(i), c.points(i)));
  EXPECT_GT(diff, 0.f);
}

TEST(PointClouds, BatchAssembly) {
  PointCloudDataset ds(6, 8, 3, 4, 2);
  auto [x, y] = ds.batch_cls({4, 0, 2});
  EXPECT_EQ(x.shape(), (Shape{3, 3, 8}));
  EXPECT_EQ(y.at({0}), static_cast<float>(ds.label(4)));
  auto [xs, ys] = ds.batch_seg({1, 5});
  EXPECT_EQ(ys.shape(), (Shape{2, 8}));
  EXPECT_EQ(ys.at({1, 3}), ds.parts(5).data()[3]);
}

TEST(Images, RangeAndClassStructure) {
  ImageDataset ds(20, 8, 3, 4, 3);
  // images bounded (texture 0.7 + noise)
  for (int64_t i = 0; i < ds.size(); ++i)
    for (int64_t j = 0; j < ds.image(i).numel(); ++j)
      EXPECT_LT(std::abs(ds.image(i).data()[j]), 2.5f);
  // same-class images correlate more than cross-class ones on average
  double same = 0, cross = 0;
  int64_t ns = 0, nc = 0;
  for (int64_t i = 0; i < ds.size(); ++i)
    for (int64_t j = i + 1; j < ds.size(); ++j) {
      double dot = 0;
      for (int64_t k = 0; k < ds.image(i).numel(); ++k)
        dot += ds.image(i).data()[k] * ds.image(j).data()[k];
      if (ds.label(i) == ds.label(j)) {
        same += dot;
        ++ns;
      } else {
        cross += dot;
        ++nc;
      }
    }
  ASSERT_GT(ns, 0);
  ASSERT_GT(nc, 0);
  EXPECT_GT(same / ns, cross / nc);
}

TEST(Text, MarkovStructureIsLearnable) {
  TextDataset ds(5000, 20, 4);
  // Count bigram concentration: with 3 preferred successors + 15% noise,
  // the top-3 successors of any token should cover well over half its mass.
  std::vector<std::vector<int64_t>> counts(20, std::vector<int64_t>(20, 0));
  auto [x, y] = ds.batch_lm(1, 4000, 0);
  for (int64_t i = 0; i < 4000; ++i) {
    counts[static_cast<size_t>(x.data()[i])]
          [static_cast<size_t>(y.data()[i])]++;
  }
  int64_t top3 = 0, total = 0;
  for (auto& row : counts) {
    std::vector<int64_t> sorted = row;
    std::sort(sorted.rbegin(), sorted.rend());
    top3 += sorted[0] + sorted[1] + sorted[2];
    for (int64_t c : row) total += c;
  }
  EXPECT_GT(static_cast<double>(top3) / static_cast<double>(total), 0.6);
}

TEST(Text, MlmMasksRoughly15Percent) {
  TextDataset ds(2000, 30, 5);
  Rng rng(6);
  auto [x, y] = ds.batch_mlm(4, 64, 0, /*mask_id=*/29, rng);
  int64_t masked = 0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (x.data()[i] == 29.f && y.data()[i] != 29.f) ++masked;
  }
  const double frac = static_cast<double>(masked) / static_cast<double>(x.numel());
  EXPECT_GT(frac, 0.08);
  EXPECT_LT(frac, 0.25);
}

TEST(Sampler, CoversDatasetOncePerEpochWithoutReplacement) {
  BatchSampler s(32, 8, /*shuffle=*/true, 7);
  auto epoch = s.epoch();
  EXPECT_EQ(epoch.size(), 4u);
  std::vector<bool> seen(32, false);
  for (const auto& b : epoch)
    for (int64_t i : b) {
      EXPECT_FALSE(seen[static_cast<size_t>(i)]);
      seen[static_cast<size_t>(i)] = true;
    }
  for (bool v : seen) EXPECT_TRUE(v);
}

TEST(Sampler, DropsPartialTailBatch) {
  BatchSampler s(30, 8, false, 7);
  EXPECT_EQ(s.epoch().size(), 3u);
  EXPECT_EQ(s.batches_per_epoch(), 3);
}

TEST(Sampler, UnshuffledIsSequential) {
  BatchSampler s(8, 4, false, 7);
  auto epoch = s.epoch();
  EXPECT_EQ(epoch[0], (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(epoch[1], (std::vector<int64_t>{4, 5, 6, 7}));
}

}  // namespace
}  // namespace hfta::data
