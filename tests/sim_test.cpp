// Simulator invariants and calibration assertions. These encode the
// paper's qualitative claims as tests: if a refactor breaks an ordering
// (e.g. MPS beating HFTA) the suite fails.
#include <gtest/gtest.h>

#include "sim/counters.h"

namespace hfta::sim {
namespace {

const Workload kMajor[] = {Workload::kPointNetCls, Workload::kPointNetSeg,
                           Workload::kDCGAN};

TEST(Devices, SpecsMatchPaperTable4) {
  EXPECT_EQ(v100().hbm_gb, 16.0);
  EXPECT_EQ(rtx6000().hbm_gb, 24.0);
  EXPECT_EQ(a100().hbm_gb, 40.0);
  EXPECT_EQ(tpu_v3().hbm_gb, 16.0);
  EXPECT_EQ(a100().max_mig_instances, 7);
  EXPECT_EQ(v100().max_mig_instances, 0);  // MIG is A100-only
  EXPECT_TRUE(tpu_v3().is_tpu);
}

TEST(Traces, LinearInArraySize) {
  // Fused traces carry exactly B x the FLOPs/bytes of the single trace with
  // the same kernel count (operator fusion, not op duplication).
  for (Workload w : kMajor) {
    const IterationTrace t1 = build_trace(w, 1);
    const IterationTrace t4 = build_trace(w, 4);
    ASSERT_EQ(t1.kernels.size(), t4.kernels.size());
    double f1 = 0, f4 = 0;
    for (const auto& k : t1.kernels) f1 += k.flops;
    for (const auto& k : t4.kernels) f4 += k.flops;
    EXPECT_NEAR(f4 / f1, 4.0, 1e-6) << workload_name(w);
    for (size_t i = 0; i < t1.kernels.size(); ++i) {
      EXPECT_EQ(t4.kernels[i].ctas >= t1.kernels[i].ctas, true);
    }
  }
}

TEST(Memory, HftaAvoidsPerProcessDuplication) {
  // Fig. 6: MPS memory lines pass through the origin with slope
  // (framework + model); HFTA's intercept is the single framework
  // reservation and its slope is the per-model state only.
  const DeviceSpec dev = v100();
  const IterationTrace t = build_trace(Workload::kPointNetCls, 1);
  const double m1 = memory_gb(dev, t, Mode::kHfta, 1, Precision::kFP32);
  const double m2 = memory_gb(dev, t, Mode::kHfta, 2, Precision::kFP32);
  const double p1 = memory_gb(dev, t, Mode::kMps, 1, Precision::kFP32);
  const double p2 = memory_gb(dev, t, Mode::kMps, 2, Precision::kFP32);
  const double hfta_slope = m2 - m1;
  const double mps_slope = p2 - p1;
  EXPECT_LT(hfta_slope, mps_slope);
  // intercept = framework overhead (1.52 GB FP32 per the paper's Fig. 6)
  EXPECT_NEAR(m1 - hfta_slope, 1.52, 1e-6);
  EXPECT_NEAR(memory_gb(dev, t, Mode::kHfta, 1, Precision::kAMP) -
                  (memory_gb(dev, t, Mode::kHfta, 2, Precision::kAMP) -
                   memory_gb(dev, t, Mode::kHfta, 1, Precision::kAMP)),
              2.12, 1e-6);
  EXPECT_NEAR(p2, 2 * p1, 1e-9);  // MPS: strictly proportional
}

TEST(Memory, HftaFitsMoreModelsThanMps) {
  for (const DeviceSpec& dev : {v100(), rtx6000(), a100()}) {
    for (Workload w : kMajor) {
      for (Precision p : {Precision::kFP32, Precision::kAMP}) {
        EXPECT_GT(max_models(dev, w, Mode::kHfta, p),
                  max_models(dev, w, Mode::kMps, p))
            << dev.name << " " << workload_name(w);
      }
    }
  }
}

TEST(Memory, BiggerHbmFitsMoreModels) {
  // RTX6000 (24 GB) and A100 (40 GB) fit more than V100 (16 GB) — §5.1.
  for (Workload w : kMajor) {
    const int64_t on_v100 =
        max_models(v100(), w, Mode::kHfta, Precision::kAMP);
    EXPECT_GT(max_models(rtx6000(), w, Mode::kHfta, Precision::kAMP), on_v100);
    EXPECT_GT(max_models(a100(), w, Mode::kHfta, Precision::kAMP), on_v100);
  }
}

TEST(Execution, HftaThroughputMonotonicallyImproves) {
  for (Workload w : kMajor) {
    auto curve = sweep(v100(), w, Mode::kHfta, Precision::kFP32);
    ASSERT_GE(curve.size(), 2u);
    for (size_t i = 1; i < curve.size(); ++i)
      EXPECT_GE(curve[i].normalized, curve[i - 1].normalized * 0.999)
          << workload_name(w) << " at B=" << curve[i].models;
  }
}

TEST(Execution, HftaBeatsAllBaselinesAtPeak) {
  for (const DeviceSpec& dev : {v100(), rtx6000(), a100()}) {
    for (Workload w : kMajor) {
      for (Mode m : {Mode::kSerial, Mode::kConcurrent, Mode::kMps}) {
        EXPECT_GT(peak_speedup_vs(dev, w, m), 1.0)
            << dev.name << " " << workload_name(w) << " vs " << mode_name(m);
      }
    }
  }
  for (Workload w : kMajor)
    EXPECT_GT(peak_speedup_vs(a100(), w, Mode::kMig), 1.0);
}

TEST(Execution, ConcurrentMatchesSerialForComputeBoundJobs) {
  // PointNet (small host pipeline): concurrent ~ serial (paper Fig. 4a/4b).
  const double s = peak_speedup_vs(v100(), Workload::kPointNetCls,
                                   Mode::kSerial);
  const double c = peak_speedup_vs(v100(), Workload::kPointNetCls,
                                   Mode::kConcurrent);
  EXPECT_NEAR(c / s, 1.0, 0.1);
}

TEST(Execution, ConcurrentHelpsHostBoundDcgan) {
  // DCGAN (heavy input pipeline): concurrent gains ~2x over serial
  // (Fig. 4c) — so HFTA's edge over concurrent is about half its edge over
  // serial.
  const double vs_serial =
      peak_speedup_vs(v100(), Workload::kDCGAN, Mode::kSerial);
  const double vs_concurrent =
      peak_speedup_vs(v100(), Workload::kDCGAN, Mode::kConcurrent);
  EXPECT_GT(vs_serial / vs_concurrent, 1.5);
}

TEST(Execution, PeakSpeedupsWithinCalibrationBand) {
  // Table 5 anchors, +-45% band (DESIGN.md calibration target).
  struct Anchor {
    Workload w;
    double paper;
  };
  const Anchor v100_anchors[] = {{Workload::kPointNetCls, 5.02},
                                 {Workload::kPointNetSeg, 4.29},
                                 {Workload::kDCGAN, 4.59}};
  for (const auto& a : v100_anchors) {
    const double measured = peak_speedup_vs(v100(), a.w, Mode::kSerial);
    EXPECT_GT(measured, a.paper * 0.55) << workload_name(a.w);
    EXPECT_LT(measured, a.paper * 1.45) << workload_name(a.w);
  }
}

TEST(Execution, A100GainsExceedV100ForPointNet) {
  // Newer GPUs suffer more from under-utilization -> HFTA helps more (§5.1).
  EXPECT_GT(peak_speedup_vs(a100(), Workload::kPointNetCls, Mode::kSerial),
            peak_speedup_vs(v100(), Workload::kPointNetCls, Mode::kSerial));
}

TEST(Execution, MigLimitedToSevenInstances) {
  EXPECT_EQ(max_models(a100(), Workload::kPointNetCls, Mode::kMig,
                       Precision::kFP32),
            7);
  EXPECT_EQ(max_models(v100(), Workload::kPointNetCls, Mode::kMig,
                       Precision::kFP32),
            0);
}

TEST(Counters, InUnitRangeAndHftaScalesUp) {
  const DeviceSpec dev = a100();
  auto curve = sweep(dev, Workload::kPointNetCls, Mode::kHfta,
                     Precision::kAMP);
  ASSERT_GE(curve.size(), 4u);
  for (const auto& p : curve) {
    const Counters& c = p.result.counters;
    EXPECT_GE(c.sm_active, 0.0);
    EXPECT_LE(c.sm_active, 1.0);
    EXPECT_GE(c.sm_occupancy, 0.0);
    EXPECT_LE(c.sm_occupancy, 1.0);
    EXPECT_GE(c.tensor_active, 0.0);
    EXPECT_LE(c.tensor_active, 1.0);
  }
  // Fig. 7: HFTA's utilization keeps climbing with B.
  EXPECT_GT(curve.back().result.counters.sm_active,
            curve.front().result.counters.sm_active * 1.5);
  EXPECT_GT(curve.back().result.counters.tensor_active,
            curve.front().result.counters.tensor_active);
}

TEST(Counters, ConcurrentUtilizationEqualsSerial) {
  // Fig. 7: concurrent's SM utilization stays at the serial level.
  const DeviceSpec dev = a100();
  const RunResult serial =
      simulate(dev, Workload::kPointNetCls, Mode::kSerial, 1, Precision::kFP32);
  const RunResult conc = simulate(dev, Workload::kPointNetCls,
                                  Mode::kConcurrent, 4, Precision::kFP32);
  EXPECT_NEAR(conc.counters.sm_active, serial.counters.sm_active,
              serial.counters.sm_active * 0.25 + 0.02);
}

TEST(Counters, SerialJobsSeverelyUnderutilize) {
  // Fig. 10: repetitive single-GPU jobs show sm_active <= ~0.35.
  for (Workload w : kMajor) {
    const RunResult r =
        simulate(v100(), w, Mode::kSerial, 1, Precision::kFP32);
    EXPECT_LT(r.counters.sm_active, 0.60) << workload_name(w);
    EXPECT_LT(r.counters.sm_occupancy, 0.50) << workload_name(w);
  }
}

TEST(Tpu, SerialVsHftaShapes) {
  // Fig. 5: DCGAN shows the largest (super-linear-ish) gains; the
  // segmentation variant barely improves (non-GEMM ops map poorly).
  const DeviceSpec dev = tpu_v3();
  const double cls = peak(sweep(dev, Workload::kPointNetCls, Mode::kHfta,
                                Precision::kFP32));
  const double seg = peak(sweep(dev, Workload::kPointNetSeg, Mode::kHfta,
                                Precision::kFP32));
  const double dcgan = peak(sweep(dev, Workload::kDCGAN, Mode::kHfta,
                                  Precision::kFP32));
  EXPECT_GT(dcgan, cls);
  EXPECT_GT(cls, seg);
  EXPECT_GT(dcgan, 4.0);
  EXPECT_LT(seg, 2.0);
}

TEST(Amp, HftaExploitsTensorCoresBetterThanBaselines) {
  // Table 10's shape: max AMP-over-FP32 gain is far larger under HFTA.
  const DeviceSpec dev = v100();
  const double hfta = amp_over_fp32(dev, Workload::kPointNetCls, Mode::kHfta);
  const double serial =
      amp_over_fp32(dev, Workload::kPointNetCls, Mode::kSerial);
  EXPECT_GT(hfta, serial * 1.08);
  EXPECT_LT(serial, 1.25); // paper: ~1.0
  EXPECT_GT(hfta, 1.15);   // paper: 1.92 (see EXPERIMENTS.md deviation)
}

TEST(Amp, A100DcganAmpRegression) {
  // §5.1 anomaly: on A100, HFTA's DCGAN FP32 beats AMP (cuDNN backward
  // regression); V100 does not show this.
  const double a100_ratio = amp_over_fp32(a100(), Workload::kDCGAN,
                                          Mode::kHfta);
  const double v100_ratio = amp_over_fp32(v100(), Workload::kDCGAN,
                                          Mode::kHfta);
  EXPECT_LT(a100_ratio, 1.0);
  EXPECT_GE(v100_ratio, 1.0);
}

TEST(PartialFusion, ThroughputDecaysAsUnitsUnfuse) {
  // Fig. 17: fixing B = 30 models on V100, throughput falls as fusion is
  // turned off unit by unit; fully unfused degenerates toward concurrent.
  const DeviceSpec dev = v100();
  const IterationTrace single = build_trace(Workload::kResNet18, 1);
  double prev = 0;
  for (int64_t fused_units : {10, 8, 6, 4, 2, 0}) {
    const IterationTrace t = build_resnet_partial_trace(30, fused_units);
    const RunResult r =
        simulate_traces(dev, single, t, Mode::kHfta, 30, Precision::kAMP);
    ASSERT_TRUE(r.fits) << "30 AMP ResNet-18 models must fit on V100";
    // fewer fused units -> slower rounds (throughput decays, Fig. 17)
    EXPECT_GT(r.round_us, prev * 1.001) << "fused_units=" << fused_units;
    prev = r.round_us;
  }
}

TEST(Sweep, CurvesStopAtMemoryCapacity) {
  const DeviceSpec dev = v100();
  auto curve = sweep(dev, Workload::kPointNetCls, Mode::kHfta,
                     Precision::kAMP);
  const int64_t cap =
      max_models(dev, Workload::kPointNetCls, Mode::kHfta, Precision::kAMP);
  EXPECT_EQ(curve.back().models, cap);
  // one more model must not fit
  EXPECT_FALSE(simulate(dev, Workload::kPointNetCls, Mode::kHfta, cap + 1,
                        Precision::kAMP)
                   .fits);
}

TEST(Sweep, SecondaryBenchmarksInPaperBand) {
  // Fig. 15: on V100, secondary benchmarks peak 2.42x-3.94x over serial.
  for (Workload w : {Workload::kResNet18, Workload::kMobileNetV3,
                     Workload::kTransformer, Workload::kBertMedium}) {
    const double s = peak_speedup_vs(v100(), w, Mode::kSerial);
    EXPECT_GT(s, 1.6) << workload_name(w);
    EXPECT_LT(s, 12.0) << workload_name(w);
  }
}

}  // namespace
}  // namespace hfta::sim
