// HFHT job schedulers (Algorithm 1, lines 7-12): given a batch of trials,
// schedule them under serial / concurrent / MPS / HFTA sharing and account
// the GPU-hours each choice costs (Fig. 8's y-axis). Costs come from the
// accelerator simulator; HFTA partitions by infusible hyper-parameters and
// fuses each partition (capped by device memory).
#pragma once

#include "hfht/algorithms.h"
#include "sim/counters.h"

namespace hfta::hfht {

enum class SchedulerKind { kSerial, kConcurrent, kMps, kMig, kHfta };
const char* scheduler_name(SchedulerKind k);

struct CostReport {
  double gpu_hours = 0;
  int64_t jobs_launched = 0;  // processes (or fused jobs) started
};

/// Iterations per epoch for the tuning tasks (dataset size / batch size,
/// fixed at the paper's defaults).
int64_t iterations_per_epoch(sim::Workload w);

/// Cost of running `trials` (each with its own epoch budget) under the
/// given scheduler on one device. For HFTA, `space` provides the
/// fusible/infusible split.
CostReport schedule_cost(const std::vector<Trial>& trials,
                         const SearchSpace& space, sim::Workload w,
                         const sim::DeviceSpec& dev, SchedulerKind kind);

}  // namespace hfta::hfht
