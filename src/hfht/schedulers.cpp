#include "hfht/schedulers.h"

#include <algorithm>

#include "core/check.h"

namespace hfta::hfht {

const char* scheduler_name(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kSerial: return "serial";
    case SchedulerKind::kConcurrent: return "concurrent";
    case SchedulerKind::kMps: return "MPS";
    case SchedulerKind::kMig: return "MIG";
    case SchedulerKind::kHfta: return "HFTA";
  }
  return "?";
}

int64_t iterations_per_epoch(sim::Workload w) {
  switch (w) {
    case sim::Workload::kPointNetCls:
      return 400;  // ShapeNet-part ~12.8k training clouds / batch 32
    case sim::Workload::kMobileNetV3:
      return 48;   // CIFAR-10 50k / batch 1024
    default:
      return 100;
  }
}

namespace {

constexpr double kUsPerHour = 3.6e9;

// Runs a group of trials that co-execute (one process each, or one fused
// job): wall time tracks the longest epoch budget at the group's round
// time; GPU-hours = wall time (one device).
double group_hours(const std::vector<int64_t>& epochs, double round_us,
                   int64_t iters) {
  int64_t max_epochs = 0;
  for (int64_t e : epochs) max_epochs = std::max(max_epochs, e);
  return static_cast<double>(max_epochs) * static_cast<double>(iters) *
         round_us / kUsPerHour;
}

}  // namespace

CostReport schedule_cost(const std::vector<Trial>& trials,
                         const SearchSpace& space, sim::Workload w,
                         const sim::DeviceSpec& dev, SchedulerKind kind) {
  CostReport report;
  if (trials.empty()) return report;
  const int64_t iters = iterations_per_epoch(w);

  if (kind == SchedulerKind::kSerial) {
    const sim::RunResult r =
        sim::simulate(dev, w, sim::Mode::kSerial, 1, sim::Precision::kFP32);
    for (const Trial& t : trials) {
      report.gpu_hours += static_cast<double>(t.epochs) *
                          static_cast<double>(iters) * r.round_us / kUsPerHour;
      ++report.jobs_launched;
    }
    return report;
  }

  if (kind == SchedulerKind::kConcurrent || kind == SchedulerKind::kMps ||
      kind == SchedulerKind::kMig) {
    const sim::Mode mode = kind == SchedulerKind::kConcurrent
                               ? sim::Mode::kConcurrent
                               : (kind == SchedulerKind::kMps
                                      ? sim::Mode::kMps
                                      : sim::Mode::kMig);
    if (kind == SchedulerKind::kMig && dev.max_mig_instances == 0) {
      // Device without MIG: fall back to serial execution.
      return schedule_cost(trials, space, w, dev, SchedulerKind::kSerial);
    }
    const int64_t cap =
        std::max<int64_t>(1, sim::max_models(dev, w, mode,
                                             sim::Precision::kFP32));
    // Greedy groups of up to `cap` co-running processes.
    for (size_t start = 0; start < trials.size();) {
      const size_t n =
          std::min<size_t>(static_cast<size_t>(cap), trials.size() - start);
      const sim::RunResult r = sim::simulate(
          dev, w, n == 1 ? sim::Mode::kSerial : mode,
          static_cast<int64_t>(n), sim::Precision::kFP32);
      std::vector<int64_t> epochs;
      for (size_t i = start; i < start + n; ++i)
        epochs.push_back(trials[i].epochs);
      report.gpu_hours += group_hours(epochs, r.round_us, iters);
      report.jobs_launched += static_cast<int64_t>(n);
      start += n;
    }
    return report;
  }

  // HFTA: partition by infusible hyper-parameters, fuse each partition in
  // chunks bounded by device memory.
  std::vector<ParamSet> sets;
  sets.reserve(trials.size());
  for (const Trial& t : trials) sets.push_back(t.params);
  const auto partitions = partition_by_infusible(space, sets);
  const int64_t cap = std::max<int64_t>(
      1, sim::max_models(dev, w, sim::Mode::kHfta, sim::Precision::kFP32));
  for (const auto& members : partitions) {
    for (size_t start = 0; start < members.size();) {
      const size_t n =
          std::min<size_t>(static_cast<size_t>(cap), members.size() - start);
      const sim::RunResult r = sim::simulate(
          dev, w, n == 1 ? sim::Mode::kSerial : sim::Mode::kHfta,
          static_cast<int64_t>(n), sim::Precision::kFP32);
      std::vector<int64_t> epochs;
      for (size_t i = start; i < start + n; ++i)
        epochs.push_back(trials[members[i]].epochs);
      report.gpu_hours += group_hours(epochs, r.round_us, iters);
      ++report.jobs_launched;
      start += n;
    }
  }
  return report;
}

}  // namespace hfta::hfht
