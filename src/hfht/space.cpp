#include "hfht/space.h"

#include <cmath>
#include <map>

#include "core/check.h"

namespace hfta::hfht {

double HyperParam::sample(Rng& rng) const {
  if (!choices.empty())
    return choices[static_cast<size_t>(
        rng.uniform_int(static_cast<int64_t>(choices.size())))];
  if (log_scale) {
    const double lg = rng.uniform(std::log10(lo), std::log10(hi));
    return std::pow(10.0, lg);
  }
  return rng.uniform(lo, hi);
}

ParamSet SearchSpace::sample(Rng& rng) const {
  ParamSet out;
  out.reserve(params.size());
  for (const HyperParam& p : params) out.push_back(p.sample(rng));
  return out;
}

size_t SearchSpace::index_of(const std::string& name) const {
  for (size_t i = 0; i < params.size(); ++i)
    if (params[i].name == name) return i;
  HFTA_CHECK(false, "SearchSpace: no hyper-parameter named '", name, "'");
  return 0;
}

double SearchSpace::get(const ParamSet& set, const std::string& name) const {
  const size_t i = index_of(name);
  HFTA_CHECK(i < set.size(), "SearchSpace::get: set has ", set.size(),
             " values but '", name, "' is index ", i);
  return set[i];
}

std::vector<size_t> SearchSpace::infusible_indices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < params.size(); ++i)
    if (!params[i].fusible) out.push_back(i);
  return out;
}

SearchSpace SearchSpace::pointnet() {
  // Table 12 (PointNet rows).
  SearchSpace s;
  s.params = {
      {"lr", true, true, 1e-4, 1e-2, {}},
      {"adam_beta1", true, false, 0.001, 0.999, {}},
      {"adam_beta2", true, false, 0.001, 0.999, {}},
      {"weight_decay", true, false, 0.0, 0.5, {}},
      {"lr_decay_factor", true, false, 0.1, 0.9, {}},
      {"lr_decay_period", true, false, 0, 0, {5, 10, 20, 40}},
      {"batch_size", false, false, 0, 0, {8, 16, 32}},
      {"feature_transform", false, false, 0, 0, {0, 1}},
  };
  return s;
}

SearchSpace SearchSpace::mobilenet() {
  SearchSpace s;
  s.params = {
      {"lr", true, true, 1e-4, 1e-2, {}},
      {"adam_beta1", true, false, 0.001, 0.999, {}},
      {"adam_beta2", true, false, 0.001, 0.999, {}},
      {"weight_decay", true, false, 0.0, 0.5, {}},
      {"lr_decay_factor", true, false, 0.1, 0.9, {}},
      {"lr_decay_period", true, false, 0, 0, {5, 10, 20, 40}},
      {"batch_size", false, false, 0, 0, {1024, 2048}},
      {"version", false, false, 0, 0, {2, 3}},  // V2 vs V3-Large
      // Structural width multiplier: changes every channel count, so trials
      // with different widths cannot share a fused graph (infusible).
      {"width_mult", false, false, 0, 0, {0.25, 0.5}},
  };
  return s;
}

std::vector<std::vector<size_t>> partition_by_infusible(
    const SearchSpace& space, const std::vector<ParamSet>& sets) {
  const std::vector<size_t> inf = space.infusible_indices();
  std::map<std::vector<double>, std::vector<size_t>> groups;
  for (size_t i = 0; i < sets.size(); ++i) {
    std::vector<double> key;
    for (size_t idx : inf) key.push_back(sets[i][idx]);
    groups[key].push_back(i);
  }
  std::vector<std::vector<size_t>> out;
  out.reserve(groups.size());
  for (auto& [key, members] : groups) out.push_back(std::move(members));
  return out;
}

std::vector<double> unfuse_and_reorder(
    const std::vector<std::vector<size_t>>& partitions,
    const std::vector<std::vector<double>>& partition_results, size_t total) {
  std::vector<double> out(total, 0.0);
  HFTA_CHECK(partitions.size() == partition_results.size(),
             "unfuse_and_reorder: partition count mismatch");
  for (size_t p = 0; p < partitions.size(); ++p) {
    HFTA_CHECK(partitions[p].size() == partition_results[p].size(),
               "unfuse_and_reorder: partition ", p, " size mismatch");
    for (size_t j = 0; j < partitions[p].size(); ++j)
      out[partitions[p][j]] = partition_results[p][j];
  }
  return out;
}

}  // namespace hfta::hfht
