// Tuning algorithms driving Algorithm 1: random search (Bergstra & Bengio
// 2012) and Hyperband (Li et al. 2018) with the paper's Table 11 settings.
#pragma once

#include <memory>

#include "hfht/space.h"

namespace hfta::hfht {

/// One training job request: evaluate `params` for `epochs`.
struct Trial {
  ParamSet params;
  int64_t epochs = 1;
};

class TuningAlgorithm {
 public:
  virtual ~TuningAlgorithm() = default;
  /// Next batch of trials; empty when the algorithm is finished.
  virtual std::vector<Trial> propose() = 0;
  /// Feeds back validation accuracies (aligned with the proposed batch).
  virtual void update(const std::vector<Trial>& trials,
                      const std::vector<double>& accuracy) = 0;

  double best_accuracy() const { return best_; }
  const ParamSet& best_params() const { return best_params_; }

 protected:
  void record(const ParamSet& p, double acc) {
    if (acc > best_) {
      best_ = acc;
      best_params_ = p;
    }
  }
  double best_ = 0;
  ParamSet best_params_;
};

/// Proposes `total_sets` random sets, each trained `epochs_per_set` epochs
/// (Table 11: PointNet 60x25, MobileNet 50x20).
class RandomSearch : public TuningAlgorithm {
 public:
  RandomSearch(SearchSpace space, int64_t total_sets, int64_t epochs_per_set,
               uint64_t seed);
  std::vector<Trial> propose() override;
  void update(const std::vector<Trial>& trials,
              const std::vector<double>& accuracy) override;

 private:
  SearchSpace space_;
  int64_t total_sets_, epochs_per_set_;
  Rng rng_;
  bool done_ = false;
};

/// Hyperband successive halving (Table 11: PointNet R=250 eta=5 skip 1;
/// MobileNet R=81 eta=3 skip 2).
class Hyperband : public TuningAlgorithm {
 public:
  Hyperband(SearchSpace space, int64_t max_epochs_r, int64_t eta,
            int64_t skip_last, uint64_t seed);
  std::vector<Trial> propose() override;
  void update(const std::vector<Trial>& trials,
              const std::vector<double>& accuracy) override;

  /// Exposed for tests: bracket schedule (n_i, r_i) for bracket `s`.
  struct Round {
    int64_t configs;
    int64_t epochs;
  };
  std::vector<Round> bracket_schedule(int64_t s) const;
  int64_t s_max() const { return s_max_; }

 private:
  SearchSpace space_;
  int64_t R_, eta_, skip_last_, s_max_;
  Rng rng_;

  // iteration state
  int64_t bracket_ = 0;  // current s (descending from s_max_)
  int64_t round_ = 0;    // round inside the bracket
  std::vector<ParamSet> survivors_;
  bool done_ = false;
};

}  // namespace hfta::hfht
