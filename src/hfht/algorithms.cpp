#include "hfht/algorithms.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"

namespace hfta::hfht {

RandomSearch::RandomSearch(SearchSpace space, int64_t total_sets,
                           int64_t epochs_per_set, uint64_t seed)
    : space_(std::move(space)),
      total_sets_(total_sets),
      epochs_per_set_(epochs_per_set),
      rng_(seed) {}

std::vector<Trial> RandomSearch::propose() {
  if (done_) return {};
  std::vector<Trial> out;
  for (int64_t i = 0; i < total_sets_; ++i)
    out.push_back({space_.sample(rng_), epochs_per_set_});
  done_ = true;
  return out;
}

void RandomSearch::update(const std::vector<Trial>& trials,
                          const std::vector<double>& accuracy) {
  for (size_t i = 0; i < trials.size(); ++i)
    record(trials[i].params, accuracy[i]);
}

Hyperband::Hyperband(SearchSpace space, int64_t max_epochs_r, int64_t eta,
                     int64_t skip_last, uint64_t seed)
    : space_(std::move(space)),
      R_(max_epochs_r),
      eta_(eta),
      skip_last_(skip_last),
      rng_(seed) {
  s_max_ = static_cast<int64_t>(
      std::floor(std::log(static_cast<double>(R_)) /
                 std::log(static_cast<double>(eta_))));
  bracket_ = s_max_;
}

std::vector<Hyperband::Round> Hyperband::bracket_schedule(int64_t s) const {
  // Standard Hyperband: n = ceil((s_max+1)/(s+1) * eta^s) configs starting
  // at r = R * eta^-s epochs, halved (eta-ed) each round; the paper skips
  // the last `skip_last` rounds of every bracket.
  std::vector<Round> rounds;
  const double n0 = std::ceil(static_cast<double>(s_max_ + 1) /
                              static_cast<double>(s + 1) *
                              std::pow(static_cast<double>(eta_),
                                       static_cast<double>(s)));
  const double r0 = static_cast<double>(R_) *
                    std::pow(static_cast<double>(eta_),
                             -static_cast<double>(s));
  const int64_t total_rounds = std::max<int64_t>(1, s + 1 - skip_last_);
  for (int64_t i = 0; i < total_rounds; ++i) {
    const int64_t n = std::max<int64_t>(
        1, static_cast<int64_t>(std::floor(
               n0 * std::pow(static_cast<double>(eta_),
                             -static_cast<double>(i)))));
    const int64_t r = std::max<int64_t>(
        1, static_cast<int64_t>(std::round(
               r0 * std::pow(static_cast<double>(eta_),
                             static_cast<double>(i)))));
    rounds.push_back({n, r});
  }
  return rounds;
}

std::vector<Trial> Hyperband::propose() {
  if (done_) return {};
  const auto schedule = bracket_schedule(bracket_);
  const Round& round = schedule[static_cast<size_t>(round_)];
  std::vector<Trial> out;
  if (round_ == 0) {
    // fresh bracket: sample n configs
    for (int64_t i = 0; i < round.configs; ++i)
      out.push_back({space_.sample(rng_), round.epochs});
  } else {
    for (const ParamSet& p : survivors_) out.push_back({p, round.epochs});
  }
  return out;
}

void Hyperband::update(const std::vector<Trial>& trials,
                       const std::vector<double>& accuracy) {
  HFTA_CHECK(trials.size() == accuracy.size(), "Hyperband: result mismatch");
  for (size_t i = 0; i < trials.size(); ++i)
    record(trials[i].params, accuracy[i]);

  const auto schedule = bracket_schedule(bracket_);
  // survivors for the next round: top n/eta by accuracy
  if (round_ + 1 < static_cast<int64_t>(schedule.size())) {
    const int64_t keep = schedule[static_cast<size_t>(round_ + 1)].configs;
    std::vector<size_t> order(trials.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return accuracy[a] > accuracy[b];
    });
    survivors_.clear();
    for (int64_t i = 0; i < keep && i < static_cast<int64_t>(order.size());
         ++i)
      survivors_.push_back(trials[order[static_cast<size_t>(i)]].params);
    ++round_;
  } else {
    // bracket finished
    survivors_.clear();
    round_ = 0;
    --bracket_;
    if (bracket_ < 0) done_ = true;
  }
}

}  // namespace hfta::hfht
