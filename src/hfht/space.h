// HFHT hyper-parameter search spaces (paper Appendix E / Table 12).
//
// Each hyper-parameter is fusible (co-evaluable inside one fused job —
// learning rates, betas, decay factors) or infusible (changes operator
// shapes or the architecture — batch size, feature transform, model
// version). partition_by_infusible() groups proposed sets so every
// partition can run as a single fused job.
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"

namespace hfta::hfht {

struct HyperParam {
  std::string name;
  bool fusible = true;
  bool log_scale = false;            // sample uniformly in log10 space
  double lo = 0, hi = 1;             // continuous range (when choices empty)
  std::vector<double> choices;       // discrete values

  double sample(Rng& rng) const;
};

/// One proposed assignment (values aligned with SearchSpace::params).
using ParamSet = std::vector<double>;

struct SearchSpace {
  std::vector<HyperParam> params;

  ParamSet sample(Rng& rng) const;
  /// Indices of infusible params.
  std::vector<size_t> infusible_indices() const;

  /// Index of the named hyper-parameter; fails on unknown names, so callers
  /// read values as space.get(set, "lr") instead of magic indices.
  size_t index_of(const std::string& name) const;
  /// Value of the named hyper-parameter in `set`.
  double get(const ParamSet& set, const std::string& name) const;

  /// The paper's PointNet task: 8 hyper-parameters, 2 infusible
  /// (batch size, feature transformation) — Table 12.
  static SearchSpace pointnet();
  /// The paper's MobileNet task (Table 12's 8 hyper-parameters, 2
  /// infusible: batch size, V2 vs V3-Large) extended with a 9th,
  /// infusible width_mult — a structural axis that partitions trials by
  /// channel width on top of the paper's two.
  static SearchSpace mobilenet();
};

/// Groups sets by their infusible values; each group can be fused
/// (Appendix E, Fig. 12).
std::vector<std::vector<size_t>> partition_by_infusible(
    const SearchSpace& space, const std::vector<ParamSet>& sets);

/// Restores per-set results scattered by partitioning back to the original
/// proposal order ("unfuse_and_reorder" in Algorithm 1).
std::vector<double> unfuse_and_reorder(
    const std::vector<std::vector<size_t>>& partitions,
    const std::vector<std::vector<double>>& partition_results,
    size_t total);

}  // namespace hfta::hfht
