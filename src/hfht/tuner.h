// End-to-end HFHT runs: Algorithm 1 with a synthetic (deterministic)
// validation-accuracy surface. The surface rewards sensible learning rates
// and more epochs so that Hyperband's successive halving has signal to act
// on; GPU-hour accounting comes from the scheduler cost model.
#pragma once

#include "hfht/schedulers.h"

namespace hfta::hfht {

enum class Task { kPointNet, kMobileNet };
enum class AlgorithmKind { kRandomSearch, kHyperband };
const char* task_name(Task t);
const char* algorithm_name(AlgorithmKind a);

struct TuneResult {
  double total_gpu_hours = 0;
  double best_accuracy = 0;
  int64_t total_trials = 0;
  int64_t iterations = 0;  // Algorithm-1 loop iterations
};

/// Deterministic synthetic accuracy for a trial (pure function of the
/// hyper-parameters + epoch budget + task).
double synthetic_accuracy(const SearchSpace& space, const ParamSet& params,
                          int64_t epochs, Task task);

/// Builds the paper's Table-11 configuration of `algo` for `task`.
std::unique_ptr<TuningAlgorithm> make_algorithm(AlgorithmKind algo, Task task,
                                                uint64_t seed);

/// Runs the full tuning workload on one device under one scheduler.
TuneResult run_tuning(Task task, AlgorithmKind algo, SchedulerKind scheduler,
                      const sim::DeviceSpec& dev, uint64_t seed);

}  // namespace hfta::hfht
