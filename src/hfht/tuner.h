// End-to-end HFHT runs: Algorithm 1 with a synthetic (deterministic)
// validation-accuracy surface. The surface rewards sensible learning rates
// and more epochs so that Hyperband's successive halving has signal to act
// on; GPU-hour accounting comes from the scheduler cost model.
#pragma once

#include "hfht/schedulers.h"

namespace hfta::hfht {

enum class Task { kPointNet, kMobileNet };
enum class AlgorithmKind { kRandomSearch, kHyperband };
const char* task_name(Task t);
const char* algorithm_name(AlgorithmKind a);

struct TuneResult {
  double total_gpu_hours = 0;
  double best_accuracy = 0;
  int64_t total_trials = 0;
  int64_t iterations = 0;  // Algorithm-1 loop iterations
};

/// Deterministic synthetic accuracy for a trial (pure function of the
/// hyper-parameters + epoch budget + task).
double synthetic_accuracy(const SearchSpace& space, const ParamSet& params,
                          int64_t epochs, Task task);

/// Builds the paper's Table-11 configuration of `algo` for `task`.
/// `budget_override` (when > 0) shrinks the workload for smoke runs: it
/// replaces random search's set count and Hyperband's max-epoch budget R.
std::unique_ptr<TuningAlgorithm> make_algorithm(AlgorithmKind algo, Task task,
                                                uint64_t seed,
                                                int64_t budget_override = 0);

class TrialExecutor;  // hfht/executor.h

/// Algorithm 1's main loop against any executor: propose -> run -> update
/// until the algorithm is exhausted. This is the seam between tuning logic
/// and trial execution (synthetic cost model or real fused training).
TuneResult run_tuning(TuningAlgorithm& algorithm, TrialExecutor& executor);

/// Runs the full tuning workload on one device under one scheduler with the
/// synthetic executor (the Fig. 8 configuration).
TuneResult run_tuning(Task task, AlgorithmKind algo, SchedulerKind scheduler,
                      const sim::DeviceSpec& dev, uint64_t seed,
                      int64_t budget_override = 0);

}  // namespace hfta::hfht
