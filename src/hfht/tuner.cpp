#include "hfht/tuner.h"

#include <cmath>

#include "core/check.h"

namespace hfta::hfht {

const char* task_name(Task t) {
  return t == Task::kPointNet ? "PointNet" : "MobileNet";
}

const char* algorithm_name(AlgorithmKind a) {
  return a == AlgorithmKind::kRandomSearch ? "random-search" : "Hyperband";
}

double synthetic_accuracy(const SearchSpace& space, const ParamSet& params,
                          int64_t epochs, Task task) {
  HFTA_CHECK(params.size() == space.params.size(), "accuracy: arity mismatch");
  // Quality peaks at lr ~ 1e-3, beta1 ~ 0.9, moderate weight decay; the
  // infusible choices shift the ceiling slightly (bigger batches slightly
  // worse, feature transform slightly better).
  const double lr = params[0];
  const double beta1 = params[1];
  const double wd = params[3];
  const double lg = std::log10(lr);
  double quality = 0.9;
  quality -= 0.08 * (lg + 3.0) * (lg + 3.0);       // bowl around 1e-3
  quality -= 0.10 * std::fabs(beta1 - 0.9);
  quality -= 0.15 * wd;
  const double batch = params[6];
  quality -= (task == Task::kPointNet ? 0.002 : 0.00001) * batch / 8.0;
  quality += 0.01 * params[7];
  // Epochs: saturating learning curve; lr-dependent time constant.
  const double tau = 8.0 + 4.0 * std::fabs(lg + 3.0);
  const double progress = 1.0 - std::exp(-static_cast<double>(epochs) / tau);
  // Deterministic jitter keyed by the full parameter set.
  uint64_t key = 0xC0FFEE;
  for (double v : params)
    key = hash_combine(key, static_cast<uint64_t>(v * 1e6));
  const double noise = 0.01 * (hash_to_unit(key) - 0.5);
  return std::max(0.05, quality * progress + noise);
}

std::unique_ptr<TuningAlgorithm> make_algorithm(AlgorithmKind algo, Task task,
                                                uint64_t seed) {
  SearchSpace space = task == Task::kPointNet ? SearchSpace::pointnet()
                                              : SearchSpace::mobilenet();
  if (algo == AlgorithmKind::kRandomSearch) {
    // Table 11: PointNet 60 sets x 25 epochs; MobileNet 50 x 20.
    return task == Task::kPointNet
               ? std::make_unique<RandomSearch>(space, 60, 25, seed)
               : std::make_unique<RandomSearch>(space, 50, 20, seed);
  }
  // Table 11: PointNet R=250 eta=5 skip-last 1; MobileNet R=81 eta=3 skip 2.
  return task == Task::kPointNet
             ? std::make_unique<Hyperband>(space, 250, 5, 1, seed)
             : std::make_unique<Hyperband>(space, 81, 3, 2, seed);
}

TuneResult run_tuning(Task task, AlgorithmKind algo, SchedulerKind scheduler,
                      const sim::DeviceSpec& dev, uint64_t seed) {
  const SearchSpace space = task == Task::kPointNet ? SearchSpace::pointnet()
                                                    : SearchSpace::mobilenet();
  const sim::Workload w = task == Task::kPointNet
                              ? sim::Workload::kPointNetCls
                              : sim::Workload::kMobileNetV3;
  auto tuning = make_algorithm(algo, task, seed);
  TuneResult result;
  // Algorithm 1 main loop.
  while (true) {
    const std::vector<Trial> batch = tuning->propose();
    if (batch.empty()) break;
    ++result.iterations;
    result.total_trials += static_cast<int64_t>(batch.size());
    const CostReport cost = schedule_cost(batch, space, w, dev, scheduler);
    result.total_gpu_hours += cost.gpu_hours;
    std::vector<double> acc;
    acc.reserve(batch.size());
    for (const Trial& t : batch)
      acc.push_back(synthetic_accuracy(space, t.params, t.epochs, task));
    tuning->update(batch, acc);
  }
  result.best_accuracy = tuning->best_accuracy();
  return result;
}

}  // namespace hfta::hfht
