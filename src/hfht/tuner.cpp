#include "hfht/tuner.h"

#include <cmath>

#include "core/check.h"
#include "hfht/executor.h"

namespace hfta::hfht {

const char* task_name(Task t) {
  return t == Task::kPointNet ? "PointNet" : "MobileNet";
}

const char* algorithm_name(AlgorithmKind a) {
  return a == AlgorithmKind::kRandomSearch ? "random-search" : "Hyperband";
}

double synthetic_accuracy(const SearchSpace& space, const ParamSet& params,
                          int64_t epochs, Task task) {
  HFTA_CHECK(params.size() == space.params.size(), "accuracy: arity mismatch");
  // Quality peaks at lr ~ 1e-3, beta1 ~ 0.9, moderate weight decay; the
  // infusible choices shift the ceiling slightly (bigger batches slightly
  // worse, feature transform slightly better).
  const double lr = params[0];
  const double beta1 = params[1];
  const double wd = params[3];
  const double lg = std::log10(lr);
  double quality = 0.9;
  quality -= 0.08 * (lg + 3.0) * (lg + 3.0);       // bowl around 1e-3
  quality -= 0.10 * std::fabs(beta1 - 0.9);
  quality -= 0.15 * wd;
  const double batch = params[6];
  quality -= (task == Task::kPointNet ? 0.002 : 0.00001) * batch / 8.0;
  quality += 0.01 * params[7];
  // Epochs: saturating learning curve; lr-dependent time constant.
  const double tau = 8.0 + 4.0 * std::fabs(lg + 3.0);
  const double progress = 1.0 - std::exp(-static_cast<double>(epochs) / tau);
  // Deterministic jitter keyed by the full parameter set.
  uint64_t key = 0xC0FFEE;
  for (double v : params)
    key = hash_combine(key, static_cast<uint64_t>(v * 1e6));
  const double noise = 0.01 * (hash_to_unit(key) - 0.5);
  return std::max(0.05, quality * progress + noise);
}

std::unique_ptr<TuningAlgorithm> make_algorithm(AlgorithmKind algo, Task task,
                                                uint64_t seed,
                                                int64_t budget_override) {
  SearchSpace space = task == Task::kPointNet ? SearchSpace::pointnet()
                                              : SearchSpace::mobilenet();
  if (algo == AlgorithmKind::kRandomSearch) {
    // Table 11: PointNet 60 sets x 25 epochs; MobileNet 50 x 20.
    const int64_t sets =
        budget_override > 0 ? budget_override
                            : (task == Task::kPointNet ? 60 : 50);
    return std::make_unique<RandomSearch>(
        space, sets, task == Task::kPointNet ? 25 : 20, seed);
  }
  // Table 11: PointNet R=250 eta=5 skip-last 1; MobileNet R=81 eta=3 skip 2.
  const int64_t R =
      budget_override > 0 ? budget_override
                          : (task == Task::kPointNet ? 250 : 81);
  return task == Task::kPointNet
             ? std::make_unique<Hyperband>(space, R, 5, 1, seed)
             : std::make_unique<Hyperband>(space, R, 3, 2, seed);
}

TuneResult run_tuning(TuningAlgorithm& algorithm, TrialExecutor& executor) {
  TuneResult result;
  // Algorithm 1 main loop.
  while (true) {
    const std::vector<Trial> batch = algorithm.propose();
    if (batch.empty()) break;
    ++result.iterations;
    result.total_trials += static_cast<int64_t>(batch.size());
    const ExecutionReport rep = executor.run(batch);
    HFTA_CHECK(rep.scores.size() == batch.size(),
               "run_tuning: executor returned ", rep.scores.size(),
               " scores for ", batch.size(), " trials");
    result.total_gpu_hours += rep.cost.gpu_hours;
    algorithm.update(batch, rep.scores);
  }
  result.best_accuracy = algorithm.best_accuracy();
  return result;
}

TuneResult run_tuning(Task task, AlgorithmKind algo, SchedulerKind scheduler,
                      const sim::DeviceSpec& dev, uint64_t seed,
                      int64_t budget_override) {
  auto tuning = make_algorithm(algo, task, seed, budget_override);
  SyntheticExecutor executor(task, scheduler, dev);
  return run_tuning(*tuning, executor);
}

}  // namespace hfta::hfht
