// The Algorithm-1 execution seam. HFHT's tuning loop (propose -> run ->
// update) talks to a TrialExecutor: the synthetic executor keeps the
// deterministic accuracy surface + cost model that reproduce Fig. 8's
// GPU-hour curves, and the fused-training executor runs every trial for
// real — each partition_by_infusible() group becomes a planner-compiled
// FusedArray driven by a FusedAdam with per-trial hyper-parameter vectors,
// scored from per-model cross-entropy. Hyperband's successive halving maps
// onto FusionPlan::repack_multi: rung survivors — even survivors spread
// over several chunked arrays — are gathered into one fresh array that
// continues training bit-exactly.
#pragma once

#include <memory>
#include <utility>

#include "data/datasets.h"
#include "hfht/tuner.h"
#include "hfta/train.h"

namespace hfta::fused {
class FusedAdam;
}
namespace hfta::nn {
class Module;
}
namespace hfta::data {
class BatchSampler;  // data/loader.h
}

namespace hfta::hfht {

/// Result of executing one proposed batch: per-trial scores (aligned with
/// the batch; higher is better) and the GPU-hour bill.
struct ExecutionReport {
  std::vector<double> scores;
  CostReport cost;
};

/// Runs batches of trials for the tuning loop (Algorithm 1, lines 7-12).
class TrialExecutor {
 public:
  virtual ~TrialExecutor() = default;
  virtual ExecutionReport run(const std::vector<Trial>& batch) = 0;
};

/// The paper-figure executor: scores from the synthetic accuracy surface,
/// cost from the scheduler cost model (unchanged Fig. 8 behavior).
class SyntheticExecutor : public TrialExecutor {
 public:
  SyntheticExecutor(Task task, SchedulerKind scheduler, sim::DeviceSpec dev);
  ExecutionReport run(const std::vector<Trial>& batch) override;

 private:
  Task task_;
  SchedulerKind scheduler_;
  sim::DeviceSpec dev_;
  SearchSpace space_;
  sim::Workload workload_;
};

/// The real executor: trains every trial on an actual fused array. Both
/// paper tasks run for real — PointNet classification on synthetic point
/// clouds and MobileNet (V3-Large or V2, the infusible "version"
/// hyper-parameter) on synthetic images; each trial's per-model graph is a
/// pure function of its ParamSet, so serial reruns reproduce it exactly.
///
/// Each infusible partition (same batch size / structural params) compiles
/// into one FusedArray via the planner; per-trial lr/beta1/beta2/weight
/// decay ride in the FusedAdam's HyperVecs and the per-trial StepLR decay
/// is applied epoch-wise to the lr vector. Scores come from per-model
/// cross-entropy on a held-out batch, mapped to 1/(1+loss). Cost is priced
/// by simulating the group's REAL kernel trace (the trial's batch size and
/// widths) on the device model.
///
/// Arrays live across rung boundaries: when a later batch re-proposes
/// already-trained members with a larger epoch budget (Hyperband
/// survivors), the survivors are gathered — across ALL live arrays they
/// trained in, not just one — into a fresh array
/// (FusionPlan::repack_multi + the multi-source
/// FusedOptimizer::repack_state_from) and continue training exactly where
/// they stopped. This covers the paper-scale bracket case where a rung
/// exceeded max_array_size and was chunked: survivors spanning chunk
/// boundaries used to retrain from scratch, now they merge and continue.
class FusedTrainingExecutor : public TrialExecutor {
 public:
  struct Options {
    int64_t dataset_size = 64;   // synthetic training samples
    int64_t eval_size = 16;      // held-out scoring samples
    int64_t max_array_size = 8;  // fused-chunk cap (device-memory stand-in)
    uint64_t seed = 0x5EED;
    /// Additionally trains every group's B models serially (same data, same
    /// schedules) and records the max per-model loss deviation — the
    /// bit-exactness audit printed by examples/hfht_tuning.
    bool verify_against_serial = false;
    /// Mixed precision for trial training: autocast the GEMM/conv class to
    /// `amp_dtype` with dynamic loss scaling (TrainStep::enable_amp). One
    /// LossScaler lives on the executor's TrainStep, so its state survives
    /// Hyperband rungs and repacks. The serial verification twins share the
    /// TrainStep and therefore train under the same AMP policy — the
    /// fused-vs-serial audit stays meaningful (and exact) under AMP.
    bool amp = false;
    DType amp_dtype = DType::kBF16;
  };

  FusedTrainingExecutor(Task task, sim::DeviceSpec dev, Options opts);
  FusedTrainingExecutor(Task task, sim::DeviceSpec dev)
      : FusedTrainingExecutor(task, dev, Options()) {}
  ~FusedTrainingExecutor() override;
  ExecutionReport run(const std::vector<Trial>& batch) override;

  /// Max |fused - serial| per-model training loss over every iteration of
  /// every verified group (0.0 when fused training IS the serial runs).
  double max_fused_vs_serial_diff() const { return max_diff_; }
  int64_t arrays_compiled() const { return compiled_; }
  int64_t arrays_repacked() const { return repacked_; }
  /// Halving repacks whose survivors were gathered from >= 2 live arrays
  /// (a rung larger than max_array_size was chunked — the paper-scale
  /// bracket case).
  int64_t multi_source_repacks() const { return multi_repacked_; }
  /// Total source arrays merged across those multi-source repacks.
  int64_t arrays_merged() const { return arrays_merged_; }
  /// Iterations verified on arrays that had been repacked at least once
  /// (> 0 proves bit-exactness held across a halving boundary).
  int64_t iterations_verified_after_repack() const {
    return post_repack_verified_;
  }
  /// Iterations verified on arrays merged from >= 2 sources (> 0 proves
  /// bit-exactness held across a chunk boundary).
  int64_t iterations_verified_after_merge() const {
    return post_merge_verified_;
  }
  /// The executor's iteration engine (capture/replay statistics: replays,
  /// captures, last-step allocation and Node-construction counts).
  const TrainStep& train_step() const { return train_step_; }

 private:
  struct Group;
  struct Pick;  // (live group, slot) of one gathered survivor

  Group* find_or_create(const std::vector<ParamSet>& members,
                        int64_t epoch_budget);
  Group* repack_groups(const std::vector<ParamSet>& members,
                       const std::vector<Pick>& picks, int64_t src_epochs);
  /// The per-trial model graph: a pure function of the ParamSet (structure
  /// from the infusible params, weight init from the param-set hash).
  std::shared_ptr<nn::Module> build_trial_net(const ParamSet& p) const;
  sim::IterationTrace build_group_trace(const Group& g, int64_t B) const;
  std::pair<Tensor, Tensor> train_batch(const std::vector<int64_t>& idx) const;
  /// The group's shuffle stream, reconstructed at its current epoch (a
  /// pure function of the infusible values, so a repack that finds every
  /// source sampler already moved can rebuild and fast-forward it).
  std::unique_ptr<data::BatchSampler> make_sampler(const Group& g) const;
  std::unique_ptr<fused::FusedAdam> make_optimizer(const Group& g) const;
  void train(Group& g, int64_t delta_epochs, CostReport* cost);
  /// Drops the step programs keyed by a dying group's optimizers (they
  /// would otherwise pin the captured graph until LRU eviction).
  void drop_group_programs(const Group& g);
  std::vector<double> score(Group& g);
  void price(const Group& g, int64_t delta_epochs, CostReport* cost) const;

  Task task_;
  sim::DeviceSpec dev_;
  Options opts_;
  SearchSpace space_;
  Rng rng_;
  /// One iteration engine for every group this executor ever trains (fused
  /// steps and serial verification twins alike): backward scratch and
  /// pooled tensor storage stay warm across trials, rungs, and repacks.
  TrainStep train_step_;
  std::unique_ptr<data::PointCloudDataset> cloud_ds_;  // kPointNet
  std::unique_ptr<data::ImageDataset> image_ds_;       // kMobileNet
  Tensor eval_x_, eval_y_;  // fixed held-out scoring batch
  std::vector<std::unique_ptr<Group>> groups_;

  int64_t compiled_ = 0;
  int64_t repacked_ = 0;
  int64_t multi_repacked_ = 0;
  int64_t arrays_merged_ = 0;
  int64_t post_repack_verified_ = 0;
  int64_t post_merge_verified_ = 0;
  double max_diff_ = 0.0;
};

}  // namespace hfta::hfht
