#include "hfht/executor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>

#include "core/check.h"
#include "data/loader.h"
#include "hfta/fused_optim.h"
#include "hfta/fusion.h"
#include "hfta/loss_scaling.h"
#include "models/pointnet.h"
#include "nn/optim.h"
#include "sim/execution.h"

namespace hfta::hfht {

namespace {

constexpr double kUsPerHour = 3.6e9;

// Exact (bit-pattern) hash of a parameter set, used to derive each trial's
// deterministic weight-init stream and each group's data-shuffle stream.
uint64_t param_key(const ParamSet& p, uint64_t seed) {
  uint64_t key = seed;
  for (double v : p) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    key = hash_combine(key, bits);
  }
  return key;
}

}  // namespace

// ---- SyntheticExecutor -----------------------------------------------------

SyntheticExecutor::SyntheticExecutor(Task task, SchedulerKind scheduler,
                                     sim::DeviceSpec dev)
    : task_(task),
      scheduler_(scheduler),
      dev_(dev),
      space_(task == Task::kPointNet ? SearchSpace::pointnet()
                                     : SearchSpace::mobilenet()),
      workload_(task == Task::kPointNet ? sim::Workload::kPointNetCls
                                        : sim::Workload::kMobileNetV3) {}

ExecutionReport SyntheticExecutor::run(const std::vector<Trial>& batch) {
  ExecutionReport rep;
  rep.cost = schedule_cost(batch, space_, workload_, dev_, scheduler_);
  rep.scores.reserve(batch.size());
  for (const Trial& t : batch)
    rep.scores.push_back(synthetic_accuracy(space_, t.params, t.epochs, task_));
  return rep;
}

// ---- FusedTrainingExecutor -------------------------------------------------

/// One live fused array: the planner-compiled trials of one infusible
/// partition, with the optimizer, the data-shuffle stream (kept so rung
/// survivors resume mid-stream), and — under verify_against_serial — the B
/// independently trained twin models the array must match bit-for-bit.
struct FusedTrainingExecutor::Group {
  std::vector<ParamSet> members;  // slot b trains members[b]
  models::PointNetConfig cfg;
  int64_t batch_size = 0;
  // Congruent per-model tree kept as the repack clone template (its weight
  // values are irrelevant — save_model overwrites every survivor clone).
  std::shared_ptr<models::PointNetCls> tmpl;
  std::shared_ptr<fused::FusedArray> array;
  std::unique_ptr<fused::FusedAdam> opt;
  std::unique_ptr<data::BatchSampler> sampler;
  int64_t epochs_trained = 0;
  bool ever_repacked = false;
  // serial verification twins (empty unless verify_against_serial)
  std::vector<std::shared_ptr<models::PointNetCls>> serial;
  std::vector<std::unique_ptr<nn::Adam>> serial_opts;

  int64_t B() const { return static_cast<int64_t>(members.size()); }

  fused::HyperVec hyper(const SearchSpace& space, const char* name) const {
    fused::HyperVec v;
    v.reserve(members.size());
    for (const ParamSet& p : members) v.push_back(space.get(p, name));
    return v;
  }
};

FusedTrainingExecutor::FusedTrainingExecutor(Task task, sim::DeviceSpec dev,
                                             Options opts)
    : task_(task),
      dev_(dev),
      opts_(opts),
      space_(SearchSpace::pointnet()),
      rng_(opts.seed) {
  HFTA_CHECK(task_ == Task::kPointNet,
             "FusedTrainingExecutor: only the PointNet task trains for real "
             "so far (MobileNet still uses the synthetic executor)");
  const models::PointNetConfig cfg = models::PointNetConfig::tiny();
  train_ds_ = std::make_unique<data::PointCloudDataset>(
      opts_.dataset_size, cfg.num_points, cfg.num_classes, cfg.num_parts,
      opts_.seed);
  // The held-out scoring batch is fixed for the executor's lifetime.
  const data::PointCloudDataset eval_ds(opts_.eval_size, cfg.num_points,
                                        cfg.num_classes, cfg.num_parts,
                                        opts_.seed + 1);
  std::vector<int64_t> idx(static_cast<size_t>(opts_.eval_size));
  for (int64_t i = 0; i < opts_.eval_size; ++i)
    idx[static_cast<size_t>(i)] = i;
  std::tie(eval_x_, eval_y_) = eval_ds.batch_cls(idx);
}

std::unique_ptr<fused::FusedAdam> FusedTrainingExecutor::make_optimizer(
    const Group& g) const {
  const int64_t B = g.B();
  return std::make_unique<fused::FusedAdam>(
      fused::collect_fused_parameters(*g.array, B), B,
      fused::FusedAdam::Options{g.hyper(space_, "lr"),
                                g.hyper(space_, "adam_beta1"),
                                g.hyper(space_, "adam_beta2"),
                                {1e-8},
                                g.hyper(space_, "weight_decay")});
}

FusedTrainingExecutor::~FusedTrainingExecutor() = default;

FusedTrainingExecutor::Group* FusedTrainingExecutor::find_or_create(
    const std::vector<ParamSet>& members, int64_t epoch_budget) {
  // A live group whose members are exactly the requested sets (same order)
  // continues as-is; one that contains them as a subset / permutation is a
  // Hyperband halving boundary — repack the survivors into a smaller array.
  for (auto& gp : groups_) {
    Group& g = *gp;
    if (g.epochs_trained > epoch_budget) continue;
    std::vector<int64_t> keep;
    keep.reserve(members.size());
    for (const ParamSet& want : members) {
      // Injective matching: duplicate parameter sets (possible with the
      // discrete choice lists) must map to distinct slots, or the repack
      // below would move the same serial twin twice.
      int64_t found = -1;
      for (int64_t i = 0; i < g.B(); ++i) {
        if (std::find(keep.begin(), keep.end(), i) != keep.end()) continue;
        if (g.members[static_cast<size_t>(i)] == want) {
          found = i;
          break;
        }
      }
      if (found < 0) break;
      keep.push_back(found);
    }
    if (keep.size() != members.size()) continue;
    bool identity = g.B() == static_cast<int64_t>(members.size());
    for (size_t j = 0; identity && j < keep.size(); ++j)
      identity = keep[j] == static_cast<int64_t>(j);
    if (identity) return &g;

    // Halving: extract the survivors and continue on a smaller array.
    const int64_t newB = static_cast<int64_t>(members.size());
    fused::FusionOptions fopts;
    fopts.output_layout = fused::Layout::kModelMajor;
    const fused::FusionPlan plan(newB, fopts);
    auto repacked = std::make_unique<Group>();
    repacked->members = members;
    repacked->cfg = g.cfg;
    repacked->batch_size = g.batch_size;
    repacked->tmpl = g.tmpl;
    repacked->array = plan.repack(*g.array, keep, *g.tmpl->net, rng_);
    repacked->opt = make_optimizer(*repacked);
    repacked->opt->repack_state_from(*g.opt, keep);
    repacked->sampler = std::move(g.sampler);  // resume the shuffle stream
    repacked->epochs_trained = g.epochs_trained;
    repacked->ever_repacked = true;
    for (int64_t b : keep) {
      if (g.serial.empty()) break;
      repacked->serial.push_back(std::move(g.serial[static_cast<size_t>(b)]));
      repacked->serial_opts.push_back(
          std::move(g.serial_opts[static_cast<size_t>(b)]));
    }
    ++repacked_;
    gp = std::move(repacked);  // the donor array (and its killed trials) die
    return gp.get();
  }

  // Fresh partition: build one congruent per-model graph per trial (each
  // trial's weight init is a pure function of its parameter set, so serial
  // reruns reproduce it) and compile them into a fused array.
  auto g = std::make_unique<Group>();
  g->members = members;
  g->cfg = models::PointNetConfig::tiny();
  g->cfg.input_transform = space_.get(members[0], "feature_transform") != 0.0;
  g->batch_size = static_cast<int64_t>(space_.get(members[0], "batch_size"));
  HFTA_CHECK(g->batch_size >= 1 && g->batch_size <= train_ds_->size(),
             "FusedTrainingExecutor: batch size ", g->batch_size,
             " does not fit the dataset (", train_ds_->size(), " samples)");
  const int64_t B = g->B();
  std::vector<std::shared_ptr<models::PointNetCls>> donors;
  std::vector<std::shared_ptr<nn::Module>> nets;
  for (const ParamSet& p : members) {
    Rng donor_rng(param_key(p, opts_.seed ^ 0xD0));
    donors.push_back(std::make_shared<models::PointNetCls>(g->cfg, donor_rng));
    nets.push_back(donors.back()->net);
  }
  g->tmpl = donors[0];  // doubles as the future repack clone template
  fused::FusionOptions fopts;
  fopts.output_layout = fused::Layout::kModelMajor;
  g->array = fused::FusionPlan(B, fopts).compile(nets, rng_);
  g->opt = make_optimizer(*g);
  // Infusible values identify the partition, so the shuffle stream is a pure
  // function of them — the serial rerun of any member draws the same batches.
  std::vector<double> inf_vals;
  for (size_t i : space_.infusible_indices()) inf_vals.push_back(members[0][i]);
  g->sampler = std::make_unique<data::BatchSampler>(
      train_ds_->size(), g->batch_size, /*shuffle=*/true,
      param_key(inf_vals, opts_.seed ^ 0xDA7A));
  if (opts_.verify_against_serial) {
    for (int64_t b = 0; b < B; ++b) {
      g->serial.push_back(donors[static_cast<size_t>(b)]);
      g->serial_opts.push_back(std::make_unique<nn::Adam>(
          donors[static_cast<size_t>(b)]->parameters(),
          nn::Adam::Options{
              space_.get(members[static_cast<size_t>(b)], "lr"),
              space_.get(members[static_cast<size_t>(b)], "adam_beta1"),
              space_.get(members[static_cast<size_t>(b)], "adam_beta2"),
              1e-8,
              space_.get(members[static_cast<size_t>(b)], "weight_decay")}));
    }
  }
  ++compiled_;
  groups_.push_back(std::move(g));
  // Bound the live-array cache: fresh brackets sample fresh parameter sets,
  // so the oldest groups can never be continued and are safe to drop. The
  // cap comfortably exceeds the chunks of any single proposal round.
  constexpr size_t kMaxLiveGroups = 64;
  if (groups_.size() > kMaxLiveGroups) groups_.erase(groups_.begin());
  return groups_.back().get();
}

void FusedTrainingExecutor::train(Group& g, int64_t delta_epochs,
                                  CostReport* cost) {
  const int64_t B = g.B();
  const int64_t N = g.batch_size;
  const fused::HyperVec base_lr = g.hyper(space_, "lr");
  const fused::HyperVec decay = g.hyper(space_, "lr_decay_factor");
  const fused::HyperVec period = g.hyper(space_, "lr_decay_period");
  for (int64_t e = 0; e < delta_epochs; ++e) {
    // Per-trial StepLR, computed once in double and fed to both the fused
    // lr vector and the serial twins so the float paths are identical.
    const int64_t epoch = g.epochs_trained + e;
    fused::HyperVec lrs(static_cast<size_t>(B));
    for (int64_t b = 0; b < B; ++b) {
      const size_t ub = static_cast<size_t>(b);
      const double k = std::floor(static_cast<double>(epoch) / period[ub]);
      lrs[ub] = base_lr[ub] * std::pow(decay[ub], k);
    }
    g.opt->set_lr(lrs);
    for (size_t b = 0; b < g.serial_opts.size(); ++b)
      g.serial_opts[b]->set_lr(lrs[b]);

    for (const auto& bidx : g.sampler->epoch()) {
      auto [x, y] = train_ds_->batch_cls(bidx);
      std::vector<Tensor> xs(static_cast<size_t>(B), x);
      Tensor labels({B, N});
      for (int64_t b = 0; b < B; ++b)
        for (int64_t n = 0; n < N; ++n) labels.at({b, n}) = y.at({n});
      g.opt->zero_grad();
      ag::Variable logits =
          g.array->forward(ag::Variable(fused::pack_channel_fused(xs)));
      // Only the serial-verification audit reads the per-model losses —
      // skip the extra softmax pass on plain tuning runs.
      std::vector<double> fused_losses;
      if (!g.serial.empty())
        fused_losses = fused::per_model_cross_entropy(logits.value(), labels);
      // Per-model mean CE built as (1/N) * sum: its backward scales every
      // row by the same float(1/N) the serial kMean loss uses, so the
      // gradients match the B serial runs bit-for-bit regardless of how
      // float(1/(B*N)) * B would round (Appendix C, Eq. 5 route).
      ag::mul_scalar(
          fused::fused_cross_entropy(logits, labels, ag::Reduction::kSum),
          1.f / static_cast<float>(N))
          .backward();
      g.opt->step();

      for (size_t b = 0; b < g.serial.size(); ++b) {
        g.serial_opts[b]->zero_grad();
        ag::Variable sl = g.serial[b]->forward(ag::Variable(x));
        // Same per-model reduction routine on both sides: the comparison
        // detects logits drift, not reduction-order noise.
        const double serial_loss = fused::per_model_cross_entropy(
            sl.value().reshape({1, N, g.cfg.num_classes}),
            y.reshape({1, N}))[0];
        ag::cross_entropy(sl, y, ag::Reduction::kMean).backward();
        g.serial_opts[b]->step();
        max_diff_ = std::max(max_diff_,
                             std::fabs(fused_losses[b] - serial_loss));
        if (g.ever_repacked) ++post_repack_verified_;
      }
    }
  }
  price(g, delta_epochs, cost);
  g.epochs_trained += delta_epochs;
}

std::vector<double> FusedTrainingExecutor::score(Group& g) {
  // Held-out score on the fixed eval batch: per-model CE mapped to
  // 1/(1+loss) so higher is better and values live in (0, 1].
  const int64_t B = g.B();
  const int64_t N = eval_x_.size(0);
  std::vector<Tensor> xs(static_cast<size_t>(B), eval_x_);
  Tensor labels({B, N});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t n = 0; n < N; ++n) labels.at({b, n}) = eval_y_.at({n});
  g.array->eval();
  ag::Variable logits =
      g.array->forward(ag::Variable(fused::pack_channel_fused(xs)));
  g.array->train();
  std::vector<double> losses =
      fused::per_model_cross_entropy(logits.value(), labels);
  std::vector<double> scores;
  scores.reserve(losses.size());
  for (double l : losses) scores.push_back(1.0 / (1.0 + l));
  return scores;
}

void FusedTrainingExecutor::price(const Group& g, int64_t delta_epochs,
                                  CostReport* cost) const {
  if (cost == nullptr || delta_epochs <= 0) return;
  // Price the trace the group actually ran — its batch size, widths, and
  // STN — instead of the canned paper-scale kPointNetCls trace.
  sim::PointNetTraceSpec spec;
  spec.batch = g.batch_size;
  spec.points = g.cfg.num_points;
  spec.w1 = g.cfg.w1;
  spec.w2 = g.cfg.w2;
  spec.w3 = g.cfg.w3;
  spec.fc1 = g.cfg.fc1;
  spec.fc2 = g.cfg.fc2;
  spec.num_classes = g.cfg.num_classes;
  spec.input_transform = g.cfg.input_transform;
  const int64_t B = g.B();
  const sim::IterationTrace single = sim::build_pointnet_cls_trace(spec, 1);
  const sim::IterationTrace fused_tr =
      B == 1 ? single : sim::build_pointnet_cls_trace(spec, B);
  const sim::RunResult r = sim::simulate_traces(
      dev_, single, fused_tr, B == 1 ? sim::Mode::kSerial : sim::Mode::kHfta,
      B, sim::Precision::kFP32);
  const int64_t iters = train_ds_->size() / g.batch_size;
  cost->gpu_hours += static_cast<double>(delta_epochs) *
                     static_cast<double>(iters) * r.round_us / kUsPerHour;
  ++cost->jobs_launched;
}

ExecutionReport FusedTrainingExecutor::run(const std::vector<Trial>& batch) {
  ExecutionReport rep;
  rep.scores.assign(batch.size(), 0.0);
  if (batch.empty()) return rep;
  std::vector<ParamSet> sets;
  sets.reserve(batch.size());
  for (const Trial& t : batch) sets.push_back(t.params);
  const auto partitions = partition_by_infusible(space_, sets);
  for (const auto& part : partitions) {
    // Chunk oversized partitions (stand-in for the device-memory cap).
    for (size_t start = 0; start < part.size();) {
      const size_t n = std::min<size_t>(
          static_cast<size_t>(opts_.max_array_size), part.size() - start);
      std::vector<size_t> chunk(part.begin() + start, part.begin() + start + n);
      start += n;
      const int64_t epochs = batch[chunk[0]].epochs;
      std::vector<ParamSet> members;
      members.reserve(chunk.size());
      for (size_t i : chunk) {
        HFTA_CHECK(batch[i].epochs == epochs,
                   "FusedTrainingExecutor: mixed epoch budgets in one batch");
        members.push_back(batch[i].params);
      }
      Group* g = find_or_create(members, epochs);
      if (epochs > g->epochs_trained)
        train(*g, epochs - g->epochs_trained, &rep.cost);
      const std::vector<double> s = score(*g);
      for (size_t j = 0; j < chunk.size(); ++j) rep.scores[chunk[j]] = s[j];
    }
  }
  return rep;
}

}  // namespace hfta::hfht
