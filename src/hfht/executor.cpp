#include "hfht/executor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <tuple>

#include "core/check.h"
#include "core/storage_pool.h"
#include "data/loader.h"
#include "hfta/fused_optim.h"
#include "hfta/fusion.h"
#include "hfta/loss_scaling.h"
#include "models/mobilenetv3.h"
#include "models/pointnet.h"
#include "nn/optim.h"
#include "sim/execution.h"

namespace hfta::hfht {

namespace {

constexpr double kUsPerHour = 3.6e9;

// Exact (bit-pattern) hash of a parameter set, used to derive each trial's
// deterministic weight-init stream and each group's data-shuffle stream.
uint64_t param_key(const ParamSet& p, uint64_t seed) {
  uint64_t key = seed;
  for (double v : p) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    key = hash_combine(key, bits);
  }
  return key;
}

models::MobileNetV3Config mobilenet_config(const SearchSpace& space,
                                           const ParamSet& p) {
  // A pure function of the ParamSet: the infusible "version" picks V2 vs
  // V3-Large (paper Table 12) and the infusible "width_mult" scales every
  // channel count — two structural axes the congruence check partitions on.
  models::MobileNetV3Config cfg = space.get(p, "version") == 2.0
                                      ? models::MobileNetV3Config::tiny_v2()
                                      : models::MobileNetV3Config::tiny();
  cfg.width_mult = static_cast<float>(space.get(p, "width_mult"));
  return cfg;
}

}  // namespace

// ---- SyntheticExecutor -----------------------------------------------------

SyntheticExecutor::SyntheticExecutor(Task task, SchedulerKind scheduler,
                                     sim::DeviceSpec dev)
    : task_(task),
      scheduler_(scheduler),
      dev_(dev),
      space_(task == Task::kPointNet ? SearchSpace::pointnet()
                                     : SearchSpace::mobilenet()),
      workload_(task == Task::kPointNet ? sim::Workload::kPointNetCls
                                        : sim::Workload::kMobileNetV3) {}

ExecutionReport SyntheticExecutor::run(const std::vector<Trial>& batch) {
  ExecutionReport rep;
  rep.cost = schedule_cost(batch, space_, workload_, dev_, scheduler_);
  rep.scores.reserve(batch.size());
  for (const Trial& t : batch)
    rep.scores.push_back(synthetic_accuracy(space_, t.params, t.epochs, task_));
  return rep;
}

// ---- FusedTrainingExecutor -------------------------------------------------

/// One live fused array: the planner-compiled trials of one infusible
/// partition, with the optimizer, the data-shuffle stream (kept so rung
/// survivors resume mid-stream), and — under verify_against_serial — the B
/// independently trained twin models the array must match bit-for-bit.
struct FusedTrainingExecutor::Group {
  std::vector<ParamSet> members;  // slot b trains members[b]
  int64_t batch_size = 0;
  // Congruent per-model graph kept as the repack clone template (its weight
  // values are irrelevant — save_model overwrites every survivor clone).
  std::shared_ptr<nn::Module> tmpl;
  std::shared_ptr<fused::FusedArray> array;
  std::unique_ptr<fused::FusedAdam> opt;
  std::unique_ptr<data::BatchSampler> sampler;
  int64_t epochs_trained = 0;
  bool ever_repacked = false;
  bool ever_merged = false;  // lineage crossed a chunk boundary
  // Slot state moved into a repacked array: the weights left behind are
  // stale, so retired slots never match a later proposal. A group whose
  // slots all retire is dropped; one left with only killed-trial slots
  // ages out of the bounded live-group cache.
  std::vector<bool> retired;
  // serial verification twins (empty unless verify_against_serial)
  std::vector<std::shared_ptr<nn::Module>> serial;
  std::vector<std::unique_ptr<nn::Adam>> serial_opts;
  // Step-program staging (TrainStep::stage): per-batch data is copied in
  // place into these so a replayed program — which never re-runs the loss
  // builder — reads current data through its pinned input buffers.
  Tensor staged_x;       // packed fused input [N, B*C, ...]
  Tensor staged_labels;  // fused labels [B, N]
  Tensor staged_serial_x, staged_serial_y;  // twins' shared batch
  // The last loss graphs' logits, held so the serial-verification audit
  // can read them after the step (backward/step never mutates activation
  // values); on replay the underlying pinned buffers are refreshed.
  ag::Variable logits_hold;
  std::vector<ag::Variable> serial_hold;

  int64_t B() const { return static_cast<int64_t>(members.size()); }

  fused::HyperVec hyper(const SearchSpace& space, const char* name) const {
    fused::HyperVec v;
    v.reserve(members.size());
    for (const ParamSet& p : members) v.push_back(space.get(p, name));
    return v;
  }
};

/// One gathered survivor: slot `slot` of live group `group`.
struct FusedTrainingExecutor::Pick {
  size_t group = 0;
  int64_t slot = 0;
};

FusedTrainingExecutor::FusedTrainingExecutor(Task task, sim::DeviceSpec dev,
                                             Options opts)
    : task_(task),
      dev_(dev),
      opts_(opts),
      space_(task == Task::kPointNet ? SearchSpace::pointnet()
                                     : SearchSpace::mobilenet()),
      rng_(opts.seed) {
  HFTA_CHECK(opts_.max_array_size >= 1,
             "FusedTrainingExecutor: max_array_size must be >= 1, got ",
             opts_.max_array_size);
  HFTA_CHECK(opts_.dataset_size >= 1 && opts_.eval_size >= 1,
             "FusedTrainingExecutor: dataset/eval sizes must be >= 1");
  // Trial steps are captured into replayable step programs: train() stages
  // each batch in place, so after one eager warmup + one capture step per
  // optimizer every iteration runs tape-free. Repacks build a new
  // array/optimizer, which fingerprints differently and recaptures.
  train_step_.enable_capture();
  if (opts_.amp) {
    TrainStep::AmpOptions amp;
    amp.dtype = opts_.amp_dtype;
    // Short rungs + a shared scaler (the serial twins update it too): keep
    // the scale fixed unless an overflow forces a backoff, so fused and
    // serial runs see identical scales at every logical step.
    amp.scaler.growth_interval = 1 << 30;
    train_step_.enable_amp(amp);
  }
  // The held-out scoring batch is fixed for the executor's lifetime.
  std::vector<int64_t> idx(static_cast<size_t>(opts_.eval_size));
  for (int64_t i = 0; i < opts_.eval_size; ++i)
    idx[static_cast<size_t>(i)] = i;
  if (task_ == Task::kPointNet) {
    const models::PointNetConfig cfg = models::PointNetConfig::tiny();
    cloud_ds_ = std::make_unique<data::PointCloudDataset>(
        opts_.dataset_size, cfg.num_points, cfg.num_classes, cfg.num_parts,
        opts_.seed);
    const data::PointCloudDataset eval_ds(opts_.eval_size, cfg.num_points,
                                          cfg.num_classes, cfg.num_parts,
                                          opts_.seed + 1);
    std::tie(eval_x_, eval_y_) = eval_ds.batch_cls(idx);
  } else {
    // Structural widths are shared across versions at the tiny scale, so
    // one image set scores both V2 and V3-Large trials.
    const models::MobileNetV3Config cfg = models::MobileNetV3Config::tiny();
    image_ds_ = std::make_unique<data::ImageDataset>(
        opts_.dataset_size, cfg.image_size, 3, cfg.num_classes, opts_.seed);
    const data::ImageDataset eval_ds(opts_.eval_size, cfg.image_size, 3,
                                     cfg.num_classes, opts_.seed + 1);
    std::tie(eval_x_, eval_y_) = eval_ds.batch(idx);
  }
}

FusedTrainingExecutor::~FusedTrainingExecutor() = default;

std::shared_ptr<nn::Module> FusedTrainingExecutor::build_trial_net(
    const ParamSet& p) const {
  Rng donor_rng(param_key(p, opts_.seed ^ 0xD0));
  if (task_ == Task::kPointNet) {
    models::PointNetConfig cfg = models::PointNetConfig::tiny();
    cfg.input_transform = space_.get(p, "feature_transform") != 0.0;
    // The classifier's Sequential graph is the per-model tree (the
    // PointNetCls wrapper only forwards to it).
    return models::PointNetCls(cfg, donor_rng).net;
  }
  return std::make_shared<models::MobileNetV3>(mobilenet_config(space_, p),
                                               donor_rng);
}

std::pair<Tensor, Tensor> FusedTrainingExecutor::train_batch(
    const std::vector<int64_t>& idx) const {
  return task_ == Task::kPointNet ? cloud_ds_->batch_cls(idx)
                                  : image_ds_->batch(idx);
}

std::unique_ptr<data::BatchSampler> FusedTrainingExecutor::make_sampler(
    const Group& g) const {
  // The shuffle stream is a pure function of the partition's infusible
  // values, so it can always be reconstructed and fast-forwarded to the
  // group's epoch count — this is what lets a repack take ANY source's
  // sampler (or none, when every source already handed its sampler to an
  // earlier merge) and still draw the exact batches the serial reruns do.
  std::vector<double> inf_vals;
  for (size_t i : space_.infusible_indices())
    inf_vals.push_back(g.members[0][i]);
  const int64_t ds_size =
      task_ == Task::kPointNet ? cloud_ds_->size() : image_ds_->size();
  auto s = std::make_unique<data::BatchSampler>(
      ds_size, g.batch_size, /*shuffle=*/true,
      param_key(inf_vals, opts_.seed ^ 0xDA7A));
  for (int64_t e = 0; e < g.epochs_trained; ++e) s->epoch();  // fast-forward
  return s;
}

std::unique_ptr<fused::FusedAdam> FusedTrainingExecutor::make_optimizer(
    const Group& g) const {
  const int64_t B = g.B();
  return std::make_unique<fused::FusedAdam>(
      fused::collect_fused_parameters(*g.array, B), B,
      fused::FusedAdam::Options{g.hyper(space_, "lr"),
                                g.hyper(space_, "adam_beta1"),
                                g.hyper(space_, "adam_beta2"),
                                {1e-8},
                                g.hyper(space_, "weight_decay")});
}

FusedTrainingExecutor::Group* FusedTrainingExecutor::repack_groups(
    const std::vector<ParamSet>& members, const std::vector<Pick>& picks,
    int64_t src_epochs) {
  // Unique source groups in first-appearance order; picks re-indexed onto
  // them so FusionPlan::repack_multi and the optimizer gather agree.
  std::vector<size_t> gidx;
  std::vector<fused::RepackPick> rp;
  rp.reserve(picks.size());
  for (const Pick& p : picks) {
    size_t si = gidx.size();
    for (size_t i = 0; i < gidx.size(); ++i)
      if (gidx[i] == p.group) {
        si = i;
        break;
      }
    if (si == gidx.size()) gidx.push_back(p.group);
    rp.push_back(fused::RepackPick{si, p.slot});
  }

  const int64_t newB = static_cast<int64_t>(members.size());
  fused::FusionOptions fopts;
  fopts.output_layout = fused::Layout::kModelMajor;
  const fused::FusionPlan plan(newB, fopts);
  std::vector<const fused::FusedArray*> arrays;
  std::vector<const fused::FusedOptimizer*> opt_srcs;
  for (size_t gi : gidx) {
    arrays.push_back(groups_[gi]->array.get());
    opt_srcs.push_back(groups_[gi]->opt.get());
  }

  auto merged = std::make_unique<Group>();
  merged->members = members;
  merged->batch_size = groups_[gidx[0]]->batch_size;
  merged->tmpl = groups_[gidx[0]]->tmpl;
  merged->array = plan.repack_multi(arrays, rp, *merged->tmpl, rng_);
  merged->opt = make_optimizer(*merged);
  merged->opt->repack_state_from(opt_srcs, rp);
  merged->epochs_trained = src_epochs;
  // Every source belongs to the same infusible partition and epoch count,
  // so all samplers sit at the same position of the same shuffle stream —
  // continuing any of them continues them all. A source may have handed
  // its sampler to an earlier merge already; reconstruct deterministically
  // when none is left.
  for (size_t gi : gidx) {
    if (groups_[gi]->sampler != nullptr) {
      merged->sampler = std::move(groups_[gi]->sampler);
      break;
    }
  }
  if (merged->sampler == nullptr) merged->sampler = make_sampler(*merged);
  merged->ever_repacked = true;
  merged->ever_merged = gidx.size() > 1;
  for (size_t gi : gidx) merged->ever_merged |= groups_[gi]->ever_merged;
  merged->retired.assign(static_cast<size_t>(newB), false);
  for (const Pick& p : picks) {
    Group& src = *groups_[p.group];
    src.retired[static_cast<size_t>(p.slot)] = true;
    if (!src.serial.empty()) {
      // A moved twin's captured program reads the source group's staged
      // input buffers, which stop being updated — drop it so the twin
      // recaptures under the merged group's staging.
      train_step_.drop_program(src.serial_opts[static_cast<size_t>(p.slot)].get());
      merged->serial.push_back(
          std::move(src.serial[static_cast<size_t>(p.slot)]));
      merged->serial_opts.push_back(
          std::move(src.serial_opts[static_cast<size_t>(p.slot)]));
    }
  }
  ++repacked_;
  if (gidx.size() > 1) {
    ++multi_repacked_;
    arrays_merged_ += static_cast<int64_t>(gidx.size());
  }
  // Fully consumed sources can never match a later proposal; free them,
  // and hand their parked storage back to the OS — a halving boundary is
  // exactly where the working set shrinks, so without the trim the pool
  // would pin the union of every retired array's peak for the process
  // lifetime. The live arrays re-warm the pool within one iteration.
  const size_t before = groups_.size();
  const auto fully_retired = [](const std::unique_ptr<Group>& g) {
    return !g->retired.empty() &&
           std::all_of(g->retired.begin(), g->retired.end(),
                       [](bool r) { return r; });
  };
  // Drop the dying groups' step programs first: a program's tape keeps the
  // whole captured graph (the retired array's weights) alive.
  for (const auto& g : groups_)
    if (fully_retired(g)) drop_group_programs(*g);
  groups_.erase(std::remove_if(groups_.begin(), groups_.end(), fully_retired),
                groups_.end());
  if (groups_.size() != before) StoragePool::instance().trim();
  groups_.push_back(std::move(merged));
  return groups_.back().get();
}

FusedTrainingExecutor::Group* FusedTrainingExecutor::find_or_create(
    const std::vector<ParamSet>& members, int64_t epoch_budget) {
  // Gather the requested members across ALL live arrays, not just one:
  // slot-injective (duplicate parameter sets map to distinct slots),
  // skipping retired slots, with every source pinned to one shared
  // epochs_trained <= budget (survivors of one rung trained equally).
  // Epoch counts are tried from most-trained down, so the gather always
  // continues the furthest-progressed copies.
  std::set<int64_t, std::greater<int64_t>> epoch_candidates;
  for (const auto& gp : groups_)
    if (gp->epochs_trained <= epoch_budget)
      epoch_candidates.insert(gp->epochs_trained);

  for (int64_t src_epochs : epoch_candidates) {
    std::vector<Pick> picks;
    auto taken = [&](size_t gi, int64_t slot) {
      for (const Pick& p : picks)
        if (p.group == gi && p.slot == slot) return true;
      return false;
    };
    for (const ParamSet& want : members) {
      bool found = false;
      for (size_t gi = 0; gi < groups_.size() && !found; ++gi) {
        Group& g = *groups_[gi];
        if (g.epochs_trained != src_epochs) continue;
        for (int64_t s = 0; s < g.B(); ++s) {
          if (g.retired[static_cast<size_t>(s)] || taken(gi, s)) continue;
          if (g.members[static_cast<size_t>(s)] == want) {
            picks.push_back(Pick{gi, s});
            found = true;
            break;
          }
        }
      }
      if (!found) {
        picks.clear();
        break;
      }
    }
    if (picks.empty()) continue;

    // Identity — one group, same order, full size: continue in place.
    const size_t gi0 = picks[0].group;
    bool identity = groups_[gi0]->B() == static_cast<int64_t>(members.size());
    for (size_t j = 0; identity && j < picks.size(); ++j)
      identity =
          picks[j].group == gi0 && picks[j].slot == static_cast<int64_t>(j);
    if (identity) return groups_[gi0].get();

    // Halving boundary: gather the survivors — possibly from several
    // chunked arrays — into one fresh array and continue.
    return repack_groups(members, picks, src_epochs);
  }

  // Fresh partition: build one congruent per-model graph per trial (each
  // trial's weight init is a pure function of its parameter set, so serial
  // reruns reproduce it) and compile them into a fused array.
  auto g = std::make_unique<Group>();
  g->members = members;
  g->batch_size = static_cast<int64_t>(space_.get(members[0], "batch_size"));
  const int64_t ds_size =
      task_ == Task::kPointNet ? cloud_ds_->size() : image_ds_->size();
  HFTA_CHECK(g->batch_size >= 1 && g->batch_size <= ds_size,
             "FusedTrainingExecutor: batch size ", g->batch_size,
             " does not fit the dataset (", ds_size, " samples)");
  const int64_t B = g->B();
  std::vector<std::shared_ptr<nn::Module>> nets;
  nets.reserve(members.size());
  for (const ParamSet& p : members) nets.push_back(build_trial_net(p));
  g->tmpl = nets[0];  // doubles as the future repack clone template
  fused::FusionOptions fopts;
  fopts.output_layout = fused::Layout::kModelMajor;
  g->array = fused::FusionPlan(B, fopts).compile(nets, rng_);
  g->opt = make_optimizer(*g);
  g->retired.assign(static_cast<size_t>(B), false);
  g->sampler = make_sampler(*g);
  if (opts_.verify_against_serial) {
    for (int64_t b = 0; b < B; ++b) {
      const size_t ub = static_cast<size_t>(b);
      g->serial.push_back(nets[ub]);
      g->serial_opts.push_back(std::make_unique<nn::Adam>(
          nets[ub]->parameters(),
          nn::Adam::Options{space_.get(members[ub], "lr"),
                            space_.get(members[ub], "adam_beta1"),
                            space_.get(members[ub], "adam_beta2"),
                            1e-8,
                            space_.get(members[ub], "weight_decay")}));
    }
  }
  ++compiled_;
  groups_.push_back(std::move(g));
  // Bound the live-array cache: fresh brackets sample fresh parameter sets,
  // so the oldest groups can never be continued and are safe to drop. The
  // cap comfortably exceeds the chunks of any single proposal round.
  constexpr size_t kMaxLiveGroups = 64;
  if (groups_.size() > kMaxLiveGroups) {
    drop_group_programs(*groups_.front());  // programs pin the captured graph
    groups_.erase(groups_.begin());
    StoragePool::instance().trim();  // the evicted array's storage with it
  }
  return groups_.back().get();
}

void FusedTrainingExecutor::train(Group& g, int64_t delta_epochs,
                                  CostReport* cost) {
  if (g.sampler == nullptr) g.sampler = make_sampler(g);
  const int64_t B = g.B();
  const int64_t N = g.batch_size;
  const fused::HyperVec base_lr = g.hyper(space_, "lr");
  const fused::HyperVec decay = g.hyper(space_, "lr_decay_factor");
  const fused::HyperVec period = g.hyper(space_, "lr_decay_period");
  for (int64_t e = 0; e < delta_epochs; ++e) {
    // Per-trial StepLR, computed once in double and fed to both the fused
    // lr vector and the serial twins so the float paths are identical.
    const int64_t epoch = g.epochs_trained + e;
    fused::HyperVec lrs(static_cast<size_t>(B));
    for (int64_t b = 0; b < B; ++b) {
      const size_t ub = static_cast<size_t>(b);
      const double k = std::floor(static_cast<double>(epoch) / period[ub]);
      lrs[ub] = base_lr[ub] * std::pow(decay[ub], k);
    }
    g.opt->set_lr(lrs);
    for (size_t b = 0; b < g.serial_opts.size(); ++b)
      g.serial_opts[b]->set_lr(lrs[b]);

    for (const auto& bidx : g.sampler->epoch()) {
      auto [x, y] = train_batch(bidx);
      std::vector<Tensor> xs(static_cast<size_t>(B), x);
      Tensor labels({B, N});
      for (int64_t b = 0; b < B; ++b)
        for (int64_t n = 0; n < N; ++n) labels.at({b, n}) = y.at({n});
      // Stage the batch in place: a captured program replays without
      // calling the loss builder, reading this data through its pinned
      // input buffers.
      train_step_.stage(&g.staged_x, fused::pack_channel_fused(xs));
      train_step_.stage(&g.staged_labels, labels);
      train_step_.run(*g.opt, [&] {
        ag::Variable logits = g.array->forward(ag::Variable(g.staged_x));
        g.logits_hold = logits;
        // Per-model mean CE built as (1/N) * sum: its backward scales every
        // row by the same float(1/N) the serial kMean loss uses, so the
        // gradients match the B serial runs bit-for-bit regardless of how
        // float(1/(B*N)) * B would round (Appendix C, Eq. 5 route).
        return ag::mul_scalar(
            fused::fused_cross_entropy(logits, g.staged_labels,
                                       ag::Reduction::kSum),
            1.f / static_cast<float>(N));
      });
      // Only the serial-verification audit reads the per-model losses —
      // skip the extra softmax pass on plain tuning runs. Runs after the
      // step (not inside the loss builder, which replay skips): the logits
      // values it reads are untouched by backward/step, and a replay has
      // refreshed logits_hold's pinned buffer.
      std::vector<double> fused_losses;
      if (!g.serial.empty())
        fused_losses = fused::per_model_cross_entropy(g.logits_hold.value(),
                                                      g.staged_labels);

      if (!g.serial.empty()) {
        train_step_.stage(&g.staged_serial_x, x);
        train_step_.stage(&g.staged_serial_y, y);
        g.serial_hold.resize(g.serial.size());
      }
      for (size_t b = 0; b < g.serial.size(); ++b) {
        train_step_.run(*g.serial_opts[b], [&] {
          ag::Variable sl =
              g.serial[b]->forward(ag::Variable(g.staged_serial_x));
          g.serial_hold[b] = sl;
          return ag::cross_entropy(sl, g.staged_serial_y,
                                   ag::Reduction::kMean);
        });
        // Same per-model reduction routine on both sides: the comparison
        // detects logits drift, not reduction-order noise.
        const Tensor& slv = g.serial_hold[b].value();
        const double serial_loss = fused::per_model_cross_entropy(
            slv.reshape({1, N, slv.size(1)}),
            g.staged_serial_y.reshape({1, N}))[0];
        max_diff_ = std::max(max_diff_,
                             std::fabs(fused_losses[b] - serial_loss));
        if (g.ever_repacked) ++post_repack_verified_;
        if (g.ever_merged) ++post_merge_verified_;
      }
    }
  }
  price(g, delta_epochs, cost);
  g.epochs_trained += delta_epochs;
}

void FusedTrainingExecutor::drop_group_programs(const Group& g) {
  train_step_.drop_program(g.opt.get());
  for (const auto& so : g.serial_opts)
    if (so != nullptr) train_step_.drop_program(so.get());
}

std::vector<double> FusedTrainingExecutor::score(Group& g) {
  // Held-out score on the fixed eval batch: per-model CE mapped to
  // 1/(1+loss) so higher is better and values live in (0, 1].
  const int64_t B = g.B();
  const int64_t N = eval_x_.size(0);
  std::vector<Tensor> xs(static_cast<size_t>(B), eval_x_);
  Tensor labels({B, N});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t n = 0; n < N; ++n) labels.at({b, n}) = eval_y_.at({n});
  g.array->eval();
  ag::Variable logits =
      g.array->forward(ag::Variable(fused::pack_channel_fused(xs)));
  g.array->train();
  std::vector<double> losses =
      fused::per_model_cross_entropy(logits.value(), labels);
  std::vector<double> scores;
  scores.reserve(losses.size());
  for (double l : losses) scores.push_back(1.0 / (1.0 + l));
  return scores;
}

sim::IterationTrace FusedTrainingExecutor::build_group_trace(
    const Group& g, int64_t B) const {
  if (task_ == Task::kPointNet) {
    models::PointNetConfig cfg = models::PointNetConfig::tiny();
    cfg.input_transform =
        space_.get(g.members[0], "feature_transform") != 0.0;
    sim::PointNetTraceSpec spec;
    spec.batch = g.batch_size;
    spec.points = cfg.num_points;
    spec.w1 = cfg.w1;
    spec.w2 = cfg.w2;
    spec.w3 = cfg.w3;
    spec.fc1 = cfg.fc1;
    spec.fc2 = cfg.fc2;
    spec.num_classes = cfg.num_classes;
    spec.input_transform = cfg.input_transform;
    return sim::build_pointnet_cls_trace(spec, B);
  }
  const models::MobileNetV3Config cfg = mobilenet_config(space_, g.members[0]);
  sim::MobileNetTraceSpec spec;
  spec.batch = g.batch_size;
  spec.image = cfg.image_size;
  spec.stem = cfg.scaled(cfg.stem_channels());
  for (const models::BneckSpec& r : cfg.rows())
    spec.rows.push_back(sim::MobileNetTraceSpec::Row{
        r.kernel, cfg.scaled(r.expand), cfg.scaled(r.out), r.stride, r.se});
  spec.last = cfg.scaled(cfg.rows().back().expand);
  spec.head = cfg.head_dim;
  spec.num_classes = cfg.num_classes;
  return sim::build_mobilenet_trace(spec, B);
}

void FusedTrainingExecutor::price(const Group& g, int64_t delta_epochs,
                                  CostReport* cost) const {
  if (cost == nullptr || delta_epochs <= 0) return;
  // Price the trace the group actually ran — its batch size, widths, and
  // structure — instead of the canned paper-scale traces.
  const int64_t B = g.B();
  const sim::IterationTrace single = build_group_trace(g, 1);
  const sim::IterationTrace fused_tr =
      B == 1 ? single : build_group_trace(g, B);
  const sim::RunResult r = sim::simulate_traces(
      dev_, single, fused_tr, B == 1 ? sim::Mode::kSerial : sim::Mode::kHfta,
      B, sim::Precision::kFP32);
  const int64_t ds_size =
      task_ == Task::kPointNet ? cloud_ds_->size() : image_ds_->size();
  const int64_t iters = ds_size / g.batch_size;
  cost->gpu_hours += static_cast<double>(delta_epochs) *
                     static_cast<double>(iters) * r.round_us / kUsPerHour;
  ++cost->jobs_launched;
}

ExecutionReport FusedTrainingExecutor::run(const std::vector<Trial>& batch) {
  ExecutionReport rep;
  rep.scores.assign(batch.size(), 0.0);
  if (batch.empty()) return rep;
  std::vector<ParamSet> sets;
  sets.reserve(batch.size());
  for (const Trial& t : batch) sets.push_back(t.params);
  const auto partitions = partition_by_infusible(space_, sets);
  for (const auto& part : partitions) {
    // Chunk oversized partitions (stand-in for the device-memory cap).
    for (size_t start = 0; start < part.size();) {
      const size_t n = std::min<size_t>(
          static_cast<size_t>(opts_.max_array_size), part.size() - start);
      std::vector<size_t> chunk(part.begin() + start, part.begin() + start + n);
      start += n;
      const int64_t epochs = batch[chunk[0]].epochs;
      std::vector<ParamSet> members;
      members.reserve(chunk.size());
      for (size_t i : chunk) {
        HFTA_CHECK(batch[i].epochs == epochs,
                   "FusedTrainingExecutor: mixed epoch budgets in one batch");
        members.push_back(batch[i].params);
      }
      Group* g = find_or_create(members, epochs);
      if (epochs > g->epochs_trained)
        train(*g, epochs - g->epochs_trained, &rep.cost);
      const std::vector<double> s = score(*g);
      for (size_t j = 0; j < chunk.size(); ++j) rep.scores[chunk[j]] = s[j];
    }
  }
  return rep;
}

}  // namespace hfta::hfht
