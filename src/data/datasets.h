// Synthetic datasets standing in for the paper's ShapeNet-part / LSUN /
// CIFAR-10 / WikiText-2 (none of which are available offline). Each
// generator is deterministic given a seed and produces learnable structure
// (class-dependent geometry / textures / token statistics) so end-to-end
// training actually reduces the loss — throughput and equivalence results
// depend only on tensor shapes, which match the real datasets' at paper
// scale.
#pragma once

#include <vector>

#include "core/rng.h"
#include "tensor/tensor.h"

namespace hfta::data {

/// ShapeNet-like point clouds: classes are geometric primitives; part
/// labels split each shape into spatial regions.
class PointCloudDataset {
 public:
  PointCloudDataset(int64_t num_samples, int64_t points_per_cloud,
                    int64_t num_classes, int64_t num_parts, uint64_t seed);

  int64_t size() const { return static_cast<int64_t>(clouds_.size()); }
  int64_t num_classes() const { return num_classes_; }
  int64_t num_parts() const { return num_parts_; }

  /// points [3, L]
  const Tensor& points(int64_t i) const { return clouds_[static_cast<size_t>(i)]; }
  int64_t label(int64_t i) const { return labels_[static_cast<size_t>(i)]; }
  /// per-point part ids [L]
  const Tensor& parts(int64_t i) const { return parts_[static_cast<size_t>(i)]; }

  /// Batch of clouds [N, 3, L] + labels [N] for indices [start, start+n).
  std::pair<Tensor, Tensor> batch_cls(const std::vector<int64_t>& idx) const;
  /// Batch [N, 3, L] + per-point labels [N, L].
  std::pair<Tensor, Tensor> batch_seg(const std::vector<int64_t>& idx) const;

 private:
  std::vector<Tensor> clouds_, parts_;
  std::vector<int64_t> labels_;
  int64_t num_classes_, num_parts_;
};

/// CIFAR/LSUN-like images: class-dependent frequency/orientation textures
/// plus noise, values in (-1, 1).
class ImageDataset {
 public:
  ImageDataset(int64_t num_samples, int64_t image_size, int64_t channels,
               int64_t num_classes, uint64_t seed);

  int64_t size() const { return static_cast<int64_t>(images_.size()); }
  const Tensor& image(int64_t i) const { return images_[static_cast<size_t>(i)]; }
  int64_t label(int64_t i) const { return labels_[static_cast<size_t>(i)]; }

  /// [N, C, S, S] + labels [N].
  std::pair<Tensor, Tensor> batch(const std::vector<int64_t>& idx) const;

 private:
  std::vector<Tensor> images_;
  std::vector<int64_t> labels_;
};

/// WikiText-like token stream from a small Markov chain (so next-token
/// prediction is learnable).
class TextDataset {
 public:
  TextDataset(int64_t num_tokens, int64_t vocab, uint64_t seed);

  int64_t size() const { return static_cast<int64_t>(tokens_.size()); }
  int64_t vocab() const { return vocab_; }

  /// LM batch: input [N, S] and next-token targets [N, S].
  std::pair<Tensor, Tensor> batch_lm(int64_t batch, int64_t seq_len,
                                     int64_t offset) const;
  /// Masked-LM batch: inputs with ~15% positions replaced by mask_id,
  /// targets = original tokens.
  std::pair<Tensor, Tensor> batch_mlm(int64_t batch, int64_t seq_len,
                                      int64_t offset, int64_t mask_id,
                                      Rng& rng) const;

 private:
  std::vector<int64_t> tokens_;
  int64_t vocab_;
};

}  // namespace hfta::data
