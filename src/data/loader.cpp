#include "data/loader.h"

#include <cstddef>
#include <numeric>

namespace hfta::data {

BatchSampler::BatchSampler(int64_t dataset_size, int64_t batch_size,
                           bool shuffle, uint64_t seed)
    : size_(dataset_size), batch_(batch_size), shuffle_(shuffle), rng_(seed) {}

std::vector<std::vector<int64_t>> BatchSampler::epoch() {
  std::vector<int64_t> order(static_cast<size_t>(size_));
  std::iota(order.begin(), order.end(), 0);
  if (shuffle_) rng_.shuffle(order);
  std::vector<std::vector<int64_t>> batches;
  for (int64_t start = 0; start + batch_ <= size_; start += batch_) {
    batches.emplace_back(order.begin() + start, order.begin() + start + batch_);
  }
  return batches;
}

}  // namespace hfta::data
