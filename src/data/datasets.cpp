#include "data/datasets.h"

#include <array>
#include <cmath>

#include "core/check.h"

namespace hfta::data {

PointCloudDataset::PointCloudDataset(int64_t num_samples,
                                     int64_t points_per_cloud,
                                     int64_t num_classes, int64_t num_parts,
                                     uint64_t seed)
    : num_classes_(num_classes), num_parts_(num_parts) {
  Rng rng(seed);
  for (int64_t i = 0; i < num_samples; ++i) {
    const int64_t cls = rng.uniform_int(num_classes);
    Tensor cloud({3, points_per_cloud});
    Tensor part({points_per_cloud});
    for (int64_t p = 0; p < points_per_cloud; ++p) {
      // Class-dependent primitive: parameterized surface with class-specific
      // radius profile + anisotropy.
      const double u = rng.uniform(0.0, 2.0 * M_PI);
      const double v = rng.uniform(-1.0, 1.0);
      const double r =
          1.0 + 0.3 * std::sin(static_cast<double>(cls + 1) * u);
      const double squash = 1.0 / (1.0 + 0.2 * static_cast<double>(cls));
      const double x = r * std::cos(u) * std::sqrt(1 - v * v);
      const double y = r * std::sin(u) * std::sqrt(1 - v * v) * squash;
      const double z = v;
      cloud.at({0, p}) = static_cast<float>(x + rng.normal(0, 0.02));
      cloud.at({1, p}) = static_cast<float>(y + rng.normal(0, 0.02));
      cloud.at({2, p}) = static_cast<float>(z + rng.normal(0, 0.02));
      // Part = angular sector (learnable from coordinates).
      const int64_t sector = static_cast<int64_t>(
          (u / (2.0 * M_PI)) * static_cast<double>(num_parts));
      part.data()[p] = static_cast<float>(std::min(sector, num_parts - 1));
    }
    clouds_.push_back(std::move(cloud));
    parts_.push_back(std::move(part));
    labels_.push_back(cls);
  }
}

std::pair<Tensor, Tensor> PointCloudDataset::batch_cls(
    const std::vector<int64_t>& idx) const {
  HFTA_CHECK(!idx.empty(), "empty batch");
  const int64_t L = clouds_[0].size(1);
  Tensor x({static_cast<int64_t>(idx.size()), 3, L});
  Tensor y({static_cast<int64_t>(idx.size())});
  for (size_t n = 0; n < idx.size(); ++n) {
    std::copy(points(idx[n]).data(), points(idx[n]).data() + 3 * L,
              x.data() + static_cast<int64_t>(n) * 3 * L);
    y.data()[n] = static_cast<float>(label(idx[n]));
  }
  return {x, y};
}

std::pair<Tensor, Tensor> PointCloudDataset::batch_seg(
    const std::vector<int64_t>& idx) const {
  HFTA_CHECK(!idx.empty(), "empty batch");
  const int64_t L = clouds_[0].size(1);
  Tensor x({static_cast<int64_t>(idx.size()), 3, L});
  Tensor y({static_cast<int64_t>(idx.size()), L});
  for (size_t n = 0; n < idx.size(); ++n) {
    std::copy(points(idx[n]).data(), points(idx[n]).data() + 3 * L,
              x.data() + static_cast<int64_t>(n) * 3 * L);
    std::copy(parts(idx[n]).data(), parts(idx[n]).data() + L,
              y.data() + static_cast<int64_t>(n) * L);
  }
  return {x, y};
}

ImageDataset::ImageDataset(int64_t num_samples, int64_t image_size,
                           int64_t channels, int64_t num_classes,
                           uint64_t seed) {
  Rng rng(seed);
  for (int64_t i = 0; i < num_samples; ++i) {
    const int64_t cls = rng.uniform_int(num_classes);
    Tensor img({channels, image_size, image_size});
    // Class-specific oriented sinusoid texture + per-channel phase + noise.
    const double angle = M_PI * static_cast<double>(cls) /
                         static_cast<double>(num_classes);
    const double freq = 2.0 + static_cast<double>(cls % 4);
    const double ca = std::cos(angle), sa = std::sin(angle);
    for (int64_t c = 0; c < channels; ++c) {
      const double phase = 0.7 * static_cast<double>(c);
      for (int64_t h = 0; h < image_size; ++h) {
        for (int64_t w = 0; w < image_size; ++w) {
          const double u =
              (ca * h + sa * w) / static_cast<double>(image_size);
          const double v = std::sin(2.0 * M_PI * freq * u + phase);
          img.at({c, h, w}) =
              static_cast<float>(0.7 * v + rng.normal(0, 0.15));
        }
      }
    }
    images_.push_back(std::move(img));
    labels_.push_back(cls);
  }
}

std::pair<Tensor, Tensor> ImageDataset::batch(
    const std::vector<int64_t>& idx) const {
  HFTA_CHECK(!idx.empty(), "empty batch");
  const int64_t per = images_[0].numel();
  Shape s = images_[0].shape();
  s.insert(s.begin(), static_cast<int64_t>(idx.size()));
  Tensor x(s);
  Tensor y({static_cast<int64_t>(idx.size())});
  for (size_t n = 0; n < idx.size(); ++n) {
    std::copy(image(idx[n]).data(), image(idx[n]).data() + per,
              x.data() + static_cast<int64_t>(n) * per);
    y.data()[n] = static_cast<float>(label(idx[n]));
  }
  return {x, y};
}

TextDataset::TextDataset(int64_t num_tokens, int64_t vocab, uint64_t seed)
    : vocab_(vocab) {
  Rng rng(seed);
  // Sparse Markov chain: each token strongly prefers 3 successors.
  std::vector<std::array<int64_t, 3>> succ(static_cast<size_t>(vocab));
  for (int64_t v = 0; v < vocab; ++v)
    for (int j = 0; j < 3; ++j)
      succ[static_cast<size_t>(v)][static_cast<size_t>(j)] =
          rng.uniform_int(vocab);
  int64_t cur = 0;
  for (int64_t i = 0; i < num_tokens; ++i) {
    tokens_.push_back(cur);
    if (rng.uniform() < 0.85) {
      cur = succ[static_cast<size_t>(cur)][static_cast<size_t>(
          rng.uniform_int(3))];
    } else {
      cur = rng.uniform_int(vocab);
    }
  }
}

std::pair<Tensor, Tensor> TextDataset::batch_lm(int64_t batch, int64_t seq_len,
                                                int64_t offset) const {
  Tensor x({batch, seq_len});
  Tensor y({batch, seq_len});
  const int64_t n = static_cast<int64_t>(tokens_.size());
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t start = (offset + b * seq_len) % (n - seq_len - 1);
    for (int64_t s = 0; s < seq_len; ++s) {
      x.at({b, s}) = static_cast<float>(tokens_[static_cast<size_t>(start + s)]);
      y.at({b, s}) =
          static_cast<float>(tokens_[static_cast<size_t>(start + s + 1)]);
    }
  }
  return {x, y};
}

std::pair<Tensor, Tensor> TextDataset::batch_mlm(int64_t batch,
                                                 int64_t seq_len,
                                                 int64_t offset,
                                                 int64_t mask_id,
                                                 Rng& rng) const {
  auto [x, y] = batch_lm(batch, seq_len, offset);
  // Mask ~15% of input positions; targets stay the original stream.
  for (int64_t i = 0; i < x.numel(); ++i) {
    y.data()[i] = x.data()[i];
    if (rng.uniform() < 0.15) x.data()[i] = static_cast<float>(mask_id);
  }
  return {x, y};
}

}  // namespace hfta::data
