// Mini-batch index sampler: shuffled epochs, deterministic given a seed.
#pragma once

#include <vector>

#include "core/rng.h"

namespace hfta::data {

class BatchSampler {
 public:
  BatchSampler(int64_t dataset_size, int64_t batch_size, bool shuffle,
               uint64_t seed);

  /// Index lists for one epoch (last partial batch dropped, as the paper's
  /// training scripts do).
  std::vector<std::vector<int64_t>> epoch();

  int64_t batches_per_epoch() const { return size_ / batch_; }

 private:
  int64_t size_, batch_;
  bool shuffle_;
  Rng rng_;
};

}  // namespace hfta::data
