// Kernel-level workload description: one training iteration of a model is
// a trace of kernels, each carrying FLOPs, bytes moved, a parallelism
// measure (CTA count), and GEMM dimensions (for tensor-core / systolic-
// array shape-efficiency effects). Traces are built from the same layer
// shapes as src/models (sim/workloads.h) and are linear in the fusion
// array size B.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hfta::sim {

enum class KernelClass {
  kGemm,         // matmul / implicit-GEMM conv (TC-eligible)
  kElementwise,  // activations, adds, dropout, optimizer updates
  kNorm,         // batch/layer norm
  kPool,         // pooling / reductions
  kGather,       // embedding / concat / layout (poor fit for systolic arrays)
};

struct Kernel {
  KernelClass cls = KernelClass::kElementwise;
  double flops = 0;    // floating-point ops
  double bytes = 0;    // DRAM traffic
  int64_t ctas = 1;    // parallelism grain (thread blocks)
  // Per-group GEMM dims (gemm class only); groups > 1 for grouped conv.
  int64_t m = 0, n = 0, k = 0;
  int64_t groups = 1;
  bool tc_eligible = false;
  // Models the A100 cuDNN AMP regression the paper hit in DCGAN's backward
  // pass (Section 5.1, third observation): kernel falls back to FP32.
  bool amp_fallback = false;
};

/// One training iteration (forward + backward + optimizer step).
struct IterationTrace {
  std::vector<Kernel> kernels;
  double host_us = 0;          // host-side work per iteration
  double samples = 32;         // samples per iteration (batch size)
  double model_state_gb = 0;   // weights + grads + optimizer state, per model
  // Framework-gap multiplier: how much per-op dispatch idle this workload's
  // training loop adds relative to the device baseline (eager-mode Python
  // loops with many small ops score high).
  double gap_scale = 1.0;
  // Per-step fixed overhead on TPU (PyTorch/XLA graph materialization,
  // host<->device transfers, .item() graph breaks) — paid once per training
  // step no matter how many models are fused into it.
  double xla_step_us = 4000;
  double activation_gb = 0;    // stashed activations, per model
  int64_t array_size = 1;      // B (1 = unfused single model)
};

/// Appends forward+backward GEMM-class kernels for a (grouped) matmul of
/// per-group dims [m x k] @ [k x n], `groups` groups. `io_elems`, when
/// nonzero, is the true tensor I/O (input + output + weights) in elements —
/// spatial convs reuse unfolded inputs through the cache, so their DRAM
/// traffic is far below the naive mk+kn+mn formula.
void add_gemm_fwd_bwd(IterationTrace& t, int64_t m, int64_t n, int64_t k,
                      int64_t groups, bool tc_eligible = true,
                      bool amp_fallback_bwd = false, double io_elems = 0);
/// Elementwise op over `elems` scalars (fwd + bwd).
void add_elementwise_fwd_bwd(IterationTrace& t, double elems);
/// Normalization over `elems` scalars (fwd + bwd; two-pass reads).
void add_norm_fwd_bwd(IterationTrace& t, double elems);
/// Pool / reduction over `elems` scalars.
void add_pool_fwd_bwd(IterationTrace& t, double elems);
/// Gather-class op (embedding lookups, concats) over `elems` scalars.
void add_gather_fwd_bwd(IterationTrace& t, double elems);
/// Optimizer update over `params` scalars (Adam-style: 3 tensors touched).
void add_optimizer(IterationTrace& t, double params);

/// CTA count heuristics shared by the builders. GEMM grids include a
/// split-k factor (as cuBLAS/cuDNN use for reduction-heavy shapes such as
/// grad-weight kernels).
int64_t gemm_ctas(int64_t m, int64_t n, int64_t k, int64_t groups);
int64_t elementwise_ctas(double elems);

}  // namespace hfta::sim
