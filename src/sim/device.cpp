#include "sim/device.h"

namespace hfta::sim {

DeviceSpec v100() {
  DeviceSpec d;
  d.name = "V100";
  d.sms = 80;
  d.fp32_tflops = 15.7;
  d.tc_tflops = 125.0;  // FP16 TCs
  d.hbm_gb = 16.0;
  d.hbm_gbps = 900.0;
  d.host_cores = 8;  // p3.2xlarge
  return d;
}

DeviceSpec rtx6000() {
  DeviceSpec d;
  d.name = "RTX6000";
  d.sms = 72;
  d.fp32_tflops = 16.3;
  d.tc_tflops = 130.5;
  d.hbm_gb = 24.0;
  d.hbm_gbps = 672.0;
  d.host_cores = 8;
  return d;
}

DeviceSpec a100() {
  DeviceSpec d;
  d.name = "A100";
  d.sms = 108;
  d.fp32_tflops = 19.5;
  d.tc_tflops = 312.0;  // TF32/FP16 TCs
  d.hbm_gb = 40.0;
  d.hbm_gbps = 1555.0;
  d.max_mig_instances = 7;
  d.amp_bwd_regression = true;
  d.host_cores = 12;  // a2-highgpu-1g
  return d;
}

DeviceSpec tpu_v3() {
  DeviceSpec d;
  d.name = "TPUv3";
  d.is_tpu = true;
  d.sms = 2;  // MXUs per core
  d.fp32_tflops = 61.0;  // bf16 MXU peak per core (2 MXUs)
  d.tc_tflops = 0.0;
  d.vector_tflops = 3.0;
  d.hbm_gb = 16.0;
  d.hbm_gbps = 900.0;
  d.kernel_launch_us = 1.5;  // XLA fused programs launch cheaply
  d.gemm_setup_us = 0.5;
  d.stream_gap_us = 80.0;  // PyTorch/XLA per-step program boundaries (2020)
  d.host_speedup = 20.0;
  d.activation_discount = 0.5;
  // XLA/TPU runtime reservation is smaller than the CUDA stack's.
  d.framework_gb_fp32 = 0.8;
  d.framework_gb_amp = 0.8;
  d.host_cores = 8;  // n1-highmem-8
  return d;
}

}  // namespace hfta::sim
