// Sweep helpers shared by the bench harness: throughput-vs-B curves and
// peak-speedup tables (the data behind Fig. 4/5/15/16 and Tables 5/8/9/10).
#pragma once

#include <vector>

#include "sim/execution.h"

namespace hfta::sim {

struct SweepPoint {
  int64_t models = 0;
  double normalized = 0;  // vs FP32 serial
  RunResult result;
};

/// Throughput curve for one (device, workload, mode, precision): one point
/// per model count until the memory capacity stop.
std::vector<SweepPoint> sweep(const DeviceSpec& dev, Workload w, Mode mode,
                              Precision prec, int64_t max_b = 0);

/// Peak normalized throughput over a sweep (0 when the mode cannot run).
double peak(const std::vector<SweepPoint>& curve);

/// Peak speedup of HFTA over `mode`, taking the better of FP32/AMP on both
/// sides (Table 5's aggregation rule).
double peak_speedup_vs(const DeviceSpec& dev, Workload w, Mode mode);

/// Max speedup of HFTA over `mode` at equal model counts (Table 9).
double equal_models_speedup(const DeviceSpec& dev, Workload w, Mode mode,
                            Precision prec);

/// Max AMP-over-FP32 throughput ratio across model counts (Table 10).
double amp_over_fp32(const DeviceSpec& dev, Workload w, Mode mode);

}  // namespace hfta::sim
