// Execution-mode simulation: given a device, a workload and a sharing mode
// (serial / concurrent / MPS / MIG / HFTA — paper §4 "Baselines"), computes
// per-device training throughput, the memory footprint that bounds how many
// models fit (Fig. 6), and DCGM-style hardware counters (Fig. 7/10/13/14).
//
// Mechanisms modeled (see DESIGN.md §4): per-kernel launch/setup overhead,
// SM-filling efficiency from CTA counts, compute/memory roofline, tensor-
// core engagement under AMP (with per-kernel format-conversion overhead),
// TPU systolic-array padding, host-side input pipeline with core contention,
// and per-process framework memory reservations.
#pragma once

#include "sim/device.h"
#include "sim/kernel.h"
#include "sim/workloads.h"

namespace hfta::sim {

enum class Mode { kSerial, kConcurrent, kMps, kMig, kHfta };
enum class Precision { kFP32, kAMP };

const char* mode_name(Mode m);
const char* precision_name(Precision p);

/// DCGM counters (paper Appendix F) plus the nvidia-smi "GPU utilization"
/// the paper shows to be a weak indicator (Fig. 13).
struct Counters {
  double sm_active = 0;
  double sm_occupancy = 0;
  double tensor_active = 0;
  double nvsmi_util = 0;
};

struct RunResult {
  bool fits = false;          // memory constraint satisfied
  int64_t models = 0;         // co-running / fused models B
  double round_us = 0;        // wall time for every model to advance 1 iter
  double throughput = 0;      // samples/sec aggregated over all models
  double memory_gb = 0;
  Counters counters;
};

/// Device memory used by `models` jobs under `mode` (Fig. 6 model).
double memory_gb(const DeviceSpec& dev, const IterationTrace& single,
                 Mode mode, int64_t models, Precision prec);

/// Largest number of models that fits in device memory (curve stop points).
int64_t max_models(const DeviceSpec& dev, Workload w, Mode mode,
                   Precision prec, int64_t limit = 512);

/// Simulates one workload under one mode with `models` jobs.
RunResult simulate(const DeviceSpec& dev, Workload w, Mode mode,
                   int64_t models, Precision prec);

/// Simulate from explicit traces (used for partial fusion, Fig. 17).
RunResult simulate_traces(const DeviceSpec& dev, const IterationTrace& single,
                          const IterationTrace& fused_or_single, Mode mode,
                          int64_t models, Precision prec);

/// Normalized per-device throughput relative to the FP32 serial baseline
/// (the y-axis of Fig. 4 / 5 / 15 / 16).
double normalized_throughput(const RunResult& r, const RunResult& serial_fp32);

}  // namespace hfta::sim
