// Kernel-trace builders for the paper's benchmark models at PAPER scale
// (published batch sizes and layer widths), parameterized by the fusion
// array size B. Channel-fused shapes are linear in B: grouped-conv traces
// get B x groups, model-major GEMMs get B x batch entries — exactly what
// the real fused modules in src/models do.
#pragma once

#include "sim/kernel.h"

namespace hfta::sim {

enum class Workload {
  kPointNetCls,
  kPointNetSeg,
  kDCGAN,
  kResNet18,
  kMobileNetV3,
  kTransformer,
  kBertMedium,
};

const char* workload_name(Workload w);

/// Builds the per-iteration kernel trace of `B` horizontally fused models
/// (B = 1 gives the unfused job that serial/concurrent/MPS/MIG run).
IterationTrace build_trace(Workload w, int64_t B);

/// Structural hyper-parameters of one PointNet-classification training job
/// — the shapes the HFHT real executor actually trains. Defaults are the
/// paper scale; the executor fills in each trial's batch size / feature
/// transform so fused jobs are priced from their real trace, not the
/// canned kPointNetCls one.
struct PointNetTraceSpec {
  int64_t batch = 32;
  int64_t points = 2500;
  int64_t w1 = 64, w2 = 128, w3 = 1024;  // trunk conv widths
  int64_t fc1 = 512, fc2 = 256;          // classifier MLP widths
  int64_t num_classes = 16;
  bool input_transform = true;  // STN on the 3-d input
};

/// Per-iteration kernel trace of `B` fused PointNet classifiers with the
/// given structural hyper-parameters (mirrors models::PointNetCls layer by
/// layer: optional STN, trunk conv1d stack, global max pool, MLP head).
IterationTrace build_pointnet_cls_trace(const PointNetTraceSpec& spec,
                                        int64_t B);

/// Structural hyper-parameters of one MobileNet (V3-Large or V2) training
/// job, after width scaling: the shapes the HFHT real executor actually
/// trains. Defaults are the paper scale (the canned kMobileNetV3 trace);
/// the executor fills in each trial's batch size and scaled bneck rows so
/// MobileNet jobs are priced from their real trace too.
struct MobileNetTraceSpec {
  struct Row {
    int64_t kernel;
    int64_t expand;  // scaled expansion width
    int64_t out;     // scaled output width
    int64_t stride;
    bool se;
  };

  int64_t batch = 1024;
  int64_t image = 32;       // input resolution
  int64_t stem = 16;        // scaled stem width
  std::vector<Row> rows;    // scaled bneck rows (empty = V3-Large table)
  int64_t last = 960;       // scaled last-conv width
  int64_t head = 1280;      // classifier hidden width
  int64_t num_classes = 10;
};

/// Per-iteration kernel trace of `B` fused MobileNets with the given
/// structural hyper-parameters (mirrors models::MobileNetV3 block by
/// block: stem, inverted-residual bnecks with depthwise conv + optional
/// SE, last conv, pooled classifier head).
IterationTrace build_mobilenet_trace(const MobileNetTraceSpec& spec,
                                     int64_t B);

/// ResNet-18 partial fusion (paper Fig. 17): only `fused_units` of the 10
/// fusion units (stem, 8 blocks, head) are fused; the rest run as B
/// per-model kernel sequences.
IterationTrace build_resnet_partial_trace(int64_t B, int64_t fused_units);

}  // namespace hfta::sim
