// Accelerator device models. These stand in for the paper's hardware
// (V100 / RTX6000 / A100 GPUs, TPU v3) — see DESIGN.md §1 for why an
// analytic model preserves the evaluation's shape. Numbers are public
// spec-sheet values plus calibrated overhead constants.
#pragma once

#include <string>

namespace hfta::sim {

struct DeviceSpec {
  std::string name;

  // Compute.
  int64_t sms = 80;            // streaming multiprocessors (or TPU "lanes")
  double fp32_tflops = 15.7;   // peak FP32
  double tc_tflops = 0.0;      // tensor-core peak (0 = no TCs / no AMP gain)
  // Memory.
  double hbm_gb = 16.0;
  double hbm_gbps = 900.0;
  // Per-kernel overheads (microseconds) — launch latency plus the eager-
  // framework per-op dispatch cost the paper's Section 2.2 points at.
  double kernel_launch_us = 12.0;
  double gemm_setup_us = 4.0;
  double tc_setup_us = 3.0;   // AMP format-conversion / TC setup extra
  // Fine-grained GPU-stream idle gap per op in eager single-process mode
  // (launch latency + framework dispatch + stream syncs). Time-multiplexing
  // (concurrent) cannot fill these; MPS partially overlaps them; HFTA pays
  // them once for all B fused models. This is the dominant source of the
  // low sm_active the paper measures on repetitive jobs (Fig. 10).
  double stream_gap_us = 200.0;
  // cuDNN AMP backward regression observed on Ampere (paper §5.1, DCGAN).
  bool amp_bwd_regression = false;
  // Device-filling model: CTAs needed for full compute / bandwidth
  // utilization (a "wave").
  int64_t wave_ctas() const { return sms * 24; }
  int64_t wave_mem_ctas() const { return sms * 6; }
  // DL-framework per-process device-memory reservation (paper Fig. 6).
  double framework_gb_fp32 = 1.52;
  double framework_gb_amp = 2.12;
  // Sharing features.
  int64_t max_mig_instances = 0;  // 0 = MIG unavailable
  // TPU specifics.
  bool is_tpu = false;
  int64_t mxu_dim = 128;        // systolic array edge: ops pad to multiples
  double vector_tflops = 0.5;   // non-GEMM vector unit throughput
  // Host input pipeline speedup vs the eager-GPU stack (tf.data-style
  // prefetch + compiled step function on TPU VMs).
  double host_speedup = 1.0;
  // XLA's memory planner reuses buffers more aggressively than the caching
  // allocator; fraction of the eager activation footprint it needs.
  double activation_discount = 1.0;
  // Host resources backing this device's VM (paper Table 4).
  int64_t host_cores = 8;

  /// Effective max warp slots per SM (occupancy denominator).
  int64_t max_warps_per_sm = 64;
};

/// Volta V100 (16 GB) — AWS p3.2xlarge.
DeviceSpec v100();
/// Turing RTX6000 (24 GB).
DeviceSpec rtx6000();
/// Ampere A100 (40 GB) — GCP a2-highgpu-1g; supports MIG (7 GIs).
DeviceSpec a100();
/// Google TPU v3 core (16 GB HBM).
DeviceSpec tpu_v3();

}  // namespace hfta::sim
