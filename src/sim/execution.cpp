#include "sim/execution.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/rng.h"

namespace hfta::sim {

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kSerial: return "serial";
    case Mode::kConcurrent: return "concurrent";
    case Mode::kMps: return "MPS";
    case Mode::kMig: return "MIG";
    case Mode::kHfta: return "HFTA";
  }
  return "?";
}

const char* precision_name(Precision p) {
  return p == Precision::kFP32 ? "FP32" : "AMP";
}

namespace {

constexpr double kTcConversionBytesFactor = 0.15;  // extra traffic for fp16
constexpr double kMpsPacking = 0.7;    // co-scheduling efficiency under MPS
constexpr double kMpsLaunchShare = 0.5;  // extra serialized launch per process
constexpr double kMpsGapResidual = 0.5;   // floor of unhidden stream gaps
constexpr double kHftaHostShare = 0.15;  // extra host work per fused model
constexpr int64_t kHostCoresPerJob = 3;

double ceil_to(double v, double q) { return std::ceil(v / q) * q; }

// Per-kernel execution accounting.
struct KernelTime {
  double total_us = 0;   // overhead + busy
  double busy_us = 0;    // roofline part (SMs doing something)
  double sm_frac = 0;    // fraction of SMs with resident work while busy
  double occupancy = 0;  // resident-warp ratio while busy
  double tc_busy_us = 0; // time tensor-core pipes are active
};

// Models one kernel on `sm_share` of the device with `copies` identical
// co-running instances (MPS) or a work multiplier already folded into the
// kernel (HFTA traces are built at array size B).
KernelTime kernel_time(const DeviceSpec& dev, const Kernel& k, Precision prec,
                       double sm_share, int64_t copies, bool mps) {
  KernelTime out;
  const double sms = static_cast<double>(dev.sms) * sm_share;
  const double wave = static_cast<double>(dev.wave_ctas()) * sm_share;
  const double wave_mem = static_cast<double>(dev.wave_mem_ctas()) * sm_share;
  const double ctas = static_cast<double>(k.ctas) * copies;
  const double fill = ctas / (ctas + wave);
  const double fill_mem = ctas / (ctas + wave_mem);

  double flops = k.flops * copies;
  double bytes = k.bytes * copies;
  double peak = dev.fp32_tflops * 1e12;
  double bw = dev.hbm_gbps * 1e9 * sm_share;
  double overhead = dev.kernel_launch_us;
  double tc_busy = 0;

  if (dev.is_tpu) {
    if (k.cls == KernelClass::kGemm) {
      // Systolic-array padding: each GEMM dim pads to the MXU edge. XLA
      // lowers a fused grouped op with its model-concatenated channel dims
      // (m*groups, k*groups), which pad out far better than the skinny
      // per-model dims — the mechanism behind serial DCGAN's weakness and
      // HFTA's super-linear gain on TPUs (Section 5.2).
      const double q = static_cast<double>(dev.mxu_dim);
      const double m_eff = std::min<double>(k.m * k.groups, 4096);
      const double k_eff = std::min<double>(k.k * k.groups, 4096);
      const double pad_eff = (m_eff / ceil_to(m_eff, q)) *
                             (k.n / ceil_to(k.n, q)) *
                             (k_eff / ceil_to(k_eff, q));
      peak = dev.fp32_tflops * 1e12 * std::max(0.02, pad_eff);
    } else {
      peak = dev.vector_tflops * 1e12;
      if (k.cls == KernelClass::kGather) {
        peak *= 0.25;       // poor systolic fit
        bw *= 0.15;         // strided/scatter access patterns
      }
    }
    overhead = dev.kernel_launch_us;
  } else if (k.cls == KernelClass::kGemm) {
    overhead += dev.gemm_setup_us;
    const bool amp_here = prec == Precision::kAMP && k.tc_eligible &&
                          !(k.amp_fallback && dev.amp_bwd_regression);
    if (prec == Precision::kAMP && k.tc_eligible) {
      overhead += dev.tc_setup_us;
      bytes += k.bytes * copies * kTcConversionBytesFactor;  // format conv.
    }
    if (amp_here && dev.tc_tflops > 0) {
      // TC engagement needs both friendly tile shapes AND enough resident
      // work to hide the format-conversion latency — underfilled kernels
      // see almost none of the TC peak (why serial AMP ~ serial FP32,
      // Table 10).
      const double shape_eff = std::min(1.0, static_cast<double>(k.m) / 256.0) *
                               std::min(1.0, static_cast<double>(k.k) / 64.0);
      const double fill_eff = ctas / (ctas + 8.0 * wave);
      const double engage = shape_eff * fill_eff;
      peak = peak + (dev.tc_tflops * 1e12 - peak) * engage;
      bytes *= 1.0 - 0.45 * engage;  // fp16 traffic where TCs engage
      tc_busy = flops / (dev.tc_tflops * 1e12) * engage;
    } else if (prec == Precision::kAMP && k.tc_eligible && k.amp_fallback &&
               dev.amp_bwd_regression) {
      // The Ampere cuDNN regression: the kernel silently falls back to an
      // unoptimized FP32 path inside an AMP region, thrashing tensor
      // layouts on the way in and out (paper §5.1, third observation).
      bytes *= 2.0;
      peak *= 0.5;
      overhead += dev.tc_setup_us * 2.0;
    }
  }

  const double compute_us = flops / (peak * std::max(fill, 1e-6)) * 1e6;
  const double mem_us = bytes / (bw * std::max(fill_mem, 1e-6)) * 1e6;
  double busy = std::max(compute_us, mem_us);
  if (mps) {
    busy /= kMpsPacking;
    overhead *= 1.0 + kMpsLaunchShare * (copies - 1);
  }
  out.busy_us = busy;
  out.total_us = overhead + busy;
  out.sm_frac = std::min(1.0, ctas / sms);
  out.occupancy = std::min(1.0, ctas * 8.0 / (sms * dev.max_warps_per_sm));
  out.tc_busy_us = tc_busy * 1e6 / std::max(sm_share, 1e-6);
  return out;
}

struct GpuSchedule {
  double gpu_us = 0;       // overhead + busy wall time for one round
  double gap_us = 0;       // framework stream gaps (GPU idle, stream owned)
  double active_us = 0;    // integral of sm fraction
  double occ_us = 0;       // integral of occupancy
  double tc_us = 0;        // tensor-pipe busy time
  double resident_us = 0;  // time with any kernel resident (nvidia-smi util)

  double stream_us() const { return gpu_us + gap_us; }
};

GpuSchedule run_trace(const DeviceSpec& dev, const IterationTrace& t,
                      Precision prec, double sm_share, int64_t copies,
                      bool mps) {
  GpuSchedule s;
  for (const Kernel& k : t.kernels) {
    const KernelTime kt = kernel_time(dev, k, prec, sm_share, copies, mps);
    s.gpu_us += kt.total_us;
    s.gap_us += dev.stream_gap_us * t.gap_scale;
    s.active_us += kt.busy_us * kt.sm_frac;
    s.occ_us += kt.busy_us * kt.occupancy;
    s.tc_us += kt.tc_busy_us;
    s.resident_us += kt.busy_us;
  }
  return s;
}

// Host elapsed time for `jobs` input pipelines sharing dev.host_cores.
double host_elapsed_us(const DeviceSpec& dev, double host_us_per_job,
                       int64_t jobs) {
  const int64_t cap =
      std::max<int64_t>(1, dev.host_cores / kHostCoresPerJob);
  double elapsed = host_us_per_job *
                   std::ceil(static_cast<double>(jobs) / cap);
  if (jobs > cap) {
    // IO / memory-bus contention beyond the core budget.
    elapsed *= 1.0 + 0.06 * static_cast<double>(jobs - cap);
  }
  return elapsed;
}

double model_gb(const DeviceSpec& dev, const IterationTrace& single,
                Precision prec) {
  double act = prec == Precision::kAMP ? single.activation_gb * 0.55
                                       : single.activation_gb;
  act *= dev.activation_discount;
  const double state = prec == Precision::kAMP ? single.model_state_gb * 1.25
                                               : single.model_state_gb;
  return act + state;
}

double framework_gb(const DeviceSpec& dev, Precision prec) {
  return prec == Precision::kAMP ? dev.framework_gb_amp
                                 : dev.framework_gb_fp32;
}

}  // namespace

double memory_gb(const DeviceSpec& dev, const IterationTrace& single,
                 Mode mode, int64_t models, Precision prec) {
  const double per_model = model_gb(dev, single, prec);
  const double fw = framework_gb(dev, prec);
  switch (mode) {
    case Mode::kSerial:
      return fw + per_model;
    case Mode::kConcurrent:
    case Mode::kMps:
    case Mode::kMig:
      // one process (framework reservation included) per job
      return static_cast<double>(models) * (fw + per_model);
    case Mode::kHfta:
      return fw + static_cast<double>(models) * per_model;
  }
  return 0;
}

int64_t max_models(const DeviceSpec& dev, Workload w, Mode mode,
                   Precision prec, int64_t limit) {
  const IterationTrace single = build_trace(w, 1);
  if (mode == Mode::kSerial) return 1;
  if (mode == Mode::kMig) {
    if (dev.max_mig_instances == 0) return 0;
    const double gi_mem = dev.hbm_gb / static_cast<double>(dev.max_mig_instances);
    return (framework_gb(dev, prec) + model_gb(dev, single, prec) <= gi_mem)
               ? dev.max_mig_instances
               : 0;
  }
  int64_t best = 0;
  for (int64_t b = 1; b <= limit; ++b) {
    if (memory_gb(dev, single, mode, b, prec) <= dev.hbm_gb) best = b;
    else break;
  }
  return best;
}

RunResult simulate_traces(const DeviceSpec& dev, const IterationTrace& single,
                          const IterationTrace& fused, Mode mode,
                          int64_t models, Precision prec) {
  RunResult r;
  r.models = models;
  r.memory_gb = memory_gb(dev, single, mode, models, prec);
  r.fits = r.memory_gb <= dev.hbm_gb + 1e-9;
  if (mode == Mode::kMig) {
    r.fits = dev.max_mig_instances > 0 &&
             models <= dev.max_mig_instances &&
             framework_gb(dev, prec) + model_gb(dev, single, prec) <=
                 dev.hbm_gb / static_cast<double>(dev.max_mig_instances);
  }
  if (!r.fits) return r;

  const double batch = single.samples;
  double round_us = 0;
  GpuSchedule s;
  switch (mode) {
    case Mode::kSerial: {
      HFTA_CHECK(models == 1, "serial runs one model");
      s = run_trace(dev, single, prec, 1.0, 1, false);
      // Input pipeline runs before the step; stream gaps are GPU-idle but
      // stream-owned and cannot be hidden within one process.
      round_us = single.host_us / dev.host_speedup + s.stream_us();
      if (dev.is_tpu) round_us += single.xla_step_us;
      break;
    }
    case Mode::kConcurrent: {
      // Time-multiplexed: streams (including their gaps) serialize on the
      // device at kernel granularity — fine-grained gaps are NOT filled by
      // other processes (paper §2.2); only host pipelines overlap.
      s = run_trace(dev, single, prec, 1.0, 1, false);
      const double gpu_total = s.stream_us() * static_cast<double>(models);
      round_us = std::max(
          gpu_total, host_elapsed_us(dev, single.host_us / dev.host_speedup,
                                     models) +
                         s.stream_us());
      s.active_us *= static_cast<double>(models);
      s.occ_us *= static_cast<double>(models);
      s.tc_us *= static_cast<double>(models);
      s.resident_us *= static_cast<double>(models);
      break;
    }
    case Mode::kMps: {
      // Hyper-Q co-schedules kernels from all processes: busy parts pack
      // (with a penalty), launch overheads duplicate, and a fraction of the
      // stream gaps is overlapped by competitor kernels.
      s = run_trace(dev, single, prec, 1.0, models, true);
      // A gap only stalls the device when all co-running processes gap at
      // once; residual floor models MPS scheduling quanta.
      const double gap_hide = std::max(
          kMpsGapResidual, 1.0 / static_cast<double>(models));
      const double gpu_mps = s.gpu_us + s.gap_us * gap_hide;
      round_us = std::max(
          gpu_mps, host_elapsed_us(dev, single.host_us / dev.host_speedup,
                                   models) +
                       0.3 * gpu_mps);
      s.gap_us *= gap_hide;
      break;
    }
    case Mode::kMig: {
      // Isolated instances run in parallel; each behaves like serial on a
      // 1/8 slice (7 usable GIs of the 8 compute slices on A100).
      const double share = 1.0 / 8.0;
      s = run_trace(dev, single, prec, share, 1, false);
      const double host_scale =
          host_elapsed_us(dev, 1.0, models);  // per-unit host w/ contention
      // 7 training processes contend the VM's cores: per-op dispatch (and
      // with it every stream gap) slows down on each instance.
      const double gap_contention =
          1.0 + 0.15 * static_cast<double>(models - 1);
      round_us = single.host_us / dev.host_speedup * host_scale + s.gpu_us +
                 s.gap_us * gap_contention;
      // counters aggregate over the whole device: `models` instances active
      s.active_us *= static_cast<double>(models) * share;
      s.occ_us *= static_cast<double>(models) * share;
      s.tc_us *= static_cast<double>(models) * share;
      s.resident_us *= static_cast<double>(models) * share;
      break;
    }
    case Mode::kHfta: {
      HFTA_CHECK(fused.array_size == models, "fused trace array size");
      s = run_trace(dev, fused, prec, 1.0, 1, false);
      const double host =
          fused.host_us / dev.host_speedup *
          (1.0 + kHftaHostShare * static_cast<double>(models - 1));
      round_us = host + s.stream_us();
      if (dev.is_tpu) round_us += fused.xla_step_us;
      break;
    }
  }
  r.round_us = round_us;
  r.throughput = static_cast<double>(models) * batch / (round_us * 1e-6);
  r.counters.sm_active = std::min(1.0, s.active_us / round_us);
  r.counters.sm_occupancy = std::min(1.0, s.occ_us / round_us);
  r.counters.tensor_active = std::min(1.0, s.tc_us / round_us);
  // nvidia-smi "GPU utilization": fraction of sample windows with any kernel
  // resident — coarse and noisy (paper Fig. 13).
  const double resident = std::min(1.0, s.resident_us / round_us);
  const double noise =
      0.25 * hash_to_unit(hash_combine(static_cast<uint64_t>(models),
                                       static_cast<uint64_t>(round_us)));
  r.counters.nvsmi_util = std::min(1.0, resident + noise);
  return r;
}

RunResult simulate(const DeviceSpec& dev, Workload w, Mode mode,
                   int64_t models, Precision prec) {
  const IterationTrace single = build_trace(w, 1);
  if (mode == Mode::kHfta) {
    const IterationTrace fused = build_trace(w, models);
    return simulate_traces(dev, single, fused, mode, models, prec);
  }
  return simulate_traces(dev, single, single, mode, models, prec);
}

double normalized_throughput(const RunResult& r, const RunResult& serial_fp32) {
  return r.throughput / serial_fp32.throughput;
}

}  // namespace hfta::sim
