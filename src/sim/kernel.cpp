#include "sim/kernel.h"

#include <algorithm>
#include <cmath>

namespace hfta::sim {

namespace {
constexpr int64_t kTileM = 64;
constexpr int64_t kTileN = 64;
constexpr double kBytesPerFloat = 4.0;

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }
}  // namespace

int64_t gemm_ctas(int64_t m, int64_t n, int64_t k, int64_t groups) {
  const int64_t split_k =
      std::clamp<int64_t>(k / 512, 1, 32);  // split-k fills reduction shapes
  return ceil_div(m, kTileM) * ceil_div(n, kTileN) * split_k * groups;
}

int64_t elementwise_ctas(double elems) {
  return std::max<int64_t>(1, static_cast<int64_t>(elems / 4096.0));
}

void add_gemm_fwd_bwd(IterationTrace& t, int64_t m, int64_t n, int64_t k,
                      int64_t groups, bool tc_eligible,
                      bool amp_fallback_bwd, double io_elems) {
  const double flops = 2.0 * m * n * k * groups;
  const double bytes =
      io_elems > 0
          ? kBytesPerFloat * io_elems
          : kBytesPerFloat *
                (static_cast<double>(m) * k + static_cast<double>(k) * n +
                 static_cast<double>(m) * n) *
                groups;
  Kernel fwd;
  fwd.cls = KernelClass::kGemm;
  fwd.flops = flops;
  fwd.bytes = bytes;
  fwd.ctas = gemm_ctas(m, n, k, groups);
  fwd.m = m;
  fwd.n = n;
  fwd.k = k;
  fwd.groups = groups;
  fwd.tc_eligible = tc_eligible;
  t.kernels.push_back(fwd);

  // Backward: grad-input ([m x n] @ [n x k]) and grad-weight
  // ([k x m] @ [m x n]) — same magnitude, transposed shapes.
  Kernel gi = fwd;
  gi.m = m;
  gi.n = k;
  gi.k = n;
  gi.ctas = gemm_ctas(m, k, n, groups);
  gi.amp_fallback = amp_fallback_bwd;
  t.kernels.push_back(gi);
  Kernel gw = fwd;
  gw.m = k;
  gw.n = n;
  gw.k = m;
  gw.ctas = gemm_ctas(k, n, m, groups);
  gw.amp_fallback = amp_fallback_bwd;
  t.kernels.push_back(gw);
}

namespace {
void add_simple(IterationTrace& t, KernelClass cls, double elems,
                double flops_per_elem, double bytes_per_elem, int reps) {
  for (int r = 0; r < reps; ++r) {
    Kernel k;
    k.cls = cls;
    k.flops = flops_per_elem * elems;
    k.bytes = bytes_per_elem * elems;
    k.ctas = elementwise_ctas(elems);
    t.kernels.push_back(k);
  }
}
}  // namespace

void add_elementwise_fwd_bwd(IterationTrace& t, double elems) {
  add_simple(t, KernelClass::kElementwise, elems, 1.0, 8.0, /*reps=*/2);
}

void add_norm_fwd_bwd(IterationTrace& t, double elems) {
  // fwd: stats pass + normalize pass; bwd: two reduction passes.
  add_simple(t, KernelClass::kNorm, elems, 4.0, 16.0, /*reps=*/2);
}

void add_pool_fwd_bwd(IterationTrace& t, double elems) {
  add_simple(t, KernelClass::kPool, elems, 1.0, 8.0, /*reps=*/2);
}

void add_gather_fwd_bwd(IterationTrace& t, double elems) {
  add_simple(t, KernelClass::kGather, elems, 0.5, 12.0, /*reps=*/2);
}

void add_optimizer(IterationTrace& t, double params) {
  // Adam-style: read grad + 2 states + weight, write 3.
  add_simple(t, KernelClass::kElementwise, params, 4.0, 28.0, /*reps=*/1);
}

}  // namespace hfta::sim
