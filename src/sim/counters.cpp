#include "sim/counters.h"

#include <algorithm>

namespace hfta::sim {

std::vector<SweepPoint> sweep(const DeviceSpec& dev, Workload w, Mode mode,
                              Precision prec, int64_t max_b) {
  std::vector<SweepPoint> out;
  const RunResult base = simulate(dev, w, Mode::kSerial, 1, Precision::kFP32);
  int64_t cap = max_models(dev, w, mode, prec);
  if (mode == Mode::kSerial) cap = 1;
  if (max_b > 0) cap = std::min(cap, max_b);
  for (int64_t b = 1; b <= cap; ++b) {
    RunResult r = simulate(dev, w, mode, b, prec);
    if (!r.fits) break;
    SweepPoint p;
    p.models = b;
    p.result = r;
    p.normalized = normalized_throughput(r, base);
    out.push_back(p);
  }
  return out;
}

double peak(const std::vector<SweepPoint>& curve) {
  double best = 0;
  for (const auto& p : curve) best = std::max(best, p.normalized);
  return best;
}

double peak_speedup_vs(const DeviceSpec& dev, Workload w, Mode mode) {
  auto best_of = [&](Mode m) {
    const double fp32 = peak(sweep(dev, w, m, Precision::kFP32));
    const double amp = peak(sweep(dev, w, m, Precision::kAMP));
    return std::max(fp32, amp);
  };
  const double denom = best_of(mode);
  if (denom == 0) return 0;
  return best_of(Mode::kHfta) / denom;
}

double equal_models_speedup(const DeviceSpec& dev, Workload w, Mode mode,
                            Precision prec) {
  auto hfta = sweep(dev, w, Mode::kHfta, prec);
  auto base = sweep(dev, w, mode, prec);
  double best = 0;
  const size_t n = std::min(hfta.size(), base.size());
  for (size_t i = 0; i < n; ++i) {
    if (base[i].normalized > 0)
      best = std::max(best, hfta[i].normalized / base[i].normalized);
  }
  return best;
}

double amp_over_fp32(const DeviceSpec& dev, Workload w, Mode mode) {
  auto amp = sweep(dev, w, mode, Precision::kAMP);
  auto fp32 = sweep(dev, w, mode, Precision::kFP32);
  double best = 0;
  const size_t n = std::min(amp.size(), fp32.size());
  for (size_t i = 0; i < n; ++i) {
    if (fp32[i].normalized > 0)
      best = std::max(best, amp[i].normalized / fp32[i].normalized);
  }
  return best;
}

}  // namespace hfta::sim
