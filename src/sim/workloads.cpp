#include "sim/workloads.h"

#include <cmath>

#include "core/check.h"

namespace hfta::sim {

namespace {

constexpr double kGB = 1e9;
// Optimizer state factor: weight + grad + 2 Adam moments (floats).
constexpr double kStateFactor = 4.0;

// Accumulates layer shapes into kernels + memory accounting. `stash` is the
// per-workload activation multiplier (forward stash + gradients + cuDNN
// workspace + allocator fragmentation) calibrated so the max-model counts
// match the paper's curve stop points (e.g. 9 AMP PointNet models on V100,
// 25 on A100).
struct Builder {
  IterationTrace t;
  int64_t B;
  double params = 0;  // per-model parameter count
  double stash;

  Builder(int64_t B, double batch, double host_us, double stash,
          double gap_scale)
      : B(B), stash(stash) {
    t.array_size = B;
    t.samples = batch;
    t.host_us = host_us;
    t.gap_scale = gap_scale;
  }

  // Fused grouped conv2d: per-model [Cin -> Cout, kxk, stride s, groups g]
  // on [N, *, H, W]; fused trace has B*g groups.
  void conv2d(int64_t N, int64_t Cin, int64_t H, int64_t W, int64_t Cout,
              int64_t k, int64_t s, int64_t g = 1,
              bool amp_fallback_bwd = false) {
    const int64_t Ho = H / s, Wo = W / s;
    const double io =
        static_cast<double>(B) *
        (static_cast<double>(N) * Cin * H * W +
         static_cast<double>(N) * Cout * Ho * Wo +
         static_cast<double>(Cout) * (Cin / g) * k * k);
    add_gemm_fwd_bwd(t, Cout / g, N * Ho * Wo, (Cin / g) * k * k, B * g, true,
                     amp_fallback_bwd, io);
    params += static_cast<double>(Cout) * (Cin / g) * k * k;
    act(static_cast<double>(N) * Cout * Ho * Wo);
  }

  void conv1d(int64_t N, int64_t Cin, int64_t L, int64_t Cout, int64_t k = 1) {
    const double io = static_cast<double>(B) *
                      (static_cast<double>(N) * (Cin + Cout) * L +
                       static_cast<double>(Cout) * Cin * k);
    add_gemm_fwd_bwd(t, Cout, N * L, Cin * k, B, true, false, io);
    params += static_cast<double>(Cout) * Cin * k;
    act(static_cast<double>(N) * Cout * L);
  }

  // Transposed conv (DCGAN): same GEMM volume as conv at output resolution.
  void conv_transpose2d(int64_t N, int64_t Cin, int64_t Hout, int64_t Cout,
                        int64_t k, bool amp_fallback_bwd = false) {
    const int64_t Hin = Hout / 2 > 0 ? Hout / 2 : 1;
    const double io = static_cast<double>(B) *
                      (static_cast<double>(N) * Cin * Hin * Hin +
                       static_cast<double>(N) * Cout * Hout * Hout +
                       static_cast<double>(Cout) * Cin * k * k);
    add_gemm_fwd_bwd(t, Cout, N * Hout * Hout, Cin * k * k, B, true,
                     amp_fallback_bwd, io);
    params += static_cast<double>(Cout) * Cin * k * k;
    act(static_cast<double>(N) * Cout * Hout * Hout);
  }

  // Fused linear = baddbmm over B model-blocks.
  void linear(int64_t M, int64_t in, int64_t out) {
    const double io = static_cast<double>(B) *
                      (static_cast<double>(M) * (in + out) +
                       static_cast<double>(in) * out);
    add_gemm_fwd_bwd(t, M, out, in, B, true, false, io);
    params += static_cast<double>(in) * out;
    act(static_cast<double>(M) * out);
  }

  void batchnorm(double elems_per_model) {
    add_norm_fwd_bwd(t, elems_per_model * B);
  }
  void layernorm(double elems_per_model) {
    add_norm_fwd_bwd(t, elems_per_model * B);
  }
  void activation(double elems_per_model) {
    add_elementwise_fwd_bwd(t, elems_per_model * B);
  }
  void pool(double elems_per_model) { add_pool_fwd_bwd(t, elems_per_model * B); }
  void gather(double elems_per_model) {
    add_gather_fwd_bwd(t, elems_per_model * B);
  }
  void residual_add(double elems_per_model) {
    add_elementwise_fwd_bwd(t, elems_per_model * B);
  }

  void act(double elems_per_model) {
    t.activation_gb += elems_per_model * 4.0 * stash / kGB;
  }

  IterationTrace finish() {
    add_optimizer(t, params * B);
    t.model_state_gb = params * 4.0 * kStateFactor / kGB;
    return t;
  }
};

// ---- PointNet (batch 32, 2500 points, widths 64/128/1024) ---------------------

IterationTrace pointnet_cls(int64_t B) {
  const int64_t N = 32, L = 2500;
  Builder b(B, N, /*host_us=*/1500, /*stash=*/6.0, /*gap_scale=*/3.5);
  // input STN
  b.conv1d(N, 3, L, 64);
  b.batchnorm(static_cast<double>(N) * 64 * L);
  b.activation(static_cast<double>(N) * 64 * L);
  b.conv1d(N, 64, L, 128);
  b.batchnorm(static_cast<double>(N) * 128 * L);
  b.activation(static_cast<double>(N) * 128 * L);
  b.pool(static_cast<double>(N) * 128 * L);
  b.linear(N, 128, 64);
  b.linear(N, 64, 9);
  b.gather(static_cast<double>(N) * 3 * L);  // apply transform
  // trunk
  b.conv1d(N, 3, L, 64);
  b.batchnorm(static_cast<double>(N) * 64 * L);
  b.activation(static_cast<double>(N) * 64 * L);
  b.conv1d(N, 64, L, 128);
  b.batchnorm(static_cast<double>(N) * 128 * L);
  b.activation(static_cast<double>(N) * 128 * L);
  b.conv1d(N, 128, L, 1024);
  b.batchnorm(static_cast<double>(N) * 1024 * L);
  b.pool(static_cast<double>(N) * 1024 * L);
  // classifier MLP
  b.linear(N, 1024, 512);
  b.batchnorm(static_cast<double>(N) * 512);
  b.activation(static_cast<double>(N) * 512);
  b.linear(N, 512, 256);
  b.batchnorm(static_cast<double>(N) * 256);
  b.activation(static_cast<double>(N) * 256);
  b.linear(N, 256, 16);
  return b.finish();
}

IterationTrace pointnet_seg(int64_t B) {
  const int64_t N = 32, L = 2500;
  Builder b(B, N, /*host_us=*/2000, /*stash=*/6.0, /*gap_scale=*/4.5);
  // trunk (with STN as in cls)
  b.conv1d(N, 3, L, 64);
  b.batchnorm(static_cast<double>(N) * 64 * L);
  b.activation(static_cast<double>(N) * 64 * L);
  b.conv1d(N, 64, L, 128);
  b.batchnorm(static_cast<double>(N) * 128 * L);
  b.activation(static_cast<double>(N) * 128 * L);
  b.conv1d(N, 128, L, 1024);
  b.batchnorm(static_cast<double>(N) * 1024 * L);
  b.pool(static_cast<double>(N) * 1024 * L);
  // per-point head: concat global [1024] with pointfeat [64] at every point
  b.gather(static_cast<double>(N) * 1088 * L);  // broadcast + concat
  b.conv1d(N, 1088, L, 512);
  b.batchnorm(static_cast<double>(N) * 512 * L);
  b.activation(static_cast<double>(N) * 512 * L);
  b.conv1d(N, 512, L, 256);
  b.batchnorm(static_cast<double>(N) * 256 * L);
  b.activation(static_cast<double>(N) * 256 * L);
  b.conv1d(N, 256, L, 128);
  b.batchnorm(static_cast<double>(N) * 128 * L);
  b.activation(static_cast<double>(N) * 128 * L);
  b.conv1d(N, 128, L, 50);
  b.gather(static_cast<double>(N) * 50 * L);  // per-point log-softmax/labels
  return b.finish();
}

// ---- DCGAN (batch 64, 64x64 LSUN, nz=100, ngf=ndf=64) --------------------------

void dcgan_generator(Builder& b, int64_t N) {
  b.conv_transpose2d(N, 100, 4, 512, 4, true);
  b.batchnorm(static_cast<double>(N) * 512 * 4 * 4);
  b.activation(static_cast<double>(N) * 512 * 4 * 4);
  b.conv_transpose2d(N, 512, 8, 256, 4, true);
  b.batchnorm(static_cast<double>(N) * 256 * 8 * 8);
  b.activation(static_cast<double>(N) * 256 * 8 * 8);
  b.conv_transpose2d(N, 256, 16, 128, 4, true);
  b.batchnorm(static_cast<double>(N) * 128 * 16 * 16);
  b.activation(static_cast<double>(N) * 128 * 16 * 16);
  b.conv_transpose2d(N, 128, 32, 64, 4, true);
  b.batchnorm(static_cast<double>(N) * 64 * 32 * 32);
  b.activation(static_cast<double>(N) * 64 * 32 * 32);
  b.conv_transpose2d(N, 64, 64, 3, 4, true);
  b.activation(static_cast<double>(N) * 3 * 64 * 64);
}

void dcgan_discriminator(Builder& b, int64_t N) {
  b.conv2d(N, 3, 64, 64, 64, 4, 2, 1, true);
  b.activation(static_cast<double>(N) * 64 * 32 * 32);
  b.conv2d(N, 64, 32, 32, 128, 4, 2, 1, true);
  b.batchnorm(static_cast<double>(N) * 128 * 16 * 16);
  b.activation(static_cast<double>(N) * 128 * 16 * 16);
  b.conv2d(N, 128, 16, 16, 256, 4, 2, 1, true);
  b.batchnorm(static_cast<double>(N) * 256 * 8 * 8);
  b.activation(static_cast<double>(N) * 256 * 8 * 8);
  b.conv2d(N, 256, 8, 8, 512, 4, 2, 1, true);
  b.batchnorm(static_cast<double>(N) * 512 * 4 * 4);
  b.activation(static_cast<double>(N) * 512 * 4 * 4);
  b.conv2d(N, 512, 4, 4, 1, 4, 4, 1, true);
}

IterationTrace dcgan(int64_t B) {
  const int64_t N = 64;
  // LSUN 64x64 JPEG decode + augmentation is host-heavy — this drives the
  // concurrent baseline's gains (and its contention collapse) in Fig. 4c.
  Builder b(B, N, /*host_us=*/130000, /*stash=*/2.0, /*gap_scale=*/1.0);
  // Two loss materializations + generator/discriminator graph breaks per
  // iteration make DCGAN's per-step XLA overhead unusually large.
  b.t.xla_step_us = 40000;
  // One GAN iteration: D(real), D(fake), G — ~2x G and 2x D passes.
  dcgan_discriminator(b, N);
  dcgan_generator(b, N);
  dcgan_discriminator(b, N);
  dcgan_generator(b, N);
  return b.finish();
}

// ---- ResNet-18 (CIFAR-10, batch 128) ------------------------------------------

IterationTrace resnet18(int64_t B) {
  const int64_t N = 128, S = 32;
  Builder b(B, N, /*host_us=*/4000, /*stash=*/1.2, /*gap_scale=*/0.5);
  b.conv2d(N, 3, S, S, 64, 3, 1);
  b.batchnorm(static_cast<double>(N) * 64 * S * S);
  b.activation(static_cast<double>(N) * 64 * S * S);
  int64_t in = 64, sz = S;
  for (int64_t stage = 0; stage < 4; ++stage) {
    const int64_t out = 64 << stage;
    for (int64_t blk = 0; blk < 2; ++blk) {
      const int64_t stride = (blk == 0 && stage > 0) ? 2 : 1;
      const int64_t so = sz / stride;
      b.conv2d(N, in, sz, sz, out, 3, stride);
      b.batchnorm(static_cast<double>(N) * out * so * so);
      b.activation(static_cast<double>(N) * out * so * so);
      b.conv2d(N, out, so, so, out, 3, 1);
      b.batchnorm(static_cast<double>(N) * out * so * so);
      if (stride != 1 || in != out) b.conv2d(N, in, sz, sz, out, 1, stride);
      b.residual_add(static_cast<double>(N) * out * so * so);
      in = out;
      sz = so;
    }
  }
  b.pool(static_cast<double>(N) * 512 * sz * sz);
  b.linear(N, 512, 10);
  return b.finish();
}

// ---- MobileNetV3-Large (CIFAR-10, batch 1024) ------------------------------------

IterationTrace mobilenetv3(int64_t B) {
  const int64_t N = 1024;
  int64_t sz = 16;  // 32x32 input, stride-2 stem
  Builder b(B, N, /*host_us=*/35000, /*stash=*/4.5, /*gap_scale=*/0.3);
  b.conv2d(N, 3, 32, 32, 16, 3, 2);
  b.batchnorm(static_cast<double>(N) * 16 * sz * sz);
  b.activation(static_cast<double>(N) * 16 * sz * sz);
  struct Row {
    int64_t k, exp, out, stride;
    bool se;
  };
  const Row rows[15] = {{3, 16, 16, 1, false},  {3, 64, 24, 2, false},
                        {3, 72, 24, 1, false},  {5, 72, 40, 2, true},
                        {5, 120, 40, 1, true},  {5, 120, 40, 1, true},
                        {3, 240, 80, 2, false}, {3, 200, 80, 1, false},
                        {3, 184, 80, 1, false}, {3, 184, 80, 1, false},
                        {3, 480, 112, 1, true}, {3, 672, 112, 1, true},
                        {5, 672, 160, 2, true}, {5, 960, 160, 1, true},
                        {5, 960, 160, 1, true}};
  int64_t in = 16;
  for (const Row& r : rows) {
    const int64_t so = std::max<int64_t>(1, sz / r.stride);
    if (r.exp != in) {
      b.conv2d(N, in, sz, sz, r.exp, 1, 1);
      b.batchnorm(static_cast<double>(N) * r.exp * sz * sz);
      b.activation(static_cast<double>(N) * r.exp * sz * sz);
    }
    // depthwise: per-model groups = exp channels
    b.conv2d(N, r.exp, sz, sz, r.exp, r.k, r.stride, /*g=*/r.exp);
    b.batchnorm(static_cast<double>(N) * r.exp * so * so);
    b.activation(static_cast<double>(N) * r.exp * so * so);
    if (r.se) {
      b.pool(static_cast<double>(N) * r.exp * so * so);
      b.linear(N, r.exp, r.exp / 4);
      b.linear(N, r.exp / 4, r.exp);
      b.activation(static_cast<double>(N) * r.exp * so * so);
    }
    b.conv2d(N, r.exp, so, so, r.out, 1, 1);
    b.batchnorm(static_cast<double>(N) * r.out * so * so);
    if (r.stride == 1 && in == r.out)
      b.residual_add(static_cast<double>(N) * r.out * so * so);
    in = r.out;
    sz = so;
  }
  b.conv2d(N, in, sz, sz, 960, 1, 1);
  b.batchnorm(static_cast<double>(N) * 960 * sz * sz);
  b.activation(static_cast<double>(N) * 960 * sz * sz);
  b.pool(static_cast<double>(N) * 960 * sz * sz);
  b.linear(N, 960, 1280);
  b.activation(static_cast<double>(N) * 1280);
  b.linear(N, 1280, 10);
  return b.finish();
}

// ---- Transformer-LM (2 layers, 2 heads, d=128, batch=seq=32, WikiText-2) ---------

void encoder_layer(Builder& b, int64_t tokens, int64_t E, int64_t H,
                   int64_t FF, int64_t S) {
  b.linear(tokens, E, 3 * E);                       // qkv projection
  // attention scores + context: per (head) GEMMs over S
  const int64_t Dh = E / H;
  add_gemm_fwd_bwd(b.t, S, S, Dh, b.B * (tokens / S) * H, true, false);
  b.act(static_cast<double>(tokens) * S * H);
  add_gemm_fwd_bwd(b.t, S, Dh, S, b.B * (tokens / S) * H, true, false);
  b.act(static_cast<double>(tokens) * E);
  b.gather(static_cast<double>(tokens) * S * H);    // softmax over scores
  b.linear(tokens, E, E);                           // out projection
  b.layernorm(static_cast<double>(tokens) * E);
  b.linear(tokens, E, FF);
  b.activation(static_cast<double>(tokens) * FF);
  b.linear(tokens, FF, E);
  b.layernorm(static_cast<double>(tokens) * E);
}

IterationTrace transformer(int64_t B) {
  const int64_t N = 32, S = 32, E = 128, H = 2, FF = 128, V = 33278;
  const int64_t tokens = N * S;
  Builder b(B, N, /*host_us=*/800, /*stash=*/14.0, /*gap_scale=*/0.25);
  b.gather(static_cast<double>(tokens) * E);  // embedding
  for (int l = 0; l < 2; ++l) encoder_layer(b, tokens, E, H, FF, S);
  b.linear(tokens, E, V);  // decoder
  // embedding + decoder params
  b.params += static_cast<double>(V) * E;
  return b.finish();
}

IterationTrace bert_medium(int64_t B) {
  const int64_t N = 32, S = 32, E = 512, H = 8, FF = 2048, V = 30522;
  const int64_t tokens = N * S;
  Builder b(B, N, /*host_us=*/1200, /*stash=*/8.0, /*gap_scale=*/0.5);
  b.gather(static_cast<double>(tokens) * E);
  b.layernorm(static_cast<double>(tokens) * E);
  for (int l = 0; l < 8; ++l) encoder_layer(b, tokens, E, H, FF, S);
  b.linear(tokens, E, V);
  b.params += static_cast<double>(V) * E;
  return b.finish();
}

}  // namespace

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kPointNetCls: return "PointNet-Cls";
    case Workload::kPointNetSeg: return "PointNet-Seg";
    case Workload::kDCGAN: return "DCGAN";
    case Workload::kResNet18: return "ResNet-18";
    case Workload::kMobileNetV3: return "MobileNetV3-Large";
    case Workload::kTransformer: return "Transformer";
    case Workload::kBertMedium: return "BERT-Medium";
  }
  return "?";
}

IterationTrace build_pointnet_cls_trace(const PointNetTraceSpec& s,
                                        int64_t B) {
  HFTA_CHECK(B >= 1, "build_pointnet_cls_trace: B must be >= 1");
  const int64_t N = s.batch, L = s.points;
  // Host work tracks the input pipeline (linear in the batch); cache-stash
  // and framework-gap factors are the calibrated kPointNetCls ones.
  Builder b(B, static_cast<double>(N), /*host_us=*/1500.0 * N / 32.0,
            /*stash=*/6.0, /*gap_scale=*/3.5);
  auto bn_act = [&](int64_t C, bool act) {
    b.batchnorm(static_cast<double>(N) * C * L);
    if (act) b.activation(static_cast<double>(N) * C * L);
  };
  if (s.input_transform) {
    // STN: conv 3->w1->w2, global max pool, fc w2->fc1->9, apply transform.
    b.conv1d(N, 3, L, s.w1);
    bn_act(s.w1, true);
    b.conv1d(N, s.w1, L, s.w2);
    bn_act(s.w2, true);
    b.pool(static_cast<double>(N) * s.w2 * L);
    b.linear(N, s.w2, s.fc1);
    b.linear(N, s.fc1, 9);
    b.gather(static_cast<double>(N) * 3 * L);  // x' = T^T x
  }
  // trunk: conv 3->w1->w2->w3, global max pool
  b.conv1d(N, 3, L, s.w1);
  bn_act(s.w1, true);
  b.conv1d(N, s.w1, L, s.w2);
  bn_act(s.w2, true);
  b.conv1d(N, s.w2, L, s.w3);
  bn_act(s.w3, false);
  b.pool(static_cast<double>(N) * s.w3 * L);
  // classifier MLP: w3->fc1->fc2->classes with BN+ReLU between
  b.linear(N, s.w3, s.fc1);
  b.batchnorm(static_cast<double>(N) * s.fc1);
  b.activation(static_cast<double>(N) * s.fc1);
  b.linear(N, s.fc1, s.fc2);
  b.batchnorm(static_cast<double>(N) * s.fc2);
  b.activation(static_cast<double>(N) * s.fc2);
  b.linear(N, s.fc2, s.num_classes);
  return b.finish();
}

IterationTrace build_mobilenet_trace(const MobileNetTraceSpec& s, int64_t B) {
  HFTA_CHECK(B >= 1, "build_mobilenet_trace: B must be >= 1");
  const int64_t N = s.batch;
  // Default rows: the published V3-Large table at width 1.0 (the canned
  // kMobileNetV3 trace), so a default-constructed spec prices paper scale.
  std::vector<MobileNetTraceSpec::Row> rows = s.rows;
  if (rows.empty()) {
    rows = {{3, 16, 16, 1, false},  {3, 64, 24, 2, false},
            {3, 72, 24, 1, false},  {5, 72, 40, 2, true},
            {5, 120, 40, 1, true},  {5, 120, 40, 1, true},
            {3, 240, 80, 2, false}, {3, 200, 80, 1, false},
            {3, 184, 80, 1, false}, {3, 184, 80, 1, false},
            {3, 480, 112, 1, true}, {3, 672, 112, 1, true},
            {5, 672, 160, 2, true}, {5, 960, 160, 1, true},
            {5, 960, 160, 1, true}};
  }
  // Host work tracks the input pipeline (linear in the batch); cache-stash
  // and framework-gap factors are the calibrated kMobileNetV3 ones.
  Builder b(B, static_cast<double>(N), /*host_us=*/35000.0 * N / 1024.0,
            /*stash=*/4.5, /*gap_scale=*/0.3);
  int64_t sz = std::max<int64_t>(1, s.image / 2);  // stride-2 stem
  b.conv2d(N, 3, s.image, s.image, s.stem, 3, 2);
  b.batchnorm(static_cast<double>(N) * s.stem * sz * sz);
  b.activation(static_cast<double>(N) * s.stem * sz * sz);
  int64_t in = s.stem;
  for (const MobileNetTraceSpec::Row& r : rows) {
    const int64_t so = std::max<int64_t>(1, sz / r.stride);
    if (r.expand != in) {
      b.conv2d(N, in, sz, sz, r.expand, 1, 1);
      b.batchnorm(static_cast<double>(N) * r.expand * sz * sz);
      b.activation(static_cast<double>(N) * r.expand * sz * sz);
    }
    // depthwise: per-model groups = expand channels
    b.conv2d(N, r.expand, sz, sz, r.expand, r.kernel, r.stride, /*g=*/r.expand);
    b.batchnorm(static_cast<double>(N) * r.expand * so * so);
    b.activation(static_cast<double>(N) * r.expand * so * so);
    if (r.se) {
      const int64_t squeeze = std::max<int64_t>(4, r.expand / 4);
      b.pool(static_cast<double>(N) * r.expand * so * so);
      b.linear(N, r.expand, squeeze);
      b.linear(N, squeeze, r.expand);
      b.activation(static_cast<double>(N) * r.expand * so * so);
    }
    b.conv2d(N, r.expand, so, so, r.out, 1, 1);
    b.batchnorm(static_cast<double>(N) * r.out * so * so);
    if (r.stride == 1 && in == r.out)
      b.residual_add(static_cast<double>(N) * r.out * so * so);
    in = r.out;
    sz = so;
  }
  b.conv2d(N, in, sz, sz, s.last, 1, 1);
  b.batchnorm(static_cast<double>(N) * s.last * sz * sz);
  b.activation(static_cast<double>(N) * s.last * sz * sz);
  b.pool(static_cast<double>(N) * s.last * sz * sz);
  b.linear(N, s.last, s.head);
  b.activation(static_cast<double>(N) * s.head);
  b.linear(N, s.head, s.num_classes);
  return b.finish();
}

IterationTrace build_trace(Workload w, int64_t B) {
  HFTA_CHECK(B >= 1, "build_trace: B must be >= 1");
  switch (w) {
    case Workload::kPointNetCls: return pointnet_cls(B);
    case Workload::kPointNetSeg: return pointnet_seg(B);
    case Workload::kDCGAN: return dcgan(B);
    case Workload::kResNet18: return resnet18(B);
    case Workload::kMobileNetV3: return mobilenetv3(B);
    case Workload::kTransformer: return transformer(B);
    case Workload::kBertMedium: return bert_medium(B);
  }
  HFTA_CHECK(false, "unknown workload");
  return {};
}

IterationTrace build_resnet_partial_trace(int64_t B, int64_t fused_units) {
  HFTA_CHECK(fused_units >= 0 && fused_units <= 10,
             "ResNet-18 has 10 fusion units");
  // Fused portion: one trace at array size B for the fused units; unfused
  // portion: B repetitions of the per-model kernels. We approximate by
  // splitting the full trace's kernels proportionally by unit count —
  // ResNet-18's 10 units have roughly comparable kernel mixes (Fig. 17's
  // near-linear decay).
  IterationTrace fused_all = build_trace(Workload::kResNet18, B);
  IterationTrace single = build_trace(Workload::kResNet18, 1);
  IterationTrace out;
  out.array_size = B;
  out.samples = fused_all.samples;
  out.host_us = fused_all.host_us;
  out.model_state_gb = fused_all.model_state_gb;
  out.activation_gb = fused_all.activation_gb;
  const double frac = static_cast<double>(fused_units) / 10.0;
  const size_t fused_count =
      static_cast<size_t>(frac * static_cast<double>(fused_all.kernels.size()));
  for (size_t i = 0; i < fused_all.kernels.size(); ++i) {
    if (i < fused_count) {
      out.kernels.push_back(fused_all.kernels[i]);
    } else {
      // unfused: B separate per-model kernels
      for (int64_t b = 0; b < B; ++b)
        out.kernels.push_back(single.kernels[i]);
    }
  }
  return out;
}

}  // namespace hfta::sim
