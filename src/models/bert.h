// BERT (Devlin et al. 2019) in the compact variants of Turc et al. 2019 —
// the paper benchmarks BERT-Medium (8 layers, hidden 512, 8 heads) on the
// masked-LM task over WikiText-2. Token + learned position embeddings,
// GELU encoder stack, linear MLM head.
#pragma once

#include "models/transformer.h"

namespace hfta::models {

struct BertConfig {
  int64_t vocab = 60;
  int64_t hidden = 16;
  int64_t num_heads = 2;
  int64_t num_layers = 2;
  int64_t ff_dim = 32;
  int64_t seq_len = 16;
  float dropout_p = 0.f;

  static BertConfig tiny() { return {}; }
  /// BERT-Medium (Turc et al.): L=8, H=512, A=8, FF=2048; paper: seq 32.
  static BertConfig medium() {
    return {30522, 512, 8, 8, 2048, 32, 0.1f};
  }
};

class BertModel : public nn::Module {
 public:
  BertModel(const BertConfig& cfg, Rng& rng);
  ag::Variable forward(const ag::Variable&) override;
  /// tokens: [N, S] -> MLM logits [N, S, V].
  ag::Variable forward_tokens(const Tensor& tokens);
  std::shared_ptr<nn::Module> clone() const override;
  std::string kind_name() const override { return "models::BertModel"; }
  nn::ModuleConfig config() const override;

  std::shared_ptr<nn::Embedding> tok_embed, pos_embed;
  std::shared_ptr<nn::LayerNorm> embed_norm;
  std::vector<std::shared_ptr<TransformerEncoderLayer>> layers;
  std::shared_ptr<nn::Linear> mlm_head;
  BertConfig cfg;
};

class FusedBertModel : public fused::FusedModule {
 public:
  FusedBertModel(int64_t B, const BertConfig& cfg, Rng& rng);
  ag::Variable forward(const ag::Variable&) override;
  /// tokens: [B, N, S] -> [B, N, S, V].
  ag::Variable forward_tokens(const Tensor& tokens);
  void load_model(int64_t b, const BertModel& m);
  void store_model(int64_t b, BertModel& m) const;

  std::shared_ptr<fused::FusedEmbedding> tok_embed, pos_embed;
  std::shared_ptr<fused::FusedLayerNorm> embed_norm;
  std::vector<std::shared_ptr<fused::FusedTransformerEncoderLayer>> layers;
  std::shared_ptr<fused::FusedLinear> mlm_head;
  BertConfig cfg;
};

}  // namespace hfta::models
