// ResNet-18 (He et al., CVPR 2016), CIFAR-style stem (3x3 conv, no initial
// max-pool), 4 stages x 2 BasicBlocks, adaptive average pool, linear head —
// the paper's convergence benchmark (Fig. 11) and partial-fusion study
// subject (Fig. 17 / Appendix H.4).
//
// The per-model network is a planner-walkable Sequential (`net`); the fused
// variant is compiled by FusionPlan, with the Fig. 17 partial-fusion sweep
// expressed as the plan's fuse_mask: units whose fusion is "turned off" run
// B per-model replicas through an UnfusedBlockAdapter on the channel-fused
// layout (mathematically identical, no operator fusion).
#pragma once

#include "hfta/fused_norm.h"
#include "hfta/fusion.h"
#include "nn/layers.h"
#include "nn/norm.h"

namespace hfta::models {

struct ResNetConfig {
  int64_t base_width = 8;     // stage widths: w, 2w, 4w, 8w
  int64_t image_size = 16;    // input resolution (CIFAR-10: 32)
  int64_t num_classes = 10;
  int64_t in_channels = 3;

  static ResNetConfig tiny() { return {}; }
  static ResNetConfig paper() { return {64, 32, 10, 3}; }

  int64_t stage_width(int64_t s) const { return base_width << s; }
};

/// Standard two-conv residual block. Registers the custom lowering
/// "models::BasicBlock" so the planner can fuse it.
class BasicBlock : public nn::Module {
 public:
  BasicBlock(int64_t in, int64_t out, int64_t stride, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  std::string kind_name() const override { return "models::BasicBlock"; }
  nn::ModuleConfig config() const override;

  std::shared_ptr<nn::Conv2d> conv1, conv2, down_conv;  // down_conv optional
  std::shared_ptr<nn::BatchNorm2d> bn1, bn2, down_bn;
};

class ResNet18 : public nn::Module {
 public:
  ResNet18(const ResNetConfig& cfg, Rng& rng);
  /// x: [N, 3, S, S] -> [N, num_classes].
  ag::Variable forward(const ag::Variable& x) override;
  std::shared_ptr<nn::Module> clone() const override;

  std::shared_ptr<nn::Sequential> net;  // the planner-walkable graph
  std::shared_ptr<nn::Conv2d> stem_conv;
  std::shared_ptr<nn::BatchNorm2d> stem_bn;
  std::vector<std::shared_ptr<BasicBlock>> blocks;  // 8
  std::shared_ptr<nn::Linear> fc;
  ResNetConfig cfg;
};

// ---- fused -------------------------------------------------------------------

class FusedBasicBlock : public fused::FusedModule {
 public:
  FusedBasicBlock(int64_t B, int64_t in, int64_t out, int64_t stride, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  void load_model(int64_t b, const BasicBlock& m);
  void store_model(int64_t b, BasicBlock& m) const;

  std::shared_ptr<fused::FusedConv2d> conv1, conv2, down_conv;
  std::shared_ptr<fused::FusedBatchNorm2d> bn1, bn2, down_bn;
};

/// Which parts of the fused ResNet-18 are operator-fused. The paper's
/// Fig. 17 sweep turns these off one by one (stem, 8 blocks, final linear =
/// 10 fusion units).
struct ResNetFusionMask {
  bool stem = true;
  std::array<bool, 8> block{true, true, true, true, true, true, true, true};
  bool head = true;

  static ResNetFusionMask all_fused() { return {}; }
  /// Fusion turned off for the first `n` units in the paper's order
  /// (head, then blocks from the last to the first, then stem).
  static ResNetFusionMask partially_unfused(int64_t n);
  int64_t fused_units() const;
  /// The planner's per-unit mask over ResNet18::net's 12 top-level units
  /// (stem, 8 blocks, pool, flatten, fc); pool/flatten are parameterless
  /// and always fused.
  std::vector<bool> to_fuse_mask() const;
};

/// Thin wrapper over FusionPlan::compile_structure_only with the mask as
/// plan option; load_model supplies the actual weights.
class FusedResNet18 : public fused::FusedModule {
 public:
  FusedResNet18(int64_t B, const ResNetConfig& cfg, Rng& rng,
                ResNetFusionMask mask = ResNetFusionMask::all_fused());
  /// x: [N, B*3, S, S] -> model-major logits [B, N, classes].
  ag::Variable forward(const ag::Variable& x) override;
  void load_model(int64_t b, const ResNet18& m);

  std::shared_ptr<fused::FusedArray> array;
  ResNetConfig cfg;
  ResNetFusionMask mask;
};

}  // namespace hfta::models
