#include "models/transformer.h"

#include <cmath>

#include "tensor/ops.h"

namespace hfta::models {

MultiheadAttention::MultiheadAttention(int64_t embed_dim, int64_t num_heads,
                                       Rng& rng)
    : embed_dim(embed_dim),
      num_heads(num_heads),
      head_dim(embed_dim / num_heads) {
  HFTA_CHECK(embed_dim % num_heads == 0, "embed_dim % num_heads != 0");
  in_proj = register_module(
      "in_proj", std::make_shared<nn::Linear>(embed_dim, 3 * embed_dim, true,
                                              rng));
  out_proj = register_module(
      "out_proj", std::make_shared<nn::Linear>(embed_dim, embed_dim, true,
                                               rng));
}

ag::Variable MultiheadAttention::forward(const ag::Variable& x) {
  return forward_masked(x, Tensor());
}

ag::Variable MultiheadAttention::forward_masked(const ag::Variable& x,
                                                const Tensor& mask) {
  const int64_t N = x.size(0), S = x.size(1);
  const int64_t H = num_heads, Dh = head_dim;
  ag::Variable qkv = in_proj->forward(x);  // [N, S, 3E]
  auto parts = ag::chunk(qkv, 3, 2);
  auto heads = [&](const ag::Variable& t) {
    ag::Variable r = ag::reshape(t, {N, S, H, Dh});
    r = ag::permute(r, {0, 2, 1, 3});  // [N, H, S, Dh]
    return ag::reshape(r, {N * H, S, Dh});
  };
  ag::Variable q = heads(parts[0]), k = heads(parts[1]), v = heads(parts[2]);
  ag::Variable scores = ag::mul_scalar(
      ag::bmm_nt(q, k), 1.f / std::sqrt(static_cast<float>(Dh)));
  if (mask.defined()) scores = ag::add(scores, ag::constant(mask));
  ag::Variable ctx = ag::bmm(ag::softmax(scores, -1), v);  // [N*H, S, Dh]
  ctx = ag::reshape(ctx, {N, H, S, Dh});
  ctx = ag::permute(ctx, {0, 2, 1, 3});
  ctx = ag::reshape(ctx, {N, S, embed_dim});
  return out_proj->forward(ctx);
}

TransformerEncoderLayer::TransformerEncoderLayer(int64_t embed_dim,
                                                 int64_t num_heads,
                                                 int64_t ff_dim,
                                                 float dropout_p,
                                                 const std::string& activation,
                                                 Rng& rng)
    : use_gelu(activation == "gelu") {
  self_attn = register_module(
      "self_attn",
      std::make_shared<MultiheadAttention>(embed_dim, num_heads, rng));
  linear1 = register_module(
      "linear1", std::make_shared<nn::Linear>(embed_dim, ff_dim, true, rng));
  linear2 = register_module(
      "linear2", std::make_shared<nn::Linear>(ff_dim, embed_dim, true, rng));
  norm1 = register_module(
      "norm1", std::make_shared<nn::LayerNorm>(Shape{embed_dim}, 1e-5f, rng));
  norm2 = register_module(
      "norm2", std::make_shared<nn::LayerNorm>(Shape{embed_dim}, 1e-5f, rng));
  drop = register_module("drop", std::make_shared<nn::Dropout>(dropout_p));
}

ag::Variable TransformerEncoderLayer::forward(const ag::Variable& x) {
  return forward_masked(x, Tensor());
}

ag::Variable TransformerEncoderLayer::forward_masked(const ag::Variable& x,
                                                     const Tensor& mask) {
  ag::Variable a = self_attn->forward_masked(x, mask);
  ag::Variable h = norm1->forward(ag::add(x, drop->forward(a)));
  ag::Variable f = linear1->forward(h);
  f = use_gelu ? ag::gelu(f) : ag::relu(f);
  f = linear2->forward(drop->forward(f));
  return norm2->forward(ag::add(h, drop->forward(f)));
}

nn::ModuleConfig TransformerEncoderLayer::config() const {
  nn::ModuleConfig c;
  c.set("embed_dim", self_attn->embed_dim);
  c.set("num_heads", self_attn->num_heads);
  c.set("ff_dim", linear1->out_features);
  c.set("gelu", static_cast<int64_t>(use_gelu));
  c.set("dropout_p", static_cast<double>(drop->p));
  return c;
}

// Planner lowering: B congruent encoder layers -> one fused layer on the
// model-major layout ([B, N, S, E]); plus the clone factory Module::clone()
// falls back to when a layer runs unfused. Load/store both derive from the
// fused layer's StateMap (child names mirror the per-model layer's), which
// is also what closed the encoder layer's old "no store support" gap.
static const fused::LoweringRegistrar kEncoderLayerLowering(
    "models::TransformerEncoderLayer",
    [](const fused::LoweringContext& ctx) {
      const nn::ModuleConfig c = ctx.reference().config();
      auto m = std::make_shared<fused::FusedTransformerEncoderLayer>(
          ctx.array_size, c.get_int("embed_dim"), c.get_int("num_heads"),
          c.get_int("ff_dim"), static_cast<float>(c.get_float("dropout_p")),
          c.get_int("gelu") != 0 ? "gelu" : "relu", *ctx.rng);
      return fused::Lowered{m, fused::Layout::kModelMajor,
                            fused::Layout::kModelMajor};
    },
    [](const nn::Module& src) -> std::shared_ptr<nn::Module> {
      const nn::ModuleConfig c = src.config();
      Rng rng(0);
      return nn::Module::cloned(
          src, std::make_shared<TransformerEncoderLayer>(
                   c.get_int("embed_dim"), c.get_int("num_heads"),
                   c.get_int("ff_dim"),
                   static_cast<float>(c.get_float("dropout_p")),
                   c.get_int("gelu") != 0 ? "gelu" : "relu", rng));
    });

Tensor sinusoidal_positions(int64_t seq_len, int64_t embed_dim) {
  Tensor pe({seq_len, embed_dim});
  for (int64_t s = 0; s < seq_len; ++s) {
    for (int64_t e = 0; e < embed_dim; e += 2) {
      const double freq =
          std::exp(-std::log(10000.0) * static_cast<double>(e) /
                   static_cast<double>(embed_dim));
      pe.at({s, e}) = static_cast<float>(std::sin(s * freq));
      if (e + 1 < embed_dim)
        pe.at({s, e + 1}) = static_cast<float>(std::cos(s * freq));
    }
  }
  return pe;
}

Tensor causal_mask(int64_t seq_len) {
  Tensor m({seq_len, seq_len});
  for (int64_t i = 0; i < seq_len; ++i)
    for (int64_t j = i + 1; j < seq_len; ++j) m.at({i, j}) = -1e9f;
  return m;
}

TransformerLM::TransformerLM(const TransformerConfig& cfg, Rng& rng)
    : cfg(cfg) {
  embed = register_module(
      "embed", std::make_shared<nn::Embedding>(cfg.vocab, cfg.embed_dim, rng));
  for (int64_t l = 0; l < cfg.num_layers; ++l)
    layers.push_back(register_module(
        "layer" + std::to_string(l),
        std::make_shared<TransformerEncoderLayer>(cfg.embed_dim, cfg.num_heads,
                                                  cfg.ff_dim, cfg.dropout_p,
                                                  "relu", rng)));
  decoder = register_module(
      "decoder",
      std::make_shared<nn::Linear>(cfg.embed_dim, cfg.vocab, true, rng));
}

ag::Variable TransformerLM::forward(const ag::Variable&) {
  HFTA_CHECK(false, "TransformerLM: use forward_tokens(tokens)");
  return ag::Variable();
}

ag::Variable TransformerLM::forward_tokens(const Tensor& tokens) {
  const int64_t S = tokens.size(1);
  ag::Variable h = embed->lookup(tokens);  // [N, S, E]
  h = ag::mul_scalar(h, std::sqrt(static_cast<float>(cfg.embed_dim)));
  Tensor pe = sinusoidal_positions(S, cfg.embed_dim);
  h = ag::add(h, ag::constant(pe.reshape({1, S, cfg.embed_dim})));
  const Tensor mask = causal_mask(S);
  for (auto& l : layers) h = l->forward_masked(h, mask);
  return decoder->forward(h);  // [N, S, V]
}

// Hand-fused wrapper (driven through forward_tokens, so not a planner
// chain): initializes its fused parameters exactly once — the
// structure-only analogue of the planner-compiled wrappers; load_model
// supplies real weights.
FusedTransformerLM::FusedTransformerLM(int64_t B, const TransformerConfig& cfg,
                                       Rng& rng)
    : fused::FusedModule(B), cfg(cfg) {
  embed = register_module("embed", std::make_shared<fused::FusedEmbedding>(
                                       B, cfg.vocab, cfg.embed_dim, rng));
  for (int64_t l = 0; l < cfg.num_layers; ++l)
    layers.push_back(register_module(
        "layer" + std::to_string(l),
        std::make_shared<fused::FusedTransformerEncoderLayer>(
            B, cfg.embed_dim, cfg.num_heads, cfg.ff_dim, cfg.dropout_p, "relu",
            rng)));
  decoder = register_module(
      "decoder", std::make_shared<fused::FusedLinear>(B, cfg.embed_dim,
                                                      cfg.vocab, true, rng));
}

ag::Variable FusedTransformerLM::forward(const ag::Variable&) {
  HFTA_CHECK(false, "FusedTransformerLM: use forward_tokens(tokens)");
  return ag::Variable();
}

ag::Variable FusedTransformerLM::forward_tokens(const Tensor& tokens) {
  HFTA_CHECK(tokens.dim() == 3 && tokens.size(0) == array_size_,
             "FusedTransformerLM: tokens must be [B, N, S]");
  const int64_t B = array_size_, N = tokens.size(1), S = tokens.size(2);
  ag::Variable h = embed->lookup(tokens);  // [B, N, S, E]
  h = ag::mul_scalar(h, std::sqrt(static_cast<float>(cfg.embed_dim)));
  Tensor pe = sinusoidal_positions(S, cfg.embed_dim);
  h = ag::add(h, ag::constant(pe.reshape({1, 1, S, cfg.embed_dim})));
  const Tensor mask = causal_mask(S);
  for (auto& l : layers) h = l->forward_masked(h, mask);
  ag::Variable flat = ag::reshape(h, {B, N * S, cfg.embed_dim});
  return ag::reshape(decoder->forward(flat), {B, N, S, cfg.vocab});
}

void FusedTransformerLM::load_model(int64_t b, const TransformerLM& m) {
  fused::load_state(state_map(), array_size_, b, m);
}

void FusedTransformerLM::store_model(int64_t b, TransformerLM& m) const {
  fused::store_state(state_map(), array_size_, b, m);
}


nn::ModuleConfig TransformerLM::config() const {
  nn::ModuleConfig c;
  c.set("vocab", cfg.vocab);
  c.set("embed_dim", cfg.embed_dim);
  c.set("num_heads", cfg.num_heads);
  c.set("num_layers", cfg.num_layers);
  c.set("ff_dim", cfg.ff_dim);
  c.set("dropout_p", static_cast<double>(cfg.dropout_p));
  return c;
}

// Planner lowering for the whole LM: the fused module is driven through
// forward_tokens, so the plan is a single unit rather than a chain. The
// clone factory lets a masked-off / fallback LM unit own its replicas.
static const fused::LoweringRegistrar kTransformerLMLowering(
    "models::TransformerLM",
    [](const fused::LoweringContext& ctx) {
      const auto& ref = static_cast<const TransformerLM&>(ctx.reference());
      auto m = std::make_shared<FusedTransformerLM>(ctx.array_size, ref.cfg,
                                                    *ctx.rng);
      return fused::Lowered{m, fused::Layout::kAny, fused::Layout::kAny};
    },
    [](const nn::Module& src) -> std::shared_ptr<nn::Module> {
      const auto& ref = static_cast<const TransformerLM&>(src);
      Rng rng(0);
      return nn::Module::cloned(src,
                                std::make_shared<TransformerLM>(ref.cfg, rng));
    });

}  // namespace hfta::models
