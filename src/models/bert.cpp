#include "models/bert.h"

#include "hfta/fusion.h"
#include "tensor/ops.h"

namespace hfta::models {

BertModel::BertModel(const BertConfig& cfg, Rng& rng) : cfg(cfg) {
  tok_embed = register_module(
      "tok_embed", std::make_shared<nn::Embedding>(cfg.vocab, cfg.hidden, rng));
  pos_embed = register_module(
      "pos_embed",
      std::make_shared<nn::Embedding>(cfg.seq_len, cfg.hidden, rng));
  embed_norm = register_module(
      "embed_norm",
      std::make_shared<nn::LayerNorm>(Shape{cfg.hidden}, 1e-5f, rng));
  for (int64_t l = 0; l < cfg.num_layers; ++l)
    layers.push_back(register_module(
        "layer" + std::to_string(l),
        std::make_shared<TransformerEncoderLayer>(cfg.hidden, cfg.num_heads,
                                                  cfg.ff_dim, cfg.dropout_p,
                                                  "gelu", rng)));
  mlm_head = register_module(
      "mlm_head", std::make_shared<nn::Linear>(cfg.hidden, cfg.vocab, true,
                                               rng));
}

ag::Variable BertModel::forward(const ag::Variable&) {
  HFTA_CHECK(false, "BertModel: use forward_tokens(tokens)");
  return ag::Variable();
}

ag::Variable BertModel::forward_tokens(const Tensor& tokens) {
  const int64_t N = tokens.size(0), S = tokens.size(1);
  Tensor positions({N, S});
  for (int64_t n = 0; n < N; ++n)
    for (int64_t s = 0; s < S; ++s)
      positions.at({n, s}) = static_cast<float>(s);
  ag::Variable h = ag::add(tok_embed->lookup(tokens),
                           pos_embed->lookup(positions));  // [N, S, E]
  h = embed_norm->forward(h);
  for (auto& l : layers) h = l->forward(h);  // bidirectional: no mask
  return mlm_head->forward(h);
}

std::shared_ptr<nn::Module> BertModel::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<BertModel>(cfg, rng));
}

nn::ModuleConfig BertModel::config() const {
  nn::ModuleConfig c;
  c.set("vocab", cfg.vocab);
  c.set("hidden", cfg.hidden);
  c.set("num_heads", cfg.num_heads);
  c.set("num_layers", cfg.num_layers);
  c.set("ff_dim", cfg.ff_dim);
  c.set("seq_len", cfg.seq_len);
  c.set("dropout_p", static_cast<double>(cfg.dropout_p));
  return c;
}

// Planner lowering for the whole model (token-driven, so a single unit,
// like models::TransformerLM); load/store derive from the fused model's
// StateMap, which mirrors the per-model child names.
static const fused::LoweringRegistrar kBertModelLowering(
    "models::BertModel", [](const fused::LoweringContext& ctx) {
      const auto& ref = static_cast<const BertModel&>(ctx.reference());
      auto m = std::make_shared<FusedBertModel>(ctx.array_size, ref.cfg,
                                                *ctx.rng);
      return fused::Lowered{m, fused::Layout::kAny, fused::Layout::kAny};
    });

// Hand-fused wrapper (driven through forward_tokens): initializes its fused
// parameters exactly once — the structure-only analogue of the
// planner-compiled wrappers; load_model supplies real weights.
FusedBertModel::FusedBertModel(int64_t B, const BertConfig& cfg, Rng& rng)
    : fused::FusedModule(B), cfg(cfg) {
  tok_embed = register_module(
      "tok_embed",
      std::make_shared<fused::FusedEmbedding>(B, cfg.vocab, cfg.hidden, rng));
  pos_embed = register_module(
      "pos_embed", std::make_shared<fused::FusedEmbedding>(B, cfg.seq_len,
                                                           cfg.hidden, rng));
  embed_norm = register_module(
      "embed_norm", std::make_shared<fused::FusedLayerNorm>(
                        B, Shape{cfg.hidden}, 1e-5f, rng));
  for (int64_t l = 0; l < cfg.num_layers; ++l)
    layers.push_back(register_module(
        "layer" + std::to_string(l),
        std::make_shared<fused::FusedTransformerEncoderLayer>(
            B, cfg.hidden, cfg.num_heads, cfg.ff_dim, cfg.dropout_p, "gelu",
            rng)));
  mlm_head = register_module(
      "mlm_head", std::make_shared<fused::FusedLinear>(B, cfg.hidden,
                                                       cfg.vocab, true, rng));
}

ag::Variable FusedBertModel::forward(const ag::Variable&) {
  HFTA_CHECK(false, "FusedBertModel: use forward_tokens(tokens)");
  return ag::Variable();
}

ag::Variable FusedBertModel::forward_tokens(const Tensor& tokens) {
  HFTA_CHECK(tokens.dim() == 3 && tokens.size(0) == array_size_,
             "FusedBertModel: tokens must be [B, N, S]");
  const int64_t B = array_size_, N = tokens.size(1), S = tokens.size(2);
  Tensor positions({B, N, S});
  for (int64_t i = 0; i < B * N; ++i)
    for (int64_t s = 0; s < S; ++s)
      positions.data()[i * S + s] = static_cast<float>(s);
  ag::Variable h = ag::add(tok_embed->lookup(tokens),
                           pos_embed->lookup(positions));  // [B, N, S, E]
  h = embed_norm->forward(h);
  for (auto& l : layers) h = l->forward(h);
  ag::Variable flat = ag::reshape(h, {B, N * S, cfg.hidden});
  return ag::reshape(mlm_head->forward(flat), {B, N, S, cfg.vocab});
}

void FusedBertModel::load_model(int64_t b, const BertModel& m) {
  fused::load_state(state_map(), array_size_, b, m);
}

void FusedBertModel::store_model(int64_t b, BertModel& m) const {
  fused::store_state(state_map(), array_size_, b, m);
}

}  // namespace hfta::models
