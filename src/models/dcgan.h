// DCGAN (Radford et al., ICLR 2016), following the PyTorch official example
// the paper benchmarks: generator = ConvTranspose2d/BN/ReLU pyramid ending
// in Tanh; discriminator = strided Conv2d/BN/LeakyReLU pyramid ending in a
// single logit. `paper()` is the 64x64 LSUN configuration (nz=100,
// ngf=ndf=64); `tiny()` a 16x16 CPU-trainable reduction.
//
// Each network is defined ONCE as a per-model Sequential graph (`net`); the
// fused variants are produced by the fusion planner (FusionPlan) from B
// per-model graphs — there is no hand-written fused DCGAN.
#pragma once

#include "hfta/fusion.h"
#include "nn/norm.h"

namespace hfta::models {

struct DCGANConfig {
  int64_t image_size = 16;  // must be 2^k, k >= 3
  int64_t nz = 8;           // latent dim
  int64_t ngf = 8;          // generator base width
  int64_t ndf = 8;          // discriminator base width
  int64_t nc = 3;           // image channels

  /// Number of up/down-sampling stages: image 16 -> 2 middle stages.
  int64_t stages() const {
    int64_t s = 0, sz = image_size;
    while (sz > 4) {
      sz /= 2;
      ++s;
    }
    return s;
  }

  static DCGANConfig tiny() { return {}; }
  static DCGANConfig paper() { return {64, 100, 64, 64, 3}; }
};

class DCGANGenerator : public nn::Module {
 public:
  DCGANGenerator(const DCGANConfig& cfg, Rng& rng);
  /// z: [N, nz, 1, 1] -> image [N, nc, S, S] in (-1, 1).
  ag::Variable forward(const ag::Variable& z) override;
  std::shared_ptr<nn::Module> clone() const override;

  std::shared_ptr<nn::Sequential> net;  // the planner-walkable graph
  DCGANConfig cfg;
};

class DCGANDiscriminator : public nn::Module {
 public:
  DCGANDiscriminator(const DCGANConfig& cfg, Rng& rng);
  /// x: [N, nc, S, S] -> logits [N] (BCEWithLogits outside).
  ag::Variable forward(const ag::Variable& x) override;
  std::shared_ptr<nn::Module> clone() const override;

  std::shared_ptr<nn::Sequential> net;
  DCGANConfig cfg;
};

// ---- fused variants --------------------------------------------------------------
//
// Thin wrappers over FusionPlan::compile_structure_only: lower ONE
// per-model template graph into a fused array, keep the (B, cfg, rng) +
// load_model interface (load_model supplies the actual weights).

class FusedDCGANGenerator : public fused::FusedModule {
 public:
  FusedDCGANGenerator(int64_t B, const DCGANConfig& cfg, Rng& rng);
  /// z: [N, B*nz, 1, 1] -> [N, B*nc, S, S].
  ag::Variable forward(const ag::Variable& z) override;
  void load_model(int64_t b, const DCGANGenerator& m);

  std::shared_ptr<fused::FusedArray> array;
  DCGANConfig cfg;
};

class FusedDCGANDiscriminator : public fused::FusedModule {
 public:
  FusedDCGANDiscriminator(int64_t B, const DCGANConfig& cfg, Rng& rng);
  /// x: [N, B*nc, S, S] -> model-major logits [B, N].
  ag::Variable forward(const ag::Variable& x) override;
  void load_model(int64_t b, const DCGANDiscriminator& m);

  std::shared_ptr<fused::FusedArray> array;
  DCGANConfig cfg;
};

}  // namespace hfta::models
