#include "models/mobilenetv3.h"

#include <algorithm>
#include <cmath>

namespace hfta::models {

const std::array<BneckSpec, 15>& mobilenetv3_large_table() {
  // kernel, expand, out, SE, hswish, stride — Howard et al. Table 1.
  static const std::array<BneckSpec, 15> table = {{
      {3, 16, 16, false, false, 1},
      {3, 64, 24, false, false, 2},
      {3, 72, 24, false, false, 1},
      {5, 72, 40, true, false, 2},
      {5, 120, 40, true, false, 1},
      {5, 120, 40, true, false, 1},
      {3, 240, 80, false, true, 2},
      {3, 200, 80, false, true, 1},
      {3, 184, 80, false, true, 1},
      {3, 184, 80, false, true, 1},
      {3, 480, 112, true, true, 1},
      {3, 672, 112, true, true, 1},
      {5, 672, 160, true, true, 2},
      {5, 960, 160, true, true, 1},
      {5, 960, 160, true, true, 1},
  }};
  return table;
}

const std::array<BneckSpec, 17>& mobilenetv2_table() {
  // Sandler et al. Table 2, (t, c, n, s) rows expanded with absolute
  // expansion widths (stem = 32 channels); all blocks ReLU6, no SE.
  static const std::array<BneckSpec, 17> table = {{
      {3, 32, 16, false, false, 1, true},
      {3, 96, 24, false, false, 2, true},
      {3, 144, 24, false, false, 1, true},
      {3, 144, 32, false, false, 2, true},
      {3, 192, 32, false, false, 1, true},
      {3, 192, 32, false, false, 1, true},
      {3, 192, 64, false, false, 2, true},
      {3, 384, 64, false, false, 1, true},
      {3, 384, 64, false, false, 1, true},
      {3, 384, 64, false, false, 1, true},
      {3, 384, 96, false, false, 1, true},
      {3, 576, 96, false, false, 1, true},
      {3, 576, 96, false, false, 1, true},
      {3, 576, 160, false, false, 2, true},
      {3, 960, 160, false, false, 1, true},
      {3, 960, 160, false, false, 1, true},
      {3, 960, 320, false, false, 1, true},
  }};
  return table;
}

std::vector<BneckSpec> MobileNetV3Config::rows() const {
  std::vector<BneckSpec> out;
  if (version == 2) {
    for (int64_t i = 0; i < num_blocks && i < 17; ++i)
      out.push_back(mobilenetv2_table()[static_cast<size_t>(i)]);
  } else {
    for (int64_t i = 0; i < num_blocks && i < 15; ++i)
      out.push_back(mobilenetv3_large_table()[static_cast<size_t>(i)]);
  }
  return out;
}

int64_t MobileNetV3Config::scaled(int64_t c) const {
  // Round to a multiple of 4 with a floor of 4 (divisibility keeps SE and
  // depthwise shapes valid at small widths).
  const int64_t v = static_cast<int64_t>(
      std::round(static_cast<float>(c) * width_mult / 4.f)) * 4;
  return std::max<int64_t>(4, v);
}

SqueezeExcite::SqueezeExcite(int64_t channels, Rng& rng)
    : channels(channels) {
  const int64_t squeeze = std::max<int64_t>(4, channels / 4);
  fc1 = register_module("fc1", std::make_shared<nn::Conv2d>(
                                   channels, squeeze, 1, 1, 0, 1, true, rng));
  fc2 = register_module("fc2", std::make_shared<nn::Conv2d>(
                                   squeeze, channels, 1, 1, 0, 1, true, rng));
}

ag::Variable SqueezeExcite::forward(const ag::Variable& x) {
  ag::Variable s = ag::adaptive_avg_pool2d(x, 1, 1);
  s = ag::relu(fc1->forward(s));
  s = ag::hardsigmoid(fc2->forward(s));
  return ag::mul(x, s);  // broadcast over H, W
}

Bneck::Bneck(int64_t in, const BneckSpec& spec, const MobileNetV3Config& cfg,
             Rng& rng)
    : use_hswish(spec.hswish), use_relu6(spec.relu6), in_channels(in),
      spec(spec), cfg(cfg) {
  const int64_t exp_c = cfg.scaled(spec.expand);
  const int64_t out_c = cfg.scaled(spec.out);
  has_expand = exp_c != in;
  residual = spec.stride == 1 && in == out_c;
  if (has_expand) {
    expand_conv = register_module(
        "expand_conv",
        std::make_shared<nn::Conv2d>(in, exp_c, 1, 1, 0, 1, false, rng));
    expand_bn = register_module("expand_bn",
                                std::make_shared<nn::BatchNorm2d>(exp_c));
  }
  dw_conv = register_module(
      "dw_conv", std::make_shared<nn::Conv2d>(exp_c, exp_c, spec.kernel,
                                              spec.stride, spec.kernel / 2,
                                              /*groups=*/exp_c, false, rng));
  dw_bn = register_module("dw_bn", std::make_shared<nn::BatchNorm2d>(exp_c));
  if (spec.se)
    se = register_module("se", std::make_shared<SqueezeExcite>(exp_c, rng));
  project_conv = register_module(
      "project_conv",
      std::make_shared<nn::Conv2d>(exp_c, out_c, 1, 1, 0, 1, false, rng));
  project_bn = register_module("project_bn",
                               std::make_shared<nn::BatchNorm2d>(out_c));
}

std::shared_ptr<nn::Module> SqueezeExcite::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<SqueezeExcite>(channels, rng));
}

ag::Variable Bneck::forward(const ag::Variable& x) {
  auto act = [this](const ag::Variable& v) {
    if (use_hswish) return ag::hardswish(v);
    return use_relu6 ? ag::relu6(v) : ag::relu(v);
  };
  ag::Variable h = x;
  if (has_expand) h = act(expand_bn->forward(expand_conv->forward(h)));
  h = act(dw_bn->forward(dw_conv->forward(h)));
  if (se) h = se->forward(h);
  h = project_bn->forward(project_conv->forward(h));
  return residual ? ag::add(h, x) : h;
}

std::shared_ptr<nn::Module> Bneck::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<Bneck>(in_channels, spec, cfg, rng));
}

MobileNetV3::MobileNetV3(const MobileNetV3Config& cfg, Rng& rng) : cfg(cfg) {
  const auto table = cfg.rows();
  const int64_t stem_c = cfg.scaled(cfg.stem_channels());
  stem_conv = register_module(
      "stem_conv", std::make_shared<nn::Conv2d>(3, stem_c, 3, 2, 1, 1, false,
                                                rng));
  stem_bn = register_module("stem_bn",
                            std::make_shared<nn::BatchNorm2d>(stem_c));
  int64_t in = stem_c;
  for (size_t i = 0; i < table.size(); ++i) {
    const BneckSpec& spec = table[i];
    bnecks.push_back(register_module("bneck" + std::to_string(i),
                                     std::make_shared<Bneck>(in, spec, cfg,
                                                             rng)));
    in = cfg.scaled(spec.out);
  }
  const int64_t last_c = cfg.scaled(table.back().expand);
  last_conv = register_module(
      "last_conv", std::make_shared<nn::Conv2d>(in, last_c, 1, 1, 0, 1, false,
                                                rng));
  last_bn = register_module("last_bn",
                            std::make_shared<nn::BatchNorm2d>(last_c));
  fc1 = register_module(
      "fc1", std::make_shared<nn::Linear>(last_c, cfg.head_dim, true, rng));
  fc2 = register_module("fc2", std::make_shared<nn::Linear>(
                                   cfg.head_dim, cfg.num_classes, true, rng));
}

ag::Variable MobileNetV3::forward(const ag::Variable& x) {
  ag::Variable h = ag::hardswish(stem_bn->forward(stem_conv->forward(x)));
  for (auto& b : bnecks) h = b->forward(h);
  h = ag::hardswish(last_bn->forward(last_conv->forward(h)));
  h = ag::adaptive_avg_pool2d(h, 1, 1);
  h = ag::reshape(h, {h.size(0), h.size(1)});
  h = ag::hardswish(fc1->forward(h));
  return fc2->forward(h);
}

std::shared_ptr<nn::Module> MobileNetV3::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<MobileNetV3>(cfg, rng));
}

// ---- fused -----------------------------------------------------------------------

FusedSqueezeExcite::FusedSqueezeExcite(int64_t B, int64_t channels, Rng& rng)
    : fused::FusedModule(B) {
  const int64_t squeeze = std::max<int64_t>(4, channels / 4);
  fc1 = register_module("fc1", std::make_shared<fused::FusedConv2d>(
                                   B, channels, squeeze, 1, 1, 0, 1, true,
                                   rng));
  fc2 = register_module("fc2", std::make_shared<fused::FusedConv2d>(
                                   B, squeeze, channels, 1, 1, 0, 1, true,
                                   rng));
}

ag::Variable FusedSqueezeExcite::forward(const ag::Variable& x) {
  ag::Variable s = ag::adaptive_avg_pool2d(x, 1, 1);
  s = ag::relu(fc1->forward(s));
  s = ag::hardsigmoid(fc2->forward(s));
  return ag::mul(x, s);
}

void FusedSqueezeExcite::load_model(int64_t b, const SqueezeExcite& m) {
  fc1->load_model(b, *m.fc1);
  fc2->load_model(b, *m.fc2);
}

FusedBneck::FusedBneck(int64_t B, int64_t in, const BneckSpec& spec,
                       const MobileNetV3Config& cfg, Rng& rng)
    : fused::FusedModule(B), use_hswish(spec.hswish), use_relu6(spec.relu6) {
  const int64_t exp_c = cfg.scaled(spec.expand);
  const int64_t out_c = cfg.scaled(spec.out);
  has_expand = exp_c != in;
  residual = spec.stride == 1 && in == out_c;
  if (has_expand) {
    expand_conv = register_module(
        "expand_conv", std::make_shared<fused::FusedConv2d>(
                           B, in, exp_c, 1, 1, 0, 1, false, rng));
    expand_bn = register_module(
        "expand_bn", std::make_shared<fused::FusedBatchNorm2d>(B, exp_c));
  }
  // Depthwise: per-model groups = exp_c fuse into B*exp_c groups.
  dw_conv = register_module(
      "dw_conv", std::make_shared<fused::FusedConv2d>(
                     B, exp_c, exp_c, spec.kernel, spec.stride,
                     spec.kernel / 2, exp_c, false, rng));
  dw_bn = register_module("dw_bn",
                          std::make_shared<fused::FusedBatchNorm2d>(B, exp_c));
  if (spec.se)
    se = register_module("se",
                         std::make_shared<FusedSqueezeExcite>(B, exp_c, rng));
  project_conv = register_module(
      "project_conv", std::make_shared<fused::FusedConv2d>(
                          B, exp_c, out_c, 1, 1, 0, 1, false, rng));
  project_bn = register_module(
      "project_bn", std::make_shared<fused::FusedBatchNorm2d>(B, out_c));
}

ag::Variable FusedBneck::forward(const ag::Variable& x) {
  auto act = [this](const ag::Variable& v) {
    if (use_hswish) return ag::hardswish(v);
    return use_relu6 ? ag::relu6(v) : ag::relu(v);
  };
  ag::Variable h = x;
  if (has_expand) h = act(expand_bn->forward(expand_conv->forward(h)));
  h = act(dw_bn->forward(dw_conv->forward(h)));
  if (se) h = se->forward(h);
  h = project_bn->forward(project_conv->forward(h));
  return residual ? ag::add(h, x) : h;
}

void FusedBneck::load_model(int64_t b, const Bneck& m) {
  if (has_expand) {
    expand_conv->load_model(b, *m.expand_conv);
    expand_bn->load_model(b, *m.expand_bn);
  }
  dw_conv->load_model(b, *m.dw_conv);
  dw_bn->load_model(b, *m.dw_bn);
  if (se) se->load_model(b, *m.se);
  project_conv->load_model(b, *m.project_conv);
  project_bn->load_model(b, *m.project_bn);
}

FusedMobileNetV3::FusedMobileNetV3(int64_t B, const MobileNetV3Config& cfg,
                                   Rng& rng)
    : fused::FusedModule(B), cfg(cfg) {
  const auto table = cfg.rows();
  const int64_t stem_c = cfg.scaled(cfg.stem_channels());
  stem_conv = register_module(
      "stem_conv", std::make_shared<fused::FusedConv2d>(B, 3, stem_c, 3, 2, 1,
                                                        1, false, rng));
  stem_bn = register_module(
      "stem_bn", std::make_shared<fused::FusedBatchNorm2d>(B, stem_c));
  int64_t in = stem_c;
  for (size_t i = 0; i < table.size(); ++i) {
    const BneckSpec& spec = table[i];
    bnecks.push_back(
        register_module("bneck" + std::to_string(i),
                        std::make_shared<FusedBneck>(B, in, spec, cfg, rng)));
    in = cfg.scaled(spec.out);
  }
  const int64_t last_c = cfg.scaled(table.back().expand);
  last_conv = register_module(
      "last_conv", std::make_shared<fused::FusedConv2d>(B, in, last_c, 1, 1, 0,
                                                        1, false, rng));
  last_bn = register_module(
      "last_bn", std::make_shared<fused::FusedBatchNorm2d>(B, last_c));
  fc1 = register_module("fc1", std::make_shared<fused::FusedLinear>(
                                   B, last_c, cfg.head_dim, true, rng));
  fc2 = register_module("fc2", std::make_shared<fused::FusedLinear>(
                                   B, cfg.head_dim, cfg.num_classes, true,
                                   rng));
}

ag::Variable FusedMobileNetV3::forward(const ag::Variable& x) {
  ag::Variable h = ag::hardswish(stem_bn->forward(stem_conv->forward(x)));
  for (auto& b : bnecks) h = b->forward(h);
  h = ag::hardswish(last_bn->forward(last_conv->forward(h)));
  h = ag::adaptive_avg_pool2d(h, 1, 1);
  h = ag::reshape(h, {h.size(0), h.size(1)});            // [N, B*C]
  h = fused::to_model_major(h, array_size_);              // [B, N, C]
  h = ag::hardswish(fc1->forward(h));
  return fc2->forward(h);                                 // [B, N, classes]
}

void FusedMobileNetV3::load_model(int64_t b, const MobileNetV3& m) {
  stem_conv->load_model(b, *m.stem_conv);
  stem_bn->load_model(b, *m.stem_bn);
  for (size_t i = 0; i < bnecks.size(); ++i)
    bnecks[i]->load_model(b, *m.bnecks[i]);
  last_conv->load_model(b, *m.last_conv);
  last_bn->load_model(b, *m.last_bn);
  fc1->load_model(b, *m.fc1);
  fc2->load_model(b, *m.fc2);
}

}  // namespace hfta::models
