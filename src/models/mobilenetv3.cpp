#include "models/mobilenetv3.h"

#include <algorithm>
#include <cmath>

#include "hfta/fusion.h"

namespace hfta::models {

const std::array<BneckSpec, 15>& mobilenetv3_large_table() {
  // kernel, expand, out, SE, hswish, stride — Howard et al. Table 1.
  static const std::array<BneckSpec, 15> table = {{
      {3, 16, 16, false, false, 1},
      {3, 64, 24, false, false, 2},
      {3, 72, 24, false, false, 1},
      {5, 72, 40, true, false, 2},
      {5, 120, 40, true, false, 1},
      {5, 120, 40, true, false, 1},
      {3, 240, 80, false, true, 2},
      {3, 200, 80, false, true, 1},
      {3, 184, 80, false, true, 1},
      {3, 184, 80, false, true, 1},
      {3, 480, 112, true, true, 1},
      {3, 672, 112, true, true, 1},
      {5, 672, 160, true, true, 2},
      {5, 960, 160, true, true, 1},
      {5, 960, 160, true, true, 1},
  }};
  return table;
}

const std::array<BneckSpec, 17>& mobilenetv2_table() {
  // Sandler et al. Table 2, (t, c, n, s) rows expanded with absolute
  // expansion widths (stem = 32 channels); all blocks ReLU6, no SE.
  static const std::array<BneckSpec, 17> table = {{
      {3, 32, 16, false, false, 1, true},
      {3, 96, 24, false, false, 2, true},
      {3, 144, 24, false, false, 1, true},
      {3, 144, 32, false, false, 2, true},
      {3, 192, 32, false, false, 1, true},
      {3, 192, 32, false, false, 1, true},
      {3, 192, 64, false, false, 2, true},
      {3, 384, 64, false, false, 1, true},
      {3, 384, 64, false, false, 1, true},
      {3, 384, 64, false, false, 1, true},
      {3, 384, 96, false, false, 1, true},
      {3, 576, 96, false, false, 1, true},
      {3, 576, 96, false, false, 1, true},
      {3, 576, 160, false, false, 2, true},
      {3, 960, 160, false, false, 1, true},
      {3, 960, 160, false, false, 1, true},
      {3, 960, 320, false, false, 1, true},
  }};
  return table;
}

std::vector<BneckSpec> MobileNetV3Config::rows() const {
  std::vector<BneckSpec> out;
  if (version == 2) {
    for (int64_t i = 0; i < num_blocks && i < 17; ++i)
      out.push_back(mobilenetv2_table()[static_cast<size_t>(i)]);
  } else {
    for (int64_t i = 0; i < num_blocks && i < 15; ++i)
      out.push_back(mobilenetv3_large_table()[static_cast<size_t>(i)]);
  }
  return out;
}

int64_t MobileNetV3Config::scaled(int64_t c) const {
  // Round to a multiple of 4 with a floor of 4 (divisibility keeps SE and
  // depthwise shapes valid at small widths).
  const int64_t v = static_cast<int64_t>(
      std::round(static_cast<float>(c) * width_mult / 4.f)) * 4;
  return std::max<int64_t>(4, v);
}

SqueezeExcite::SqueezeExcite(int64_t channels, Rng& rng)
    : channels(channels) {
  const int64_t squeeze = std::max<int64_t>(4, channels / 4);
  fc1 = register_module("fc1", std::make_shared<nn::Conv2d>(
                                   channels, squeeze, 1, 1, 0, 1, true, rng));
  fc2 = register_module("fc2", std::make_shared<nn::Conv2d>(
                                   squeeze, channels, 1, 1, 0, 1, true, rng));
}

ag::Variable SqueezeExcite::forward(const ag::Variable& x) {
  ag::Variable s = ag::adaptive_avg_pool2d(x, 1, 1);
  s = ag::relu(fc1->forward(s));
  s = ag::hardsigmoid(fc2->forward(s));
  return ag::mul(x, s);  // broadcast over H, W
}

Bneck::Bneck(int64_t in, const BneckSpec& spec, const MobileNetV3Config& cfg,
             Rng& rng)
    : use_hswish(spec.hswish), use_relu6(spec.relu6), in_channels(in),
      spec(spec), cfg(cfg) {
  const int64_t exp_c = cfg.scaled(spec.expand);
  const int64_t out_c = cfg.scaled(spec.out);
  has_expand = exp_c != in;
  residual = spec.stride == 1 && in == out_c;
  if (has_expand) {
    expand_conv = register_module(
        "expand_conv",
        std::make_shared<nn::Conv2d>(in, exp_c, 1, 1, 0, 1, false, rng));
    expand_bn = register_module("expand_bn",
                                std::make_shared<nn::BatchNorm2d>(exp_c));
  }
  dw_conv = register_module(
      "dw_conv", std::make_shared<nn::Conv2d>(exp_c, exp_c, spec.kernel,
                                              spec.stride, spec.kernel / 2,
                                              /*groups=*/exp_c, false, rng));
  dw_bn = register_module("dw_bn", std::make_shared<nn::BatchNorm2d>(exp_c));
  if (spec.se)
    se = register_module("se", std::make_shared<SqueezeExcite>(exp_c, rng));
  project_conv = register_module(
      "project_conv",
      std::make_shared<nn::Conv2d>(exp_c, out_c, 1, 1, 0, 1, false, rng));
  project_bn = register_module("project_bn",
                               std::make_shared<nn::BatchNorm2d>(out_c));
}

std::shared_ptr<nn::Module> SqueezeExcite::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<SqueezeExcite>(channels, rng));
}

nn::ModuleConfig SqueezeExcite::config() const {
  nn::ModuleConfig c;
  c.set("channels", channels);
  return c;
}

// B congruent SE blocks fuse into one FusedSqueezeExcite on the
// channel-fused layout; load/store derive from its StateMap.
static const fused::LoweringRegistrar kSqueezeExciteLowering(
    "models::SqueezeExcite", [](const fused::LoweringContext& ctx) {
      const auto& ref = static_cast<const SqueezeExcite&>(ctx.reference());
      auto m = std::make_shared<FusedSqueezeExcite>(ctx.array_size,
                                                    ref.channels, *ctx.rng);
      return fused::Lowered{m, fused::Layout::kChannelFused,
                            fused::Layout::kChannelFused};
    });

ag::Variable Bneck::forward(const ag::Variable& x) {
  auto act = [this](const ag::Variable& v) {
    if (use_hswish) return ag::hardswish(v);
    return use_relu6 ? ag::relu6(v) : ag::relu(v);
  };
  ag::Variable h = x;
  if (has_expand) h = act(expand_bn->forward(expand_conv->forward(h)));
  h = act(dw_bn->forward(dw_conv->forward(h)));
  if (se) h = se->forward(h);
  h = project_bn->forward(project_conv->forward(h));
  return residual ? ag::add(h, x) : h;
}

std::shared_ptr<nn::Module> Bneck::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<Bneck>(in_channels, spec, cfg, rng));
}

nn::ModuleConfig Bneck::config() const {
  // Everything that shapes the block's operators: the spec row, the width
  // multiplier that scales it, and the input width it was built for.
  nn::ModuleConfig c;
  c.set("in", in_channels);
  c.set("kernel", spec.kernel);
  c.set("expand", spec.expand);
  c.set("out", spec.out);
  c.set("se", static_cast<int64_t>(spec.se));
  c.set("hswish", static_cast<int64_t>(spec.hswish));
  c.set("relu6", static_cast<int64_t>(spec.relu6));
  c.set("stride", spec.stride);
  c.set("width_mult", static_cast<double>(cfg.width_mult));
  return c;
}

static const fused::LoweringRegistrar kBneckLowering(
    "models::Bneck", [](const fused::LoweringContext& ctx) {
      const auto& ref = static_cast<const Bneck&>(ctx.reference());
      auto m = std::make_shared<FusedBneck>(ctx.array_size, ref.in_channels,
                                            ref.spec, ref.cfg, *ctx.rng);
      return fused::Lowered{m, fused::Layout::kChannelFused,
                            fused::Layout::kChannelFused};
    });

MobileNetV3::MobileNetV3(const MobileNetV3Config& cfg, Rng& rng) : cfg(cfg) {
  const auto table = cfg.rows();
  const int64_t stem_c = cfg.scaled(cfg.stem_channels());
  stem_conv = register_module(
      "stem_conv", std::make_shared<nn::Conv2d>(3, stem_c, 3, 2, 1, 1, false,
                                                rng));
  stem_bn = register_module("stem_bn",
                            std::make_shared<nn::BatchNorm2d>(stem_c));
  int64_t in = stem_c;
  for (size_t i = 0; i < table.size(); ++i) {
    const BneckSpec& spec = table[i];
    bnecks.push_back(register_module("bneck" + std::to_string(i),
                                     std::make_shared<Bneck>(in, spec, cfg,
                                                             rng)));
    in = cfg.scaled(spec.out);
  }
  const int64_t last_c = cfg.scaled(table.back().expand);
  last_conv = register_module(
      "last_conv", std::make_shared<nn::Conv2d>(in, last_c, 1, 1, 0, 1, false,
                                                rng));
  last_bn = register_module("last_bn",
                            std::make_shared<nn::BatchNorm2d>(last_c));
  fc1 = register_module(
      "fc1", std::make_shared<nn::Linear>(last_c, cfg.head_dim, true, rng));
  fc2 = register_module("fc2", std::make_shared<nn::Linear>(
                                   cfg.head_dim, cfg.num_classes, true, rng));
}

ag::Variable MobileNetV3::forward(const ag::Variable& x) {
  ag::Variable h = ag::hardswish(stem_bn->forward(stem_conv->forward(x)));
  for (auto& b : bnecks) h = b->forward(h);
  h = ag::hardswish(last_bn->forward(last_conv->forward(h)));
  h = ag::adaptive_avg_pool2d(h, 1, 1);
  h = ag::reshape(h, {h.size(0), h.size(1)});
  h = ag::hardswish(fc1->forward(h));
  return fc2->forward(h);
}

std::shared_ptr<nn::Module> MobileNetV3::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<MobileNetV3>(cfg, rng));
}

nn::ModuleConfig MobileNetV3::config() const {
  nn::ModuleConfig c;
  c.set("version", cfg.version);
  c.set("num_blocks", cfg.num_blocks);
  c.set("image_size", cfg.image_size);
  c.set("num_classes", cfg.num_classes);
  c.set("head_dim", cfg.head_dim);
  c.set("width_mult", static_cast<double>(cfg.width_mult));
  return c;
}

// The whole model lowers as one unit (like models::TransformerLM): channel-
// fused images in, model-major logits out — the classifier head converts
// internally. This is what lets the HFHT executor compile B MobileNet
// trials straight through FusionPlan::compile.
static const fused::LoweringRegistrar kMobileNetV3Lowering(
    "models::MobileNetV3", [](const fused::LoweringContext& ctx) {
      const auto& ref = static_cast<const MobileNetV3&>(ctx.reference());
      auto m = std::make_shared<FusedMobileNetV3>(ctx.array_size, ref.cfg,
                                                  *ctx.rng);
      return fused::Lowered{m, fused::Layout::kChannelFused,
                            fused::Layout::kModelMajor};
    });

// ---- fused -----------------------------------------------------------------------

FusedSqueezeExcite::FusedSqueezeExcite(int64_t B, int64_t channels, Rng& rng)
    : fused::FusedModule(B) {
  const int64_t squeeze = std::max<int64_t>(4, channels / 4);
  fc1 = register_module("fc1", std::make_shared<fused::FusedConv2d>(
                                   B, channels, squeeze, 1, 1, 0, 1, true,
                                   rng));
  fc2 = register_module("fc2", std::make_shared<fused::FusedConv2d>(
                                   B, squeeze, channels, 1, 1, 0, 1, true,
                                   rng));
}

ag::Variable FusedSqueezeExcite::forward(const ag::Variable& x) {
  ag::Variable s = ag::adaptive_avg_pool2d(x, 1, 1);
  s = ag::relu(fc1->forward(s));
  s = ag::hardsigmoid(fc2->forward(s));
  return ag::mul(x, s);
}

void FusedSqueezeExcite::load_model(int64_t b, const SqueezeExcite& m) {
  fused::load_state(state_map(), array_size_, b, m);
}

void FusedSqueezeExcite::store_model(int64_t b, SqueezeExcite& m) const {
  fused::store_state(state_map(), array_size_, b, m);
}

FusedBneck::FusedBneck(int64_t B, int64_t in, const BneckSpec& spec,
                       const MobileNetV3Config& cfg, Rng& rng)
    : fused::FusedModule(B), use_hswish(spec.hswish), use_relu6(spec.relu6) {
  const int64_t exp_c = cfg.scaled(spec.expand);
  const int64_t out_c = cfg.scaled(spec.out);
  has_expand = exp_c != in;
  residual = spec.stride == 1 && in == out_c;
  if (has_expand) {
    expand_conv = register_module(
        "expand_conv", std::make_shared<fused::FusedConv2d>(
                           B, in, exp_c, 1, 1, 0, 1, false, rng));
    expand_bn = register_module(
        "expand_bn", std::make_shared<fused::FusedBatchNorm2d>(B, exp_c));
  }
  // Depthwise: per-model groups = exp_c fuse into B*exp_c groups.
  dw_conv = register_module(
      "dw_conv", std::make_shared<fused::FusedConv2d>(
                     B, exp_c, exp_c, spec.kernel, spec.stride,
                     spec.kernel / 2, exp_c, false, rng));
  dw_bn = register_module("dw_bn",
                          std::make_shared<fused::FusedBatchNorm2d>(B, exp_c));
  if (spec.se)
    se = register_module("se",
                         std::make_shared<FusedSqueezeExcite>(B, exp_c, rng));
  project_conv = register_module(
      "project_conv", std::make_shared<fused::FusedConv2d>(
                          B, exp_c, out_c, 1, 1, 0, 1, false, rng));
  project_bn = register_module(
      "project_bn", std::make_shared<fused::FusedBatchNorm2d>(B, out_c));
}

ag::Variable FusedBneck::forward(const ag::Variable& x) {
  auto act = [this](const ag::Variable& v) {
    if (use_hswish) return ag::hardswish(v);
    return use_relu6 ? ag::relu6(v) : ag::relu(v);
  };
  ag::Variable h = x;
  if (has_expand) h = act(expand_bn->forward(expand_conv->forward(h)));
  h = act(dw_bn->forward(dw_conv->forward(h)));
  if (se) h = se->forward(h);
  h = project_bn->forward(project_conv->forward(h));
  return residual ? ag::add(h, x) : h;
}

void FusedBneck::load_model(int64_t b, const Bneck& m) {
  fused::load_state(state_map(), array_size_, b, m);
}

void FusedBneck::store_model(int64_t b, Bneck& m) const {
  fused::store_state(state_map(), array_size_, b, m);
}

FusedMobileNetV3::FusedMobileNetV3(int64_t B, const MobileNetV3Config& cfg,
                                   Rng& rng)
    : fused::FusedModule(B), cfg(cfg) {
  const auto table = cfg.rows();
  const int64_t stem_c = cfg.scaled(cfg.stem_channels());
  stem_conv = register_module(
      "stem_conv", std::make_shared<fused::FusedConv2d>(B, 3, stem_c, 3, 2, 1,
                                                        1, false, rng));
  stem_bn = register_module(
      "stem_bn", std::make_shared<fused::FusedBatchNorm2d>(B, stem_c));
  int64_t in = stem_c;
  for (size_t i = 0; i < table.size(); ++i) {
    const BneckSpec& spec = table[i];
    bnecks.push_back(
        register_module("bneck" + std::to_string(i),
                        std::make_shared<FusedBneck>(B, in, spec, cfg, rng)));
    in = cfg.scaled(spec.out);
  }
  const int64_t last_c = cfg.scaled(table.back().expand);
  last_conv = register_module(
      "last_conv", std::make_shared<fused::FusedConv2d>(B, in, last_c, 1, 1, 0,
                                                        1, false, rng));
  last_bn = register_module(
      "last_bn", std::make_shared<fused::FusedBatchNorm2d>(B, last_c));
  fc1 = register_module("fc1", std::make_shared<fused::FusedLinear>(
                                   B, last_c, cfg.head_dim, true, rng));
  fc2 = register_module("fc2", std::make_shared<fused::FusedLinear>(
                                   B, cfg.head_dim, cfg.num_classes, true,
                                   rng));
}

ag::Variable FusedMobileNetV3::forward(const ag::Variable& x) {
  ag::Variable h = ag::hardswish(stem_bn->forward(stem_conv->forward(x)));
  for (auto& b : bnecks) h = b->forward(h);
  h = ag::hardswish(last_bn->forward(last_conv->forward(h)));
  h = ag::adaptive_avg_pool2d(h, 1, 1);
  h = ag::reshape(h, {h.size(0), h.size(1)});            // [N, B*C]
  h = fused::to_model_major(h, array_size_);              // [B, N, C]
  h = ag::hardswish(fc1->forward(h));
  return fc2->forward(h);                                 // [B, N, classes]
}

void FusedMobileNetV3::load_model(int64_t b, const MobileNetV3& m) {
  fused::load_state(state_map(), array_size_, b, m);
}

void FusedMobileNetV3::store_model(int64_t b, MobileNetV3& m) const {
  fused::store_state(state_map(), array_size_, b, m);
}

}  // namespace hfta::models
