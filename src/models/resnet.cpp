#include "models/resnet.h"

namespace hfta::models {

BasicBlock::BasicBlock(int64_t in, int64_t out, int64_t stride, Rng& rng) {
  conv1 = register_module(
      "conv1", std::make_shared<nn::Conv2d>(in, out, 3, stride, 1, 1, false,
                                            rng));
  bn1 = register_module("bn1", std::make_shared<nn::BatchNorm2d>(out));
  conv2 = register_module(
      "conv2", std::make_shared<nn::Conv2d>(out, out, 3, 1, 1, 1, false, rng));
  bn2 = register_module("bn2", std::make_shared<nn::BatchNorm2d>(out));
  if (stride != 1 || in != out) {
    down_conv = register_module(
        "down_conv",
        std::make_shared<nn::Conv2d>(in, out, 1, stride, 0, 1, false, rng));
    down_bn = register_module("down_bn", std::make_shared<nn::BatchNorm2d>(out));
  }
}

ag::Variable BasicBlock::forward(const ag::Variable& x) {
  ag::Variable h = ag::relu(bn1->forward(conv1->forward(x)));
  h = bn2->forward(conv2->forward(h));
  ag::Variable skip = down_conv ? down_bn->forward(down_conv->forward(x)) : x;
  return ag::relu(ag::add(h, skip));
}

nn::ModuleConfig BasicBlock::config() const {
  nn::ModuleConfig c;
  c.set("in", conv1->weight.size(1));
  c.set("out", conv1->weight.size(0));
  c.set("stride", conv1->args.stride_h);
  return c;
}

// The planner lowering for a residual block (B congruent BasicBlocks become
// one FusedBasicBlock on the channel-fused layout) plus the clone factory
// Module::clone() falls back to when a block runs unfused. Load AND store
// are derived from the fused block's StateMap (its child names mirror the
// per-model block's), so the old "no store support" gap is gone by
// construction.
static const fused::LoweringRegistrar kBasicBlockLowering(
    "models::BasicBlock",
    [](const fused::LoweringContext& ctx) {
      const nn::ModuleConfig c = ctx.reference().config();
      auto m = std::make_shared<FusedBasicBlock>(
          ctx.array_size, c.get_int("in"), c.get_int("out"),
          c.get_int("stride"), *ctx.rng);
      return fused::Lowered{m, fused::Layout::kChannelFused,
                            fused::Layout::kChannelFused};
    },
    [](const nn::Module& src) -> std::shared_ptr<nn::Module> {
      const nn::ModuleConfig c = src.config();
      Rng rng(0);
      return nn::Module::cloned(
          src, std::make_shared<BasicBlock>(c.get_int("in"), c.get_int("out"),
                                            c.get_int("stride"), rng));
    });

ResNet18::ResNet18(const ResNetConfig& cfg, Rng& rng) : cfg(cfg) {
  net = register_module("net", std::make_shared<nn::Sequential>());
  stem_conv = std::make_shared<nn::Conv2d>(cfg.in_channels, cfg.stage_width(0),
                                           3, 1, 1, 1, false, rng);
  stem_bn = std::make_shared<nn::BatchNorm2d>(cfg.stage_width(0));
  auto stem = std::make_shared<nn::Sequential>();
  stem->push_back("conv", stem_conv);
  stem->push_back("bn", stem_bn);
  stem->push_back("relu", std::make_shared<nn::ReLU>());
  net->push_back("stem", stem);

  int64_t in = cfg.stage_width(0);
  for (int64_t s = 0; s < 4; ++s) {
    const int64_t out = cfg.stage_width(s);
    for (int64_t i = 0; i < 2; ++i) {
      const int64_t stride = (i == 0 && s > 0) ? 2 : 1;
      blocks.push_back(std::make_shared<BasicBlock>(in, out, stride, rng));
      net->push_back("layer" + std::to_string(s) + "_" + std::to_string(i),
                     blocks.back());
      in = out;
    }
  }
  net->push_back("pool", std::make_shared<nn::AdaptiveAvgPool2d>(1, 1));
  net->push_back("flatten", std::make_shared<nn::Flatten>());
  fc = std::make_shared<nn::Linear>(cfg.stage_width(3), cfg.num_classes, true,
                                    rng);
  net->push_back("fc", fc);
}

ag::Variable ResNet18::forward(const ag::Variable& x) {
  return net->forward(x);
}

std::shared_ptr<nn::Module> ResNet18::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<ResNet18>(cfg, rng));
}

// ---- fused -----------------------------------------------------------------------

FusedBasicBlock::FusedBasicBlock(int64_t B, int64_t in, int64_t out,
                                 int64_t stride, Rng& rng)
    : fused::FusedModule(B) {
  conv1 = register_module(
      "conv1", std::make_shared<fused::FusedConv2d>(B, in, out, 3, stride, 1,
                                                    1, false, rng));
  bn1 = register_module("bn1",
                        std::make_shared<fused::FusedBatchNorm2d>(B, out));
  conv2 = register_module(
      "conv2", std::make_shared<fused::FusedConv2d>(B, out, out, 3, 1, 1, 1,
                                                    false, rng));
  bn2 = register_module("bn2",
                        std::make_shared<fused::FusedBatchNorm2d>(B, out));
  if (stride != 1 || in != out) {
    down_conv = register_module(
        "down_conv", std::make_shared<fused::FusedConv2d>(B, in, out, 1,
                                                          stride, 0, 1, false,
                                                          rng));
    down_bn = register_module(
        "down_bn", std::make_shared<fused::FusedBatchNorm2d>(B, out));
  }
}

ag::Variable FusedBasicBlock::forward(const ag::Variable& x) {
  ag::Variable h = ag::relu(bn1->forward(conv1->forward(x)));
  h = bn2->forward(conv2->forward(h));
  ag::Variable skip = down_conv ? down_bn->forward(down_conv->forward(x)) : x;
  return ag::relu(ag::add(h, skip));
}

void FusedBasicBlock::load_model(int64_t b, const BasicBlock& m) {
  fused::load_state(state_map(), array_size_, b, m);
}

void FusedBasicBlock::store_model(int64_t b, BasicBlock& m) const {
  fused::store_state(state_map(), array_size_, b, m);
}

ResNetFusionMask ResNetFusionMask::partially_unfused(int64_t n) {
  ResNetFusionMask m;
  int64_t left = n;
  if (left-- > 0) m.head = false;
  for (int64_t i = 7; i >= 0 && left > 0; --i, --left)
    m.block[static_cast<size_t>(i)] = false;
  if (left > 0) m.stem = false;
  return m;
}

int64_t ResNetFusionMask::fused_units() const {
  int64_t n = stem + head;
  for (bool b : block) n += b;
  return n;
}

std::vector<bool> ResNetFusionMask::to_fuse_mask() const {
  std::vector<bool> mask;
  mask.push_back(stem);
  for (bool b : block) mask.push_back(b);
  mask.push_back(true);  // pool
  mask.push_back(true);  // flatten
  mask.push_back(head);
  return mask;
}

FusedResNet18::FusedResNet18(int64_t B, const ResNetConfig& cfg, Rng& rng,
                             ResNetFusionMask mask)
    : fused::FusedModule(B), cfg(cfg), mask(mask) {
  // ONE structural template instead of B donor models: the fused units
  // random-init once through the lowering registry, and callers load real
  // weights via load_model — so construction no longer pays B donor inits
  // plus a full copy of every donor into the array.
  const ResNet18 template_model(cfg, rng);
  fused::FusionOptions opts;
  opts.fuse_mask = mask.to_fuse_mask();
  opts.output_layout = fused::Layout::kModelMajor;
  array = register_module("array", fused::FusionPlan(B, opts)
                                       .compile_structure_only(
                                           template_model.net, rng));
}

ag::Variable FusedResNet18::forward(const ag::Variable& x) {
  return array->forward(x);  // [B, N, classes]
}

void FusedResNet18::load_model(int64_t b, const ResNet18& m) {
  array->load_model(b, *m.net);
}

}  // namespace hfta::models
