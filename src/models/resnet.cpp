#include "models/resnet.h"

namespace hfta::models {

namespace {

// Copies parameter values from src into dst (same architecture required);
// used to initialize unfused replicas from a plain model.
void copy_parameters(const nn::Module& src, nn::Module& dst) {
  auto s = src.named_parameters();
  auto d = dst.named_parameters();
  HFTA_CHECK(s.size() == d.size(), "copy_parameters: structure mismatch");
  for (size_t i = 0; i < s.size(); ++i) {
    HFTA_CHECK(s[i].second.numel() == d[i].second.numel(),
               "copy_parameters: shape mismatch at ", s[i].first);
    d[i].second.mutable_value().copy_(s[i].second.value());
  }
}

// Stem replica for the unfused-stem configuration.
class Stem : public nn::Module {
 public:
  Stem(int64_t in, int64_t out, Rng& rng) {
    conv = register_module(
        "conv", std::make_shared<nn::Conv2d>(in, out, 3, 1, 1, 1, false, rng));
    bn = register_module("bn", std::make_shared<nn::BatchNorm2d>(out));
  }
  ag::Variable forward(const ag::Variable& x) override {
    return ag::relu(bn->forward(conv->forward(x)));
  }
  std::shared_ptr<nn::Conv2d> conv;
  std::shared_ptr<nn::BatchNorm2d> bn;
};

}  // namespace

BasicBlock::BasicBlock(int64_t in, int64_t out, int64_t stride, Rng& rng) {
  conv1 = register_module(
      "conv1", std::make_shared<nn::Conv2d>(in, out, 3, stride, 1, 1, false,
                                            rng));
  bn1 = register_module("bn1", std::make_shared<nn::BatchNorm2d>(out));
  conv2 = register_module(
      "conv2", std::make_shared<nn::Conv2d>(out, out, 3, 1, 1, 1, false, rng));
  bn2 = register_module("bn2", std::make_shared<nn::BatchNorm2d>(out));
  if (stride != 1 || in != out) {
    down_conv = register_module(
        "down_conv",
        std::make_shared<nn::Conv2d>(in, out, 1, stride, 0, 1, false, rng));
    down_bn = register_module("down_bn", std::make_shared<nn::BatchNorm2d>(out));
  }
}

ag::Variable BasicBlock::forward(const ag::Variable& x) {
  ag::Variable h = ag::relu(bn1->forward(conv1->forward(x)));
  h = bn2->forward(conv2->forward(h));
  ag::Variable skip = down_conv ? down_bn->forward(down_conv->forward(x)) : x;
  return ag::relu(ag::add(h, skip));
}

ResNet18::ResNet18(const ResNetConfig& cfg, Rng& rng) : cfg(cfg) {
  stem_conv = register_module(
      "stem_conv", std::make_shared<nn::Conv2d>(cfg.in_channels,
                                                cfg.stage_width(0), 3, 1, 1, 1,
                                                false, rng));
  stem_bn = register_module(
      "stem_bn", std::make_shared<nn::BatchNorm2d>(cfg.stage_width(0)));
  int64_t in = cfg.stage_width(0);
  for (int64_t s = 0; s < 4; ++s) {
    const int64_t out = cfg.stage_width(s);
    for (int64_t i = 0; i < 2; ++i) {
      const int64_t stride = (i == 0 && s > 0) ? 2 : 1;
      blocks.push_back(register_module(
          "layer" + std::to_string(s) + "_" + std::to_string(i),
          std::make_shared<BasicBlock>(in, out, stride, rng)));
      in = out;
    }
  }
  fc = register_module("fc", std::make_shared<nn::Linear>(
                                 cfg.stage_width(3), cfg.num_classes, true,
                                 rng));
}

ag::Variable ResNet18::forward(const ag::Variable& x) {
  ag::Variable h = ag::relu(stem_bn->forward(stem_conv->forward(x)));
  for (auto& b : blocks) h = b->forward(h);
  h = ag::adaptive_avg_pool2d(h, 1, 1);
  h = ag::reshape(h, {h.size(0), h.size(1)});
  return fc->forward(h);
}

// ---- fused -----------------------------------------------------------------------

FusedBasicBlock::FusedBasicBlock(int64_t B, int64_t in, int64_t out,
                                 int64_t stride, Rng& rng)
    : fused::FusedModule(B) {
  conv1 = register_module(
      "conv1", std::make_shared<fused::FusedConv2d>(B, in, out, 3, stride, 1,
                                                    1, false, rng));
  bn1 = register_module("bn1",
                        std::make_shared<fused::FusedBatchNorm2d>(B, out));
  conv2 = register_module(
      "conv2", std::make_shared<fused::FusedConv2d>(B, out, out, 3, 1, 1, 1,
                                                    false, rng));
  bn2 = register_module("bn2",
                        std::make_shared<fused::FusedBatchNorm2d>(B, out));
  if (stride != 1 || in != out) {
    down_conv = register_module(
        "down_conv", std::make_shared<fused::FusedConv2d>(B, in, out, 1,
                                                          stride, 0, 1, false,
                                                          rng));
    down_bn = register_module(
        "down_bn", std::make_shared<fused::FusedBatchNorm2d>(B, out));
  }
}

ag::Variable FusedBasicBlock::forward(const ag::Variable& x) {
  ag::Variable h = ag::relu(bn1->forward(conv1->forward(x)));
  h = bn2->forward(conv2->forward(h));
  ag::Variable skip = down_conv ? down_bn->forward(down_conv->forward(x)) : x;
  return ag::relu(ag::add(h, skip));
}

void FusedBasicBlock::load_model(int64_t b, const BasicBlock& m) {
  conv1->load_model(b, *m.conv1);
  bn1->load_model(b, *m.bn1);
  conv2->load_model(b, *m.conv2);
  bn2->load_model(b, *m.bn2);
  if (down_conv) {
    down_conv->load_model(b, *m.down_conv);
    down_bn->load_model(b, *m.down_bn);
  }
}

ResNetFusionMask ResNetFusionMask::partially_unfused(int64_t n) {
  ResNetFusionMask m;
  int64_t left = n;
  if (left-- > 0) m.head = false;
  for (int64_t i = 7; i >= 0 && left > 0; --i, --left)
    m.block[static_cast<size_t>(i)] = false;
  if (left > 0) m.stem = false;
  return m;
}

int64_t ResNetFusionMask::fused_units() const {
  int64_t n = stem + head;
  for (bool b : block) n += b;
  return n;
}

FusedResNet18::FusedResNet18(int64_t B, const ResNetConfig& cfg, Rng& rng,
                             ResNetFusionMask mask)
    : fused::FusedModule(B), cfg(cfg), mask(mask) {
  // stem
  if (mask.stem) {
    stem_conv = register_module(
        "stem_conv",
        std::make_shared<fused::FusedConv2d>(B, cfg.in_channels,
                                             cfg.stage_width(0), 3, 1, 1, 1,
                                             false, rng));
    stem_bn = register_module(
        "stem_bn",
        std::make_shared<fused::FusedBatchNorm2d>(B, cfg.stage_width(0)));
  } else {
    std::vector<std::shared_ptr<nn::Module>> reps;
    for (int64_t b = 0; b < B; ++b)
      reps.push_back(
          std::make_shared<Stem>(cfg.in_channels, cfg.stage_width(0), rng));
    stem_adapter = register_module(
        "stem_adapter", std::make_shared<fused::UnfusedBlockAdapter>(B, reps));
  }
  // blocks
  int64_t in = cfg.stage_width(0);
  block_adapters.resize(8);
  for (int64_t s = 0; s < 4; ++s) {
    const int64_t out = cfg.stage_width(s);
    for (int64_t i = 0; i < 2; ++i) {
      const int64_t stride = (i == 0 && s > 0) ? 2 : 1;
      const size_t idx = static_cast<size_t>(s * 2 + i);
      const std::string name = "block" + std::to_string(idx);
      if (mask.block[idx]) {
        blocks.push_back(register_module(
            name, std::make_shared<FusedBasicBlock>(B, in, out, stride, rng)));
      } else {
        blocks.push_back(nullptr);
        std::vector<std::shared_ptr<nn::Module>> reps;
        for (int64_t b = 0; b < B; ++b)
          reps.push_back(std::make_shared<BasicBlock>(in, out, stride, rng));
        block_adapters[idx] = register_module(
            name + "_adapter",
            std::make_shared<fused::UnfusedBlockAdapter>(B, reps));
      }
      in = out;
    }
  }
  // head
  if (mask.head) {
    fc = register_module(
        "fc", std::make_shared<fused::FusedLinear>(B, cfg.stage_width(3),
                                                   cfg.num_classes, true, rng));
  } else {
    std::vector<std::shared_ptr<nn::Module>> reps;
    for (int64_t b = 0; b < B; ++b)
      reps.push_back(std::make_shared<nn::Linear>(cfg.stage_width(3),
                                                  cfg.num_classes, true, rng));
    head_adapter = register_module(
        "head_adapter", std::make_shared<fused::UnfusedBlockAdapter>(B, reps));
  }
}

ag::Variable FusedResNet18::forward(const ag::Variable& x) {
  ag::Variable h;
  if (stem_conv) {
    h = ag::relu(stem_bn->forward(stem_conv->forward(x)));
  } else {
    h = stem_adapter->forward(x);
  }
  for (size_t i = 0; i < 8; ++i) {
    h = blocks[i] ? blocks[i]->forward(h) : block_adapters[i]->forward(h);
  }
  h = ag::adaptive_avg_pool2d(h, 1, 1);
  h = ag::reshape(h, {h.size(0), h.size(1)});  // [N, B*F]
  if (fc) {
    return fc->forward(fused::to_model_major(h, array_size_));  // [B,N,k]
  }
  ag::Variable logits = head_adapter->forward(h);  // [N, B*k]
  return fused::to_model_major(logits, array_size_);
}

void FusedResNet18::load_model(int64_t b, const ResNet18& m) {
  if (stem_conv) {
    stem_conv->load_model(b, *m.stem_conv);
    stem_bn->load_model(b, *m.stem_bn);
  } else {
    auto stem = std::static_pointer_cast<Stem>(stem_adapter->replicas()[b]);
    copy_parameters(*m.stem_conv, *stem->conv);
    copy_parameters(*m.stem_bn, *stem->bn);
  }
  for (size_t i = 0; i < 8; ++i) {
    if (blocks[i]) {
      blocks[i]->load_model(b, *m.blocks[i]);
    } else {
      copy_parameters(*m.blocks[i], *block_adapters[i]->replicas()[b]);
    }
  }
  if (fc) {
    fc->load_model(b, *m.fc);
  } else {
    copy_parameters(*m.fc, *head_adapter->replicas()[b]);
  }
}

}  // namespace hfta::models
