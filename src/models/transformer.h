// Transformer language model (Vaswani et al. 2017) following the PyTorch
// word-LM example the paper benchmarks: token embedding + sinusoidal
// positions, a post-norm encoder stack with a causal mask, and a linear
// decoder. The paper's variant: 2 layers, 2 heads, hidden 128 (BERT-Tiny
// sized), WikiText-2, batch = seq = 32.
#pragma once

#include "hfta/fused_attention.h"
#include "hfta/fusion.h"
#include "nn/norm.h"

namespace hfta::models {

/// Plain (unfused) multi-head self-attention over [N, S, E].
class MultiheadAttention : public nn::Module {
 public:
  MultiheadAttention(int64_t embed_dim, int64_t num_heads, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  ag::Variable forward_masked(const ag::Variable& x, const Tensor& mask);

  std::shared_ptr<nn::Linear> in_proj;   // E -> 3E
  std::shared_ptr<nn::Linear> out_proj;  // E -> E
  int64_t embed_dim, num_heads, head_dim;
};

/// Plain post-norm encoder layer (same op order as the fused one).
/// Registers the custom lowering "models::TransformerEncoderLayer": a
/// model-major planner step, so stacks of encoder layers fuse automatically.
class TransformerEncoderLayer : public nn::Module {
 public:
  TransformerEncoderLayer(int64_t embed_dim, int64_t num_heads, int64_t ff_dim,
                          float dropout_p, const std::string& activation,
                          Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  ag::Variable forward_masked(const ag::Variable& x, const Tensor& mask);
  std::string kind_name() const override {
    return "models::TransformerEncoderLayer";
  }
  nn::ModuleConfig config() const override;

  std::shared_ptr<MultiheadAttention> self_attn;
  std::shared_ptr<nn::Linear> linear1, linear2;
  std::shared_ptr<nn::LayerNorm> norm1, norm2;
  std::shared_ptr<nn::Dropout> drop;
  bool use_gelu;
};

struct TransformerConfig {
  int64_t vocab = 50;
  int64_t embed_dim = 16;
  int64_t num_heads = 2;
  int64_t num_layers = 2;
  int64_t ff_dim = 32;
  int64_t seq_len = 16;
  float dropout_p = 0.f;

  static TransformerConfig tiny() { return {}; }
  /// Paper §H.1: 2 encoder layers, 2 heads, hidden 128, seq 32.
  static TransformerConfig paper() {
    return {33278, 128, 2, 2, 128, 32, 0.2f};
  }
};

/// Sinusoidal positional table [S, E].
Tensor sinusoidal_positions(int64_t seq_len, int64_t embed_dim);
/// Causal attention mask [S, S]: 0 on/below diagonal, -1e9 above.
Tensor causal_mask(int64_t seq_len);

/// Registers the custom lowering "models::TransformerLM", so B per-model
/// LMs compile to a single-step FusedArray holding a FusedTransformerLM
/// (token input makes the LM a unit, not a chain).
class TransformerLM : public nn::Module {
 public:
  TransformerLM(const TransformerConfig& cfg, Rng& rng);
  ag::Variable forward(const ag::Variable&) override;
  /// tokens: [N, S] integer ids -> logits [N, S, V].
  ag::Variable forward_tokens(const Tensor& tokens);
  std::string kind_name() const override { return "models::TransformerLM"; }
  nn::ModuleConfig config() const override;

  std::shared_ptr<nn::Embedding> embed;
  std::vector<std::shared_ptr<TransformerEncoderLayer>> layers;
  std::shared_ptr<nn::Linear> decoder;
  TransformerConfig cfg;
};

class FusedTransformerLM : public fused::FusedModule {
 public:
  FusedTransformerLM(int64_t B, const TransformerConfig& cfg, Rng& rng);
  ag::Variable forward(const ag::Variable&) override;
  /// tokens: [B, N, S] -> logits [B, N, S, V].
  ag::Variable forward_tokens(const Tensor& tokens);
  void load_model(int64_t b, const TransformerLM& m);
  void store_model(int64_t b, TransformerLM& m) const;

  std::shared_ptr<fused::FusedEmbedding> embed;
  std::vector<std::shared_ptr<fused::FusedTransformerEncoderLayer>> layers;
  std::shared_ptr<fused::FusedLinear> decoder;
  TransformerConfig cfg;
};

}  // namespace hfta::models
