// PointNet (Qi et al., CVPR 2017) — classification and part-segmentation
// variants, following the third-party PyTorch implementation the paper uses
// (fxia22/pointnet.pytorch): Conv1d(1x1) feature extractor with BatchNorm1d,
// global max pooling, optional input spatial-transformer (STN), MLP heads.
//
// Plain and HFTA-fused builders share a PointNetConfig; `paper()` holds the
// published shapes (2500 points, 1024-d global feature, ShapeNet's 16
// classes / 50 part labels), `tiny()` a CPU-trainable reduction.
#pragma once

#include "hfta/fused_norm.h"
#include "hfta/fusion.h"
#include "nn/layers.h"
#include "nn/norm.h"

namespace hfta::models {

struct PointNetConfig {
  int64_t num_points = 64;
  int64_t w1 = 16, w2 = 32, w3 = 64;  // conv widths (global feature = w3)
  int64_t fc1 = 32, fc2 = 16;         // classifier MLP widths
  int64_t num_classes = 4;            // classification classes
  int64_t num_parts = 6;              // segmentation labels
  bool input_transform = false;       // STN on the 3-d input
  float dropout_p = 0.f;              // dropout before the last FC (cls)

  static PointNetConfig tiny() { return {}; }
  static PointNetConfig paper() {
    return {2500, 64, 128, 1024, 512, 256, 16, 50, true, 0.3f};
  }
};

/// Input spatial transformer: predicts a CxC alignment matrix per cloud.
class STN : public nn::Module {
 public:
  STN(int64_t channels, const PointNetConfig& cfg, Rng& rng);
  /// x: [N, C, L] -> transform [N, C, C] (identity-initialized).
  ag::Variable forward(const ag::Variable& x) override;

  std::shared_ptr<nn::Conv1d> conv1, conv2;
  std::shared_ptr<nn::BatchNorm1d> bn1, bn2;
  std::shared_ptr<nn::Linear> fc1, fc2;
  int64_t channels;
};

/// Shared trunk: 1x1 Conv1d stack -> per-point features + global feature.
/// Registers the custom lowering "models::PointNetTrunk" so the planner can
/// fuse any model built on it.
class PointNetTrunk : public nn::Module {
 public:
  PointNetTrunk(const PointNetConfig& cfg, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;  // global feature
  /// Returns {pointfeat [N, w1, L], global [N, w3]}.
  std::pair<ag::Variable, ag::Variable> forward_both(const ag::Variable& x);
  std::string kind_name() const override { return "models::PointNetTrunk"; }
  nn::ModuleConfig config() const override;

  std::shared_ptr<STN> stn;  // may be null
  std::shared_ptr<nn::Conv1d> conv1, conv2, conv3;
  std::shared_ptr<nn::BatchNorm1d> bn1, bn2, bn3;
  PointNetConfig cfg;
};

/// Classification head: logits over num_classes. Defined once as a
/// per-model Sequential (`net`); the fused variant is planner-compiled.
class PointNetCls : public nn::Module {
 public:
  PointNetCls(const PointNetConfig& cfg, Rng& rng);
  /// x: [N, 3, L] -> [N, num_classes].
  ag::Variable forward(const ag::Variable& x) override;
  std::shared_ptr<nn::Module> clone() const override;

  std::shared_ptr<nn::Sequential> net;  // the planner-walkable graph
  std::shared_ptr<PointNetTrunk> trunk;
  std::shared_ptr<nn::Linear> fc1, fc2, fc3;
  std::shared_ptr<nn::BatchNorm1d> bn1, bn2;
  std::shared_ptr<nn::Dropout> drop;
  PointNetConfig cfg;
};

/// Part-segmentation head: per-point logits.
class PointNetSeg : public nn::Module {
 public:
  PointNetSeg(const PointNetConfig& cfg, Rng& rng);
  /// x: [N, 3, L] -> [N, num_parts, L].
  ag::Variable forward(const ag::Variable& x) override;

  std::shared_ptr<PointNetTrunk> trunk;
  std::shared_ptr<nn::Conv1d> conv1, conv2, conv3;
  std::shared_ptr<nn::BatchNorm1d> bn1, bn2;
  PointNetConfig cfg;
};

// ---- fused variants ------------------------------------------------------------

class FusedSTN : public fused::FusedModule {
 public:
  FusedSTN(int64_t B, int64_t channels, const PointNetConfig& cfg, Rng& rng);
  /// x: [N, B*C, L] -> transforms [B, N, C, C].
  ag::Variable forward(const ag::Variable& x) override;
  void load_model(int64_t b, const STN& m);
  void store_model(int64_t b, STN& m) const;

  std::shared_ptr<fused::FusedConv1d> conv1, conv2;
  std::shared_ptr<fused::FusedBatchNorm1d> bn1, bn2;
  std::shared_ptr<fused::FusedLinear> fc1, fc2;
  int64_t channels;
};

class FusedPointNetTrunk : public fused::FusedModule {
 public:
  FusedPointNetTrunk(int64_t B, const PointNetConfig& cfg, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  /// x: [N, B*3, L] -> {pointfeat [N, B*w1, L], global [N, B*w3]}.
  std::pair<ag::Variable, ag::Variable> forward_both(const ag::Variable& x);
  void load_model(int64_t b, const PointNetTrunk& m);
  void store_model(int64_t b, PointNetTrunk& m) const;

  std::shared_ptr<FusedSTN> stn;
  std::shared_ptr<fused::FusedConv1d> conv1, conv2, conv3;
  std::shared_ptr<fused::FusedBatchNorm1d> bn1, bn2, bn3;
  PointNetConfig cfg;
};

/// Thin wrapper over FusionPlan::compile_structure_only on one per-model
/// PointNetCls template graph; load_model supplies the actual weights.
class FusedPointNetCls : public fused::FusedModule {
 public:
  FusedPointNetCls(int64_t B, const PointNetConfig& cfg, Rng& rng);
  /// x: [N, B*3, L] -> model-major logits [B, N, num_classes].
  ag::Variable forward(const ag::Variable& x) override;
  void load_model(int64_t b, const PointNetCls& m);

  std::shared_ptr<fused::FusedArray> array;
  PointNetConfig cfg;
};

class FusedPointNetSeg : public fused::FusedModule {
 public:
  FusedPointNetSeg(int64_t B, const PointNetConfig& cfg, Rng& rng);
  /// x: [N, B*3, L] -> [N, B*num_parts, L] (channel-fused per-point logits).
  ag::Variable forward(const ag::Variable& x) override;
  void load_model(int64_t b, const PointNetSeg& m);

  std::shared_ptr<FusedPointNetTrunk> trunk;
  std::shared_ptr<fused::FusedConv1d> conv1, conv2, conv3;
  std::shared_ptr<fused::FusedBatchNorm1d> bn1, bn2;
  PointNetConfig cfg;
};

}  // namespace hfta::models
