#include "models/pointnet.h"

#include "tensor/ops.h"

namespace hfta::models {

namespace {
// Flattened identity matrix, used to initialize STN outputs near identity.
Tensor flat_identity(int64_t C) {
  Tensor t({C * C});
  for (int64_t i = 0; i < C; ++i) t.data()[i * C + i] = 1.f;
  return t;
}
}  // namespace

// ---- STN ----------------------------------------------------------------------

STN::STN(int64_t channels, const PointNetConfig& cfg, Rng& rng)
    : channels(channels) {
  conv1 = register_module("conv1", std::make_shared<nn::Conv1d>(
                                       channels, cfg.w1, 1, 1, 0, 1, true, rng));
  conv2 = register_module("conv2", std::make_shared<nn::Conv1d>(
                                       cfg.w1, cfg.w2, 1, 1, 0, 1, true, rng));
  bn1 = register_module("bn1", std::make_shared<nn::BatchNorm1d>(cfg.w1));
  bn2 = register_module("bn2", std::make_shared<nn::BatchNorm1d>(cfg.w2));
  fc1 = register_module("fc1",
                        std::make_shared<nn::Linear>(cfg.w2, cfg.fc1, true, rng));
  fc2 = register_module(
      "fc2", std::make_shared<nn::Linear>(cfg.fc1, channels * channels, true,
                                          rng));
}

ag::Variable STN::forward(const ag::Variable& x) {
  const int64_t N = x.size(0);
  ag::Variable h = ag::relu(bn1->forward(conv1->forward(x)));
  h = ag::relu(bn2->forward(conv2->forward(h)));
  ag::Variable g = ag::global_max_pool1d(h);  // [N, w2]
  h = ag::relu(fc1->forward(g));
  h = fc2->forward(h);  // [N, C*C]
  ag::Variable iden =
      ag::constant(ops::stack_repeat(flat_identity(channels), N));
  return ag::reshape(ag::add(h, iden), {N, channels, channels});
}

// ---- trunk ---------------------------------------------------------------------

PointNetTrunk::PointNetTrunk(const PointNetConfig& cfg, Rng& rng) : cfg(cfg) {
  if (cfg.input_transform)
    stn = register_module("stn", std::make_shared<STN>(3, cfg, rng));
  conv1 = register_module(
      "conv1", std::make_shared<nn::Conv1d>(3, cfg.w1, 1, 1, 0, 1, true, rng));
  conv2 = register_module("conv2", std::make_shared<nn::Conv1d>(
                                       cfg.w1, cfg.w2, 1, 1, 0, 1, true, rng));
  conv3 = register_module("conv3", std::make_shared<nn::Conv1d>(
                                       cfg.w2, cfg.w3, 1, 1, 0, 1, true, rng));
  bn1 = register_module("bn1", std::make_shared<nn::BatchNorm1d>(cfg.w1));
  bn2 = register_module("bn2", std::make_shared<nn::BatchNorm1d>(cfg.w2));
  bn3 = register_module("bn3", std::make_shared<nn::BatchNorm1d>(cfg.w3));
}

std::pair<ag::Variable, ag::Variable> PointNetTrunk::forward_both(
    const ag::Variable& x) {
  ag::Variable h = x;
  if (stn) {
    // x' = T^T x, computed as (x^T T)^T — matches pointnet.pytorch.
    ag::Variable t = stn->forward(x);                      // [N, 3, 3]
    ag::Variable xt = ag::transpose(x, 1, 2);              // [N, L, 3]
    h = ag::transpose(ag::bmm(xt, t), 1, 2);               // [N, 3, L]
  }
  ag::Variable pointfeat = ag::relu(bn1->forward(conv1->forward(h)));
  h = ag::relu(bn2->forward(conv2->forward(pointfeat)));
  h = bn3->forward(conv3->forward(h));
  ag::Variable global = ag::global_max_pool1d(h);  // [N, w3]
  return {pointfeat, global};
}

ag::Variable PointNetTrunk::forward(const ag::Variable& x) {
  return forward_both(x).second;
}

nn::ModuleConfig PointNetTrunk::config() const {
  nn::ModuleConfig c;
  c.set("w1", cfg.w1);
  c.set("w2", cfg.w2);
  c.set("w3", cfg.w3);
  c.set("fc1", cfg.fc1);
  c.set("input_transform", static_cast<int64_t>(cfg.input_transform));
  return c;
}

// The planner lowering for the trunk (B congruent trunks become one
// FusedPointNetTrunk on the channel-fused layout) plus the clone factory
// Module::clone() falls back to when the trunk runs unfused. State transfer
// needs no per-kind code: the fused trunk's child names mirror the
// per-model trunk's, so the planner derives load/store from its StateMap.
static const fused::LoweringRegistrar kTrunkLowering(
    "models::PointNetTrunk",
    [](const fused::LoweringContext& ctx) {
      const auto& ref = static_cast<const PointNetTrunk&>(ctx.reference());
      auto m = std::make_shared<FusedPointNetTrunk>(ctx.array_size, ref.cfg,
                                                    *ctx.rng);
      return fused::Lowered{m, fused::Layout::kChannelFused,
                            fused::Layout::kChannelFused};
    },
    [](const nn::Module& src) -> std::shared_ptr<nn::Module> {
      const auto& ref = static_cast<const PointNetTrunk&>(src);
      Rng rng(0);
      return nn::Module::cloned(src,
                                std::make_shared<PointNetTrunk>(ref.cfg, rng));
    });

// ---- classification head ----------------------------------------------------------

PointNetCls::PointNetCls(const PointNetConfig& cfg, Rng& rng) : cfg(cfg) {
  net = register_module("net", std::make_shared<nn::Sequential>());
  trunk = std::make_shared<PointNetTrunk>(cfg, rng);
  fc1 = std::make_shared<nn::Linear>(cfg.w3, cfg.fc1, true, rng);
  fc2 = std::make_shared<nn::Linear>(cfg.fc1, cfg.fc2, true, rng);
  fc3 = std::make_shared<nn::Linear>(cfg.fc2, cfg.num_classes, true, rng);
  bn1 = std::make_shared<nn::BatchNorm1d>(cfg.fc1);
  bn2 = std::make_shared<nn::BatchNorm1d>(cfg.fc2);
  drop = std::make_shared<nn::Dropout>(cfg.dropout_p);
  net->push_back("trunk", trunk);
  net->push_back("fc1", fc1);
  net->push_back("bn1", bn1);
  net->push_back("relu1", std::make_shared<nn::ReLU>());
  net->push_back("fc2", fc2);
  net->push_back("bn2", bn2);
  net->push_back("relu2", std::make_shared<nn::ReLU>());
  net->push_back("drop", drop);
  net->push_back("fc3", fc3);
}

ag::Variable PointNetCls::forward(const ag::Variable& x) {
  return net->forward(x);  // [N, classes]
}

std::shared_ptr<nn::Module> PointNetCls::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<PointNetCls>(cfg, rng));
}

// ---- segmentation head ----------------------------------------------------------------

PointNetSeg::PointNetSeg(const PointNetConfig& cfg, Rng& rng) : cfg(cfg) {
  trunk = register_module("trunk", std::make_shared<PointNetTrunk>(cfg, rng));
  conv1 = register_module(
      "conv1", std::make_shared<nn::Conv1d>(cfg.w1 + cfg.w3, cfg.w2, 1, 1, 0,
                                            1, true, rng));
  conv2 = register_module("conv2", std::make_shared<nn::Conv1d>(
                                       cfg.w2, cfg.w1, 1, 1, 0, 1, true, rng));
  conv3 = register_module(
      "conv3", std::make_shared<nn::Conv1d>(cfg.w1, cfg.num_parts, 1, 1, 0, 1,
                                            true, rng));
  bn1 = register_module("bn1", std::make_shared<nn::BatchNorm1d>(cfg.w2));
  bn2 = register_module("bn2", std::make_shared<nn::BatchNorm1d>(cfg.w1));
}

ag::Variable PointNetSeg::forward(const ag::Variable& x) {
  const int64_t L = x.size(2);
  auto [pointfeat, global] = trunk->forward_both(x);
  // Broadcast the global feature along the point dimension and concat.
  ag::Variable g3 = ag::reshape(global, {global.size(0), global.size(1), 1});
  ag::Variable gexp = ag::mul(g3, ag::constant(Tensor::ones({1, 1, L})));
  ag::Variable h = ag::concat({pointfeat, gexp}, 1);  // [N, w1+w3, L]
  h = ag::relu(bn1->forward(conv1->forward(h)));
  h = ag::relu(bn2->forward(conv2->forward(h)));
  return conv3->forward(h);  // [N, parts, L]
}

// ---- fused STN -----------------------------------------------------------------------

FusedSTN::FusedSTN(int64_t B, int64_t channels, const PointNetConfig& cfg,
                   Rng& rng)
    : fused::FusedModule(B), channels(channels) {
  conv1 = register_module("conv1", std::make_shared<fused::FusedConv1d>(
                                       B, channels, cfg.w1, 1, 1, 0, 1, true,
                                       rng));
  conv2 = register_module("conv2", std::make_shared<fused::FusedConv1d>(
                                       B, cfg.w1, cfg.w2, 1, 1, 0, 1, true,
                                       rng));
  bn1 = register_module("bn1",
                        std::make_shared<fused::FusedBatchNorm1d>(B, cfg.w1));
  bn2 = register_module("bn2",
                        std::make_shared<fused::FusedBatchNorm1d>(B, cfg.w2));
  fc1 = register_module(
      "fc1", std::make_shared<fused::FusedLinear>(B, cfg.w2, cfg.fc1, true,
                                                  rng));
  fc2 = register_module(
      "fc2", std::make_shared<fused::FusedLinear>(B, cfg.fc1,
                                                  channels * channels, true,
                                                  rng));
}

ag::Variable FusedSTN::forward(const ag::Variable& x) {
  const int64_t N = x.size(0);
  ag::Variable h = ag::relu(bn1->forward(conv1->forward(x)));
  h = ag::relu(bn2->forward(conv2->forward(h)));
  ag::Variable g = ag::global_max_pool1d(h);              // [N, B*w2]
  ag::Variable mm = fused::to_model_major(g, array_size_);  // [B, N, w2]
  h = ag::relu(fc1->forward(mm));
  h = fc2->forward(h);  // [B, N, C*C]
  Tensor iden = ops::stack_repeat(
      ops::stack_repeat(flat_identity(channels), N), array_size_);
  return ag::reshape(ag::add(h, ag::constant(iden)),
                     {array_size_, N, channels, channels});
}

void FusedSTN::load_model(int64_t b, const STN& m) {
  fused::load_state(state_map(), array_size_, b, m);
}

void FusedSTN::store_model(int64_t b, STN& m) const {
  fused::store_state(state_map(), array_size_, b, m);
}

// ---- fused trunk ------------------------------------------------------------------------

FusedPointNetTrunk::FusedPointNetTrunk(int64_t B, const PointNetConfig& cfg,
                                       Rng& rng)
    : fused::FusedModule(B), cfg(cfg) {
  if (cfg.input_transform)
    stn = register_module("stn", std::make_shared<FusedSTN>(B, 3, cfg, rng));
  conv1 = register_module("conv1", std::make_shared<fused::FusedConv1d>(
                                       B, 3, cfg.w1, 1, 1, 0, 1, true, rng));
  conv2 = register_module("conv2", std::make_shared<fused::FusedConv1d>(
                                       B, cfg.w1, cfg.w2, 1, 1, 0, 1, true,
                                       rng));
  conv3 = register_module("conv3", std::make_shared<fused::FusedConv1d>(
                                       B, cfg.w2, cfg.w3, 1, 1, 0, 1, true,
                                       rng));
  bn1 = register_module("bn1",
                        std::make_shared<fused::FusedBatchNorm1d>(B, cfg.w1));
  bn2 = register_module("bn2",
                        std::make_shared<fused::FusedBatchNorm1d>(B, cfg.w2));
  bn3 = register_module("bn3",
                        std::make_shared<fused::FusedBatchNorm1d>(B, cfg.w3));
}

std::pair<ag::Variable, ag::Variable> FusedPointNetTrunk::forward_both(
    const ag::Variable& x) {
  const int64_t B = array_size_;
  const int64_t N = x.size(0);
  const int64_t L = x.size(2);
  ag::Variable h = x;
  if (stn) {
    ag::Variable t = stn->forward(x);  // [B, N, 3, 3]
    ag::Variable xm = fused::to_model_major(x, B);          // [B, N, 3, L]
    ag::Variable xf = ag::reshape(xm, {B * N, 3, L});
    ag::Variable tf = ag::reshape(t, {B * N, 3, 3});
    ag::Variable xt = ag::transpose(xf, 1, 2);              // [B*N, L, 3]
    ag::Variable y = ag::transpose(ag::bmm(xt, tf), 1, 2);  // [B*N, 3, L]
    h = fused::to_channel_fused(ag::reshape(y, {B, N, 3, L}));
  }
  ag::Variable pointfeat = ag::relu(bn1->forward(conv1->forward(h)));
  h = ag::relu(bn2->forward(conv2->forward(pointfeat)));
  h = bn3->forward(conv3->forward(h));
  ag::Variable global = ag::global_max_pool1d(h);  // [N, B*w3]
  return {pointfeat, global};
}

ag::Variable FusedPointNetTrunk::forward(const ag::Variable& x) {
  return forward_both(x).second;
}

void FusedPointNetTrunk::load_model(int64_t b, const PointNetTrunk& m) {
  fused::load_state(state_map(), array_size_, b, m);
}

void FusedPointNetTrunk::store_model(int64_t b, PointNetTrunk& m) const {
  fused::store_state(state_map(), array_size_, b, m);
}

// ---- fused classification --------------------------------------------------------------------

FusedPointNetCls::FusedPointNetCls(int64_t B, const PointNetConfig& cfg,
                                   Rng& rng)
    : fused::FusedModule(B), cfg(cfg) {
  // ONE structural template instead of B donors; load_model supplies the
  // actual weights (see FusionPlan::compile_structure_only).
  const PointNetCls template_model(cfg, rng);
  fused::FusionOptions opts;
  opts.output_layout = fused::Layout::kModelMajor;
  array = register_module("array",
                          fused::FusionPlan(B, opts).compile_structure_only(
                              template_model.net, rng));
}

ag::Variable FusedPointNetCls::forward(const ag::Variable& x) {
  return array->forward(x);  // [B, N, classes]
}

void FusedPointNetCls::load_model(int64_t b, const PointNetCls& m) {
  array->load_model(b, *m.net);
}

// ---- fused segmentation ------------------------------------------------------------------------

FusedPointNetSeg::FusedPointNetSeg(int64_t B, const PointNetConfig& cfg,
                                   Rng& rng)
    : fused::FusedModule(B), cfg(cfg) {
  trunk = register_module("trunk",
                          std::make_shared<FusedPointNetTrunk>(B, cfg, rng));
  conv1 = register_module(
      "conv1", std::make_shared<fused::FusedConv1d>(
                   B, cfg.w1 + cfg.w3, cfg.w2, 1, 1, 0, 1, true, rng));
  conv2 = register_module("conv2", std::make_shared<fused::FusedConv1d>(
                                       B, cfg.w2, cfg.w1, 1, 1, 0, 1, true,
                                       rng));
  conv3 = register_module(
      "conv3", std::make_shared<fused::FusedConv1d>(
                   B, cfg.w1, cfg.num_parts, 1, 1, 0, 1, true, rng));
  bn1 = register_module("bn1",
                        std::make_shared<fused::FusedBatchNorm1d>(B, cfg.w2));
  bn2 = register_module("bn2",
                        std::make_shared<fused::FusedBatchNorm1d>(B, cfg.w1));
}

ag::Variable FusedPointNetSeg::forward(const ag::Variable& x) {
  const int64_t B = array_size_;
  const int64_t L = x.size(2);
  auto [pointfeat, global] = trunk->forward_both(x);
  // Broadcast global along points, then interleave per model so that each
  // model's (w1 + w3) channels stay contiguous for the grouped conv.
  ag::Variable g3 = ag::reshape(global, {global.size(0), global.size(1), 1});
  ag::Variable gexp = ag::mul(g3, ag::constant(Tensor::ones({1, 1, L})));
  ag::Variable pf_mm = fused::to_model_major(pointfeat, B);  // [B,N,w1,L]
  ag::Variable g_mm = fused::to_model_major(gexp, B);        // [B,N,w3,L]
  ag::Variable h = fused::to_channel_fused(ag::concat({pf_mm, g_mm}, 2));
  h = ag::relu(bn1->forward(conv1->forward(h)));
  h = ag::relu(bn2->forward(conv2->forward(h)));
  return conv3->forward(h);  // [N, B*parts, L]
}

void FusedPointNetSeg::load_model(int64_t b, const PointNetSeg& m) {
  fused::load_state(state_map(), array_size_, b, m);
}

}  // namespace hfta::models
