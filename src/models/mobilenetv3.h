// MobileNetV3-Large (Howard et al., ICCV 2019): inverted-residual bnecks
// with depthwise convolutions, squeeze-excite, and hard-swish. Depthwise
// convs are the most demanding fusion case (per-model groups = C fuse into
// B*C groups). SE is implemented with 1x1 convolutions so that the fused
// model stays on the channel-fused layout end-to-end.
#pragma once

#include <array>
#include <vector>

#include "hfta/fused_norm.h"
#include "hfta/fused_ops.h"
#include "nn/norm.h"

namespace hfta::models {

/// One bneck row of a MobileNet table (V3-Large or V2).
struct BneckSpec {
  int64_t kernel;
  int64_t expand;
  int64_t out;
  bool se;
  bool hswish;   // false -> ReLU (or ReLU6, below)
  int64_t stride;
  bool relu6 = false;  // MobileNetV2 blocks use ReLU6
};

struct MobileNetV3Config {
  float width_mult = 1.f;
  int64_t num_blocks = 15;     // use the first n table rows
  int64_t image_size = 32;
  int64_t num_classes = 10;
  int64_t head_dim = 1280;     // classifier hidden width (scaled by width)
  // 3 = MobileNetV3-Large, 2 = MobileNetV2 — the infusible "version"
  // hyper-parameter of the paper's HFHT search space (Table 12).
  int64_t version = 3;

  static MobileNetV3Config tiny() {
    return {0.25f, 4, 16, 10, 64, 3};
  }
  static MobileNetV3Config tiny_v2() { return {0.25f, 4, 16, 10, 64, 2}; }
  static MobileNetV3Config paper() { return {1.f, 15, 32, 10, 1280, 3}; }
  static MobileNetV3Config paper_v2() { return {1.f, 17, 32, 10, 1280, 2}; }

  int64_t scaled(int64_t c) const;
  /// The selected version's bneck rows, truncated to num_blocks.
  std::vector<BneckSpec> rows() const;
  /// Stem width: 16 for V3-Large, 32 for V2 (before width scaling).
  int64_t stem_channels() const { return version == 2 ? 32 : 16; }
};

/// The published 15-row MobileNetV3-Large bneck table.
const std::array<BneckSpec, 15>& mobilenetv3_large_table();
/// The published MobileNetV2 inverted-residual rows (t,c,n,s expanded to 17
/// absolute-width entries).
const std::array<BneckSpec, 17>& mobilenetv2_table();

class SqueezeExcite : public nn::Module {
 public:
  SqueezeExcite(int64_t channels, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  std::shared_ptr<nn::Module> clone() const override;
  std::string kind_name() const override { return "models::SqueezeExcite"; }
  nn::ModuleConfig config() const override;
  std::shared_ptr<nn::Conv2d> fc1, fc2;  // 1x1 convs
  int64_t channels;
};

class Bneck : public nn::Module {
 public:
  Bneck(int64_t in, const BneckSpec& spec, const MobileNetV3Config& cfg,
        Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  std::shared_ptr<nn::Module> clone() const override;
  std::string kind_name() const override { return "models::Bneck"; }
  nn::ModuleConfig config() const override;

  std::shared_ptr<nn::Conv2d> expand_conv, dw_conv, project_conv;
  std::shared_ptr<nn::BatchNorm2d> expand_bn, dw_bn, project_bn;
  std::shared_ptr<SqueezeExcite> se;
  bool use_hswish, use_relu6, has_expand, residual;
  int64_t in_channels;   // clone() reconstructs from these
  BneckSpec spec;
  MobileNetV3Config cfg;
};

class MobileNetV3 : public nn::Module {
 public:
  MobileNetV3(const MobileNetV3Config& cfg, Rng& rng);
  /// x: [N, 3, S, S] -> [N, num_classes].
  ag::Variable forward(const ag::Variable& x) override;
  std::shared_ptr<nn::Module> clone() const override;
  std::string kind_name() const override { return "models::MobileNetV3"; }
  nn::ModuleConfig config() const override;

  std::shared_ptr<nn::Conv2d> stem_conv, last_conv;
  std::shared_ptr<nn::BatchNorm2d> stem_bn, last_bn;
  std::vector<std::shared_ptr<Bneck>> bnecks;
  std::shared_ptr<nn::Linear> fc1, fc2;
  MobileNetV3Config cfg;
};

// ---- fused -------------------------------------------------------------------

class FusedSqueezeExcite : public fused::FusedModule {
 public:
  FusedSqueezeExcite(int64_t B, int64_t channels, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  void load_model(int64_t b, const SqueezeExcite& m);
  void store_model(int64_t b, SqueezeExcite& m) const;
  std::shared_ptr<fused::FusedConv2d> fc1, fc2;
};

class FusedBneck : public fused::FusedModule {
 public:
  FusedBneck(int64_t B, int64_t in, const BneckSpec& spec,
             const MobileNetV3Config& cfg, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  void load_model(int64_t b, const Bneck& m);
  void store_model(int64_t b, Bneck& m) const;

  std::shared_ptr<fused::FusedConv2d> expand_conv, dw_conv, project_conv;
  std::shared_ptr<fused::FusedBatchNorm2d> expand_bn, dw_bn, project_bn;
  std::shared_ptr<FusedSqueezeExcite> se;
  bool use_hswish, use_relu6, has_expand, residual;
};

class FusedMobileNetV3 : public fused::FusedModule {
 public:
  FusedMobileNetV3(int64_t B, const MobileNetV3Config& cfg, Rng& rng);
  /// x: [N, B*3, S, S] -> model-major logits [B, N, classes].
  ag::Variable forward(const ag::Variable& x) override;
  void load_model(int64_t b, const MobileNetV3& m);
  void store_model(int64_t b, MobileNetV3& m) const;

  std::shared_ptr<fused::FusedConv2d> stem_conv, last_conv;
  std::shared_ptr<fused::FusedBatchNorm2d> stem_bn, last_bn;
  std::vector<std::shared_ptr<FusedBneck>> bnecks;
  std::shared_ptr<fused::FusedLinear> fc1, fc2;
  MobileNetV3Config cfg;
};

}  // namespace hfta::models
