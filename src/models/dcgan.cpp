#include "models/dcgan.h"

#include "nn/layers.h"

namespace hfta::models {

// Channel width of the generator/discriminator at pyramid level `l`
// (level 0 = widest, adjacent to the 4x4 spatial extent).
static int64_t level_width(int64_t base, int64_t stages, int64_t l) {
  return base << (stages - 1 - l);
}

DCGANGenerator::DCGANGenerator(const DCGANConfig& cfg, Rng& rng) : cfg(cfg) {
  net = register_module("net", std::make_shared<nn::Sequential>());
  const int64_t S = cfg.stages();
  // Stage 0: nz -> width(0) at 4x4 (kernel 4, stride 1, pad 0).
  int64_t prev = cfg.nz;
  for (int64_t l = 0; l < S; ++l) {
    const int64_t w = level_width(cfg.ngf, S, l);
    net->push_back("deconv" + std::to_string(l),
                   std::make_shared<nn::ConvTranspose2d>(
                       prev, w, 4, l == 0 ? 1 : 2, l == 0 ? 0 : 1, 0, 1,
                       false, rng));
    net->push_back("bn" + std::to_string(l), std::make_shared<nn::BatchNorm2d>(w));
    net->push_back("relu" + std::to_string(l), std::make_shared<nn::ReLU>());
    prev = w;
  }
  net->push_back("deconv_out",
                 std::make_shared<nn::ConvTranspose2d>(prev, cfg.nc, 4, 2, 1,
                                                       0, 1, false, rng));
  net->push_back("tanh", std::make_shared<nn::Tanh>());
}

ag::Variable DCGANGenerator::forward(const ag::Variable& z) {
  return net->forward(z);
}

DCGANDiscriminator::DCGANDiscriminator(const DCGANConfig& cfg, Rng& rng)
    : cfg(cfg) {
  net = register_module("net", std::make_shared<nn::Sequential>());
  const int64_t S = cfg.stages();
  int64_t prev = cfg.nc;
  for (int64_t l = S - 1; l >= 0; --l) {
    const int64_t w = level_width(cfg.ndf, S, l);
    const std::string idx = std::to_string(S - 1 - l);
    net->push_back("conv" + idx,
                   std::make_shared<nn::Conv2d>(prev, w, 4, 2, 1, 1, false,
                                                rng));
    if (l != S - 1)  // first conv has no BN (as in the reference code)
      net->push_back("bn" + idx, std::make_shared<nn::BatchNorm2d>(w));
    net->push_back("lrelu" + idx, std::make_shared<nn::LeakyReLU>(0.2f));
    prev = w;
  }
  net->push_back("conv_out",
                 std::make_shared<nn::Conv2d>(prev, 1, 4, 1, 0, 1, false,
                                              rng));
  net->push_back("flatten", std::make_shared<nn::Flatten>());
}

ag::Variable DCGANDiscriminator::forward(const ag::Variable& x) {
  ag::Variable logit = net->forward(x);  // [N, 1]
  return ag::reshape(logit, {logit.size(0)});
}

std::shared_ptr<nn::Module> DCGANGenerator::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<DCGANGenerator>(cfg, rng));
}

std::shared_ptr<nn::Module> DCGANDiscriminator::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<DCGANDiscriminator>(cfg, rng));
}

// ---- fused (planner-compiled) ------------------------------------------------
//
// Structure-only compiles from ONE per-model template: the fused units
// random-init through the lowering registry, and callers provide the actual
// weights via load_model (no B donor constructions, no donor copy pass).

FusedDCGANGenerator::FusedDCGANGenerator(int64_t B, const DCGANConfig& cfg,
                                         Rng& rng)
    : fused::FusedModule(B), cfg(cfg) {
  const DCGANGenerator template_model(cfg, rng);
  array = register_module(
      "array",
      fused::FusionPlan(B).compile_structure_only(template_model.net, rng));
}

ag::Variable FusedDCGANGenerator::forward(const ag::Variable& z) {
  return array->forward(z);
}

void FusedDCGANGenerator::load_model(int64_t b, const DCGANGenerator& m) {
  array->load_model(b, *m.net);
}

FusedDCGANDiscriminator::FusedDCGANDiscriminator(int64_t B,
                                                 const DCGANConfig& cfg,
                                                 Rng& rng)
    : fused::FusedModule(B), cfg(cfg) {
  const DCGANDiscriminator template_model(cfg, rng);
  fused::FusionOptions opts;
  opts.output_layout = fused::Layout::kModelMajor;
  array = register_module(
      "array", fused::FusionPlan(B, opts).compile_structure_only(
                   template_model.net, rng));
}

ag::Variable FusedDCGANDiscriminator::forward(const ag::Variable& x) {
  ag::Variable logit = array->forward(x);  // [B, N, 1]
  return ag::reshape(logit, {logit.size(0), logit.size(1)});
}

void FusedDCGANDiscriminator::load_model(int64_t b,
                                         const DCGANDiscriminator& m) {
  array->load_model(b, *m.net);
}

}  // namespace hfta::models
