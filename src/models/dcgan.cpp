#include "models/dcgan.h"

namespace hfta::models {

// Channel width of the generator/discriminator at pyramid level `l`
// (level 0 = widest, adjacent to the 4x4 spatial extent).
static int64_t level_width(int64_t base, int64_t stages, int64_t l) {
  return base << (stages - 1 - l);
}

DCGANGenerator::DCGANGenerator(const DCGANConfig& cfg, Rng& rng) : cfg(cfg) {
  const int64_t S = cfg.stages();
  // Stage 0: nz -> width(0) at 4x4 (kernel 4, stride 1, pad 0).
  int64_t prev = cfg.nz;
  for (int64_t l = 0; l < S; ++l) {
    const int64_t w = level_width(cfg.ngf, S, l);
    deconvs.push_back(register_module(
        "deconv" + std::to_string(l),
        std::make_shared<nn::ConvTranspose2d>(prev, w, 4, l == 0 ? 1 : 2,
                                              l == 0 ? 0 : 1, 0, 1, false,
                                              rng)));
    bns.push_back(register_module("bn" + std::to_string(l),
                                  std::make_shared<nn::BatchNorm2d>(w)));
    prev = w;
  }
  deconvs.push_back(register_module(
      "deconv_out", std::make_shared<nn::ConvTranspose2d>(prev, cfg.nc, 4, 2,
                                                          1, 0, 1, false, rng)));
}

ag::Variable DCGANGenerator::forward(const ag::Variable& z) {
  ag::Variable h = z;
  for (size_t l = 0; l < bns.size(); ++l)
    h = ag::relu(bns[l]->forward(deconvs[l]->forward(h)));
  return ag::tanh(deconvs.back()->forward(h));
}

DCGANDiscriminator::DCGANDiscriminator(const DCGANConfig& cfg, Rng& rng)
    : cfg(cfg) {
  const int64_t S = cfg.stages();
  int64_t prev = cfg.nc;
  for (int64_t l = S - 1; l >= 0; --l) {
    const int64_t w = level_width(cfg.ndf, S, l);
    convs.push_back(register_module(
        "conv" + std::to_string(S - 1 - l),
        std::make_shared<nn::Conv2d>(prev, w, 4, 2, 1, 1, false, rng)));
    if (l != S - 1)  // first conv has no BN (as in the reference code)
      bns.push_back(register_module("bn" + std::to_string(S - 1 - l),
                                    std::make_shared<nn::BatchNorm2d>(w)));
    prev = w;
  }
  convs.push_back(register_module(
      "conv_out",
      std::make_shared<nn::Conv2d>(prev, 1, 4, 1, 0, 1, false, rng)));
}

ag::Variable DCGANDiscriminator::forward(const ag::Variable& x) {
  ag::Variable h = ag::leaky_relu(convs[0]->forward(x), 0.2f);
  for (size_t l = 1; l + 1 < convs.size(); ++l)
    h = ag::leaky_relu(bns[l - 1]->forward(convs[l]->forward(h)), 0.2f);
  ag::Variable logit = convs.back()->forward(h);  // [N, 1, 1, 1]
  return ag::reshape(logit, {logit.size(0)});
}

// ---- fused --------------------------------------------------------------------

FusedDCGANGenerator::FusedDCGANGenerator(int64_t B, const DCGANConfig& cfg,
                                         Rng& rng)
    : fused::FusedModule(B), cfg(cfg) {
  const int64_t S = cfg.stages();
  int64_t prev = cfg.nz;
  for (int64_t l = 0; l < S; ++l) {
    const int64_t w = level_width(cfg.ngf, S, l);
    deconvs.push_back(register_module(
        "deconv" + std::to_string(l),
        std::make_shared<fused::FusedConvTranspose2d>(
            B, prev, w, 4, l == 0 ? 1 : 2, l == 0 ? 0 : 1, 0, 1, false, rng)));
    bns.push_back(
        register_module("bn" + std::to_string(l),
                        std::make_shared<fused::FusedBatchNorm2d>(B, w)));
    prev = w;
  }
  deconvs.push_back(register_module(
      "deconv_out", std::make_shared<fused::FusedConvTranspose2d>(
                        B, prev, cfg.nc, 4, 2, 1, 0, 1, false, rng)));
}

ag::Variable FusedDCGANGenerator::forward(const ag::Variable& z) {
  ag::Variable h = z;
  for (size_t l = 0; l < bns.size(); ++l)
    h = ag::relu(bns[l]->forward(deconvs[l]->forward(h)));
  return ag::tanh(deconvs.back()->forward(h));
}

void FusedDCGANGenerator::load_model(int64_t b, const DCGANGenerator& m) {
  for (size_t l = 0; l < deconvs.size(); ++l)
    deconvs[l]->load_model(b, *m.deconvs[l]);
  for (size_t l = 0; l < bns.size(); ++l) bns[l]->load_model(b, *m.bns[l]);
}

FusedDCGANDiscriminator::FusedDCGANDiscriminator(int64_t B,
                                                 const DCGANConfig& cfg,
                                                 Rng& rng)
    : fused::FusedModule(B), cfg(cfg) {
  const int64_t S = cfg.stages();
  int64_t prev = cfg.nc;
  for (int64_t l = S - 1; l >= 0; --l) {
    const int64_t w = level_width(cfg.ndf, S, l);
    convs.push_back(register_module(
        "conv" + std::to_string(S - 1 - l),
        std::make_shared<fused::FusedConv2d>(B, prev, w, 4, 2, 1, 1, false,
                                             rng)));
    if (l != S - 1)
      bns.push_back(
          register_module("bn" + std::to_string(S - 1 - l),
                          std::make_shared<fused::FusedBatchNorm2d>(B, w)));
    prev = w;
  }
  convs.push_back(register_module(
      "conv_out",
      std::make_shared<fused::FusedConv2d>(B, prev, 1, 4, 1, 0, 1, false,
                                           rng)));
}

ag::Variable FusedDCGANDiscriminator::forward(const ag::Variable& x) {
  ag::Variable h = ag::leaky_relu(convs[0]->forward(x), 0.2f);
  for (size_t l = 1; l + 1 < convs.size(); ++l)
    h = ag::leaky_relu(bns[l - 1]->forward(convs[l]->forward(h)), 0.2f);
  ag::Variable logit = convs.back()->forward(h);  // [N, B*1, 1, 1]
  const int64_t N = logit.size(0);
  // -> model-major [B, N]
  ag::Variable mm = fused::to_model_major(
      ag::reshape(logit, {N, array_size_}), array_size_);  // [B, N, 1]? no:
  return ag::reshape(mm, {array_size_, N});
}

void FusedDCGANDiscriminator::load_model(int64_t b,
                                         const DCGANDiscriminator& m) {
  for (size_t l = 0; l < convs.size(); ++l) convs[l]->load_model(b, *m.convs[l]);
  for (size_t l = 0; l < bns.size(); ++l) bns[l]->load_model(b, *m.bns[l]);
}

}  // namespace hfta::models
