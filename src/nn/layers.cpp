#include "nn/layers.h"

#include "autograd/step_program.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace hfta::nn {

Linear::Linear(int64_t in, int64_t out, bool has_bias, Rng& rng)
    : in_features(in), out_features(out) {
  weight = register_parameter(
      "weight", init::kaiming_uniform({out, in}, in, rng));
  if (has_bias)
    bias = register_parameter("bias", init::kaiming_uniform({out}, in, rng));
}

ag::Variable Linear::forward(const ag::Variable& x) {
  return ag::linear(x, weight, bias);
}

Conv2d::Conv2d(int64_t in, int64_t out, int64_t kernel, int64_t stride,
               int64_t pad, int64_t groups, bool has_bias, Rng& rng)
    : args(ops::ConvArgs::make(stride, pad, groups)) {
  const int64_t fan_in = (in / groups) * kernel * kernel;
  weight = register_parameter(
      "weight",
      init::kaiming_uniform({out, in / groups, kernel, kernel}, fan_in, rng));
  if (has_bias)
    bias = register_parameter("bias",
                              init::kaiming_uniform({out}, fan_in, rng));
}

ag::Variable Conv2d::forward(const ag::Variable& x) {
  return ag::conv2d(x, weight, bias, args);
}

Conv1d::Conv1d(int64_t in, int64_t out, int64_t kernel, int64_t stride,
               int64_t pad, int64_t groups, bool has_bias, Rng& rng)
    : stride(stride), pad(pad), groups(groups) {
  const int64_t fan_in = (in / groups) * kernel;
  weight = register_parameter(
      "weight", init::kaiming_uniform({out, in / groups, kernel}, fan_in, rng));
  if (has_bias)
    bias = register_parameter("bias",
                              init::kaiming_uniform({out}, fan_in, rng));
}

ag::Variable Conv1d::forward(const ag::Variable& x) {
  return ag::conv1d(x, weight, bias, stride, pad, groups);
}

ConvTranspose2d::ConvTranspose2d(int64_t in, int64_t out, int64_t kernel,
                                 int64_t stride, int64_t pad, int64_t out_pad,
                                 int64_t groups, bool has_bias, Rng& rng)
    : args{stride, pad, out_pad, groups} {
  const int64_t fan_in = (out / groups) * kernel * kernel;
  weight = register_parameter(
      "weight",
      init::kaiming_uniform({in, out / groups, kernel, kernel}, fan_in, rng));
  if (has_bias)
    bias = register_parameter("bias",
                              init::kaiming_uniform({out}, fan_in, rng));
}

ag::Variable ConvTranspose2d::forward(const ag::Variable& x) {
  return ag::conv_transpose2d(x, weight, bias, args);
}

ConvTranspose1d::ConvTranspose1d(int64_t in, int64_t out, int64_t kernel,
                                 int64_t stride, int64_t pad, int64_t out_pad,
                                 int64_t groups, bool has_bias, Rng& rng)
    : args{stride, pad, out_pad, groups} {
  const int64_t fan_in = (out / groups) * kernel;
  weight = register_parameter(
      "weight",
      init::kaiming_uniform({in, out / groups, kernel}, fan_in, rng));
  if (has_bias)
    bias = register_parameter("bias",
                              init::kaiming_uniform({out}, fan_in, rng));
}

ag::Variable ConvTranspose1d::forward(const ag::Variable& x) {
  return ag::conv_transpose1d(x, weight, bias, args);
}

Embedding::Embedding(int64_t vocab, int64_t dim, Rng& rng)
    : vocab(vocab), dim(dim) {
  weight = register_parameter("weight",
                              init::normal({vocab, dim}, 0.f, 1.f, rng));
}

ag::Variable Embedding::forward(const ag::Variable&) {
  HFTA_CHECK(false, "Embedding: use lookup(indices) instead of forward()");
  return ag::Variable();
}

ag::Variable Embedding::lookup(const Tensor& indices) {
  return ag::embedding(indices, weight);
}

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride, int64_t pad)
    : args{kernel, stride, pad} {}

ag::Variable MaxPool2d::forward(const ag::Variable& x) {
  return ag::max_pool2d(x, args);
}

AdaptiveAvgPool2d::AdaptiveAvgPool2d(int64_t out_h, int64_t out_w)
    : out_h(out_h), out_w(out_w) {}

ag::Variable AdaptiveAvgPool2d::forward(const ag::Variable& x) {
  return ag::adaptive_avg_pool2d(x, out_h, out_w);
}

Dropout::Dropout(float p, uint64_t seed) : p(p), rng_(seed) {
  HFTA_CHECK(p >= 0.f && p < 1.f, "Dropout: p must be in [0, 1)");
}

ag::Variable Dropout::forward(const ag::Variable& x) {
  if (!is_training() || p == 0.f) return x;
  Tensor mask(x.shape());
  const float scale = 1.f / (1.f - p);
  // The mask draw mutates this module's RNG stream, so a replayed step must
  // re-run it at the same stream position — recorded before mul_mask so
  // replay refreshes the (shared-storage) mask ahead of the product thunk.
  auto draw = [mask, scale, p = p, rng = &rng_]() mutable {
    float* m = mask.data();
    for (int64_t i = 0; i < mask.numel(); ++i)
      m[i] = rng->bernoulli(p) ? 0.f : scale;
  };
  draw();
  if (ag::capturing()) ag::record_side_effect(draw);
  return ag::mul_mask(x, mask);
}

Dropout2d::Dropout2d(float p, uint64_t seed) : p(p), rng_(seed) {
  HFTA_CHECK(p >= 0.f && p < 1.f, "Dropout2d: p must be in [0, 1)");
}

ag::Variable Dropout2d::forward(const ag::Variable& x) {
  if (!is_training() || p == 0.f) return x;
  HFTA_CHECK(x.dim() == 4, "Dropout2d expects [N, C, H, W]");
  const int64_t N = x.size(0), C = x.size(1);
  const int64_t spatial = x.numel() / (N * C);
  Tensor mask(x.shape());
  const float scale = 1.f / (1.f - p);
  auto draw = [mask, scale, N, C, spatial, p = p, rng = &rng_]() mutable {
    float* m = mask.data();
    for (int64_t nc = 0; nc < N * C; ++nc) {
      const float v = rng->bernoulli(p) ? 0.f : scale;
      for (int64_t s = 0; s < spatial; ++s) m[nc * spatial + s] = v;
    }
  };
  draw();
  if (ag::capturing()) ag::record_side_effect(draw);
  return ag::mul_mask(x, mask);
}


// ---- reflection ------------------------------------------------------------

ModuleConfig Linear::config() const {
  ModuleConfig c;
  c.set("in", in_features);
  c.set("out", out_features);
  c.set("bias", static_cast<int64_t>(bias.defined()));
  return c;
}

ModuleConfig Conv2d::config() const {
  ModuleConfig c;
  c.set("in", weight.size(1) * args.groups);
  c.set("out", weight.size(0));
  c.set("kernel", weight.size(2));
  c.set("stride", args.stride_h);
  c.set("pad", args.pad_h);
  c.set("groups", args.groups);
  c.set("bias", static_cast<int64_t>(bias.defined()));
  return c;
}

ModuleConfig Conv1d::config() const {
  ModuleConfig c;
  c.set("in", weight.size(1) * groups);
  c.set("out", weight.size(0));
  c.set("kernel", weight.size(2));
  c.set("stride", stride);
  c.set("pad", pad);
  c.set("groups", groups);
  c.set("bias", static_cast<int64_t>(bias.defined()));
  return c;
}

ModuleConfig ConvTranspose2d::config() const {
  ModuleConfig c;
  c.set("in", weight.size(0));
  c.set("out", weight.size(1) * args.groups);
  c.set("kernel", weight.size(2));
  c.set("stride", args.stride);
  c.set("pad", args.pad);
  c.set("out_pad", args.out_pad);
  c.set("groups", args.groups);
  c.set("bias", static_cast<int64_t>(bias.defined()));
  return c;
}

ModuleConfig ConvTranspose1d::config() const {
  ModuleConfig c;
  c.set("in", weight.size(0));
  c.set("out", weight.size(1) * args.groups);
  c.set("kernel", weight.size(2));
  c.set("stride", args.stride);
  c.set("pad", args.pad);
  c.set("out_pad", args.out_pad);
  c.set("groups", args.groups);
  c.set("bias", static_cast<int64_t>(bias.defined()));
  return c;
}

ModuleConfig Embedding::config() const {
  ModuleConfig c;
  c.set("vocab", vocab);
  c.set("dim", dim);
  return c;
}

ModuleConfig MaxPool2d::config() const {
  ModuleConfig c;
  c.set("kernel", args.kernel);
  c.set("stride", args.stride);
  c.set("pad", args.pad);
  return c;
}

ModuleConfig AdaptiveAvgPool2d::config() const {
  ModuleConfig c;
  c.set("out_h", out_h);
  c.set("out_w", out_w);
  return c;
}

ModuleConfig Dropout::config() const {
  ModuleConfig c;
  c.set("p", static_cast<double>(p));
  return c;
}

ModuleConfig Dropout2d::config() const {
  ModuleConfig c;
  c.set("p", static_cast<double>(p));
  return c;
}

// ---- cloning ---------------------------------------------------------------
//
// Each stateful leaf reconstructs itself from its structural configuration
// (a throwaway Rng seeds the constructor's init, which cloned() immediately
// overwrites with the source weights) — the per-kind counterpart of the
// reflection surface the fusion planner walks.

std::shared_ptr<Module> Linear::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<Linear>(in_features, out_features,
                                                bias.defined(), rng));
}

std::shared_ptr<Module> Conv2d::clone() const {
  Rng rng(0);
  const ModuleConfig c = config();
  return cloned(*this, std::make_shared<Conv2d>(
                           c.get_int("in"), c.get_int("out"),
                           c.get_int("kernel"), c.get_int("stride"),
                           c.get_int("pad"), c.get_int("groups"),
                           c.get_int("bias") != 0, rng));
}

std::shared_ptr<Module> Conv1d::clone() const {
  Rng rng(0);
  const ModuleConfig c = config();
  return cloned(*this, std::make_shared<Conv1d>(
                           c.get_int("in"), c.get_int("out"),
                           c.get_int("kernel"), c.get_int("stride"),
                           c.get_int("pad"), c.get_int("groups"),
                           c.get_int("bias") != 0, rng));
}

std::shared_ptr<Module> ConvTranspose2d::clone() const {
  Rng rng(0);
  const ModuleConfig c = config();
  return cloned(*this, std::make_shared<ConvTranspose2d>(
                           c.get_int("in"), c.get_int("out"),
                           c.get_int("kernel"), c.get_int("stride"),
                           c.get_int("pad"), c.get_int("out_pad"),
                           c.get_int("groups"), c.get_int("bias") != 0, rng));
}

std::shared_ptr<Module> ConvTranspose1d::clone() const {
  Rng rng(0);
  const ModuleConfig c = config();
  return cloned(*this, std::make_shared<ConvTranspose1d>(
                           c.get_int("in"), c.get_int("out"),
                           c.get_int("kernel"), c.get_int("stride"),
                           c.get_int("pad"), c.get_int("out_pad"),
                           c.get_int("groups"), c.get_int("bias") != 0, rng));
}

std::shared_ptr<Module> Embedding::clone() const {
  Rng rng(0);
  return cloned(*this, std::make_shared<Embedding>(vocab, dim, rng));
}

std::shared_ptr<Module> MaxPool2d::clone() const {
  return cloned(*this, std::make_shared<MaxPool2d>(args.kernel, args.stride,
                                                   args.pad));
}

std::shared_ptr<Module> AdaptiveAvgPool2d::clone() const {
  return cloned(*this, std::make_shared<AdaptiveAvgPool2d>(out_h, out_w));
}

// ---- structural leaves -----------------------------------------------------

ag::Variable Flatten::forward(const ag::Variable& x) {
  return ag::reshape(x, {x.size(0), x.numel() / x.size(0)});
}

ag::Variable GlobalMaxPool1d::forward(const ag::Variable& x) {
  return ag::global_max_pool1d(x);
}

}  // namespace hfta::nn
