#include "nn/serialize.h"

#include <cstring>
#include <fstream>

#include "core/check.h"

namespace hfta::nn {

namespace {
constexpr char kMagic[4] = {'H', 'F', 'T', 'A'};
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  HFTA_CHECK(is.good(), "checkpoint: unexpected end of stream");
  return v;
}
}  // namespace

void write_tensor(std::ostream& os, const std::string& name, const Tensor& t) {
  write_pod<uint64_t>(os, name.size());
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
  write_pod<uint64_t>(os, static_cast<uint64_t>(t.dim()));
  for (int64_t d = 0; d < t.dim(); ++d)
    write_pod<int64_t>(os, t.size(d));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(sizeof(float) * t.numel()));
}

std::pair<std::string, Tensor> read_tensor(std::istream& is) {
  const uint64_t name_len = read_pod<uint64_t>(is);
  HFTA_CHECK(name_len < (1u << 20), "checkpoint: absurd name length");
  std::string name(name_len, '\0');
  is.read(name.data(), static_cast<std::streamsize>(name_len));
  const uint64_t rank = read_pod<uint64_t>(is);
  HFTA_CHECK(rank <= 16, "checkpoint: absurd tensor rank ", rank);
  Shape shape;
  for (uint64_t d = 0; d < rank; ++d) shape.push_back(read_pod<int64_t>(is));
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(sizeof(float) * t.numel()));
  HFTA_CHECK(is.good(), "checkpoint: truncated tensor data for ", name);
  return {std::move(name), std::move(t)};
}

void save_parameters(const Module& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  HFTA_CHECK(os.good(), "save_parameters: cannot open ", path);
  os.write(kMagic, 4);
  write_pod<uint32_t>(os, kVersion);
  const auto named = m.named_parameters();
  write_pod<uint64_t>(os, named.size());
  for (const auto& [name, var] : named) write_tensor(os, name, var.value());
  HFTA_CHECK(os.good(), "save_parameters: write failed for ", path);
}

void load_parameters(Module& m, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  HFTA_CHECK(is.good(), "load_parameters: cannot open ", path);
  char magic[4];
  is.read(magic, 4);
  HFTA_CHECK(is.good() && std::memcmp(magic, kMagic, 4) == 0,
             "load_parameters: not an hfta checkpoint: ", path);
  const uint32_t version = read_pod<uint32_t>(is);
  HFTA_CHECK(version == kVersion, "load_parameters: version ", version,
             " unsupported");
  const uint64_t count = read_pod<uint64_t>(is);
  auto named = m.named_parameters();
  HFTA_CHECK(count == named.size(), "load_parameters: checkpoint has ", count,
             " parameters, module has ", named.size());
  for (auto& [name, var] : named) {
    auto [saved_name, t] = read_tensor(is);
    HFTA_CHECK(saved_name == name, "load_parameters: expected ", name,
               ", found ", saved_name);
    HFTA_CHECK(t.shape() == var.shape(), "load_parameters: shape mismatch at ",
               name);
    var.mutable_value().copy_(t);
  }
}

}  // namespace hfta::nn
