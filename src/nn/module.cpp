#include "nn/module.h"

namespace hfta::nn {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kCustom: return "Custom";
    case LayerKind::kSequential: return "Sequential";
    case LayerKind::kLinear: return "Linear";
    case LayerKind::kConv1d: return "Conv1d";
    case LayerKind::kConv2d: return "Conv2d";
    case LayerKind::kConvTranspose1d: return "ConvTranspose1d";
    case LayerKind::kConvTranspose2d: return "ConvTranspose2d";
    case LayerKind::kEmbedding: return "Embedding";
    case LayerKind::kBatchNorm1d: return "BatchNorm1d";
    case LayerKind::kBatchNorm2d: return "BatchNorm2d";
    case LayerKind::kLayerNorm: return "LayerNorm";
    case LayerKind::kMaxPool2d: return "MaxPool2d";
    case LayerKind::kAdaptiveAvgPool2d: return "AdaptiveAvgPool2d";
    case LayerKind::kDropout: return "Dropout";
    case LayerKind::kDropout2d: return "Dropout2d";
    case LayerKind::kFlatten: return "Flatten";
    case LayerKind::kGlobalMaxPool1d: return "GlobalMaxPool1d";
    case LayerKind::kReLU: return "ReLU";
    case LayerKind::kReLU6: return "ReLU6";
    case LayerKind::kLeakyReLU: return "LeakyReLU";
    case LayerKind::kTanh: return "Tanh";
    case LayerKind::kSigmoid: return "Sigmoid";
    case LayerKind::kHardswish: return "Hardswish";
    case LayerKind::kGELU: return "GELU";
  }
  return "Unknown";
}

int64_t ModuleConfig::get_int(const std::string& name, int64_t fallback) const {
  for (const auto& [k, v] : ints)
    if (k == name) return v;
  return fallback;
}

double ModuleConfig::get_float(const std::string& name, double fallback) const {
  for (const auto& [k, v] : floats)
    if (k == name) return v;
  return fallback;
}

const Module* Module::find(const std::string& path) const {
  if (path.empty()) return this;
  const size_t dot = path.find('.');
  const std::string head = path.substr(0, dot);
  const std::string rest = dot == std::string::npos ? "" : path.substr(dot + 1);
  for (const auto& [name, child] : children_)
    if (name == head) return child->find(rest);
  return nullptr;
}

std::vector<ag::Variable> Module::parameters() const {
  std::vector<ag::Variable> out;
  for (auto& [name, v] : named_parameters()) out.push_back(v);
  return out;
}

std::vector<std::pair<std::string, ag::Variable>> Module::named_parameters()
    const {
  std::vector<std::pair<std::string, ag::Variable>> out;
  collect("", &out);
  return out;
}

void Module::collect(
    const std::string& prefix,
    std::vector<std::pair<std::string, ag::Variable>>* out) const {
  for (const auto& [name, v] : params_) out->emplace_back(prefix + name, v);
  for (const auto& [name, child] : children_)
    child->collect(prefix + name + ".", out);
}

int64_t Module::num_parameters() const {
  int64_t n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

void Module::train(bool mode) {
  training_ = mode;
  for (auto& [name, child] : children_) child->train(mode);
}

ag::Variable& Module::register_parameter(std::string name, Tensor value) {
  params_.emplace_back(std::move(name),
                       ag::Variable(std::move(value), /*requires_grad=*/true));
  return params_.back().second;
}

Tensor& Module::register_buffer(std::string name, Tensor value) {
  buffers_.emplace_back(std::move(name), std::move(value));
  return buffers_.back().second;
}

Sequential::Sequential(std::vector<std::shared_ptr<Module>> mods) {
  for (size_t i = 0; i < mods.size(); ++i) push_back(mods[i]);
}

void Sequential::push_back(std::shared_ptr<Module> m) {
  push_back(std::to_string(mods_.size()), std::move(m));
}

void Sequential::push_back(std::string name, std::shared_ptr<Module> m) {
  register_module(std::move(name), m);
  mods_.push_back(std::move(m));
}

ag::Variable Sequential::forward(const ag::Variable& x) {
  ag::Variable h = x;
  for (auto& m : mods_) h = m->forward(h);
  return h;
}

}  // namespace hfta::nn
