#include "nn/module.h"

namespace hfta::nn {

std::vector<ag::Variable> Module::parameters() const {
  std::vector<ag::Variable> out;
  for (auto& [name, v] : named_parameters()) out.push_back(v);
  return out;
}

std::vector<std::pair<std::string, ag::Variable>> Module::named_parameters()
    const {
  std::vector<std::pair<std::string, ag::Variable>> out;
  collect("", &out);
  return out;
}

void Module::collect(
    const std::string& prefix,
    std::vector<std::pair<std::string, ag::Variable>>* out) const {
  for (const auto& [name, v] : params_) out->emplace_back(prefix + name, v);
  for (const auto& [name, child] : children_)
    child->collect(prefix + name + ".", out);
}

int64_t Module::num_parameters() const {
  int64_t n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

void Module::train(bool mode) {
  training_ = mode;
  for (auto& [name, child] : children_) child->train(mode);
}

ag::Variable& Module::register_parameter(std::string name, Tensor value) {
  params_.emplace_back(std::move(name),
                       ag::Variable(std::move(value), /*requires_grad=*/true));
  return params_.back().second;
}

Tensor& Module::register_buffer(std::string name, Tensor value) {
  buffers_.emplace_back(std::move(name), std::move(value));
  return buffers_.back().second;
}

Sequential::Sequential(std::vector<std::shared_ptr<Module>> mods) {
  for (size_t i = 0; i < mods.size(); ++i) push_back(mods[i]);
}

void Sequential::push_back(std::shared_ptr<Module> m) {
  register_module(std::to_string(mods_.size()), m);
  mods_.push_back(std::move(m));
}

ag::Variable Sequential::forward(const ag::Variable& x) {
  ag::Variable h = x;
  for (auto& m : mods_) h = m->forward(h);
  return h;
}

}  // namespace hfta::nn
