#include "nn/module.h"

#include "nn/layers.h"

namespace hfta::nn {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kCustom: return "Custom";
    case LayerKind::kSequential: return "Sequential";
    case LayerKind::kLinear: return "Linear";
    case LayerKind::kConv1d: return "Conv1d";
    case LayerKind::kConv2d: return "Conv2d";
    case LayerKind::kConvTranspose1d: return "ConvTranspose1d";
    case LayerKind::kConvTranspose2d: return "ConvTranspose2d";
    case LayerKind::kEmbedding: return "Embedding";
    case LayerKind::kBatchNorm1d: return "BatchNorm1d";
    case LayerKind::kBatchNorm2d: return "BatchNorm2d";
    case LayerKind::kLayerNorm: return "LayerNorm";
    case LayerKind::kMaxPool2d: return "MaxPool2d";
    case LayerKind::kAdaptiveAvgPool2d: return "AdaptiveAvgPool2d";
    case LayerKind::kDropout: return "Dropout";
    case LayerKind::kDropout2d: return "Dropout2d";
    case LayerKind::kFlatten: return "Flatten";
    case LayerKind::kGlobalMaxPool1d: return "GlobalMaxPool1d";
    case LayerKind::kReLU: return "ReLU";
    case LayerKind::kReLU6: return "ReLU6";
    case LayerKind::kLeakyReLU: return "LeakyReLU";
    case LayerKind::kTanh: return "Tanh";
    case LayerKind::kSigmoid: return "Sigmoid";
    case LayerKind::kHardswish: return "Hardswish";
    case LayerKind::kGELU: return "GELU";
  }
  return "Unknown";
}

int64_t ModuleConfig::get_int(const std::string& name, int64_t fallback) const {
  for (const auto& [k, v] : ints)
    if (k == name) return v;
  return fallback;
}

double ModuleConfig::get_float(const std::string& name, double fallback) const {
  for (const auto& [k, v] : floats)
    if (k == name) return v;
  return fallback;
}

namespace {

Module::CloneFallback& clone_fallback_slot() {
  static Module::CloneFallback fn;
  return fn;
}

}  // namespace

void Module::set_clone_fallback(CloneFallback fn) {
  clone_fallback_slot() = std::move(fn);
}

std::shared_ptr<Module> Module::clone() const {
  const CloneFallback& fn = clone_fallback_slot();
  return fn ? fn(*this) : nullptr;
}

std::vector<std::pair<std::string, Tensor>> named_buffers_recursive(
    const Module& m) {
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& kv : m.named_buffers()) out.push_back(kv);
  for (const auto& [name, child] : m.named_children())
    for (auto& kv : named_buffers_recursive(*child))
      out.emplace_back(name + "." + kv.first, kv.second);
  return out;
}

namespace {

// Dropout's mask rng is neither a parameter nor a buffer; carry its CURRENT
// stream state over so a copy replays the source's masks (the clone
// contract, DESIGN.md §5). Walks structurally parallel trees.
template <typename D>
void assign_keeping_mode(const Module& src, Module& dst) {
  const auto* s = dynamic_cast<const D*>(&src);
  auto* d = dynamic_cast<D*>(&dst);
  if (s == nullptr || d == nullptr) return;
  const bool mode = d->is_training();  // train/eval is not copy_state's job
  *d = *s;
  d->train(mode);
}

void sync_mask_streams(const Module& src, Module& dst) {
  assign_keeping_mode<Dropout>(src, dst);
  assign_keeping_mode<Dropout2d>(src, dst);
  const auto& sc = src.named_children();
  const auto& dc = dst.named_children();
  for (size_t i = 0; i < sc.size() && i < dc.size(); ++i)
    sync_mask_streams(*sc[i].second, *dc[i].second);
}

}  // namespace

void copy_state(const Module& src, Module& dst) {
  auto s = src.named_parameters();
  auto d = dst.named_parameters();
  HFTA_CHECK(s.size() == d.size(), "copy_state: parameter-count mismatch (",
             s.size(), " vs ", d.size(), ")");
  for (size_t i = 0; i < s.size(); ++i) {
    HFTA_CHECK(s[i].second.numel() == d[i].second.numel(),
               "copy_state: shape mismatch at ", s[i].first);
    d[i].second.mutable_value().copy_(s[i].second.value());
  }
  auto sb = named_buffers_recursive(src);
  auto db = named_buffers_recursive(dst);
  HFTA_CHECK(sb.size() == db.size(), "copy_state: buffer-count mismatch (",
             sb.size(), " vs ", db.size(), ")");
  for (size_t i = 0; i < sb.size(); ++i) db[i].second.copy_(sb[i].second);
  sync_mask_streams(src, dst);
}

bool has_state(const Module& m) {
  return !m.named_parameters().empty() || !named_buffers_recursive(m).empty();
}

const Module* Module::find(const std::string& path) const {
  if (path.empty()) return this;
  const size_t dot = path.find('.');
  const std::string head = path.substr(0, dot);
  const std::string rest = dot == std::string::npos ? "" : path.substr(dot + 1);
  for (const auto& [name, child] : children_)
    if (name == head) return child->find(rest);
  return nullptr;
}

Module* Module::find(const std::string& path) {
  return const_cast<Module*>(
      static_cast<const Module*>(this)->find(path));
}

std::vector<ag::Variable> Module::parameters() const {
  std::vector<ag::Variable> out;
  for (auto& [name, v] : named_parameters()) out.push_back(v);
  return out;
}

std::vector<std::pair<std::string, ag::Variable>> Module::named_parameters()
    const {
  std::vector<std::pair<std::string, ag::Variable>> out;
  collect("", &out);
  return out;
}

void Module::collect(
    const std::string& prefix,
    std::vector<std::pair<std::string, ag::Variable>>* out) const {
  for (const auto& [name, v] : params_) out->emplace_back(prefix + name, v);
  for (const auto& [name, child] : children_)
    child->collect(prefix + name + ".", out);
}

int64_t Module::num_parameters() const {
  int64_t n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

void Module::train(bool mode) {
  training_ = mode;
  for (auto& [name, child] : children_) child->train(mode);
}

ag::Variable& Module::register_parameter(std::string name, Tensor value) {
  params_.emplace_back(std::move(name),
                       ag::Variable(std::move(value), /*requires_grad=*/true));
  return params_.back().second;
}

Tensor& Module::register_buffer(std::string name, Tensor value) {
  buffers_.emplace_back(std::move(name), std::move(value));
  return buffers_.back().second;
}

Sequential::Sequential(std::vector<std::shared_ptr<Module>> mods) {
  for (size_t i = 0; i < mods.size(); ++i) push_back(mods[i]);
}

void Sequential::push_back(std::shared_ptr<Module> m) {
  push_back(std::to_string(mods_.size()), std::move(m));
}

void Sequential::push_back(std::string name, std::shared_ptr<Module> m) {
  register_module(std::move(name), m);
  mods_.push_back(std::move(m));
}

ag::Variable Sequential::forward(const ag::Variable& x) {
  ag::Variable h = x;
  for (auto& m : mods_) h = m->forward(h);
  return h;
}

std::shared_ptr<Module> Sequential::clone() const {
  auto out = std::make_shared<Sequential>();
  for (const auto& [name, child] : named_children()) {
    std::shared_ptr<Module> c = child->clone();
    if (c == nullptr) return nullptr;
    out->push_back(name, std::move(c));
  }
  out->train(is_training());
  return out;
}

}  // namespace hfta::nn
