// Standard (unfused) layers — the per-job operators that HFTA fuses.
// Each class mirrors its PyTorch namesake's constructor and semantics.
#pragma once

#include "nn/module.h"
#include "tensor/conv.h"
#include "tensor/pool.h"

namespace hfta::nn {

class Linear : public Module {
 public:
  Linear(int64_t in, int64_t out, bool bias, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kLinear; }
  std::shared_ptr<Module> clone() const override;
  ModuleConfig config() const override;

  ag::Variable weight;  // [out, in]
  ag::Variable bias;    // [out] or undefined
  int64_t in_features;
  int64_t out_features;
};

class Conv2d : public Module {
 public:
  Conv2d(int64_t in, int64_t out, int64_t kernel, int64_t stride, int64_t pad,
         int64_t groups, bool bias, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kConv2d; }
  std::shared_ptr<Module> clone() const override;
  ModuleConfig config() const override;

  ag::Variable weight;  // [out, in/groups, k, k]
  ag::Variable bias;
  ops::ConvArgs args;
};

class Conv1d : public Module {
 public:
  Conv1d(int64_t in, int64_t out, int64_t kernel, int64_t stride, int64_t pad,
         int64_t groups, bool bias, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kConv1d; }
  std::shared_ptr<Module> clone() const override;
  ModuleConfig config() const override;

  ag::Variable weight;  // [out, in/groups, k]
  ag::Variable bias;
  int64_t stride, pad, groups;
};

class ConvTranspose2d : public Module {
 public:
  ConvTranspose2d(int64_t in, int64_t out, int64_t kernel, int64_t stride,
                  int64_t pad, int64_t out_pad, int64_t groups, bool bias,
                  Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kConvTranspose2d; }
  std::shared_ptr<Module> clone() const override;
  ModuleConfig config() const override;

  ag::Variable weight;  // [in, out/groups, k, k]
  ag::Variable bias;
  ops::ConvTransposeArgs args;
};

class ConvTranspose1d : public Module {
 public:
  ConvTranspose1d(int64_t in, int64_t out, int64_t kernel, int64_t stride,
                  int64_t pad, int64_t out_pad, int64_t groups, bool bias,
                  Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kConvTranspose1d; }
  std::shared_ptr<Module> clone() const override;
  ModuleConfig config() const override;

  ag::Variable weight;  // [in, out/groups, k]
  ag::Variable bias;
  ops::ConvTransposeArgs args;
};

class Embedding : public Module {
 public:
  Embedding(int64_t vocab, int64_t dim, Rng& rng);
  /// Not usable through the single-input interface; call lookup().
  ag::Variable forward(const ag::Variable&) override;
  ag::Variable lookup(const Tensor& indices);
  LayerKind kind() const override { return LayerKind::kEmbedding; }
  std::shared_ptr<Module> clone() const override;
  ModuleConfig config() const override;

  ag::Variable weight;  // [V, E]
  int64_t vocab, dim;
};

class MaxPool2d : public Module {
 public:
  MaxPool2d(int64_t kernel, int64_t stride, int64_t pad = 0);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kMaxPool2d; }
  std::shared_ptr<Module> clone() const override;
  ModuleConfig config() const override;
  ops::PoolArgs args;
};

class AdaptiveAvgPool2d : public Module {
 public:
  AdaptiveAvgPool2d(int64_t out_h, int64_t out_w);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kAdaptiveAvgPool2d; }
  std::shared_ptr<Module> clone() const override;
  ModuleConfig config() const override;
  int64_t out_h, out_w;
};

/// Elementwise dropout; identity in eval mode. Deterministic given seed.
class Dropout : public Module {
 public:
  Dropout(float p, uint64_t seed = 0x5eed);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kDropout; }
  /// Copy-based clone so the mask rng stream's current state carries over.
  std::shared_ptr<Module> clone() const override {
    return std::make_shared<Dropout>(*this);
  }
  ModuleConfig config() const override;
  float p;

 private:
  Rng rng_;
};

/// Channel dropout for [N, C, H, W] (zeroes whole channels).
class Dropout2d : public Module {
 public:
  Dropout2d(float p, uint64_t seed = 0x5eed2d);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kDropout2d; }
  /// Copy-based clone so the mask rng stream's current state carries over.
  std::shared_ptr<Module> clone() const override {
    return std::make_shared<Dropout2d>(*this);
  }
  ModuleConfig config() const override;
  float p;

 private:
  Rng rng_;
};

/// Flattens all trailing dims into one: [N, d1, d2, ...] -> [N, d1*d2*...].
/// The canonical bridge between the conv/pool family and a Linear head.
class Flatten : public Module {
 public:
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kFlatten; }
  std::shared_ptr<Module> clone() const override {
    return cloned(*this, std::make_shared<Flatten>());
  }
};

/// Max over the last (length) dim: [N, C, L] -> [N, C]. PointNet's global
/// feature pooling as a module, so module graphs stay planner-walkable.
class GlobalMaxPool1d : public Module {
 public:
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kGlobalMaxPool1d; }
  std::shared_ptr<Module> clone() const override {
    return cloned(*this, std::make_shared<GlobalMaxPool1d>());
  }
};

// -- activation modules -------------------------------------------------------

class ReLU : public Module {
 public:
  ag::Variable forward(const ag::Variable& x) override { return ag::relu(x); }
  LayerKind kind() const override { return LayerKind::kReLU; }
  std::shared_ptr<Module> clone() const override {
    return cloned(*this, std::make_shared<ReLU>());
  }
};
class ReLU6 : public Module {
 public:
  ag::Variable forward(const ag::Variable& x) override { return ag::relu6(x); }
  LayerKind kind() const override { return LayerKind::kReLU6; }
  std::shared_ptr<Module> clone() const override {
    return cloned(*this, std::make_shared<ReLU6>());
  }
};
class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(float slope) : slope(slope) {}
  ag::Variable forward(const ag::Variable& x) override {
    return ag::leaky_relu(x, slope);
  }
  LayerKind kind() const override { return LayerKind::kLeakyReLU; }
  std::shared_ptr<Module> clone() const override {
    return cloned(*this, std::make_shared<LeakyReLU>(slope));
  }
  ModuleConfig config() const override {
    ModuleConfig c;
    c.set("slope", static_cast<double>(slope));
    return c;
  }
  float slope;
};
class Tanh : public Module {
 public:
  ag::Variable forward(const ag::Variable& x) override { return ag::tanh(x); }
  LayerKind kind() const override { return LayerKind::kTanh; }
  std::shared_ptr<Module> clone() const override {
    return cloned(*this, std::make_shared<Tanh>());
  }
};
class Sigmoid : public Module {
 public:
  ag::Variable forward(const ag::Variable& x) override {
    return ag::sigmoid(x);
  }
  LayerKind kind() const override { return LayerKind::kSigmoid; }
  std::shared_ptr<Module> clone() const override {
    return cloned(*this, std::make_shared<Sigmoid>());
  }
};
class Hardswish : public Module {
 public:
  ag::Variable forward(const ag::Variable& x) override {
    return ag::hardswish(x);
  }
  LayerKind kind() const override { return LayerKind::kHardswish; }
  std::shared_ptr<Module> clone() const override {
    return cloned(*this, std::make_shared<Hardswish>());
  }
};
class GELU : public Module {
 public:
  ag::Variable forward(const ag::Variable& x) override { return ag::gelu(x); }
  LayerKind kind() const override { return LayerKind::kGELU; }
  std::shared_ptr<Module> clone() const override {
    return cloned(*this, std::make_shared<GELU>());
  }
};

}  // namespace hfta::nn
