// Module base class: owns parameters and child modules, exposes recursive
// parameter collection, train/eval mode, and zero_grad — the PyTorch
// nn.Module contract scaled down to what the paper's models need.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/functions.h"
#include "autograd/variable.h"

namespace hfta::nn {

/// Layer-kind tag exposed by Module::kind(): the reflection surface the
/// fusion planner walks. Leaf layers report their concrete kind; composite
/// user modules stay kCustom and either register a custom lowering under
/// their kind_name() or are run unfused behind an adapter.
enum class LayerKind {
  kCustom,
  kSequential,
  kLinear,
  kConv1d,
  kConv2d,
  kConvTranspose1d,
  kConvTranspose2d,
  kEmbedding,
  kBatchNorm1d,
  kBatchNorm2d,
  kLayerNorm,
  kMaxPool2d,
  kAdaptiveAvgPool2d,
  kDropout,
  kDropout2d,
  kFlatten,
  kGlobalMaxPool1d,
  kReLU,
  kReLU6,
  kLeakyReLU,
  kTanh,
  kSigmoid,
  kHardswish,
  kGELU,
};

const char* layer_kind_name(LayerKind kind);

/// Structural + numeric hyper-parameters of a layer, reported by
/// Module::config(). The fusion planner requires every field to match
/// across the B models of an array (per-model hyper-parameters the paper
/// allows to differ — learning rate, betas, weight decay — live in the
/// fused optimizer, not in the module graph).
struct ModuleConfig {
  std::vector<std::pair<std::string, int64_t>> ints;
  std::vector<std::pair<std::string, double>> floats;
  std::vector<int64_t> dims;  // shape-valued config (LayerNorm)

  void set(std::string name, int64_t v) {
    ints.emplace_back(std::move(name), v);
  }
  void set(std::string name, double v) {
    floats.emplace_back(std::move(name), v);
  }
  int64_t get_int(const std::string& name, int64_t fallback = 0) const;
  double get_float(const std::string& name, double fallback = 0) const;
};

class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  /// Single-input forward; models with several inputs expose their own
  /// methods and use Module only for parameter bookkeeping.
  virtual ag::Variable forward(const ag::Variable& x) = 0;
  ag::Variable operator()(const ag::Variable& x) { return forward(x); }

  /// Deep copy: structurally congruent, equal parameter/buffer values,
  /// independently owned storage (mutating the clone never touches the
  /// original, and vice versa). Built-in layers and Sequential override
  /// this; composite kinds registered through the fusion layer's
  /// LoweringRegistrar clone through its per-kind factories. Returns
  /// nullptr when the kind has no clone support.
  virtual std::shared_ptr<Module> clone() const;

  /// Hook consulted by the default clone() for kinds without an override —
  /// installed once by the fusion layer to route through the
  /// LoweringRegistry's per-kind clone factories.
  using CloneFallback = std::function<std::shared_ptr<Module>(const Module&)>;
  static void set_clone_fallback(CloneFallback fn);

  /// Tail shared by every clone() implementation and clone factory: copies
  /// src's parameters, buffers, private rng streams, and train/eval mode
  /// into the freshly constructed dst.
  template <typename M>
  static std::shared_ptr<M> cloned(const Module& src, std::shared_ptr<M> dst);

  /// All trainable parameters, depth-first (this module's own first).
  std::vector<ag::Variable> parameters() const;
  /// Parameters with dotted path names ("conv1.weight", ...).
  std::vector<std::pair<std::string, ag::Variable>> named_parameters() const;

  // -- reflection (walked by the fusion planner) -----------------------------

  /// This layer's kind tag; kCustom for composite user modules.
  virtual LayerKind kind() const { return LayerKind::kCustom; }
  /// Key into the fusion planner's lowering registry. Leaf layers use the
  /// layer-kind name; composite modules that want planner support override
  /// this (e.g. "models::BasicBlock") and register a custom lowering.
  virtual std::string kind_name() const { return layer_kind_name(kind()); }
  /// Structural/numeric hyper-parameters (must match across a fused array).
  virtual ModuleConfig config() const { return {}; }
  /// Direct children, in registration order.
  const std::vector<std::pair<std::string, std::shared_ptr<Module>>>&
  named_children() const {
    return children_;
  }
  /// This module's own buffers (not recursive).
  const std::vector<std::pair<std::string, Tensor>>& named_buffers() const {
    return buffers_;
  }
  /// This module's own parameters (not recursive), in registration order
  /// (the fusion layer derives per-kind state schemas from these).
  const std::vector<std::pair<std::string, ag::Variable>>& own_named_parameters()
      const {
    return params_;
  }
  /// Resolves a dotted child path ("trunk.conv1"); "" is this module itself.
  /// Returns nullptr when the path does not exist.
  const Module* find(const std::string& path) const;
  /// Mutable overload (used by FusedArray::save_model to write a model's
  /// state back into a per-model tree).
  Module* find(const std::string& path);

  /// Total number of trainable scalars.
  int64_t num_parameters() const;

  void zero_grad();

  /// Switches train/eval mode recursively (affects Dropout / BatchNorm).
  void train(bool mode = true);
  void eval() { train(false); }
  bool is_training() const { return training_; }

 protected:
  /// Copying shares parameter/buffer storage (Variables are handles) — only
  /// meaningful for stateless-or-self-contained leaves (e.g. Dropout's
  /// copy-based clone); kept protected so trees are not copied by accident.
  Module(const Module&) = default;
  Module& operator=(const Module&) = default;

  /// Registers a trainable parameter; returns the stored handle.
  ag::Variable& register_parameter(std::string name, Tensor value);
  /// Registers a non-trainable buffer (running stats); returns the handle.
  Tensor& register_buffer(std::string name, Tensor value);
  /// Registers (and returns) a child module.
  template <typename M>
  std::shared_ptr<M> register_module(std::string name, std::shared_ptr<M> m) {
    children_.emplace_back(std::move(name), m);
    return m;
  }

  bool training_ = true;

 private:
  std::vector<std::pair<std::string, ag::Variable>> params_;
  std::vector<std::pair<std::string, Tensor>> buffers_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;

  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, ag::Variable>>* out) const;
};

/// Runs modules in order.
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<std::shared_ptr<Module>> mods);

  void push_back(std::shared_ptr<Module> m);
  /// Registers under `name` instead of the positional index, so planner
  /// diagnostics and load paths read "stem.conv" rather than "0.0".
  void push_back(std::string name, std::shared_ptr<Module> m);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kSequential; }
  /// Deep clone: every child cloned in registration order (nullptr if any
  /// child has no clone support).
  std::shared_ptr<Module> clone() const override;
  size_t size() const { return mods_.size(); }
  const std::shared_ptr<Module>& at(size_t i) const { return mods_.at(i); }

 private:
  std::vector<std::shared_ptr<Module>> mods_;
};

/// All buffers with dotted path names, depth-first (mirrors
/// named_parameters()).
std::vector<std::pair<std::string, Tensor>> named_buffers_recursive(
    const Module& m);

/// Copies every parameter and buffer of `src` into the structurally
/// congruent module `dst` (pairwise shapes must match).
void copy_state(const Module& src, Module& dst);

/// True when the module tree holds any parameter or buffer storage.
bool has_state(const Module& m);

template <typename M>
std::shared_ptr<M> Module::cloned(const Module& src, std::shared_ptr<M> dst) {
  copy_state(src, *dst);
  dst->train(src.is_training());
  return dst;
}

}  // namespace hfta::nn
