// Module base class: owns parameters and child modules, exposes recursive
// parameter collection, train/eval mode, and zero_grad — the PyTorch
// nn.Module contract scaled down to what the paper's models need.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/functions.h"
#include "autograd/variable.h"

namespace hfta::nn {

class Module {
 public:
  virtual ~Module() = default;

  /// Single-input forward; models with several inputs expose their own
  /// methods and use Module only for parameter bookkeeping.
  virtual ag::Variable forward(const ag::Variable& x) = 0;
  ag::Variable operator()(const ag::Variable& x) { return forward(x); }

  /// All trainable parameters, depth-first (this module's own first).
  std::vector<ag::Variable> parameters() const;
  /// Parameters with dotted path names ("conv1.weight", ...).
  std::vector<std::pair<std::string, ag::Variable>> named_parameters() const;

  /// Total number of trainable scalars.
  int64_t num_parameters() const;

  void zero_grad();

  /// Switches train/eval mode recursively (affects Dropout / BatchNorm).
  void train(bool mode = true);
  void eval() { train(false); }
  bool is_training() const { return training_; }

 protected:
  /// Registers a trainable parameter; returns the stored handle.
  ag::Variable& register_parameter(std::string name, Tensor value);
  /// Registers a non-trainable buffer (running stats); returns the handle.
  Tensor& register_buffer(std::string name, Tensor value);
  /// Registers (and returns) a child module.
  template <typename M>
  std::shared_ptr<M> register_module(std::string name, std::shared_ptr<M> m) {
    children_.emplace_back(std::move(name), m);
    return m;
  }

  bool training_ = true;

 private:
  std::vector<std::pair<std::string, ag::Variable>> params_;
  std::vector<std::pair<std::string, Tensor>> buffers_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;

  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, ag::Variable>>* out) const;
};

/// Runs modules in order.
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<std::shared_ptr<Module>> mods);

  void push_back(std::shared_ptr<Module> m);
  ag::Variable forward(const ag::Variable& x) override;
  size_t size() const { return mods_.size(); }
  const std::shared_ptr<Module>& at(size_t i) const { return mods_.at(i); }

 private:
  std::vector<std::shared_ptr<Module>> mods_;
};

}  // namespace hfta::nn
