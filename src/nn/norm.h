// Normalization layers. BatchNorm keeps running statistics (buffers) and
// switches between batch stats (training) and running stats (eval), exactly
// like torch.nn.BatchNorm*. LayerNorm normalizes over trailing dims.
#pragma once

#include "nn/module.h"

namespace hfta::nn {

/// Shared BatchNorm math for the 1d ([N,C] / [N,C,L]) and 2d ([N,C,H,W])
/// variants.
class BatchNormBase : public Module {
 public:
  BatchNormBase(int64_t channels, float eps, float momentum);

  ag::Variable weight;  // gamma [C]
  ag::Variable bias;    // beta [C]
  Tensor running_mean;  // [C]
  Tensor running_var;   // [C]
  int64_t channels;
  float eps;
  float momentum;

 protected:
  /// x viewed with channels at dim 1; reduce_dims are all dims but 1.
  ag::Variable normalize(const ag::Variable& x,
                         const std::vector<int64_t>& reduce_dims);
};

class BatchNorm2d : public BatchNormBase {
 public:
  BatchNorm2d(int64_t channels, float eps = 1e-5f, float momentum = 0.1f);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kBatchNorm2d; }
  ModuleConfig config() const override;
  std::shared_ptr<Module> clone() const override;
};

class BatchNorm1d : public BatchNormBase {
 public:
  BatchNorm1d(int64_t channels, float eps = 1e-5f, float momentum = 0.1f);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kBatchNorm1d; }
  ModuleConfig config() const override;
  std::shared_ptr<Module> clone() const override;
};

class LayerNorm : public Module {
 public:
  /// normalized_shape: trailing dims E1..En to normalize over.
  LayerNorm(Shape normalized_shape, float eps, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  LayerKind kind() const override { return LayerKind::kLayerNorm; }
  ModuleConfig config() const override;
  std::shared_ptr<Module> clone() const override;

  ag::Variable weight;  // [E1..En]
  ag::Variable bias;    // [E1..En]
  Shape normalized_shape;
  float eps;
};

}  // namespace hfta::nn
