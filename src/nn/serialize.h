// Checkpointing: save/load module parameters (and a raw tensor codec) in a
// small self-describing binary format. Fused arrays checkpoint exactly like
// plain modules — their parameters are ordinary tensors — so a sweep's B
// models live in one file.
//
// Format: magic "HFTA" + u32 version + u64 count, then per parameter:
// u64 name length + name bytes + u64 rank + dims + float data.
#pragma once

#include <string>

#include "nn/module.h"

namespace hfta::nn {

/// Writes all named parameters of `m` to `path`. Throws hfta::Error on IO
/// failure.
void save_parameters(const Module& m, const std::string& path);

/// Loads parameters saved by save_parameters into `m`. Names, order and
/// shapes must match exactly (same architecture).
void load_parameters(Module& m, const std::string& path);

/// Low-level tensor codec (used by the checkpoint format and tests).
void write_tensor(std::ostream& os, const std::string& name, const Tensor& t);
std::pair<std::string, Tensor> read_tensor(std::istream& is);

}  // namespace hfta::nn
