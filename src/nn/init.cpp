#include "nn/init.h"

#include <cmath>

namespace hfta::nn::init {

Tensor kaiming_uniform(Shape shape, int64_t fan_in, Rng& rng) {
  const float bound = 1.f / std::sqrt(static_cast<float>(fan_in));
  return uniform(std::move(shape), bound, rng);
}

Tensor uniform(Shape shape, float bound, Rng& rng) {
  return Tensor::rand(std::move(shape), rng, -bound, bound);
}

Tensor normal(Shape shape, float mean, float stddev, Rng& rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i)
    p[i] = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng) {
  const float bound =
      std::sqrt(6.f / static_cast<float>(fan_in + fan_out));
  return uniform(std::move(shape), bound, rng);
}

}  // namespace hfta::nn::init
