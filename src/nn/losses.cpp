#include "nn/losses.h"

// Loss modules are header-only wrappers; this TU anchors the target.
