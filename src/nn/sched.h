// Learning-rate schedulers (StepLR / ExponentialLR / CosineAnnealingLR).
// HFTA's fused schedulers (src/hfta/fused_sched.h) must match these per
// model.
#pragma once

#include <memory>

#include "nn/optim.h"

namespace hfta::nn {

class LRScheduler {
 public:
  explicit LRScheduler(Optimizer& opt)
      : opt_(opt), base_lr_(opt.lr()) {}
  virtual ~LRScheduler() = default;

  /// Advances one epoch and updates the optimizer's lr.
  void step() {
    ++epoch_;
    opt_.set_lr(lr_at(epoch_));
  }
  int64_t epoch() const { return epoch_; }
  double base_lr() const { return base_lr_; }

  /// lr for a given epoch index (0 = initial).
  virtual double lr_at(int64_t epoch) const = 0;

 protected:
  Optimizer& opt_;
  double base_lr_;
  int64_t epoch_ = 0;
};

/// lr = base * gamma^(floor(epoch / step_size)).
class StepLR : public LRScheduler {
 public:
  StepLR(Optimizer& opt, int64_t step_size, double gamma)
      : LRScheduler(opt), step_size_(step_size), gamma_(gamma) {}
  double lr_at(int64_t epoch) const override;

 private:
  int64_t step_size_;
  double gamma_;
};

/// lr = base * gamma^epoch.
class ExponentialLR : public LRScheduler {
 public:
  ExponentialLR(Optimizer& opt, double gamma)
      : LRScheduler(opt), gamma_(gamma) {}
  double lr_at(int64_t epoch) const override;

 private:
  double gamma_;
};

/// lr = eta_min + (base - eta_min) * (1 + cos(pi * epoch / t_max)) / 2.
class CosineAnnealingLR : public LRScheduler {
 public:
  CosineAnnealingLR(Optimizer& opt, int64_t t_max, double eta_min = 0.0)
      : LRScheduler(opt), t_max_(t_max), eta_min_(eta_min) {}
  double lr_at(int64_t epoch) const override;

 private:
  int64_t t_max_;
  double eta_min_;
};

}  // namespace hfta::nn
