// Unfused optimizers: SGD (momentum / weight decay), Adam, Adadelta —
// the three the paper exercises. The fused counterparts in src/hfta take
// per-model hyper-parameter *vectors* and must match these step-for-step.
#pragma once

#include <vector>

#include "autograd/variable.h"

namespace hfta::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  /// AMP step: folds grad_scale (1/S) into every gradient read instead of
  /// unscaling the buffers first — bit-identical (one f32 multiply either
  /// way), but gradients stay scaled in memory. The base implementation
  /// unscales in place and calls step(), for optimizers without a fused
  /// grad-scale path (Adadelta).
  virtual void step(double grad_scale);
  void zero_grad();

  /// Scalar learning rate (schedulers call set_lr).
  virtual double lr() const = 0;
  virtual void set_lr(double lr) = 0;

  const std::vector<ag::Variable>& params() const { return params_; }

 protected:
  std::vector<ag::Variable> params_;
};

class SGD : public Optimizer {
 public:
  struct Options {
    double lr = 0.01;
    double momentum = 0.0;
    double weight_decay = 0.0;
  };
  SGD(std::vector<ag::Variable> params, Options opt);
  void step() override { step_impl(1.f); }
  void step(double grad_scale) override {
    step_impl(static_cast<float>(grad_scale));
  }
  double lr() const override { return opt_.lr; }
  void set_lr(double lr) override { opt_.lr = lr; }

 private:
  void step_impl(float grad_scale);
  Options opt_;
  std::vector<Tensor> momentum_buf_;
};

class Adam : public Optimizer {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
  };
  Adam(std::vector<ag::Variable> params, Options opt);
  void step() override { step_impl(1.f); }
  void step(double grad_scale) override {
    step_impl(static_cast<float>(grad_scale));
  }
  double lr() const override { return opt_.lr; }
  void set_lr(double lr) override { opt_.lr = lr; }

 private:
  void step_impl(float grad_scale);
  Options opt_;
  std::vector<Tensor> m_, v_;
  int64_t t_ = 0;
};

class Adadelta : public Optimizer {
 public:
  struct Options {
    double lr = 1.0;
    double rho = 0.9;
    double eps = 1e-6;
    double weight_decay = 0.0;
  };
  Adadelta(std::vector<ag::Variable> params, Options opt);
  using Optimizer::step;  // keep the grad_scale fallback visible
  void step() override;
  double lr() const override { return opt_.lr; }
  void set_lr(double lr) override { opt_.lr = lr; }

 private:
  Options opt_;
  std::vector<Tensor> square_avg_, acc_delta_;
};

}  // namespace hfta::nn
