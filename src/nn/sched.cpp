#include "nn/sched.h"

#include <cmath>

namespace hfta::nn {

double StepLR::lr_at(int64_t epoch) const {
  return base_lr_ * std::pow(gamma_, static_cast<double>(epoch / step_size_));
}

double ExponentialLR::lr_at(int64_t epoch) const {
  return base_lr_ * std::pow(gamma_, static_cast<double>(epoch));
}

double CosineAnnealingLR::lr_at(int64_t epoch) const {
  const double t = static_cast<double>(epoch) / static_cast<double>(t_max_);
  return eta_min_ + (base_lr_ - eta_min_) * (1.0 + std::cos(M_PI * t)) / 2.0;
}

}  // namespace hfta::nn
