#include "nn/optim.h"

#include <cmath>

#include "core/parallel.h"
#include "core/vec.h"

namespace hfta::nn {

// The serial optimizers and their fused counterparts (hfta/fused_optim.cpp)
// share the per-element update kernels in core/vec — ONE implementation of
// each update expression, so fused-vs-serial bit-equality of the optimizer
// step is true by construction rather than by keeping two scalar loops in
// sync by hand. The kernels also read grads in place (no clone), dropping a
// per-step allocation per parameter.

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

void Optimizer::step(double grad_scale) {
  // Fallback for optimizers without a fused grad-scale path: unscale every
  // gradient in place (the same single multiply the fused path folds into
  // its update) and run the plain step.
  const float gs = static_cast<float>(grad_scale);
  for (auto& p : params_) {
    if (!p.has_grad()) continue;
    float* pg = p.grad().data();
    const int64_t n = p.grad().numel();
    parallel_for(Partition::elems(n), [&](int64_t lo, int64_t hi) {
      vec::unary(vec::UnOp::kMulScalar, gs, 0.f, pg + lo, pg + lo, hi - lo);
    });
  }
  step();
}

SGD::SGD(std::vector<ag::Variable> params, Options opt)
    : Optimizer(std::move(params)), opt_(opt) {
  momentum_buf_.resize(params_.size());
}

void SGD::step_impl(float grad_scale) {
  vec::SgdArgs s;
  s.lr = static_cast<float>(opt_.lr);
  s.weight_decay = static_cast<float>(opt_.weight_decay);
  s.momentum = static_cast<float>(opt_.momentum);
  s.grad_scale = grad_scale;
  const bool has_momentum = opt_.momentum != 0.0;
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    if (!p.has_grad()) continue;
    // First step seeds buf = 0, so momentum*buf + g == g: the PyTorch
    // first-step rule without a special case.
    if (has_momentum && !momentum_buf_[i].defined())
      momentum_buf_[i] = Tensor::zeros(p.shape());
    vec::sgd(s, p.mutable_value().data(), p.grad().data(),
             has_momentum ? momentum_buf_[i].data() : nullptr, p.numel());
  }
}

Adam::Adam(std::vector<ag::Variable> params, Options opt)
    : Optimizer(std::move(params)), opt_(opt) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::step_impl(float grad_scale) {
  ++t_;
  const double bc1 = 1.0 - std::pow(opt_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(opt_.beta2, static_cast<double>(t_));
  vec::AdamArgs s;
  s.weight_decay = static_cast<float>(opt_.weight_decay);
  s.beta1 = static_cast<float>(opt_.beta1);
  s.one_minus_beta1 = 1.f - s.beta1;
  s.beta2 = static_cast<float>(opt_.beta2);
  s.one_minus_beta2 = 1.f - s.beta2;
  s.step_size = static_cast<float>(opt_.lr / bc1);
  s.inv_bc2 = static_cast<float>(1.0 / bc2);
  s.eps = static_cast<float>(opt_.eps);
  s.grad_scale = grad_scale;
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    if (!p.has_grad()) continue;
    if (!m_[i].defined()) {
      m_[i] = Tensor::zeros(p.shape());
      v_[i] = Tensor::zeros(p.shape());
    }
    vec::adam(s, p.mutable_value().data(), p.grad().data(), m_[i].data(),
              v_[i].data(), p.numel());
  }
}

Adadelta::Adadelta(std::vector<ag::Variable> params, Options opt)
    : Optimizer(std::move(params)), opt_(opt) {
  square_avg_.resize(params_.size());
  acc_delta_.resize(params_.size());
}

void Adadelta::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    if (!p.has_grad()) continue;
    Tensor g = p.grad().clone();
    if (opt_.weight_decay != 0.0)
      g.add_(p.value(), static_cast<float>(opt_.weight_decay));
    if (!square_avg_[i].defined()) {
      square_avg_[i] = Tensor::zeros(p.shape());
      acc_delta_[i] = Tensor::zeros(p.shape());
    }
    float* sq = square_avg_[i].data();
    float* ad = acc_delta_[i].data();
    float* pp = p.mutable_value().data();
    const float* pg = g.data();
    const float rho = static_cast<float>(opt_.rho);
    const float eps = static_cast<float>(opt_.eps);
    const float lr = static_cast<float>(opt_.lr);
    for (int64_t j = 0; j < p.numel(); ++j) {
      sq[j] = rho * sq[j] + (1.f - rho) * pg[j] * pg[j];
      const float delta =
          std::sqrt(ad[j] + eps) / std::sqrt(sq[j] + eps) * pg[j];
      ad[j] = rho * ad[j] + (1.f - rho) * delta * delta;
      pp[j] -= lr * delta;
    }
  }
}

}  // namespace hfta::nn
