#include "nn/optim.h"

#include <cmath>

namespace hfta::nn {

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

SGD::SGD(std::vector<ag::Variable> params, Options opt)
    : Optimizer(std::move(params)), opt_(opt) {
  momentum_buf_.resize(params_.size());
}

void SGD::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    if (!p.has_grad()) continue;
    Tensor g = p.grad().clone();
    if (opt_.weight_decay != 0.0)
      g.add_(p.value(), static_cast<float>(opt_.weight_decay));
    if (opt_.momentum != 0.0) {
      Tensor& buf = momentum_buf_[i];
      if (!buf.defined()) {
        buf = g.clone();
      } else {
        buf.mul_(static_cast<float>(opt_.momentum));
        buf.add_(g);
      }
      g = buf;
    }
    p.mutable_value().add_(g, static_cast<float>(-opt_.lr));
  }
}

Adam::Adam(std::vector<ag::Variable> params, Options opt)
    : Optimizer(std::move(params)), opt_(opt) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(opt_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(opt_.beta2, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g0 = p.grad();
    Tensor g = g0.clone();
    if (opt_.weight_decay != 0.0)
      g.add_(p.value(), static_cast<float>(opt_.weight_decay));
    if (!m_[i].defined()) {
      m_[i] = Tensor::zeros(p.shape());
      v_[i] = Tensor::zeros(p.shape());
    }
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    float* pp = p.mutable_value().data();
    const float* pg = g.data();
    const float b1 = static_cast<float>(opt_.beta1);
    const float b2 = static_cast<float>(opt_.beta2);
    const float eps = static_cast<float>(opt_.eps);
    const float step_size = static_cast<float>(opt_.lr / bc1);
    const float inv_bc2 = static_cast<float>(1.0 / bc2);
    for (int64_t j = 0; j < p.numel(); ++j) {
      pm[j] = b1 * pm[j] + (1.f - b1) * pg[j];
      pv[j] = b2 * pv[j] + (1.f - b2) * pg[j] * pg[j];
      const float vhat = pv[j] * inv_bc2;
      pp[j] -= step_size * pm[j] / (std::sqrt(vhat) + eps);
    }
  }
}

Adadelta::Adadelta(std::vector<ag::Variable> params, Options opt)
    : Optimizer(std::move(params)), opt_(opt) {
  square_avg_.resize(params_.size());
  acc_delta_.resize(params_.size());
}

void Adadelta::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    if (!p.has_grad()) continue;
    Tensor g = p.grad().clone();
    if (opt_.weight_decay != 0.0)
      g.add_(p.value(), static_cast<float>(opt_.weight_decay));
    if (!square_avg_[i].defined()) {
      square_avg_[i] = Tensor::zeros(p.shape());
      acc_delta_[i] = Tensor::zeros(p.shape());
    }
    float* sq = square_avg_[i].data();
    float* ad = acc_delta_[i].data();
    float* pp = p.mutable_value().data();
    const float* pg = g.data();
    const float rho = static_cast<float>(opt_.rho);
    const float eps = static_cast<float>(opt_.eps);
    const float lr = static_cast<float>(opt_.lr);
    for (int64_t j = 0; j < p.numel(); ++j) {
      sq[j] = rho * sq[j] + (1.f - rho) * pg[j] * pg[j];
      const float delta =
          std::sqrt(ad[j] + eps) / std::sqrt(sq[j] + eps) * pg[j];
      ad[j] = rho * ad[j] + (1.f - rho) * delta * delta;
      pp[j] -= lr * delta;
    }
  }
}

}  // namespace hfta::nn
