#include "nn/norm.h"

#include "autograd/step_program.h"
#include "tensor/ops.h"

namespace hfta::nn {

BatchNormBase::BatchNormBase(int64_t channels, float eps, float momentum)
    : channels(channels), eps(eps), momentum(momentum) {
  weight = register_parameter("weight", Tensor::ones({channels}));
  bias = register_parameter("bias", Tensor::zeros({channels}));
  running_mean = register_buffer("running_mean", Tensor::zeros({channels}));
  running_var = register_buffer("running_var", Tensor::ones({channels}));
}

ag::Variable BatchNormBase::normalize(
    const ag::Variable& x, const std::vector<int64_t>& reduce_dims) {
  // Shape [1, C, 1, ...] for broadcasting against x.
  Shape bshape(static_cast<size_t>(x.dim()), 1);
  bshape[1] = channels;

  ag::Variable mean_v, var_v;
  if (is_training()) {
    mean_v = ag::mean(x, reduce_dims, /*keepdim=*/true);
    ag::Variable centered = ag::sub(x, mean_v);
    var_v = ag::mean(ag::mul(centered, centered), reduce_dims, true);
    // Update running stats outside the tape (PyTorch uses the unbiased
    // variance for the running buffer).
    const int64_t count = x.numel() / channels;
    Tensor batch_mean = mean_v.value().reshape({channels});
    Tensor batch_var = var_v.value().reshape({channels});
    const float unbias =
        count > 1 ? static_cast<float>(count) / static_cast<float>(count - 1)
                  : 1.f;
    // batch_mean/batch_var share storage with mean_v/var_v's pinned
    // values, so when a step program replays this effect after the mean
    // thunks refresh those buffers, the update reads current batch stats.
    // The scratch tensor replaces eager's per-step clone so replay stays
    // allocation-free; copy_ + mul_ is bit-identical to clone + mul_.
    auto update = [rm = running_mean, rv = running_var, batch_mean, batch_var,
                   scratch = Tensor(Shape{channels}), m = momentum,
                   unbias]() mutable {
      rm.mul_(1.f - m);
      rm.add_(batch_mean, m);
      rv.mul_(1.f - m);
      scratch.copy_(batch_var);
      scratch.mul_(unbias);
      rv.add_(scratch, m);
    };
    update();
    if (ag::capturing()) ag::record_side_effect(update);
  } else {
    mean_v = ag::constant(running_mean.reshape(bshape));
    var_v = ag::constant(running_var.reshape(bshape));
  }
  ag::Variable inv_std =
      ag::pow_scalar(ag::add_scalar(var_v, eps), -0.5f);
  ag::Variable xhat = ag::mul(ag::sub(x, mean_v), inv_std);
  ag::Variable w = ag::reshape(weight, bshape);
  ag::Variable b = ag::reshape(bias, bshape);
  return ag::add(ag::mul(xhat, w), b);
}

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : BatchNormBase(channels, eps, momentum) {}

ag::Variable BatchNorm2d::forward(const ag::Variable& x) {
  HFTA_CHECK(x.dim() == 4 && x.size(1) == channels,
             "BatchNorm2d: expected [N, ", channels, ", H, W], got ",
             shape_str(x.shape()));
  return normalize(x, {0, 2, 3});
}

BatchNorm1d::BatchNorm1d(int64_t channels, float eps, float momentum)
    : BatchNormBase(channels, eps, momentum) {}

ag::Variable BatchNorm1d::forward(const ag::Variable& x) {
  HFTA_CHECK((x.dim() == 2 || x.dim() == 3) && x.size(1) == channels,
             "BatchNorm1d: expected [N, ", channels, "] or [N, ", channels,
             ", L], got ", shape_str(x.shape()));
  return x.dim() == 2 ? normalize(x, {0}) : normalize(x, {0, 2});
}

LayerNorm::LayerNorm(Shape shape, float eps, Rng&)
    : normalized_shape(std::move(shape)), eps(eps) {
  weight = register_parameter("weight", Tensor::ones(normalized_shape));
  bias = register_parameter("bias", Tensor::zeros(normalized_shape));
}

ag::Variable LayerNorm::forward(const ag::Variable& x) {
  const int64_t n = static_cast<int64_t>(normalized_shape.size());
  HFTA_CHECK(x.dim() >= n, "LayerNorm: rank too small");
  std::vector<int64_t> dims;
  for (int64_t i = x.dim() - n; i < x.dim(); ++i) {
    HFTA_CHECK(x.size(i) == normalized_shape[static_cast<size_t>(i - (x.dim() - n))],
               "LayerNorm: trailing shape mismatch at dim ", i);
    dims.push_back(i);
  }
  ag::Variable mean_v = ag::mean(x, dims, /*keepdim=*/true);
  ag::Variable centered = ag::sub(x, mean_v);
  ag::Variable var_v = ag::mean(ag::mul(centered, centered), dims, true);
  ag::Variable inv_std = ag::pow_scalar(ag::add_scalar(var_v, eps), -0.5f);
  ag::Variable xhat = ag::mul(centered, inv_std);
  return ag::add(ag::mul(xhat, weight), bias);
}


namespace {
ModuleConfig batch_norm_config(const BatchNormBase& bn) {
  ModuleConfig c;
  c.set("channels", bn.channels);
  c.set("eps", static_cast<double>(bn.eps));
  c.set("momentum", static_cast<double>(bn.momentum));
  return c;
}
}  // namespace

ModuleConfig BatchNorm2d::config() const { return batch_norm_config(*this); }
ModuleConfig BatchNorm1d::config() const { return batch_norm_config(*this); }

std::shared_ptr<Module> BatchNorm2d::clone() const {
  return cloned(*this, std::make_shared<BatchNorm2d>(channels, eps, momentum));
}

std::shared_ptr<Module> BatchNorm1d::clone() const {
  return cloned(*this, std::make_shared<BatchNorm1d>(channels, eps, momentum));
}

std::shared_ptr<Module> LayerNorm::clone() const {
  Rng rng(0);
  return cloned(*this,
                std::make_shared<LayerNorm>(normalized_shape, eps, rng));
}

ModuleConfig LayerNorm::config() const {
  ModuleConfig c;
  c.set("eps", static_cast<double>(eps));
  c.dims = normalized_shape;
  return c;
}

}  // namespace hfta::nn
