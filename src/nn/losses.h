// Thin loss-module wrappers over the functional losses in autograd.
// Reduction matters to HFTA's loss-scaling rule (paper Appendix C), so it
// is a first-class constructor argument here.
#pragma once

#include "nn/module.h"

namespace hfta::nn {

using ag::Reduction;

class CrossEntropyLoss {
 public:
  explicit CrossEntropyLoss(Reduction reduction = Reduction::kMean)
      : reduction_(reduction) {}
  ag::Variable operator()(const ag::Variable& logits,
                          const Tensor& labels) const {
    return ag::cross_entropy(logits, labels, reduction_);
  }
  Reduction reduction() const { return reduction_; }

 private:
  Reduction reduction_;
};

class NLLLoss {
 public:
  explicit NLLLoss(Reduction reduction = Reduction::kMean)
      : reduction_(reduction) {}
  ag::Variable operator()(const ag::Variable& log_probs,
                          const Tensor& labels) const {
    return ag::nll_loss(log_probs, labels, reduction_);
  }
  Reduction reduction() const { return reduction_; }

 private:
  Reduction reduction_;
};

class BCEWithLogitsLoss {
 public:
  explicit BCEWithLogitsLoss(Reduction reduction = Reduction::kMean)
      : reduction_(reduction) {}
  ag::Variable operator()(const ag::Variable& logits,
                          const Tensor& targets) const {
    return ag::bce_with_logits(logits, targets, reduction_);
  }
  Reduction reduction() const { return reduction_; }

 private:
  Reduction reduction_;
};

class MSELoss {
 public:
  explicit MSELoss(Reduction reduction = Reduction::kMean)
      : reduction_(reduction) {}
  ag::Variable operator()(const ag::Variable& x, const Tensor& target) const {
    return ag::mse_loss(x, target, reduction_);
  }
  Reduction reduction() const { return reduction_; }

 private:
  Reduction reduction_;
};

}  // namespace hfta::nn
