// Weight initializers matching the PyTorch defaults the paper's models use.
#pragma once

#include "core/rng.h"
#include "tensor/tensor.h"

namespace hfta::nn::init {

/// U(-bound, bound) with bound = 1/sqrt(fan_in) — PyTorch's default for
/// Linear / Conv weights (kaiming_uniform with a = sqrt(5)).
Tensor kaiming_uniform(Shape shape, int64_t fan_in, Rng& rng);

/// U(-bound, bound).
Tensor uniform(Shape shape, float bound, Rng& rng);

/// N(mean, std) — DCGAN's initializer.
Tensor normal(Shape shape, float mean, float stddev, Rng& rng);

/// Xavier/Glorot uniform: U(+-sqrt(6/(fan_in+fan_out))).
Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng);

}  // namespace hfta::nn::init
