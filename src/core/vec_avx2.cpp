// AVX2/FMA/F16C backend of the 8-lane virtual vector machine (see vec.h).
//
// Compiled with -mavx2 -mfma -mf16c via per-source CMake flags; nothing in
// this TU executes unless vec.cpp's runtime CPU check passes (taking the
// address of the table emits no vector instructions). On toolchains without
// those flags the TU collapses to a nullptr table and the scalar backend is
// used unconditionally.
//
// Value semantics match the scalar backend bit-for-bit: vfmadd/vsqrtps are
// correctly rounded like std::fma/std::sqrt, vminps/vmaxps implement the
// agreed (a<b)?a:b / (a>b)?a:b NaN rule, and the F16C converters are patched
// on NaN lanes to reproduce the software converters in core/half.h exactly
// (vcvtph2ps quiets signaling NaNs and vcvtps2ph keeps payload bits; the
// scalar converters pass payloads through on widening and canonicalize to
// sign|0x7e00 on narrowing).
#include "core/vec.h"

#if defined(__AVX2__) && defined(__FMA__) && defined(__F16C__)

#include <immintrin.h>

#include <cstdint>

#include "core/half.h"
#include "core/vec_impl.h"

namespace hfta::vec {

namespace {

inline __m256i tail_epi32(int64_t rem) {
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(rem)), iota);
}

struct Avx2Traits {
  using V = __m256;

  static V zero() { return _mm256_setzero_ps(); }
  static V set1(float x) { return _mm256_set1_ps(x); }
  static V load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, V v) { _mm256_storeu_ps(p, v); }
  static V maskload(const float* p, int64_t rem) {
    return _mm256_maskload_ps(p, tail_epi32(rem));
  }
  static void maskstore(float* p, int64_t rem, V v) {
    _mm256_maskstore_ps(p, tail_epi32(rem), v);
  }
  static V lanemask(int64_t rem) {
    return _mm256_castsi256_ps(tail_epi32(rem));
  }
  static V select(V mask, V a, V b) { return _mm256_blendv_ps(b, a, mask); }
  static V gt(V a, V b) { return _mm256_cmp_ps(a, b, _CMP_GT_OQ); }

  static V add(V a, V b) { return _mm256_add_ps(a, b); }
  static V sub(V a, V b) { return _mm256_sub_ps(a, b); }
  static V mul(V a, V b) { return _mm256_mul_ps(a, b); }
  static V div(V a, V b) { return _mm256_div_ps(a, b); }
  static V sqrt(V a) { return _mm256_sqrt_ps(a); }
  static V fma(V a, V b, V c) { return _mm256_fmadd_ps(a, b, c); }
  static V min(V a, V b) { return _mm256_min_ps(a, b); }
  static V max(V a, V b) { return _mm256_max_ps(a, b); }
  static V neg(V a) {
    return _mm256_xor_ps(a, _mm256_set1_ps(-0.f));
  }
  static V abs(V a) {
    return _mm256_andnot_ps(_mm256_set1_ps(-0.f), a);
  }
  static V floor(V a) { return _mm256_floor_ps(a); }
  static V scale_pow2(V y, V fx) {
    __m256i k = _mm256_cvttps_epi32(fx);
    k = _mm256_add_epi32(k, _mm256_set1_epi32(127));
    k = _mm256_slli_epi32(k, 23);
    return _mm256_mul_ps(y, _mm256_castsi256_ps(k));
  }

  // Fixed cross-lane trees: (0,4)(1,5)(2,6)(3,7) -> (0,2)(1,3) -> (0,1).
  static float tree_add(V v) {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    const __m128 s = _mm_add_ps(lo, hi);
    const __m128 u = _mm_add_ps(s, _mm_movehl_ps(s, s));
    const __m128 r = _mm_add_ss(u, _mm_shuffle_ps(u, u, 0x1));
    return _mm_cvtss_f32(r);
  }
  static float tree_max(V v) {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    const __m128 s = _mm_max_ps(lo, hi);
    const __m128 u = _mm_max_ps(s, _mm_movehl_ps(s, s));
    const __m128 r = _mm_max_ss(u, _mm_shuffle_ps(u, u, 0x1));
    return _mm_cvtss_f32(r);
  }

  static V load_f16(const uint16_t* p) {
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    V f = _mm256_cvtph_ps(h);
    // vcvtph2ps quiets signaling NaNs; the scalar converter passes the
    // payload through untouched. Rebuild every NaN lane from the raw bits.
    const __m256i hw = _mm256_cvtepu16_epi32(h);
    const __m256i man = _mm256_and_si256(hw, _mm256_set1_epi32(0x3ff));
    const __m256i expf = _mm256_and_si256(hw, _mm256_set1_epi32(0x7c00));
    const __m256i isnan = _mm256_andnot_si256(
        _mm256_cmpeq_epi32(man, _mm256_setzero_si256()),
        _mm256_cmpeq_epi32(expf, _mm256_set1_epi32(0x7c00)));
    if (_mm256_movemask_epi8(isnan) != 0) {
      const __m256i sign = _mm256_slli_epi32(
          _mm256_and_si256(hw, _mm256_set1_epi32(0x8000)), 16);
      const __m256i bits = _mm256_or_si256(
          _mm256_or_si256(sign, _mm256_set1_epi32(0x7f800000)),
          _mm256_slli_epi32(man, 13));
      f = _mm256_blendv_ps(f, _mm256_castsi256_ps(bits),
                           _mm256_castsi256_ps(isnan));
    }
    return f;
  }
  static V load_bf16(const uint16_t* p) {
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16));
  }

  /// f16_bits_to_f32(f32_to_f16_bits(x)) per lane: vcvtps2ph(RNE) +
  /// vcvtph2ps for the numeric lanes; NaN lanes are rebuilt from the scalar
  /// composition (canonical sign|0x7e00 narrowed then widened to
  /// sign|0x7fc00000 — a per-lane constant, so the patch stays vectorized).
  static V quantize_f16(V a) {
    const __m128i h = _mm256_cvtps_ph(a, _MM_FROUND_TO_NEAREST_INT |
                                             _MM_FROUND_NO_EXC);
    V r = _mm256_cvtph_ps(h);
    const V isnan = _mm256_cmp_ps(a, a, _CMP_UNORD_Q);
    if (_mm256_movemask_ps(isnan) != 0) {
      const __m256i sign = _mm256_and_si256(_mm256_castps_si256(a),
                                            _mm256_set1_epi32(
                                                static_cast<int>(0x80000000u)));
      const __m256i canon =
          _mm256_or_si256(sign, _mm256_set1_epi32(0x7fc00000));
      r = _mm256_blendv_ps(r, _mm256_castsi256_ps(canon), isnan);
    }
    return r;
  }
  /// bf16_bits_to_f32(f32_to_bf16_bits(x)) per lane, entirely in-register:
  /// the RNE carry trick masked back to the top 16 bits (widening is <<16,
  /// so no narrow/re-widen shuffle is needed); NaN lanes take the scalar
  /// converter's (x>>16)|0x40 composition.
  static V quantize_bf16(V a) {
    const __m256i x = _mm256_castps_si256(a);
    const __m256i lsb = _mm256_and_si256(_mm256_srli_epi32(x, 16),
                                         _mm256_set1_epi32(1));
    const __m256i rne = _mm256_and_si256(
        _mm256_add_epi32(x, _mm256_add_epi32(_mm256_set1_epi32(0x7fff), lsb)),
        _mm256_set1_epi32(static_cast<int>(0xffff0000u)));
    const __m256i nanv = _mm256_or_si256(
        _mm256_and_si256(x, _mm256_set1_epi32(static_cast<int>(0xffff0000u))),
        _mm256_set1_epi32(0x00400000));
    // NaN detect via unordered FP compare: one op, and it runs on the FP
    // ports while the integer RNE chain occupies the ALU ports.
    const __m256i isnan =
        _mm256_castps_si256(_mm256_cmp_ps(a, a, _CMP_UNORD_Q));
    return _mm256_castsi256_ps(_mm256_blendv_epi8(rne, nanv, isnan));
  }

  static V or_(V a, V b) { return _mm256_or_ps(a, b); }

  /// Per-lane mask: all-ones where the lane is inf/NaN (exponent field all
  /// ones), zero otherwise. All-ones is itself a NaN bit pattern, so masks
  /// OR-accumulated across strips collapse to one any_nonfinite call.
  static V nonfinite_mask(V a) {
    const __m256i expo = _mm256_and_si256(_mm256_castps_si256(a),
                                          _mm256_set1_epi32(0x7f800000));
    return _mm256_castsi256_ps(
        _mm256_cmpeq_epi32(expo, _mm256_set1_epi32(0x7f800000)));
  }

  /// True when any lane is inf/NaN (exponent field all ones).
  static bool any_nonfinite(V a) {
    const __m256i expo = _mm256_and_si256(_mm256_castps_si256(a),
                                          _mm256_set1_epi32(0x7f800000));
    const __m256i hit =
        _mm256_cmpeq_epi32(expo, _mm256_set1_epi32(0x7f800000));
    return _mm256_movemask_epi8(hit) != 0;
  }
};

void cast_f32_to_f16_avx2(const float* src, uint16_t* dst, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 v = _mm256_loadu_ps(src + i);
    const __m128i h = _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT |
                                             _MM_FROUND_NO_EXC);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
    // vcvtps2ph keeps truncated NaN payloads; the software converter
    // canonicalizes to sign|0x7e00. NaNs are rare — patch lanes scalar.
    const int nanmask =
        _mm256_movemask_ps(_mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    if (nanmask != 0) {
      for (int l = 0; l < kLanes; ++l)
        if (nanmask & (1 << l)) dst[i + l] = f32_to_f16_bits(src[i + l]);
    }
  }
  for (; i < n; ++i) dst[i] = f32_to_f16_bits(src[i]);
}

void cast_f16_to_f32_avx2(const uint16_t* src, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes)
    _mm256_storeu_ps(dst + i, Avx2Traits::load_f16(src + i));
  for (; i < n; ++i) dst[i] = f16_bits_to_f32(src[i]);
}

void cast_f32_to_bf16_avx2(const float* src, uint16_t* dst, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // RNE carry trick, entirely in integer ops (identical to the scalar
    // converter by construction).
    const __m256i lsb = _mm256_and_si256(_mm256_srli_epi32(x, 16),
                                         _mm256_set1_epi32(1));
    __m256i rne = _mm256_add_epi32(
        x, _mm256_add_epi32(_mm256_set1_epi32(0x7fff), lsb));
    rne = _mm256_srli_epi32(rne, 16);
    const __m256i nanv = _mm256_or_si256(_mm256_srli_epi32(x, 16),
                                         _mm256_set1_epi32(0x40));
    const __m256i absx = _mm256_and_si256(x, _mm256_set1_epi32(0x7fffffff));
    const __m256i isnan =
        _mm256_cmpgt_epi32(absx, _mm256_set1_epi32(0x7f800000));
    const __m256i r = _mm256_blendv_epi8(rne, nanv, isnan);
    // Narrow the 8 dwords (each <= 0xffff) to 8 words.
    const __m256i packed = _mm256_packus_epi32(r, r);
    const __m256i perm = _mm256_permute4x64_epi64(packed, 0x08);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm256_castsi256_si128(perm));
  }
  for (; i < n; ++i) dst[i] = f32_to_bf16_bits(src[i]);
}

void cast_bf16_to_f32_avx2(const uint16_t* src, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes)
    _mm256_storeu_ps(dst + i, Avx2Traits::load_bf16(src + i));
  for (; i < n; ++i) dst[i] = bf16_bits_to_f32(src[i]);
}

}  // namespace

const VecOps* vec_avx2_ops_table() {
  static const VecOps ops = [] {
    VecOps o = detail::Kern<Avx2Traits>::table();
    o.cast_f32_to_f16 = &cast_f32_to_f16_avx2;
    o.cast_f16_to_f32 = &cast_f16_to_f32_avx2;
    o.cast_f32_to_bf16 = &cast_f32_to_bf16_avx2;
    o.cast_bf16_to_f32 = &cast_bf16_to_f32_avx2;
    return o;
  }();
  return &ops;
}

}  // namespace hfta::vec

#else  // no AVX2 toolchain support: scalar backend only

namespace hfta::vec {
const VecOps* vec_avx2_ops_table() { return nullptr; }
}  // namespace hfta::vec

#endif
