#include "core/rng.h"

#include <cmath>

#include "core/check.h"

namespace hfta {

uint64_t Rng::next_u64() {
  // splitmix64 (Steele, Lea, Flood 2014).
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int64_t Rng::uniform_int(int64_t n) {
  HFTA_CHECK(n > 0, "uniform_int needs n > 0, got ", n);
  return static_cast<int64_t>(next_u64() % static_cast<uint64_t>(n));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

void Rng::shuffle(std::vector<int64_t>& v) {
  for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
    const int64_t j = uniform_int(i + 1);
    std::swap(v[i], v[j]);
  }
}

Rng Rng::split() { return Rng(next_u64() ^ 0xA5A5A5A5A5A5A5A5ull); }

double hash_to_unit(uint64_t key) {
  Rng r(key);
  return r.uniform();
}

uint64_t hash_combine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9E3779B97F4A7C15ull + (seed << 12) + (seed >> 4));
}

}  // namespace hfta
