// Scalar emulation of the 8-lane virtual vector machine (see vec.h).
//
// Each trait op mirrors its AVX2 counterpart's value semantics exactly:
// std::fma / std::sqrt are correctly rounded (bit-identical to
// vfmadd/vsqrtps), min/max use the vminps/vmaxps selection rule, and masked
// loads zero the dead lanes like vmaskmovps. This backend exists for the
// HFTA_SIMD=0 A/B equality tests and for hosts without AVX2 — it is not
// expected to be fast.
#include <cmath>
#include <cstdint>

#include "core/half.h"
#include "core/vec.h"
#include "core/vec_impl.h"

namespace hfta::vec {

namespace {

struct ScalarTraits {
  struct V {
    float l[kLanes];
  };

  static V zero() {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = 0.f;
    return v;
  }
  static V set1(float x) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = x;
    return v;
  }
  static V load(const float* p) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = p[i];
    return v;
  }
  static void store(float* p, V v) {
    for (int i = 0; i < kLanes; ++i) p[i] = v.l[i];
  }
  static V maskload(const float* p, int64_t rem) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = i < rem ? p[i] : 0.f;
    return v;
  }
  static void maskstore(float* p, int64_t rem, V v) {
    for (int i = 0; i < kLanes && i < rem; ++i) p[i] = v.l[i];
  }
  /// All-ones mask for lanes < rem (represented as 1.0f selectors here; only
  /// ever consumed by select()).
  static V lanemask(int64_t rem) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = i < rem ? 1.f : 0.f;
    return v;
  }
  static V select(V mask, V a, V b) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = mask.l[i] != 0.f ? a.l[i] : b.l[i];
    return v;
  }
  static V gt(V a, V b) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] > b.l[i] ? 1.f : 0.f;
    return v;
  }

  static V add(V a, V b) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] + b.l[i];
    return v;
  }
  static V sub(V a, V b) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] - b.l[i];
    return v;
  }
  static V mul(V a, V b) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] * b.l[i];
    return v;
  }
  static V div(V a, V b) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] / b.l[i];
    return v;
  }
  static V sqrt(V a) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = std::sqrt(a.l[i]);
    return v;
  }
  static V fma(V a, V b, V c) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = std::fma(a.l[i], b.l[i], c.l[i]);
    return v;
  }
  // vminps/vmaxps selection semantics: NaN in either operand selects b.
  static V min(V a, V b) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] < b.l[i] ? a.l[i] : b.l[i];
    return v;
  }
  static V max(V a, V b) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] > b.l[i] ? a.l[i] : b.l[i];
    return v;
  }
  static V neg(V a) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = -a.l[i];
    return v;
  }
  static V abs(V a) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = std::fabs(a.l[i]);
    return v;
  }
  static V floor(V a) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = std::floor(a.l[i]);
    return v;
  }
  /// y * 2^(int)fx for integral-valued fx in the exp range (-126..127).
  static V scale_pow2(V y, V fx) {
    V v;
    for (int i = 0; i < kLanes; ++i) {
      const int32_t k = static_cast<int32_t>(fx.l[i]);
      v.l[i] = y.l[i] * bits_f32(static_cast<uint32_t>(k + 127) << 23);
    }
    return v;
  }

  // Fixed cross-lane trees: (0,4)(1,5)(2,6)(3,7) -> (0,2)(1,3) -> (0,1).
  static float tree_add(V v) {
    const float t0 = v.l[0] + v.l[4], t1 = v.l[1] + v.l[5];
    const float t2 = v.l[2] + v.l[6], t3 = v.l[3] + v.l[7];
    const float u0 = t0 + t2, u1 = t1 + t3;
    return u0 + u1;
  }
  static float tree_max(V v) {
    const auto mx = [](float a, float b) { return a > b ? a : b; };
    const float t0 = mx(v.l[0], v.l[4]), t1 = mx(v.l[1], v.l[5]);
    const float t2 = mx(v.l[2], v.l[6]), t3 = mx(v.l[3], v.l[7]);
    return mx(mx(t0, t2), mx(t1, t3));
  }

  static V load_f16(const uint16_t* p) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = f16_bits_to_f32(p[i]);
    return v;
  }
  static V load_bf16(const uint16_t* p) {
    V v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = bf16_bits_to_f32(p[i]);
    return v;
  }

  // Quantize-on-pack: RNE round trip through the half format, per lane —
  // the reference composition the AVX2 ops reproduce.
  static V quantize_f16(V a) {
    V v;
    for (int i = 0; i < kLanes; ++i)
      v.l[i] = f16_bits_to_f32(f32_to_f16_bits(a.l[i]));
    return v;
  }
  static V quantize_bf16(V a) {
    V v;
    for (int i = 0; i < kLanes; ++i)
      v.l[i] = bf16_bits_to_f32(f32_to_bf16_bits(a.l[i]));
    return v;
  }

  static V or_(V a, V b) {
    V v;
    for (int i = 0; i < kLanes; ++i) {
      const uint32_t x = f32_bits(a.l[i]) | f32_bits(b.l[i]);
      std::memcpy(&v.l[i], &x, sizeof(float));
    }
    return v;
  }

  /// Per-lane mask: all-ones where the lane is inf/NaN, zero otherwise —
  /// the same composition the AVX2 backend runs, so OR-accumulated verdicts
  /// agree on every input.
  static V nonfinite_mask(V a) {
    V v;
    for (int i = 0; i < kLanes; ++i) {
      const uint32_t x =
          (f32_bits(a.l[i]) & 0x7f800000u) == 0x7f800000u ? 0xffffffffu : 0u;
      std::memcpy(&v.l[i], &x, sizeof(float));
    }
    return v;
  }

  /// True when any lane is inf/NaN (exponent field all ones) — the same bit
  /// test the AVX2 backend runs, so the verdicts agree on every input.
  static bool any_nonfinite(V a) {
    for (int i = 0; i < kLanes; ++i)
      if ((f32_bits(a.l[i]) & 0x7f800000u) == 0x7f800000u) return true;
    return false;
  }
};

void cast_f32_to_f16_scalar(const float* src, uint16_t* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = f32_to_f16_bits(src[i]);
}
void cast_f16_to_f32_scalar(const uint16_t* src, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = f16_bits_to_f32(src[i]);
}
void cast_f32_to_bf16_scalar(const float* src, uint16_t* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = f32_to_bf16_bits(src[i]);
}
void cast_bf16_to_f32_scalar(const uint16_t* src, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = bf16_bits_to_f32(src[i]);
}

}  // namespace

const VecOps* vec_scalar_ops() {
  static const VecOps ops = [] {
    VecOps o = detail::Kern<ScalarTraits>::table();
    o.cast_f32_to_f16 = &cast_f32_to_f16_scalar;
    o.cast_f16_to_f32 = &cast_f16_to_f32_scalar;
    o.cast_f32_to_bf16 = &cast_f32_to_bf16_scalar;
    o.cast_bf16_to_f32 = &cast_bf16_to_f32_scalar;
    return o;
  }();
  return &ops;
}

}  // namespace hfta::vec
