// Deterministic random number generation.
//
// All randomness in hfta-cpp flows through hfta::Rng so that experiments,
// tests and the synthetic data generators are reproducible bit-for-bit
// given a seed. The generator is splitmix64 (fast, passes BigCrush for the
// purposes of synthetic data / weight init).
#pragma once

#include <cstdint>
#include <vector>

namespace hfta {

/// Deterministic pseudo-random generator (splitmix64 core).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n) — n must be > 0.
  int64_t uniform_int(int64_t n);
  /// Standard normal via Box-Muller.
  double normal();
  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);
  /// Bernoulli with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<int64_t>& v);

  /// Derive an independent child stream (for per-model / per-worker seeds).
  Rng split();

 private:
  uint64_t state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Stateless hash of a 64-bit key to [0,1) — used for deterministic
/// synthetic response surfaces (e.g. HFHT validation accuracy).
double hash_to_unit(uint64_t key);

/// Combine hash keys (boost::hash_combine style, 64-bit).
uint64_t hash_combine(uint64_t seed, uint64_t v);

}  // namespace hfta
