// Shared thread pool + deterministic parallel_for used by the tensor kernels.
//
// Kernels do not guess a `grain` anymore. They build a Partition — a chunked
// view of an index range whose boundaries are a PURE FUNCTION of the problem
// size (never of the worker count) — and launch it:
//
//   parallel_for(Partition::rows(m), [&](int64_t lo, int64_t hi) { ... });
//
// Workers claim whole chunks from an atomic cursor, so scheduling is dynamic
// but the *work decomposition* is fixed: the same problem always splits at
// the same boundaries whether HFTA_NUM_THREADS is 1 or 64. Combined with the
// kernel-side rule that parallel loops only ever range over independent
// output coordinates (no floating-point accumulation chain is ever split
// across chunks), training results are bit-identical at every thread count —
// the invariant that makes the repo's fused-vs-serial 0.00e+00 audits
// meaningful on multi-core hosts.
//
// The callback may observe a union of consecutive chunks (the single-thread
// and nested paths pass the whole range in one call), so it must treat
// [lo, hi) as "some consecutive chunks", not "exactly one chunk". That is
// automatic for output-coordinate loops.
//
// The callback is a FunctionRef, not a std::function: parallel_for sits on
// the launch path of every multi-threaded kernel, and std::function's
// conversion heap-allocated a copy of each call site's closure per launch.
// FunctionRef borrows the caller's lambda instead (parallel_for blocks, so
// the reference always outlives the call) — zero allocations per launch.
#pragma once

#include <cstdint>

#include "core/function_ref.h"

namespace hfta {

/// A fixed decomposition of [begin, end) into equal-width chunks. The chunk
/// width depends only on the range and the requested minimum work per chunk
/// — NOT on the number of worker threads — so two runs over the same problem
/// always see the same boundaries.
struct Partition {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk = 1;  // fixed chunk width (>= 1)

  /// Upper bound on chunks per launch. A constant (not the thread count!):
  /// enough slack for dynamic load balancing on any realistic core count
  /// while keeping per-launch cursor traffic trivial.
  static constexpr int64_t kTargetChunks = 32;

  int64_t range() const { return end - begin; }
  int64_t num_chunks() const {
    const int64_t n = range();
    return n <= 0 ? 0 : (n + chunk - 1) / chunk;
  }

  /// Decomposition for coarse units of work (GEMM rows, batch entries,
  /// pooling planes): any unit may stand alone in a chunk.
  static Partition rows(int64_t n) { return range(0, n, 1); }

  /// Decomposition for fine elementwise work: chunks hold at least ~16k
  /// elements so the launch overhead never dominates.
  static Partition elems(int64_t n) { return range(0, n, int64_t{1} << 14); }

  /// General form: chunks of at least `min_per_chunk` indices, at most
  /// kTargetChunks chunks.
  static Partition range(int64_t begin, int64_t end, int64_t min_per_chunk);

  /// Index of the chunk starting at `lo` (the first argument of a
  /// parallel_for callback). Kernels that need scratch must acquire one
  /// slab of num_chunks() slots on the launching thread and address it by
  /// this index: acquiring pool storage from inside the body would park
  /// buffers in whichever worker cache ran the chunk, making warm-pool
  /// state (and the zero-alloc steady state) depend on scheduling.
  int64_t chunk_index(int64_t lo) const { return (lo - begin) / chunk; }
};

/// Number of execution lanes parallel_for may use (>= 1; the calling thread
/// participates, so this counts it).
int num_threads();

/// Overrides the lane count at runtime (clamped to [1, 64]). Workers are
/// spawned lazily; lowering the count parks the excess workers rather than
/// joining them. Results are bit-identical at any setting — this exists for
/// thread-count-invariance tests and the bench --threads sweep. Not
/// thread-safe against concurrent parallel_for calls.
void set_num_threads(int n);

/// Runs fn over the partition's chunks across the thread pool; blocks until
/// all complete. fn may receive a union of consecutive chunks. Runs inline
/// (one call with the whole range) when the partition has a single chunk,
/// only one lane is configured, or the caller is already inside a
/// parallel_for.
void parallel_for(const Partition& p, FunctionRef<void(int64_t, int64_t)> fn);

}  // namespace hfta
