// Shared thread pool + parallel_for used by the tensor kernels.
//
// The pool is created lazily on first use with hardware_concurrency()
// threads (capped; override with HFTA_NUM_THREADS env var). parallel_for
// splits [begin, end) into contiguous chunks, one per worker, and blocks
// until all complete. Nested parallel_for calls run the nested loop inline
// (no oversubscription).
//
// The callback is a FunctionRef, not a std::function: parallel_for sits on
// the launch path of every multi-threaded kernel, and std::function's
// conversion heap-allocated a copy of each call site's closure per launch.
// FunctionRef borrows the caller's lambda instead (parallel_for blocks, so
// the reference always outlives the call) — zero allocations per launch.
#pragma once

#include <cstdint>

#include "core/function_ref.h"

namespace hfta {

/// Number of worker threads the pool uses (>= 1).
int num_threads();

/// Runs fn(begin_i, end_i) on contiguous subranges of [begin, end) across
/// the thread pool. Falls back to a single inline call when the range is
/// small (< grain) or when invoked from inside another parallel_for.
void parallel_for(int64_t begin, int64_t end,
                  FunctionRef<void(int64_t, int64_t)> fn,
                  int64_t grain = 1024);

}  // namespace hfta
