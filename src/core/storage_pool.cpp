#include "core/storage_pool.h"

#include <algorithm>
#include <cstring>

namespace hfta {

namespace {

constexpr int64_t kMinBucket = 64;  // floats; 256 B

// Smallest power-of-two bucket >= n (>= kMinBucket).
int64_t bucket_for(int64_t n) {
  int64_t b = kMinBucket;
  while (b < n) b <<= 1;
  return b;
}

}  // namespace

StoragePool& StoragePool::instance() {
  static StoragePool* pool = new StoragePool();  // leaked by design
  return *pool;
}

std::shared_ptr<float> StoragePool::acquire(int64_t numel, bool zeroed) {
  const int64_t cap = bucket_for(numel);
  float* p = nullptr;
  bool pooled = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (enabled_) {
      auto it = free_.find(cap);
      if (it != free_.end() && !it->second.empty()) {
        p = it->second.back();
        it->second.pop_back();
        ++stats_.pool_hits;
        stats_.cached_buffers -= 1;
        stats_.cached_bytes -= static_cast<uint64_t>(cap) * sizeof(float);
      }
      pooled = true;  // route the release back here either way
    }
    if (p == nullptr) {
      ++stats_.heap_allocs;
      stats_.heap_bytes += static_cast<uint64_t>(cap) * sizeof(float);
    }
  }
  if (p == nullptr) p = new float[static_cast<size_t>(cap)];
  if ((zeroed || zero_fill_all_) && numel > 0)
    std::memset(p, 0, sizeof(float) * static_cast<size_t>(numel));
  if (pooled) {
    StoragePool* self = this;
    return std::shared_ptr<float>(
        p, [self, cap](float* q) { self->release(q, cap); });
  }
  return std::shared_ptr<float>(p, [](float* q) { delete[] q; });
}

void StoragePool::release(float* p, int64_t capacity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (enabled_) {
      free_[capacity].push_back(p);
      stats_.cached_buffers += 1;
      stats_.cached_bytes += static_cast<uint64_t>(capacity) * sizeof(float);
      return;
    }
  }
  delete[] p;
}

void StoragePool::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

StoragePool::Stats StoragePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void StoragePool::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.heap_allocs = 0;
  stats_.heap_bytes = 0;
  stats_.pool_hits = 0;
}

void StoragePool::trim() {
  std::unordered_map<int64_t, std::vector<float*>> lists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lists.swap(free_);
    stats_.cached_buffers = 0;
    stats_.cached_bytes = 0;
  }
  for (auto& [cap, vec] : lists) {
    (void)cap;
    for (float* p : vec) delete[] p;
  }
}

// ---- IterationScope ---------------------------------------------------------

namespace {
uint64_t g_last_scope_allocs = 0;
uint64_t g_last_scope_hits = 0;
uint64_t g_last_scope_nodes = 0;
}  // namespace

IterationScope::IterationScope()
    : start_(StoragePool::instance().stats()),
      start_nodes_(counters::node_constructions()) {}

IterationScope::~IterationScope() {
  g_last_scope_allocs = heap_allocs();
  g_last_scope_hits = pool_hits();
  g_last_scope_nodes = node_constructions();
}

uint64_t IterationScope::heap_allocs() const {
  return StoragePool::instance().stats().heap_allocs - start_.heap_allocs;
}

uint64_t IterationScope::pool_hits() const {
  return StoragePool::instance().stats().pool_hits - start_.pool_hits;
}

uint64_t IterationScope::node_constructions() const {
  return counters::node_constructions() - start_nodes_;
}

uint64_t IterationScope::last_heap_allocs() { return g_last_scope_allocs; }
uint64_t IterationScope::last_pool_hits() { return g_last_scope_hits; }
uint64_t IterationScope::last_node_constructions() {
  return g_last_scope_nodes;
}

}  // namespace hfta
