#include "core/storage_pool.h"

#include <algorithm>
#include <cstring>
#include <new>

namespace hfta {

namespace {

constexpr int64_t kMinBucket = 64;  // floats; 256 B

// Smallest power-of-two bucket >= n (>= kMinBucket).
int64_t bucket_for(int64_t n) {
  int64_t b = kMinBucket;
  while (b < n) b <<= 1;
  return b;
}

void heap_free(StorageBlock* b) {
  b->~StorageBlock();
  ::operator delete(static_cast<void*>(b),
                    std::align_val_t{alignof(StorageBlock)});
}

}  // namespace

StoragePool& StoragePool::instance() {
  static StoragePool* pool = new StoragePool();  // leaked by design
  return *pool;
}

namespace {
// Trivially destructible, so reading it stays valid after the holder's
// destructor ran (releases during static teardown fall back to the shared
// buckets instead of touching a destroyed thread_local).
thread_local bool t_cache_dead = false;
}  // namespace

StoragePool::ThreadCache* StoragePool::local_cache() {
  if (t_cache_dead) return nullptr;
  // Registered on first use; the holder's destructor runs at thread exit
  // and hands any parked buffers back to the shared buckets (the pool is a
  // leaked singleton, so this is safe even during late teardown).
  thread_local struct Holder {
    std::shared_ptr<ThreadCache> cache = std::make_shared<ThreadCache>();
    Holder() {
      StoragePool& p = StoragePool::instance();
      std::lock_guard<std::mutex> lk(p.registry_mu_);
      p.caches_.push_back(cache);
    }
    ~Holder() {
      t_cache_dead = true;
      StoragePool& p = StoragePool::instance();
      p.flush_cache(cache);
      std::lock_guard<std::mutex> lk(p.registry_mu_);
      auto& v = p.caches_;
      v.erase(std::remove(v.begin(), v.end(), cache), v.end());
    }
  } holder;
  return holder.cache.get();
}

void StoragePool::flush_cache(const std::shared_ptr<ThreadCache>& cache) {
  std::unordered_map<int64_t, std::vector<StorageBlock*>> lists;
  {
    std::lock_guard<std::mutex> lk(cache->mu);
    lists.swap(cache->lists);
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [cap, vec] : lists) {
    auto& dst = free_[cap];
    dst.insert(dst.end(), vec.begin(), vec.end());
  }
}

StorageBlock* StoragePool::steal(int64_t capacity, const ThreadCache* self) {
  std::lock_guard<std::mutex> rlk(registry_mu_);
  for (const auto& c : caches_) {
    if (c.get() == self) continue;
    std::lock_guard<std::mutex> lk(c->mu);
    auto it = c->lists.find(capacity);
    if (it != c->lists.end() && !it->second.empty()) {
      StorageBlock* b = it->second.back();
      it->second.pop_back();
      return b;
    }
  }
  return nullptr;
}

StorageBlock* StoragePool::heap_alloc(int64_t capacity) {
  heap_allocs_.fetch_add(1, std::memory_order_relaxed);
  heap_bytes_.fetch_add(static_cast<uint64_t>(capacity) * sizeof(float),
                        std::memory_order_relaxed);
  void* mem = ::operator new(
      sizeof(StorageBlock) + sizeof(float) * static_cast<size_t>(capacity),
      std::align_val_t{alignof(StorageBlock)});
  return new (mem) StorageBlock{{0}, capacity, false};
}

StorageRef StoragePool::acquire(int64_t numel, bool zeroed) {
  const int64_t cap = bucket_for(numel);
  const bool enabled = enabled_.load(std::memory_order_relaxed);
  StorageBlock* b = nullptr;
  if (enabled) {
    ThreadCache* tc = local_cache();
    if (tc != nullptr) {
      // Own cache first: uncontended unless a sibling is mid-steal.
      std::lock_guard<std::mutex> lk(tc->mu);
      auto it = tc->lists.find(cap);
      if (it != tc->lists.end() && !it->second.empty()) {
        b = it->second.back();
        it->second.pop_back();
      }
    }
    if (b == nullptr) {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = free_.find(cap);
      if (it != free_.end() && !it->second.empty()) {
        b = it->second.back();
        it->second.pop_back();
      }
    }
    // Steal before allocating: with dynamic chunk->thread scheduling a
    // buffer may have been freed on any lane, and the zero-warm-step-alloc
    // invariant must not depend on which lane freed it.
    if (b == nullptr) b = steal(cap, tc);
    if (b != nullptr) {
      pool_hits_.fetch_add(1, std::memory_order_relaxed);
      cached_buffers_.fetch_sub(1, std::memory_order_relaxed);
      cached_bytes_.fetch_sub(static_cast<uint64_t>(cap) * sizeof(float),
                              std::memory_order_relaxed);
    }
  }
  if (b == nullptr) b = heap_alloc(cap);
  b->refs.store(1, std::memory_order_relaxed);
  b->pooled = enabled;
  if ((zeroed || zero_fill_all_.load(std::memory_order_relaxed)) && numel > 0)
    std::memset(b->payload(), 0, sizeof(float) * static_cast<size_t>(numel));
  return StorageRef(b);
}

void StoragePool::release(StorageBlock* b) {
  if (!b->pooled || !enabled_.load(std::memory_order_relaxed)) {
    heap_free(b);
    return;
  }
  const int64_t cap = b->capacity;
  ThreadCache* tc = local_cache();
  if (tc != nullptr) {
    std::lock_guard<std::mutex> lk(tc->mu);
    auto& list = tc->lists[cap];
    if (list.size() < kMaxCachedPerBucket) {
      list.push_back(b);
      b = nullptr;
    }
  }
  if (b != nullptr) {
    // Per-thread list full: spill to the shared buckets.
    std::lock_guard<std::mutex> lk(mu_);
    free_[cap].push_back(b);
  }
  cached_buffers_.fetch_add(1, std::memory_order_relaxed);
  cached_bytes_.fetch_add(static_cast<uint64_t>(cap) * sizeof(float),
                          std::memory_order_relaxed);
}

void StoragePool::set_config(const Config& c) {
  enabled_.store(c.enabled, std::memory_order_relaxed);
  zero_fill_all_.store(c.zero_fill_all, std::memory_order_relaxed);
}

StoragePool::Config StoragePool::config() const {
  Config c;
  c.enabled = enabled_.load(std::memory_order_relaxed);
  c.zero_fill_all = zero_fill_all_.load(std::memory_order_relaxed);
  return c;
}

StoragePool::Stats StoragePool::stats() const {
  Stats s;
  s.heap_allocs = heap_allocs_.load(std::memory_order_relaxed);
  s.heap_bytes = heap_bytes_.load(std::memory_order_relaxed);
  s.pool_hits = pool_hits_.load(std::memory_order_relaxed);
  s.cached_buffers = cached_buffers_.load(std::memory_order_relaxed);
  s.cached_bytes = cached_bytes_.load(std::memory_order_relaxed);
  return s;
}

void StoragePool::reset_stats() {
  heap_allocs_.store(0, std::memory_order_relaxed);
  heap_bytes_.store(0, std::memory_order_relaxed);
  pool_hits_.store(0, std::memory_order_relaxed);
}

void StoragePool::trim() {
  std::vector<StorageBlock*> victims;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [cap, vec] : free_) {
      (void)cap;
      victims.insert(victims.end(), vec.begin(), vec.end());
    }
    free_.clear();
  }
  std::vector<std::shared_ptr<ThreadCache>> caches;
  {
    std::lock_guard<std::mutex> lk(registry_mu_);
    caches = caches_;
  }
  for (const auto& c : caches) {
    std::lock_guard<std::mutex> lk(c->mu);
    for (auto& [cap, vec] : c->lists) {
      (void)cap;
      victims.insert(victims.end(), vec.begin(), vec.end());
    }
    c->lists.clear();
  }
  for (StorageBlock* b : victims) {
    cached_buffers_.fetch_sub(1, std::memory_order_relaxed);
    cached_bytes_.fetch_sub(static_cast<uint64_t>(b->capacity) * sizeof(float),
                            std::memory_order_relaxed);
    heap_free(b);
  }
}

// ---- IterationScope ---------------------------------------------------------

namespace {
IterationScope::Stats g_last_scope;
}  // namespace

IterationScope::IterationScope()
    : start_(StoragePool::instance().stats()),
      start_nodes_(counters::node_constructions()) {}

IterationScope::~IterationScope() { g_last_scope = stats(); }

IterationScope::Stats IterationScope::stats() const {
  const StoragePool::Stats now = StoragePool::instance().stats();
  Stats s;
  s.heap_allocs = now.heap_allocs - start_.heap_allocs;
  s.heap_bytes = now.heap_bytes - start_.heap_bytes;
  s.pool_hits = now.pool_hits - start_.pool_hits;
  s.node_constructions = counters::node_constructions() - start_nodes_;
  return s;
}

IterationScope::Stats IterationScope::last() { return g_last_scope; }

}  // namespace hfta
