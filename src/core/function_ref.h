// Non-owning callable reference (a two-word {object pointer, trampoline}
// pair), for hot-path APIs that take a callback, invoke it synchronously,
// and never store it. std::function at such a boundary type-erases by
// heap-allocating a copy of the closure on every call site conversion —
// parallel_for paid that allocation per kernel launch. FunctionRef erases
// without owning: the callee borrows the caller's closure, so the only
// cost is an indirect call. The referenced callable must outlive the call
// (trivially true for blocking APIs like parallel_for).
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace hfta {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT: implicit by design (call-site lambdas)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace hfta
