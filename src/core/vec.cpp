// Backend dispatch for the vec layer, plus the strided-row reduction
// fallbacks and the scalar reference exp.
//
// Backend choice is made once (first use): the AVX2 table when it was
// compiled in, the CPU reports avx2+fma+f16c, and HFTA_SIMD is not "0";
// the scalar table otherwise. set_simd_enabled() overrides at runtime for
// in-process A/B equality tests. This TU is compiled with baseline flags, so
// the CPU check itself never executes a vector instruction.
#include "core/vec.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "core/half.h"
#include "core/storage_pool.h"

namespace hfta::vec {

namespace {

const VecOps* pick_backend() {
  const VecOps* avx2 = vec_avx2_ops_table();
  if (avx2 == nullptr) return vec_scalar_ops();
#if defined(__x86_64__) || defined(__i386__)
  if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma") ||
      !__builtin_cpu_supports("f16c"))
    return vec_scalar_ops();
#else
  return vec_scalar_ops();
#endif
  const char* env = std::getenv("HFTA_SIMD");
  if (env != nullptr && env[0] == '0') return vec_scalar_ops();
  return avx2;
}

const VecOps* detected() {
  static const VecOps* backend = pick_backend();  // thread-safe magic static
  return backend;
}

std::atomic<const VecOps*> g_override{nullptr};

inline const VecOps* active() {
  const VecOps* o = g_override.load(std::memory_order_relaxed);
  return o != nullptr ? o : detected();
}

}  // namespace

bool simd_available() {
  const VecOps* avx2 = vec_avx2_ops_table();
  if (avx2 == nullptr) return false;
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

bool simd_active() { return active() != vec_scalar_ops(); }

const char* simd_name() { return simd_active() ? "avx2" : "scalar"; }

bool set_simd_enabled(bool on) {
  if (!on) {
    g_override.store(vec_scalar_ops(), std::memory_order_relaxed);
  } else if (simd_available()) {
    g_override.store(vec_avx2_ops_table(), std::memory_order_relaxed);
  } else {
    g_override.store(vec_scalar_ops(), std::memory_order_relaxed);
  }
  return simd_active();
}

// -- gemm ---------------------------------------------------------------------

int64_t gemm_scratch_floats(int64_t m, int64_t n, int64_t k) {
  if (m <= 0 || n <= 0 || k <= 0) return 0;
  const int64_t mb = (m + kMR - 1) / kMR;
  const int64_t nb = (n + kNR - 1) / kNR;
  const int64_t kcp = k < kKC ? k : kKC;
  return mb * kMR * kcp + nb * kNR * kcp;
}

void gemm(const GemmArgs& args) {
  if (args.scratch != nullptr) {
    active()->gemm(args, args.scratch);
    return;
  }
  // Top-level call: acquire packing scratch here (the launching thread),
  // never inside a parallel body (DESIGN §10).
  PooledBuffer buf(gemm_scratch_floats(args.m, args.n, args.k));
  active()->gemm(args, buf.data());
}

// -- range kernels ------------------------------------------------------------

void binary(BinOp op, const float* a, const float* b, float* o, int64_t n) {
  active()->binary(op, a, b, o, n);
}
void unary(UnOp op, float p0, float p1, const float* a, float* o, int64_t n) {
  active()->unary(op, p0, p1, a, o, n);
}
void axpy(float alpha, const float* x, float* o, int64_t n) {
  active()->axpy(alpha, x, o, n);
}
void fill(float v, float* o, int64_t n) { active()->fill(v, o, n); }
void adam(const AdamArgs& s, float* p, const float* grad, float* m, float* v,
          int64_t n) {
  active()->adam(s, p, grad, m, v, n);
}
void sgd(const SgdArgs& s, float* p, const float* grad, float* buf,
         int64_t n) {
  active()->sgd(s, p, grad, buf, n);
}
bool finite_scaled(const float* g, float inv_scale, int64_t n) {
  return active()->finite_scaled(g, inv_scale, n);
}
void col_sum(const float* src, float* dst, int64_t rows, int64_t cols,
             bool accumulate) {
  active()->col_sum(src, dst, rows, cols, accumulate);
}

void cast_f32_to_f16(const float* src, uint16_t* dst, int64_t n) {
  active()->cast_f32_to_f16(src, dst, n);
}
void cast_f16_to_f32(const uint16_t* src, float* dst, int64_t n) {
  active()->cast_f16_to_f32(src, dst, n);
}
void cast_f32_to_bf16(const float* src, uint16_t* dst, int64_t n) {
  active()->cast_f32_to_bf16(src, dst, n);
}
void cast_bf16_to_f32(const uint16_t* src, float* dst, int64_t n) {
  active()->cast_bf16_to_f32(src, dst, n);
}

// -- shared reference exp + strided-row fallbacks -----------------------------
// Strided rows (softmax over a non-innermost dim) use this single compiled
// copy on every backend: the same virtual-lane strip/tree algorithm, lane by
// lane. Correctly-rounded fma/floor and exact selection rules make it
// deterministic — and exp_approx is, by the same argument, bit-identical to
// the vectorized vexp in vec_impl.h (vec_test asserts this).

float exp_approx(float x) {
  x = x < 88.3762626647949f ? x : 88.3762626647949f;
  x = x > -87.3365478515625f ? x : -87.3365478515625f;
  const float fx = std::floor(std::fma(x, 1.44269504088896341f, 0.5f));
  x = x - fx * 0.693359375f;
  x = x - fx * -2.12194440e-4f;
  const float z = x * x;
  float y = 1.9875691500e-4f;
  y = std::fma(y, x, 1.3981999507e-3f);
  y = std::fma(y, x, 8.3334519073e-3f);
  y = std::fma(y, x, 4.1665795894e-2f);
  y = std::fma(y, x, 1.6666665459e-1f);
  y = std::fma(y, x, 5.0000001201e-1f);
  y = std::fma(y, z, x);
  y = y + 1.f;
  const int32_t k = static_cast<int32_t>(fx);
  return y * bits_f32(static_cast<uint32_t>(k + 127) << 23);
}

namespace {

constexpr float kInf = __builtin_huge_valf();

float strided_row_max(const float* x, int64_t st, int64_t n) {
  float acc[kLanes];
  for (int l = 0; l < kLanes; ++l) acc[l] = -kInf;
  const auto mx = [](float a, float b) { return a > b ? a : b; };
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes)
    for (int l = 0; l < kLanes; ++l) acc[l] = mx(acc[l], x[(i + l) * st]);
  if (i < n) {
    const int64_t rem = n - i;
    for (int l = 0; l < kLanes; ++l)
      acc[l] = mx(acc[l], l < rem ? x[(i + l) * st] : -kInf);
  }
  const float t0 = mx(acc[0], acc[4]), t1 = mx(acc[1], acc[5]);
  const float t2 = mx(acc[2], acc[6]), t3 = mx(acc[3], acc[7]);
  return mx(mx(t0, t2), mx(t1, t3));
}

float strided_row_sumexp(const float* x, int64_t st, int64_t n, float mxv,
                         float* eout) {
  float acc[kLanes] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) {
      const float e = exp_approx(x[(i + l) * st] - mxv);
      if (eout != nullptr) eout[(i + l) * st] = e;
      acc[l] = acc[l] + e;
    }
  }
  if (i < n) {
    const int64_t rem = n - i;
    for (int l = 0; l < kLanes; ++l) {
      const float e =
          l < rem ? exp_approx(x[(i + l) * st] - mxv) : 0.f;
      if (eout != nullptr && l < rem) eout[(i + l) * st] = e;
      acc[l] = acc[l] + e;
    }
  }
  const float t0 = acc[0] + acc[4], t1 = acc[1] + acc[5];
  const float t2 = acc[2] + acc[6], t3 = acc[3] + acc[7];
  return (t0 + t2) + (t1 + t3);
}

}  // namespace

float row_max(const float* x, int64_t st, int64_t n) {
  if (n <= 0) return -kInf;
  if (st != 1) return strided_row_max(x, st, n);
  return active()->row_max(x, 1, n);
}

float row_sumexp(const float* x, int64_t st, int64_t n, float mx,
                 float* eout) {
  if (n <= 0) return 0.f;
  if (st != 1) return strided_row_sumexp(x, st, n, mx, eout);
  return active()->row_sumexp(x, 1, n, mx, eout);
}

}  // namespace hfta::vec
