// Portable SIMD kernel layer with fixed 8-wide virtual-lane semantics.
//
// Every kernel here is defined against a VIRTUAL vector machine: 8 f32 lanes,
// correctly-rounded fma/sqrt/div, fixed partial-sum tree shapes, and fixed
// cache-blocking constants. The AVX2/FMA/F16C backend implements that machine
// with one instruction per op; the scalar backend emulates it lane by lane
// with std::fma / std::sqrt (both correctly rounded, hence bit-identical to
// the hardware instructions). Because lane width, blocking factors, and
// reduction trees are SEMANTIC CONSTANTS — pure functions of the problem
// size, never of ISA availability or thread count — the two backends produce
// memcmp-identical results, which is what keeps the repo's fused-vs-serial /
// replay-vs-eager / any-thread-count 0.00e+00 audits meaningful on top of a
// vectorized build. `HFTA_SIMD=0` (env) or set_simd_enabled(false) forces the
// scalar backend for A/B equality tests.
//
// Dispatch is by function-pointer table chosen once at first use:
// AVX2+FMA+F16C when compiled in AND reported by the CPU AND not disabled,
// scalar otherwise. All entry points take plain pointers, so no vector types
// cross the TU boundary.
//
// Threading: vec::gemm launches its own parallel_for over row blocks (and
// therefore must NOT be called from inside a parallel body without passing
// `scratch` — see GemmArgs). All other kernels are range-based and
// single-threaded by design: callers keep their own Partition loops and call
// these on [lo, hi) slices, preserving the existing chunk decompositions.
#pragma once

#include <cstdint>

namespace hfta::vec {

// -- virtual-machine constants (semantic: changing any of these changes
//    results; see DESIGN.md §11) ----------------------------------------------

/// Virtual vector width in f32 lanes. Reduction strips and tails are defined
/// in terms of this width on every backend.
inline constexpr int kLanes = 8;
/// GEMM microkernel rows (register tile height).
inline constexpr int kMR = 6;
/// GEMM microkernel columns (register tile width: two 8-lane vectors).
inline constexpr int kNR = 16;
/// GEMM k-panel depth (cache blocking). Panels beyond the first reload the
/// fp32 partial C tile — an exact store/reload, so blocking is numerics-free.
inline constexpr int64_t kKC = 256;

// -- backend selection --------------------------------------------------------

/// True when the vectorized backend is active (compiled in + CPU support +
/// not disabled via HFTA_SIMD=0 / set_simd_enabled(false)).
bool simd_active();
/// "avx2" or "scalar" — for bench/JSON reporting.
const char* simd_name();
/// Force the backend at runtime (test hook for in-process A/B equality).
/// Enabling is a no-op when the vectorized backend is unavailable; returns
/// the backend that is actually active afterwards.
bool set_simd_enabled(bool on);
/// True when the AVX2 backend is compiled in and the CPU supports it
/// (regardless of whether it is currently active).
bool simd_available();

// -- packed cache-blocked GEMM ------------------------------------------------

/// Element type a GEMM operand is packed FROM. Half inputs are widened to
/// f32 during packing (bit-identical to the scalar converters in
/// core/half.h), which is what lets AMP matmuls skip the separate as_f32
/// materialization pass entirely. The kF32Q* types quantize an f32 operand
/// RNE to the half format and widen it back IN the pack loop — bit-identical
/// to casting the tensor to 16-bit storage first and packing that (the
/// round-trip through core/half.h is the definition both backends match), so
/// autocast needs no materialized cast tensors at all.
enum class PackType : uint8_t {
  kF32 = 0,
  kF16 = 1,
  kBF16 = 2,
  kF32QF16 = 3,
  kF32QBF16 = 4,
};

/// C[m,n] = beta_term + alpha * A' @ B', where A' is a (logical, possibly
/// transposed) m x k operand and B' is k x n. Accumulation semantics — the
/// contract every backend implements identically: each C[i,j] is ONE
/// k-ascending chain `acc = fma(alpha*a[i,p], b[p,j], acc)` seeded with
/// beta_term (0 when beta == 0, C[i,j] when beta == 1, beta*C[i,j]
/// otherwise). alpha is folded into the packed A panel (a single rounding,
/// applied identically on every path).
struct GemmArgs {
  const void* a = nullptr;  // row-major [m,k], or [k,m] when trans_a
  PackType a_type = PackType::kF32;
  bool trans_a = false;
  const void* b = nullptr;  // row-major [k,n], or [n,k] when trans_b
  PackType b_type = PackType::kF32;
  bool trans_b = false;
  float* c = nullptr;  // row-major [m,n], always f32
  int64_t m = 0, n = 0, k = 0;
  float alpha = 1.f;
  float beta = 0.f;
  /// Packing scratch of >= gemm_scratch_floats(m,n,k) floats, or nullptr to
  /// acquire one internally from the StoragePool. Callers inside a
  /// parallel_for body MUST pass scratch hoisted on the launching thread
  /// (DESIGN §10): the internal acquisition is only safe at top level.
  float* scratch = nullptr;
};

/// Floats of packing scratch gemm() needs — a pure function of the problem
/// size (A micro-panels + B panels for one k-panel).
int64_t gemm_scratch_floats(int64_t m, int64_t n, int64_t k);

void gemm(const GemmArgs& args);

// -- range kernels (caller keeps its Partition loop) --------------------------

enum class BinOp : uint8_t {
  kAdd = 0,
  kSub,
  kMul,
  kDiv,
  kMax,      // (a > b) ? a : b  (NaN in either operand -> b)
  kReluBwd,  // a * ((b > 0) ? 1 : 0) — gy masked by the relu input
};
void binary(BinOp op, const float* a, const float* b, float* o, int64_t n);

enum class UnOp : uint8_t {
  kRelu = 0,   // (x > 0) ? x : 0
  kLeakyRelu,  // (x > 0) ? x : p0*x
  kNeg,
  kAbs,
  kAddScalar,  // x + p0
  kMulScalar,  // x * p0
  kClamp,      // min(max(x, p0), p1) with (a<b)?a:b / (a>b)?a:b semantics
};
void unary(UnOp op, float p0, float p1, const float* a, float* o, int64_t n);

/// o[i] += alpha * x[i] (separate mul + add, matching the scalar add_ loop).
void axpy(float alpha, const float* x, float* o, int64_t n);

/// o[i] = v.
void fill(float v, float* o, int64_t n);

/// Per-element Adam update, the exact expression shared by nn::Adam and
/// fused::FusedAdam (all-float scalars; mul/add/div/sqrt only — no fma — so
/// the vector and scalar paths are identical by IEEE exactness):
///   g  = grad_scale * grad[i] + weight_decay * p[i]
///   m' = beta1 * m[i] + (1 - beta1) * g
///   v' = beta2 * v[i] + (1 - beta2) * g * g
///   p[i] -= step_size * m' / (sqrt(v' * inv_bc2) + eps)
/// grad_scale is AMP's 1/S folded into the step: a single f32 multiply, so
/// the result is bit-identical to unscaling the gradient in memory first
/// (store/reload is the identity) — and when grad_scale == 1 the multiply is
/// skipped entirely, leaving the fp32 expression untouched.
struct AdamArgs {
  float weight_decay, beta1, one_minus_beta1, beta2, one_minus_beta2;
  float step_size, inv_bc2, eps;
  float grad_scale = 1.f;
};
void adam(const AdamArgs& s, float* p, const float* grad, float* m, float* v,
          int64_t n);

/// Per-element SGD(+momentum) update shared by nn::SGD and fused::FusedSGD
/// (grad_scale as in AdamArgs):
///   g = grad_scale * grad[i] + weight_decay * p[i]
///   if has_momentum: buf[i] = momentum * buf[i] + g; g = buf[i]
///   p[i] -= lr * g
struct SgdArgs {
  float lr, weight_decay, momentum;
  float grad_scale = 1.f;
};
void sgd(const SgdArgs& s, float* p, const float* grad, float* buf /*nullable*/,
         int64_t n);

/// True iff every g[i] * inv_scale is finite — the AMP overflow check as a
/// READ-ONLY scan (grads stay scaled in memory; the optimizer folds 1/S via
/// grad_scale). Same multiply as the in-place unscale, so the verdict is
/// identical to LossScaler::unscale_finite's on every input, and it is a
/// pure OR over elements: order- and backend-independent.
bool finite_scaled(const float* g, float inv_scale, int64_t n);

// -- row reductions (fixed 8-lane strip + tree semantics) ---------------------
//
// A row of n elements at stride st is processed as ceil(n/8) strips: lane l
// of strip s holds element (s*8 + l). Lane accumulators combine strips
// element-wise; the final cross-lane reduce is the fixed tree
// (0,4)(1,5)(2,6)(3,7) -> (0,2)(1,3) -> (0,1). Dead lanes in the tail strip
// contribute the identity (-inf for max, 0 for sum). The same strip/tree
// shape runs on both backends (and for any st), so results are bit-equal.

/// Tree max of a row; empty rows return -inf.
float row_max(const float* x, int64_t st, int64_t n);

/// Tree sum of exp(x[i]-mx) over a row, using the shared polynomial exp
/// (exp_approx below). When eout != nullptr, also stores each exp(x[i]-mx)
/// to eout (same stride).
float row_sumexp(const float* x, int64_t st, int64_t n, float mx, float* eout);

/// The polynomial expf every backend uses inside row_sumexp (Cephes-style:
/// clamped range reduction + degree-5 Horner in fma + exponent rebuild).
/// Deterministic and identical across backends; differs from libm expf by a
/// few ulp. Exposed for tests.
float exp_approx(float x);

/// dst[j] (+)= sum_r src[r*cols + j] for j in [0, cols): one ascending-r
/// chain per column (lane), bit-equal to the scalar per-output loop.
void col_sum(const float* src, float* dst, int64_t rows, int64_t cols,
             bool accumulate);

// -- batch dtype casts --------------------------------------------------------
// Bit-identical to the scalar converters in core/half.h on EVERY input: the
// F16C path canonicalizes NaNs to match the software converters (which drop
// f16 payloads on narrowing and do not quiet on widening).

void cast_f32_to_f16(const float* src, uint16_t* dst, int64_t n);
void cast_f16_to_f32(const uint16_t* src, float* dst, int64_t n);
void cast_f32_to_bf16(const float* src, uint16_t* dst, int64_t n);
void cast_bf16_to_f32(const uint16_t* src, float* dst, int64_t n);

// -- backend table (internal: implemented by vec_scalar.cpp / vec_avx2.cpp) ---

struct VecOps {
  void (*gemm)(const GemmArgs&, float* scratch);
  void (*binary)(BinOp, const float*, const float*, float*, int64_t);
  void (*unary)(UnOp, float, float, const float*, float*, int64_t);
  void (*axpy)(float, const float*, float*, int64_t);
  void (*fill)(float, float*, int64_t);
  void (*adam)(const AdamArgs&, float*, const float*, float*, float*, int64_t);
  void (*sgd)(const SgdArgs&, float*, const float*, float*, int64_t);
  bool (*finite_scaled)(const float*, float, int64_t);
  float (*row_max)(const float*, int64_t, int64_t);
  float (*row_sumexp)(const float*, int64_t, int64_t, float, float*);
  void (*col_sum)(const float*, float*, int64_t, int64_t, bool);
  void (*cast_f32_to_f16)(const float*, uint16_t*, int64_t);
  void (*cast_f16_to_f32)(const uint16_t*, float*, int64_t);
  void (*cast_f32_to_bf16)(const float*, uint16_t*, int64_t);
  void (*cast_bf16_to_f32)(const uint16_t*, float*, int64_t);
};

/// Always available.
const VecOps* vec_scalar_ops();
/// Table of the AVX2 backend, or nullptr when it was not compiled in. The
/// caller (vec.cpp) is responsible for the runtime CPU check before use.
const VecOps* vec_avx2_ops_table();

}  // namespace hfta::vec
