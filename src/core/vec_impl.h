// Shared kernel bodies for the vec backends, templated over an ISA traits
// struct. vec_scalar.cpp and vec_avx2.cpp both include this header and
// instantiate Kern<> with their own Traits; every algorithm below is written
// ONCE against the 8-lane virtual vector machine (see vec.h), so the two
// backends cannot diverge structurally. The remaining equality obligations
// sit entirely inside the traits:
//
//   * fma / sqrt / div are correctly rounded on both (std::fma & std::sqrt
//     vs vfmadd/vsqrtps) — IEEE pins the result bits.
//   * min/max follow the x86 vminps/vmaxps selection rule ((a<b)?a:b /
//     (a>b)?a:b, NaN in either operand selects b).
//   * half widening matches the scalar converters in core/half.h bit-for-bit
//     (the F16C path patches NaN lanes to do so).
//
// Traits interface (V = 8 x f32):
//   zero set1 load store maskload maskstore lanemask select
//   add sub mul div sqrt fma min max neg abs floor scale_pow2
//   tree_add tree_max load_f16 load_bf16 quantize_f16 quantize_bf16
//   any_nonfinite
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/check.h"
#include "core/half.h"
#include "core/parallel.h"
#include "core/storage_pool.h"
#include "core/vec.h"

namespace hfta::vec::detail {

inline int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

template <class T>
struct Kern {
  using V = typename T::V;

  // -- shared polynomial exp (Cephes-style) ----------------------------------
  // Range-clamped Cody-Waite reduction + degree-5 Horner in fma + exponent
  // rebuild. Every operation is exact or correctly rounded, so lane results
  // are bit-identical across backends (and to vec::exp_approx).
  static inline V vexp(V x) {
    x = T::min(x, T::set1(88.3762626647949f));
    x = T::max(x, T::set1(-87.3365478515625f));
    const V fx = T::floor(T::fma(x, T::set1(1.44269504088896341f),
                                 T::set1(0.5f)));
    x = T::sub(x, T::mul(fx, T::set1(0.693359375f)));
    x = T::sub(x, T::mul(fx, T::set1(-2.12194440e-4f)));
    const V z = T::mul(x, x);
    V y = T::set1(1.9875691500e-4f);
    y = T::fma(y, x, T::set1(1.3981999507e-3f));
    y = T::fma(y, x, T::set1(8.3334519073e-3f));
    y = T::fma(y, x, T::set1(4.1665795894e-2f));
    y = T::fma(y, x, T::set1(1.6666665459e-1f));
    y = T::fma(y, x, T::set1(5.0000001201e-1f));
    y = T::fma(y, z, x);
    y = T::add(y, T::set1(1.f));
    return T::scale_pow2(y, fx);
  }

  // ==== packed cache-blocked GEMM ============================================

  template <int PT>
  static inline float widen(const void* p, int64_t idx) {
    if constexpr (PT == 1)
      return f16_bits_to_f32(static_cast<const uint16_t*>(p)[idx]);
    else if constexpr (PT == 2)
      return bf16_bits_to_f32(static_cast<const uint16_t*>(p)[idx]);
    else if constexpr (PT == 3)
      // Quantize-on-pack: RNE round trip through the half format. The same
      // scalar composition defines the vectorized T::quantize_f16 below, so
      // scalar pack tails and vector pack bodies agree bit-for-bit.
      return f16_bits_to_f32(
          f32_to_f16_bits(static_cast<const float*>(p)[idx]));
    else if constexpr (PT == 4)
      return bf16_bits_to_f32(
          f32_to_bf16_bits(static_cast<const float*>(p)[idx]));
    else
      return static_cast<const float*>(p)[idx];
  }

  /// Vector-quantizes a contiguous f32 strip (PT 3 = f16 round trip, PT 4 =
  /// bf16): the same per-lane composition widen<PT> defines, eight lanes at
  /// a time. Dead tail lanes load 0.0, which quantizes to 0.0 — discarded
  /// by the maskstore.
  template <int PT>
  static inline V quantize_v(V v) {
    static_assert(PT == 3 || PT == 4);
    if constexpr (PT == 3)
      return T::quantize_f16(v);
    else
      return T::quantize_bf16(v);
  }
  template <int PT>
  static inline void quantize_strip(const float* src, float* dst, int64_t n) {
    int64_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
      T::store(dst + i, quantize_v<PT>(T::load(src + i)));
    if (i < n)
      T::maskstore(dst + i, n - i,
                   quantize_v<PT>(T::maskload(src + i, n - i)));
  }

  /// Packs all kNR-column panels of the logical B[k0..k0+kc) x [0..n) into
  /// dst: panel jp holds kc rows of kNR contiguous floats (zero-padded past
  /// n). Runs on the launching thread (the panels are shared by every row
  /// block).
  template <int PT, bool TB>
  static void pack_b(const void* b, int64_t n, int64_t k, int64_t k0,
                     int64_t kc, float* dst) {
    const int64_t nb = ceil_div(n, kNR);
    for (int64_t jp = 0; jp < nb; ++jp) {
      const int64_t j0 = jp * kNR;
      const int64_t jn = std::min<int64_t>(kNR, n - j0);
      float* d = dst + jp * kNR * kc;
      if constexpr (!TB) {
        if (jn == kNR) {
          // Full panel of a row-major [k,n] operand: two vector copies (with
          // in-flight widening for half sources) per k row.
          for (int64_t p = 0; p < kc; ++p) {
            const int64_t s = (k0 + p) * n + j0;
            if constexpr (PT == 1) {
              const uint16_t* bp = static_cast<const uint16_t*>(b) + s;
              T::store(d + p * kNR, T::load_f16(bp));
              T::store(d + p * kNR + kLanes, T::load_f16(bp + kLanes));
            } else if constexpr (PT == 2) {
              const uint16_t* bp = static_cast<const uint16_t*>(b) + s;
              T::store(d + p * kNR, T::load_bf16(bp));
              T::store(d + p * kNR + kLanes, T::load_bf16(bp + kLanes));
            } else if constexpr (PT == 3) {
              const float* bp = static_cast<const float*>(b) + s;
              T::store(d + p * kNR, T::quantize_f16(T::load(bp)));
              T::store(d + p * kNR + kLanes,
                       T::quantize_f16(T::load(bp + kLanes)));
            } else if constexpr (PT == 4) {
              const float* bp = static_cast<const float*>(b) + s;
              T::store(d + p * kNR, T::quantize_bf16(T::load(bp)));
              T::store(d + p * kNR + kLanes,
                       T::quantize_bf16(T::load(bp + kLanes)));
            } else {
              const float* bp = static_cast<const float*>(b) + s;
              T::store(d + p * kNR, T::load(bp));
              T::store(d + p * kNR + kLanes, T::load(bp + kLanes));
            }
          }
        } else if constexpr (PT == 3 || PT == 4) {
          // Partial panel of an f32 source: quantize vector strips straight
          // from the contiguous row (lane-for-lane the same round trip as
          // the scalar widen).
          const float* bf = static_cast<const float*>(b);
          for (int64_t p = 0; p < kc; ++p) {
            const float* bp = bf + (k0 + p) * n + j0;
            const int64_t j1 = std::min<int64_t>(jn, kLanes);
            T::maskstore(d + p * kNR, j1,
                         quantize_v<PT>(T::maskload(bp, j1)));
            if (jn > kLanes)
              T::maskstore(d + p * kNR + kLanes, jn - kLanes,
                           quantize_v<PT>(T::maskload(bp + kLanes,
                                                      jn - kLanes)));
            for (int64_t j = jn; j < kNR; ++j) d[p * kNR + j] = 0.f;
          }
        } else {
          for (int64_t p = 0; p < kc; ++p) {
            for (int64_t j = 0; j < jn; ++j)
              d[p * kNR + j] = widen<PT>(b, (k0 + p) * n + j0 + j);
            for (int64_t j = jn; j < kNR; ++j) d[p * kNR + j] = 0.f;
          }
        }
      } else {
        // Transposed operand (row-major [n,k]): column j of the logical B is
        // contiguous in p, so the pack IS the transpose — no materialized
        // transpose-copy scratch anywhere.
        if constexpr (PT == 3 || PT == 4) {
          // Quantize each contiguous source column into a stack strip with
          // vector round trips; the strided scatter below is then the same
          // loop the f32 path runs.
          alignas(64) float q[kKC];
          const float* bf = static_cast<const float*>(b);
          for (int64_t j = 0; j < jn; ++j) {
            quantize_strip<PT>(bf + (j0 + j) * k + k0, q, kc);
            for (int64_t p = 0; p < kc; ++p) d[p * kNR + j] = q[p];
          }
        } else {
          for (int64_t j = 0; j < jn; ++j)
            for (int64_t p = 0; p < kc; ++p)
              d[p * kNR + j] = widen<PT>(b, (j0 + j) * k + k0 + p);
        }
        for (int64_t j = jn; j < kNR; ++j)
          for (int64_t p = 0; p < kc; ++p) d[p * kNR + j] = 0.f;
      }
    }
  }

  /// Packs one kMR-row micro-panel of the logical A (rows [i0, i0+ir),
  /// k-range [k0, k0+kc)) into d, folding alpha (one rounding, identical on
  /// every path) and zero-padding past ir. Runs inside the row-block
  /// parallel body — each block writes only its own disjoint region.
  template <int PT, bool TA>
  static void pack_a(const void* a, int64_t m, int64_t k, int64_t i0,
                     int64_t ir, int64_t k0, int64_t kc, float alpha,
                     float* d) {
    if constexpr ((PT == 3 || PT == 4) && !TA) {
      // f32 source with quantize-on-pack: each row's k-strip is contiguous,
      // so quantize it with vector round trips into a stack strip first;
      // the strided scatter below is then identical to the f32 path's.
      alignas(64) float q[kKC];
      const float* af = static_cast<const float*>(a);
      for (int64_t r = 0; r < ir; ++r) {
        quantize_strip<PT>(af + (i0 + r) * k + k0, q, kc);
        for (int64_t p = 0; p < kc; ++p) d[p * kMR + r] = alpha * q[p];
      }
    } else if constexpr ((PT == 3 || PT == 4) && TA) {
      // Transposed f32 source: the ir rows of one k-slice are contiguous,
      // and ir <= kMR < kLanes, so one masked vector quantizes and scatters
      // each slice (dead lanes load 0.0 and are never stored).
      const float* af = static_cast<const float*>(a);
      const V av = T::set1(alpha);
      for (int64_t p = 0; p < kc; ++p) {
        const V v = quantize_v<PT>(T::maskload(af + (k0 + p) * m + i0, ir));
        T::maskstore(d + p * kMR, ir, T::mul(av, v));
      }
    } else if constexpr (!TA) {
      for (int64_t r = 0; r < ir; ++r)
        for (int64_t p = 0; p < kc; ++p)
          d[p * kMR + r] = alpha * widen<PT>(a, (i0 + r) * k + k0 + p);
    } else {
      for (int64_t p = 0; p < kc; ++p)
        for (int64_t r = 0; r < ir; ++r)
          d[p * kMR + r] = alpha * widen<PT>(a, (k0 + p) * m + i0 + r);
    }
    for (int64_t r = ir; r < kMR; ++r)
      for (int64_t p = 0; p < kc; ++p) d[p * kMR + r] = 0.f;
    (void)m;
    (void)k;
  }

  // Partial-width load/store of one accumulator vector: `cols` is how many
  // of its kLanes columns are real (<= 0 means none).
  static inline V load_cols(const float* p, int64_t cols) {
    if (cols >= kLanes) return T::load(p);
    if (cols <= 0) return T::zero();
    return T::maskload(p, cols);
  }
  static inline void store_cols(float* p, int64_t cols, V v) {
    if (cols >= kLanes) {
      T::store(p, v);
    } else if (cols > 0) {
      T::maskstore(p, cols, v);
    }
  }

  /// kMR x kNR register-tiled microkernel over one packed A micro-panel and
  /// one packed B panel. Each C element is ONE k-ascending fma chain seeded
  /// with its beta term on the first k-panel and with the stored partial on
  /// later panels (an exact f32 store/reload — blocking is numerics-free).
  static void micro(const float* pa, const float* pb, float* c, int64_t ldc,
                    int64_t kc, int64_t ir, int64_t jn, float beta,
                    bool first_panel) {
    const int64_t c0 = jn;            // real cols in vector 0
    const int64_t c1 = jn - kLanes;   // real cols in vector 1
    // Accumulators as plain locals (never address-taken) so they live in
    // registers through the k loop.
    const auto init = [&](int64_t r, int64_t cols, int64_t off) -> V {
      if (r >= ir) return T::zero();
      if (first_panel && beta == 0.f) return T::zero();
      const V v = load_cols(c + r * ldc + off, cols);
      if (first_panel && beta != 1.f) return T::mul(T::set1(beta), v);
      return v;
    };
    V a0_0 = init(0, c0, 0), a0_1 = init(0, c1, kLanes);
    V a1_0 = init(1, c0, 0), a1_1 = init(1, c1, kLanes);
    V a2_0 = init(2, c0, 0), a2_1 = init(2, c1, kLanes);
    V a3_0 = init(3, c0, 0), a3_1 = init(3, c1, kLanes);
    V a4_0 = init(4, c0, 0), a4_1 = init(4, c1, kLanes);
    V a5_0 = init(5, c0, 0), a5_1 = init(5, c1, kLanes);
    for (int64_t p = 0; p < kc; ++p) {
      const V b0 = T::load(pb + p * kNR);
      const V b1 = T::load(pb + p * kNR + kLanes);
      const float* ap = pa + p * kMR;
      V av;
      av = T::set1(ap[0]);
      a0_0 = T::fma(av, b0, a0_0);
      a0_1 = T::fma(av, b1, a0_1);
      av = T::set1(ap[1]);
      a1_0 = T::fma(av, b0, a1_0);
      a1_1 = T::fma(av, b1, a1_1);
      av = T::set1(ap[2]);
      a2_0 = T::fma(av, b0, a2_0);
      a2_1 = T::fma(av, b1, a2_1);
      av = T::set1(ap[3]);
      a3_0 = T::fma(av, b0, a3_0);
      a3_1 = T::fma(av, b1, a3_1);
      av = T::set1(ap[4]);
      a4_0 = T::fma(av, b0, a4_0);
      a4_1 = T::fma(av, b1, a4_1);
      av = T::set1(ap[5]);
      a5_0 = T::fma(av, b0, a5_0);
      a5_1 = T::fma(av, b1, a5_1);
    }
    const auto emit = [&](int64_t r, V v0, V v1) {
      if (r >= ir) return;
      store_cols(c + r * ldc, c0, v0);
      store_cols(c + r * ldc + kLanes, c1, v1);
    };
    emit(0, a0_0, a0_1);
    emit(1, a1_0, a1_1);
    emit(2, a2_0, a2_1);
    emit(3, a3_0, a3_1);
    emit(4, a4_0, a4_1);
    emit(5, a5_0, a5_1);
  }

  static void pack_b_dispatch(const GemmArgs& g, int64_t k0, int64_t kc,
                              float* pb) {
    switch (g.b_type) {
      case PackType::kF16:
        g.trans_b ? pack_b<1, true>(g.b, g.n, g.k, k0, kc, pb)
                  : pack_b<1, false>(g.b, g.n, g.k, k0, kc, pb);
        break;
      case PackType::kBF16:
        g.trans_b ? pack_b<2, true>(g.b, g.n, g.k, k0, kc, pb)
                  : pack_b<2, false>(g.b, g.n, g.k, k0, kc, pb);
        break;
      case PackType::kF32QF16:
        g.trans_b ? pack_b<3, true>(g.b, g.n, g.k, k0, kc, pb)
                  : pack_b<3, false>(g.b, g.n, g.k, k0, kc, pb);
        break;
      case PackType::kF32QBF16:
        g.trans_b ? pack_b<4, true>(g.b, g.n, g.k, k0, kc, pb)
                  : pack_b<4, false>(g.b, g.n, g.k, k0, kc, pb);
        break;
      default:
        g.trans_b ? pack_b<0, true>(g.b, g.n, g.k, k0, kc, pb)
                  : pack_b<0, false>(g.b, g.n, g.k, k0, kc, pb);
        break;
    }
  }

  static void pack_a_dispatch(const GemmArgs& g, int64_t i0, int64_t ir,
                              int64_t k0, int64_t kc, float* pa) {
    switch (g.a_type) {
      case PackType::kF16:
        g.trans_a ? pack_a<1, true>(g.a, g.m, g.k, i0, ir, k0, kc, g.alpha, pa)
                  : pack_a<1, false>(g.a, g.m, g.k, i0, ir, k0, kc, g.alpha,
                                     pa);
        break;
      case PackType::kBF16:
        g.trans_a ? pack_a<2, true>(g.a, g.m, g.k, i0, ir, k0, kc, g.alpha, pa)
                  : pack_a<2, false>(g.a, g.m, g.k, i0, ir, k0, kc, g.alpha,
                                     pa);
        break;
      case PackType::kF32QF16:
        g.trans_a ? pack_a<3, true>(g.a, g.m, g.k, i0, ir, k0, kc, g.alpha, pa)
                  : pack_a<3, false>(g.a, g.m, g.k, i0, ir, k0, kc, g.alpha,
                                     pa);
        break;
      case PackType::kF32QBF16:
        g.trans_a ? pack_a<4, true>(g.a, g.m, g.k, i0, ir, k0, kc, g.alpha, pa)
                  : pack_a<4, false>(g.a, g.m, g.k, i0, ir, k0, kc, g.alpha,
                                     pa);
        break;
      default:
        g.trans_a ? pack_a<0, true>(g.a, g.m, g.k, i0, ir, k0, kc, g.alpha, pa)
                  : pack_a<0, false>(g.a, g.m, g.k, i0, ir, k0, kc, g.alpha,
                                     pa);
        break;
    }
  }

  static void gemm(const GemmArgs& g, float* scratch) {
    const int64_t m = g.m, n = g.n, k = g.k;
    if (m <= 0 || n <= 0) return;
    if (k <= 0) {
      // Degenerate contraction: C is just its beta term.
      float* c = g.c;
      if (g.beta == 0.f) {
        for (int64_t i = 0; i < m * n; ++i) c[i] = 0.f;
      } else if (g.beta != 1.f) {
        for (int64_t i = 0; i < m * n; ++i) c[i] = g.beta * c[i];
      }
      return;
    }
    const int64_t mb = ceil_div(m, kMR);
    const int64_t nb = ceil_div(n, kNR);
    const int64_t kcp = std::min<int64_t>(k, kKC);
    float* pb = scratch;
    float* pa = scratch + nb * kNR * kcp;
    for (int64_t k0 = 0; k0 < k; k0 += kcp) {
      const int64_t kc = std::min<int64_t>(kcp, k - k0);
      pack_b_dispatch(g, k0, kc, pb);
      const bool first = (k0 == 0);
      parallel_for(Partition::rows(mb), [&](int64_t lo, int64_t hi) {
        for (int64_t ib = lo; ib < hi; ++ib) {
          const int64_t i0 = ib * kMR;
          const int64_t ir = std::min<int64_t>(kMR, m - i0);
          float* apanel = pa + ib * kMR * kc;
          pack_a_dispatch(g, i0, ir, k0, kc, apanel);
          for (int64_t jp = 0; jp < nb; ++jp) {
            const int64_t jn = std::min<int64_t>(kNR, n - jp * kNR);
            micro(apanel, pb + jp * kNR * kc, g.c + i0 * n + jp * kNR, n, kc,
                  ir, jn, g.beta, first);
          }
        }
      });
    }
  }

  // ==== range kernels ========================================================

  template <class F>
  static inline void map1(const float* a, float* o, int64_t n, F f) {
    int64_t i = 0;
    for (; i + kLanes <= n; i += kLanes) T::store(o + i, f(T::load(a + i)));
    if (i < n) T::maskstore(o + i, n - i, f(T::maskload(a + i, n - i)));
  }

  template <class F>
  static inline void map2(const float* a, const float* b, float* o, int64_t n,
                          F f) {
    int64_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
      T::store(o + i, f(T::load(a + i), T::load(b + i)));
    if (i < n)
      T::maskstore(o + i, n - i,
                   f(T::maskload(a + i, n - i), T::maskload(b + i, n - i)));
  }

  static void binary(BinOp op, const float* a, const float* b, float* o,
                     int64_t n) {
    switch (op) {
      case BinOp::kAdd:
        map2(a, b, o, n, [](V x, V y) { return T::add(x, y); });
        break;
      case BinOp::kSub:
        map2(a, b, o, n, [](V x, V y) { return T::sub(x, y); });
        break;
      case BinOp::kMul:
        map2(a, b, o, n, [](V x, V y) { return T::mul(x, y); });
        break;
      case BinOp::kDiv:
        map2(a, b, o, n, [](V x, V y) { return T::div(x, y); });
        break;
      case BinOp::kMax:
        map2(a, b, o, n, [](V x, V y) { return T::max(x, y); });
        break;
      case BinOp::kReluBwd:
        // gy * ((x > 0) ? 1 : 0): the mask-then-multiply composition the
        // autograd backward used as two passes, in one pass (signed zeros in
        // gy*0 preserved exactly).
        map2(a, b, o, n, [](V gy, V x) {
          const V one = T::set1(1.f);
          return T::mul(gy, T::select(T::gt(x, T::zero()), one, T::zero()));
        });
        break;
    }
  }

  static void unary(UnOp op, float p0, float p1, const float* a, float* o,
                    int64_t n) {
    switch (op) {
      case UnOp::kRelu:
        map1(a, o, n, [](V x) {
          return T::select(T::gt(x, T::zero()), x, T::zero());
        });
        break;
      case UnOp::kLeakyRelu:
        map1(a, o, n, [p0](V x) {
          const V s = T::set1(p0);
          return T::select(T::gt(x, T::zero()), x, T::mul(s, x));
        });
        break;
      case UnOp::kNeg:
        map1(a, o, n, [](V x) { return T::neg(x); });
        break;
      case UnOp::kAbs:
        map1(a, o, n, [](V x) { return T::abs(x); });
        break;
      case UnOp::kAddScalar:
        map1(a, o, n, [p0](V x) { return T::add(x, T::set1(p0)); });
        break;
      case UnOp::kMulScalar:
        map1(a, o, n, [p0](V x) { return T::mul(x, T::set1(p0)); });
        break;
      case UnOp::kClamp:
        map1(a, o, n, [p0, p1](V x) {
          return T::min(T::max(x, T::set1(p0)), T::set1(p1));
        });
        break;
    }
  }

  static void axpy(float alpha, const float* x, float* o, int64_t n) {
    const V av = T::set1(alpha);
    int64_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
      T::store(o + i, T::add(T::load(o + i), T::mul(av, T::load(x + i))));
    if (i < n) {
      const int64_t r = n - i;
      T::maskstore(o + i, r,
                   T::add(T::maskload(o + i, r),
                          T::mul(av, T::maskload(x + i, r))));
    }
  }

  static void fill(float v, float* o, int64_t n) {
    const V vv = T::set1(v);
    int64_t i = 0;
    for (; i + kLanes <= n; i += kLanes) T::store(o + i, vv);
    if (i < n) T::maskstore(o + i, n - i, vv);
  }

  static void adam(const AdamArgs& s, float* p, const float* grad, float* m,
                   float* v, int64_t n) {
    const V wd = T::set1(s.weight_decay), b1 = T::set1(s.beta1),
            omb1 = T::set1(s.one_minus_beta1), b2 = T::set1(s.beta2),
            omb2 = T::set1(s.one_minus_beta2), ss = T::set1(s.step_size),
            ibc2 = T::set1(s.inv_bc2), eps = T::set1(s.eps);
    // grad_scale != 1 is AMP's 1/S: one extra multiply, bit-identical to
    // unscaling the gradient buffer first. The == 1 branch keeps the fp32
    // expression literally unchanged (no multiply by 1.0 inserted).
    const bool scaled = s.grad_scale != 1.f;
    const V gs = T::set1(s.grad_scale);
    // Plain mul/add/div/sqrt only — every op is IEEE-exact, so this is the
    // scalar update verbatim, 8 elements at a time.
    const auto step = [&](V pv, V gv0, V mv, V vv, V* om, V* ov) {
      const V gv = scaled ? T::mul(gs, gv0) : gv0;
      const V g = T::add(gv, T::mul(wd, pv));
      const V mn = T::add(T::mul(b1, mv), T::mul(omb1, g));
      const V vn = T::add(T::mul(b2, vv), T::mul(omb2, T::mul(g, g)));
      *om = mn;
      *ov = vn;
      const V denom = T::add(T::sqrt(T::mul(vn, ibc2)), eps);
      return T::sub(pv, T::div(T::mul(ss, mn), denom));
    };
    int64_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      V om, ov;
      const V np = step(T::load(p + i), T::load(grad + i), T::load(m + i),
                        T::load(v + i), &om, &ov);
      T::store(m + i, om);
      T::store(v + i, ov);
      T::store(p + i, np);
    }
    if (i < n) {
      const int64_t r = n - i;
      V om, ov;
      const V np = step(T::maskload(p + i, r), T::maskload(grad + i, r),
                        T::maskload(m + i, r), T::maskload(v + i, r), &om,
                        &ov);
      T::maskstore(m + i, r, om);
      T::maskstore(v + i, r, ov);
      T::maskstore(p + i, r, np);
    }
  }

  static void sgd(const SgdArgs& s, float* p, const float* grad, float* buf,
                  int64_t n) {
    const V wd = T::set1(s.weight_decay), mom = T::set1(s.momentum),
            lr = T::set1(s.lr);
    const bool scaled = s.grad_scale != 1.f;
    const V gs = T::set1(s.grad_scale);
    if (buf != nullptr) {
      const auto step = [&](V pv, V gv0, V bv, V* ob) {
        const V gv = scaled ? T::mul(gs, gv0) : gv0;
        V g = T::add(gv, T::mul(wd, pv));
        const V bn = T::add(T::mul(mom, bv), g);
        *ob = bn;
        return T::sub(pv, T::mul(lr, bn));
      };
      int64_t i = 0;
      for (; i + kLanes <= n; i += kLanes) {
        V ob;
        const V np =
            step(T::load(p + i), T::load(grad + i), T::load(buf + i), &ob);
        T::store(buf + i, ob);
        T::store(p + i, np);
      }
      if (i < n) {
        const int64_t r = n - i;
        V ob;
        const V np = step(T::maskload(p + i, r), T::maskload(grad + i, r),
                          T::maskload(buf + i, r), &ob);
        T::maskstore(buf + i, r, ob);
        T::maskstore(p + i, r, np);
      }
    } else {
      const auto step = [&](V pv, V gv0) {
        const V gv = scaled ? T::mul(gs, gv0) : gv0;
        const V g = T::add(gv, T::mul(wd, pv));
        return T::sub(pv, T::mul(lr, g));
      };
      int64_t i = 0;
      for (; i + kLanes <= n; i += kLanes)
        T::store(p + i, step(T::load(p + i), T::load(grad + i)));
      if (i < n) {
        const int64_t r = n - i;
        T::maskstore(p + i, r,
                     step(T::maskload(p + i, r), T::maskload(grad + i, r)));
      }
    }
  }

  static bool finite_scaled(const float* g, float inv, int64_t n) {
    // Read-only AMP overflow scan. The verdict is "is g[i] * inv finite for
    // every i", but for inv <= 1 the multiply is provably redundant: a
    // finite float times a factor in (0, 1] has real magnitude <= |g[i]| <=
    // FLT_MAX, and round-to-nearest never rounds a value <= FLT_MAX up to
    // inf, while inf/NaN stay non-finite under any positive multiply. The
    // loss scale S >= 1 (so inv = 1/S <= 1) in every non-pathological run;
    // the multiply survives only for the S < 1 tail case. Non-finite lanes
    // are OR-accumulated as a mask vector (all-ones lanes are themselves
    // NaN-patterned, so one any_nonfinite at the end reads the verdict) —
    // no per-strip branch or movemask. Dead tail lanes load 0, which is
    // finite, so they cannot flip the verdict.
    V acc = T::set1(0.f);
    int64_t i = 0;
    if (inv <= 1.f) {
      for (; i + kLanes <= n; i += kLanes)
        acc = T::or_(acc, T::nonfinite_mask(T::load(g + i)));
      if (i < n)
        acc = T::or_(acc, T::nonfinite_mask(T::maskload(g + i, n - i)));
    } else {
      const V iv = T::set1(inv);
      for (; i + kLanes <= n; i += kLanes)
        acc = T::or_(acc, T::nonfinite_mask(T::mul(iv, T::load(g + i))));
      if (i < n)
        acc = T::or_(acc,
                     T::nonfinite_mask(T::mul(iv, T::maskload(g + i, n - i))));
    }
    return !T::any_nonfinite(acc);
  }

  // ==== row reductions (st == 1; strided rows live in vec.cpp) ==============

  static float row_max(const float* x, int64_t st, int64_t n) {
    (void)st;  // == 1 (dispatch routes strided rows elsewhere)
    V acc = T::set1(-kInf);
    int64_t i = 0;
    for (; i + kLanes <= n; i += kLanes) acc = T::max(acc, T::load(x + i));
    if (i < n) {
      const int64_t r = n - i;
      const V tail = T::select(T::lanemask(r), T::maskload(x + i, r),
                               T::set1(-kInf));
      acc = T::max(acc, tail);
    }
    return T::tree_max(acc);
  }

  static float row_sumexp(const float* x, int64_t st, int64_t n, float mx,
                          float* eout) {
    (void)st;  // == 1
    const V mxv = T::set1(mx);
    V acc = T::zero();
    int64_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      const V e = vexp(T::sub(T::load(x + i), mxv));
      if (eout != nullptr) T::store(eout + i, e);
      acc = T::add(acc, e);
    }
    if (i < n) {
      const int64_t r = n - i;
      V e = vexp(T::sub(T::maskload(x + i, r), mxv));
      e = T::select(T::lanemask(r), e, T::zero());
      if (eout != nullptr) T::maskstore(eout + i, r, e);
      acc = T::add(acc, e);
    }
    return T::tree_add(acc);
  }

  static void col_sum(const float* src, float* dst, int64_t rows, int64_t cols,
                      bool accumulate) {
    int64_t j = 0;
    for (; j + kLanes <= cols; j += kLanes) {
      V acc = accumulate ? T::load(dst + j) : T::zero();
      for (int64_t r = 0; r < rows; ++r)
        acc = T::add(acc, T::load(src + r * cols + j));
      T::store(dst + j, acc);
    }
    if (j < cols) {
      const int64_t rem = cols - j;
      V acc = accumulate ? T::maskload(dst + j, rem) : T::zero();
      for (int64_t r = 0; r < rows; ++r)
        acc = T::add(acc, T::maskload(src + r * cols + j, rem));
      T::maskstore(dst + j, rem, acc);
    }
  }

  static constexpr float kInf = __builtin_huge_valf();

  /// Fills a VecOps table with this instantiation's kernels (casts are
  /// per-backend and assigned by the caller).
  static VecOps table() {
    VecOps o{};
    o.gemm = &Kern::gemm;
    o.binary = &Kern::binary;
    o.unary = &Kern::unary;
    o.axpy = &Kern::axpy;
    o.fill = &Kern::fill;
    o.adam = &Kern::adam;
    o.sgd = &Kern::sgd;
    o.finite_scaled = &Kern::finite_scaled;
    o.row_max = &Kern::row_max;
    o.row_sumexp = &Kern::row_sumexp;
    o.col_sum = &Kern::col_sum;
    return o;
  }
};

}  // namespace hfta::vec::detail
