#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace hfta {
namespace {

thread_local bool in_parallel_region = false;

class ThreadPool {
 public:
  explicit ThreadPool(int n) : n_(n) {
    workers_.reserve(static_cast<size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  int size() const { return n_; }

  // Runs fn(i) for i in [0, tasks); blocks until all complete. fn must not
  // throw (tensor kernels are noexcept by construction; API validation
  // happens before entering the pool).
  void run(int tasks, FunctionRef<void(int)> fn) {
    std::unique_lock<std::mutex> lk(mu_);
    job_ = &fn;
    job_tasks_ = tasks;
    next_task_ = 0;
    pending_ = tasks;
    ++generation_;
    cv_.notify_all();
    done_cv_.wait(lk, [this] { return pending_ == 0; });
    job_ = nullptr;
  }

 private:
  void worker_loop() {
    in_parallel_region = true;
    uint64_t seen_gen = 0;
    while (true) {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || generation_ != seen_gen; });
      if (stop_) return;
      seen_gen = generation_;
      while (next_task_ < job_tasks_) {
        const int t = next_task_++;
        const auto* job = job_;
        lk.unlock();
        (*job)(t);
        lk.lock();
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  const int n_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const FunctionRef<void(int)>* job_ = nullptr;
  int job_tasks_ = 0;
  int next_task_ = 0;
  int pending_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

int configured_threads() {
  if (const char* env = std::getenv("HFTA_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 16u));
}

ThreadPool& pool() {
  static ThreadPool p(configured_threads());
  return p;
}

}  // namespace

int num_threads() { return pool().size(); }

void parallel_for(int64_t begin, int64_t end,
                  FunctionRef<void(int64_t, int64_t)> fn,
                  int64_t grain) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  const int nt = num_threads();
  if (range < grain || nt == 1 || in_parallel_region) {
    fn(begin, end);
    return;
  }
  const int64_t chunks = std::min<int64_t>(nt, (range + grain - 1) / grain);
  const int64_t chunk = (range + chunks - 1) / chunks;
  pool().run(static_cast<int>(chunks), [&](int c) {
    const int64_t lo = begin + c * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo < hi) fn(lo, hi);
  });
}

}  // namespace hfta
