#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace hfta {
namespace {

constexpr int kMaxThreads = 64;

thread_local bool in_parallel_region = false;

// One launch in flight. Lives on parallel_for's stack; the pool waits for
// every participant to leave before returning, so the pointer never dangles.
struct Job {
  const FunctionRef<void(int64_t, int64_t)>* fn;
  int64_t begin;
  int64_t end;
  int64_t chunk;
  int64_t nchunks;
  std::atomic<int64_t> cursor{0};     // next chunk index to claim
  std::atomic<int64_t> completed{0};  // chunks whose fn call returned
};

// Claims chunks until the cursor runs dry. Chunk boundaries come from the
// Partition (fixed); only the chunk->thread assignment is dynamic.
void drain(Job& job) {
  while (true) {
    const int64_t c = job.cursor.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.nchunks) return;
    const int64_t lo = job.begin + c * job.chunk;
    const int64_t hi = std::min(job.end, lo + job.chunk);
    (*job.fn)(lo, hi);
    job.completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

class ThreadPool {
 public:
  ThreadPool() : lanes_(configured_threads()) {}

  int lanes() const { return lanes_.load(std::memory_order_relaxed); }

  void set_lanes(int n) {
    n = std::clamp(n, 1, kMaxThreads);
    std::lock_guard<std::mutex> lk(mu_);
    lanes_.store(n, std::memory_order_relaxed);
    spawn_locked(n - 1);
  }

  // Runs the job across the worker lanes; the calling thread participates.
  // fn must not throw (tensor kernels are noexcept by construction; API
  // validation happens before entering the pool).
  void run(Job& job) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      spawn_locked(lanes() - 1);
      job_ = &job;
      ++generation_;
    }
    cv_.notify_all();
    in_parallel_region = true;  // nested parallel_for inside fn runs inline
    drain(job);
    in_parallel_region = false;
    std::unique_lock<std::mutex> lk(mu_);
    // Wait for completion AND for every worker to have left the job: a
    // worker between its last fn return and its exit still touches the
    // cursor, and the job lives on our caller's stack.
    done_cv_.wait(lk, [&] {
      return job.completed.load(std::memory_order_acquire) == job.nchunks &&
             active_ == 0;
    });
    job_ = nullptr;
  }

 private:
  static int configured_threads() {
    if (const char* env = std::getenv("HFTA_NUM_THREADS")) {
      const int n = std::atoi(env);
      if (n >= 1) return std::min(n, kMaxThreads);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<int>(std::clamp(hw, 1u, 16u));
  }

  void spawn_locked(int want_workers) {
    while (static_cast<int>(workers_.size()) < want_workers &&
           static_cast<int>(workers_.size()) < kMaxThreads - 1) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { worker_loop(index); });
    }
  }

  void worker_loop(int index) {
    in_parallel_region = true;
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
      cv_.wait(lk, [&] {
        // Workers beyond the configured lane count stay parked; a stale
        // generation with job_ already cleared means the launch finished
        // without us.
        return stop_ || (generation_ != seen && job_ != nullptr &&
                         index < lanes() - 1);
      });
      if (stop_) return;
      seen = generation_;
      Job* job = job_;
      ++active_;
      lk.unlock();
      drain(*job);
      lk.lock();
      if (--active_ == 0) done_cv_.notify_all();
    }
  }

  std::atomic<int> lanes_;
  std::vector<std::thread> workers_;  // leaked with the pool singleton
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  int active_ = 0;  // workers currently inside drain()
  uint64_t generation_ = 0;
  bool stop_ = false;
};

ThreadPool& pool() {
  static ThreadPool* p = new ThreadPool();  // leaked: workers outlive main
  return *p;
}

}  // namespace

Partition Partition::range(int64_t begin, int64_t end, int64_t min_per_chunk) {
  Partition p;
  p.begin = begin;
  p.end = end;
  const int64_t n = end - begin;
  if (n <= 0) return p;
  if (min_per_chunk < 1) min_per_chunk = 1;
  const int64_t max_chunks = std::max<int64_t>(1, n / min_per_chunk);
  const int64_t nchunks = std::min(kTargetChunks, max_chunks);
  p.chunk = (n + nchunks - 1) / nchunks;
  return p;
}

int num_threads() { return pool().lanes(); }

void set_num_threads(int n) { pool().set_lanes(n); }

void parallel_for(const Partition& p,
                  FunctionRef<void(int64_t, int64_t)> fn) {
  const int64_t nchunks = p.num_chunks();
  if (nchunks <= 0) return;
  if (nchunks == 1 || in_parallel_region || pool().lanes() == 1) {
    fn(p.begin, p.end);
    return;
  }
  Job job{&fn, p.begin, p.end, p.chunk, nchunks};
  pool().run(job);
}

}  // namespace hfta
