// Process-wide construction counters for the autograd tape, the sibling of
// Tensor::alloc_count() for graph metadata: where the storage counter
// proves a warm step recycles every buffer, the node counter proves a
// replayed step records no tape at all. Lives in core (not autograd) so
// IterationScope can report both without a layering inversion.
#pragma once

#include <atomic>
#include <cstdint>

namespace hfta::counters {

inline std::atomic<uint64_t>& node_counter() {
  static std::atomic<uint64_t> c{0};
  return c;
}

/// Called by ag::Node's constructor — every tape node ever built.
inline void count_node_construction() {
  node_counter().fetch_add(1, std::memory_order_relaxed);
}

/// ag::Node constructions since process start (monotonic; read deltas).
inline uint64_t node_constructions() {
  return node_counter().load(std::memory_order_relaxed);
}

}  // namespace hfta::counters
