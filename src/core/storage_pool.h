// Size-bucketed recycling pool for tensor storage, with per-thread free
// lists and intrusive refcounts.
//
// Training iterates the same graph over and over: every step allocates the
// same set of activation/gradient buffers and frees them before the next
// step begins. The pool turns that churn into pointer swaps — a freed
// buffer parks on a free list and the next same-size acquire pops it
// instead of touching the heap — so steady-state iterations perform zero
// heap allocations for tensor storage. Buffers are bucketed by capacity
// rounded up to a power of two (min 64 floats), so near-size requests share
// lists and the cache stays small.
//
// Two designs keep that invariant cheap under multi-threaded kernels:
//
//  * Intrusive refcounts. Each pooled block starts with a StorageBlock
//    header (atomic refcount + capacity) and Tensors hold a StorageRef — a
//    thin intrusive smart pointer. The previous shared_ptr<float> design
//    heap-allocated a control block per acquire, which silently broke the
//    "zero allocations per warm step" property; StorageRef allocates
//    nothing.
//
//  * Per-thread LIFO free lists. Releases park on the releasing thread's
//    cache and acquires pop from the acquiring thread's cache, so the hot
//    path never touches the shared-bucket mutex. Misses spill to the shared
//    buckets, and a would-be heap allocation first STEALS from sibling
//    caches — a buffer is only ever heap-allocated when its bucket is empty
//    across the whole process, so dynamic chunk->thread scheduling cannot
//    reintroduce warm-step allocations.
//
// Zero-fill is a separate concern from allocation: acquire(numel, zeroed)
// memsets only when the caller's semantics need it. Kernels and factories
// that overwrite every output element use the uninitialized path
// (Tensor::empty) and skip the memset entirely.
//
// The pool also powers the repo's allocation instrumentation: heap_allocs /
// heap_bytes count every real heap allocation (pool misses and
// disabled-path allocations alike), which is what the steady-state
// zero-alloc tests assert on via IterationScope::Stats.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/op_counters.h"

namespace hfta {

/// Header living inside every pooled allocation, directly in front of the
/// float payload. alignas(64) keeps the payload cache-line / 64-byte aligned
/// (sizeof(StorageBlock) rounds to a multiple of the alignment, so the
/// payload at `this + 1` inherits it) — SIMD kernels may then use aligned
/// 32-byte loads on pooled tensors and packed panels never straddle a line.
struct alignas(64) StorageBlock {
  std::atomic<uint64_t> refs;
  int64_t capacity;  // payload floats (the bucket size)
  bool pooled;       // acquired while the pool was enabled

  float* payload() { return reinterpret_cast<float*>(this + 1); }
};

/// Intrusive refcounted handle to a StorageBlock. Copy = refcount bump (no
/// allocation, unlike a shared_ptr control block); the last ref returns the
/// block to the pool.
class StorageRef {
 public:
  StorageRef() = default;
  /// Adopts a block whose refcount is already 1 (pool acquire path).
  explicit StorageRef(StorageBlock* block) : block_(block) {}

  StorageRef(const StorageRef& o) : block_(o.block_) { retain(); }
  StorageRef(StorageRef&& o) noexcept : block_(o.block_) { o.block_ = nullptr; }
  StorageRef& operator=(const StorageRef& o) {
    if (this != &o) {
      release();
      block_ = o.block_;
      retain();
    }
    return *this;
  }
  StorageRef& operator=(StorageRef&& o) noexcept {
    if (this != &o) {
      release();
      block_ = o.block_;
      o.block_ = nullptr;
    }
    return *this;
  }
  ~StorageRef() { release(); }

  float* data() const { return block_ ? block_->payload() : nullptr; }
  explicit operator bool() const { return block_ != nullptr; }
  bool operator==(const StorageRef& o) const { return block_ == o.block_; }
  bool operator!=(const StorageRef& o) const { return block_ != o.block_; }
  /// Current refcount (tests).
  uint64_t use_count() const {
    return block_ ? block_->refs.load(std::memory_order_relaxed) : 0;
  }

 private:
  void retain() {
    if (block_) block_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  void release();  // defined in storage_pool.cpp (needs StoragePool)

  StorageBlock* block_ = nullptr;
};

class StoragePool {
 public:
  /// The process-wide pool (leaky singleton: never destroyed, so tensor
  /// releases running during static teardown stay safe).
  static StoragePool& instance();

  /// A buffer of at least `numel` floats, zero-filled when `zeroed`.
  /// Served from the calling thread's cache, then the shared buckets, then
  /// by stealing from sibling thread caches; falls back to the heap (and
  /// counts a heap alloc) only when the bucket is empty process-wide.
  StorageRef acquire(int64_t numel, bool zeroed);

  struct Config {
    /// Recycling on/off. Disabling does not drop cached buffers (trim()
    /// does) and in-flight pooled buffers are heap-freed on release while
    /// the pool is off.
    bool enabled = true;
    /// Bench hook: when on, EVERY acquire is zero-filled — including
    /// Tensor::empty / PooledBuffer ones — emulating the
    /// pre-iteration-engine allocator (all storage was a zero-initialized
    /// std::vector) for honest before/after A-B measurements. Values are
    /// unaffected either way: empty-path users overwrite fully, so extra
    /// zeroing only costs time.
    bool zero_fill_all = false;
  };
  void set_config(const Config& c);
  Config config() const;

  struct Stats {
    uint64_t heap_allocs = 0;    // real heap allocations since last reset
    uint64_t heap_bytes = 0;     // bytes those allocations requested
    uint64_t pool_hits = 0;      // acquires served from any free list
    uint64_t cached_buffers = 0; // buffers currently parked (all lists)
    uint64_t cached_bytes = 0;
  };
  Stats stats() const;
  /// Resets the cumulative counters (cached_* reflect live state and are
  /// not affected).
  void reset_stats();

  /// Frees every cached buffer — shared buckets and every thread cache.
  /// Live tensors are unaffected; they return to the (now empty) free
  /// lists as usual when released.
  void trim();

 private:
  friend class StorageRef;

  // Per-thread free lists. The owning thread takes the mutex uncontended on
  // the hot path; other threads lock it only to steal on a would-be heap
  // allocation or to trim.
  struct ThreadCache {
    std::mutex mu;
    std::unordered_map<int64_t, std::vector<StorageBlock*>> lists;
  };

  StoragePool() = default;

  void release(StorageBlock* block);
  /// This thread's cache, or nullptr during thread/process teardown (after
  /// the thread-local holder was destroyed) — callers then use the shared
  /// buckets directly.
  ThreadCache* local_cache();
  void flush_cache(const std::shared_ptr<ThreadCache>& cache);
  StorageBlock* steal(int64_t capacity, const ThreadCache* self);
  StorageBlock* heap_alloc(int64_t capacity);

  // Most buffers a thread parks per bucket before spilling to the shared
  // lists (bounds per-thread memory when one thread frees what another
  // allocates).
  static constexpr size_t kMaxCachedPerBucket = 8;

  mutable std::mutex mu_;  // guards the shared free_ buckets
  std::unordered_map<int64_t, std::vector<StorageBlock*>> free_;
  std::atomic<bool> enabled_{true};
  std::atomic<bool> zero_fill_all_{false};

  std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadCache>> caches_;

  // Relaxed atomics: counters are read for snapshots, never for
  // synchronization.
  std::atomic<uint64_t> heap_allocs_{0};
  std::atomic<uint64_t> heap_bytes_{0};
  std::atomic<uint64_t> pool_hits_{0};
  std::atomic<uint64_t> cached_buffers_{0};
  std::atomic<uint64_t> cached_bytes_{0};
};

inline void StorageRef::release() {
  if (block_ &&
      block_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    StoragePool::instance().release(block_);
  }
  block_ = nullptr;
}

/// RAII window over the allocation/tape counters for one training
/// iteration. Construct at the top of a step, snapshot the deltas:
///
///   IterationScope scope;
///   ... zero_grad / forward / backward / step ...
///   assert(scope.stats().heap_allocs == 0);  // steady state: all recycled
///
/// Destruction publishes the deltas as IterationScope::last(), so drivers
/// can report per-iteration behavior without threading the scope around.
class IterationScope {
 public:
  /// One snapshot of everything a step driver reports: allocation behavior
  /// and the tape tax (ag::Node constructions — zero for a replayed step
  /// program, one per differentiable op for a taped step).
  struct Stats {
    uint64_t heap_allocs = 0;
    uint64_t heap_bytes = 0;
    uint64_t pool_hits = 0;
    uint64_t node_constructions = 0;
  };

  IterationScope();
  ~IterationScope();

  /// Deltas since construction.
  Stats stats() const;

  /// Deltas recorded by the most recently destroyed scope.
  static Stats last();

 private:
  StoragePool::Stats start_;
  uint64_t start_nodes_ = 0;
};

/// RAII scratch buffer of `numel` uninitialized floats from the pool, for
/// kernel-internal temporaries (im2col columns, materialized transposes)
/// that previously heap-allocated a std::vector per call.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  explicit PooledBuffer(int64_t numel)
      : buf_(StoragePool::instance().acquire(numel, /*zeroed=*/false)) {}

  float* data() { return buf_.data(); }
  const float* data() const { return buf_.data(); }

 private:
  StorageRef buf_;
};

}  // namespace hfta
