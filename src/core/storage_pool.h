// Size-bucketed recycling pool for tensor storage.
//
// Training iterates the same graph over and over: every step allocates the
// same set of activation/gradient buffers and frees them before the next
// step begins. The pool turns that churn into pointer swaps — a freed
// buffer parks on a per-size free list and the next same-size acquire pops
// it instead of touching the heap — so steady-state iterations perform
// zero heap allocations for tensor storage. Buffers are bucketed by
// capacity rounded up to a power of two (min 64 floats), so near-size
// requests share lists and the cache stays small.
//
// Zero-fill is a separate concern from allocation: acquire(numel, zeroed)
// memsets only when the caller's semantics need it. Kernels and factories
// that overwrite every output element use the uninitialized path
// (Tensor::empty) and skip the memset entirely.
//
// The pool also powers the repo's allocation instrumentation: heap_allocs /
// heap_bytes count every real new[] (pool misses and disabled-path
// allocations alike), which is what Tensor::alloc_count() reports and what
// the steady-state zero-alloc tests assert on.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/op_counters.h"

namespace hfta {

class StoragePool {
 public:
  /// The process-wide pool (leaky singleton: never destroyed, so tensor
  /// deleters running during static teardown stay safe).
  static StoragePool& instance();

  /// A buffer of at least `numel` floats, zero-filled when `zeroed`.
  /// Served from a free list when one fits; falls back to the heap (and
  /// counts a heap alloc) otherwise. When the pool is disabled the buffer
  /// is a plain heap allocation whose deleter bypasses the pool.
  std::shared_ptr<float> acquire(int64_t numel, bool zeroed);

  /// Toggles recycling. Disabling does not drop cached buffers (trim()
  /// does) and in-flight pooled buffers are heap-freed on release while
  /// the pool is off.
  void set_enabled(bool on);
  bool enabled() const { return enabled_; }

  /// Bench/test hook: when on, EVERY acquire is zero-filled — including
  /// Tensor::empty / PooledBuffer ones — emulating the pre-iteration-engine
  /// allocator (all storage was a zero-initialized std::vector) for honest
  /// before/after A-B measurements. Values are unaffected either way:
  /// empty-path users overwrite fully, so extra zeroing only costs time.
  void set_zero_fill_all(bool on) { zero_fill_all_ = on; }
  bool zero_fill_all() const { return zero_fill_all_; }

  struct Stats {
    uint64_t heap_allocs = 0;    // real new[] calls since the last reset
    uint64_t heap_bytes = 0;     // bytes those allocations requested
    uint64_t pool_hits = 0;      // acquires served from a free list
    uint64_t cached_buffers = 0; // buffers currently parked on free lists
    uint64_t cached_bytes = 0;
  };
  Stats stats() const;
  /// Resets the cumulative counters (cached_* reflect live state and are
  /// not affected).
  void reset_stats();

  /// Frees every cached buffer. Live tensors are unaffected; they return
  /// to the (now empty) free lists as usual when released.
  void trim();

 private:
  StoragePool() = default;

  void release(float* p, int64_t capacity);

  mutable std::mutex mu_;
  std::unordered_map<int64_t, std::vector<float*>> free_;  // capacity -> LIFO
  std::atomic<bool> enabled_{true};
  std::atomic<bool> zero_fill_all_{false};
  Stats stats_;
};

/// RAII window over the pool counters for one training iteration. Construct
/// at the top of a step, read the deltas before (or after) it ends:
///
///   IterationScope scope;
///   ... zero_grad / forward / backward / step ...
///   assert(scope.heap_allocs() == 0);  // steady state: everything recycled
///
/// Destruction publishes the deltas as StoragePool "last scope" data via
/// last_heap_allocs()/last_pool_hits(), so drivers can report per-iteration
/// allocation behavior without threading the scope object around.
class IterationScope {
 public:
  IterationScope();
  ~IterationScope();

  uint64_t heap_allocs() const;  // heap allocs since construction
  uint64_t pool_hits() const;    // free-list hits since construction
  /// ag::Node constructions since construction — the tape tax. Zero for a
  /// replayed step program; one per differentiable op for a taped step.
  uint64_t node_constructions() const;

  /// Deltas recorded by the most recently destroyed scope.
  static uint64_t last_heap_allocs();
  static uint64_t last_pool_hits();
  static uint64_t last_node_constructions();

 private:
  StoragePool::Stats start_;
  uint64_t start_nodes_ = 0;
};

/// RAII scratch buffer of `numel` uninitialized floats from the pool, for
/// kernel-internal temporaries (im2col columns, materialized transposes)
/// that previously heap-allocated a std::vector per call.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  explicit PooledBuffer(int64_t numel)
      : buf_(StoragePool::instance().acquire(numel, /*zeroed=*/false)) {}

  float* data() { return buf_.get(); }
  const float* data() const { return buf_.get(); }

 private:
  std::shared_ptr<float> buf_;
};

}  // namespace hfta
