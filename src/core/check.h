// Error-handling primitives used across hfta-cpp.
//
// HFTA_CHECK(cond, msg...) throws hfta::Error on violation. Shape and
// argument validation is always on (these are API-boundary checks, not
// asserts); hot inner loops avoid them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hfta {

/// Exception type thrown on any precondition violation inside hfta-cpp.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
inline void check_stream(std::ostringstream&) {}
template <typename T, typename... Rest>
void check_stream(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  check_stream(os, rest...);
}
}  // namespace detail

/// Throws hfta::Error with file/line context when `cond` is false.
#define HFTA_CHECK(cond, ...)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << "HFTA_CHECK failed: " #cond " at " << __FILE__ << ":"        \
          << __LINE__ << ": ";                                            \
      ::hfta::detail::check_stream(os_, ##__VA_ARGS__);                   \
      throw ::hfta::Error(os_.str());                                     \
    }                                                                     \
  } while (0)

}  // namespace hfta
