// Scalar f32 <-> f16/bf16 bit converters (round-to-nearest-even).
//
// These live in core/ (not tensor/dtype.cpp) because they are the REFERENCE
// semantics for the vectorized cast kernels in core/vec_*.cpp: the scalar
// SIMD-emulation path calls them per lane, and the AVX2/F16C path must match
// them bit-for-bit on every input — including NaN payloads, where hardware
// converters quiet signaling NaNs but these deliberately pass payloads
// through (f16 -> f32) or canonicalize them (f32 -> f16). Keeping one copy
// here means "matches the scalar converter" is true by construction for the
// scalar lane path and testable exhaustively for the vector path.
#pragma once

#include <cstdint>
#include <cstring>

namespace hfta {

inline uint32_t f32_bits(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  return x;
}

inline float bits_f32(uint32_t x) {
  float f;
  std::memcpy(&f, &x, sizeof(f));
  return f;
}

inline uint16_t f32_to_f16_bits(float f) {
  const uint32_t x = f32_bits(f);
  const uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  const uint32_t abs = x & 0x7fffffffu;
  if (abs >= 0x7f800000u) {
    // Inf stays inf; NaN stays NaN (quieted — software converters cannot
    // preserve 23-bit payloads in 10 bits, so set the quiet bit).
    return static_cast<uint16_t>(sign | 0x7c00u |
                                 (abs > 0x7f800000u ? 0x0200u : 0u));
  }
  const int32_t e = static_cast<int32_t>(abs >> 23) - 127 + 15;  // rebias
  uint32_t m = abs & 0x007fffffu;
  if (e >= 31) return static_cast<uint16_t>(sign | 0x7c00u);  // -> inf
  if (e <= 0) {
    // Result is subnormal (or zero). Shift the full significand (implicit
    // bit restored) down to the 10-bit subnormal grid and round the shifted-
    // out remainder to nearest, ties to even. A carry out of the mantissa
    // lands on the smallest normal — which is exactly the right answer.
    if (e < -10) return sign;  // below half the smallest subnormal
    m |= 0x00800000u;
    const uint32_t shift = static_cast<uint32_t>(14 - e);  // 14..24
    uint16_t h = static_cast<uint16_t>(sign | (m >> shift));
    const uint32_t rem = m & ((1u << shift) - 1u);
    const uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (h & 1u))) ++h;
    return h;
  }
  // Normal: drop 13 mantissa bits with RNE. The increment may carry into the
  // exponent; e == 30 with a full mantissa then rounds to inf, as required.
  uint16_t h = static_cast<uint16_t>(sign | (static_cast<uint32_t>(e) << 10) |
                                     (m >> 13));
  const uint32_t rem = m & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
  return h;
}

inline float f16_bits_to_f32(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t e = (h >> 10) & 0x1fu;
  uint32_t m = h & 0x3ffu;
  if (e == 31) return bits_f32(sign | 0x7f800000u | (m << 13));  // inf / nan
  if (e == 0) {
    if (m == 0) return bits_f32(sign);  // +-0
    // Subnormal: value is m * 2^-24; normalize into an f32 with an implicit
    // leading bit. Exact — f32 has exponent range to spare.
    int shift = 0;
    while (!(m & 0x400u)) {
      m <<= 1;
      ++shift;
    }
    m &= 0x3ffu;
    return bits_f32(sign | (static_cast<uint32_t>(113 - shift) << 23) |
                    (m << 13));
  }
  return bits_f32(sign | ((e - 15 + 127) << 23) | (m << 13));
}

inline uint16_t f32_to_bf16_bits(float f) {
  uint32_t x = f32_bits(f);
  if ((x & 0x7fffffffu) > 0x7f800000u) {
    // NaN: keep sign + high payload bits, force the quiet bit so a payload
    // living entirely in the dropped low 16 bits cannot turn into inf.
    return static_cast<uint16_t>((x >> 16) | 0x0040u);
  }
  // RNE via the classic carry trick: add 0x7fff plus the LSB of the kept
  // part. Carries propagate into the exponent (overflow -> inf, correct);
  // inf itself has a zero mantissa so the add never changes it.
  x += 0x7fffu + ((x >> 16) & 1u);
  return static_cast<uint16_t>(x >> 16);
}

inline float bf16_bits_to_f32(uint16_t h) {
  return bits_f32(static_cast<uint32_t>(h) << 16);
}

}  // namespace hfta
