#include "cluster/classify.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace hfta::cluster {

int64_t levenshtein(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  std::vector<int64_t> prev(m + 1), cur(m + 1);
  std::iota(prev.begin(), prev.end(), 0);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int64_t>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int64_t sub = prev[j - 1] + (a[i - 1] != b[j - 1]);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double name_similarity(const std::string& a, const std::string& b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(levenshtein(a, b)) /
                   static_cast<double>(longest);
}

std::vector<JobKind> classify(const std::vector<Job>& jobs,
                              const ClassifierConfig& cfg) {
  std::vector<JobKind> out(jobs.size(), JobKind::kOther);

  // Rule 1: multi-GPU or pinned-node => distributed / other.
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].gpus > 1) {
      out[i] = JobKind::kDistributed;
    } else if (jobs[i].pinned_node) {
      out[i] = JobKind::kOther;
    } else {
      out[i] = JobKind::kIsolatedSingleGpu;  // provisional
    }
  }

  // Rules 2+3: per user, sort candidate single-GPU jobs by submit time and
  // grow 60-second windows; a window of >= min_batch jobs whose names are
  // mutually similar (>= threshold to the window's first job) is repetitive.
  std::map<std::string, std::vector<size_t>> by_user;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (out[i] == JobKind::kIsolatedSingleGpu)
      by_user[jobs[i].user].push_back(i);
  }
  for (auto& [user, idx] : by_user) {
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return jobs[a].submit_time_s < jobs[b].submit_time_s;
    });
    size_t start = 0;
    while (start < idx.size()) {
      std::vector<size_t> batch = {idx[start]};
      size_t next = start + 1;
      while (next < idx.size() &&
             jobs[idx[next]].submit_time_s -
                     jobs[idx[start]].submit_time_s <=
                 cfg.window_s) {
        if (name_similarity(jobs[idx[start]].name, jobs[idx[next]].name) >=
            cfg.similarity_threshold) {
          batch.push_back(idx[next]);
        }
        ++next;
      }
      if (static_cast<int64_t>(batch.size()) >= cfg.min_batch) {
        for (size_t j : batch) out[j] = JobKind::kRepetitiveSingleGpu;
      }
      start = next;
    }
  }
  return out;
}

}  // namespace hfta::cluster
