// Aggregation for the cluster-usage study: Table 1 / Fig. 9 GPU-hour
// breakdown and classifier quality metrics against the generator labels.
#pragma once

#include "cluster/classify.h"

namespace hfta::cluster {

struct UsageBreakdown {
  double repetitive_h = 0, isolated_h = 0, distributed_h = 0, other_h = 0;
  int64_t total_jobs = 0;

  double total_h() const {
    return repetitive_h + isolated_h + distributed_h + other_h;
  }
  double repetitive_frac() const { return repetitive_h / total_h(); }
};

UsageBreakdown breakdown(const std::vector<Job>& jobs,
                         const std::vector<JobKind>& kinds);

struct ClassifierQuality {
  double precision = 0;  // of predicted repetitive, fraction truly so
  double recall = 0;     // of truly repetitive, fraction found
};

ClassifierQuality evaluate(const std::vector<Job>& jobs,
                           const std::vector<JobKind>& predicted);

}  // namespace hfta::cluster
