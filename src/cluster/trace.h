// Synthetic GPU-cluster job trace generator (substitute for the Vector
// Institute logs of paper Appendix A — 51K jobs / 472K GPU-hours over two
// months). The generator emits the workload mixture of Table 1 with the
// submission patterns the paper's classifier keys on: repetitive batches
// are submitted by one user within 60 s with near-identical names varying
// only in hyper-parameter suffixes.
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"

namespace hfta::cluster {

enum class JobKind {
  kRepetitiveSingleGpu,
  kIsolatedSingleGpu,
  kDistributed,
  kOther,
};

struct Job {
  int64_t job_id = 0;
  std::string user;
  std::string name;
  double submit_time_s = 0;
  double duration_h = 0;     // wall-clock hours
  int64_t gpus = 1;
  bool pinned_node = false;  // requested a specific node (multi-node jobs)
  JobKind truth = JobKind::kOther;  // generator label (for evaluation)

  double gpu_hours() const { return duration_h * static_cast<double>(gpus); }
};

struct TraceConfig {
  int64_t target_jobs = 51338;      // paper: 51,338 jobs
  double target_gpu_hours = 471768; // paper: 471,768 GPU-hours
  // Table 1 mixture (fractions of GPU-hours).
  double repetitive_frac = 0.462;
  double isolated_frac = 0.035;
  double distributed_frac = 0.240;
  double other_frac = 0.263;
  int64_t num_users = 501;          // paper: 501 community members
};

/// Generates a two-month trace with the configured mixture.
std::vector<Job> generate_trace(const TraceConfig& cfg, uint64_t seed);

}  // namespace hfta::cluster
