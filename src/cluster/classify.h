// The paper's repetitive-job classifier (Appendix A):
//  1. single-GPU request without node pinning,
//  2. batched submission: >= `min_batch` such jobs from the same user
//     within a 60-second window,
//  3. near-identical names: normalized Levenshtein similarity >= 0.9
//     within the batch.
#pragma once

#include "cluster/trace.h"

namespace hfta::cluster {

/// Levenshtein edit distance (Levenshtein 1966).
int64_t levenshtein(const std::string& a, const std::string& b);

/// Normalized similarity in [0, 1]: 1 - distance / max(len) (1 = identical).
double name_similarity(const std::string& a, const std::string& b);

struct ClassifierConfig {
  double window_s = 60.0;
  double similarity_threshold = 0.9;
  int64_t min_batch = 3;
};

/// Returns the predicted kind for every job (aligned with `jobs`).
std::vector<JobKind> classify(const std::vector<Job>& jobs,
                              const ClassifierConfig& cfg = {});

}  // namespace hfta::cluster
