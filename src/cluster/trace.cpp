#include "cluster/trace.h"

#include <cmath>

#include "core/check.h"

namespace hfta::cluster {

namespace {

constexpr double kTwoMonthsSeconds = 60.0 * 24 * 3600;

std::string user_name(int64_t i) { return "user" + std::to_string(i); }

// Hyper-parameter-suffixed job names: long shared experiment prefix with a
// short fixed-width variable tail ("..._lr0.0012_s3") — the pattern the
// paper's manual inspection found (names within a batch differ only in
// small hyper-parameter variations, normalized similarity >= 0.9).
std::string sweep_name(const std::string& base, Rng& rng) {
  const double lr = std::pow(10.0, rng.uniform(-4.0, -2.0));
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s_lr%.4f_s%ld", base.c_str(), lr,
                rng.uniform_int(10));
  return buf;
}

}  // namespace

std::vector<Job> generate_trace(const TraceConfig& cfg, uint64_t seed) {
  Rng rng(seed);
  std::vector<Job> jobs;
  int64_t next_id = 1;
  double hours[4] = {0, 0, 0, 0};
  const double targets[4] = {cfg.repetitive_frac * cfg.target_gpu_hours,
                             cfg.isolated_frac * cfg.target_gpu_hours,
                             cfg.distributed_frac * cfg.target_gpu_hours,
                             cfg.other_frac * cfg.target_gpu_hours};

  // Repetitive batches: a user submits 4-32 near-identical single-GPU jobs
  // within a minute.
  while (hours[0] < targets[0] &&
         static_cast<int64_t>(jobs.size()) < cfg.target_jobs) {
    const std::string user = user_name(rng.uniform_int(cfg.num_users / 4));
    const std::string base = "project_sweep_" + user + "_model_variant_" +
                             std::to_string(rng.uniform_int(40)) +
                             "_training_run";
    const int64_t batch = 4 + rng.uniform_int(29);
    const double t0 = rng.uniform(0, kTwoMonthsSeconds);
    const double dur = std::max(0.2, rng.normal(8.0, 4.0));
    for (int64_t i = 0; i < batch; ++i) {
      Job j;
      j.job_id = next_id++;
      j.user = user;
      j.name = sweep_name(base, rng);
      j.submit_time_s = t0 + rng.uniform(0, 55.0);
      j.duration_h = std::max(0.1, dur + rng.normal(0, 0.5));
      j.gpus = 1;
      j.truth = JobKind::kRepetitiveSingleGpu;
      hours[0] += j.gpu_hours();
      jobs.push_back(std::move(j));
    }
  }
  // Isolated single-GPU jobs: unique names, spread-out submissions.
  while (hours[1] < targets[1]) {
    Job j;
    j.job_id = next_id++;
    j.user = user_name(rng.uniform_int(cfg.num_users));
    j.name = "job_" + std::to_string(rng.uniform_int(1000000));
    j.submit_time_s = rng.uniform(0, kTwoMonthsSeconds);
    j.duration_h = std::max(0.1, rng.normal(5.0, 3.0));
    j.gpus = 1;
    j.truth = JobKind::kIsolatedSingleGpu;
    hours[1] += j.gpu_hours();
    jobs.push_back(std::move(j));
  }
  // Distributed jobs: multiple GPUs (single-node) or pinned nodes.
  while (hours[2] < targets[2]) {
    Job j;
    j.job_id = next_id++;
    j.user = user_name(rng.uniform_int(cfg.num_users));
    j.name = "ddp_" + std::to_string(rng.uniform_int(100000));
    j.submit_time_s = rng.uniform(0, kTwoMonthsSeconds);
    j.duration_h = std::max(0.5, rng.normal(12.0, 6.0));
    j.gpus = 2 + rng.uniform_int(7);
    j.pinned_node = rng.bernoulli(0.3);
    j.truth = JobKind::kDistributed;
    hours[2] += j.gpu_hours();
    jobs.push_back(std::move(j));
  }
  // Other: interactive sessions, notebooks, unidentifiable.
  while (hours[3] < targets[3]) {
    Job j;
    j.job_id = next_id++;
    j.user = user_name(rng.uniform_int(cfg.num_users));
    j.name = rng.bernoulli(0.5)
                 ? "interactive"
                 : "notebook_" + std::to_string(rng.uniform_int(100000));
    j.submit_time_s = rng.uniform(0, kTwoMonthsSeconds);
    j.duration_h = std::max(0.1, rng.normal(6.0, 5.0));
    j.gpus = 1;
    j.pinned_node = true;  // interactive/notebook sessions pin their node
    j.truth = JobKind::kOther;
    hours[3] += j.gpu_hours();
    jobs.push_back(std::move(j));
  }
  return jobs;
}

}  // namespace hfta::cluster
