#include "cluster/report.h"

#include "core/check.h"

namespace hfta::cluster {

UsageBreakdown breakdown(const std::vector<Job>& jobs,
                         const std::vector<JobKind>& kinds) {
  HFTA_CHECK(jobs.size() == kinds.size(), "breakdown: size mismatch");
  UsageBreakdown b;
  b.total_jobs = static_cast<int64_t>(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const double h = jobs[i].gpu_hours();
    switch (kinds[i]) {
      case JobKind::kRepetitiveSingleGpu: b.repetitive_h += h; break;
      case JobKind::kIsolatedSingleGpu: b.isolated_h += h; break;
      case JobKind::kDistributed: b.distributed_h += h; break;
      case JobKind::kOther: b.other_h += h; break;
    }
  }
  return b;
}

ClassifierQuality evaluate(const std::vector<Job>& jobs,
                           const std::vector<JobKind>& predicted) {
  HFTA_CHECK(jobs.size() == predicted.size(), "evaluate: size mismatch");
  int64_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const bool truth = jobs[i].truth == JobKind::kRepetitiveSingleGpu;
    const bool pred = predicted[i] == JobKind::kRepetitiveSingleGpu;
    tp += truth && pred;
    fp += !truth && pred;
    fn += truth && !pred;
  }
  ClassifierQuality q;
  q.precision = tp + fp == 0 ? 0 : static_cast<double>(tp) / (tp + fp);
  q.recall = tp + fn == 0 ? 0 : static_cast<double>(tp) / (tp + fn);
  return q;
}

}  // namespace hfta::cluster
