#include "autograd/autocast.h"

#include "autograd/functions.h"

namespace hfta::ag {

namespace {
thread_local bool g_autocast_enabled = false;
thread_local DType g_autocast_dtype = DType::kF32;
}  // namespace

bool autocast_enabled() { return g_autocast_enabled; }

DType autocast_dtype() { return g_autocast_dtype; }

AutocastGuard::AutocastGuard(DType dtype)
    : prev_enabled_(g_autocast_enabled), prev_dtype_(g_autocast_dtype) {
  g_autocast_enabled = dtype != DType::kF32;
  g_autocast_dtype = dtype;
}

AutocastGuard::~AutocastGuard() {
  g_autocast_enabled = prev_enabled_;
  g_autocast_dtype = prev_dtype_;
}

Variable autocast_input(const Variable& v) {
  if (!g_autocast_enabled || !v.defined()) return v;
  if (v.value().dtype() == g_autocast_dtype) return v;
  return cast(v, g_autocast_dtype);
}

}  // namespace hfta::ag
