#include "autograd/engine.h"

#include <atomic>
#include <unordered_set>

#include "core/check.h"

namespace hfta::ag {

namespace {
// Visit marks must be unique across every Engine in the process (impls are
// shared between graphs, and nothing stops two engines from touching the
// same tape), so run ids come from one global counter.
std::atomic<uint64_t> g_run_counter{0};
}  // namespace

void Engine::run(const Variable& root, Tensor seed, BackwardTape* capture) {
  HFTA_CHECK(root.defined(), "backward() on undefined Variable");
  if (!seed.defined()) {
    HFTA_CHECK(root.numel() == 1,
               "backward() without seed requires a scalar; got ",
               shape_str(root.shape()));
    seed = Tensor::ones(root.value().shape());
  }
  HFTA_CHECK(seed.numel() == root.numel(), "backward(): seed shape mismatch");

  const uint64_t mark = ++g_run_counter;
  Variable::Impl* root_impl = root.impl_.get();

  // Topological order over impls (post-order DFS, iterative) — the same
  // traversal Variable::backward() always performed, with the visited set
  // replaced by an epoch stamp and the scratch vectors reused across runs.
  topo_.clear();
  stack_.clear();
  stack_.emplace_back(root_impl, 0);
  root_impl->visit_mark = mark;
  while (!stack_.empty()) {
    auto& [impl, child] = stack_.back();
    if (impl->node && child < impl->node->inputs.size()) {
      const Variable& in = impl->node->inputs[child++];
      if (in.defined()) {
        Variable::Impl* ci = in.impl_.get();
        if (ci->node && ci->visit_mark != mark) {
          ci->visit_mark = mark;
          stack_.emplace_back(ci, 0);
        }
      }
    } else {
      topo_.push_back(impl);
      stack_.pop_back();
    }
  }

  // Capture bookkeeping: the dedup set exists only on the (rare) capture
  // run, so eager passes pay nothing for recordability.
  std::unordered_set<Variable::Impl*> seen_targets;
  if (capture != nullptr) {
    capture->clear();
    capture->root = root;
    capture->seed = seed.reshape(root.shape());
  }

  // Seed and propagate in reverse topological order.
  root_impl->grad =
      root_impl->grad.defined() ? root_impl->grad : Tensor::zeros(root.shape());
  root_impl->grad.add_(seed.reshape(root.shape()));
  if (capture != nullptr) {
    capture->grad_targets.push_back(root_impl);
    seen_targets.insert(root_impl);
  }
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    Variable::Impl* impl = *it;
    if (!impl->node || !impl->grad.defined()) continue;
    if (capture != nullptr) capture->schedule.push_back(impl);
    std::vector<Tensor> gin = impl->node->backward(impl->grad);
    HFTA_CHECK(gin.size() == impl->node->inputs.size(),
               "backward of ", impl->node->name, " returned ", gin.size(),
               " grads for ", impl->node->inputs.size(), " inputs");
    for (size_t i = 0; i < gin.size(); ++i) {
      const Variable& in = impl->node->inputs[i];
      if (!in.defined() || !gin[i].defined()) continue;
      if (!in.impl_->requires_grad && !in.impl_->node) continue;
      Tensor& g = in.impl_->grad;
      if (!g.defined()) g = Tensor::zeros(in.shape());
      HFTA_CHECK(gin[i].numel() == g.numel(), "backward of ",
                 impl->node->name, ": grad ", i, " numel mismatch");
      g.add_(gin[i]);
      if (capture != nullptr && seen_targets.insert(in.impl_.get()).second)
        capture->grad_targets.push_back(in.impl_.get());
    }
  }
  ++runs_;
}

void BackwardTape::replay() const {
  HFTA_CHECK(captured(), "BackwardTape::replay() before any capture");
  // Zero every gradient buffer the captured pass wrote (in place: the
  // buffers are pinned by the captured graph), then re-seed the root —
  // equivalent to eager's fresh lazily-zeroed grads.
  for (Variable::Impl* t : grad_targets) {
    if (t->grad.defined()) {
      t->grad.zero_();
    } else {
      t->grad = Tensor::zeros(t->value.shape());
    }
  }
  root.impl_->grad.add_(seed);
  // The captured schedule, with the captured accumulation order.
  for (Variable::Impl* impl : schedule) {
    std::vector<Tensor> gin = impl->node->backward(impl->grad);
    HFTA_CHECK(gin.size() == impl->node->inputs.size(),
               "replay of ", impl->node->name, " returned ", gin.size(),
               " grads for ", impl->node->inputs.size(), " inputs");
    for (size_t i = 0; i < gin.size(); ++i) {
      const Variable& in = impl->node->inputs[i];
      if (!in.defined() || !gin[i].defined()) continue;
      if (!in.impl_->requires_grad && !in.impl_->node) continue;
      in.impl_->grad.add_(gin[i]);
    }
  }
}

void BackwardTape::clear() {
  root = Variable();
  seed = Tensor();
  schedule.clear();
  grad_targets.clear();
}

}  // namespace hfta::ag
