// Step programs: capture one training iteration's kernel sequence once,
// replay it tape-free thereafter — the compile-plan-once / execute-many
// posture of CUDA Graphs and MIOpen's Fusion API, applied to the fused
// training step.
//
// Eager mode re-records the autograd tape every iteration: a fresh
// ag::Node, closure, and Variable::Impl per differentiable op, plus a
// topological re-sort per backward. The graph is identical step to step —
// training IS the repetition of one step — so a StepProgram records that
// work exactly once:
//
//   - Forward: every differentiable op funnels through make_op
//     (autograd/functions.cpp), which, while a CaptureGuard is active,
//     appends {pinned output tensor, recompute thunk} to the recording
//     program. The thunk captures the op's *input tensors by value* —
//     shared storage, so the thunk permanently reads through the buffers
//     the capture run resolved from the StoragePool (buffer pinning).
//     Replay runs the thunks in recorded order and copies each result
//     into its pinned output (view ops share storage and skip the copy),
//     so every downstream consumer — including backward closures that
//     captured input/output tensors — sees fresh values with zero Node or
//     closure construction.
//   - Side effects outside the tape (BatchNorm running-stat updates,
//     dropout mask draws from a module's RNG stream) are recorded via
//     record_side_effect() at their position in the op stream, so replay
//     re-runs them in eager order and RNG streams stay aligned with an
//     eager twin.
//   - Backward: finish_capture() drives the engine once with a
//     BackwardTape sink (autograd/engine.h), freezing the executed node
//     schedule and every gradient buffer for in-place replay.
//
// Replay contract (the CUDA-graphs static-input discipline): the loss
// builder is NOT called again, so all per-step data must be staged in
// place into the tensors the capture run read (TrainStep::stage), and any
// tensor-valued hyper-state must be mutated in place. Per-step *scalar*
// hypers (learning rates) remain live inputs because the optimizer step is
// executed for real around the replayed program, not baked into it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "autograd/engine.h"
#include "autograd/variable.h"

namespace hfta::ag {

class StepProgram {
 public:
  /// Activates recording into `p` for the guard's scope (thread-local;
  /// nesting restores the previous recorder). Entering a guard clears any
  /// prior capture in `p`.
  class CaptureGuard {
   public:
    explicit CaptureGuard(StepProgram& p);
    ~CaptureGuard();
    CaptureGuard(const CaptureGuard&) = delete;
    CaptureGuard& operator=(const CaptureGuard&) = delete;

   private:
    StepProgram* prev_;
  };

  /// The program currently recording on this thread (null outside any
  /// CaptureGuard). make_op and side-effect hooks consult this.
  static StepProgram* recording();

  /// Appends one op: `out` is the pinned output buffer, `recompute` the
  /// kernel thunk whose result replay copies into it.
  void record_op(const Tensor& out, std::function<Tensor()> recompute);
  /// Appends one non-tape side effect at its position in the op stream.
  void record_effect(std::function<void()> effect);

  /// Freezes the backward half: runs `engine` from `root` with a capture
  /// sink (this IS the step's real backward pass, not an extra one).
  void finish_capture(Engine& engine, const Variable& root,
                      Tensor seed = Tensor());

  bool captured() const { return captured_; }
  /// Re-executes the captured step: forward thunks + side effects in
  /// recorded order, then the backward tape. Zero Node constructions,
  /// zero closure constructions, zero topo sorts.
  void replay();
  /// The captured loss variable; its pinned value is refreshed by every
  /// replay().
  const Variable& loss() const { return tape_.root; }

  int64_t op_count() const;
  int64_t effect_count() const;
  void clear();

 private:
  struct Slot {
    Tensor out;                       // pinned output (ops only)
    std::function<Tensor()> compute;  // null for side-effect slots
    std::function<void()> effect;     // null for op slots
  };

  std::vector<Slot> slots_;
  BackwardTape tape_;
  bool captured_ = false;
};

/// True while a CaptureGuard is active on this thread. Modules with
/// non-tape per-step state (dropout masks, batch-norm running stats) check
/// this to record their side effects.
bool capturing();

/// Records `effect` into the recording program; no-op when not capturing.
void record_side_effect(std::function<void()> effect);

}  // namespace hfta::ag
