// Tape-based reverse-mode automatic differentiation.
//
// A Variable is a value-semantics handle to (value, grad, creator node).
// Differentiable ops (autograd/functions.h) record a Node holding the input
// Variables and a backward closure; Variable::backward() topologically
// sorts the tape and accumulates gradients into every requires-grad leaf.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/op_counters.h"
#include "tensor/tensor.h"

namespace hfta::ag {

class Engine;
class Variable;
struct BackwardTape;

/// Graph node recorded by a differentiable op.
struct Node {
  /// Every tape node bumps the process-wide construction counter — the
  /// direct measure of per-step tape cost that IterationScope reports and
  /// the replayed-step-program zero-node assertions read.
  Node() { counters::count_node_construction(); }

  std::string name;                 // op name, for debugging
  std::vector<Variable> inputs;     // parents
  /// Maps the output gradient to per-input gradients (undefined Tensor for
  /// inputs that do not need a gradient).
  std::function<std::vector<Tensor>(const Tensor& gy)> backward;
};

class Variable {
 public:
  /// Undefined variable.
  Variable() = default;
  /// Wraps a tensor; requires_grad marks it as a trainable leaf.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();
  /// Gradient tensor; allocated as zeros on first access.
  Tensor& grad();
  bool has_grad() const;
  bool requires_grad() const;
  void zero_grad();

  const Shape& shape() const { return value().shape(); }
  int64_t size(int64_t d) const { return value().size(d); }
  int64_t numel() const { return value().numel(); }
  int64_t dim() const { return value().dim(); }

  /// Runs backpropagation from this variable. If `seed` is undefined, the
  /// variable must be scalar-like and is seeded with ones. Convenience
  /// front-end over ag::Engine (autograd/engine.h); training loops that
  /// run backward every iteration should hold one Engine and reuse it.
  void backward(Tensor seed = Tensor()) const;

  /// A new leaf sharing this variable's value but cut from the tape.
  Variable detach() const;

  /// Internal: creates a non-leaf output of `node`.
  static Variable make_output(Tensor value, std::shared_ptr<Node> node);
  const std::shared_ptr<Node>& node() const;

  /// Identity of the underlying impl (for graph bookkeeping in tests).
  const void* id() const { return impl_.get(); }

 private:
  friend class Engine;        // traverses impls and stamps visit marks
  friend struct BackwardTape; // replays a captured schedule over impls

  struct Impl {
    Tensor value;
    Tensor grad;
    bool requires_grad = false;
    std::shared_ptr<Node> node;  // creator; null for leaves
    uint64_t visit_mark = 0;     // ag::Engine visited stamp (run id)
  };
  std::shared_ptr<Impl> impl_;
};

}  // namespace hfta::ag
