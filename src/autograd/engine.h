// Reusable backward engine.
//
// Variable::backward() is correct but rebuilds its traversal scratch — the
// topological order, the DFS stack, the visited bookkeeping — from nothing
// on every call. Training runs backward once per iteration over a graph of
// the same shape, so an Engine keeps that scratch alive across runs: the
// vectors retain their capacity and the visited check is an O(1) epoch
// stamp on each node (no hash set, no per-run rehashing).
//
// Bit-exactness contract: Engine::run visits nodes and accumulates
// gradients in EXACTLY the order the original Variable::backward() did
// (iterative post-order DFS, children in input order; reverse-topo
// propagation; per-input grad accumulation in input order). Reusing one
// Engine for N iterations is bit-identical to N fresh backward() calls —
// engine_test asserts this — so the fused-vs-serial 0.00e+00 invariant is
// untouched.
#pragma once

#include "autograd/variable.h"

namespace hfta::ag {

/// The backward half of a captured step program: the exact node schedule
/// one Engine::run executed, flattened for replay. `schedule` holds the
/// reverse-topological node order the eager pass propagated through and
/// `grad_targets` every gradient buffer it wrote, so replay() can zero
/// those buffers in place, re-seed the root, and re-run the recorded
/// backward closures — no topo sort, no visited stamps, no Node or closure
/// construction, and (once warm) no allocation: every gradient lands in
/// the same pinned pool buffer the capture run resolved.
///
/// Bit-exactness contract: replay() visits nodes and accumulates per-input
/// gradients in exactly the captured order, and eager's lazily-allocated
/// zeros + add_() equals replay's zero_() + add_(), so a replayed backward
/// is bit-identical to the eager pass it recorded.
///
/// Lifetime: `root` keeps the whole captured graph (and therefore every
/// raw Impl pointer here) alive; the tape must be cleared or discarded
/// before the graph it captured is mutated structurally.
struct BackwardTape {
  Variable root;    // capture root; owns the graph the raw pointers walk
  Tensor seed;      // root seed, already reshaped to root's shape
  std::vector<Variable::Impl*> schedule;      // nodes, reverse-topo order
  std::vector<Variable::Impl*> grad_targets;  // every grad buffer written

  bool captured() const { return root.defined(); }
  void replay() const;
  void clear();
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs backpropagation from `root` (same contract as
  /// Variable::backward: an undefined seed requires a scalar root and
  /// seeds with ones). Safe to call repeatedly, on unrelated graphs.
  /// When `capture` is non-null the executed schedule is recorded into it
  /// (replacing any previous capture) for tape-free replay.
  void run(const Variable& root, Tensor seed = Tensor(),
           BackwardTape* capture = nullptr);

  /// Number of backward passes driven through this engine.
  int64_t runs() const { return runs_; }
  /// Nodes (graph outputs) on the tape of the most recent run.
  int64_t last_tape_size() const {
    return static_cast<int64_t>(topo_.size());
  }

 private:
  // Traversal scratch, reused across runs (capacity persists).
  std::vector<Variable::Impl*> topo_;
  std::vector<std::pair<Variable::Impl*, size_t>> stack_;
  int64_t runs_ = 0;
};

}  // namespace hfta::ag
