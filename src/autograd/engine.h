// Reusable backward engine.
//
// Variable::backward() is correct but rebuilds its traversal scratch — the
// topological order, the DFS stack, the visited bookkeeping — from nothing
// on every call. Training runs backward once per iteration over a graph of
// the same shape, so an Engine keeps that scratch alive across runs: the
// vectors retain their capacity and the visited check is an O(1) epoch
// stamp on each node (no hash set, no per-run rehashing).
//
// Bit-exactness contract: Engine::run visits nodes and accumulates
// gradients in EXACTLY the order the original Variable::backward() did
// (iterative post-order DFS, children in input order; reverse-topo
// propagation; per-input grad accumulation in input order). Reusing one
// Engine for N iterations is bit-identical to N fresh backward() calls —
// engine_test asserts this — so the fused-vs-serial 0.00e+00 invariant is
// untouched.
#pragma once

#include "autograd/variable.h"

namespace hfta::ag {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs backpropagation from `root` (same contract as
  /// Variable::backward: an undefined seed requires a scalar root and
  /// seeds with ones). Safe to call repeatedly, on unrelated graphs.
  void run(const Variable& root, Tensor seed = Tensor());

  /// Number of backward passes driven through this engine.
  int64_t runs() const { return runs_; }
  /// Nodes (graph outputs) on the tape of the most recent run.
  int64_t last_tape_size() const {
    return static_cast<int64_t>(topo_.size());
  }

 private:
  // Traversal scratch, reused across runs (capacity persists).
  std::vector<Variable::Impl*> topo_;
  std::vector<std::pair<Variable::Impl*, size_t>> stack_;
  int64_t runs_ = 0;
};

}  // namespace hfta::ag
