#include "autograd/functions.h"

#include <cmath>
#include <memory>

#include "autograd/autocast.h"
#include "autograd/step_program.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"

namespace hfta::ag {

namespace {

bool any_needs_tape(const std::vector<Variable>& ins) {
  for (const Variable& v : ins) {
    if (v.defined() && (v.requires_grad() || v.node())) return true;
  }
  return false;
}

// Creates the output variable; records the node only when some input is on
// the tape (constant folding keeps graphs small).
//
// `fwd` is the op's recompute thunk: a callable capturing the input
// *tensors* by value (shared storage — the step program's pinned buffers)
// that re-runs the forward kernel. Eager execution evaluates it exactly
// once at the call site (`fwd()` produced `out`); when a StepProgram is
// recording, the thunk is additionally appended to the program — including
// for off-tape constant subgraphs, whose values may be data-dependent and
// must refresh on replay. `fwd` stays a template parameter so the eager
// path never type-erases it (no std::function allocation per op).
template <typename Fwd>
Variable make_op(const char* name, Tensor out, const Fwd& fwd,
                 std::vector<Variable> inputs,
                 std::function<std::vector<Tensor>(const Tensor&)> backward) {
  if (StepProgram* rec = StepProgram::recording()) rec->record_op(out, fwd);
  if (!any_needs_tape(inputs)) return Variable(std::move(out));
  auto node = std::make_shared<Node>();
  node->name = name;
  node->inputs = std::move(inputs);
  node->backward = std::move(backward);
  return Variable::make_output(std::move(out), std::move(node));
}

}  // namespace

Variable constant(Tensor value) { return Variable(std::move(value)); }

// ---- dtype -----------------------------------------------------------------

Variable cast(const Variable& a, DType dtype) {
  if (a.value().dtype() == dtype) return a;
  Tensor av = a.value();
  auto fwd = [av, dtype] { return ops::cast(av, dtype); };
  return make_op("cast", fwd(), fwd, {a},
                 [](const Tensor& gy) -> std::vector<Tensor> {
                   return {gy};
                 });
}

// ---- binary ----------------------------------------------------------------

Variable add(const Variable& a, const Variable& b) {
  Shape sa = a.shape(), sb = b.shape();
  Tensor av = a.value(), bv = b.value();
  auto fwd = [av, bv] { return ops::add(av, bv); };
  return make_op("add", fwd(), fwd, {a, b},
                 [sa, sb](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::reduce_to_shape(gy, sa),
                           ops::reduce_to_shape(gy, sb)};
                 });
}

Variable sub(const Variable& a, const Variable& b) {
  Shape sa = a.shape(), sb = b.shape();
  Tensor av = a.value(), bv = b.value();
  auto fwd = [av, bv] { return ops::sub(av, bv); };
  return make_op("sub", fwd(), fwd, {a, b},
                 [sa, sb](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::reduce_to_shape(gy, sa),
                           ops::reduce_to_shape(ops::neg(gy), sb)};
                 });
}

Variable mul(const Variable& a, const Variable& b) {
  Shape sa = a.shape(), sb = b.shape();
  Tensor av = a.value(), bv = b.value();
  auto fwd = [av, bv] { return ops::mul(av, bv); };
  return make_op("mul", fwd(), fwd, {a, b},
                 [sa, sb, av, bv](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::reduce_to_shape(ops::mul(gy, bv), sa),
                           ops::reduce_to_shape(ops::mul(gy, av), sb)};
                 });
}

Variable div(const Variable& a, const Variable& b) {
  Shape sa = a.shape(), sb = b.shape();
  Tensor av = a.value(), bv = b.value();
  auto fwd = [av, bv] { return ops::div(av, bv); };
  return make_op(
      "div", fwd(), fwd, {a, b},
      [sa, sb, av, bv](const Tensor& gy) -> std::vector<Tensor> {
        Tensor ga = ops::reduce_to_shape(ops::div(gy, bv), sa);
        Tensor gb = ops::reduce_to_shape(
            ops::neg(ops::div(ops::mul(gy, av), ops::mul(bv, bv))), sb);
        return {ga, gb};
      });
}

// ---- scalar ----------------------------------------------------------------

Variable add_scalar(const Variable& a, float s) {
  Tensor av = a.value();
  auto fwd = [av, s] { return ops::add_scalar(av, s); };
  return make_op("add_scalar", fwd(), fwd, {a},
                 [](const Tensor& gy) -> std::vector<Tensor> { return {gy}; });
}

Variable mul_scalar(const Variable& a, float s) {
  Tensor av = a.value();
  auto fwd = [av, s] { return ops::mul_scalar(av, s); };
  return make_op("mul_scalar", fwd(), fwd, {a},
                 [s](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::mul_scalar(gy, s)};
                 });
}

// ---- unary -----------------------------------------------------------------

Variable neg(const Variable& a) {
  Tensor av = a.value();
  auto fwd = [av] { return ops::neg(av); };
  return make_op("neg", fwd(), fwd, {a},
                 [](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::neg(gy)};
                 });
}

Variable exp(const Variable& a) {
  Tensor av = a.value();
  auto fwd = [av] { return ops::exp(av); };
  Tensor y = fwd();
  return make_op("exp", y, fwd, {a},
                 [y](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::mul(gy, y)};
                 });
}

Variable log(const Variable& a) {
  Tensor x = a.value();
  auto fwd = [x] { return ops::log(x); };
  return make_op("log", fwd(), fwd, {a},
                 [x](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::div(gy, x)};
                 });
}

Variable sqrt(const Variable& a) {
  Tensor av = a.value();
  auto fwd = [av] { return ops::sqrt(av); };
  Tensor y = fwd();
  return make_op("sqrt", y, fwd, {a},
                 [y](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::div(ops::mul_scalar(gy, 0.5f), y)};
                 });
}

Variable tanh(const Variable& a) {
  Tensor av = a.value();
  auto fwd = [av] { return ops::tanh(av); };
  Tensor y = fwd();
  return make_op("tanh", y, fwd, {a},
                 [y](const Tensor& gy) -> std::vector<Tensor> {
                   Tensor one_minus = ops::unary(
                       y, [](float v) { return 1.f - v * v; });
                   return {ops::mul(gy, one_minus)};
                 });
}

Variable sigmoid(const Variable& a) {
  Tensor av = a.value();
  auto fwd = [av] { return ops::sigmoid(av); };
  Tensor y = fwd();
  return make_op("sigmoid", y, fwd, {a},
                 [y](const Tensor& gy) -> std::vector<Tensor> {
                   Tensor d =
                       ops::unary(y, [](float v) { return v * (1.f - v); });
                   return {ops::mul(gy, d)};
                 });
}

Variable relu(const Variable& a) {
  Tensor x = a.value();
  auto fwd = [x] { return ops::relu(x); };
  return make_op("relu", fwd(), fwd, {a},
                 [x](const Tensor& gy) -> std::vector<Tensor> {
                   // One-pass masked multiply (no materialized mask tensor);
                   // bit-identical to mask-then-mul.
                   return {ops::relu_backward(gy, x)};
                 });
}

Variable relu6(const Variable& a) {
  Tensor x = a.value();
  auto fwd = [x] { return ops::clamp(x, 0.f, 6.f); };
  return make_op("relu6", fwd(), fwd, {a},
                 [x](const Tensor& gy) -> std::vector<Tensor> {
                   Tensor m = ops::unary(x, [](float v) {
                     return (v > 0.f && v < 6.f) ? 1.f : 0.f;
                   });
                   return {ops::mul(gy, m)};
                 });
}

Variable leaky_relu(const Variable& a, float slope) {
  Tensor x = a.value();
  auto fwd = [x, slope] { return ops::leaky_relu(x, slope); };
  return make_op("leaky_relu", fwd(), fwd, {a},
                 [x, slope](const Tensor& gy) -> std::vector<Tensor> {
                   Tensor m = ops::unary(x, [slope](float v) {
                     return v > 0.f ? 1.f : slope;
                   });
                   return {ops::mul(gy, m)};
                 });
}

Variable pow_scalar(const Variable& a, float p) {
  Tensor x = a.value();
  auto fwd = [x, p] { return ops::pow_scalar(x, p); };
  return make_op("pow_scalar", fwd(), fwd, {a},
                 [x, p](const Tensor& gy) -> std::vector<Tensor> {
                   Tensor d = ops::mul_scalar(ops::pow_scalar(x, p - 1.f), p);
                   return {ops::mul(gy, d)};
                 });
}

Variable hardsigmoid(const Variable& a) {
  Tensor x = a.value();
  auto fwd = [x] {
    return ops::unary(x, [](float v) {
      return std::min(6.f, std::max(0.f, v + 3.f)) / 6.f;
    });
  };
  return make_op("hardsigmoid", fwd(), fwd, {a},
                 [x](const Tensor& gy) -> std::vector<Tensor> {
                   Tensor m = ops::unary(x, [](float v) {
                     return (v > -3.f && v < 3.f) ? (1.f / 6.f) : 0.f;
                   });
                   return {ops::mul(gy, m)};
                 });
}

Variable hardswish(const Variable& a) {
  Tensor x = a.value();
  auto fwd = [x] {
    return ops::unary(x, [](float v) {
      return v * std::min(6.f, std::max(0.f, v + 3.f)) / 6.f;
    });
  };
  return make_op("hardswish", fwd(), fwd, {a},
                 [x](const Tensor& gy) -> std::vector<Tensor> {
                   Tensor m = ops::unary(x, [](float v) {
                     if (v <= -3.f) return 0.f;
                     if (v >= 3.f) return 1.f;
                     return (2.f * v + 3.f) / 6.f;
                   });
                   return {ops::mul(gy, m)};
                 });
}

Variable gelu(const Variable& a) {
  // tanh approximation of GELU (as used in BERT).
  Tensor x = a.value();
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  auto fwd = [x] {
    return ops::unary(x, [](float v) {
      const float inner = kC * (v + 0.044715f * v * v * v);
      return 0.5f * v * (1.f + std::tanh(inner));
    });
  };
  return make_op("gelu", fwd(), fwd, {a},
                 [x](const Tensor& gy) -> std::vector<Tensor> {
                   Tensor d = ops::unary(x, [](float v) {
                     const float v3 = v * v * v;
                     const float inner = kC * (v + 0.044715f * v3);
                     const float t = std::tanh(inner);
                     const float sech2 = 1.f - t * t;
                     return 0.5f * (1.f + t) +
                            0.5f * v * sech2 * kC * (1.f + 3.f * 0.044715f * v * v);
                   });
                   return {ops::mul(gy, d)};
                 });
}

// ---- matmul family -----------------------------------------------------------

// The matmul family applies the autocast policy WITHOUT cast nodes: the
// active dtype is captured by value as a per-operand quantize policy and the
// packed GEMM quantizes those operands RNE during packing — bit-identical to
// inserting ag::cast nodes (the kernels' quantize round-trip IS the cast
// converters' composition) but with no cast tensors, no extra memory passes,
// and two fewer graph nodes per GEMM. Biases stay f32, gradients stay f32
// leaves, and the backward quantizes only the SAVED operand of each product
// (the incoming gradient is f32, exactly as it was when the saved tensor
// held the cast value). The policy rides inside the fwd/backward closures,
// so a captured step program replays it with no autocast state involved.
// The conv family (below) keeps the recorded-cast formulation.

namespace {
// The quantize policy for GEMM operands under the ambient autocast scope:
// the autocast dtype when active, kF32 (pack verbatim) otherwise.
DType gemm_quantize_dtype() {
  return autocast_enabled() ? autocast_dtype() : DType::kF32;
}
}  // namespace

Variable matmul(const Variable& a, const Variable& b) {
  const DType q = gemm_quantize_dtype();
  Tensor av = a.value(), bv = b.value();
  auto fwd = [av, bv, q] { return ops::matmul(av, bv, q, q); };
  return make_op("matmul", fwd(), fwd, {a, b},
                 [av, bv, q](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::matmul_nt(gy, bv, DType::kF32, q),
                           ops::matmul_tn(av, gy, q, DType::kF32)};
                 });
}

Variable bmm(const Variable& a, const Variable& b) {
  const DType q = gemm_quantize_dtype();
  Tensor av = a.value(), bv = b.value();
  auto fwd = [av, bv, q] { return ops::bmm(av, bv, q, q); };
  return make_op("bmm", fwd(), fwd, {a, b},
                 [av, bv, q](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::bmm_nt(gy, bv, DType::kF32, q),
                           ops::bmm_tn(av, gy, q, DType::kF32)};
                 });
}

Variable bmm_nt(const Variable& a, const Variable& b) {
  const DType q = gemm_quantize_dtype();
  Tensor av = a.value(), bv = b.value();
  auto fwd = [av, bv, q] { return ops::bmm_nt(av, bv, q, q); };
  return make_op("bmm_nt", fwd(), fwd, {a, b},
                 [av, bv, q](const Tensor& gy) -> std::vector<Tensor> {
                   // y = a @ b^T: ga = gy @ b; gb = gy^T @ a.
                   return {ops::bmm(gy, bv, DType::kF32, q),
                           ops::bmm_tn(gy, av, DType::kF32, q)};
                 });
}

Variable baddbmm(const Variable& bias, const Variable& a,
                 const Variable& b) {
  const DType q = gemm_quantize_dtype();
  Tensor biasv = bias.value(), av = a.value(), bv = b.value();
  Shape sbias = bias.shape();
  auto fwd = [biasv, av, bv, q] { return ops::baddbmm(biasv, av, bv, q, q); };
  return make_op("baddbmm", fwd(), fwd, {bias, a, b},
                 [sbias, av, bv, q](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::reduce_to_shape(gy, sbias),
                           ops::bmm_nt(gy, bv, DType::kF32, q),
                           ops::bmm_tn(av, gy, q, DType::kF32)};
                 });
}

Variable linear(const Variable& x, const Variable& w,
                const Variable& b) {
  const DType q = gemm_quantize_dtype();
  Tensor xv = x.value(), wv = w.value();
  Tensor bv = b.defined() ? b.value() : Tensor();
  const Shape x_shape = xv.shape();
  const int64_t in = wv.size(1);
  const int64_t out = wv.size(0);
  const int64_t rows = xv.numel() / in;
  auto fwd = [xv, wv, bv, q] { return ops::linear_forward(xv, wv, bv, q, q); };
  Tensor y = fwd();
  std::vector<Variable> inputs = {x, w};
  if (b.defined()) inputs.push_back(b);
  const bool has_bias = b.defined();
  return make_op(
      "linear", y, fwd, std::move(inputs),
      [xv, wv, x_shape, in, out, rows, has_bias,
       q](const Tensor& gy) -> std::vector<Tensor> {
        Tensor gy2 = gy.reshape({rows, out});
        Tensor x2 = xv.reshape({rows, in});
        Tensor gx = ops::matmul(gy2, wv, DType::kF32, q).reshape(x_shape);
        Tensor gw = ops::matmul_tn(gy2, x2, DType::kF32, q);  // [out, in]
        std::vector<Tensor> grads = {gx, gw};
        if (has_bias) grads.push_back(ops::sum(gy2, {0}, false));
        return grads;
      });
}

// ---- convolution ----------------------------------------------------------------

Variable conv2d(const Variable& x_in, const Variable& w_in, const Variable& b,
                const ops::ConvArgs& args) {
  const Variable x = autocast_input(x_in), w = autocast_input(w_in);
  Tensor xv = x.value(), wv = w.value();
  Tensor bv = b.defined() ? b.value() : Tensor();
  auto fwd = [xv, wv, bv, args] { return ops::conv2d(xv, wv, bv, args); };
  Tensor y = fwd();
  std::vector<Variable> inputs = {x, w};
  if (b.defined()) inputs.push_back(b);
  const bool has_bias = b.defined();
  return make_op(
      "conv2d", y, fwd, std::move(inputs),
      [xv, wv, args, has_bias](const Tensor& gy) -> std::vector<Tensor> {
        std::vector<Tensor> grads = {
            ops::conv2d_grad_input(gy, wv, xv.shape(), args),
            ops::conv2d_grad_weight(gy, xv, wv.shape(), args)};
        if (has_bias) grads.push_back(ops::conv2d_grad_bias(gy));
        return grads;
      });
}

Variable conv1d(const Variable& x_in, const Variable& w_in, const Variable& b,
                int64_t stride, int64_t pad, int64_t groups) {
  const Variable x = autocast_input(x_in), w = autocast_input(w_in);
  Tensor xv = x.value(), wv = w.value();
  Tensor bv = b.defined() ? b.value() : Tensor();
  auto fwd = [xv, wv, bv, stride, pad, groups] {
    return ops::conv1d(xv, wv, bv, stride, pad, groups);
  };
  Tensor y = fwd();
  std::vector<Variable> inputs = {x, w};
  if (b.defined()) inputs.push_back(b);
  const bool has_bias = b.defined();
  return make_op(
      "conv1d", y, fwd, std::move(inputs),
      [xv, wv, stride, pad, groups,
       has_bias](const Tensor& gy) -> std::vector<Tensor> {
        std::vector<Tensor> grads = {
            ops::conv1d_grad_input(gy, wv, xv.shape(), stride, pad, groups),
            ops::conv1d_grad_weight(gy, xv, wv.shape(), stride, pad, groups)};
        if (has_bias) {
          // bias grad: sum gy over batch and length.
          grads.push_back(ops::sum(gy, {0, 2}, false));
        }
        return grads;
      });
}

Variable conv_transpose2d(const Variable& x_in, const Variable& w_in,
                          const Variable& b,
                          const ops::ConvTransposeArgs& args) {
  const Variable x = autocast_input(x_in), w = autocast_input(w_in);
  Tensor xv = x.value(), wv = w.value();
  Tensor bv = b.defined() ? b.value() : Tensor();
  auto fwd = [xv, wv, bv, args] {
    return ops::conv_transpose2d(xv, wv, bv, args);
  };
  Tensor y = fwd();
  std::vector<Variable> inputs = {x, w};
  if (b.defined()) inputs.push_back(b);
  const bool has_bias = b.defined();
  return make_op(
      "conv_transpose2d", y, fwd, std::move(inputs),
      [xv, wv, args, has_bias](const Tensor& gy) -> std::vector<Tensor> {
        std::vector<Tensor> grads = {
            ops::conv_transpose2d_grad_input(gy, wv, args),
            ops::conv_transpose2d_grad_weight(gy, xv, wv.shape(), args)};
        if (has_bias) grads.push_back(ops::conv2d_grad_bias(gy));
        return grads;
      });
}

Variable conv_transpose1d(const Variable& x_in, const Variable& w_in,
                          const Variable& b,
                          const ops::ConvTransposeArgs& args) {
  const Variable x = autocast_input(x_in), w = autocast_input(w_in);
  Tensor xv = x.value(), wv = w.value();
  Tensor bv = b.defined() ? b.value() : Tensor();
  auto fwd = [xv, wv, bv, args] {
    return ops::conv_transpose1d(xv, wv, bv, args);
  };
  Tensor y = fwd();
  std::vector<Variable> inputs = {x, w};
  if (b.defined()) inputs.push_back(b);
  const bool has_bias = b.defined();
  return make_op(
      "conv_transpose1d", y, fwd, std::move(inputs),
      [xv, wv, args, has_bias](const Tensor& gy) -> std::vector<Tensor> {
        std::vector<Tensor> grads = {
            ops::conv_transpose1d_grad_input(gy, wv, args),
            ops::conv_transpose1d_grad_weight(gy, xv, wv.shape(), args)};
        if (has_bias) grads.push_back(ops::sum(gy, {0, 2}, false));
        return grads;
      });
}

// ---- pooling ----------------------------------------------------------------------

Variable max_pool2d(const Variable& x, const ops::PoolArgs& args) {
  Tensor xv = x.value();
  // The argmax indices are forward state the backward needs. A replayed
  // step recomputes them for the staged data, so the backward closure
  // reads them through a shared box the thunk refreshes — the same
  // pinned-state pattern as op outputs, for non-output state.
  auto idx_box = std::make_shared<Tensor>();
  auto fwd = [xv, args, idx_box] {
    auto [y, idx] = ops::max_pool2d(xv, args);
    *idx_box = idx;
    return y;
  };
  Tensor y = fwd();
  const Shape x_shape = x.shape();
  return make_op("max_pool2d", y, fwd, {x},
                 [idx_box, x_shape](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::max_pool2d_backward(gy, *idx_box, x_shape)};
                 });
}

Variable avg_pool2d(const Variable& x, const ops::PoolArgs& args) {
  Tensor xv = x.value();
  auto fwd = [xv, args] { return ops::avg_pool2d(xv, args); };
  const Shape x_shape = x.shape();
  return make_op("avg_pool2d", fwd(), fwd, {x},
                 [x_shape, args](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::avg_pool2d_backward(gy, x_shape, args)};
                 });
}

Variable adaptive_avg_pool2d(const Variable& x, int64_t oh, int64_t ow) {
  Tensor xv = x.value();
  auto fwd = [xv, oh, ow] { return ops::adaptive_avg_pool2d(xv, oh, ow); };
  const Shape x_shape = x.shape();
  return make_op("adaptive_avg_pool2d", fwd(), fwd, {x},
                 [x_shape](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::adaptive_avg_pool2d_backward(gy, x_shape)};
                 });
}

Variable global_max_pool1d(const Variable& x) {
  Tensor xv = x.value();
  auto idx_box = std::make_shared<Tensor>();  // see max_pool2d
  auto fwd = [xv, idx_box] {
    auto [y, idx] = ops::max_pool1d_global(xv);
    *idx_box = idx;
    return y;
  };
  Tensor y = fwd();
  const Shape x_shape = x.shape();
  return make_op("global_max_pool1d", y, fwd, {x},
                 [idx_box, x_shape](const Tensor& gy) -> std::vector<Tensor> {
                   return {
                       ops::max_pool1d_global_backward(gy, *idx_box, x_shape)};
                 });
}

// ---- shape --------------------------------------------------------------------------

Variable reshape(const Variable& x, Shape shape) {
  const Shape x_shape = x.shape();
  Tensor xv = x.value();
  auto fwd = [xv, shape] { return xv.reshape(shape); };
  return make_op("reshape", fwd(), fwd, {x},
                 [x_shape](const Tensor& gy) -> std::vector<Tensor> {
                   return {gy.reshape(x_shape)};
                 });
}

Variable transpose(const Variable& x, int64_t a, int64_t b) {
  Tensor xv = x.value();
  auto fwd = [xv, a, b] { return xv.transpose(a, b); };
  return make_op("transpose", fwd(), fwd, {x},
                 [a, b](const Tensor& gy) -> std::vector<Tensor> {
                   return {gy.transpose(a, b)};
                 });
}

Variable permute(const Variable& x, std::vector<int64_t> perm) {
  std::vector<int64_t> inv(perm.size());
  for (size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<size_t>(perm[i])] = static_cast<int64_t>(i);
  Tensor xv = x.value();
  auto fwd = [xv, perm] { return xv.permute(perm); };
  return make_op("permute", fwd(), fwd, {x},
                 [inv](const Tensor& gy) -> std::vector<Tensor> {
                   return {gy.permute(inv)};
                 });
}

Variable concat(const std::vector<Variable>& xs, int64_t dim) {
  std::vector<Tensor> vals;
  std::vector<int64_t> sizes;
  vals.reserve(xs.size());
  for (const Variable& v : xs) {
    vals.push_back(v.value());
  }
  auto fwd = [vals, dim] { return ops::concat(vals, dim); };
  Tensor y = fwd();
  int64_t d = dim < 0 ? dim + static_cast<int64_t>(y.dim()) : dim;
  for (const Variable& v : xs) sizes.push_back(v.size(d));
  return make_op("concat", y, fwd, xs,
                 [sizes, d](const Tensor& gy) -> std::vector<Tensor> {
                   return ops::split(gy, sizes, d);
                 });
}

Variable slice(const Variable& x, int64_t dim, int64_t start, int64_t end) {
  const Shape x_shape = x.shape();
  int64_t d = dim < 0 ? dim + x.dim() : dim;
  Tensor xv = x.value();
  auto fwd = [xv, d, start, end] { return xv.slice(d, start, end); };
  return make_op("slice", fwd(), fwd, {x},
                 [x_shape, d, start](const Tensor& gy) -> std::vector<Tensor> {
                   Tensor gx = Tensor::zeros(x_shape);
                   // Scatter gy into the slice range along d.
                   int64_t outer = 1, inner = 1;
                   const int64_t n = x_shape[static_cast<size_t>(d)];
                   for (int64_t i = 0; i < d; ++i)
                     outer *= x_shape[static_cast<size_t>(i)];
                   for (size_t i = static_cast<size_t>(d) + 1;
                        i < x_shape.size(); ++i)
                     inner *= x_shape[i];
                   const int64_t len = gy.size(d);
                   const float* src = gy.data();
                   float* dst = gx.data();
                   for (int64_t o = 0; o < outer; ++o) {
                     std::copy(src + o * len * inner,
                               src + (o + 1) * len * inner,
                               dst + (o * n + start) * inner);
                   }
                   return {gx};
                 });
}

std::vector<Variable> chunk(const Variable& x, int64_t chunks, int64_t dim) {
  int64_t d = dim < 0 ? dim + x.dim() : dim;
  const int64_t n = x.size(d);
  HFTA_CHECK(n % chunks == 0, "chunk: dim not divisible");
  const int64_t step = n / chunks;
  std::vector<Variable> out;
  for (int64_t c = 0; c < chunks; ++c)
    out.push_back(slice(x, d, c * step, (c + 1) * step));
  return out;
}

// ---- reductions -------------------------------------------------------------------------

Variable sum(const Variable& x, std::vector<int64_t> dims, bool keepdim) {
  const Shape x_shape = x.shape();
  // Normalize dims and remember the keepdim-style shape for the backward.
  std::vector<int64_t> nd;
  for (int64_t d : dims) nd.push_back(d < 0 ? d + x.dim() : d);
  Shape keep_shape = x_shape;
  for (int64_t d : nd) keep_shape[static_cast<size_t>(d)] = 1;
  Tensor xv = x.value();
  auto fwd = [xv, nd, keepdim] { return ops::sum(xv, nd, keepdim); };
  return make_op("sum", fwd(), fwd, {x},
                 [x_shape, keep_shape](const Tensor& gy) -> std::vector<Tensor> {
                   Tensor g = gy.reshape(keep_shape);
                   // broadcast up to the input shape
                   return {ops::add(Tensor::zeros(x_shape), g)};
                 });
}

Variable mean(const Variable& x, std::vector<int64_t> dims, bool keepdim) {
  int64_t count = 1;
  for (int64_t d : dims) count *= x.size(d);
  return mul_scalar(sum(x, std::move(dims), keepdim),
                    1.f / static_cast<float>(count));
}

Variable sum_all(const Variable& x) {
  const Shape x_shape = x.shape();
  Tensor xv = x.value();
  auto fwd = [xv] { return ops::sum_all(xv); };
  return make_op("sum_all", fwd(), fwd, {x},
                 [x_shape](const Tensor& gy) -> std::vector<Tensor> {
                   return {Tensor::full(x_shape, gy.item())};
                 });
}

Variable mean_all(const Variable& x) {
  return mul_scalar(sum_all(x), 1.f / static_cast<float>(x.numel()));
}

// ---- softmax / losses ---------------------------------------------------------------------

Variable softmax(const Variable& x, int64_t dim) {
  int64_t d = dim < 0 ? dim + x.dim() : dim;
  Tensor xv = x.value();
  auto fwd = [xv, d] { return ops::softmax(xv, d); };
  Tensor y = fwd();
  return make_op("softmax", y, fwd, {x},
                 [y, d](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::softmax_backward(gy, y, d)};
                 });
}

Variable log_softmax(const Variable& x, int64_t dim) {
  int64_t d = dim < 0 ? dim + x.dim() : dim;
  Tensor xv = x.value();
  auto fwd = [xv, d] { return ops::log_softmax(xv, d); };
  Tensor y = fwd();
  return make_op("log_softmax", y, fwd, {x},
                 [y, d](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::log_softmax_backward(gy, y, d)};
                 });
}

namespace {
// Gathers log_probs at the label class: supports [N, C] labels [N] and
// [N, C, d1...] labels [N, d1...] (PyTorch NLL layout).
void nll_dims(const Tensor& log_probs, const Tensor& labels, int64_t* n_out,
              int64_t* c_out, int64_t* inner_out) {
  const int64_t N = log_probs.size(0);
  const int64_t C = log_probs.size(1);
  const int64_t inner = log_probs.numel() / (N * C);
  HFTA_CHECK(labels.numel() == N * inner, "nll_loss: labels numel ",
             labels.numel(), " != ", N * inner);
  *n_out = N;
  *c_out = C;
  *inner_out = inner;
}
}  // namespace

Variable nll_loss(const Variable& log_probs, const Tensor& labels,
                  Reduction reduction) {
  int64_t N, C, inner;
  nll_dims(log_probs.value(), labels, &N, &C, &inner);
  const Tensor lp = log_probs.value();
  auto fwd = [lp, labels, N, C, inner, reduction]() -> Tensor {
    const float* p = lp.data();
    const float* pl = labels.data();
    const int64_t total = N * inner;
    Tensor out = (reduction == Reduction::kNone)
                     ? Tensor(labels.shape())
                     : Tensor(Shape{});
    double acc = 0.0;
    for (int64_t i = 0; i < total; ++i) {
      const int64_t n = i / inner;
      const int64_t in = i % inner;
      const int64_t cls = static_cast<int64_t>(pl[i]);
      HFTA_CHECK(cls >= 0 && cls < C, "nll_loss: label ", cls,
                 " out of range");
      const float v = -p[(n * C + cls) * inner + in];
      if (reduction == Reduction::kNone) {
        out.data()[i] = v;
      } else {
        acc += v;
      }
    }
    if (reduction == Reduction::kMean)
      out.data()[0] = static_cast<float>(acc / static_cast<double>(total));
    if (reduction == Reduction::kSum) out.data()[0] = static_cast<float>(acc);
    return out;
  };
  Tensor out = fwd();

  const Shape lp_shape = lp.shape();
  return make_op(
      "nll_loss", out, fwd, {log_probs},
      [labels, lp_shape, N, C, inner,
       reduction](const Tensor& gy) -> std::vector<Tensor> {
        Tensor gx = Tensor::zeros(lp_shape);
        const float* pl = labels.data();
        float* pg = gx.data();
        const int64_t total = N * inner;
        const float scale = (reduction == Reduction::kMean)
                                ? 1.f / static_cast<float>(total)
                                : 1.f;
        for (int64_t i = 0; i < total; ++i) {
          const int64_t n = i / inner;
          const int64_t in = i % inner;
          const int64_t cls = static_cast<int64_t>(pl[i]);
          const float g =
              (reduction == Reduction::kNone) ? gy.data()[i] : gy.item();
          pg[(n * C + cls) * inner + in] -= g * scale;
        }
        return {gx};
      });
}

Variable cross_entropy(const Variable& logits, const Tensor& labels,
                       Reduction reduction) {
  return nll_loss(log_softmax(logits, 1), labels, reduction);
}

Variable bce_with_logits(const Variable& logits, const Tensor& targets,
                         Reduction reduction) {
  const Tensor x = logits.value();
  HFTA_CHECK(x.numel() == targets.numel(), "bce: shape mismatch");
  const int64_t n = x.numel();
  auto fwd = [x, targets, reduction, n]() -> Tensor {
    const float* px = x.data();
    const float* pt = targets.data();
    Tensor out =
        (reduction == Reduction::kNone) ? Tensor(x.shape()) : Tensor(Shape{});
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      // max(x,0) - x*t + log(1 + exp(-|x|)) — numerically stable.
      const float v = std::max(px[i], 0.f) - px[i] * pt[i] +
                      std::log1p(std::exp(-std::fabs(px[i])));
      if (reduction == Reduction::kNone) {
        out.data()[i] = v;
      } else {
        acc += v;
      }
    }
    if (reduction == Reduction::kMean)
      out.data()[0] = static_cast<float>(acc / static_cast<double>(n));
    if (reduction == Reduction::kSum) out.data()[0] = static_cast<float>(acc);
    return out;
  };
  Tensor out = fwd();
  return make_op("bce_with_logits", out, fwd, {logits},
                 [x, targets, reduction, n](const Tensor& gy) {
                   Tensor gx(x.shape());
                   const float* px = x.data();
                   const float* pt = targets.data();
                   float* pg = gx.data();
                   const float scale = (reduction == Reduction::kMean)
                                           ? 1.f / static_cast<float>(n)
                                           : 1.f;
                   for (int64_t i = 0; i < n; ++i) {
                     const float s = 1.f / (1.f + std::exp(-px[i]));
                     const float g = (reduction == Reduction::kNone)
                                         ? gy.data()[i]
                                         : gy.item();
                     pg[i] = (s - pt[i]) * scale * g;
                   }
                   return std::vector<Tensor>{gx};
                 });
}

Variable mse_loss(const Variable& x, const Tensor& target,
                  Reduction reduction) {
  Variable diff = sub(x, constant(target));
  Variable sq = mul(diff, diff);
  switch (reduction) {
    case Reduction::kMean:
      return mean_all(sq);
    case Reduction::kSum:
      return sum_all(sq);
    case Reduction::kNone:
      return sq;
  }
  HFTA_CHECK(false, "unreachable");
  return Variable();
}

Variable embedding(const Tensor& indices, const Variable& weight) {
  Tensor wv = weight.value();
  auto fwd = [indices, wv] { return ops::embedding(indices, wv); };
  const int64_t vocab = weight.size(0);
  return make_op("embedding", fwd(), fwd, {weight},
                 [indices, vocab](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::embedding_backward(gy, indices, vocab)};
                 });
}

Variable mul_mask(const Variable& x, const Tensor& mask) {
  Tensor xv = x.value();
  auto fwd = [xv, mask] { return ops::mul(xv, mask); };
  return make_op("mul_mask", fwd(), fwd, {x},
                 [mask](const Tensor& gy) -> std::vector<Tensor> {
                   return {ops::mul(gy, mask)};
                 });
}

}  // namespace hfta::ag
