// Numerical gradient checking for differentiable functions.
#pragma once

#include <functional>
#include <vector>

#include "autograd/variable.h"

namespace hfta::ag {

struct GradcheckResult {
  bool ok = true;
  float max_error = 0.f;   // max |analytic - numeric|
  std::string detail;      // first failing coordinate, if any
};

/// Checks d fn(inputs) / d inputs[i] for every requires-grad input against
/// central differences. fn must return a scalar Variable and must be a pure
/// function of the inputs (re-invoked many times).
GradcheckResult gradcheck(
    const std::function<Variable(std::vector<Variable>&)>& fn,
    std::vector<Variable> inputs, float eps = 1e-2f, float tol = 2e-2f);

}  // namespace hfta::ag
