// Differentiable ops over Variables. Each function computes the forward
// with the tensor kernels and records a backward closure on the tape.
// Gradients of broadcasting ops are reduced back to the input shapes
// (ops::reduce_to_shape).
#pragma once

#include <vector>

#include "autograd/variable.h"
#include "tensor/conv.h"
#include "tensor/pool.h"

namespace hfta::ag {

/// Constant (no-grad) wrapper.
Variable constant(Tensor value);

// ---- dtype ---------------------------------------------------------------
/// Converted copy at `dtype` (identity when it already matches). The
/// backward is the straight-through identity: the incoming (f32) gradient
/// passes to the source unchanged, so gradients stay f32 no matter how the
/// forward was quantized. Recorded like any other op — step programs replay
/// casts as thunks.
Variable cast(const Variable& a, DType dtype);

// ---- elementwise binary (broadcasting) -----------------------------------
Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable div(const Variable& a, const Variable& b);

// ---- scalar --------------------------------------------------------------
Variable add_scalar(const Variable& a, float s);
Variable mul_scalar(const Variable& a, float s);

// ---- unary ---------------------------------------------------------------
Variable neg(const Variable& a);
Variable exp(const Variable& a);
Variable log(const Variable& a);
Variable sqrt(const Variable& a);
Variable tanh(const Variable& a);
Variable sigmoid(const Variable& a);
Variable relu(const Variable& a);
Variable relu6(const Variable& a);
Variable leaky_relu(const Variable& a, float slope);
Variable pow_scalar(const Variable& a, float p);
/// x * sigmoid(x + 3)/... — hard-swish as used by MobileNetV3:
/// hswish(x) = x * relu6(x + 3) / 6.
Variable hardswish(const Variable& a);
/// hsigmoid(x) = relu6(x + 3) / 6.
Variable hardsigmoid(const Variable& a);
Variable gelu(const Variable& a);

// ---- matmul family ---------------------------------------------------------
Variable matmul(const Variable& a, const Variable& b);
Variable bmm(const Variable& a, const Variable& b);
/// a @ b with b transposed on its last two dims (attention scores).
Variable bmm_nt(const Variable& a, const Variable& b);
Variable baddbmm(const Variable& bias, const Variable& a, const Variable& b);
/// x [.., in] @ w [out, in]^T + b [out] (b may be undefined).
Variable linear(const Variable& x, const Variable& w, const Variable& b);

// ---- convolution -------------------------------------------------------------
Variable conv2d(const Variable& x, const Variable& w, const Variable& b,
                const ops::ConvArgs& args);
Variable conv1d(const Variable& x, const Variable& w, const Variable& b,
                int64_t stride, int64_t pad, int64_t groups);
Variable conv_transpose2d(const Variable& x, const Variable& w,
                          const Variable& b,
                          const ops::ConvTransposeArgs& args);
Variable conv_transpose1d(const Variable& x, const Variable& w,
                          const Variable& b,
                          const ops::ConvTransposeArgs& args);

// ---- pooling ---------------------------------------------------------------
Variable max_pool2d(const Variable& x, const ops::PoolArgs& args);
Variable avg_pool2d(const Variable& x, const ops::PoolArgs& args);
Variable adaptive_avg_pool2d(const Variable& x, int64_t oh, int64_t ow);
/// [N, C, L] -> [N, C] max over L (PointNet global feature).
Variable global_max_pool1d(const Variable& x);

// ---- shape ----------------------------------------------------------------
Variable reshape(const Variable& x, Shape shape);
Variable transpose(const Variable& x, int64_t a, int64_t b);
Variable permute(const Variable& x, std::vector<int64_t> perm);
Variable concat(const std::vector<Variable>& xs, int64_t dim);
std::vector<Variable> chunk(const Variable& x, int64_t chunks, int64_t dim);
Variable slice(const Variable& x, int64_t dim, int64_t start, int64_t end);

// ---- reductions ---------------------------------------------------------------
Variable sum(const Variable& x, std::vector<int64_t> dims, bool keepdim);
Variable mean(const Variable& x, std::vector<int64_t> dims, bool keepdim);
Variable sum_all(const Variable& x);
Variable mean_all(const Variable& x);

// ---- softmax / losses -----------------------------------------------------------
Variable softmax(const Variable& x, int64_t dim);
Variable log_softmax(const Variable& x, int64_t dim);

enum class Reduction { kMean, kSum, kNone };

/// Negative log-likelihood over log-probabilities [N, C] (or [N, C, d...])
/// with integer labels [N] (or [N, d...]).
Variable nll_loss(const Variable& log_probs, const Tensor& labels,
                  Reduction reduction);
/// log_softmax + nll.
Variable cross_entropy(const Variable& logits, const Tensor& labels,
                       Reduction reduction);
/// Numerically-stable binary cross-entropy on logits vs targets in [0,1].
Variable bce_with_logits(const Variable& logits, const Tensor& targets,
                         Reduction reduction);
Variable mse_loss(const Variable& x, const Tensor& target,
                  Reduction reduction);

// ---- embedding --------------------------------------------------------------------
/// indices: integer-valued tensor (no grad); weight: [V, E].
Variable embedding(const Tensor& indices, const Variable& weight);

/// Elementwise multiply by a constant mask (dropout building block).
Variable mul_mask(const Variable& x, const Tensor& mask);

}  // namespace hfta::ag
